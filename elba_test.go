package elba

import (
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way the
// quickstart example does: parse TBL, run, extract, render.
func TestPublicAPIEndToEnd(t *testing.T) {
	c, err := New(Options{TimeScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	err = c.RunTBL(`experiment "api" {
		benchmark rubis; platform emulab; appserver jonas;
		topologies 1-1-1, 1-2-1;
		workload { users 100 to 200 step 100; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Results().RTvsUsers("api", "1-1-1", 15)
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	out := RenderSeries("Figure", "users", "ms", []Series{{Name: "1-1-1", Points: pts}})
	if !strings.Contains(out, "1-1-1") {
		t.Fatalf("render failed:\n%s", out)
	}
	cat, err := LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderTable2(cat), "emulab") {
		t.Fatalf("table 2 render failed")
	}
	rows := c.ScaleRows(FigureOf)
	if !strings.Contains(RenderTable3(rows), "api") {
		t.Fatalf("table 3 render failed")
	}
}

func TestPublicBottleneckHelpers(t *testing.T) {
	r := Result{Completed: true, TierCPU: map[string]float64{"app": 95, "db": 20}}
	if v := DetectBottleneck(r); v.Tier != "app" {
		t.Fatalf("verdict = %+v", v)
	}
	if got := Improvement(100, 50); got != 50 {
		t.Fatalf("improvement = %g", got)
	}
	pts := []SeriesPoint{{X: 100, Y: 40, OK: true}, {X: 200, Y: 500, OK: true}}
	if x, ok := SaturationUsers(pts, 3); !ok || x != 200 {
		t.Fatalf("saturation = %g %v", x, ok)
	}
}

func TestPublicParseHelpers(t *testing.T) {
	doc, err := ParseTBL(ReducedSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Experiments) != 5 {
		t.Fatalf("reduced suite = %d experiments", len(doc.Experiments))
	}
	topo, err := ParseTopology("1-8-2")
	if err != nil || topo.App != 8 {
		t.Fatalf("ParseTopology failed: %v %v", topo, err)
	}
	if err := ValidateExperiment(doc.Experiments[0]); err != nil {
		t.Fatalf("suite experiment invalid: %v", err)
	}
	if _, err := ParseTBL(PaperSuite()); err != nil {
		t.Fatalf("paper suite invalid: %v", err)
	}
}

func TestPublicGenerationSurface(t *testing.T) {
	c, err := New(Options{TimeScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseTBL(ReducedSuite())
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.GenerateBundle(doc.Experiments[0], Topology{Web: 1, App: 2, DB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderTable4(d.Bundle), "run.sh") {
		t.Fatalf("table 4 render failed")
	}
	if !strings.Contains(RenderTable5(d.Bundle), "workers2.properties") {
		t.Fatalf("table 5 render failed")
	}
}

// TestPublicPrediction exercises the analytical cross-check from the
// public API: below saturation the MVA prediction and the observed trial
// agree on throughput.
func TestPublicPrediction(t *testing.T) {
	c, err := New(Options{TimeScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tbl := `experiment "pred" {
		benchmark rubis; platform emulab; appserver jonas;
		workload { users 120; writeratio 15; }
	}`
	if err := c.RunTBL(tbl); err != nil {
		t.Fatal(err)
	}
	doc, _ := ParseTBL(tbl)
	pred, err := c.Predict(doc.Experiments[0], Topology{Web: 1, App: 1, DB: 1}, 15, 120)
	if err != nil {
		t.Fatal(err)
	}
	obs, _ := c.Results().Get(Key{Experiment: "pred", Topology: "1-1-1", Users: 120, WriteRatioPct: 15})
	rel := (pred.Throughput - obs.Throughput) / obs.Throughput
	if rel < -0.15 || rel > 0.15 {
		t.Fatalf("prediction off: %.2f vs %.2f req/s", pred.Throughput, obs.Throughput)
	}
	if pred.BottleneckTier != "app" {
		t.Fatalf("predicted bottleneck = %q", pred.BottleneckTier)
	}
}

func TestPublicChartAndStaging(t *testing.T) {
	out := RenderChart("demo", "users", "ms", []Series{{
		Name: "s", Points: []SeriesPoint{{X: 1, Y: 10, OK: true}, {X: 2, Y: 30, OK: true}},
	}})
	if !strings.Contains(out, "* s") {
		t.Fatalf("chart legend missing:\n%s", out)
	}
	c, err := New(Options{TimeScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseTBL(ReducedSuite())
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.GenerateBundle(doc.Experiments[0], Topology{Web: 1, App: 2, DB: 1})
	if err != nil {
		t.Fatal(err)
	}
	issues := ValidateBundle(d.Bundle)
	if len(StagingErrors(issues)) != 0 {
		t.Fatalf("generated bundle has staging errors: %v", issues)
	}
	breakdown := RenderInteractionBreakdown(Result{
		Key:            Key{Experiment: "x", Topology: "1-1-1"},
		PerInteraction: map[string]float64{"Home": 10},
	})
	if !strings.Contains(breakdown, "Home") {
		t.Fatalf("breakdown render failed")
	}
}
