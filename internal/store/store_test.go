package store

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func mkResult(topo string, users int, wr float64, rt float64, ok bool) Result {
	return Result{
		Key:        Key{Experiment: "exp", Topology: topo, Users: users, WriteRatioPct: wr},
		Completed:  ok,
		AvgRTms:    rt,
		P90ms:      rt * 2,
		Throughput: float64(users) / 7.0,
		Requests:   int64(users * 10),
		TierCPU:    map[string]float64{"web": 5, "app": 50, "db": 20},
	}
}

func TestPutGetReplace(t *testing.T) {
	s := New()
	s.Put(mkResult("1-1-1", 100, 15, 120, true))
	r, ok := s.Get(Key{Experiment: "exp", Topology: "1-1-1", Users: 100, WriteRatioPct: 15})
	if !ok || r.AvgRTms != 120 {
		t.Fatalf("get = %+v, %v", r, ok)
	}
	// Replace same key.
	s.Put(mkResult("1-1-1", 100, 15, 200, true))
	if s.Len() != 1 {
		t.Fatalf("replace grew store: %d", s.Len())
	}
	r, _ = s.Get(r.Key)
	if r.AvgRTms != 200 {
		t.Fatalf("replace did not update: %g", r.AvgRTms)
	}
	if _, ok := s.Get(Key{Experiment: "none"}); ok {
		t.Fatalf("missing key found")
	}
}

func TestSeriesExtraction(t *testing.T) {
	s := New()
	// Insert out of order to confirm sorting.
	for _, u := range []int{300, 100, 200} {
		s.Put(mkResult("1-2-1", u, 15, float64(u), true))
	}
	pts := s.RTvsUsers("exp", "1-2-1", 15)
	if len(pts) != 3 || pts[0].X != 100 || pts[2].X != 300 {
		t.Fatalf("series = %+v", pts)
	}
	if pts[1].Y != 200 {
		t.Fatalf("series y wrong: %+v", pts[1])
	}
	th := s.ThroughputVsUsers("exp", "1-2-1", 15)
	if th[0].Y != 100.0/7.0 {
		t.Fatalf("throughput series wrong: %+v", th[0])
	}
	cpu := s.TierCPUVsUsers("exp", "1-2-1", "app", 15)
	if cpu[0].Y != 50 {
		t.Fatalf("cpu series wrong: %+v", cpu[0])
	}
}

func TestFailedTrialsMarked(t *testing.T) {
	s := New()
	s.Put(mkResult("1-2-1", 700, 15, 900, true))
	fail := mkResult("1-2-1", 800, 15, 0, false)
	fail.FailReason = "connection pool exhausted"
	s.Put(fail)
	pts := s.RTvsUsers("exp", "1-2-1", 15)
	if pts[0].OK != true || pts[1].OK != false {
		t.Fatalf("OK flags wrong: %+v", pts)
	}
	if fail.ErrorRate() != 0 {
		t.Fatalf("zero-request error rate should be 0")
	}
	r := Result{Requests: 90, Errors: 10}
	if r.ErrorRate() != 0.1 {
		t.Fatalf("error rate = %g", r.ErrorRate())
	}
}

func TestTopologiesSortedByScaleOut(t *testing.T) {
	s := New()
	for _, topo := range []string{"1-12-2", "1-2-1", "1-8-1", "1-2-2", "1-10-3"} {
		s.Put(mkResult(topo, 100, 15, 100, true))
	}
	got := s.Topologies("exp")
	want := []string{"1-2-1", "1-2-2", "1-8-1", "1-10-3", "1-12-2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topologies = %v, want %v", got, want)
		}
	}
	if exps := s.Experiments(); len(exps) != 1 || exps[0] != "exp" {
		t.Fatalf("experiments = %v", exps)
	}
}

func TestSurface(t *testing.T) {
	s := New()
	for _, u := range []int{50, 100} {
		for _, w := range []float64{0, 10} {
			s.Put(mkResult("1-1-1", u, w, float64(u)+w, true))
		}
	}
	sf := s.RTSurface("exp", "1-1-1")
	if len(sf.Users) != 2 || len(sf.WriteRatios) != 2 {
		t.Fatalf("surface axes = %v × %v", sf.Users, sf.WriteRatios)
	}
	// Cells[w=10][u=100] = 110
	if got := sf.Cells[1][1]; !got.OK || got.Value != 110 {
		t.Fatalf("cell = %+v", got)
	}
	cpu := s.CPUSurface("exp", "1-1-1", "app")
	if cpu.Cells[0][0].Value != 50 {
		t.Fatalf("cpu surface = %+v", cpu.Cells[0][0])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := New()
	s.Put(mkResult("1-2-1", 100, 15, 100, true))
	s.Put(mkResult("1-2-1", 200, 15, 150, false))
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.LoadJSON(data); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("loaded %d results", s2.Len())
	}
	r, ok := s2.Get(Key{Experiment: "exp", Topology: "1-2-1", Users: 100, WriteRatioPct: 15})
	if !ok || r.AvgRTms != 100 || r.TierCPU["app"] != 50 {
		t.Fatalf("round trip lost data: %+v", r)
	}
	if err := s2.LoadJSON([]byte("{not json")); err == nil {
		t.Fatalf("bad json accepted")
	}
}

// TestEngineFieldOmittedWhenEmpty pins the serialization contract the
// byte-identity goldens depend on: a result produced without a scaling
// clause (Engine == "") must marshal with no "engine" key at all, so
// pre-fluid stores and post-fluid stores of the same sweep are
// byte-identical. A fluid-tagged result must carry the key.
func TestEngineFieldOmittedWhenEmpty(t *testing.T) {
	des := mkResult("1-1-1", 100, 15, 100, true)
	data, err := json.Marshal(des)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"engine"`) {
		t.Fatalf("empty Engine serialized a key: %s", data)
	}
	fl := mkResult("1-1-1", 100, 15, 100, true)
	fl.Engine = "fluid"
	data, err = json.Marshal(fl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"engine":"fluid"`) {
		t.Fatalf("fluid Engine not serialized: %s", data)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Engine != "fluid" {
		t.Fatalf("engine lost in round trip: %+v", back)
	}
}

func TestCSV(t *testing.T) {
	s := New()
	s.Put(mkResult("1-2-1", 100, 15, 123.4, true))
	csv := s.CSV()
	if !strings.HasPrefix(csv, "experiment,topology,users") {
		t.Fatalf("csv header missing")
	}
	if !strings.Contains(csv, "exp,1-2-1,100,15,true,123.40") {
		t.Fatalf("csv row wrong:\n%s", csv)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Put(mkResult("1-1-1", g*1000+i, 15, 1, true))
				s.RTvsUsers("exp", "1-1-1", 15)
				s.Len()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Experiment: "e", Topology: "1-2-1", Users: 100, WriteRatioPct: 15}
	if k.String() != "e/1-2-1/u=100/w=15%" {
		t.Fatalf("key string = %q", k.String())
	}
}

func TestSurfaceCorrelation(t *testing.T) {
	s := New()
	for _, u := range []int{50, 100, 150} {
		for _, w := range []float64{0, 30} {
			rt := float64(u)*2 - w // RT rises with users, falls with writes
			s.Put(Result{
				Key:       Key{Experiment: "e", Topology: "1-1-1", Users: u, WriteRatioPct: w},
				Completed: true,
				AvgRTms:   rt,
				TierCPU:   map[string]float64{"app": rt / 4}, // perfectly correlated
			})
		}
	}
	rtSurface := s.RTSurface("e", "1-1-1")
	cpuSurface := s.CPUSurface("e", "1-1-1", "app")
	r, n := SurfaceCorrelation(rtSurface, cpuSurface)
	if n != 6 {
		t.Fatalf("paired cells = %d", n)
	}
	if r < 0.999 {
		t.Fatalf("correlation = %g, want ≈1", r)
	}
}
