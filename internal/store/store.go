// Package store is the results database the experiment infrastructure
// writes into: "after each set of experiments, performance data collected
// from the participating hosts is put into a database for analysis"
// (paper §II). It holds per-trial results keyed by experiment,
// configuration, and workload point, answers the queries the report
// renderers need, and round-trips through JSON and CSV.
package store

import (
	"encoding/json"

	"elba/internal/metrics"
	"elba/internal/trace"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Key identifies one trial: an experiment set, a w-a-d configuration, and
// a workload point.
type Key struct {
	// Experiment names the experiment set.
	Experiment string `json:"experiment"`
	// Topology is the w-a-d triple, e.g. "1-8-2".
	Topology string `json:"topology"`
	// Users is the concurrent-user population.
	Users int `json:"users"`
	// WriteRatioPct is the database write ratio in percent.
	WriteRatioPct float64 `json:"write_ratio_pct"`
}

// String renders the key for logs.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/u=%d/w=%g%%", k.Experiment, k.Topology, k.Users, k.WriteRatioPct)
}

// Result is one trial's measured outcome.
type Result struct {
	Key Key `json:"key"`

	// Completed is false when the trial failed to finish (overload,
	// connection-pool exhaustion) — the paper's "missing squares".
	Completed  bool   `json:"completed"`
	FailReason string `json:"fail_reason,omitempty"`

	// Engine records which trial engine produced the result ("des" or
	// "fluid"); empty for the historical default DES path, so
	// serializations of specs without a scaling clause stay byte-identical.
	Engine string `json:"engine,omitempty"`

	// Response-time statistics in milliseconds over successful requests.
	AvgRTms float64 `json:"avg_rt_ms"`
	P50ms   float64 `json:"p50_ms"`
	P90ms   float64 `json:"p90_ms"`
	P99ms   float64 `json:"p99_ms"`
	MaxRTms float64 `json:"max_rt_ms"`

	// Throughput is successful client requests per second.
	Throughput float64 `json:"throughput_rps"`
	// Requests and Errors count measured requests and failures.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`

	// TierCPU maps tier name → mean CPU utilization percent during the
	// run period, averaged across the tier's nodes.
	TierCPU map[string]float64 `json:"tier_cpu,omitempty"`
	// HostCPU maps role → mean CPU utilization percent.
	HostCPU map[string]float64 `json:"host_cpu,omitempty"`

	// TierDisk and TierNet map tier name → mean disk / network-link
	// utilization percent. Populated only when the experiment declares
	// demands on those resources, so historical serializations stay
	// byte-identical.
	TierDisk map[string]float64 `json:"tier_disk,omitempty"`
	TierNet  map[string]float64 `json:"tier_net,omitempty"`
	// HostDisk and HostNet are the per-role equivalents.
	HostDisk map[string]float64 `json:"host_disk,omitempty"`
	HostNet  map[string]float64 `json:"host_net,omitempty"`

	// CollectedBytes sizes the monitoring data gathered for this trial.
	CollectedBytes int `json:"collected_bytes"`
	// RunSeconds is the measured run-period length.
	RunSeconds float64 `json:"run_seconds"`

	// PerInteraction maps interaction name → mean response time (ms),
	// the per-interaction breakdown the benchmark client emulators print.
	PerInteraction map[string]float64 `json:"per_interaction,omitempty"`

	// Fault-injection bookkeeping. All fields are zero/empty when no
	// fault profile is active, so no-fault serializations stay
	// byte-identical to historical output.

	// FaultProfile names the fault profile active for this trial.
	FaultProfile string `json:"fault_profile,omitempty"`
	// FaultEvents lists the injected in-trial fault windows, rendered
	// compactly in schedule order.
	FaultEvents []string `json:"fault_events,omitempty"`
	// InjectedErrors counts requests failed by error bursts during the
	// measurement window.
	InjectedErrors int64 `json:"injected_errors,omitempty"`
	// SLO-assert bookkeeping. All fields are zero/empty when the spec
	// declares no assert expression, so expression-free serializations
	// stay byte-identical to historical output.

	// SLOAssert is the canonical source of the spec's assert expression.
	SLOAssert string `json:"slo_assert,omitempty"`
	// SLOWindows counts the measurement windows the assert was evaluated
	// in (one per monitor interval across the run period).
	SLOWindows int `json:"slo_windows,omitempty"`
	// SLOViolations counts windows whose assert evaluated false.
	SLOViolations int `json:"slo_violations,omitempty"`
	// SLOViolatedAt lists the violating windows' start times, in protocol
	// seconds from the run period's start (time-scale–invariant).
	SLOViolatedAt []float64 `json:"slo_violated_at,omitempty"`
	// ScaleEvents lists autoscaling-policy firings during the measured
	// run, in firing order. Empty for policy-free specs, so their
	// serializations stay byte-identical to historical output.
	ScaleEvents []ScaleEvent `json:"scale_events,omitempty"`

	// DeployRetries counts deployment-step retries during run.sh.
	DeployRetries int `json:"deploy_retries,omitempty"`
	// DeploySeconds is simulated time lost to deploy timeouts/backoffs.
	DeploySeconds float64 `json:"deploy_seconds,omitempty"`
	// Attempts counts trial attempts consumed at this workload point
	// (1 = succeeded first try; set only when a retry budget is active).
	Attempts int `json:"attempts,omitempty"`

	// RTSketch is the trial's mergeable response-time quantile sketch in
	// milliseconds (a t-digest over the same successful-request stream
	// that produced P50/P90/P99), recorded only when the runner runs with
	// sketches enabled (the streaming path). Nil otherwise, so
	// sketch-free serializations stay byte-identical to historical
	// output. The campaign folder merges these in canonical commit order
	// to report campaign-level quantiles in O(sketch) memory.
	RTSketch *metrics.TDigest `json:"rt_sketch,omitempty"`

	// Trace is the request-level tracing report (per-tier latency
	// decomposition, critical-path verdict, slowest-trace exemplars) when
	// the trial ran with tracing enabled. Nil otherwise, so untraced
	// serializations stay byte-identical to historical output.
	Trace *trace.Report `json:"trace,omitempty"`

	// Replicas counts the independent repetitions aggregated into this
	// result (1 = a single trial).
	Replicas int `json:"replicas,omitempty"`
	// AvgRTCI95ms and ThroughputCI95 are 95% confidence half-widths of
	// the replica means (0 for single trials).
	AvgRTCI95ms    float64 `json:"avg_rt_ci95_ms,omitempty"`
	ThroughputCI95 float64 `json:"throughput_ci95,omitempty"`
}

// ScaleEvent records one autoscaling-policy firing: at a window
// boundary TSec (protocol seconds from run start, time-scale–invariant)
// the named tier's replica count moved From → To.
type ScaleEvent struct {
	TSec float64 `json:"t_sec"`
	Tier string  `json:"tier"`
	From int     `json:"from"`
	To   int     `json:"to"`
}

// String renders the event compactly for reports and logs.
func (e ScaleEvent) String() string {
	return fmt.Sprintf("t=%gs %s %d→%d", e.TSec, e.Tier, e.From, e.To)
}

// ErrorRate reports errors over total measured requests.
func (r *Result) ErrorRate() float64 {
	total := r.Requests + r.Errors
	if total == 0 {
		return 0
	}
	return float64(r.Errors) / float64(total)
}

// Store is an in-memory, concurrency-safe result set.
type Store struct {
	mu      sync.RWMutex
	results []*Result
	byKey   map[Key]*Result
}

// New creates an empty store.
func New() *Store {
	return &Store{byKey: map[Key]*Result{}}
}

// Put inserts or replaces a trial result.
func (s *Store) Put(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.byKey[r.Key]; ok {
		*old = r
		return
	}
	cp := r
	s.results = append(s.results, &cp)
	s.byKey[r.Key] = &cp
}

// Get fetches a trial result by key.
func (s *Store) Get(k Key) (Result, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.byKey[k]
	if !ok {
		return Result{}, false
	}
	return *r, true
}

// Len reports the number of stored results.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.results)
}

// Filter selects results matching the predicate, in insertion order.
func (s *Store) Filter(pred func(Result) bool) []Result {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Result
	for _, r := range s.results {
		if pred(*r) {
			out = append(out, *r)
		}
	}
	return out
}

// All returns every result in insertion order.
func (s *Store) All() []Result { return s.Filter(func(Result) bool { return true }) }

// Experiments lists distinct experiment names, sorted.
func (s *Store) Experiments() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	for _, r := range s.results {
		seen[r.Key.Experiment] = true
	}
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Topologies lists distinct topologies for an experiment, sorted by
// app-count then db-count (natural scale-out order).
func (s *Store) Topologies(experiment string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	for _, r := range s.results {
		if r.Key.Experiment == experiment {
			seen[r.Key.Topology] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return topoLess(out[i], out[j]) })
	return out
}

// topoLess orders "w-a-d" triples by (a, d, w).
func topoLess(a, b string) bool {
	pa, pb := topoParts(a), topoParts(b)
	if pa[1] != pb[1] {
		return pa[1] < pb[1]
	}
	if pa[2] != pb[2] {
		return pa[2] < pb[2]
	}
	return pa[0] < pb[0]
}

func topoParts(s string) [3]int {
	var out [3]int
	parts := strings.Split(s, "-")
	for i := 0; i < len(parts) && i < 3; i++ {
		fmt.Sscanf(parts[i], "%d", &out[i])
	}
	return out
}

// SeriesPoint is one (x, y) pair extracted from the store.
type SeriesPoint struct {
	X float64
	Y float64
	// OK is false for failed trials, which plots render as gaps.
	OK bool
}

// RTvsUsers extracts mean response time (ms) against users for one
// experiment, topology, and write ratio — the paper's Figure 5/6 line.
func (s *Store) RTvsUsers(experiment, topology string, writeRatioPct float64) []SeriesPoint {
	return s.extract(experiment, topology, writeRatioPct, func(r Result) float64 { return r.AvgRTms })
}

// ThroughputVsUsers extracts throughput against users (Table 7 rows).
func (s *Store) ThroughputVsUsers(experiment, topology string, writeRatioPct float64) []SeriesPoint {
	return s.extract(experiment, topology, writeRatioPct, func(r Result) float64 { return r.Throughput })
}

// TierCPUVsUsers extracts a tier's mean CPU utilization against users
// (Figure 8's DB curves).
func (s *Store) TierCPUVsUsers(experiment, topology, tier string, writeRatioPct float64) []SeriesPoint {
	return s.extract(experiment, topology, writeRatioPct, func(r Result) float64 { return r.TierCPU[tier] })
}

// TierDiskVsUsers extracts a tier's mean disk utilization against users,
// the disk-bound analogue of the Figure 8 curves.
func (s *Store) TierDiskVsUsers(experiment, topology, tier string, writeRatioPct float64) []SeriesPoint {
	return s.extract(experiment, topology, writeRatioPct, func(r Result) float64 { return r.TierDisk[tier] })
}

func (s *Store) extract(experiment, topology string, wr float64, y func(Result) float64) []SeriesPoint {
	rs := s.Filter(func(r Result) bool {
		return r.Key.Experiment == experiment && r.Key.Topology == topology &&
			r.Key.WriteRatioPct == wr
	})
	sort.Slice(rs, func(i, j int) bool { return rs[i].Key.Users < rs[j].Key.Users })
	out := make([]SeriesPoint, len(rs))
	for i, r := range rs {
		out[i] = SeriesPoint{X: float64(r.Key.Users), Y: y(r), OK: r.Completed}
	}
	return out
}

// Surface extracts a (users × write-ratio) grid of a metric for one
// experiment and topology, the paper's 3-D Figures 1–3. Returns sorted
// axis values and a row-major grid indexed [writeRatio][users]; failed
// cells carry NaN-like -1 sentinel via OK=false in Cell.
type Surface struct {
	Users       []int
	WriteRatios []float64
	// Cells[i][j] is the metric at WriteRatios[i], Users[j].
	Cells [][]SurfaceCell
}

// SurfaceCell is one grid cell.
type SurfaceCell struct {
	Value float64
	OK    bool
}

// RTSurface builds the response-time surface (ms).
func (s *Store) RTSurface(experiment, topology string) Surface {
	return s.surface(experiment, topology, func(r Result) float64 { return r.AvgRTms })
}

// CPUSurface builds the app-tier CPU-utilization surface (percent),
// Figure 2's metric.
func (s *Store) CPUSurface(experiment, topology, tier string) Surface {
	return s.surface(experiment, topology, func(r Result) float64 { return r.TierCPU[tier] })
}

func (s *Store) surface(experiment, topology string, y func(Result) float64) Surface {
	rs := s.Filter(func(r Result) bool {
		return r.Key.Experiment == experiment && r.Key.Topology == topology
	})
	userSet := map[int]bool{}
	wrSet := map[float64]bool{}
	for _, r := range rs {
		userSet[r.Key.Users] = true
		wrSet[r.Key.WriteRatioPct] = true
	}
	var sf Surface
	for u := range userSet {
		sf.Users = append(sf.Users, u)
	}
	sort.Ints(sf.Users)
	for w := range wrSet {
		sf.WriteRatios = append(sf.WriteRatios, w)
	}
	sort.Float64s(sf.WriteRatios)
	uIdx := map[int]int{}
	for i, u := range sf.Users {
		uIdx[u] = i
	}
	wIdx := map[float64]int{}
	for i, w := range sf.WriteRatios {
		wIdx[w] = i
	}
	sf.Cells = make([][]SurfaceCell, len(sf.WriteRatios))
	for i := range sf.Cells {
		sf.Cells[i] = make([]SurfaceCell, len(sf.Users))
	}
	for _, r := range rs {
		sf.Cells[wIdx[r.Key.WriteRatioPct]][uIdx[r.Key.Users]] = SurfaceCell{
			Value: y(r), OK: r.Completed,
		}
	}
	return sf
}

// keyLess orders results canonically: experiment, topology (scale-out
// order), write ratio, then users.
func keyLess(a, b Key) bool {
	if a.Experiment != b.Experiment {
		return a.Experiment < b.Experiment
	}
	if a.Topology != b.Topology {
		return topoLess(a.Topology, b.Topology)
	}
	if a.WriteRatioPct != b.WriteRatioPct {
		return a.WriteRatioPct < b.WriteRatioPct
	}
	return a.Users < b.Users
}

// sortedResults snapshots the results in canonical key order. Serialized
// output is therefore byte-identical however trials were scheduled —
// concurrent sweeps insert in nondeterministic order, but exports never
// show it. Callers must hold at least a read lock.
func (s *Store) sortedResults() []*Result {
	out := make([]*Result, len(s.results))
	copy(out, s.results)
	sort.SliceStable(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// MarshalJSON serializes the whole store in canonical key order.
func (s *Store) MarshalJSON() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return json.MarshalIndent(s.sortedResults(), "", "  ")
}

// LoadJSON replaces the store's contents with serialized results.
func (s *Store) LoadJSON(data []byte) error {
	var rs []*Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results = rs
	s.byKey = map[Key]*Result{}
	for _, r := range rs {
		s.byKey[r.Key] = r
	}
	return nil
}

// CSV renders all results as a flat CSV table in canonical key order.
func (s *Store) CSV() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	b.WriteString("experiment,topology,users,write_ratio_pct,completed,avg_rt_ms,p90_ms,throughput_rps,requests,errors,web_cpu,app_cpu,db_cpu\n")
	for _, r := range s.sortedResults() {
		fmt.Fprintf(&b, "%s,%s,%d,%g,%t,%.2f,%.2f,%.2f,%d,%d,%.1f,%.1f,%.1f\n",
			r.Key.Experiment, r.Key.Topology, r.Key.Users, r.Key.WriteRatioPct,
			r.Completed, r.AvgRTms, r.P90ms, r.Throughput, r.Requests, r.Errors,
			r.TierCPU["web"], r.TierCPU["app"], r.TierCPU["db"])
	}
	return b.String()
}

// SurfaceCorrelation computes the Pearson correlation between two
// surfaces' completed cells at matching coordinates — the quantitative
// form of the paper's observation that Figures 1 and 2 "show correlated
// peaks in response time and application server CPU consumption".
func SurfaceCorrelation(a, b Surface) (float64, int) {
	type coord struct {
		wr float64
		u  int
	}
	bv := map[coord]float64{}
	for i, wr := range b.WriteRatios {
		for j, u := range b.Users {
			if b.Cells[i][j].OK {
				bv[coord{wr, u}] = b.Cells[i][j].Value
			}
		}
	}
	var xs, ys []float64
	for i, wr := range a.WriteRatios {
		for j, u := range a.Users {
			if !a.Cells[i][j].OK {
				continue
			}
			if y, ok := bv[coord{wr, u}]; ok {
				xs = append(xs, a.Cells[i][j].Value)
				ys = append(ys, y)
			}
		}
	}
	return metrics.Pearson(xs, ys), len(xs)
}
