package mulini

import (
	"strings"
	"testing"

	"elba/internal/cim"
)

func TestSmartFrogBackendRenders(t *testing.T) {
	cat, err := cim.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(cat, SmartFrogBackend{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Backend() != "smartfrog" {
		t.Fatalf("backend = %q", g.Backend())
	}
	ds, err := g.Generate(testExperiment(t, "1-2-2"))
	if err != nil {
		t.Fatal(err)
	}
	b := ds[0].Bundle
	sf, ok := b.Get("rubis-test.sf")
	if !ok {
		t.Fatalf("missing .sf description; paths = %v", b.Paths())
	}
	for _, want := range []string{
		"extends Compound",
		`sfProcessHost "JONAS1"`,
		`sfProcessHost "MYSQL2"`,
		`package "cjdbc"`,
		"maxClients 350",
		`nodeType "low-end"`,
		`source "workers2.properties"`,
	} {
		if !strings.Contains(sf.Content, want) {
			t.Errorf(".sf description missing %q", want)
		}
	}
	// Braces balance.
	if strings.Count(sf.Content, "{") != strings.Count(sf.Content, "}") {
		t.Errorf(".sf braces unbalanced")
	}
	// Vendor configs are shared with the shell backend.
	if _, ok := b.Get("mysqldb-raidb1-elba.xml"); !ok {
		t.Errorf("smartfrog bundle missing C-JDBC config")
	}
	if _, ok := b.Get("rubis_client.properties"); !ok {
		t.Errorf("smartfrog bundle missing driver properties")
	}
}

// TestBackendsAgreeOnStructure is the ablation hook (DESIGN.md §5): both
// backends render the same deployment model, so the machine count and
// config content must agree even though the script languages differ.
func TestBackendsAgreeOnStructure(t *testing.T) {
	cat, _ := cim.LoadCatalog()
	shell, _ := NewGenerator(cat, ShellBackend{})
	sf, _ := NewGenerator(cat, SmartFrogBackend{})
	e := testExperiment(t, "1-3-2")
	dsShell, err := shell.Generate(e)
	if err != nil {
		t.Fatal(err)
	}
	dsSF, err := sf.Generate(e)
	if err != nil {
		t.Fatal(err)
	}
	if dsShell[0].MachineCount() != dsSF[0].MachineCount() {
		t.Fatalf("machine counts differ across backends")
	}
	a, _ := dsShell[0].Bundle.Get("workers2.properties")
	b, _ := dsSF[0].Bundle.Get("workers2.properties")
	if a.Content != b.Content {
		t.Fatalf("vendor config differs across backends")
	}
	// The declarative description is far more compact than shell — the
	// paper's motivation for higher-level deployment languages (§III.C).
	if dsSF[0].Bundle.TotalLines(Script) >= dsShell[0].Bundle.TotalLines(Script) {
		t.Fatalf("smartfrog rendering should be more compact: %d vs %d lines",
			dsSF[0].Bundle.TotalLines(Script), dsShell[0].Bundle.TotalLines(Script))
	}
}

func TestSfIdent(t *testing.T) {
	if sfIdent("rubis-test") != "rubis_test" {
		t.Fatalf("sfIdent = %q", sfIdent("rubis-test"))
	}
	if sfIdent("") != "unnamed" {
		t.Fatalf("empty ident = %q", sfIdent(""))
	}
}
