// Package mulini implements the Mulini code generator, the paper's core
// automation contribution (§II). From a TBL experiment specification and
// a CIM/MOF resource model it generates everything a benchmark run needs:
// deployment scripts (install/configure/ignite/stop per service), the
// vendor configuration files scattered across package directories
// (workers2.properties, the C-JDBC RAIDb-1 controller XML, monitor
// properties), workload-driver parameter files, and per-host system
// monitor launchers. Artifacts are collected in a Bundle whose line
// counts reproduce the paper's Tables 3–5.
package mulini

import (
	"fmt"
	"sort"
	"strings"
)

// ArtifactKind classifies generated files.
type ArtifactKind int

// Artifact kinds: scripts are executable deployment code, configs are
// vendor configuration files Mulini modifies, data are parameter files
// for the workload driver and monitors.
const (
	Script ArtifactKind = iota
	Config
	Data
)

// String names the kind.
func (k ArtifactKind) String() string {
	switch k {
	case Script:
		return "script"
	case Config:
		return "config"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Artifact is one generated file.
type Artifact struct {
	// Path is the artifact's name within the bundle, e.g.
	// "TOMCAT1_install.sh".
	Path string
	// Kind classifies the artifact.
	Kind ArtifactKind
	// Role names the deployment role the artifact belongs to ("" for
	// experiment-wide files such as run.sh).
	Role string
	// Comment is a one-line description, mirroring the paper's Tables 4–5.
	Comment string
	// Content is the file body.
	Content string
}

// Lines reports the artifact's line count (trailing newline not counted
// as an extra line).
func (a *Artifact) Lines() int {
	if a.Content == "" {
		return 0
	}
	n := strings.Count(a.Content, "\n")
	if !strings.HasSuffix(a.Content, "\n") {
		n++
	}
	return n
}

// Bundle is an ordered collection of generated artifacts.
type Bundle struct {
	artifacts map[string]*Artifact
	order     []string
}

// NewBundle creates an empty bundle.
func NewBundle() *Bundle {
	return &Bundle{artifacts: map[string]*Artifact{}}
}

// Add registers an artifact; duplicate paths are an error (the generator
// must not silently overwrite its own output).
func (b *Bundle) Add(a Artifact) error {
	if a.Path == "" {
		return fmt.Errorf("mulini: artifact needs a path")
	}
	if _, dup := b.artifacts[a.Path]; dup {
		return fmt.Errorf("mulini: duplicate artifact %q", a.Path)
	}
	copy := a
	b.artifacts[a.Path] = &copy
	b.order = append(b.order, a.Path)
	return nil
}

// Get returns an artifact by path.
func (b *Bundle) Get(path string) (*Artifact, bool) {
	a, ok := b.artifacts[path]
	return a, ok
}

// Paths lists artifact paths in generation order.
func (b *Bundle) Paths() []string {
	out := make([]string, len(b.order))
	copy(out, b.order)
	return out
}

// Len reports the number of artifacts.
func (b *Bundle) Len() int { return len(b.order) }

// ByKind lists artifacts of one kind in generation order.
func (b *Bundle) ByKind(kind ArtifactKind) []*Artifact {
	var out []*Artifact
	for _, p := range b.order {
		if a := b.artifacts[p]; a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

// TotalLines sums line counts, optionally filtered by kind (pass -1 for
// all artifacts).
func (b *Bundle) TotalLines(kind ArtifactKind) int {
	n := 0
	for _, a := range b.artifacts {
		if kind < 0 || a.Kind == kind {
			n += a.Lines()
		}
	}
	return n
}

// TotalBytes sums content sizes in bytes.
func (b *Bundle) TotalBytes() int {
	n := 0
	for _, a := range b.artifacts {
		n += len(a.Content)
	}
	return n
}

// Merge folds another bundle into b, prefixing paths to avoid collisions.
func (b *Bundle) Merge(prefix string, other *Bundle) error {
	for _, p := range other.order {
		a := *other.artifacts[p]
		a.Path = prefix + a.Path
		if err := b.Add(a); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a sorted path → line-count listing for reports.
func (b *Bundle) Summary() string {
	paths := b.Paths()
	sort.Strings(paths)
	var sb strings.Builder
	for _, p := range paths {
		a := b.artifacts[p]
		fmt.Fprintf(&sb, "%-44s %6d lines  %-6s %s\n", p, a.Lines(), a.Kind, a.Comment)
	}
	return sb.String()
}
