package mulini

import (
	"strings"
	"testing"
)

func TestBundleAddGet(t *testing.T) {
	b := NewBundle()
	if err := b.Add(Artifact{Path: "a.sh", Kind: Script, Content: "x\ny\n"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(Artifact{Path: "a.sh", Kind: Script}); err == nil {
		t.Fatalf("duplicate path should error")
	}
	if err := b.Add(Artifact{Kind: Script}); err == nil {
		t.Fatalf("empty path should error")
	}
	a, ok := b.Get("a.sh")
	if !ok || a.Lines() != 2 {
		t.Fatalf("get failed: %v %v", a, ok)
	}
	if b.Len() != 1 || len(b.Paths()) != 1 {
		t.Fatalf("bookkeeping wrong")
	}
}

func TestArtifactLines(t *testing.T) {
	cases := []struct {
		content string
		want    int
	}{
		{"", 0},
		{"x", 1},
		{"x\n", 1},
		{"x\ny", 2},
		{"x\ny\n", 2},
	}
	for _, c := range cases {
		a := Artifact{Content: c.content}
		if got := a.Lines(); got != c.want {
			t.Errorf("Lines(%q) = %d, want %d", c.content, got, c.want)
		}
	}
}

func TestBundleKindAccounting(t *testing.T) {
	b := NewBundle()
	b.Add(Artifact{Path: "s.sh", Kind: Script, Content: "1\n2\n3\n"})
	b.Add(Artifact{Path: "c.properties", Kind: Config, Content: "1\n"})
	b.Add(Artifact{Path: "d.dat", Kind: Data, Content: "1\n2\n"})
	if got := b.TotalLines(Script); got != 3 {
		t.Errorf("script lines = %d", got)
	}
	if got := b.TotalLines(-1); got != 6 {
		t.Errorf("all lines = %d", got)
	}
	if got := len(b.ByKind(Config)); got != 1 {
		t.Errorf("config artifacts = %d", got)
	}
	if b.TotalBytes() != len("1\n2\n3\n")+len("1\n")+len("1\n2\n") {
		t.Errorf("bytes = %d", b.TotalBytes())
	}
}

func TestBundleMerge(t *testing.T) {
	a, b := NewBundle(), NewBundle()
	a.Add(Artifact{Path: "x", Kind: Script, Content: "1\n"})
	b.Add(Artifact{Path: "x", Kind: Script, Content: "2\n"})
	if err := a.Merge("sub/", b); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get("sub/x"); !ok {
		t.Fatalf("merged path missing")
	}
	// Colliding prefix errors.
	c := NewBundle()
	c.Add(Artifact{Path: "sub/x", Kind: Script})
	if err := c.Merge("sub/", b); err == nil {
		t.Fatalf("merge collision should error")
	}
}

func TestBundleSummary(t *testing.T) {
	b := NewBundle()
	b.Add(Artifact{Path: "run.sh", Kind: Script, Content: "a\nb\n", Comment: "master"})
	s := b.Summary()
	if !strings.Contains(s, "run.sh") || !strings.Contains(s, "master") || !strings.Contains(s, "2 lines") {
		t.Fatalf("summary = %q", s)
	}
}

func TestKindString(t *testing.T) {
	if Script.String() != "script" || Config.String() != "config" || Data.String() != "data" {
		t.Fatalf("kind names wrong")
	}
	if ArtifactKind(9).String() == "" {
		t.Fatalf("unknown kind should render")
	}
}
