package mulini

import (
	"strings"
	"testing"

	"elba/internal/cim"
	"elba/internal/spec"
)

func testExperiment(t *testing.T, topo string) *spec.Experiment {
	t.Helper()
	doc, err := spec.Parse(`experiment "rubis-test" {
		benchmark rubis;
		platform emulab;
		appserver jonas;
		topologies ` + topo + `;
		workload { users 100 to 300 step 100; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	return doc.Experiments[0]
}

func testGenerator(t *testing.T) *Generator {
	t.Helper()
	cat, err := cim.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func generate122(t *testing.T) *Deployment {
	t.Helper()
	g := testGenerator(t)
	ds, err := g.Generate(testExperiment(t, "1-2-2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("deployments = %d", len(ds))
	}
	return ds[0]
}

func TestResolveAssignments(t *testing.T) {
	d := generate122(t)
	// 1 web + 2 app + 2 db + 1 client = 6 machines (paper §III.C: "two
	// machines for the application server tier and another 2 for the
	// database tier")
	if d.MachineCount() != 6 {
		t.Fatalf("machines = %d, want 6", d.MachineCount())
	}
	if got := d.Roles("app"); len(got) != 2 || got[0] != "JONAS1" || got[1] != "JONAS2" {
		t.Fatalf("app roles = %v", got)
	}
	if got := d.Roles("db"); len(got) != 2 || got[0] != "MYSQL1" {
		t.Fatalf("db roles = %v", got)
	}
	// C-JDBC controller co-located with MYSQL1 when replicated.
	m1, _ := d.Find("MYSQL1")
	found := false
	for _, p := range m1.Packages {
		if p.Name == "cjdbc" {
			found = true
		}
	}
	if !found {
		t.Fatalf("MYSQL1 should carry the C-JDBC controller: %+v", m1.Packages)
	}
	m2, _ := d.Find("MYSQL2")
	for _, p := range m2.Packages {
		if p.Name == "cjdbc" {
			t.Fatalf("MYSQL2 should not carry the controller")
		}
	}
	// Emulab allocation defaults: db pinned to the slow nodes.
	if m1.NodeType != "low-end" {
		t.Fatalf("db node type = %q, want low-end (paper §IV.A)", m1.NodeType)
	}
	app, _ := d.Find("JONAS1")
	if app.NodeType != "high-end" {
		t.Fatalf("app node type = %q", app.NodeType)
	}
}

func TestSingleDBHasNoController(t *testing.T) {
	g := testGenerator(t)
	ds, err := g.Generate(testExperiment(t, "1-1-1"))
	if err != nil {
		t.Fatal(err)
	}
	d := ds[0]
	m1, _ := d.Find("MYSQL1")
	for _, p := range m1.Packages {
		if p.Name == "cjdbc" {
			t.Fatalf("1-1-1 should not deploy C-JDBC")
		}
	}
	if _, ok := d.Bundle.Get("mysqldb-raidb1-elba.xml"); ok {
		t.Fatalf("1-1-1 should not generate the RAIDb config")
	}
}

// TestGeneratedScriptsMatchPaperTable4 verifies the generated script set
// includes the paper's examples with plausible sizes.
func TestGeneratedScriptsMatchPaperTable4(t *testing.T) {
	d := generate122(t)
	b := d.Bundle
	wantScripts := []string{
		"run.sh",
		"JONAS1_install.sh", "JONAS1_configure.sh", "JONAS1_ignition.sh", "JONAS1_stop.sh",
		"SYS_MON_JONAS1_install.sh", "SYS_MON_JONAS1_ignition.sh",
		"MYSQL2_install.sh", "APACHE1_ignition.sh", "CLIENT1_install.sh",
		"teardown.sh",
	}
	for _, p := range wantScripts {
		a, ok := b.Get(p)
		if !ok {
			t.Errorf("missing generated script %s", p)
			continue
		}
		if a.Kind != Script {
			t.Errorf("%s kind = %v", p, a.Kind)
		}
		if a.Lines() < 10 {
			t.Errorf("%s suspiciously short: %d lines", p, a.Lines())
		}
	}
	run, _ := b.Get("run.sh")
	ign, _ := b.Get("JONAS1_ignition.sh")
	stop, _ := b.Get("JONAS1_stop.sh")
	inst, _ := b.Get("JONAS1_install.sh")
	// Table 4 ordering: run.sh largest; install > ignition > stop.
	if !(run.Lines() > inst.Lines() && inst.Lines() > ign.Lines() && ign.Lines() >= stop.Lines()) {
		t.Errorf("script size ordering unlike Table 4: run=%d install=%d ignition=%d stop=%d",
			run.Lines(), inst.Lines(), ign.Lines(), stop.Lines())
	}
}

// TestGeneratedConfigsMatchPaperTable5 verifies the modified configuration
// files from Table 5 exist and reference the right components.
func TestGeneratedConfigsMatchPaperTable5(t *testing.T) {
	d := generate122(t)
	b := d.Bundle

	w2, ok := b.Get("workers2.properties")
	if !ok {
		t.Fatalf("workers2.properties missing")
	}
	if !strings.Contains(w2.Content, "JONAS1") || !strings.Contains(w2.Content, "JONAS2") {
		t.Errorf("workers2.properties must list both app servers:\n%s", w2.Content)
	}

	xml, ok := b.Get("mysqldb-raidb1-elba.xml")
	if !ok {
		t.Fatalf("mysqldb-raidb1-elba.xml missing")
	}
	for _, want := range []string{"RAIDb-1", "MYSQL1", "MYSQL2", "WaitForCompletion"} {
		if !strings.Contains(xml.Content, want) {
			t.Errorf("C-JDBC config missing %q", want)
		}
	}

	ml, ok := b.Get("monitorlocal.properties")
	if !ok {
		t.Fatalf("monitorlocal.properties missing")
	}
	if ml.Lines() < 5 || ml.Lines() > 8 {
		t.Errorf("monitorlocal.properties = %d lines, Table 5 says ~6", ml.Lines())
	}

	// per-host monitor configs, one per machine
	count := 0
	for _, p := range b.Paths() {
		if strings.HasPrefix(p, "monitor_") && strings.HasSuffix(p, ".properties") {
			count++
		}
	}
	if count != d.MachineCount() {
		t.Errorf("per-host monitor configs = %d, want %d", count, d.MachineCount())
	}
}

func TestDriverPropertiesCarryWorkload(t *testing.T) {
	d := generate122(t)
	props, ok := d.Bundle.Get("rubis_client.properties")
	if !ok {
		t.Fatalf("driver properties missing")
	}
	for _, want := range []string{
		"workload_users=100 to 300 step 100",
		"workload_write_ratio_pct=15",
		"topology=1-2-2",
		"warmup_s=60",
		"run_s=300",
		"seed=",
	} {
		if !strings.Contains(props.Content, want) {
			t.Errorf("driver properties missing %q:\n%s", want, props.Content)
		}
	}
}

func TestAppServerConfPointsAtController(t *testing.T) {
	d := generate122(t)
	conf, ok := d.Bundle.Get("JONAS1_server.properties")
	if !ok {
		t.Fatalf("app server config missing")
	}
	if !strings.Contains(conf.Content, "jdbc:cjdbc://MYSQL1") {
		t.Errorf("replicated DB should route through C-JDBC:\n%s", conf.Content)
	}
	if !strings.Contains(conf.Content, "server.max_clients=350") {
		t.Errorf("connection pool missing from app config")
	}

	// Single DB connects directly.
	g := testGenerator(t)
	ds, _ := g.Generate(testExperiment(t, "1-1-1"))
	conf2, _ := ds[0].Bundle.Get("JONAS1_server.properties")
	if !strings.Contains(conf2.Content, "jdbc:mysql://MYSQL1") {
		t.Errorf("single DB should connect directly:\n%s", conf2.Content)
	}
}

func TestRunShSequencesPhases(t *testing.T) {
	d := generate122(t)
	run, _ := d.Bundle.Get("run.sh")
	c := run.Content
	// db ignition must precede app ignition, which precedes web.
	dbIdx := strings.Index(c, "bash MYSQL1_ignition.sh")
	appIdx := strings.Index(c, "bash JONAS1_ignition.sh")
	webIdx := strings.Index(c, "bash APACHE1_ignition.sh")
	clientIdx := strings.Index(c, "bash CLIENT1_ignition.sh")
	if dbIdx < 0 || appIdx < 0 || webIdx < 0 || clientIdx < 0 {
		t.Fatalf("run.sh missing ignition calls:\n%s", c)
	}
	if !(dbIdx < appIdx && appIdx < webIdx && webIdx < clientIdx) {
		t.Errorf("ignition order wrong: db=%d app=%d web=%d client=%d", dbIdx, appIdx, webIdx, clientIdx)
	}
	if !strings.Contains(c, "elbactl allocate --role MYSQL1 --type low-end") {
		t.Errorf("allocation phase missing node-type pinning")
	}
}

func TestGenerateSweepProducesPerTopologyBundles(t *testing.T) {
	g := testGenerator(t)
	e := testExperiment(t, "1-1-1, 1-2-1, 1-2-2")
	ds, err := g.Generate(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("deployments = %d", len(ds))
	}
	if ds[0].Bundle.Len() >= ds[2].Bundle.Len() {
		t.Errorf("bigger topology should yield more artifacts: %d vs %d",
			ds[0].Bundle.Len(), ds[2].Bundle.Len())
	}
	rep := Scale(e, ds)
	if rep.Configurations != 3 {
		t.Errorf("scale configurations = %d", rep.Configurations)
	}
	if rep.MachineCount != 4+5+6 {
		t.Errorf("machine count = %d, want 15", rep.MachineCount)
	}
	if rep.ScriptLines < 500 {
		t.Errorf("script lines = %d, implausibly few", rep.ScriptLines)
	}
	if rep.ConfigFiles == 0 || rep.ConfigLines == 0 {
		t.Errorf("config accounting empty: %+v", rep)
	}
}

func TestCapacityCheck(t *testing.T) {
	g := testGenerator(t)
	// Warp has 56 nodes; a 1-60-1 topology cannot fit.
	doc, err := spec.Parse(`experiment "too-big" {
		benchmark rubis; platform warp; appserver weblogic;
		topology { web 1; app 60; db 1; }
		workload { users 100; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate(doc.Experiments[0]); err == nil {
		t.Fatalf("oversized topology should be rejected")
	}
	// Pinning to a node type the platform lacks must fail.
	doc2, err := spec.Parse(`experiment "bad-pin" {
		benchmark rubis; platform warp; appserver weblogic;
		workload { users 100; writeratio 15; }
		allocate { db low-end; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate(doc2.Experiments[0]); err == nil {
		t.Fatalf("unknown node type pin should be rejected")
	}
}

func TestGenerateOne(t *testing.T) {
	g := testGenerator(t)
	e := testExperiment(t, "1-1-1")
	d, err := g.GenerateOne(e, spec.Topology{Web: 1, App: 3, DB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Topology != (spec.Topology{Web: 1, App: 3, DB: 2}) {
		t.Fatalf("topology = %v", d.Topology)
	}
	// Original experiment untouched.
	if e.Topology != (spec.Topology{Web: 1, App: 1, DB: 1}) {
		t.Fatalf("GenerateOne mutated the input experiment")
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(nil, nil); err == nil {
		t.Fatalf("nil catalog should be rejected")
	}
	g := testGenerator(t)
	if g.Backend() != "shell" {
		t.Fatalf("default backend = %q", g.Backend())
	}
}
