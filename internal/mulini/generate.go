package mulini

import (
	"fmt"

	"elba/internal/cim"
	"elba/internal/spec"
)

// Backend renders a resolved deployment model into generated artifacts.
// Mulini translates its input "into one of several deployment languages"
// (paper §II); each target language is one Backend.
type Backend interface {
	// Name identifies the target language ("shell", "smartfrog").
	Name() string
	// Render produces the artifact bundle for one deployment.
	Render(d *Deployment) (*Bundle, error)
}

// Generator is the Mulini code generator: it resolves TBL experiments
// against a CIM catalog and renders deployments through a backend.
type Generator struct {
	catalog *cim.Catalog
	backend Backend
}

// NewGenerator creates a generator. A nil backend defaults to shell.
func NewGenerator(catalog *cim.Catalog, backend Backend) (*Generator, error) {
	if catalog == nil {
		return nil, fmt.Errorf("mulini: generator needs a CIM catalog")
	}
	if backend == nil {
		backend = ShellBackend{}
	}
	return &Generator{catalog: catalog, backend: backend}, nil
}

// Backend reports the generator's target language.
func (g *Generator) Backend() string { return g.backend.Name() }

// Generate resolves and renders every topology of the experiment,
// returning one deployment per w-a-d triple with its bundle attached.
func (g *Generator) Generate(e *spec.Experiment) ([]*Deployment, error) {
	if err := spec.Validate(e); err != nil {
		return nil, err
	}
	if err := g.checkPlatformCapacity(e); err != nil {
		return nil, err
	}
	var out []*Deployment
	for _, topo := range e.AllTopologies() {
		d, err := resolve(g.catalog, e, topo)
		if err != nil {
			return nil, err
		}
		bundle, err := g.backend.Render(d)
		if err != nil {
			return nil, fmt.Errorf("mulini: rendering %s/%s: %w", e.Name, topo, err)
		}
		d.Bundle = bundle
		out = append(out, d)
	}
	return out, nil
}

// GenerateOne renders a single topology, the entry point the scale-out
// controller uses when it grows the bottleneck tier between iterations.
func (g *Generator) GenerateOne(e *spec.Experiment, topo spec.Topology) (*Deployment, error) {
	scoped := *e
	scoped.Topology = topo
	scoped.Topologies = nil
	ds, err := g.Generate(&scoped)
	if err != nil {
		return nil, err
	}
	return ds[0], nil
}

// checkPlatformCapacity verifies the experiment's largest topology fits
// the platform's node pools, accounting for per-tier node-type pinning.
func (g *Generator) checkPlatformCapacity(e *spec.Experiment) error {
	platform, ok := g.catalog.PlatformByName(e.Platform)
	if !ok {
		return fmt.Errorf("mulini: platform %q not in catalog", e.Platform)
	}
	capacity := map[string]int{}
	total := 0
	for _, pool := range platform.Pools {
		capacity[pool.NodeType] += pool.NodeCount
		total += pool.NodeCount
	}
	for _, topo := range e.AllTopologies() {
		need := map[string]int{}
		// +1 machine for the client driver, allocated like the web tier.
		tiers := []struct {
			name  string
			count int
		}{{"web", topo.Web}, {"app", topo.App}, {"db", topo.DB}, {"web", 1}}
		anyNeed := 0
		for _, t := range tiers {
			if nt := e.Allocate[t.name]; nt != "" {
				need[nt] += t.count
			} else {
				anyNeed += t.count
			}
		}
		for nt, n := range need {
			have, ok := capacity[nt]
			if !ok {
				return fmt.Errorf("mulini: experiment %q pins tier to node type %q, absent from platform %q",
					e.Name, nt, e.Platform)
			}
			if n > have {
				return fmt.Errorf("mulini: experiment %q topology %s needs %d %q nodes; platform %q has %d",
					e.Name, topo, n, nt, e.Platform, have)
			}
		}
		if topo.Nodes()+1 > total {
			return fmt.Errorf("mulini: experiment %q topology %s needs %d nodes; platform %q has %d",
				e.Name, topo, topo.Nodes()+1, e.Platform, total)
		}
	}
	return nil
}

// ScaleReport summarizes the generation scale of an experiment set, the
// data behind the paper's Table 3 row for that set.
type ScaleReport struct {
	// Experiment names the set.
	Experiment string
	// Configurations counts the topologies generated.
	Configurations int
	// MachineCount sums machines across all configurations.
	MachineCount int
	// ScriptLines and ScriptFiles count generated executable code.
	ScriptLines int
	ScriptFiles int
	// ConfigLines and ConfigFiles count the vendor configuration files
	// Mulini creates or modifies.
	ConfigLines int
	ConfigFiles int
}

// Scale computes the scale report for a generated experiment set.
func Scale(e *spec.Experiment, deployments []*Deployment) ScaleReport {
	r := ScaleReport{Experiment: e.Name, Configurations: len(deployments)}
	for _, d := range deployments {
		r.MachineCount += d.MachineCount()
		if d.Bundle == nil {
			continue
		}
		r.ScriptLines += d.Bundle.TotalLines(Script)
		r.ScriptFiles += len(d.Bundle.ByKind(Script))
		r.ConfigLines += d.Bundle.TotalLines(Config) + d.Bundle.TotalLines(Data)
		r.ConfigFiles += len(d.Bundle.ByKind(Config)) + len(d.Bundle.ByKind(Data))
	}
	return r
}
