package mulini

import (
	"fmt"
	"strings"

	"elba/internal/cim"
	"elba/internal/spec"
)

// Pkg is a software package pinned to a version, resolved from the CIM
// catalog.
type Pkg struct {
	Name    string
	Version string
	// MaxClients is the server's connection-pool size (0 = unlimited).
	MaxClients int
	// Port is the service port derived from the catalog's PortBase.
	Port int
}

// Assignment binds a deployment role to a node-type allocation hint and
// the packages the role runs. Hostnames are assigned at deployment time;
// generated scripts refer to roles.
type Assignment struct {
	// Role is the unique role name, e.g. "MYSQL2" or "CLIENT1".
	Role string
	// Tier is "web", "app", "db", or "client".
	Tier string
	// Index is the 1-based replica index within the tier.
	Index int
	// NodeType is the allocation hint (e.g. "low-end"); "" means any.
	NodeType string
	// Packages are installed in order.
	Packages []Pkg
}

// Deployment is the resolved model for one topology of an experiment:
// the input Mulini's backends render into scripts and configs.
type Deployment struct {
	// Experiment is the TBL experiment this deployment belongs to.
	Experiment *spec.Experiment
	// Topology is the w-a-d triple this deployment realizes.
	Topology spec.Topology
	// Assignments lists server and client roles in deployment order.
	Assignments []Assignment
	// AppServerPkg names the application-server package in use.
	AppServerPkg string
	// Bundle holds the generated artifacts once a backend has rendered
	// the deployment.
	Bundle *Bundle
}

// Roles lists role names for a tier, in index order.
func (d *Deployment) Roles(tier string) []string {
	var out []string
	for _, a := range d.Assignments {
		if a.Tier == tier {
			out = append(out, a.Role)
		}
	}
	return out
}

// Find returns the assignment for a role.
func (d *Deployment) Find(role string) (Assignment, bool) {
	for _, a := range d.Assignments {
		if a.Role == role {
			return a, true
		}
	}
	return Assignment{}, false
}

// MachineCount reports the number of machines the deployment occupies,
// including the client-driver node.
func (d *Deployment) MachineCount() int { return len(d.Assignments) }

// roleName builds the paper-style role identifier, e.g. "TOMCAT1" for the
// first Tomcat node or "MYSQL2".
func roleName(pkg string, index int) string {
	return strings.ToUpper(pkg) + fmt.Sprint(index)
}

// resolve computes the deployment model for one topology from the
// experiment and the CIM catalog. The layout follows the paper's setup:
// Apache on every web node, the chosen application server (plus monitors)
// on every app node, MySQL on every db node, the C-JDBC controller
// co-located with the first database when the DB tier is replicated, and
// one client node running the generated workload driver.
func resolve(cat *cim.Catalog, e *spec.Experiment, topo spec.Topology) (*Deployment, error) {
	d := &Deployment{Experiment: e, Topology: topo}

	lookup := func(name string) (Pkg, error) {
		sw, ok := cat.SoftwareByName(name)
		if !ok {
			return Pkg{}, fmt.Errorf("mulini: software %q not in catalog", name)
		}
		return Pkg{Name: sw.Name, Version: sw.Version, MaxClients: sw.MaxClients, Port: sw.PortBase}, nil
	}

	apache, err := lookup("apache")
	if err != nil {
		return nil, err
	}
	sysstat, err := lookup("sysstat")
	if err != nil {
		return nil, err
	}
	appPkg, err := lookup(e.AppServer)
	if err != nil {
		return nil, err
	}
	mysql, err := lookup("mysql")
	if err != nil {
		return nil, err
	}
	cjdbc, err := lookup("cjdbc")
	if err != nil {
		return nil, err
	}
	d.AppServerPkg = appPkg.Name

	nodeType := func(tier string) string { return e.Allocate[tier] }

	for i := 1; i <= topo.Web; i++ {
		d.Assignments = append(d.Assignments, Assignment{
			Role: roleName(apache.Name, i), Tier: "web", Index: i,
			NodeType: nodeType("web"),
			Packages: []Pkg{apache, sysstat},
		})
	}
	for i := 1; i <= topo.App; i++ {
		d.Assignments = append(d.Assignments, Assignment{
			Role: roleName(appPkg.Name, i), Tier: "app", Index: i,
			NodeType: nodeType("app"),
			Packages: []Pkg{appPkg, sysstat},
		})
	}
	for i := 1; i <= topo.DB; i++ {
		pkgs := []Pkg{mysql, sysstat}
		if i == 1 && topo.DB > 1 {
			// The C-JDBC controller fronts the replicated backends.
			pkgs = []Pkg{mysql, cjdbc, sysstat}
		}
		d.Assignments = append(d.Assignments, Assignment{
			Role: roleName(mysql.Name, i), Tier: "db", Index: i,
			NodeType: nodeType("db"),
			Packages: pkgs,
		})
	}
	driver := Pkg{Name: e.Benchmark + "-client", Version: "1.0", Port: 0}
	d.Assignments = append(d.Assignments, Assignment{
		Role: "CLIENT1", Tier: "client", Index: 1,
		NodeType: nodeType("web"), // client runs on a fast node
		Packages: []Pkg{driver, sysstat},
	})
	return d, nil
}
