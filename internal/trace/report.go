package trace

import (
	"fmt"
	"sort"
)

// AllClasses is the interaction-class label of decomposition rows that
// aggregate every interaction.
const AllClasses = "all"

// DecompRow is one row of the per-tier latency-decomposition table: the
// wait/service statistics of one tier for one interaction class. All
// times are milliseconds.
type DecompRow struct {
	// Interaction is the interaction class, or AllClasses for the
	// aggregate over every class.
	Interaction string `json:"interaction"`
	// Tier is the request-path tier ("web", "app", "db").
	Tier string `json:"tier"`
	// Count is the number of traced requests contributing.
	Count int `json:"count"`

	MeanWaitMs float64 `json:"mean_wait_ms"`
	P95WaitMs  float64 `json:"p95_wait_ms"`
	MeanSvcMs  float64 `json:"mean_svc_ms"`
	P95SvcMs   float64 `json:"p95_svc_ms"`
}

// tierOrder ranks tiers in request-path order for stable row ordering.
func tierOrder(tier string) int {
	switch tier {
	case TierWeb:
		return 0
	case TierApp:
		return 1
	case TierDB:
		return 2
	default:
		return 3
	}
}

// Decompose aggregates traces into the per-tier latency-decomposition
// table: for every interaction class (plus the AllClasses aggregate) and
// every tier, the mean and 95th-percentile queue-wait and service times
// of that tier's contribution to the response. Rows are ordered by class
// name (AllClasses first) then request-path tier order, so the table is
// deterministic for a deterministic trace set.
func Decompose(traces []*Trace) []DecompRow {
	type cell struct{ waits, svcs []float64 }
	cells := map[string]map[string]*cell{} // class → tier → samples
	observe := func(class, tier string, c Contribution) {
		byTier := cells[class]
		if byTier == nil {
			byTier = map[string]*cell{}
			cells[class] = byTier
		}
		cl := byTier[tier]
		if cl == nil {
			cl = &cell{}
			byTier[tier] = cl
		}
		cl.waits = append(cl.waits, c.WaitSec*1000)
		cl.svcs = append(cl.svcs, c.ServiceSec*1000)
	}
	for _, t := range traces {
		if len(t.Spans) == 0 {
			continue
		}
		web, app, db := t.TierContributions()
		for _, class := range []string{AllClasses, t.Interaction} {
			observe(class, TierWeb, web)
			observe(class, TierApp, app)
			observe(class, TierDB, db)
		}
	}

	classes := make([]string, 0, len(cells))
	for class := range cells {
		if class != AllClasses {
			classes = append(classes, class)
		}
	}
	sort.Strings(classes)
	if _, ok := cells[AllClasses]; ok {
		classes = append([]string{AllClasses}, classes...)
	}

	var rows []DecompRow
	for _, class := range classes {
		byTier := cells[class]
		tiers := make([]string, 0, len(byTier))
		for tier := range byTier {
			tiers = append(tiers, tier)
		}
		sort.Slice(tiers, func(i, j int) bool { return tierOrder(tiers[i]) < tierOrder(tiers[j]) })
		for _, tier := range tiers {
			cl := byTier[tier]
			rows = append(rows, DecompRow{
				Interaction: class, Tier: tier, Count: len(cl.waits),
				MeanWaitMs: mean(cl.waits), P95WaitMs: percentile(cl.waits, 0.95),
				MeanSvcMs: mean(cl.svcs), P95SvcMs: percentile(cl.svcs, 0.95),
			})
		}
	}
	return rows
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// percentile reports the q-quantile of xs by linear interpolation between
// order statistics (the same estimator metrics.Sample uses). xs is sorted
// in place.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	i := int(pos)
	if i >= len(xs)-1 {
		return xs[len(xs)-1]
	}
	frac := pos - float64(i)
	return xs[i] + frac*(xs[i+1]-xs[i])
}

// Verdict is the trace-based bottleneck attribution: which tier the
// critical paths of the traced requests point at, independently of any
// utilization observation. It is the application-level cross-check of the
// utilization-based bottleneck.Detect verdict.
type Verdict struct {
	// Tier is the tier attributed the most critical paths, or "none" when
	// no trace carries spans.
	Tier string `json:"tier"`
	// Share is the fraction of traced requests whose critical path lies
	// in Tier.
	Share float64 `json:"share"`
	// QueueShare is the fraction of Tier's attributed time spent queued
	// rather than in service — near 1 means requests are waiting for the
	// tier, the latency signature of saturation; near 0 means the tier is
	// merely doing the most work.
	QueueShare float64 `json:"queue_share"`
	// Traces is the number of traced requests attributed.
	Traces int `json:"traces"`
	// Reason is a human-readable explanation for reports.
	Reason string `json:"reason,omitempty"`
}

// Attribute computes the trace-based bottleneck verdict: each traced
// request's latency is attributed to its critical-path tier, and the
// tier collecting the most attributions wins. QueueShare is computed
// over the winning tier's contributions across all traces.
func Attribute(traces []*Trace) Verdict {
	counts := map[string]int{}
	total := 0
	var wait, svc [3]float64 // per-tier accumulated contribution
	for _, t := range traces {
		ct := t.CriticalTier()
		if ct == "" {
			continue
		}
		counts[ct]++
		total++
		web, app, db := t.TierContributions()
		for i, c := range []Contribution{web, app, db} {
			wait[i] += c.WaitSec
			svc[i] += c.ServiceSec
		}
	}
	if total == 0 {
		return Verdict{Tier: "none", Reason: "no traced requests"}
	}
	best := "none"
	for _, tier := range []string{TierWeb, TierApp, TierDB} {
		if best == "none" || counts[tier] > counts[best] {
			if counts[tier] > 0 {
				best = tier
			}
		}
	}
	v := Verdict{
		Tier:   best,
		Share:  float64(counts[best]) / float64(total),
		Traces: total,
	}
	i := tierOrder(best)
	if tot := wait[i] + svc[i]; tot > 0 {
		v.QueueShare = wait[i] / tot
	}
	v.Reason = fmt.Sprintf("%.0f%% of %d traced requests spend most time in the %s tier (%.0f%% of it queued)",
		v.Share*100, total, best, v.QueueShare*100)
	return v
}

// SpanRecord is the serialized form of one span inside an exemplar.
type SpanRecord struct {
	Tier      string  `json:"tier"`
	Station   string  `json:"station"`
	StartSec  float64 `json:"start_sec"`
	WaitMs    float64 `json:"wait_ms"`
	ServiceMs float64 `json:"service_ms"`
	Err       bool    `json:"err,omitempty"`
}

// Exemplar is one captured trace persisted in the result store: the
// slowest requests of a trial, kept in full span detail so a stored
// result can explain its own tail latency.
type Exemplar struct {
	Interaction  string       `json:"interaction"`
	Session      int          `json:"session"`
	IssuedSec    float64      `json:"issued_sec"`
	RTms         float64      `json:"rt_ms"`
	Outcome      string       `json:"outcome"`
	CriticalTier string       `json:"critical_tier"`
	Spans        []SpanRecord `json:"spans"`
}

// Exemplars captures the k slowest traces as serializable exemplars,
// ordered slowest first. Ties break on issue time then session, so the
// selection is deterministic.
func Exemplars(traces []*Trace, k int) []Exemplar {
	if k <= 0 || len(traces) == 0 {
		return nil
	}
	idx := make([]int, len(traces))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := traces[idx[a]], traces[idx[b]]
		if ta.RT != tb.RT {
			return ta.RT > tb.RT
		}
		if ta.Issued != tb.Issued {
			return ta.Issued < tb.Issued
		}
		return ta.Session < tb.Session
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Exemplar, 0, k)
	for _, i := range idx[:k] {
		t := traces[i]
		ex := Exemplar{
			Interaction:  t.Interaction,
			Session:      t.Session,
			IssuedSec:    t.Issued,
			RTms:         t.RT * 1000,
			Outcome:      t.Outcome,
			CriticalTier: t.CriticalTier(),
			Spans:        make([]SpanRecord, len(t.Spans)),
		}
		for j, s := range t.Spans {
			ex.Spans[j] = SpanRecord{
				Tier: s.Tier, Station: s.Station, StartSec: s.Start,
				WaitMs: s.Wait * 1000, ServiceMs: s.Service * 1000, Err: s.Err,
			}
		}
		out = append(out, ex)
	}
	return out
}

// Report is the per-trial trace analysis persisted in the result store:
// sampling metadata, the latency-decomposition rows, the trace-based
// bottleneck verdict, and the slowest-trace exemplars.
type Report struct {
	// Rate is the head-sampling probability the trial ran with.
	Rate float64 `json:"rate"`
	// Sampled is the number of committed traces.
	Sampled int `json:"sampled"`
	// Verdict is the critical-path bottleneck attribution.
	Verdict Verdict `json:"verdict"`
	// Rows is the per-tier latency decomposition per interaction class.
	Rows []DecompRow `json:"rows,omitempty"`
	// Exemplars are the slowest traces captured in full, slowest first.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// BuildReport analyzes a trial's collected traces into the persisted
// report form, capturing at most k exemplars.
func BuildReport(c *Collector, k int) *Report {
	ts := c.Traces()
	return &Report{
		Rate:      c.Rate(),
		Sampled:   len(ts),
		Verdict:   Attribute(ts),
		Rows:      Decompose(ts),
		Exemplars: Exemplars(ts, k),
	}
}
