package trace

import "encoding/json"

// Chrome trace-event export: exemplar traces rendered in the Trace Event
// Format that chrome://tracing and Perfetto load directly. Each exemplar
// group (typically one trial) becomes one process row; each exemplar
// becomes one thread holding the root request slice with its tier-hop
// slices nested under it. Queue wait and service render as separate
// slices so the wait/service split is visible on the timeline.

// chromeEvent is one Trace Event Format entry. Only the fields the
// "X" (complete) and "M" (metadata) phases need are present.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`            // microseconds
	Dur   float64           `json:"dur,omitempty"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ExemplarGroup names a set of exemplars exported together, e.g. one
// trial's capture labelled by its store key.
type ExemplarGroup struct {
	// Name labels the group's process row, e.g. "rubis/1-2-1/u=500/w=15%".
	Name string
	// Exemplars are the group's captured traces.
	Exemplars []Exemplar
}

// ChromeJSON renders exemplar groups as a Chrome trace-event file. The
// output is a deterministic function of the input: groups become pids in
// slice order, exemplars become tids in slice order, and events are
// emitted in that same order.
func ChromeJSON(groups []ExemplarGroup) ([]byte, error) {
	f := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for pid, g := range groups {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]string{"name": g.Name},
		})
		for tid, ex := range g.Exemplars {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: tid,
				Args: map[string]string{"name": ex.Interaction},
			})
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: ex.Interaction, Phase: "X",
				TS: ex.IssuedSec * 1e6, Dur: ex.RTms * 1e3,
				PID: pid, TID: tid,
				Args: map[string]string{
					"outcome":       ex.Outcome,
					"critical_tier": ex.CriticalTier,
				},
			})
			for _, s := range ex.Spans {
				ts := s.StartSec * 1e6
				if s.WaitMs > 0 {
					f.TraceEvents = append(f.TraceEvents, chromeEvent{
						Name: s.Tier + " wait (" + s.Station + ")", Phase: "X",
						TS: ts, Dur: s.WaitMs * 1e3, PID: pid, TID: tid,
					})
				}
				ev := chromeEvent{
					Name: s.Tier + " service (" + s.Station + ")", Phase: "X",
					TS: ts + s.WaitMs*1e3, Dur: s.ServiceMs * 1e3, PID: pid, TID: tid,
				}
				if s.Err {
					ev.Args = map[string]string{"error": "rejected"}
				}
				f.TraceEvents = append(f.TraceEvents, ev)
			}
		}
	}
	return json.MarshalIndent(f, "", " ")
}
