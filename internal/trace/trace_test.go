package trace

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
)

func mkTrace(interaction string, rt float64, spans ...Span) *Trace {
	t := &Trace{Interaction: interaction, RT: rt, Outcome: "ok"}
	t.Spans = append(t.Spans, spans...)
	return t
}

func TestTierContributionsSequentialAndFanOut(t *testing.T) {
	// A write with three db replica legs: db contribution is the slowest
	// leg's wait+service, not the sum and not independent maxima.
	tr := mkTrace("PutBid", 0,
		Span{Tier: TierWeb, Station: "WEB1", Wait: 0.01, Service: 0.02},
		Span{Tier: TierApp, Station: "JONAS1", Wait: 0.03, Service: 0.04},
		Span{Tier: TierDB, Station: "MYSQL1", Wait: 0.10, Service: 0.01},
		Span{Tier: TierDB, Station: "MYSQL2", Wait: 0.02, Service: 0.05},
		Span{Tier: TierDB, Station: "MYSQL3", Wait: 0.00, Service: 0.12},
	)
	tr.Write = true
	web, app, db := tr.TierContributions()
	if web.WaitSec != 0.01 || web.ServiceSec != 0.02 {
		t.Errorf("web contribution = %+v", web)
	}
	if app.WaitSec != 0.03 || app.ServiceSec != 0.04 {
		t.Errorf("app contribution = %+v", app)
	}
	// Slowest leg is MYSQL3 at 0.12 total (MYSQL1 is 0.11, MYSQL2 0.07).
	if db.WaitSec != 0 || db.ServiceSec != 0.12 {
		t.Errorf("db contribution = %+v, want slowest leg {0, 0.12}", db)
	}
	if got := tr.CriticalTier(); got != TierDB {
		t.Errorf("critical tier = %q, want db", got)
	}
}

func TestCriticalTierTieBreaksInPathOrder(t *testing.T) {
	tr := mkTrace("Browse", 0,
		Span{Tier: TierWeb, Wait: 0.05, Service: 0.05},
		Span{Tier: TierApp, Wait: 0.05, Service: 0.05},
		Span{Tier: TierDB, Wait: 0.05, Service: 0.05},
	)
	if got := tr.CriticalTier(); got != TierWeb {
		t.Errorf("tied critical tier = %q, want web (path order)", got)
	}
	if got := (&Trace{}).CriticalTier(); got != "" {
		t.Errorf("empty trace critical tier = %q, want empty", got)
	}
}

func TestSampleDeterministicAndUnbiased(t *testing.T) {
	c := NewCollector(42, 0.3)
	// Determinism: the same (seed, index) always answers the same.
	for i := uint64(0); i < 1000; i++ {
		if c.Sample(i) != c.Sample(i) {
			t.Fatalf("sampling decision for request %d is unstable", i)
		}
	}
	d := NewCollector(42, 0.3)
	for i := uint64(0); i < 1000; i++ {
		if c.Sample(i) != d.Sample(i) {
			t.Fatalf("two collectors with the same seed disagree at %d", i)
		}
	}
	// Rough unbiasedness at the configured rate.
	kept := 0
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if c.Sample(i) {
			kept++
		}
	}
	if frac := float64(kept) / n; math.Abs(frac-0.3) > 0.02 {
		t.Errorf("sampling fraction = %.3f, want ~0.30", frac)
	}
	// Edge rates.
	if NewCollector(1, 0).Sample(7) {
		t.Error("rate 0 sampled a request")
	}
	if !NewCollector(1, 1).Sample(7) {
		t.Error("rate 1 dropped a request")
	}
	// Different seeds give different decision streams.
	e := NewCollector(43, 0.3)
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if c.Sample(i) == e.Sample(i) {
			same++
		}
	}
	if same == 1000 {
		t.Error("independent seeds produced identical decision streams")
	}
}

func TestSeedForStableAndDistinct(t *testing.T) {
	if SeedFor(7) != SeedFor(7) {
		t.Error("SeedFor is not a pure function")
	}
	if SeedFor(7) == 7 {
		t.Error("SeedFor must not be the identity: the trace stream would alias the trial stream")
	}
	if SeedFor(7) == SeedFor(8) {
		t.Error("distinct trial seeds collided")
	}
}

func TestCollectorPoolingReusesTraces(t *testing.T) {
	c := NewCollector(1, 1)
	tr := c.Start("A", 1, 0.5, false)
	tr.AddSpan(TierWeb, "WEB1", 0.5, 0.1, 0.2, true)
	c.Commit(tr, 0.3, "ok")
	if c.Len() != 1 {
		t.Fatalf("committed traces = %d", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("reset left %d traces", c.Len())
	}
	tr2 := c.Start("B", 2, 1.5, true)
	if tr2 != tr {
		t.Error("collector did not reuse the pooled trace")
	}
	if len(tr2.Spans) != 0 || tr2.Interaction != "B" || tr2.Outcome != "" {
		t.Errorf("pooled trace not reset: %+v", tr2)
	}
	if cap(tr2.Spans) == 0 {
		t.Error("pooled trace lost its span capacity")
	}
	// Discard also returns to the pool.
	c.Discard(tr2)
	if tr3 := c.Start("C", 3, 2.5, false); tr3 != tr2 {
		t.Error("discarded trace was not pooled")
	}
}

func TestDecomposeRowsAndStatistics(t *testing.T) {
	var traces []*Trace
	for i := 0; i < 10; i++ {
		traces = append(traces, mkTrace("Browse", 0,
			Span{Tier: TierWeb, Wait: 0.001, Service: 0.002},
			Span{Tier: TierApp, Wait: 0.010, Service: 0.020},
			Span{Tier: TierDB, Wait: 0.005, Service: 0.005},
		))
	}
	traces = append(traces, mkTrace("PutBid", 0,
		Span{Tier: TierWeb, Wait: 0.002, Service: 0.002},
		Span{Tier: TierApp, Wait: 0.020, Service: 0.020},
		Span{Tier: TierDB, Wait: 0.050, Service: 0.010},
	))
	rows := Decompose(traces)
	// 3 classes (all, Browse, PutBid) × 3 tiers.
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	if rows[0].Interaction != AllClasses || rows[0].Tier != TierWeb {
		t.Errorf("first row = %+v, want all/web", rows[0])
	}
	find := func(class, tier string) DecompRow {
		for _, r := range rows {
			if r.Interaction == class && r.Tier == tier {
				return r
			}
		}
		t.Fatalf("no row for %s/%s", class, tier)
		return DecompRow{}
	}
	browseApp := find("Browse", TierApp)
	if browseApp.Count != 10 || math.Abs(browseApp.MeanWaitMs-10) > 1e-9 {
		t.Errorf("Browse/app row = %+v", browseApp)
	}
	allDB := find(AllClasses, TierDB)
	if allDB.Count != 11 {
		t.Errorf("all/db count = %d, want 11", allDB.Count)
	}
	wantMean := (10*5.0 + 50) / 11
	if math.Abs(allDB.MeanWaitMs-wantMean) > 1e-9 {
		t.Errorf("all/db mean wait = %g, want %g", allDB.MeanWaitMs, wantMean)
	}
	if Decompose(nil) != nil {
		t.Error("empty trace set should decompose to no rows")
	}
}

func TestAttributeVerdict(t *testing.T) {
	var traces []*Trace
	for i := 0; i < 8; i++ {
		traces = append(traces, mkTrace("Browse", 0,
			Span{Tier: TierWeb, Wait: 0, Service: 0.001},
			Span{Tier: TierApp, Wait: 0.080, Service: 0.010},
			Span{Tier: TierDB, Wait: 0.001, Service: 0.005},
		))
	}
	for i := 0; i < 2; i++ {
		traces = append(traces, mkTrace("Search", 0,
			Span{Tier: TierWeb, Wait: 0, Service: 0.001},
			Span{Tier: TierApp, Wait: 0, Service: 0.002},
			Span{Tier: TierDB, Wait: 0.001, Service: 0.050},
		))
	}
	v := Attribute(traces)
	if v.Tier != TierApp {
		t.Fatalf("verdict tier = %q, want app", v.Tier)
	}
	if v.Share != 0.8 || v.Traces != 10 {
		t.Errorf("share=%g traces=%d, want 0.8/10", v.Share, v.Traces)
	}
	if v.QueueShare < 0.8 {
		t.Errorf("queue share = %g, want wait-dominated (app spends 80ms queued vs 10ms served)", v.QueueShare)
	}
	if !strings.Contains(v.Reason, "app") {
		t.Errorf("reason %q does not name the tier", v.Reason)
	}
	empty := Attribute(nil)
	if empty.Tier != "none" || empty.Traces != 0 {
		t.Errorf("empty verdict = %+v", empty)
	}
}

func TestExemplarsSlowestFirstDeterministic(t *testing.T) {
	mk := func(rt, issued float64, sess int) *Trace {
		tr := mkTrace("X", rt, Span{Tier: TierApp, Wait: rt / 2, Service: rt / 2})
		tr.Issued, tr.Session = issued, sess
		return tr
	}
	traces := []*Trace{
		mk(0.1, 1, 1), mk(0.5, 2, 2), mk(0.3, 3, 3),
		mk(0.5, 1, 4), // ties with sess 2 on RT; earlier issue wins
	}
	ex := Exemplars(traces, 3)
	if len(ex) != 3 {
		t.Fatalf("exemplars = %d, want 3", len(ex))
	}
	if ex[0].Session != 4 || ex[1].Session != 2 || ex[2].Session != 3 {
		t.Errorf("exemplar order = %d,%d,%d, want 4,2,3", ex[0].Session, ex[1].Session, ex[2].Session)
	}
	if ex[0].RTms != 500 {
		t.Errorf("exemplar RT = %g ms, want 500", ex[0].RTms)
	}
	if ex[0].CriticalTier != TierApp {
		t.Errorf("exemplar critical tier = %q", ex[0].CriticalTier)
	}
	if got := Exemplars(traces, 100); len(got) != 4 {
		t.Errorf("k beyond len kept %d, want all 4", len(got))
	}
	if Exemplars(traces, 0) != nil || Exemplars(nil, 5) != nil {
		t.Error("k=0 or empty traces should capture nothing")
	}
}

func TestPercentileEstimator(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := percentile(xs, 1); got != 5 {
		t.Errorf("p100 = %g", got)
	}
	if got := percentile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %g", got)
	}
	// Quartile interpolates between order statistics.
	if got := percentile(xs, 0.25); got != 2 {
		t.Errorf("p25 = %g", got)
	}
	if got := percentile(xs, 0.95); math.Abs(got-4.8) > 1e-9 {
		t.Errorf("p95 = %g, want 4.8", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %g", got)
	}
}

func TestBuildReportAndJSONRoundTrip(t *testing.T) {
	c := NewCollector(9, 1)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 50; i++ {
		tr := c.Start("Browse", i, float64(i), false)
		tr.AddSpan(TierWeb, "WEB1", float64(i), 0.001*rng.Float64(), 0.002, true)
		tr.AddSpan(TierApp, "JONAS1", float64(i)+0.01, 0.05*rng.Float64(), 0.01, true)
		tr.AddSpan(TierDB, "MYSQL1", float64(i)+0.05, 0.002, 0.005, true)
		c.Commit(tr, 0.07, "ok")
	}
	rep := BuildReport(c, 5)
	if rep.Sampled != 50 || rep.Rate != 1 {
		t.Fatalf("report sampled=%d rate=%g", rep.Sampled, rep.Rate)
	}
	if len(rep.Exemplars) != 5 {
		t.Fatalf("exemplars = %d", len(rep.Exemplars))
	}
	if rep.Verdict.Tier != TierApp {
		t.Errorf("verdict tier = %q, want app", rep.Verdict.Tier)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sampled != rep.Sampled || back.Verdict.Tier != rep.Verdict.Tier ||
		len(back.Rows) != len(rep.Rows) || len(back.Exemplars) != len(rep.Exemplars) {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}

func TestChromeJSONStructure(t *testing.T) {
	groups := []ExemplarGroup{{
		Name: "rubis/1-2-1/u=100/w=15%",
		Exemplars: []Exemplar{{
			Interaction: "PutBid", IssuedSec: 1.5, RTms: 120, Outcome: "ok",
			CriticalTier: TierDB,
			Spans: []SpanRecord{
				{Tier: TierWeb, Station: "WEB1", StartSec: 1.5, WaitMs: 1, ServiceMs: 2},
				{Tier: TierDB, Station: "MYSQL1", StartSec: 1.55, WaitMs: 0, ServiceMs: 80},
			},
		}},
	}}
	data, err := ChromeJSON(groups)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// 2 metadata + 1 root + 1 web wait + 1 web service + 1 db service
	// (zero-wait spans emit no wait slice).
	if len(f.TraceEvents) != 6 {
		t.Fatalf("events = %d, want 6: %s", len(f.TraceEvents), data)
	}
	var phases []string
	for _, ev := range f.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	sort.Strings(phases)
	if phases[0] != "M" || phases[len(phases)-1] != "X" {
		t.Errorf("phases = %v", phases)
	}
	// Determinism: same input, same bytes.
	again, err := ChromeJSON(groups)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("ChromeJSON is not deterministic")
	}
}
