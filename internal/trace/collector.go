package trace

import "math/rand/v2"

// SeedFor derives the trace-sampling seed from a trial's derived seed by
// folding a domain label through the same FNV-1a mixing the trial-seed
// and fault-plan derivations use. Keeping the domain separate means
// enabling tracing never perturbs any other stream drawn from the trial
// seed — a traced run measures exactly what an untraced run measures.
func SeedFor(trialSeed uint64) uint64 {
	h := trialSeed
	for _, c := range []byte("trace") {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Collector gathers the sampled traces of one trial. Like the simulation
// kernel it serves, a collector is single-owner: one collector per trial,
// no locks, so parallel trials never contend or interleave. Trace objects
// are pooled so steady-state tracing allocates only when a trace's span
// tree first grows.
type Collector struct {
	seed uint64
	rate float64

	traces []*Trace
	pool   []*Trace
}

// NewCollector creates a collector sampling each request with the given
// probability. The keep/drop decision for request i is a pure function of
// (seed, i); rate is clamped to [0, 1].
func NewCollector(seed uint64, rate float64) *Collector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Collector{seed: seed, rate: rate}
}

// Rate reports the sampling probability.
func (c *Collector) Rate() float64 { return c.rate }

// Sample reports whether the request with the given issue index is
// traced. The decision hashes (seed, req) with FNV-1a and draws one PCG
// variate — the same derivation scheme as trial seeds and fault plans —
// so it is independent of every other random stream in the trial and
// identical for any worker count. The PCG state lives on the stack, so a
// decision allocates nothing.
func (c *Collector) Sample(req uint64) bool {
	if c.rate <= 0 {
		return false
	}
	if c.rate >= 1 {
		return true
	}
	h := c.seed
	mix := func(x uint64) {
		h ^= x
		h *= 0x100000001b3
	}
	mix(req)
	mix(req >> 32)
	if h == 0 {
		h = 1
	}
	var pcg rand.PCG
	pcg.Seed(h, h^0x9e3779b97f4a7c15)
	// Top 53 bits → uniform float in [0, 1), the math/rand/v2 construction.
	return float64(pcg.Uint64()>>11)/(1<<53) < c.rate
}

// Start begins a trace for one request, drawing from the trace pool.
func (c *Collector) Start(interaction string, session int, issued float64, write bool) *Trace {
	var t *Trace
	if n := len(c.pool); n > 0 {
		t = c.pool[n-1]
		c.pool = c.pool[:n-1]
	} else {
		t = &Trace{}
	}
	t.Interaction = interaction
	t.Session = session
	t.Issued = issued
	t.Write = write
	return t
}

// Commit finalizes a started trace with its end-to-end outcome and
// records it. Traces commit at request-completion events, so their order
// is the kernel's deterministic event order.
func (c *Collector) Commit(t *Trace, rt float64, outcome string) {
	t.RT = rt
	t.Outcome = outcome
	c.traces = append(c.traces, t)
}

// Discard returns a started trace to the pool without recording it.
func (c *Collector) Discard(t *Trace) {
	t.reset()
	c.pool = append(c.pool, t)
}

// Traces returns the committed traces in commit order (shared, not
// copied — the collector is read after its trial's kernel stops).
func (c *Collector) Traces() []*Trace { return c.traces }

// Len reports the number of committed traces.
func (c *Collector) Len() int { return len(c.traces) }

// Reset releases every committed trace back to the pool, for reuse
// across measurement windows.
func (c *Collector) Reset() {
	for _, t := range c.traces {
		t.reset()
		c.pool = append(c.pool, t)
	}
	c.traces = c.traces[:0]
}
