// Package trace implements deterministic request-level tracing for the
// simulated n-tier pipeline: the application-level half of the paper's
// observation apparatus. Where internal/monitor reproduces the
// system-level view (sar CPU series, §II), this package records *where in
// the request path* time is spent — each traced interaction produces a
// span tree with one span per tier hop (web → app → db, including RAIDb-1
// replica fan-out on writes), and every span separates queue-wait time
// from service time. The per-tier decomposition is what lets the analysis
// explain a flattening throughput curve instead of merely observing it,
// the same role the per-request records play in DiPerF and the tier-level
// breakdowns play in Wang et al.'s virtualized-server characterization.
//
// Tracing is head-sampled: the keep/drop decision for a request is a pure
// function of a seed and the request's issue index, derived with the same
// FNV-1a + PCG scheme the trial-seed and fault-plan derivations use.
// Because every trial owns its kernel and its collector, a seeded run
// yields byte-identical traces at any trial-parallelism level. Span
// objects are pooled on the collector, and with tracing disabled the
// simulation hot path executes no tracing code at all.
package trace

// Tier names as recorded in spans, in request-path order.
const (
	TierWeb = "web"
	TierApp = "app"
	TierDB  = "db"
)

// Span is one tier hop of a traced request: a single job submitted to one
// station, with the queue-wait/service split the station reports at
// completion. Times are simulated seconds; Start is absolute kernel time.
type Span struct {
	// Tier is the hop's tier ("web", "app", "db").
	Tier string
	// Station is the serving station's role name, e.g. "JONAS1".
	Station string
	// Start is the simulated time the job was submitted to the station.
	Start float64
	// Wait is the time spent queued before service, in seconds.
	Wait float64
	// Service is the time spent in service, in seconds.
	Service float64
	// Err marks hops the station rejected (queue limit or failure).
	Err bool
}

// Trace is the span tree of one traced request: root metadata plus one
// child span per tier hop, in completion order. RAIDb-1 broadcast writes
// contribute one db span per replica (the fan-out children); all other
// hops contribute exactly one span.
type Trace struct {
	// Interaction is the benchmark interaction name, e.g. "PutBid".
	Interaction string
	// Session is the emulated user session that issued the request.
	Session int
	// Issued is the simulated time the request was sent.
	Issued float64
	// RT is the end-to-end response time in seconds.
	RT float64
	// Outcome is the request's final disposition ("ok", "rejected",
	// "failed"), as reported by the router.
	Outcome string
	// Write marks interactions that issued a broadcast database write.
	Write bool
	// Spans are the tier hops in completion order.
	Spans []Span
}

// AddSpan appends one tier hop, reusing the pooled trace's span capacity.
func (t *Trace) AddSpan(tier, station string, start, wait, service float64, ok bool) {
	t.Spans = append(t.Spans, Span{
		Tier: tier, Station: station,
		Start: start, Wait: wait, Service: service, Err: !ok,
	})
}

// reset clears the trace for pool reuse, keeping the span backing array.
func (t *Trace) reset() {
	t.Interaction = ""
	t.Session = 0
	t.Issued, t.RT = 0, 0
	t.Outcome = ""
	t.Write = false
	t.Spans = t.Spans[:0]
}

// Contribution is one tier's share of a request's response time, split
// into its queue-wait and service components.
type Contribution struct {
	WaitSec    float64
	ServiceSec float64
}

// Total reports the tier's combined wall-clock contribution.
func (c Contribution) Total() float64 { return c.WaitSec + c.ServiceSec }

// TierContributions decomposes the trace's response time by tier. Web and
// app hops are sequential, so their contributions add; a broadcast write's
// db spans run in parallel, so the db contribution is the slowest leg's
// wait+service (the broadcast completes when the slowest replica does).
// For a fully observed request the three contributions sum to RT exactly,
// because the simulated request path contains no other delays.
func (t *Trace) TierContributions() (web, app, db Contribution) {
	var dbBest float64
	for _, s := range t.Spans {
		switch s.Tier {
		case TierWeb:
			web.WaitSec += s.Wait
			web.ServiceSec += s.Service
		case TierApp:
			app.WaitSec += s.Wait
			app.ServiceSec += s.Service
		case TierDB:
			if total := s.Wait + s.Service; total >= dbBest {
				dbBest = total
				db = Contribution{WaitSec: s.Wait, ServiceSec: s.Service}
			}
		}
	}
	return web, app, db
}

// CriticalTier names the tier that contributed the most wall-clock time
// to the request — the critical-path attribution of the request's
// latency. Ties resolve in request-path order (web, app, db), which keeps
// the attribution deterministic. A trace with no spans attributes to "".
func (t *Trace) CriticalTier() string {
	if len(t.Spans) == 0 {
		return ""
	}
	web, app, db := t.TierContributions()
	best, tier := web.Total(), TierWeb
	if app.Total() > best {
		best, tier = app.Total(), TierApp
	}
	if db.Total() > best {
		tier = TierDB
	}
	return tier
}
