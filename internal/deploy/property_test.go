package deploy

import (
	"fmt"
	"testing"
	"testing/quick"

	"elba/internal/cim"
	"elba/internal/cluster"
	"elba/internal/mulini"
	"elba/internal/spec"
)

// TestGeneratedBundlesAlwaysDeploy is the generation/deployment contract
// as a property: for any topology within the platform envelope and any
// benchmark/app-server combination, the Mulini-generated scripts must
// execute to a fully-running deployment, and teardown must release every
// node. A generation bug (missing artifact, wrong role name, mis-ordered
// ignition) fails this property immediately.
func TestGeneratedBundlesAlwaysDeploy(t *testing.T) {
	cat, err := cim.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := mulini.NewGenerator(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	platform, _ := cat.PlatformByName("emulab")

	f := func(aRaw, dRaw, benchRaw, serverRaw uint8) bool {
		app := 1 + int(aRaw%12)
		db := 1 + int(dRaw%3)
		benchmark := []string{"rubis", "rubbos"}[int(benchRaw)%2]
		appserver := ""
		if benchmark == "rubis" {
			appserver = []string{"jonas", "weblogic"}[int(serverRaw)%2]
		}
		src := fmt.Sprintf(`experiment "prop" {
			benchmark %s; platform emulab;`, benchmark)
		if appserver != "" {
			src += fmt.Sprintf(" appserver %s;", appserver)
		}
		src += fmt.Sprintf(`
			topology { web 1; app %d; db %d; }
			workload { users 10; writeratio 15; }
		}`, app, db)
		if benchmark == "rubbos" {
			// rubbos validation rejects writeratio with read-only only;
			// submission default accepts it.
			_ = src
		}
		doc, err := spec.Parse(src)
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		ds, err := gen.Generate(doc.Experiments[0])
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		cl, err := cluster.New(platform)
		if err != nil {
			t.Logf("cluster: %v", err)
			return false
		}
		dp := NewDeployer(cl)
		p, err := dp.Deploy(ds[0])
		if err != nil {
			t.Logf("deploy %s: %v", ds[0].Topology, err)
			return false
		}
		if len(p.TierNodes("app")) != app || len(p.TierNodes("db")) != db {
			t.Logf("tier sizes wrong for %s", ds[0].Topology)
			return false
		}
		if err := dp.Undeploy(p); err != nil {
			t.Logf("undeploy: %v", err)
			return false
		}
		return len(cl.Allocated()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
