package deploy

import (
	"strings"
	"testing"

	"elba/internal/cim"
	"elba/internal/cluster"
)

func warpCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cat, err := cim.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	platform, _ := cat.PlatformByName("warp")
	c, err := cluster.New(platform)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEngineStepErrorText is the error-path table test: exhausted steps
// must identify the step index, verb, role, node, and attempt count, and
// the executeScript wrapper must still prefix the script:line provenance.
func TestEngineStepErrorText(t *testing.T) {
	cases := []struct {
		name  string
		lines []string
		want  []string
	}{
		{
			name:  "unallocated role, no retry policy",
			lines: []string{`elbactl install --role A --package x`},
			want: []string{
				"run.sh:1", "step 0", "install --role A", "on unbound",
				"failed after 1 attempt(s)", "role A not allocated",
			},
		},
		{
			name: "failure on an allocated node names the host",
			lines: []string{
				`elbactl allocate --role A`,
				`elbactl start --role A --service ghost`,
			},
			want: []string{
				"run.sh:2", "step 1", "start --role A", "failed after 1 attempt(s)",
			},
		},
		{
			name: "duplicate allocation cites the second step",
			lines: []string{
				`elbactl allocate --role A`,
				`elbactl allocate --role A`,
			},
			want: []string{
				"run.sh:2", "step 1", "allocate --role A", "already allocated",
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eng := NewEngine(warpCluster(t))
			err := eng.Execute(badBundle(t, c.lines...), "run.sh")
			if err == nil {
				t.Fatal("expected error")
			}
			for _, frag := range c.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q missing %q", err, frag)
				}
			}
		})
	}
}

// TestEnginePermanentErrorRetriesThenFails checks that a retry policy
// spends its whole budget on a persistent failure and reports the final
// attempt count.
func TestEnginePermanentErrorRetriesThenFails(t *testing.T) {
	eng := NewEngine(warpCluster(t))
	eng.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoffSec: 2, StepTimeoutSec: 10})
	err := eng.Execute(badBundle(t, `elbactl install --role A --package x`), "run.sh")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "failed after 3 attempt(s)") {
		t.Fatalf("error does not report the exhausted budget: %v", err)
	}
	if eng.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", eng.Retries())
	}
	// Two failed attempts before the last: 2×timeout plus backoffs 2s+4s.
	if got, want := eng.ElapsedSec(), 2*10.0+2.0+4.0; got != want {
		t.Fatalf("elapsed = %g, want %g", got, want)
	}
}

// TestEngineGlitchesRecoverUnderRetry injects transient failures below the
// attempt budget: the run must succeed, count the retries, and audit each
// step exactly once.
func TestEngineGlitchesRecoverUnderRetry(t *testing.T) {
	eng := NewEngine(warpCluster(t))
	eng.SetRetryPolicy(DefaultRetryPolicy) // 4 attempts
	glitched := map[int]int{2: 2, 4: 1}    // per-line transient failures
	var consulted int
	eng.SetStepFault(func(script string, line int, verb, role string) int {
		consulted++
		return glitched[line]
	})
	lines := []string{
		`elbactl allocate --role A`,
		`elbactl install --role A --package tomcat`,
		`elbactl configure --role A --package tomcat`,
		`elbactl start --role A --service tomcat`,
	}
	if err := eng.Execute(badBundle(t, lines...), "run.sh"); err != nil {
		t.Fatal(err)
	}
	if consulted != len(lines) {
		t.Errorf("fault injector consulted %d times, want once per step (%d)", consulted, len(lines))
	}
	if eng.Retries() != 3 {
		t.Errorf("retries = %d, want 3", eng.Retries())
	}
	if eng.Steps() != len(lines) {
		t.Errorf("steps = %d, want %d", eng.Steps(), len(lines))
	}
	if eng.ElapsedSec() <= 0 {
		t.Error("retries charged no simulated time")
	}
	if got := len(eng.Audit()); got != len(lines) {
		t.Errorf("audit entries = %d, want %d (one per successful step, no duplicates)", got, len(lines))
	}
}

// TestEngineGlitchesExceedBudget makes the injected transient failures
// outlast the policy: the step must fail with the transient cause.
func TestEngineGlitchesExceedBudget(t *testing.T) {
	eng := NewEngine(warpCluster(t))
	eng.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseBackoffSec: 1, StepTimeoutSec: 5})
	eng.SetStepFault(func(string, int, string, string) int { return 5 })
	err := eng.Execute(badBundle(t, `elbactl allocate --role A`), "run.sh")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "transient failure injected") {
		t.Fatalf("error lost the transient cause: %v", err)
	}
	if !strings.Contains(err.Error(), "failed after 2 attempt(s)") {
		t.Fatalf("error does not report the attempt budget: %v", err)
	}
	if len(eng.Audit()) != 0 {
		t.Fatalf("failed step left audit entries: %v", eng.Audit())
	}
}

// TestEngineZeroPolicyKeepsSetESemantics pins backward compatibility: the
// zero policy means one attempt, no retries, no simulated retry time.
func TestEngineZeroPolicyKeepsSetESemantics(t *testing.T) {
	eng := NewEngine(warpCluster(t))
	glitches := 1
	eng.SetStepFault(func(string, int, string, string) int { return glitches })
	err := eng.Execute(badBundle(t, `elbactl allocate --role A`), "run.sh")
	if err == nil {
		t.Fatal("zero policy must not absorb a transient failure")
	}
	if eng.Retries() != 0 || eng.ElapsedSec() != 0 {
		t.Fatalf("zero policy performed retries: %d (%gs)", eng.Retries(), eng.ElapsedSec())
	}
}
