package deploy

import (
	"fmt"

	"elba/internal/cluster"
	"elba/internal/mulini"
)

// Placement is the result of a successful deployment: the binding from
// deployment roles to cluster nodes, plus verification results.
type Placement struct {
	// Deployment is the Mulini model that was deployed.
	Deployment *mulini.Deployment
	// Nodes maps role names to allocated nodes.
	Nodes map[string]*cluster.Node
	// Retries counts deployment-step retries performed executing run.sh.
	Retries int
	// DeploySec is the simulated time spent in step timeouts and retry
	// backoffs while deploying.
	DeploySec float64
}

// Node returns the node bound to a role.
func (p *Placement) Node(role string) (*cluster.Node, bool) {
	n, ok := p.Nodes[role]
	return n, ok
}

// TierNodes lists nodes for a tier in replica order.
func (p *Placement) TierNodes(tier string) []*cluster.Node {
	var out []*cluster.Node
	for _, role := range p.Deployment.Roles(tier) {
		if n, ok := p.Nodes[role]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Deployer runs a deployment's generated bundle end to end and verifies
// the resulting cluster state.
type Deployer struct {
	cluster *cluster.Cluster

	policy      RetryPolicy
	stepFault   StepFault
	nodeFactors map[string]float64
}

// NewDeployer creates a deployer bound to a cluster.
func NewDeployer(c *cluster.Cluster) *Deployer {
	return &Deployer{cluster: c}
}

// SetRetryPolicy installs the per-step retry policy used for every bundle
// this deployer executes. The zero policy keeps pure set -e semantics.
func (dp *Deployer) SetRetryPolicy(p RetryPolicy) { dp.policy = p }

// SetStepFault installs a transient-failure injector shared by every
// engine this deployer creates.
func (dp *Deployer) SetStepFault(f StepFault) { dp.stepFault = f }

// SetNodeFactors installs deployment-scope hardware degradation: after a
// successful deploy, each listed role's node is marked degraded with the
// given effective-speed factor.
func (dp *Deployer) SetNodeFactors(m map[string]float64) { dp.nodeFactors = m }

// Deploy executes the deployment's run.sh and verifies that every role's
// services are running. On failure the cluster may hold partial state;
// callers release it with the cluster's ReleaseAll or by Undeploy.
func (dp *Deployer) Deploy(d *mulini.Deployment) (*Placement, error) {
	if d.Bundle == nil {
		return nil, fmt.Errorf("deploy: deployment %s has no generated bundle", d.Topology)
	}
	eng := NewEngine(dp.cluster)
	eng.SetRetryPolicy(dp.policy)
	eng.SetStepFault(dp.stepFault)
	if err := eng.Execute(d.Bundle, "run.sh"); err != nil {
		return nil, err
	}
	p := &Placement{
		Deployment: d,
		Nodes:      map[string]*cluster.Node{},
		Retries:    eng.Retries(),
		DeploySec:  eng.ElapsedSec(),
	}
	for _, a := range d.Assignments {
		node, ok := eng.Node(a.Role)
		if !ok {
			return nil, fmt.Errorf("deploy: role %s was never allocated by run.sh", a.Role)
		}
		p.Nodes[a.Role] = node
		for _, pkg := range a.Packages {
			if st := node.State(pkg.Name); st != cluster.Running {
				return nil, fmt.Errorf("deploy: %s on %s is %s after run.sh, want running",
					pkg.Name, a.Role, st)
			}
		}
	}
	// Apply deployment-scope hardware degradation once the binding is
	// known. Factors are set before any trial starts and only read after,
	// so concurrent trials see a consistent node speed.
	for role, f := range dp.nodeFactors {
		if node, ok := p.Nodes[role]; ok {
			node.Degrade(f)
		}
	}
	return p, nil
}

// Undeploy executes teardown.sh, stopping services and releasing nodes.
func (dp *Deployer) Undeploy(p *Placement) error {
	eng := NewEngine(dp.cluster)
	eng.SetRetryPolicy(dp.policy)
	eng.SetStepFault(dp.stepFault)
	// Rebind existing roles so teardown can address them.
	for role, node := range p.Nodes {
		eng.roles[role] = node
	}
	if err := eng.Execute(p.Deployment.Bundle, "teardown.sh"); err != nil {
		return err
	}
	for role, node := range p.Nodes {
		if node.Allocated() {
			return fmt.Errorf("deploy: teardown left role %s allocated", role)
		}
	}
	return nil
}
