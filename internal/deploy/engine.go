// Package deploy executes Mulini-generated deployment bundles against the
// simulated cluster. The engine interprets the generated shell scripts
// directly: `bash <script>` lines recurse into other bundle artifacts and
// `elbactl <verb> ...` lines perform the actual actions (allocate,
// install, push, configure, start, stop, release), so the generated text
// is load-bearing, exactly as the paper's scripts are on a real testbed.
// Any other line is shell boilerplate and is ignored, mirroring how a
// real shell would execute echo/mkdir chatter without affecting the
// deployed system's logical state.
package deploy

import (
	"errors"
	"fmt"
	"strings"

	"elba/internal/cluster"
	"elba/internal/mulini"
)

// Action records one executed elbactl command for audit and tests.
type Action struct {
	// Verb is the elbactl verb.
	Verb string
	// Role is the deployment role acted on.
	Role string
	// Arg carries the verb's object: package, service, or file path.
	Arg string
	// Script and Line locate the command in the generated bundle.
	Script string
	Line   int
}

// RetryPolicy bounds the engine's per-step retry behaviour. The zero
// policy keeps the historical pure set -e semantics: one attempt per
// step, the first failure aborts.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per elbactl step
	// (minimum 1; 1 = no retry).
	MaxAttempts int
	// BaseBackoffSec is the simulated wait before the first retry; it
	// doubles on every further attempt (bounded exponential backoff).
	BaseBackoffSec float64
	// StepTimeoutSec is the simulated cost charged for each failed
	// attempt, modelling a per-step timeout expiring before retry.
	StepTimeoutSec float64
}

// DefaultRetryPolicy is the policy the experiment runner applies when a
// fault profile is active: up to 4 attempts per step, 2 s initial
// backoff, 30 s per-step timeout.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 4, BaseBackoffSec: 2, StepTimeoutSec: 30}

// StepFault decides how many transient failures an elbactl step suffers
// before it can succeed (0 = none). Fault profiles derive this
// deterministically from the step's script/line coordinates.
type StepFault func(script string, line int, verb, role string) int

// errTransient marks an injected transient step failure (a timed-out
// ssh, an unreachable package mirror).
var errTransient = errors.New("transient failure injected (step timed out)")

// Engine interprets deployment bundles against a cluster.
type Engine struct {
	cluster  *cluster.Cluster
	roles    map[string]*cluster.Node
	audit    []Action
	maxDepth int

	policy  RetryPolicy
	faultFn StepFault

	steps      int
	retries    int
	elapsedSec float64
}

// NewEngine creates an engine bound to a cluster.
func NewEngine(c *cluster.Cluster) *Engine {
	return &Engine{cluster: c, roles: map[string]*cluster.Node{}, maxDepth: 16}
}

// SetRetryPolicy installs a per-step retry policy.
func (e *Engine) SetRetryPolicy(p RetryPolicy) { e.policy = p }

// SetStepFault installs a transient-failure injector consulted once per
// elbactl step.
func (e *Engine) SetStepFault(f StepFault) { e.faultFn = f }

// Retries reports the total step retries performed so far.
func (e *Engine) Retries() int { return e.retries }

// ElapsedSec reports the simulated time spent in step timeouts and
// retry backoffs.
func (e *Engine) ElapsedSec() float64 { return e.elapsedSec }

// Steps reports the number of elbactl steps executed (or attempted).
func (e *Engine) Steps() int { return e.steps }

// Node resolves a role to its allocated node.
func (e *Engine) Node(role string) (*cluster.Node, bool) {
	n, ok := e.roles[role]
	return n, ok
}

// Roles lists bound roles in allocation order via the audit trail.
func (e *Engine) Roles() []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range e.audit {
		if a.Verb == "allocate" && !seen[a.Role] {
			seen[a.Role] = true
			out = append(out, a.Role)
		}
	}
	return out
}

// Audit returns the executed actions (shared, not copied).
func (e *Engine) Audit() []Action { return e.audit }

// Execute runs a bundle starting from the entry script (normally
// "run.sh"). Execution has set -e semantics: the first failing elbactl
// command aborts with script/line context.
func (e *Engine) Execute(b *mulini.Bundle, entry string) error {
	return e.executeScript(b, entry, 0)
}

func (e *Engine) executeScript(b *mulini.Bundle, path string, depth int) error {
	if depth > e.maxDepth {
		return fmt.Errorf("deploy: script nesting too deep at %q", path)
	}
	art, ok := b.Get(path)
	if !ok {
		return fmt.Errorf("deploy: bundle has no script %q", path)
	}
	if art.Kind != mulini.Script {
		return fmt.Errorf("deploy: artifact %q is %s, not a script", path, art.Kind)
	}
	lines := strings.Split(art.Content, "\n")
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(line, "bash "):
			sub := strings.TrimSpace(strings.TrimPrefix(line, "bash "))
			if err := e.executeScript(b, sub, depth+1); err != nil {
				return fmt.Errorf("%s:%d: %w", path, i+1, err)
			}
		case line == "elbactl" || strings.HasPrefix(line, "elbactl "):
			if err := e.execElbactl(b, line, path, i+1); err != nil {
				return fmt.Errorf("%s:%d: %w", path, i+1, err)
			}
		}
	}
	return nil
}

// execElbactl parses and executes one elbactl command line. Malformed
// lines fail immediately; well-formed steps run under the engine's retry
// policy, with injected transient failures consuming attempts before the
// verb executes (the model is an ssh or mirror timeout: the command never
// ran, so retrying is safe). Audit entries are recorded only for steps
// that succeed.
func (e *Engine) execElbactl(b *mulini.Bundle, line, script string, lineNo int) error {
	words, err := splitWords(line)
	if err != nil {
		return err
	}
	if len(words) < 2 {
		return fmt.Errorf("deploy: malformed elbactl line %q", line)
	}
	verb := words[1]
	flags, err := parseFlags(words[2:])
	if err != nil {
		return err
	}
	role := flags["role"]
	if role == "" {
		return fmt.Errorf("deploy: elbactl %s requires --role", verb)
	}

	step := e.steps
	e.steps++
	glitches := 0
	if e.faultFn != nil {
		glitches = e.faultFn(script, lineNo, verb, role)
	}
	attempts := e.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		var stepErr error
		if attempt <= glitches {
			stepErr = errTransient
		} else {
			var arg string
			arg, stepErr = e.applyVerb(b, verb, role, flags)
			if stepErr == nil {
				e.audit = append(e.audit, Action{Verb: verb, Role: role, Arg: arg, Script: script, Line: lineNo})
				return nil
			}
		}
		if attempt >= attempts {
			return fmt.Errorf("deploy: step %d (%s --role %s on %s) failed after %d attempt(s): %w",
				step, verb, role, e.nodeName(role), attempt, stepErr)
		}
		// The attempt timed out or failed: charge the step timeout plus a
		// doubling backoff before the next try, in simulated seconds.
		e.retries++
		e.elapsedSec += e.policy.StepTimeoutSec + e.policy.BaseBackoffSec*float64(int64(1)<<uint(attempt-1))
	}
}

// nodeName resolves a role to its node's hostname for error messages.
func (e *Engine) nodeName(role string) string {
	if n, ok := e.roles[role]; ok {
		return n.Name()
	}
	return "unbound"
}

// applyVerb performs one elbactl verb and returns the audit argument.
func (e *Engine) applyVerb(b *mulini.Bundle, verb, role string, flags map[string]string) (string, error) {
	switch verb {
	case "allocate":
		if _, dup := e.roles[role]; dup {
			return "", fmt.Errorf("deploy: role %s already allocated", role)
		}
		node, err := e.cluster.Allocate(flags["type"], role)
		if err != nil {
			return "", err
		}
		e.roles[role] = node
		return flags["type"], nil
	case "release":
		node, ok := e.roles[role]
		if !ok {
			return "", fmt.Errorf("deploy: release of unbound role %s", role)
		}
		e.cluster.Release(node)
		delete(e.roles, role)
		return "", nil
	}

	node, ok := e.roles[role]
	if !ok {
		return "", fmt.Errorf("deploy: role %s not allocated before %s", role, verb)
	}
	switch verb {
	case "install":
		pkg := flags["package"]
		if pkg == "" {
			return "", fmt.Errorf("deploy: install requires --package")
		}
		return pkg, node.Install(pkg, flags["version"])
	case "configure":
		pkg := flags["package"]
		if pkg == "" {
			return "", fmt.Errorf("deploy: configure requires --package")
		}
		return pkg, node.Configure(pkg)
	case "push":
		dest, artifact := flags["file"], flags["artifact"]
		if dest == "" || artifact == "" {
			return "", fmt.Errorf("deploy: push requires --file and --artifact")
		}
		src, ok := b.Get(artifact)
		if !ok {
			return "", fmt.Errorf("deploy: push references missing artifact %q", artifact)
		}
		node.WriteFile(dest, src.Content)
		return dest, nil
	case "start":
		svc := flags["service"]
		if svc == "" {
			return "", fmt.Errorf("deploy: start requires --service")
		}
		return svc, node.Start(svc)
	case "stop":
		svc := flags["service"]
		if svc == "" {
			return "", fmt.Errorf("deploy: stop requires --service")
		}
		return svc, node.Stop(svc)
	default:
		return "", fmt.Errorf("deploy: unknown elbactl verb %q", verb)
	}
}

// splitWords splits a shell-ish command line honoring double quotes.
func splitWords(line string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
		case c == ' ' || c == '\t':
			if inQuote {
				cur.WriteByte(c)
			} else {
				flush()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("deploy: unterminated quote in %q", line)
	}
	flush()
	return out, nil
}

// parseFlags converts --key value pairs into a map.
func parseFlags(words []string) (map[string]string, error) {
	flags := map[string]string{}
	for i := 0; i < len(words); i++ {
		w := words[i]
		if !strings.HasPrefix(w, "--") {
			return nil, fmt.Errorf("deploy: expected flag, found %q", w)
		}
		key := strings.TrimPrefix(w, "--")
		if i+1 >= len(words) {
			return nil, fmt.Errorf("deploy: flag --%s has no value", key)
		}
		i++
		flags[key] = words[i]
	}
	return flags, nil
}
