package deploy

import (
	"strings"
	"testing"

	"elba/internal/cim"
	"elba/internal/cluster"
	"elba/internal/mulini"
	"elba/internal/spec"
)

func testSetup(t *testing.T, topologies string) (*cluster.Cluster, *mulini.Deployment) {
	t.Helper()
	cat, err := cim.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	platform, _ := cat.PlatformByName("emulab")
	c, err := cluster.New(platform)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := spec.Parse(`experiment "deploy-test" {
		benchmark rubis; platform emulab; appserver jonas;
		topologies ` + topologies + `;
		workload { users 100; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mulini.NewGenerator(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.Generate(doc.Experiments[0])
	if err != nil {
		t.Fatal(err)
	}
	return c, ds[0]
}

func TestDeployRunsGeneratedScripts(t *testing.T) {
	c, d := testSetup(t, "1-2-2")
	p, err := NewDeployer(c).Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	// 6 machines allocated.
	if len(p.Nodes) != 6 {
		t.Fatalf("nodes bound = %d", len(p.Nodes))
	}
	// Database pinned to low-end nodes per the Emulab defaults.
	for _, n := range p.TierNodes("db") {
		if n.Pool().NodeType != "low-end" {
			t.Errorf("db on %s (%s), want low-end", n.Name(), n.Pool().NodeType)
		}
		if n.State("mysql") != cluster.Running {
			t.Errorf("mysql not running on %s", n.Name())
		}
		if n.State("sysstat") != cluster.Running {
			t.Errorf("sysstat monitor not running on %s", n.Name())
		}
	}
	// App servers on high-end nodes with the server.properties pushed.
	apps := p.TierNodes("app")
	if len(apps) != 2 {
		t.Fatalf("app nodes = %d", len(apps))
	}
	conf, ok := apps[0].ReadFile("/opt/jonas/conf/server.properties")
	if !ok || !strings.Contains(conf, "jdbc:cjdbc://MYSQL1") {
		t.Errorf("app server config not pushed or wrong: %q", conf)
	}
	// C-JDBC controller running on the first DB node only.
	dbs := p.TierNodes("db")
	if dbs[0].State("cjdbc") != cluster.Running {
		t.Errorf("cjdbc not running on first db node")
	}
	if dbs[1].State("cjdbc") != cluster.Absent {
		t.Errorf("cjdbc should be absent from second db node")
	}
	// The web node received workers2.properties naming both app servers.
	web := p.TierNodes("web")[0]
	w2, ok := web.ReadFile("/etc/httpd/conf/workers2.properties")
	if !ok || !strings.Contains(w2, "JONAS2") {
		t.Errorf("workers2.properties not deployed: %q", w2)
	}
}

func TestUndeployReleasesEverything(t *testing.T) {
	c, d := testSetup(t, "1-1-1")
	dp := NewDeployer(c)
	p, err := dp.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Allocated()); got != 4 {
		t.Fatalf("allocated = %d", got)
	}
	if err := dp.Undeploy(p); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Allocated()); got != 0 {
		t.Fatalf("teardown left %d nodes allocated", got)
	}
}

func TestDeployTwiceReusesCluster(t *testing.T) {
	c, d := testSetup(t, "1-1-1")
	dp := NewDeployer(c)
	p, err := dp.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.Undeploy(p); err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Deploy(d); err != nil {
		t.Fatalf("second deploy after teardown failed: %v", err)
	}
}

func TestEngineAuditTrail(t *testing.T) {
	c, d := testSetup(t, "1-1-1")
	eng := NewEngine(c)
	if err := eng.Execute(d.Bundle, "run.sh"); err != nil {
		t.Fatal(err)
	}
	audit := eng.Audit()
	if len(audit) == 0 {
		t.Fatalf("no actions recorded")
	}
	verbs := map[string]int{}
	for _, a := range audit {
		verbs[a.Verb]++
		if a.Script == "" || a.Line == 0 {
			t.Fatalf("action missing provenance: %+v", a)
		}
	}
	// 4 allocations (web, app, db, client).
	if verbs["allocate"] != 4 {
		t.Errorf("allocations = %d", verbs["allocate"])
	}
	if verbs["install"] == 0 || verbs["configure"] == 0 || verbs["start"] == 0 || verbs["push"] == 0 {
		t.Errorf("verb coverage wrong: %v", verbs)
	}
	if got := eng.Roles(); len(got) != 4 || got[0] != "APACHE1" {
		t.Errorf("roles = %v", got)
	}
}

func TestEngineErrors(t *testing.T) {
	c, d := testSetup(t, "1-1-1")
	eng := NewEngine(c)
	if err := eng.Execute(d.Bundle, "nope.sh"); err == nil {
		t.Errorf("missing entry script should fail")
	}
	// Config artifacts are not executable.
	if err := eng.Execute(d.Bundle, "workers2.properties"); err == nil {
		t.Errorf("executing a config artifact should fail")
	}
}

func badBundle(t *testing.T, lines ...string) *mulini.Bundle {
	t.Helper()
	b := mulini.NewBundle()
	if err := b.Add(mulini.Artifact{
		Path: "run.sh", Kind: mulini.Script,
		Content: strings.Join(lines, "\n") + "\n",
	}); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEngineRejectsMalformedCommands(t *testing.T) {
	cat, _ := cim.LoadCatalog()
	platform, _ := cat.PlatformByName("warp")
	cases := [][]string{
		{`elbactl`},
		{`elbactl install --package x`},                                  // no role
		{`elbactl bogus --role A`},                                       // unknown verb
		{`elbactl allocate --role`},                                      // flag without value
		{`elbactl allocate --role A --type`},                             // trailing flag
		{`elbactl allocate --role A`, `elbactl allocate --role A`},       // dup role
		{`elbactl install --role A --package x`},                         // unallocated role
		{`elbactl allocate --role A`, `elbactl push --role A --file /x`}, // missing artifact flag
		{`elbactl allocate --role A`, `elbactl push --role A --file /x --artifact nope`},
		{`elbactl allocate --role A`, `elbactl start --role A`}, // missing service
		{`elbactl allocate --role A`, `elbactl install --role A --version "unterminated`},
		{`elbactl release --role Z`}, // unbound release
		{`bash run.sh`},              // infinite recursion capped
	}
	for i, lines := range cases {
		c, err := cluster.New(platform)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(c)
		if err := eng.Execute(badBundle(t, lines...), "run.sh"); err == nil {
			t.Errorf("case %d (%v): expected error", i, lines)
		}
	}
}

func TestEngineErrorIncludesProvenance(t *testing.T) {
	cat, _ := cim.LoadCatalog()
	platform, _ := cat.PlatformByName("warp")
	c, _ := cluster.New(platform)
	b := badBundle(t, "# comment", "elbactl install --role A --package x")
	err := NewEngine(c).Execute(b, "run.sh")
	if err == nil || !strings.Contains(err.Error(), "run.sh:2") {
		t.Fatalf("error should cite run.sh:2, got %v", err)
	}
}

func TestSplitWords(t *testing.T) {
	words, err := splitWords(`elbactl install --version "4.1 Max" --x y`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"elbactl", "install", "--version", "4.1 Max", "--x", "y"}
	if len(words) != len(want) {
		t.Fatalf("words = %v", words)
	}
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("words[%d] = %q, want %q", i, words[i], want[i])
		}
	}
}
