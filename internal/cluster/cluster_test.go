package cluster

import (
	"strings"
	"testing"
	"testing/quick"

	"elba/internal/cim"
)

func emulab(t *testing.T) *Cluster {
	t.Helper()
	cat, err := cim.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	p, ok := cat.PlatformByName("emulab")
	if !ok {
		t.Fatal("emulab platform missing")
	}
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterMaterialization(t *testing.T) {
	c := emulab(t)
	if c.Size() != 256 {
		t.Fatalf("emulab size = %d, want 256", c.Size())
	}
	if c.Free("low-end") != 128 || c.Free("high-end") != 128 {
		t.Fatalf("free by type wrong: %d/%d", c.Free("low-end"), c.Free("high-end"))
	}
	n, ok := c.Node("emulab-low-001")
	if !ok {
		t.Fatalf("node naming wrong")
	}
	if n.Pool().CPUMHz != 600 {
		t.Fatalf("low-end node MHz = %d", n.Pool().CPUMHz)
	}
}

func TestNodeSpeedScaling(t *testing.T) {
	c := emulab(t)
	low, _ := c.Node("emulab-low-001")
	high, _ := c.Node("emulab-high-001")
	if low.Speed() != 0.2 {
		t.Fatalf("600 MHz speed = %g, want 0.2", low.Speed())
	}
	if high.Speed() != 1.0 {
		t.Fatalf("3 GHz speed = %g, want 1.0", high.Speed())
	}
	if low.Cores() != 1 {
		t.Fatalf("cores = %d", low.Cores())
	}
}

func TestAllocateByTypeAndRole(t *testing.T) {
	c := emulab(t)
	db, err := c.Allocate("low-end", "DB1")
	if err != nil {
		t.Fatal(err)
	}
	if db.Pool().NodeType != "low-end" || db.Role() != "DB1" || !db.Allocated() {
		t.Fatalf("allocation wrong: %+v", db)
	}
	app, err := c.Allocate("high-end", "APP1")
	if err != nil {
		t.Fatal(err)
	}
	if app.Pool().CPUMHz != 3000 {
		t.Fatalf("high-end allocation got %d MHz", app.Pool().CPUMHz)
	}
	if got := len(c.Allocated()); got != 2 {
		t.Fatalf("allocated = %d", got)
	}
	if c.Free("low-end") != 127 {
		t.Fatalf("free after allocate = %d", c.Free("low-end"))
	}
}

func TestAllocateExhaustion(t *testing.T) {
	cat, _ := cim.LoadCatalog()
	p, _ := cat.PlatformByName("warp")
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 56; i++ {
		if _, err := c.Allocate("", "N"); err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
	}
	if _, err := c.Allocate("", "N"); err == nil {
		t.Fatalf("57th allocation on 56-node Warp should fail")
	}
	if _, err := c.Allocate("hyper-end", "N"); err == nil {
		t.Fatalf("unknown node type should fail")
	}
}

func TestAllocationDeterminism(t *testing.T) {
	a, b := emulab(t), emulab(t)
	n1, _ := a.Allocate("high-end", "X")
	n2, _ := b.Allocate("high-end", "X")
	if n1.Name() != n2.Name() {
		t.Fatalf("allocation order not deterministic: %s vs %s", n1.Name(), n2.Name())
	}
}

func TestServiceLifecycle(t *testing.T) {
	c := emulab(t)
	n, _ := c.Allocate("high-end", "APP1")

	if err := n.Configure("tomcat"); err == nil {
		t.Fatalf("configure before install should fail")
	}
	if err := n.Start("tomcat"); err == nil {
		t.Fatalf("start before install should fail")
	}
	if err := n.Install("tomcat", "5.5"); err != nil {
		t.Fatal(err)
	}
	if err := n.Install("tomcat", "5.5"); err == nil {
		t.Fatalf("double install should fail")
	}
	if err := n.Start("tomcat"); err == nil {
		t.Fatalf("start before configure should fail")
	}
	if err := n.Configure("tomcat"); err != nil {
		t.Fatal(err)
	}
	if err := n.Start("tomcat"); err != nil {
		t.Fatal(err)
	}
	if n.State("tomcat") != Running {
		t.Fatalf("state = %s", n.State("tomcat"))
	}
	if err := n.Start("tomcat"); err == nil {
		t.Fatalf("double start should fail")
	}
	if err := n.Configure("tomcat"); err == nil {
		t.Fatalf("configure while running should fail")
	}
	if err := n.Stop("tomcat"); err != nil {
		t.Fatal(err)
	}
	if err := n.Stop("tomcat"); err == nil {
		t.Fatalf("double stop should fail")
	}
	// restart from stopped is allowed
	if err := n.Start("tomcat"); err != nil {
		t.Fatalf("restart failed: %v", err)
	}
	if got := n.Running(); len(got) != 1 || got[0] != "tomcat" {
		t.Fatalf("running = %v", got)
	}
	if n.Version("tomcat") != "5.5" {
		t.Fatalf("version = %q", n.Version("tomcat"))
	}
}

func TestNodeFiles(t *testing.T) {
	c := emulab(t)
	n, _ := c.Allocate("high-end", "WEB1")
	n.WriteFile("/etc/apache/workers2.properties", "worker.list=app1")
	content, ok := n.ReadFile("/etc/apache/workers2.properties")
	if !ok || !strings.Contains(content, "app1") {
		t.Fatalf("file round trip failed")
	}
	if _, ok := n.ReadFile("/nope"); ok {
		t.Fatalf("missing file found")
	}
	if files := n.Files(); len(files) != 1 {
		t.Fatalf("files = %v", files)
	}
}

func TestReleaseWipesState(t *testing.T) {
	c := emulab(t)
	n, _ := c.Allocate("high-end", "APP1")
	if err := n.Install("tomcat", "5.5"); err != nil {
		t.Fatal(err)
	}
	n.WriteFile("/tmp/x", "y")
	c.Release(n)
	if n.Allocated() || n.State("tomcat") != Absent || len(n.Files()) != 0 {
		t.Fatalf("release did not wipe node state")
	}
	// ReleaseAll
	c.Allocate("high-end", "A")
	c.Allocate("high-end", "B")
	c.ReleaseAll()
	if len(c.Allocated()) != 0 {
		t.Fatalf("ReleaseAll left allocations")
	}
}

func TestNewRequiresPools(t *testing.T) {
	if _, err := New(cim.Platform{Name: "empty"}); err == nil {
		t.Fatalf("platform without pools should be rejected")
	}
}

func TestStringers(t *testing.T) {
	c := emulab(t)
	if !strings.Contains(c.String(), "emulab") {
		t.Fatalf("cluster string = %q", c.String())
	}
	if Running.String() != "running" || Absent.String() != "absent" {
		t.Fatalf("state strings wrong")
	}
	if ServiceState(99).String() == "" {
		t.Fatalf("unknown state should render")
	}
}

// TestAllocationInvariantProperty: after any sequence of allocations and
// releases, free + allocated == total and no node is double-allocated.
func TestAllocationInvariantProperty(t *testing.T) {
	f := func(ops []byte) bool {
		c := emulabForQuick()
		if c == nil {
			return false
		}
		var held []*Node
		for _, op := range ops {
			if op%3 != 0 || len(held) == 0 {
				types := []string{"low-end", "high-end", ""}
				n, err := c.Allocate(types[int(op)%len(types)], "R")
				if err == nil {
					held = append(held, n)
				}
			} else {
				idx := int(op) % len(held)
				c.Release(held[idx])
				held = append(held[:idx], held[idx+1:]...)
			}
			if c.Free("")+len(c.Allocated()) != c.Size() {
				return false
			}
		}
		seen := map[string]bool{}
		for _, n := range c.Allocated() {
			if seen[n.Name()] {
				return false
			}
			seen[n.Name()] = true
		}
		return len(c.Allocated()) == len(held)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// emulabForQuick builds a cluster outside testing.T helpers for
// property-function use.
func emulabForQuick() *Cluster {
	cat, err := cim.LoadCatalog()
	if err != nil {
		return nil
	}
	p, ok := cat.PlatformByName("emulab")
	if !ok {
		return nil
	}
	c, err := New(p)
	if err != nil {
		return nil
	}
	return c
}
