package cluster

import "testing"

func TestNodeHealthLifecycle(t *testing.T) {
	c := emulab(t)
	n, _ := c.Node("emulab-high-001")
	if n.Health() != Healthy || n.Degradation() != 1 || n.EffectiveSpeed() != n.Speed() {
		t.Fatalf("fresh node not healthy at full speed: %v %g", n.Health(), n.Degradation())
	}

	n.Degrade(0.5)
	if n.Health() != Degraded || n.Degradation() != 0.5 {
		t.Fatalf("after Degrade(0.5): health=%v factor=%g", n.Health(), n.Degradation())
	}
	if got, want := n.EffectiveSpeed(), n.Speed()*0.5; got != want {
		t.Fatalf("effective speed = %g, want %g", got, want)
	}

	n.MarkDown()
	if n.Health() != Down || n.Degradation() != 0 || n.EffectiveSpeed() != 0 {
		t.Fatalf("down node still has capacity: %v %g", n.Health(), n.EffectiveSpeed())
	}

	n.Restore()
	if n.Health() != Healthy || n.EffectiveSpeed() != n.Speed() {
		t.Fatalf("restore did not return full speed: %v %g", n.Health(), n.EffectiveSpeed())
	}
}

func TestDegradeOutOfRangeRestores(t *testing.T) {
	c := emulab(t)
	n, _ := c.Node("emulab-high-001")
	for _, f := range []float64{0, -1, 1, 2.5} {
		n.Degrade(0.5)
		n.Degrade(f)
		if n.Health() != Healthy || n.Degradation() != 1 {
			t.Fatalf("Degrade(%g) should restore, got %v %g", f, n.Health(), n.Degradation())
		}
	}
}

func TestAllocateSkipsDownNodes(t *testing.T) {
	c := emulab(t)
	first, _ := c.Node("emulab-low-001")
	first.MarkDown()
	n, err := c.Allocate("low-end", "DB1")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() == first.Name() {
		t.Fatalf("allocated the down node %s", n.Name())
	}
	if n.Name() != "emulab-low-002" {
		t.Fatalf("allocation order changed: got %s", n.Name())
	}
}

func TestReleaseRestoresHealth(t *testing.T) {
	c := emulab(t)
	n, err := c.Allocate("high-end", "APP1")
	if err != nil {
		t.Fatal(err)
	}
	n.Degrade(0.3)
	c.Release(n)
	if n.Health() != Healthy || n.Degradation() != 1 {
		t.Fatalf("release kept degradation: %v %g", n.Health(), n.Degradation())
	}
	if n.Allocated() {
		t.Fatal("release kept allocation")
	}
}
