// Package cluster provides the simulated testbed that stands in for the
// paper's physical Warp, Rohan, and Emulab clusters. A Cluster
// materializes nodes from a CIM platform description; each node tracks
// the software lifecycle state (installed packages, written configuration
// files, running services) that the deployment engine mutates while
// executing Mulini-generated scripts. The simulation kernel consumes the
// node's CPU characteristics through Speed and Cores.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"elba/internal/cim"
)

// ReferenceMHz is the CPU frequency at which benchmark service demands
// are specified.
const ReferenceMHz = 3000

// ReferenceDiskMBps is the disk bandwidth at which disk service demands
// are specified: the 10k RPM SCSI disks of the Rohan blades and the
// Emulab high-end nodes, Table 2's fastest spindles.
const ReferenceDiskMBps = 70

// ServiceState tracks a deployed service's lifecycle on a node.
type ServiceState int

// Service lifecycle states, in order.
const (
	Absent ServiceState = iota
	Installed
	Configured
	Running
	Stopped
)

// String names the state.
func (s ServiceState) String() string {
	switch s {
	case Absent:
		return "absent"
	case Installed:
		return "installed"
	case Configured:
		return "configured"
	case Running:
		return "running"
	case Stopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Health is a node's hardware health state, set by fault injection and
// consumed by the simulation kernel through EffectiveSpeed.
type Health int

// Node health states.
const (
	// Healthy nodes run at their pool's rated speed.
	Healthy Health = iota
	// Degraded nodes run at a fraction of their rated speed (a slow node:
	// thermal throttling, a failing disk, noisy neighbours).
	Degraded
	// Down nodes are out of service entirely.
	Down
)

// String names the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// Node is one simulated machine.
type Node struct {
	name string
	pool cim.NodePool

	allocated bool
	role      string

	health      Health
	degradation float64 // effective-speed multiplier; 0 means unset (= 1)

	services map[string]ServiceState
	versions map[string]string
	files    map[string]string
}

// Name reports the node's hostname.
func (n *Node) Name() string { return n.name }

// Pool reports the node pool (hardware characteristics) the node belongs
// to.
func (n *Node) Pool() cim.NodePool { return n.pool }

// Speed reports the node's rated CPU frequency relative to the reference.
func (n *Node) Speed() float64 { return float64(n.pool.CPUMHz) / ReferenceMHz }

// Health reports the node's hardware health state.
func (n *Node) Health() Health { return n.health }

// Degradation reports the node's effective-speed multiplier (1 = full
// rated speed). Down nodes report 0.
func (n *Node) Degradation() float64 {
	switch {
	case n.health == Down:
		return 0
	case n.degradation <= 0 || n.degradation > 1:
		return 1
	default:
		return n.degradation
	}
}

// EffectiveSpeed is the speed the simulation kernel consumes: the rated
// speed scaled by the node's degradation factor. For a healthy node it
// equals Speed.
func (n *Node) EffectiveSpeed() float64 { return n.Speed() * n.Degradation() }

// DiskSpeed reports the node's rated disk bandwidth relative to the
// reference spindle. Pools that declare no DiskMBps report 1 (a
// reference-speed disk), so disk demands stay meaningful under
// user-supplied catalogs that predate the property.
func (n *Node) DiskSpeed() float64 {
	if n.pool.DiskMBps <= 0 {
		return 1
	}
	return float64(n.pool.DiskMBps) / ReferenceDiskMBps
}

// EffectiveDiskSpeed scales the rated disk speed by the node's
// degradation factor — a degraded node drags its spindle down with its
// CPU (thermal throttling and failing disks travel together in Table 2's
// failure anecdotes).
func (n *Node) EffectiveDiskSpeed() float64 { return n.DiskSpeed() * n.Degradation() }

// NetBytesPerSec reports the node's link capacity in bytes per second,
// or 0 when the pool declares no NetworkMbps.
func (n *Node) NetBytesPerSec() float64 {
	if n.pool.NetworkMbps <= 0 {
		return 0
	}
	return float64(n.pool.NetworkMbps) * 1e6 / 8
}

// Degrade marks the node degraded with the given effective-speed factor
// in (0, 1). Factors outside that range restore the node instead.
func (n *Node) Degrade(factor float64) {
	if factor <= 0 || factor >= 1 {
		n.Restore()
		return
	}
	n.health = Degraded
	n.degradation = factor
}

// MarkDown takes the node out of service entirely.
func (n *Node) MarkDown() {
	n.health = Down
	n.degradation = 0
}

// Restore returns the node to full health.
func (n *Node) Restore() {
	n.health = Healthy
	n.degradation = 0
}

// Cores reports the number of CPUs.
func (n *Node) Cores() int {
	if n.pool.CPUCount < 1 {
		return 1
	}
	return n.pool.CPUCount
}

// Role reports the node's assigned role (e.g. "APP2"), set at allocation.
func (n *Node) Role() string { return n.role }

// Allocated reports whether the node is held by an experiment.
func (n *Node) Allocated() bool { return n.allocated }

// State reports a service's lifecycle state.
func (n *Node) State(service string) ServiceState { return n.services[service] }

// Version reports the installed version of a package, or "".
func (n *Node) Version(pkg string) string { return n.versions[pkg] }

// Install places a software package on the node.
func (n *Node) Install(pkg, version string) error {
	if n.services[pkg] != Absent {
		return fmt.Errorf("cluster: %s: %s already installed", n.name, pkg)
	}
	n.services[pkg] = Installed
	n.versions[pkg] = version
	return nil
}

// Configure marks a package configured. Configuration may be repeated
// (scripts reconfigure between trials) but requires prior installation.
func (n *Node) Configure(pkg string) error {
	switch n.services[pkg] {
	case Absent:
		return fmt.Errorf("cluster: %s: cannot configure %s before installing it", n.name, pkg)
	case Running:
		return fmt.Errorf("cluster: %s: cannot configure %s while it is running", n.name, pkg)
	}
	n.services[pkg] = Configured
	return nil
}

// Start ignites a configured service.
func (n *Node) Start(pkg string) error {
	switch n.services[pkg] {
	case Configured, Stopped:
		n.services[pkg] = Running
		return nil
	case Running:
		return fmt.Errorf("cluster: %s: %s is already running", n.name, pkg)
	default:
		return fmt.Errorf("cluster: %s: cannot start %s from state %s", n.name, pkg, n.services[pkg])
	}
}

// Stop halts a running service.
func (n *Node) Stop(pkg string) error {
	if n.services[pkg] != Running {
		return fmt.Errorf("cluster: %s: cannot stop %s from state %s", n.name, pkg, n.services[pkg])
	}
	n.services[pkg] = Stopped
	return nil
}

// Running lists services currently running, sorted.
func (n *Node) Running() []string {
	var out []string
	for svc, st := range n.services {
		if st == Running {
			out = append(out, svc)
		}
	}
	sort.Strings(out)
	return out
}

// WriteFile records a configuration file on the node (the simulated
// equivalent of Mulini pushing workers2.properties and friends).
func (n *Node) WriteFile(path, content string) {
	n.files[path] = content
}

// ReadFile returns a configuration file's content.
func (n *Node) ReadFile(path string) (string, bool) {
	c, ok := n.files[path]
	return c, ok
}

// Files lists written file paths, sorted.
func (n *Node) Files() []string {
	out := make([]string, 0, len(n.files))
	for p := range n.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// reset returns the node to pristine state on release. Health is
// restored too: a release models handing the machine back to the testbed
// operator, who fixes it before the next allocation.
func (n *Node) reset() {
	n.allocated = false
	n.role = ""
	n.health = Healthy
	n.degradation = 0
	n.services = map[string]ServiceState{}
	n.versions = map[string]string{}
	n.files = map[string]string{}
}

// Cluster is a set of nodes materialized from a CIM platform.
type Cluster struct {
	platform cim.Platform
	nodes    []*Node
	byName   map[string]*Node
}

// New materializes a cluster from a platform description: one node per
// unit of each pool's NodeCount, named pool-001, pool-002, ...
func New(platform cim.Platform) (*Cluster, error) {
	if len(platform.Pools) == 0 {
		return nil, fmt.Errorf("cluster: platform %q has no node pools", platform.Name)
	}
	c := &Cluster{platform: platform, byName: map[string]*Node{}}
	for _, pool := range platform.Pools {
		for i := 1; i <= pool.NodeCount; i++ {
			n := &Node{
				name:     fmt.Sprintf("%s-%03d", pool.Name, i),
				pool:     pool,
				services: map[string]ServiceState{},
				versions: map[string]string{},
				files:    map[string]string{},
			}
			c.nodes = append(c.nodes, n)
			c.byName[n.name] = n
		}
	}
	return c, nil
}

// Platform reports the cluster's platform description.
func (c *Cluster) Platform() cim.Platform { return c.platform }

// Size reports the total number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Free reports the number of unallocated nodes, optionally filtered by
// node type ("" = any).
func (c *Cluster) Free(nodeType string) int {
	n := 0
	for _, node := range c.nodes {
		if !node.allocated && (nodeType == "" || node.pool.NodeType == nodeType) {
			n++
		}
	}
	return n
}

// Node finds a node by hostname.
func (c *Cluster) Node(name string) (*Node, bool) {
	n, ok := c.byName[name]
	return n, ok
}

// Allocate reserves the first free node of the given type ("" = any) and
// assigns it a role. Allocation order is deterministic (pool declaration
// order, then index).
func (c *Cluster) Allocate(nodeType, role string) (*Node, error) {
	for _, node := range c.nodes {
		if node.allocated || node.health == Down {
			continue
		}
		if nodeType != "" && node.pool.NodeType != nodeType {
			continue
		}
		node.allocated = true
		node.role = role
		return node, nil
	}
	if nodeType == "" {
		return nil, fmt.Errorf("cluster: %s: no free nodes", c.platform.Name)
	}
	return nil, fmt.Errorf("cluster: %s: no free %q nodes", c.platform.Name, nodeType)
}

// Release returns a node to the pool and wipes its state.
func (c *Cluster) Release(n *Node) {
	if own, ok := c.byName[n.name]; !ok || own != n {
		return // not ours; ignore
	}
	n.reset()
}

// ReleaseAll wipes every allocated node, between experiment iterations.
func (c *Cluster) ReleaseAll() {
	for _, n := range c.nodes {
		if n.allocated {
			n.reset()
		}
	}
}

// Allocated lists currently allocated nodes in allocation order.
func (c *Cluster) Allocated() []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if n.allocated {
			out = append(out, n)
		}
	}
	return out
}

// String summarizes the cluster.
func (c *Cluster) String() string {
	var parts []string
	for _, pool := range c.platform.Pools {
		parts = append(parts, fmt.Sprintf("%s×%d@%dMHz", pool.Name, pool.NodeCount, pool.CPUMHz))
	}
	return fmt.Sprintf("cluster(%s: %s)", c.platform.Name, strings.Join(parts, ", "))
}
