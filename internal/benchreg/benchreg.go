// Package benchreg parses `go test -bench -benchmem` output into a
// comparable JSON report. It is the substrate of cmd/benchreg, the
// repo's benchmark regression harness.
package benchreg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measured costs.
type Benchmark struct {
	Name     string  `json:"name"`
	Runs     int64   `json:"runs"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
	// Extra holds custom b.ReportMetric values (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is a set of benchmarks keyed for comparison.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output. Lines that are not benchmark
// results (package headers, PASS, ok) are ignored. The trailing -N
// GOMAXPROCS suffix is stripped from names so reports compare across
// machines.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a header like "BenchmarkFoo ... goroutines"
		}
		b := Benchmark{Name: trimProcSuffix(fields[0]), Runs: runs}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchreg: bad value %q on line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "allocs/op":
				b.AllocsOp = v
			case "B/op":
				b.BytesOp = v
			case "MB/s":
				// throughput depends on the machine; skip
			default:
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// trimProcSuffix drops the "-8" GOMAXPROCS suffix go test appends.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// MarshalIndent renders the report as stable, human-diffable JSON.
func (r *Report) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Load reads a report previously written by cmd/benchreg.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchreg: %s: %w", path, err)
	}
	return &r, nil
}

// Delta is one benchmark's change versus a baseline.
type Delta struct {
	Name        string
	Base, Cur   Benchmark
	InBaseline  bool
	NsRatio     float64
	AllocsDelta float64
}

// Compare matches current benchmarks to the baseline by name. New
// benchmarks appear with InBaseline=false and never regress.
func Compare(base, cur *Report) []Delta {
	byName := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	var out []Delta
	for _, c := range cur.Benchmarks {
		d := Delta{Name: c.Name, Cur: c}
		if b, ok := byName[c.Name]; ok {
			d.Base, d.InBaseline = b, true
			if b.NsPerOp > 0 {
				d.NsRatio = c.NsPerOp / b.NsPerOp
			}
			d.AllocsDelta = c.AllocsOp - b.AllocsOp
		}
		out = append(out, d)
	}
	return out
}

// Regressed reports whether the delta violates the given thresholds.
func (d Delta) Regressed(maxRatio float64, strictAllocs bool) bool {
	if !d.InBaseline {
		return false
	}
	if d.NsRatio > maxRatio {
		return true
	}
	return strictAllocs && d.AllocsDelta > 0
}

// String renders one comparison row.
func (d Delta) String() string {
	if !d.InBaseline {
		return fmt.Sprintf("%-40s %12.1f ns/op %8.0f allocs/op  (new)",
			d.Name, d.Cur.NsPerOp, d.Cur.AllocsOp)
	}
	return fmt.Sprintf("%-40s %12.1f ns/op (%.2fx) %8.0f allocs/op (%+.0f)",
		d.Name, d.Cur.NsPerOp, d.NsRatio, d.Cur.AllocsOp, d.AllocsDelta)
}
