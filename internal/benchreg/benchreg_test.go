package benchreg

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: elba
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimKernelEvents-8    	42559718	        28.27 ns/op	       0 B/op	       0 allocs/op
BenchmarkStationPipeline-8    	15398103	        78.64 ns/op	       8 B/op	       1 allocs/op
BenchmarkFigure1RubisJonasRT-8	     202	   5770277 ns/op	       215.0 paper-max-rt-ms	 1295661 B/op	    8135 allocs/op
BenchmarkParallelTrialSweep   	      90	  12667324 ns/op	         8.000 grid-points
PASS
ok  	elba	42.1s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	byName := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	k, ok := byName["BenchmarkSimKernelEvents"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", rep.Benchmarks)
	}
	if k.NsPerOp != 28.27 || k.AllocsOp != 0 || k.Runs != 42559718 {
		t.Fatalf("kernel bench parsed wrong: %+v", k)
	}
	f := byName["BenchmarkFigure1RubisJonasRT"]
	if f.AllocsOp != 8135 || f.BytesOp != 1295661 {
		t.Fatalf("benchmem fields parsed wrong: %+v", f)
	}
	if f.Extra["paper-max-rt-ms"] != 215.0 {
		t.Fatalf("custom metric lost: %+v", f.Extra)
	}
	if p := byName["BenchmarkParallelTrialSweep"]; p.Extra["grid-points"] != 8 {
		t.Fatalf("no-benchmem line parsed wrong: %+v", p)
	}
	// Sorted by name for stable JSON diffs.
	for i := 1; i < len(rep.Benchmarks); i++ {
		if rep.Benchmarks[i-1].Name > rep.Benchmarks[i].Name {
			t.Fatalf("report not sorted: %q > %q", rep.Benchmarks[i-1].Name, rep.Benchmarks[i].Name)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := again.MarshalIndent()
	if string(data) != string(data2) {
		t.Fatal("report serialization not deterministic")
	}
}

func TestCompareAndRegression(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsOp: 10},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 150, AllocsOp: 12},
		{Name: "BenchmarkNew", NsPerOp: 1},
	}}
	deltas := Compare(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	a := deltas[0]
	if a.Name != "BenchmarkA" || !a.InBaseline || a.NsRatio != 1.5 || a.AllocsDelta != 2 {
		t.Fatalf("delta wrong: %+v", a)
	}
	if !a.Regressed(1.3, false) {
		t.Fatal("1.5x slowdown should regress at maxratio 1.3")
	}
	if a.Regressed(2.0, false) {
		t.Fatal("1.5x slowdown should pass at maxratio 2.0")
	}
	if !a.Regressed(2.0, true) {
		t.Fatal("alloc increase should regress with strict-allocs")
	}
	if deltas[1].InBaseline || deltas[1].Regressed(1.0, true) {
		t.Fatalf("new benchmark must never regress: %+v", deltas[1])
	}
}

func TestParseEmpty(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok elba 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed phantom benchmarks: %+v", rep.Benchmarks)
	}
}
