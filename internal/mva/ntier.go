package mva

import (
	"fmt"

	"elba/internal/bench"
	"elba/internal/spec"
)

// TierSpeeds carries the per-tier node characteristics needed to fold a
// benchmark's reference demands into an MVA network.
type TierSpeeds struct {
	// WebSpeed, AppSpeed, DBSpeed are CPU frequencies relative to the
	// 3 GHz reference.
	WebSpeed, AppSpeed, DBSpeed float64
	// WebCores, AppCores, DBCores are per-node CPU counts.
	WebCores, AppCores, DBCores int
}

// FromProfile builds the analytical model of an n-tier deployment: a
// closed network with the workload's stationary mean demands, the
// topology's replica counts, and a RAIDb-1 correction for the database
// tier (writes are served by every replica, so the per-replica demand is
// w·Dw + (1−w)·Dr/d; MVA sees the tier as one aggregate station with
// d×cores servers at that inflated demand).
func FromProfile(p *bench.Profile, topo spec.Topology, speeds TierSpeeds) (*Network, error) {
	if topo.Web < 1 || topo.App < 1 || topo.DB < 1 {
		return nil, fmt.Errorf("mva: topology %s needs at least one server per tier", topo)
	}
	web, app, _ := p.MeanDemands()

	// Decompose DB demand into read/write classes for the RAIDb-1
	// correction.
	pi := p.Matrix().Stationary()
	var wMass, dbRead, dbWrite float64
	for j, s := range p.Matrix().States() {
		if s.Write {
			wMass += pi[j]
			dbWrite += pi[j] * s.DBDemand
		} else {
			dbRead += pi[j] * s.DBDemand
		}
	}
	// Per-replica DB demand per request under RAIDb-1: the read share is
	// split across replicas, the write share is paid by all of them.
	dbPerReplica := dbWrite + dbRead/float64(topo.DB)

	stations := []Station{
		{Name: "web", Demand: web / speeds.WebSpeed, Servers: topo.Web * max1(speeds.WebCores)},
		{Name: "app", Demand: app / speeds.AppSpeed, Servers: topo.App * max1(speeds.AppCores)},
		{Name: "db", Demand: dbPerReplica / speeds.DBSpeed, Servers: topo.DB * max1(speeds.DBCores)},
	}
	return NewNetwork(p.ThinkTime(), stations)
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// EmulabSpeeds are the paper's Emulab allocation: 3 GHz single-CPU web
// and app nodes, a 600 MHz single-CPU database node (§IV.A).
var EmulabSpeeds = TierSpeeds{
	WebSpeed: 1.0, AppSpeed: 1.0, DBSpeed: 0.2,
	WebCores: 1, AppCores: 1, DBCores: 1,
}

// WarpSpeeds are the Warp blades: 3.06 GHz dual-CPU everywhere.
var WarpSpeeds = TierSpeeds{
	WebSpeed: 1.02, AppSpeed: 1.02, DBSpeed: 1.02,
	WebCores: 2, AppCores: 2, DBCores: 2,
}
