package mva_test

import (
	"fmt"

	"elba/internal/mva"
)

// A closed network with a 7 s think time and a 30 ms application tier
// saturates near (Z+D)/D ≈ 234 users — the paper's ≈250-users-per-app-
// server rule of thumb, derived analytically.
func ExampleNetwork_Solve() {
	nw, err := mva.NewNetwork(7.0, []mva.Station{
		{Name: "web", Demand: 0.0015, Servers: 1},
		{Name: "app", Demand: 0.0300, Servers: 1},
		{Name: "db", Demand: 0.0045, Servers: 1},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r, _ := nw.Solve(100)
	fmt.Printf("X(100) = %.1f req/s\n", r.Throughput)
	fmt.Printf("N* ≈ %.0f users\n", nw.SaturationPopulation())
	fmt.Println("bottleneck:", []string{"web", "app", "db"}[nw.BottleneckStation()])
	// Output:
	// X(100) = 14.2 req/s
	// N* ≈ 235 users
	// bottleneck: app
}
