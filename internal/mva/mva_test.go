package mva

import (
	"math"
	"testing"
	"testing/quick"

	"elba/internal/bench/rubis"
	"elba/internal/spec"
)

func TestSingleStationMatchesClosedForm(t *testing.T) {
	// One M/M/1 station, no think time: exact MVA gives
	// R(N) = N·D (all customers queue at the single station).
	nw, err := NewNetwork(0, []Station{{Name: "s", Demand: 0.1, Servers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 10} {
		r, err := nw.Solve(n)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n) * 0.1
		if math.Abs(r.ResponseTime-want) > 1e-12 {
			t.Errorf("R(%d) = %g, want %g", n, r.ResponseTime, want)
		}
		if math.Abs(r.Throughput-float64(n)/want) > 1e-12 {
			t.Errorf("X(%d) = %g", n, r.Throughput)
		}
	}
}

func TestThinkTimeDelays(t *testing.T) {
	// With think time Z and tiny demand, X ≈ N/Z and utilization stays
	// low.
	nw, err := NewNetwork(10, []Station{{Name: "s", Demand: 0.001, Servers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := nw.Solve(50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput-5.0) > 0.2 {
		t.Fatalf("X = %g, want ≈5", r.Throughput)
	}
	if r.Utilization[0] > 0.02 {
		t.Fatalf("util = %g", r.Utilization[0])
	}
}

func TestAsymptoticThroughputBound(t *testing.T) {
	// At high population, X → servers / demand of the bottleneck.
	nw, err := NewNetwork(1, []Station{
		{Name: "a", Demand: 0.05, Servers: 1},
		{Name: "b", Demand: 0.01, Servers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := nw.Solve(200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput-20) > 0.5 {
		t.Fatalf("saturated X = %g, want ≈20", r.Throughput)
	}
	if r.Utilization[0] < 0.99 {
		t.Fatalf("bottleneck util = %g", r.Utilization[0])
	}
	if nw.BottleneckStation() != 0 {
		t.Fatalf("bottleneck index = %d", nw.BottleneckStation())
	}
}

func TestSolveRangeMonotone(t *testing.T) {
	nw, err := NewNetwork(5, []Station{
		{Name: "a", Demand: 0.03, Servers: 2},
		{Name: "b", Demand: 0.004, Servers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := nw.SolveRange(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 300 {
		t.Fatalf("range = %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].ResponseTime < rs[i-1].ResponseTime-1e-9 {
			t.Fatalf("R not monotone at %d", i)
		}
		if rs[i].Throughput < rs[i-1].Throughput-1e-6 {
			t.Fatalf("X decreased at %d: %g -> %g", i, rs[i-1].Throughput, rs[i].Throughput)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewNetwork(-1, []Station{{Demand: 1, Servers: 1}}); err == nil {
		t.Errorf("negative think accepted")
	}
	if _, err := NewNetwork(1, nil); err == nil {
		t.Errorf("empty network accepted")
	}
	if _, err := NewNetwork(1, []Station{{Demand: -1, Servers: 1}}); err == nil {
		t.Errorf("negative demand accepted")
	}
	if _, err := NewNetwork(1, []Station{{Demand: 1, Servers: 0}}); err == nil {
		t.Errorf("zero servers accepted")
	}
	nw, _ := NewNetwork(1, []Station{{Demand: 1, Servers: 1}})
	if _, err := nw.Solve(0); err == nil {
		t.Errorf("zero population accepted")
	}
}

func TestSaturationPopulation(t *testing.T) {
	// Z=7, D_app=0.03: N* ≈ (7 + 0.03)/0.03 ≈ 234 — the design's
	// ≈250-users-per-app-server rule.
	nw, err := NewNetwork(7, []Station{{Name: "app", Demand: 0.03, Servers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if n := nw.SaturationPopulation(); math.Abs(n-234.3) > 1 {
		t.Fatalf("N* = %g, want ≈234", n)
	}
	// Delay-only network never saturates.
	nw2, _ := NewNetwork(7, []Station{{Name: "z", Demand: 1, Delay: true}})
	if !math.IsInf(nw2.SaturationPopulation(), 1) {
		t.Fatalf("delay-only N* should be infinite")
	}
}

// TestFromProfileMatchesPaperKnees builds the analytical model of the
// paper's configurations and checks the headline knees.
func TestFromProfileMatchesPaperKnees(t *testing.T) {
	p, err := rubis.Bidding(rubis.JOnAS)
	if err != nil {
		t.Fatal(err)
	}
	// 1-1-1 on Emulab: app bottleneck near 250 users.
	nw, err := FromProfile(p, spec.Topology{Web: 1, App: 1, DB: 1}, EmulabSpeeds)
	if err != nil {
		t.Fatal(err)
	}
	if nw.BottleneckStation() != 1 {
		t.Fatalf("1-1-1 bottleneck should be the app tier")
	}
	if n := nw.SaturationPopulation(); n < 220 || n > 280 {
		t.Fatalf("1-1-1 N* = %g, want ≈250", n)
	}
	// 1-8-1: the 600 MHz DB becomes the bottleneck near 1700 users.
	nw81, err := FromProfile(p, spec.Topology{Web: 1, App: 8, DB: 1}, EmulabSpeeds)
	if err != nil {
		t.Fatal(err)
	}
	if nw81.BottleneckStation() != 2 {
		t.Fatalf("1-8-1 bottleneck should be the db tier")
	}
	if n := nw81.SaturationPopulation(); n < 1500 || n > 1900 {
		t.Fatalf("1-8-1 N* = %g, want ≈1700", n)
	}
	// 1-12-2: RAIDb-1 pushes the 2-DB knee to ≈2900, not 3400.
	nw122, err := FromProfile(p, spec.Topology{Web: 1, App: 12, DB: 2}, EmulabSpeeds)
	if err != nil {
		t.Fatal(err)
	}
	if n := nw122.SaturationPopulation(); n < 2600 || n > 3200 {
		t.Fatalf("1-12-2 N* = %g, want ≈2900 (RAIDb-1 sub-linearity)", n)
	}
}

func TestFromProfileValidation(t *testing.T) {
	p, err := rubis.Bidding(rubis.JOnAS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromProfile(p, spec.Topology{Web: 0, App: 1, DB: 1}, EmulabSpeeds); err == nil {
		t.Fatalf("invalid topology accepted")
	}
}

// Property: utilizations stay in [0,1] and queue lengths sum to ≈ the
// population minus thinkers.
func TestInvariantsProperty(t *testing.T) {
	f := func(d1, d2 uint16, nRaw uint8) bool {
		demand1 := 0.001 + float64(d1%1000)/10000
		demand2 := 0.001 + float64(d2%1000)/10000
		n := 1 + int(nRaw%100)
		nw, err := NewNetwork(1.0, []Station{
			{Name: "a", Demand: demand1, Servers: 1},
			{Name: "b", Demand: demand2, Servers: 2},
		})
		if err != nil {
			return false
		}
		r, err := nw.Solve(n)
		if err != nil {
			return false
		}
		var inService float64
		for i, u := range r.Utilization {
			if u < 0 || u > 1.0000001 {
				return false
			}
			inService += r.QueueLength[i]
		}
		thinkers := r.Throughput * 1.0
		total := inService + thinkers
		return math.Abs(total-float64(n)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
