// Package mva implements exact Mean Value Analysis for closed
// multi-station queueing networks with think time — the "traditional
// performance analysis" the paper contrasts its observation-based
// approach against (§I, §VI). The paper argues that experimental results
// "can be used to confirm or disprove analytical models within the system
// parameter ranges covered by the experiments"; this package makes that
// comparison executable: it predicts response time, throughput, and
// per-station utilization for the same n-tier configurations the
// simulated testbed measures, so the deviations the paper expects —
// connection-pool failures, write broadcast, saturation fluctuations —
// show up as observed-vs-predicted gaps.
package mva

import (
	"fmt"
	"math"
)

// Station describes one service center in the closed network.
type Station struct {
	// Name identifies the station in results.
	Name string
	// Demand is the mean service demand per customer visit in seconds
	// (already folded with the visit ratio).
	Demand float64
	// Servers is the number of parallel servers. Exact MVA handles
	// single-server queueing stations; multi-server stations are modelled
	// with the standard approximation of dividing demand by the server
	// count and treating residual queueing at the aggregate (adequate for
	// the near-balanced loads our tiers carry).
	Servers int
	// Delay marks pure delay (infinite-server) stations; think time is
	// modelled this way.
	Delay bool
}

// Result is the MVA solution for one population size.
type Result struct {
	// Population is the number of customers (users).
	Population int
	// Throughput is the system throughput in customers/second.
	Throughput float64
	// ResponseTime is the mean end-to-end response time excluding think
	// time, in seconds.
	ResponseTime float64
	// QueueLength holds the mean number of customers at each station,
	// indexed like the input stations.
	QueueLength []float64
	// Utilization holds each station's utilization in [0, 1] (per
	// server), indexed like the input stations.
	Utilization []float64
}

// Network is a closed queueing network with a think-time delay station.
type Network struct {
	stations []Station
	think    float64
}

// NewNetwork builds a network. think is the mean think time in seconds
// (the delay center customers return to between requests).
func NewNetwork(think float64, stations []Station) (*Network, error) {
	if think < 0 {
		return nil, fmt.Errorf("mva: negative think time")
	}
	if len(stations) == 0 {
		return nil, fmt.Errorf("mva: network needs at least one station")
	}
	for i, s := range stations {
		if s.Demand < 0 || math.IsNaN(s.Demand) || math.IsInf(s.Demand, 0) {
			return nil, fmt.Errorf("mva: station %d (%s) has invalid demand %g", i, s.Name, s.Demand)
		}
		if !s.Delay && s.Servers < 1 {
			return nil, fmt.Errorf("mva: station %d (%s) needs at least one server", i, s.Name)
		}
	}
	return &Network{stations: stations, think: think}, nil
}

// Solve runs exact MVA for population n and returns the solution at n.
// Complexity is O(n × stations).
func (nw *Network) Solve(n int) (Result, error) {
	results, err := nw.SolveRange(n)
	if err != nil {
		return Result{}, err
	}
	return results[len(results)-1], nil
}

// SolveRange runs exact MVA for populations 1..n and returns all
// solutions in order (the standard recursion computes them anyway).
func (nw *Network) SolveRange(n int) ([]Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("mva: population must be at least 1")
	}
	k := len(nw.stations)
	queue := make([]float64, k) // Q_i at previous population
	out := make([]Result, 0, n)
	for pop := 1; pop <= n; pop++ {
		// Residence time per station.
		resid := make([]float64, k)
		var total float64
		for i, s := range nw.stations {
			d := s.Demand
			if s.Delay {
				resid[i] = d
			} else {
				eff := d / float64(s.Servers)
				resid[i] = eff * (1 + queue[i])
			}
			total += resid[i]
		}
		x := float64(pop) / (nw.think + total)
		res := Result{
			Population:   pop,
			Throughput:   x,
			ResponseTime: total,
			QueueLength:  make([]float64, k),
			Utilization:  make([]float64, k),
		}
		for i, s := range nw.stations {
			queue[i] = x * resid[i]
			res.QueueLength[i] = queue[i]
			if s.Delay {
				res.Utilization[i] = 0
			} else {
				u := x * s.Demand / float64(s.Servers)
				if u > 1 {
					u = 1
				}
				res.Utilization[i] = u
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// SaturationPopulation estimates the knee population N* = (Z + D) / D_max
// from asymptotic bounds, where D is the total demand and D_max the
// per-request demand of the slowest station (per server).
func (nw *Network) SaturationPopulation() float64 {
	var total, dmax float64
	for _, s := range nw.stations {
		total += s.Demand
		if s.Delay {
			continue
		}
		eff := s.Demand / float64(s.Servers)
		if eff > dmax {
			dmax = eff
		}
	}
	if dmax == 0 {
		return math.Inf(1)
	}
	return (nw.think + total) / dmax
}

// BottleneckStation returns the index of the station with the highest
// per-server demand (the asymptotic bottleneck), ignoring delay centers.
func (nw *Network) BottleneckStation() int {
	best, bestEff := -1, -1.0
	for i, s := range nw.stations {
		if s.Delay {
			continue
		}
		eff := s.Demand / float64(s.Servers)
		if eff > bestEff {
			best, bestEff = i, eff
		}
	}
	return best
}
