package sim

import "fmt"

// RAIDb models a C-JDBC RAIDb-1 (full replication) database cluster, the
// configuration the paper's generated mysqldb-raidb1-elba.xml file
// describes. Reads are load-balanced across replicas; writes are broadcast
// to every replica and complete when the slowest replica finishes.
//
// This asymmetry is what produces the paper's sub-linear database
// scale-out: with write fraction w and d replicas, per-replica demand per
// request is w·Dw + (1−w)·Dr/d, so capacity grows by 1/(w + (1−w)/d)
// rather than d.
type RAIDb struct {
	k        *Kernel
	replicas []*Station
	policy   BalancerPolicy
	next     int
}

// NewRAIDb creates a replicated DB tier over the given replica stations.
func NewRAIDb(k *Kernel, policy BalancerPolicy, replicas []*Station) *RAIDb {
	if len(replicas) == 0 {
		panic("sim: RAIDb needs at least one replica")
	}
	return &RAIDb{k: k, replicas: replicas, policy: policy}
}

// Replicas returns the backing stations (shared, not copied).
func (r *RAIDb) Replicas() []*Station { return r.replicas }

// Size reports the number of replicas.
func (r *RAIDb) Size() int { return len(r.replicas) }

func (r *RAIDb) pickRead() *Station {
	switch r.policy {
	case LeastConnections:
		best := r.replicas[0]
		for _, s := range r.replicas[1:] {
			if s.InFlight() < best.InFlight() {
				best = s
			}
		}
		return best
	case RandomPick:
		return r.replicas[r.k.Rand().IntN(len(r.replicas))]
	default:
		s := r.replicas[r.next%len(r.replicas)]
		r.next++
		return s
	}
}

// Read dispatches a read query to one replica.
func (r *RAIDb) Read(demand float64, done Completion) {
	r.pickRead().Submit(demand, done)
}

// Write broadcasts a write to every replica; done fires once, when the
// slowest replica has applied it (or immediately with ok=false if any
// replica rejects). Rejection by one replica does not cancel the others —
// like the real controller, the broadcast has already been issued — but
// the request is reported failed.
func (r *RAIDb) Write(demand float64, done Completion) {
	remaining := len(r.replicas)
	allOK := true
	var maxWait, maxSvc float64
	for _, rep := range r.replicas {
		rep.Submit(demand, func(ok bool, wait, service float64) {
			remaining--
			if !ok {
				allOK = false
			}
			if wait > maxWait {
				maxWait = wait
			}
			if service > maxSvc {
				maxSvc = service
			}
			if remaining == 0 {
				done(allOK, maxWait, maxSvc)
			}
		})
	}
}

// Completed sums completed queries across replicas.
func (r *RAIDb) Completed() int64 {
	var n int64
	for _, s := range r.replicas {
		n += s.Completed()
	}
	return n
}

// ResetAccounting resets counters on every replica.
func (r *RAIDb) ResetAccounting() {
	for _, s := range r.replicas {
		s.ResetAccounting()
	}
}

// String describes the cluster for logs.
func (r *RAIDb) String() string {
	return fmt.Sprintf("RAIDb-1[%d replicas, %s reads]", len(r.replicas), r.policy)
}
