package sim

import "fmt"

// RAIDb models a C-JDBC RAIDb-1 (full replication) database cluster, the
// configuration the paper's generated mysqldb-raidb1-elba.xml file
// describes. Reads are load-balanced across replicas; writes are broadcast
// to every replica and complete when the slowest replica finishes.
//
// This asymmetry is what produces the paper's sub-linear database
// scale-out: with write fraction w and d replicas, per-replica demand per
// request is w·Dw + (1−w)·Dr/d, so capacity grows by 1/(w + (1−w)/d)
// rather than d.
type RAIDb struct {
	k        *Kernel
	replicas []*Station
	policy   BalancerPolicy
	next     int
	// wpool recycles write-broadcast trackers so a broadcast write costs
	// no allocation on the simulation hot path.
	wpool []*writeCall
}

// NewRAIDb creates a replicated DB tier over the given replica stations.
func NewRAIDb(k *Kernel, policy BalancerPolicy, replicas []*Station) *RAIDb {
	if len(replicas) == 0 {
		panic("sim: RAIDb needs at least one replica")
	}
	return &RAIDb{k: k, replicas: replicas, policy: policy}
}

// Replicas returns the backing stations (shared, not copied).
func (r *RAIDb) Replicas() []*Station { return r.replicas }

// Size reports the number of replicas.
func (r *RAIDb) Size() int { return len(r.replicas) }

func (r *RAIDb) pickRead() *Station {
	switch r.policy {
	case LeastConnections:
		best := r.replicas[0]
		for _, s := range r.replicas[1:] {
			if s.InFlight() < best.InFlight() {
				best = s
			}
		}
		return best
	case RandomPick:
		return r.replicas[r.k.Rand().IntN(len(r.replicas))]
	default:
		s := r.replicas[r.next%len(r.replicas)]
		r.next++
		return s
	}
}

// Read dispatches a read query to one replica.
func (r *RAIDb) Read(demand float64, done Completion) {
	r.pickRead().submit(demand, completionFunc(done))
}

// readJob is the allocation-free form of Read used by the request router.
func (r *RAIDb) readJob(demand float64, done jobDone) {
	r.pickRead().submit(demand, done)
}

// writeCall tracks one broadcast write across the replicas. Trackers are
// pooled on the RAIDb so steady-state writes allocate nothing.
type writeCall struct {
	r         *RAIDb
	parent    jobDone
	remaining int
	allOK     bool
	maxWait   float64
	maxSvc    float64
}

func (w *writeCall) jobFinished(ok bool, wait, service float64) {
	w.remaining--
	if !ok {
		w.allOK = false
	}
	if wait > w.maxWait {
		w.maxWait = wait
	}
	if service > w.maxSvc {
		w.maxSvc = service
	}
	if w.remaining == 0 {
		parent, allOK, maxWait, maxSvc := w.parent, w.allOK, w.maxWait, w.maxSvc
		w.parent = nil
		w.r.wpool = append(w.r.wpool, w)
		parent.jobFinished(allOK, maxWait, maxSvc)
	}
}

// Write broadcasts a write to every replica; done fires once, when the
// slowest replica has applied it (or immediately with ok=false if any
// replica rejects). Rejection by one replica does not cancel the others —
// like the real controller, the broadcast has already been issued — but
// the request is reported failed.
func (r *RAIDb) Write(demand float64, done Completion) {
	r.writeJob(demand, completionFunc(done))
}

// writeJob is the allocation-free form of Write used by the request
// router.
func (r *RAIDb) writeJob(demand float64, done jobDone) {
	var w *writeCall
	if n := len(r.wpool); n > 0 {
		w = r.wpool[n-1]
		r.wpool = r.wpool[:n-1]
	} else {
		w = &writeCall{r: r}
	}
	w.parent = done
	w.remaining = len(r.replicas)
	w.allOK = true
	w.maxWait, w.maxSvc = 0, 0
	for _, rep := range r.replicas {
		rep.submit(demand, w)
	}
}

// Completed sums completed queries across replicas.
func (r *RAIDb) Completed() int64 {
	var n int64
	for _, s := range r.replicas {
		n += s.Completed()
	}
	return n
}

// ResetAccounting resets counters on every replica.
func (r *RAIDb) ResetAccounting() {
	for _, s := range r.replicas {
		s.ResetAccounting()
	}
}

// String describes the cluster for logs.
func (r *RAIDb) String() string {
	return fmt.Sprintf("RAIDb-1[%d replicas, %s reads]", len(r.replicas), r.policy)
}
