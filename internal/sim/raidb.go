package sim

import (
	"fmt"

	"elba/internal/trace"
)

// RAIDb models a C-JDBC RAIDb-1 (full replication) database cluster, the
// configuration the paper's generated mysqldb-raidb1-elba.xml file
// describes. Reads are load-balanced across replicas; writes are broadcast
// to every replica and complete when the slowest replica finishes.
//
// This asymmetry is what produces the paper's sub-linear database
// scale-out: with write fraction w and d replicas, per-replica demand per
// request is w·Dw + (1−w)·Dr/d, so capacity grows by 1/(w + (1−w)/d)
// rather than d.
type RAIDb struct {
	k        *Kernel
	replicas []*Station
	policy   BalancerPolicy
	next     int
	// Demand carries the DB tier's optional per-request resource demands.
	// Broadcast writes charge every replica's disk and ingress link
	// individually: the controller ships the statement to each replica,
	// and each replica applies it to its own spindle. A zero value keeps
	// the historical CPU-only write path.
	Demand TierDemand
	// wpool recycles write-broadcast trackers so a broadcast write costs
	// no allocation on the simulation hot path.
	wpool []*writeCall
	// lpool recycles per-replica write legs used only by traced writes.
	lpool []*writeLeg
	// retired holds replicas removed by scale-in. In-flight reads and
	// broadcast-write legs on a retired replica still complete (writeCall
	// snapshots its fan-out at submit), but no new query reaches it.
	retired []*Station
}

// NewRAIDb creates a replicated DB tier over the given replica stations.
func NewRAIDb(k *Kernel, policy BalancerPolicy, replicas []*Station) *RAIDb {
	if len(replicas) == 0 {
		panic("sim: RAIDb needs at least one replica")
	}
	return &RAIDb{k: k, replicas: replicas, policy: policy}
}

// Replicas returns the backing stations (shared, not copied).
func (r *RAIDb) Replicas() []*Station { return r.replicas }

// Retired returns replicas removed by scale-in (shared, not copied).
func (r *RAIDb) Retired() []*Station { return r.retired }

// Size reports the number of replicas.
func (r *RAIDb) Size() int { return len(r.replicas) }

// AddReplica joins a replica to the cluster: subsequent reads rotate over
// the grown set from the head, and subsequent writes broadcast to it.
// Broadcasts already in flight are unaffected (they snapshotted their
// fan-out at submit).
func (r *RAIDb) AddReplica(s *Station) {
	r.replicas = append(r.replicas, s)
	r.next = 0
}

// RemoveReplica retires the most recently added replica (LIFO) and
// returns it, or nil when the cluster is already down to one replica.
// The retired replica drains its in-flight queries but is excluded from
// new reads and write broadcasts.
func (r *RAIDb) RemoveReplica() *Station {
	if len(r.replicas) <= 1 {
		return nil
	}
	s := r.replicas[len(r.replicas)-1]
	r.replicas = r.replicas[:len(r.replicas)-1]
	r.retired = append(r.retired, s)
	r.next = 0
	return s
}

func (r *RAIDb) pickRead() *Station {
	switch r.policy {
	case LeastConnections:
		best := r.replicas[0]
		for _, s := range r.replicas[1:] {
			if s.InFlight() < best.InFlight() {
				best = s
			}
		}
		return best
	case RandomPick:
		return r.replicas[r.k.Rand().IntN(len(r.replicas))]
	default:
		s := r.replicas[r.next%len(r.replicas)]
		r.next++
		return s
	}
}

// Read dispatches a read query to one replica.
func (r *RAIDb) Read(demand float64, done Completion) {
	r.pickRead().submit(demand, completionFunc(done))
}

// writeCall tracks one broadcast write across the replicas. Trackers are
// pooled on the RAIDb so steady-state writes allocate nothing.
type writeCall struct {
	r         *RAIDb
	parent    jobDone
	remaining int
	allOK     bool
	maxWait   float64
	maxSvc    float64
}

func (w *writeCall) jobFinished(ok bool, wait, service float64) {
	w.remaining--
	if !ok {
		w.allOK = false
	}
	if wait > w.maxWait {
		w.maxWait = wait
	}
	if service > w.maxSvc {
		w.maxSvc = service
	}
	if w.remaining == 0 {
		parent, allOK, maxWait, maxSvc := w.parent, w.allOK, w.maxWait, w.maxSvc
		w.parent = nil
		w.r.wpool = append(w.r.wpool, w)
		parent.jobFinished(allOK, maxWait, maxSvc)
	}
}

// Write broadcasts a write to every replica; done fires once, when the
// slowest replica has applied it (or immediately with ok=false if any
// replica rejects). Rejection by one replica does not cancel the others —
// like the real controller, the broadcast has already been issued — but
// the request is reported failed.
func (r *RAIDb) Write(demand float64, done Completion) {
	r.writeJob(demand, completionFunc(done))
}

// writeJob is the allocation-free form of Write used by the request
// router.
func (r *RAIDb) writeJob(demand float64, done jobDone) {
	var w *writeCall
	if n := len(r.wpool); n > 0 {
		w = r.wpool[n-1]
		r.wpool = r.wpool[:n-1]
	} else {
		w = &writeCall{r: r}
	}
	w.parent = done
	w.remaining = len(r.replicas)
	w.allOK = true
	w.maxWait, w.maxSvc = 0, 0
	if r.Demand.zero() {
		for _, rep := range r.replicas {
			rep.submit(demand, w)
		}
		return
	}
	cpu, disk, net := r.writeDemands(demand)
	for _, rep := range r.replicas {
		rep.submitRes(cpu, disk, net, w)
	}
}

// writeDemands resolves one broadcast write's per-replica resource legs
// from the tier demand declaration.
func (r *RAIDb) writeDemands(demand float64) (cpu, disk, net float64) {
	cpu = demand
	if r.Demand.CPUScale > 0 {
		cpu = demand * r.Demand.CPUScale
	}
	return cpu, r.Demand.DiskSec, r.Demand.NetBytes
}

// writeLeg observes one replica's share of a traced broadcast write: it
// records the replica's span into the trace, then forwards the completion
// to the broadcast tracker. The aggregated jobFinished the tracker emits
// still carries the slowest leg's (wait, service), so traced and untraced
// writes produce identical request-level outcomes. Legs are pooled so
// traced writes allocate nothing in steady state.
type writeLeg struct {
	w       *writeCall
	tr      *trace.Trace
	station string
	start   float64
}

func (l *writeLeg) jobFinished(ok bool, wait, service float64) {
	w := l.w
	l.tr.AddSpan(trace.TierDB, l.station, l.start, wait, service, ok)
	l.w, l.tr = nil, nil
	w.r.lpool = append(w.r.lpool, l)
	w.jobFinished(ok, wait, service)
}

// writeJobTraced is writeJob with per-replica span capture into tr. A nil
// tr takes the untraced path, keeping the hot path branch-identical to
// historical behaviour.
func (r *RAIDb) writeJobTraced(demand float64, done jobDone, tr *trace.Trace) {
	if tr == nil {
		r.writeJob(demand, done)
		return
	}
	var w *writeCall
	if n := len(r.wpool); n > 0 {
		w = r.wpool[n-1]
		r.wpool = r.wpool[:n-1]
	} else {
		w = &writeCall{r: r}
	}
	w.parent = done
	w.remaining = len(r.replicas)
	w.allOK = true
	w.maxWait, w.maxSvc = 0, 0
	now := r.k.Now()
	plain := r.Demand.zero()
	var cpu, disk, net float64
	if !plain {
		cpu, disk, net = r.writeDemands(demand)
	}
	for _, rep := range r.replicas {
		var l *writeLeg
		if n := len(r.lpool); n > 0 {
			l = r.lpool[n-1]
			r.lpool = r.lpool[:n-1]
		} else {
			l = &writeLeg{}
		}
		l.w, l.tr, l.station, l.start = w, tr, rep.name, now
		if plain {
			rep.submit(demand, l)
		} else {
			rep.submitRes(cpu, disk, net, l)
		}
	}
}

// Completed sums completed queries across replicas, including retired
// ones (their work happened and still counts).
func (r *RAIDb) Completed() int64 {
	var n int64
	for _, s := range r.replicas {
		n += s.Completed()
	}
	for _, s := range r.retired {
		n += s.Completed()
	}
	return n
}

// ResetAccounting resets counters on every replica.
func (r *RAIDb) ResetAccounting() {
	for _, s := range r.replicas {
		s.ResetAccounting()
	}
	for _, s := range r.retired {
		s.ResetAccounting()
	}
}

// String describes the cluster for logs.
func (r *RAIDb) String() string {
	return fmt.Sprintf("RAIDb-1[%d replicas, %s reads]", len(r.replicas), r.policy)
}
