package sim

import (
	"reflect"
	"testing"
)

// churnModel is a light two-demand workload for population-churn tests.
func churnModel() fixedModel {
	return fixedModel{
		it:    Interaction{Name: "ix", WebDemand: 0.001, AppDemand: 0.010, DBDemand: 0.002},
		think: 0.5,
	}
}

// TestDriverChurnAccounting interleaves AddUsers and RemoveUsers and pins
// the session bookkeeping a dynamic-population trial leans on: ActiveUsers
// tracks every step, retired sessions are never resurrected, their user
// ids are never reused by late joiners, and over-removal floors at zero
// instead of panicking or going negative.
func TestDriverChurnAccounting(t *testing.T) {
	k := NewKernel(3)
	app := buildApp(k, 1, 2, 1, 0)
	d := NewDriver(k, app, churnModel(), DriverConfig{Users: 10, RampUp: 1}, 7)
	d.Start()
	k.Run(5)
	if got := d.ActiveUsers(); got != 10 {
		t.Fatalf("after Start: ActiveUsers = %d, want 10", got)
	}

	d.RemoveUsers(4)
	if got := d.ActiveUsers(); got != 6 {
		t.Fatalf("after RemoveUsers(4): ActiveUsers = %d, want 6", got)
	}
	d.AddUsers(3, 0)
	if got := d.ActiveUsers(); got != 9 {
		t.Fatalf("after AddUsers(3): ActiveUsers = %d, want 9", got)
	}
	// Retired sessions stay retired and keep their ids; the three joiners
	// got fresh ids past the old population, so no id is ever reused.
	if got := len(d.users); got != 13 {
		t.Fatalf("user roster = %d entries, want 13 (10 started + 3 joined)", got)
	}
	seen := make(map[int]bool, len(d.users))
	retired := 0
	for _, u := range d.users {
		if seen[u.id] {
			t.Fatalf("user id %d reused", u.id)
		}
		seen[u.id] = true
		if u.stop {
			retired++
		}
	}
	if retired != 4 {
		t.Fatalf("roster carries %d retired sessions, want 4", retired)
	}

	// Over-removal retires everyone and stops at zero.
	d.RemoveUsers(100)
	if got := d.ActiveUsers(); got != 0 {
		t.Fatalf("after over-removal: ActiveUsers = %d, want 0", got)
	}

	// Regrowth after a full drain: new sessions are live and make
	// progress — the drained driver is not a dead driver.
	k.Run(20)
	before := d.completed
	d.AddUsers(5, 0)
	if got := d.ActiveUsers(); got != 5 {
		t.Fatalf("after regrow: ActiveUsers = %d, want 5", got)
	}
	k.Run(40)
	if d.completed <= before {
		t.Fatalf("regrown population completed no requests (%d before, %d after)",
			before, d.completed)
	}
}

// churnRun executes one seeded trial with a scripted mid-run churn
// schedule (surge, deep drain, regrow) and returns the measured records.
func churnRun(t *testing.T) []RequestRecord {
	t.Helper()
	k := NewKernel(3)
	app := buildApp(k, 1, 2, 1, 0)
	d := NewDriver(k, app, churnModel(), DriverConfig{Users: 12, RampUp: 2}, 42)
	d.Start()
	k.Run(10)
	d.BeginMeasurement()
	k.Schedule(5, func() { d.AddUsers(7, 2) })
	k.Schedule(12, func() { d.RemoveUsers(15) })
	k.Schedule(20, func() { d.AddUsers(6, 0) })
	k.Run(k.Now() + 40)
	d.EndMeasurement()
	return d.Records()
}

// TestDriverChurnDeterministic pins record-stream reproducibility across
// population churn: two identically seeded runs of the same scripted
// surge/drain/regrow schedule produce byte-identical request records, so
// a dynamic-workload trial stays as reproducible as a static one.
func TestDriverChurnDeterministic(t *testing.T) {
	a, b := churnRun(t), churnRun(t)
	if len(a) == 0 {
		t.Fatal("churn run measured no requests")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("record streams diverge across identical churn runs (%d vs %d records)",
			len(a), len(b))
	}
}
