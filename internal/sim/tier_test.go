package sim

import (
	"testing"
)

func makeTier(k *Kernel, n int, policy BalancerPolicy) *Tier {
	stations := make([]*Station, n)
	for i := range stations {
		stations[i] = NewStation(k, StationConfig{
			Name: "S", Servers: 1, Speed: 1, Deterministic: true,
		})
	}
	return NewTier(k, "app", policy, stations)
}

func TestTierRoundRobinSpread(t *testing.T) {
	k := NewKernel(1)
	tier := makeTier(k, 3, RoundRobin)
	for i := 0; i < 9; i++ {
		tier.Submit(1.0, func(bool, float64, float64) {})
	}
	for i, s := range tier.Stations() {
		if s.InFlight() != 3 {
			t.Fatalf("station %d has %d jobs, want 3", i, s.InFlight())
		}
	}
}

func TestTierLeastConnections(t *testing.T) {
	k := NewKernel(1)
	tier := makeTier(k, 2, LeastConnections)
	// Load the first station directly, then ask the tier: it must pick
	// the idle one.
	tier.Stations()[0].Submit(10.0, func(bool, float64, float64) {})
	tier.Submit(1.0, func(bool, float64, float64) {})
	if tier.Stations()[1].InFlight() != 1 {
		t.Fatalf("least-connections did not pick the idle station")
	}
}

func TestTierRandomPickCoversAll(t *testing.T) {
	k := NewKernel(5)
	tier := makeTier(k, 4, RandomPick)
	for i := 0; i < 200; i++ {
		tier.Submit(1000.0, func(bool, float64, float64) {})
	}
	for i, s := range tier.Stations() {
		if s.InFlight() == 0 {
			t.Fatalf("random policy never used station %d", i)
		}
	}
}

func TestTierAggregates(t *testing.T) {
	k := NewKernel(1)
	tier := makeTier(k, 2, RoundRobin)
	for i := 0; i < 4; i++ {
		tier.Submit(1.0, func(bool, float64, float64) {})
	}
	k.Run(10)
	if tier.Completed() != 4 {
		t.Fatalf("completed = %d, want 4", tier.Completed())
	}
	tier.ResetAccounting()
	if tier.Completed() != 0 {
		t.Fatalf("reset did not clear tier counters")
	}
}

func TestTierPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" ||
		LeastConnections.String() != "least-connections" ||
		RandomPick.String() != "random" {
		t.Fatalf("policy names wrong")
	}
	if BalancerPolicy(42).String() == "" {
		t.Fatalf("unknown policy should still render")
	}
}

func TestTierPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for empty tier")
		}
	}()
	NewTier(NewKernel(1), "x", RoundRobin, nil)
}
