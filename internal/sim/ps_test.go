package sim

import (
	"math"
	"testing"
)

func TestPSSingleJob(t *testing.T) {
	k := NewKernel(1)
	s := NewPSStation(k, StationConfig{Name: "PS", Servers: 1, Speed: 1})
	var done bool
	var sojourn float64
	s.Submit(2.0, func(ok bool, _, svc float64) { done, sojourn = ok, svc })
	k.Run(10)
	if !done || math.Abs(sojourn-2.0) > 1e-9 {
		t.Fatalf("lone PS job should take exactly its demand: %v %g", done, sojourn)
	}
}

func TestPSEqualSharing(t *testing.T) {
	// Two equal jobs arriving together on one server each take 2× their
	// demand: they share the processor.
	k := NewKernel(1)
	s := NewPSStation(k, StationConfig{Name: "PS", Servers: 1, Speed: 1})
	var at []float64
	for i := 0; i < 2; i++ {
		s.Submit(1.0, func(bool, float64, float64) { at = append(at, k.Now()) })
	}
	k.Run(10)
	if len(at) != 2 {
		t.Fatalf("completions = %d", len(at))
	}
	for _, a := range at {
		if math.Abs(a-2.0) > 1e-9 {
			t.Fatalf("completion at %g, want 2.0 (shared)", a)
		}
	}
}

func TestPSShortJobNotStuckBehindLong(t *testing.T) {
	// The defining PS property the FCFS station lacks: a short job
	// arriving behind a long one still finishes quickly.
	k := NewKernel(1)
	ps := NewPSStation(k, StationConfig{Name: "PS", Servers: 1, Speed: 1})
	var shortDone float64
	ps.Submit(10.0, func(bool, float64, float64) {})
	k.Run(1) // long job has 9s left
	ps.Submit(0.5, func(bool, float64, float64) { shortDone = k.Now() })
	k.Run(100)
	// Short job shares 50/50: finishes 1s after arrival (at t=2).
	if math.Abs(shortDone-2.0) > 1e-9 {
		t.Fatalf("short PS job finished at %g, want 2.0", shortDone)
	}

	// Same arrival pattern under FCFS: the short job waits the full 9s.
	k2 := NewKernel(1)
	fcfs := NewStation(k2, StationConfig{Name: "F", Servers: 1, Speed: 1, Deterministic: true})
	var fcfsDone float64
	fcfs.Submit(10.0, func(bool, float64, float64) {})
	k2.Run(1)
	fcfs.Submit(0.5, func(bool, float64, float64) { fcfsDone = k2.Now() })
	k2.Run(100)
	if fcfsDone <= 10.0 {
		t.Fatalf("FCFS short job finished at %g, should wait for the long one", fcfsDone)
	}
}

func TestPSMultiServerNoSharingBelowCapacity(t *testing.T) {
	// Two jobs on a two-server PS station don't share: each runs at
	// full rate.
	k := NewKernel(1)
	s := NewPSStation(k, StationConfig{Name: "PS", Servers: 2, Speed: 1})
	var at []float64
	for i := 0; i < 2; i++ {
		s.Submit(1.0, func(bool, float64, float64) { at = append(at, k.Now()) })
	}
	k.Run(10)
	for _, a := range at {
		if math.Abs(a-1.0) > 1e-9 {
			t.Fatalf("completion at %g, want 1.0", a)
		}
	}
}

func TestPSSpeedScaling(t *testing.T) {
	k := NewKernel(1)
	s := NewPSStation(k, StationConfig{Name: "PS", Servers: 1, Speed: 0.2})
	var at float64
	s.Submit(1.0, func(bool, float64, float64) { at = k.Now() })
	k.Run(100)
	if math.Abs(at-5.0) > 1e-9 {
		t.Fatalf("completion at %g, want 5.0", at)
	}
}

func TestPSRejection(t *testing.T) {
	k := NewKernel(1)
	s := NewPSStation(k, StationConfig{Name: "PS", Servers: 1, Speed: 1, MaxJobs: 1})
	s.Submit(1.0, func(bool, float64, float64) {})
	rejected := false
	s.Submit(1.0, func(ok bool, _, _ float64) { rejected = !ok })
	if !rejected || s.Rejected() != 1 {
		t.Fatalf("capacity limit not enforced")
	}
	k.Run(10)
	if s.Completed() != 1 {
		t.Fatalf("completed = %d", s.Completed())
	}
}

func TestPSBusyTimeAccounting(t *testing.T) {
	k := NewKernel(1)
	s := NewPSStation(k, StationConfig{Name: "PS", Servers: 1, Speed: 1})
	// Two shared 1s jobs: busy 0..2.
	s.Submit(1.0, func(bool, float64, float64) {})
	s.Submit(1.0, func(bool, float64, float64) {})
	k.Run(4)
	if bt := s.BusyTime(); math.Abs(bt-2.0) > 1e-9 {
		t.Fatalf("busy time = %g, want 2.0", bt)
	}
	s.ResetAccounting()
	if s.BusyTime() != 0 || s.Completed() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestPSManyJobsConservation(t *testing.T) {
	// Work conservation: N equal jobs on one server finish at N×demand,
	// all together.
	k := NewKernel(1)
	s := NewPSStation(k, StationConfig{Name: "PS", Servers: 1, Speed: 1})
	const n = 50
	var finished int
	for i := 0; i < n; i++ {
		s.Submit(0.1, func(bool, float64, float64) { finished++ })
	}
	k.Run(100)
	if finished != n {
		t.Fatalf("finished = %d", finished)
	}
	if math.Abs(k.Now()-100) > 1e-9 && k.Now() < n*0.1-1e-9 {
		t.Fatalf("jobs finished too early")
	}
	if s.Completed() != n {
		t.Fatalf("completed = %d", s.Completed())
	}
}

func TestPSStaggeredArrivals(t *testing.T) {
	// Job A (demand 2) starts at t=0; job B (demand 1) arrives at t=1.
	// A runs alone during [0,1): 1 unit done, 1 left. Then they share:
	// B finishes at t=3 (1 demand at rate 1/2), A also at t=3.
	k := NewKernel(1)
	s := NewPSStation(k, StationConfig{Name: "PS", Servers: 1, Speed: 1})
	var aDone, bDone float64
	s.Submit(2.0, func(bool, float64, float64) { aDone = k.Now() })
	k.Schedule(1.0, func() {
		s.Submit(1.0, func(bool, float64, float64) { bDone = k.Now() })
	})
	k.Run(10)
	if math.Abs(aDone-3.0) > 1e-9 || math.Abs(bDone-3.0) > 1e-9 {
		t.Fatalf("completions at %g/%g, want 3.0/3.0", aDone, bDone)
	}
}

func TestPSPanicsOnBadConfig(t *testing.T) {
	k := NewKernel(1)
	for _, cfg := range []StationConfig{
		{Servers: 0, Speed: 1},
		{Servers: 1, Speed: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewPSStation(k, cfg)
		}()
	}
}
