// Package sim implements the discrete-event simulation substrate on which
// Elba experiments run in place of a physical cluster. It provides an
// event kernel, multi-server queueing stations with frequency-scaled
// service rates, tiers with pluggable load balancing, a C-JDBC-style
// RAIDb-1 replicated database tier, and a closed-loop client driver that
// executes benchmark workload models.
//
// The design follows the paper's measurement setting: a closed queueing
// network where each emulated user alternates between thinking and issuing
// an interaction that traverses web, application, and database tiers. All
// state lives inside the kernel; no goroutines are used, so trials are
// fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
)

// event is a scheduled callback. Events at the same instant fire in
// schedule order (seq breaks ties), keeping runs deterministic.
type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation executive. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now    float64
	seq    int64
	events eventHeap
	rng    *rand.Rand
	fired  int64
}

// NewKernel creates a kernel whose random stream is seeded
// deterministically from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Now reports the current simulated time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Events reports how many events have fired so far, which the benchmarks
// use as a work metric.
func (k *Kernel) Events() int64 { return k.fired }

// Rand exposes the kernel's deterministic random stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Schedule arranges for fn to run delay seconds from now. A negative delay
// is treated as zero (run as soon as the current event completes).
func (k *Kernel) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.seq++
	heap.Push(&k.events, &event{at: k.now + delay, seq: k.seq, fn: fn})
}

// Run executes events until the simulated clock reaches until seconds or
// no events remain. The clock is left at until (or at the last event time
// when the queue empties first).
func (k *Kernel) Run(until float64) {
	for len(k.events) > 0 {
		next := k.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&k.events)
		k.now = next.at
		k.fired++
		next.fn()
	}
	if k.now < until {
		k.now = until
	}
}

// Step executes exactly one pending event and reports whether one existed.
// It is intended for tests that need fine-grained control.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	next := heap.Pop(&k.events).(*event)
	k.now = next.at
	k.fired++
	next.fn()
	return true
}

// Pending reports the number of scheduled events not yet fired.
func (k *Kernel) Pending() int { return len(k.events) }

// Exp draws an exponentially distributed duration with the given mean. A
// non-positive mean yields zero, which callers use for deterministic
// (zero-demand) steps.
func (k *Kernel) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return k.rng.ExpFloat64() * mean
}

// String describes the kernel state for debugging.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{now=%.3fs pending=%d fired=%d}", k.now, len(k.events), k.fired)
}
