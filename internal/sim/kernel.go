// Package sim implements the discrete-event simulation substrate on which
// Elba experiments run in place of a physical cluster. It provides an
// event kernel, multi-server queueing stations with frequency-scaled
// service rates, tiers with pluggable load balancing, a C-JDBC-style
// RAIDb-1 replicated database tier, and a closed-loop client driver that
// executes benchmark workload models.
//
// The design follows the paper's measurement setting: a closed queueing
// network where each emulated user alternates between thinking and issuing
// an interaction that traverses web, application, and database tiers. All
// state lives inside the kernel; no goroutines are used, so trials are
// fully deterministic for a given seed. Because a kernel is single-owner,
// many trials can run concurrently on separate kernels without any
// synchronization — the experiment runner's trial parallelism relies on
// this.
package sim

import (
	"fmt"
	"math/rand/v2"
)

// event is a scheduled occurrence. Events at the same instant fire in
// schedule order (seq breaks ties), keeping runs deterministic. An event
// carries either a closure (fn) or an actor/tag pair; the actor form lets
// hot-path components (stations, drivers) receive their completions
// without allocating a closure per event. Events are stored by value in
// the kernel's heap, so scheduling allocates nothing beyond amortized
// slice growth.
type event struct {
	at  float64
	seq int64
	fn  func()
	act actor
	tag int32
}

// actor is implemented by simulation components that receive scheduled
// events without per-event closures. The tag disambiguates what the event
// means to the receiver (e.g. which service slot completed).
type actor interface {
	act(tag int32)
}

// Kernel is a discrete-event simulation executive. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now   float64
	seq   int64
	heap  []event // 4-ary min-heap ordered by (at, seq)
	rng   *rand.Rand
	fired int64
}

// NewKernel creates a kernel whose random stream is seeded
// deterministically from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Now reports the current simulated time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Events reports how many events have fired so far, which the benchmarks
// use as a work metric.
func (k *Kernel) Events() int64 { return k.fired }

// Rand exposes the kernel's deterministic random stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Schedule arranges for fn to run delay seconds from now. A negative delay
// is treated as zero (run as soon as the current event completes).
func (k *Kernel) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.seq++
	k.push(event{at: k.now + delay, seq: k.seq, fn: fn})
}

// scheduleAct arranges for a.act(tag) to run delay seconds from now. It is
// the allocation-free fast path used by stations and drivers.
func (k *Kernel) scheduleAct(delay float64, a actor, tag int32) {
	if delay < 0 {
		delay = 0
	}
	k.seq++
	k.push(event{at: k.now + delay, seq: k.seq, act: a, tag: tag})
}

// heapArity is the branching factor of the pending-event heap. A 4-ary
// heap halves the tree depth of a binary heap and keeps siblings in one
// cache line, which is measurably faster at the event rates the sweep
// benchmarks produce.
const heapArity = 4

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (k *Kernel) push(e event) {
	k.heap = append(k.heap, e)
	h := k.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (k *Kernel) pop() event {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/actor references
	h = h[:n]
	k.heap = h
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		m := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(h[c], h[m]) {
				m = c
			}
		}
		if !eventLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// dispatch fires one event.
func (k *Kernel) dispatch(e event) {
	k.fired++
	if e.act != nil {
		e.act.act(e.tag)
		return
	}
	e.fn()
}

// Run executes events until the simulated clock reaches until seconds or
// no events remain. The clock is left at until (or at the last event time
// when the queue empties first).
func (k *Kernel) Run(until float64) {
	for len(k.heap) > 0 {
		if k.heap[0].at > until {
			break
		}
		e := k.pop()
		k.now = e.at
		k.dispatch(e)
	}
	if k.now < until {
		k.now = until
	}
}

// Step executes exactly one pending event and reports whether one existed.
// It is intended for tests that need fine-grained control.
func (k *Kernel) Step() bool {
	if len(k.heap) == 0 {
		return false
	}
	e := k.pop()
	k.now = e.at
	k.dispatch(e)
	return true
}

// Pending reports the number of scheduled events not yet fired.
func (k *Kernel) Pending() int { return len(k.heap) }

// Exp draws an exponentially distributed duration with the given mean. A
// non-positive mean yields zero, which callers use for deterministic
// (zero-demand) steps.
func (k *Kernel) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return k.rng.ExpFloat64() * mean
}

// String describes the kernel state for debugging.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{now=%.3fs pending=%d fired=%d}", k.now, len(k.heap), k.fired)
}
