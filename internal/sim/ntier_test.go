package sim

import (
	"testing"
)

func TestServeOutcomeStrings(t *testing.T) {
	if OK.String() != "ok" || Rejected.String() != "rejected" || Failed.String() != "failed" {
		t.Fatalf("outcome names wrong")
	}
	if Outcome(9).String() == "" {
		t.Fatalf("unknown outcome should render")
	}
}

func TestServeRoutesAllTiers(t *testing.T) {
	k := NewKernel(1)
	nt := buildApp(k, 1, 2, 1, 0)
	done := 0
	it := Interaction{Name: "x", WebDemand: 0.001, AppDemand: 0.002, DBDemand: 0.001}
	nt.Serve(it, func(out Outcome) {
		if out != OK {
			t.Errorf("outcome = %v", out)
		}
		done++
	})
	k.Run(1)
	if done != 1 {
		t.Fatalf("done fired %d times", done)
	}
	if nt.Web.Completed() != 1 || nt.App.Completed() != 1 || nt.DB.Completed() != 1 {
		t.Fatalf("tiers not all visited: %d/%d/%d",
			nt.Web.Completed(), nt.App.Completed(), nt.DB.Completed())
	}
	w, a, d := nt.Topology()
	if w != 1 || a != 2 || d != 1 {
		t.Fatalf("topology = %d-%d-%d", w, a, d)
	}
}

func TestServeWriteBroadcasts(t *testing.T) {
	k := NewKernel(1)
	nt := buildApp(k, 1, 1, 3, 0)
	it := Interaction{Name: "w", AppDemand: 0.001, DBDemand: 0.001, Write: true}
	nt.Serve(it, func(Outcome) {})
	k.Run(1)
	if nt.DB.Completed() != 3 {
		t.Fatalf("write visited %d replicas, want 3", nt.DB.Completed())
	}
}

func TestStickySessionsPinUsers(t *testing.T) {
	k := NewKernel(1)
	nt := buildApp(k, 1, 3, 1, 0)
	nt.StickyApp = true
	it := Interaction{Name: "x", AppDemand: 0.001}
	// Session 1 always lands on station 1.
	for i := 0; i < 10; i++ {
		nt.ServeSession(1, it, func(Outcome) {})
		k.Run(k.Now() + 1)
	}
	stations := nt.App.Stations()
	if stations[1].Completed() != 10 {
		t.Fatalf("pinned station served %d, want 10", stations[1].Completed())
	}
	if stations[0].Completed() != 0 || stations[2].Completed() != 0 {
		t.Fatalf("affinity leaked to other stations")
	}
}

func TestStickyFailureIsolatesCohort(t *testing.T) {
	// With sticky sessions, failing one of two app servers harms exactly
	// the users pinned to it; the others are untouched. Without
	// stickiness, round-robin spreads the errors over everyone.
	run := func(sticky bool) (errsEven, errsOdd int) {
		k := NewKernel(3)
		nt := buildApp(k, 1, 2, 1, 0)
		nt.StickyApp = sticky
		nt.App.Stations()[1].Fail()
		it := Interaction{Name: "x", AppDemand: 0.001}
		for user := 0; user < 10; user++ {
			user := user
			for r := 0; r < 4; r++ {
				nt.ServeSession(user, it, func(out Outcome) {
					if out != OK {
						if user%2 == 0 {
							errsEven++
						} else {
							errsOdd++
						}
					}
				})
				k.Run(k.Now() + 0.5)
			}
		}
		return
	}
	even, odd := run(true)
	if even != 0 || odd != 20 {
		t.Fatalf("sticky failure should hit only the pinned cohort: even=%d odd=%d", even, odd)
	}
	evenRR, oddRR := run(false)
	if evenRR == 0 || oddRR == 0 {
		t.Fatalf("round-robin failure should spread: even=%d odd=%d", evenRR, oddRR)
	}
}

func TestSubmitPinnedNegativeKey(t *testing.T) {
	k := NewKernel(1)
	tier := makeTier(k, 3, RoundRobin)
	tier.SubmitPinned(-4, 1.0, func(bool, float64, float64) {})
	// -4 → 4 % 3 = station 1; mostly we care it does not panic.
	if tier.Stations()[1].InFlight() != 1 {
		t.Fatalf("negative pin routed wrong")
	}
}

func TestDriverStickyIntegration(t *testing.T) {
	k := NewKernel(5)
	nt := buildApp(k, 1, 2, 1, 0)
	nt.StickyApp = true
	model := fixedModel{it: Interaction{Name: "ix", AppDemand: 0.005}, think: 0.2}
	d := NewDriver(k, nt, model, DriverConfig{Users: 2, RampUp: 0.1}, 7)
	d.Start()
	d.BeginMeasurement()
	k.Run(20)
	d.EndMeasurement()
	s := nt.App.Stations()
	if s[0].Completed() == 0 || s[1].Completed() == 0 {
		t.Fatalf("two sticky users should cover both stations: %d/%d",
			s[0].Completed(), s[1].Completed())
	}
}
