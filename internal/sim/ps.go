package sim

import "fmt"

// PSStation models a host resource under processor sharing: every active
// job receives an equal share of the station's servers, the discipline
// that better approximates a time-slicing application server than FCFS.
// It exists for the discipline-sensitivity ablation (DESIGN.md §5); the
// calibrated figures use FCFS stations, whose M/M/c behaviour matches the
// paper's queueing-theoretic framing.
//
// The implementation is event-driven: on every arrival or completion the
// remaining work of all active jobs is advanced by the elapsed time times
// the per-job rate, and the next completion event is rescheduled. A
// version counter invalidates stale completion events.
type PSStation struct {
	k       *Kernel
	name    string
	servers int
	speed   float64
	maxJobs int

	active  []*psJob
	version int64

	lastAdvance float64
	busyTime    float64
	completed   int64
	rejected    int64
}

type psJob struct {
	remaining float64
	arrived   float64
	done      Completion
}

// NewPSStation creates a processor-sharing station.
func NewPSStation(k *Kernel, cfg StationConfig) *PSStation {
	if cfg.Servers <= 0 {
		panic(fmt.Sprintf("sim: ps station %q needs at least one server", cfg.Name))
	}
	if cfg.Speed <= 0 {
		panic(fmt.Sprintf("sim: ps station %q needs positive speed", cfg.Name))
	}
	return &PSStation{k: k, name: cfg.Name, servers: cfg.Servers, speed: cfg.Speed, maxJobs: cfg.MaxJobs}
}

// Name reports the station's identifier.
func (s *PSStation) Name() string { return s.name }

// Servers reports the number of parallel servers.
func (s *PSStation) Servers() int { return s.servers }

// InFlight reports currently active jobs.
func (s *PSStation) InFlight() int { return len(s.active) }

// Completed reports jobs served to completion.
func (s *PSStation) Completed() int64 { return s.completed }

// Rejected reports jobs refused by the capacity limit.
func (s *PSStation) Rejected() int64 { return s.rejected }

// rate is the service rate each active job receives, in demand-seconds
// per simulated second.
func (s *PSStation) rate() float64 {
	n := len(s.active)
	if n == 0 {
		return 0
	}
	share := float64(s.servers) / float64(n)
	if share > 1 {
		share = 1
	}
	return share * s.speed
}

// advance applies elapsed service to all active jobs and accumulates
// busy time.
func (s *PSStation) advance() {
	now := s.k.Now()
	dt := now - s.lastAdvance
	s.lastAdvance = now
	if dt <= 0 || len(s.active) == 0 {
		return
	}
	r := s.rate()
	for _, j := range s.active {
		j.remaining -= dt * r
		if j.remaining < 0 {
			j.remaining = 0
		}
	}
	busy := float64(len(s.active))
	if busy > float64(s.servers) {
		busy = float64(s.servers)
	}
	s.busyTime += busy * dt
}

// Submit offers a job with the given reference demand. PS stations serve
// demands deterministically (the sharing itself provides the variance).
func (s *PSStation) Submit(demand float64, done Completion) {
	if s.maxJobs > 0 && len(s.active) >= s.maxJobs {
		s.rejected++
		done(false, 0, 0)
		return
	}
	s.advance()
	s.active = append(s.active, &psJob{remaining: demand, arrived: s.k.Now(), done: done})
	s.reschedule()
}

// reschedule finds the job closest to completion and schedules its
// finish; older scheduled events are invalidated via the version counter.
func (s *PSStation) reschedule() {
	s.version++
	if len(s.active) == 0 {
		return
	}
	v := s.version
	min := s.active[0]
	for _, j := range s.active[1:] {
		if j.remaining < min.remaining {
			min = j
		}
	}
	eta := min.remaining / s.rate()
	s.k.Schedule(eta, func() {
		if s.version != v {
			return // superseded by a later arrival/completion
		}
		s.complete()
	})
}

// complete finishes every job whose remaining work has reached zero.
func (s *PSStation) complete() {
	s.advance()
	var finished []*psJob
	kept := s.active[:0]
	for _, j := range s.active {
		if j.remaining <= 1e-12 {
			finished = append(finished, j)
		} else {
			kept = append(kept, j)
		}
	}
	s.active = kept
	s.reschedule()
	for _, j := range finished {
		s.completed++
		sojourn := s.k.Now() - j.arrived
		j.done(true, 0, sojourn)
	}
}

// BusyTime reports cumulative busy server-seconds.
func (s *PSStation) BusyTime() float64 {
	s.advance()
	return s.busyTime
}

// ResetAccounting clears counters without disturbing active jobs.
func (s *PSStation) ResetAccounting() {
	s.advance()
	s.busyTime = 0
	s.completed = 0
	s.rejected = 0
}
