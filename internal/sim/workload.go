package sim

import "math/rand/v2"

// Interaction is one user-visible request type of a benchmark application,
// such as RUBiS's "PutBid" or RUBBoS's "ViewStory". Demands are CPU
// seconds at the reference frequency (3 GHz).
type Interaction struct {
	// Name is the benchmark's interaction-state name.
	Name string
	// WebDemand, AppDemand, DBDemand are the per-tier CPU demands.
	WebDemand float64
	AppDemand float64
	DBDemand  float64
	// Write marks interactions that issue database writes; writes are
	// broadcast to all RAIDb-1 replicas.
	Write bool
	// RequestBytes and ReplyBytes size the network transfer for the
	// monitor's network-I/O accounting.
	RequestBytes int
	ReplyBytes   int
}

// Session is one emulated user's walk through a benchmark's interaction
// state machine. Implementations are typically Markov chains over the
// benchmark's transition matrix.
type Session interface {
	// Next returns the next interaction the user performs. rng is the
	// deterministic stream the session must use for all randomness.
	Next(rng *rand.Rand) Interaction
}

// Model is a benchmark workload: it names itself, creates user sessions,
// and reports the mean think time separating a user's interactions.
type Model interface {
	// Name identifies the benchmark and variant, e.g. "rubis/jonas".
	Name() string
	// NewSession creates an independent user session.
	NewSession(rng *rand.Rand) Session
	// ThinkTime reports the mean think time in seconds.
	ThinkTime() float64
	// Interactions lists the distinct interaction types, for reports.
	Interactions() []Interaction
}
