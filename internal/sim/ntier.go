package sim

import (
	"fmt"

	"elba/internal/trace"
)

// NTier is an assembled n-tier application deployment: a web tier that
// distributes requests, a replicated application tier, and a RAIDb-1
// database tier. It routes one Interaction through the tiers and reports
// the end-to-end outcome.
//
// The request path matches the benchmarks' architecture: every
// interaction passes the web tier, then the application tier; the
// application issues one database operation (read or write) and finishes
// the reply. The web tier does little work — the paper notes it "performs
// as the workload distributor and does very little work" — but it is
// modelled so its non-bottleneck status is an observed result rather than
// an assumption.
type NTier struct {
	Web *Tier
	App *Tier
	DB  *RAIDb
	// StickyApp enables mod_jk-style session affinity: each user session
	// is pinned to one application server instead of being balanced per
	// request. The affinity ablation compares both modes.
	StickyApp bool

	// Demands carries each tier's optional per-request demands on the
	// node's contended resources, indexed web=0, app=1, db=2. A zero
	// value (the default) routes requests exactly as the CPU-only model
	// always has. The DB entry applies to reads; broadcast writes read
	// RAIDb.Demand, which the builder sets to the same value.
	Demands [3]TierDemand

	// pool recycles per-request routing state so steady-state traffic
	// allocates nothing while traversing the tiers.
	pool []*call
}

// TierDemand is one tier's per-request demand on its node's contended
// resources beyond the benchmark's CPU demand.
type TierDemand struct {
	// CPUScale multiplies the interaction's CPU demand (0 = unchanged).
	CPUScale float64
	// DiskSec is seconds of disk service per request at the reference
	// disk (0 = no disk leg).
	DiskSec float64
	// NetBytes is the payload carried into the tier per request over its
	// ingress link (0 = no network leg).
	NetBytes float64
}

// zero reports whether the demand adds nothing beyond CPU.
func (d TierDemand) zero() bool { return d.CPUScale == 0 && d.DiskSec == 0 && d.NetBytes == 0 }

// Outcome reports how a request ended.
type Outcome int

// Request outcomes. Rejected requests were refused by a connection pool;
// Failed requests had a replica error during a broadcast write.
const (
	OK Outcome = iota
	Rejected
	Failed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Rejected:
		return "rejected"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// outcomeDone receives the end-to-end outcome of a routed request. The
// driver implements it on per-user state so the closed loop runs without
// per-request closures; ServeSession adapts plain functions for callers
// outside the package.
type outcomeDone interface {
	requestDone(Outcome)
}

// outcomeFunc adapts a func(Outcome) to outcomeDone without allocation.
type outcomeFunc func(Outcome)

func (f outcomeFunc) requestDone(o Outcome) { f(o) }

// call is the pooled routing state of one in-flight request. Its stages
// mirror the benchmarks' request path: web tier, then app tier, then one
// database operation.
//
// When the request is traced (tr != nil) the call records one span per
// tier hop: the serving station is noted at dispatch, and the hop's
// queue-wait/service split arrives with the station's completion
// callback. Untraced requests skip every tracing branch, so the disabled
// path stays allocation-free and byte-identical to historical behaviour.
type call struct {
	nt                  *NTier
	done                outcomeDone
	session             int
	stage               int8
	write               bool
	appDemand, dbDemand float64

	// tracing state; valid only while tr != nil.
	tr         *trace.Trace
	hopStation string
	hopStart   float64
}

// dispatch submits the job to st, noting the hop for span attribution
// when the request is traced. tier indexes NTier.Demands; when that tier
// declares no extra resource demands the request takes the exact
// historical CPU-only path.
func (c *call) dispatch(st *Station, demand float64, tier int) {
	if c.tr != nil {
		c.hopStation = st.name
		c.hopStart = st.k.Now()
	}
	d := &c.nt.Demands[tier]
	if d.zero() {
		st.submit(demand, c)
		return
	}
	cpu := demand
	if d.CPUScale > 0 {
		cpu = demand * d.CPUScale
	}
	st.submitRes(cpu, d.DiskSec, d.NetBytes, c)
}

func (c *call) jobFinished(ok bool, wait, service float64) {
	switch c.stage {
	case 0: // web tier finished
		if c.tr != nil {
			c.tr.AddSpan(trace.TierWeb, c.hopStation, c.hopStart, wait, service, ok)
		}
		if !ok {
			c.finish(Rejected)
			return
		}
		c.stage = 1
		if c.nt.StickyApp && c.session >= 0 {
			c.dispatch(c.nt.App.pinned(c.session), c.appDemand, 1)
		} else {
			c.dispatch(c.nt.App.pick(), c.appDemand, 1)
		}
	case 1: // app tier finished
		if c.tr != nil {
			c.tr.AddSpan(trace.TierApp, c.hopStation, c.hopStart, wait, service, ok)
		}
		if !ok {
			c.finish(Rejected)
			return
		}
		c.stage = 2
		if c.write {
			// Broadcast writes fan out one span per replica; the legs
			// record them, so the aggregated completion below must not.
			c.nt.DB.writeJobTraced(c.dbDemand, c, c.tr)
		} else {
			c.dispatch(c.nt.DB.pickRead(), c.dbDemand, 2)
		}
	default: // database finished
		if c.tr != nil && !c.write {
			c.tr.AddSpan(trace.TierDB, c.hopStation, c.hopStart, wait, service, ok)
		}
		if !ok {
			c.finish(Failed)
			return
		}
		c.finish(OK)
	}
}

func (c *call) finish(o Outcome) {
	done := c.done
	c.done = nil
	c.tr = nil
	c.nt.pool = append(c.nt.pool, c)
	done.requestDone(o)
}

// Serve routes one interaction through web → app → db and calls done with
// the outcome, balancing the app tier per request.
func (nt *NTier) Serve(it Interaction, done func(Outcome)) {
	nt.ServeSession(-1, it, done)
}

// ServeSession routes one interaction for the given user session.
// Response time is measured by the caller (the driver) from submit to
// completion; ServeSession itself adds no hidden delays. When StickyApp
// is set and session >= 0, the app tier uses the session's pinned server.
func (nt *NTier) ServeSession(session int, it Interaction, done func(Outcome)) {
	nt.serveSession(session, it, outcomeFunc(done), nil)
}

// ServeTraced is ServeSession with request-level tracing: one span per
// tier hop is recorded into tr as the request traverses the pipeline.
// A nil tr is equivalent to ServeSession.
func (nt *NTier) ServeTraced(session int, it Interaction, done func(Outcome), tr *trace.Trace) {
	nt.serveSession(session, it, outcomeFunc(done), tr)
}

// serveSession is the allocation-free form of ServeSession used by the
// driver's closed loop. tr, when non-nil, receives one span per tier hop.
func (nt *NTier) serveSession(session int, it Interaction, done outcomeDone, tr *trace.Trace) {
	var c *call
	if n := len(nt.pool); n > 0 {
		c = nt.pool[n-1]
		nt.pool = nt.pool[:n-1]
	} else {
		c = &call{nt: nt}
	}
	c.done = done
	c.session = session
	c.stage = 0
	c.write = it.Write
	c.appDemand = it.AppDemand
	c.dbDemand = it.DBDemand
	c.tr = tr
	c.dispatch(nt.Web.pick(), it.WebDemand, 0)
}

// ResetAccounting resets counters on all tiers.
func (nt *NTier) ResetAccounting() {
	nt.Web.ResetAccounting()
	nt.App.ResetAccounting()
	nt.DB.ResetAccounting()
}

// Topology reports the (web, app, db) replica counts, the paper's w-a-d
// triple.
func (nt *NTier) Topology() (web, app, db int) {
	return nt.Web.Size(), nt.App.Size(), nt.DB.Size()
}
