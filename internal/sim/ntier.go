package sim

import "fmt"

// NTier is an assembled n-tier application deployment: a web tier that
// distributes requests, a replicated application tier, and a RAIDb-1
// database tier. It routes one Interaction through the tiers and reports
// the end-to-end outcome.
//
// The request path matches the benchmarks' architecture: every
// interaction passes the web tier, then the application tier; the
// application issues one database operation (read or write) and finishes
// the reply. The web tier does little work — the paper notes it "performs
// as the workload distributor and does very little work" — but it is
// modelled so its non-bottleneck status is an observed result rather than
// an assumption.
type NTier struct {
	Web *Tier
	App *Tier
	DB  *RAIDb
	// StickyApp enables mod_jk-style session affinity: each user session
	// is pinned to one application server instead of being balanced per
	// request. The affinity ablation compares both modes.
	StickyApp bool
}

// Outcome reports how a request ended.
type Outcome int

// Request outcomes. Rejected requests were refused by a connection pool;
// Failed requests had a replica error during a broadcast write.
const (
	OK Outcome = iota
	Rejected
	Failed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Rejected:
		return "rejected"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Serve routes one interaction through web → app → db and calls done with
// the outcome, balancing the app tier per request.
func (nt *NTier) Serve(it Interaction, done func(Outcome)) {
	nt.ServeSession(-1, it, done)
}

// ServeSession routes one interaction for the given user session.
// Response time is measured by the caller (the driver) from submit to
// completion; ServeSession itself adds no hidden delays. When StickyApp
// is set and session >= 0, the app tier uses the session's pinned server.
func (nt *NTier) ServeSession(session int, it Interaction, done func(Outcome)) {
	submitApp := nt.App.Submit
	if nt.StickyApp && session >= 0 {
		submitApp = func(demand float64, d Completion) {
			nt.App.SubmitPinned(session, demand, d)
		}
	}
	nt.Web.Submit(it.WebDemand, func(ok bool, _, _ float64) {
		if !ok {
			done(Rejected)
			return
		}
		submitApp(it.AppDemand, func(ok bool, _, _ float64) {
			if !ok {
				done(Rejected)
				return
			}
			dbDone := func(ok bool, _, _ float64) {
				if !ok {
					done(Failed)
					return
				}
				done(OK)
			}
			if it.Write {
				nt.DB.Write(it.DBDemand, dbDone)
			} else {
				nt.DB.Read(it.DBDemand, dbDone)
			}
		})
	})
}

// ResetAccounting resets counters on all tiers.
func (nt *NTier) ResetAccounting() {
	nt.Web.ResetAccounting()
	nt.App.ResetAccounting()
	nt.DB.ResetAccounting()
}

// Topology reports the (web, app, db) replica counts, the paper's w-a-d
// triple.
func (nt *NTier) Topology() (web, app, db int) {
	return nt.Web.Size(), nt.App.Size(), nt.DB.Size()
}
