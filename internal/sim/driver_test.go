package sim

import (
	"math"
	"math/rand/v2"
	"testing"
)

// fixedModel is a one-interaction workload for driver tests.
type fixedModel struct {
	it    Interaction
	think float64
}

type fixedSession struct{ it Interaction }

func (s fixedSession) Next(*rand.Rand) Interaction { return s.it }

func (m fixedModel) Name() string                  { return "fixed" }
func (m fixedModel) NewSession(*rand.Rand) Session { return fixedSession{m.it} }
func (m fixedModel) ThinkTime() float64            { return m.think }
func (m fixedModel) Interactions() []Interaction   { return []Interaction{m.it} }

func buildApp(k *Kernel, web, app, db int, appMax int) *NTier {
	mk := func(name string, n, maxJobs int) []*Station {
		out := make([]*Station, n)
		for i := range out {
			out[i] = NewStation(k, StationConfig{Name: name, Servers: 1, Speed: 1, MaxJobs: maxJobs})
		}
		return out
	}
	return &NTier{
		Web: NewTier(k, "web", RoundRobin, mk("WEB", web, 0)),
		App: NewTier(k, "app", RoundRobin, mk("APP", app, appMax)),
		DB:  NewRAIDb(k, RoundRobin, mk("DB", db, 0)),
	}
}

func TestDriverClosedLoopThroughput(t *testing.T) {
	// Closed-loop law: X = N / (Z + R). With light load, R ≈ sum of
	// demands, so throughput should be close to N/(Z+D).
	k := NewKernel(3)
	app := buildApp(k, 1, 4, 1, 0)
	model := fixedModel{
		it:    Interaction{Name: "ix", WebDemand: 0.001, AppDemand: 0.010, DBDemand: 0.002},
		think: 1.0,
	}
	d := NewDriver(k, app, model, DriverConfig{Users: 20, RampUp: 1}, 99)
	d.Start()
	k.Run(30)
	d.BeginMeasurement()
	start := k.Now()
	k.Run(start + 120)
	d.EndMeasurement()
	dur := k.Now() - start
	x := float64(d.ResponseTimes().Count()) / dur
	want := 20.0 / (1.0 + 0.013)
	if math.Abs(x-want)/want > 0.1 {
		t.Fatalf("throughput = %.2f req/s, want ≈%.2f", x, want)
	}
}

func TestDriverResponseTimeGrowsWithLoad(t *testing.T) {
	rt := func(users int) float64 {
		k := NewKernel(5)
		app := buildApp(k, 1, 1, 1, 0)
		model := fixedModel{
			it:    Interaction{Name: "ix", WebDemand: 0.001, AppDemand: 0.030, DBDemand: 0.004},
			think: 1.0,
		}
		d := NewDriver(k, app, model, DriverConfig{Users: users, RampUp: 1}, 7)
		d.Start()
		k.Run(20)
		d.BeginMeasurement()
		k.Run(k.Now() + 60)
		d.EndMeasurement()
		return d.ResponseTimes().Mean()
	}
	light, heavy := rt(5), rt(60)
	if heavy <= light*2 {
		t.Fatalf("saturated response time %.4f not ≫ light-load %.4f", heavy, light)
	}
}

func TestDriverRejectionCountsAsError(t *testing.T) {
	k := NewKernel(5)
	app := buildApp(k, 1, 1, 1, 2) // tiny app connection pool
	model := fixedModel{
		it:    Interaction{Name: "ix", AppDemand: 0.5},
		think: 0.05,
	}
	d := NewDriver(k, app, model, DriverConfig{Users: 30, RampUp: 0.1}, 7)
	d.Start()
	k.Run(5)
	d.BeginMeasurement()
	k.Run(k.Now() + 30)
	d.EndMeasurement()
	if d.Errors() == 0 {
		t.Fatalf("overloaded pool produced no errors")
	}
	rejected := app.App.Rejected()
	if rejected == 0 {
		t.Fatalf("app tier recorded no rejections")
	}
}

func TestDriverTimeoutAccounting(t *testing.T) {
	k := NewKernel(5)
	app := buildApp(k, 1, 1, 1, 0)
	model := fixedModel{
		it:    Interaction{Name: "slow", AppDemand: 2.0},
		think: 0.01,
	}
	d := NewDriver(k, app, model, DriverConfig{Users: 10, Timeout: 1.0, RampUp: 0.1}, 7)
	d.Start()
	d.BeginMeasurement()
	k.Run(60)
	d.EndMeasurement()
	if d.Timeouts() == 0 {
		t.Fatalf("expected client timeouts under 2s service / 1s timeout")
	}
	// Timed-out requests must not pollute the success sample.
	if d.ResponseTimes().Count() > 0 && d.ResponseTimes().Max() > 1.0 {
		t.Fatalf("success sample contains RT above the timeout: %g", d.ResponseTimes().Max())
	}
}

func TestDriverMeasurementWindow(t *testing.T) {
	k := NewKernel(5)
	app := buildApp(k, 1, 1, 1, 0)
	model := fixedModel{it: Interaction{Name: "ix", AppDemand: 0.01}, think: 0.1}
	d := NewDriver(k, app, model, DriverConfig{Users: 5, RampUp: 0.1}, 7)
	d.Start()
	k.Run(10) // warm-up: nothing recorded
	if len(d.Records()) != 0 {
		t.Fatalf("records captured before measurement began")
	}
	d.BeginMeasurement()
	k.Run(20)
	d.EndMeasurement()
	n := len(d.Records())
	if n == 0 {
		t.Fatalf("no records captured during measurement")
	}
	k.Run(30) // cool-down: nothing more recorded
	if len(d.Records()) != n {
		t.Fatalf("records captured after measurement ended")
	}
	for _, r := range d.Records() {
		if r.Issued < 10 {
			t.Fatalf("record issued during warm-up leaked into measurement: %+v", r)
		}
	}
}

func TestDriverPerInteractionStats(t *testing.T) {
	k := NewKernel(5)
	app := buildApp(k, 1, 1, 1, 0)
	model := fixedModel{it: Interaction{Name: "only", AppDemand: 0.01}, think: 0.1}
	d := NewDriver(k, app, model, DriverConfig{Users: 3, RampUp: 0.1}, 7)
	d.Start()
	d.BeginMeasurement()
	k.Run(20)
	d.EndMeasurement()
	per := d.PerInteraction()
	s, ok := per["only"]
	if !ok || s.Count() == 0 {
		t.Fatalf("per-interaction stats missing: %v", per)
	}
}

func TestDriverDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, float64) {
		k := NewKernel(5)
		app := buildApp(k, 1, 2, 1, 0)
		model := fixedModel{it: Interaction{Name: "ix", AppDemand: 0.02}, think: 0.5}
		d := NewDriver(k, app, model, DriverConfig{Users: 10, RampUp: 1}, 123)
		d.Start()
		d.BeginMeasurement()
		k.Run(50)
		d.EndMeasurement()
		return d.Issued(), d.ResponseTimes().Mean()
	}
	i1, m1 := run()
	i2, m2 := run()
	if i1 != i2 || m1 != m2 {
		t.Fatalf("same seeds diverged: (%d,%g) vs (%d,%g)", i1, m1, i2, m2)
	}
}

func TestDriverMaxSessionsCausesRefusals(t *testing.T) {
	k := NewKernel(5)
	app := buildApp(k, 1, 1, 1, 0)
	model := fixedModel{it: Interaction{Name: "ix", AppDemand: 0.005}, think: 0.5}
	d := NewDriver(k, app, model, DriverConfig{Users: 100, MaxSessions: 80, RampUp: 0.5}, 7)
	d.Start()
	k.Run(10)
	d.BeginMeasurement()
	k.Run(k.Now() + 60)
	d.EndMeasurement()
	total := int64(len(d.Records()))
	if total == 0 {
		t.Fatalf("no records")
	}
	rate := float64(d.Errors()) / float64(total)
	// 20 of 100 users are refused: error rate ≈ 20%.
	if math.Abs(rate-0.2) > 0.04 {
		t.Fatalf("refusal rate = %.3f, want ≈0.20", rate)
	}
	// Refused requests never reach the servers.
	for _, r := range d.Records() {
		if r.Outcome == Rejected && r.RT != 0 {
			t.Fatalf("refused request has nonzero RT: %+v", r)
		}
	}
}

func TestDriverMaxSessionsUnlimitedByDefault(t *testing.T) {
	k := NewKernel(5)
	app := buildApp(k, 1, 1, 1, 0)
	model := fixedModel{it: Interaction{Name: "ix", AppDemand: 0.005}, think: 0.5}
	d := NewDriver(k, app, model, DriverConfig{Users: 50, RampUp: 0.5}, 7)
	d.Start()
	d.BeginMeasurement()
	k.Run(30)
	d.EndMeasurement()
	if d.Errors() != 0 {
		t.Fatalf("unexpected errors with no session cap: %d", d.Errors())
	}
}

// TestLittlesLaw is the closed-network sanity property: N = X·(R + Z)
// within tolerance, for several populations.
func TestLittlesLaw(t *testing.T) {
	for _, users := range []int{10, 50, 150} {
		k := NewKernel(uint64(users))
		app := buildApp(k, 1, 2, 1, 0)
		model := fixedModel{
			it:    Interaction{Name: "ix", WebDemand: 0.001, AppDemand: 0.02, DBDemand: 0.003},
			think: 2.0,
		}
		d := NewDriver(k, app, model, DriverConfig{Users: users, RampUp: 1}, 77)
		d.Start()
		k.Run(30)
		d.BeginMeasurement()
		start := k.Now()
		k.Run(start + 120)
		d.EndMeasurement()
		dur := k.Now() - start
		x := float64(d.ResponseTimes().Count()) / dur
		r := d.ResponseTimes().Mean()
		n := x * (r + 2.0)
		if math.Abs(n-float64(users))/float64(users) > 0.08 {
			t.Errorf("users=%d: Little's law violated: X(R+Z) = %.1f", users, n)
		}
	}
}

// TestDriverDynamicPopulation grows and shrinks the population mid-run
// and checks throughput follows the closed-loop law at each level.
func TestDriverDynamicPopulation(t *testing.T) {
	k := NewKernel(5)
	app := buildApp(k, 1, 4, 1, 0)
	model := fixedModel{
		it:    Interaction{Name: "ix", WebDemand: 0.001, AppDemand: 0.005, DBDemand: 0.001},
		think: 1.0,
	}
	d := NewDriver(k, app, model, DriverConfig{Users: 20, RampUp: 1}, 9)
	d.Start()
	if d.ActiveUsers() != 20 {
		t.Fatalf("active = %d", d.ActiveUsers())
	}
	k.Run(20)

	measure := func(dur float64) float64 {
		d.BeginMeasurement()
		start := k.Now()
		k.Run(start + dur)
		d.EndMeasurement()
		return float64(d.ResponseTimes().Count()) / dur
	}
	x20 := measure(80)

	d.AddUsers(40, 2)
	if d.ActiveUsers() != 60 {
		t.Fatalf("active after add = %d", d.ActiveUsers())
	}
	k.Run(k.Now() + 10) // settle
	x60 := measure(80)
	if ratio := x60 / x20; math.Abs(ratio-3) > 0.35 {
		t.Fatalf("throughput should triple with 3x users: %.2f vs %.2f (ratio %.2f)", x20, x60, ratio)
	}

	d.RemoveUsers(40)
	if d.ActiveUsers() != 20 {
		t.Fatalf("active after remove = %d", d.ActiveUsers())
	}
	k.Run(k.Now() + 10)
	xBack := measure(80)
	if math.Abs(xBack-x20)/x20 > 0.15 {
		t.Fatalf("throughput should return to base: %.2f vs %.2f", xBack, x20)
	}
}

func TestDriverRemoveMoreThanActive(t *testing.T) {
	k := NewKernel(5)
	app := buildApp(k, 1, 1, 1, 0)
	model := fixedModel{it: Interaction{Name: "ix", AppDemand: 0.01}, think: 0.5}
	d := NewDriver(k, app, model, DriverConfig{Users: 3, RampUp: 0.1}, 9)
	d.Start()
	d.RemoveUsers(10)
	if d.ActiveUsers() != 0 {
		t.Fatalf("active = %d, want 0", d.ActiveUsers())
	}
	k.Run(20)
	// All sessions retired: no measurement activity after settle.
	d.BeginMeasurement()
	k.Run(k.Now() + 10)
	d.EndMeasurement()
	if len(d.Records()) != 0 {
		t.Fatalf("retired users still issuing requests")
	}
}
