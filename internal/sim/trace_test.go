package sim

import (
	"math"
	"math/rand/v2"
	"testing"

	"elba/internal/trace"
)

// mixModel alternates a read and a broadcast-write interaction so traced
// runs exercise both the sequential path and the replica fan-out.
type mixModel struct{ think float64 }

type mixSession struct{ n int }

func (s *mixSession) Next(*rand.Rand) Interaction {
	s.n++
	if s.n%2 == 0 {
		return Interaction{Name: "write", WebDemand: 0.001, AppDemand: 0.004, DBDemand: 0.006, Write: true}
	}
	return Interaction{Name: "read", WebDemand: 0.001, AppDemand: 0.003, DBDemand: 0.004}
}

func (m mixModel) Name() string                  { return "mix" }
func (m mixModel) NewSession(*rand.Rand) Session { return &mixSession{} }
func (m mixModel) ThinkTime() float64            { return m.think }
func (m mixModel) Interactions() []Interaction {
	return []Interaction{
		{Name: "read", WebDemand: 0.001, AppDemand: 0.003, DBDemand: 0.004},
		{Name: "write", WebDemand: 0.001, AppDemand: 0.004, DBDemand: 0.006, Write: true},
	}
}

// runTraced runs a fully-sampled traced trial and returns its collector.
func runTraced(t *testing.T, seed uint64, webN, appN, dbN int) *trace.Collector {
	t.Helper()
	k := NewKernel(seed)
	nt := buildApp(k, webN, appN, dbN, 0)
	d := NewDriver(k, nt, mixModel{think: 0.05}, DriverConfig{Users: 8, RampUp: 0.2}, seed)
	tc := trace.NewCollector(trace.SeedFor(seed), 1)
	d.SetTracer(tc)
	d.Start()
	k.Run(2)
	d.BeginMeasurement()
	k.Run(10)
	d.EndMeasurement()
	k.Run(11)
	if tc.Len() == 0 {
		t.Fatalf("no traces committed")
	}
	return tc
}

func TestTracedSpansSumToRT(t *testing.T) {
	tc := runTraced(t, 11, 1, 2, 3)
	reads, writes := 0, 0
	for _, tr := range tc.Traces() {
		web, app, db := tr.TierContributions()
		sum := web.Total() + app.Total() + db.Total()
		if math.Abs(sum-tr.RT) > 1e-9 {
			t.Fatalf("%s trace: spans sum to %.9f, RT %.9f", tr.Interaction, sum, tr.RT)
		}
		if tr.Write {
			writes++
			// Broadcast write: one web span, one app span, one db span per
			// replica.
			if len(tr.Spans) != 2+3 {
				t.Fatalf("write trace has %d spans, want 5", len(tr.Spans))
			}
		} else {
			reads++
			if len(tr.Spans) != 3 {
				t.Fatalf("read trace has %d spans, want 3", len(tr.Spans))
			}
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("want both classes traced: reads=%d writes=%d", reads, writes)
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := runTraced(t, 23, 1, 2, 2)
	b := runTraced(t, 23, 1, 2, 2)
	if a.Len() != b.Len() {
		t.Fatalf("trace counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Traces() {
		ta, tb := a.Traces()[i], b.Traces()[i]
		if ta.Interaction != tb.Interaction || ta.Session != tb.Session ||
			ta.Issued != tb.Issued || ta.RT != tb.RT || ta.Outcome != tb.Outcome {
			t.Fatalf("trace %d differs: %+v vs %+v", i, ta, tb)
		}
		if len(ta.Spans) != len(tb.Spans) {
			t.Fatalf("trace %d span counts differ", i)
		}
		for j := range ta.Spans {
			if ta.Spans[j] != tb.Spans[j] {
				t.Fatalf("trace %d span %d differs: %+v vs %+v", i, j, ta.Spans[j], tb.Spans[j])
			}
		}
	}
}

func TestTracingNeverPerturbsRequests(t *testing.T) {
	// A traced run must issue and complete the identical request sequence
	// as an untraced run: sampling draws from its own hashed stream, never
	// from the driver's or kernel's.
	run := func(traced bool) []RequestRecord {
		k := NewKernel(31)
		nt := buildApp(k, 1, 2, 2, 0)
		d := NewDriver(k, nt, mixModel{think: 0.05}, DriverConfig{Users: 6, RampUp: 0.2}, 31)
		if traced {
			d.SetTracer(trace.NewCollector(trace.SeedFor(31), 0.5))
		}
		d.Start()
		k.Run(1)
		d.BeginMeasurement()
		k.Run(6)
		d.EndMeasurement()
		return d.Records()
	}
	plain, traced := run(false), run(true)
	if len(plain) != len(traced) {
		t.Fatalf("record counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, plain[i], traced[i])
		}
	}
}

func TestTracingDisabledAddsNoAllocations(t *testing.T) {
	k := NewKernel(7)
	nt := buildApp(k, 1, 2, 2, 0)
	d := NewDriver(k, nt, mixModel{think: 0.02}, DriverConfig{Users: 8, RampUp: 0.2}, 7)
	d.Start()
	// Warm up so call/writeCall pools and the event heap reach steady state.
	k.Run(5)
	allocs := testing.AllocsPerRun(50, func() {
		k.Run(k.Now() + 0.5)
	})
	if allocs != 0 {
		t.Fatalf("steady-state loop allocates %.1f objects/run with tracing disabled, want 0", allocs)
	}
}

func TestRecordsSurviveNextWindow(t *testing.T) {
	// Regression: BeginMeasurement used to truncate the record log in
	// place (records[:0]), so a slice returned by Records before the next
	// window was silently overwritten by the new window's appends.
	k := NewKernel(9)
	nt := buildApp(k, 1, 1, 1, 0)
	d := NewDriver(k, nt, mixModel{think: 0.05}, DriverConfig{Users: 4, RampUp: 0.1}, 9)
	d.Start()
	k.Run(1)

	d.BeginMeasurement()
	k.Run(4)
	d.EndMeasurement()
	first := d.Records()
	if len(first) == 0 {
		t.Fatalf("first window recorded nothing")
	}
	snapshot := make([]RequestRecord, len(first))
	copy(snapshot, first)

	d.BeginMeasurement()
	k.Run(8)
	d.EndMeasurement()
	second := d.Records()
	if len(second) == 0 {
		t.Fatalf("second window recorded nothing")
	}

	if len(first) != len(snapshot) {
		t.Fatalf("first window slice changed length: %d vs %d", len(first), len(snapshot))
	}
	for i := range first {
		if first[i] != snapshot[i] {
			t.Fatalf("first window record %d overwritten by second window: %+v vs %+v",
				i, first[i], snapshot[i])
		}
	}
	// The windows are disjoint in time: everything in the second window was
	// issued after the first window ended.
	lastFirst := first[len(first)-1].Issued
	if second[0].Issued <= lastFirst {
		t.Fatalf("second window leaked into the first: %f <= %f", second[0].Issued, lastFirst)
	}
}
