package sim

import (
	"math"
	"testing"
)

// TestStationDegradationScalesService checks the fault hook the kernel
// consumes during slowdown/stall windows: service time divides by the
// degradation factor, and restoring to 1 returns to rated speed.
func TestStationDegradationScalesService(t *testing.T) {
	serve := func(setup func(*Station)) float64 {
		k := NewKernel(1)
		s := detStation(k, 1, 1.0, 0)
		if setup != nil {
			setup(s)
		}
		var svc float64
		s.Submit(1.0, func(_ bool, _, service float64) { svc = service })
		k.Run(100)
		return svc
	}
	if svc := serve(nil); math.Abs(svc-1.0) > 1e-12 {
		t.Fatalf("baseline service = %g, want 1.0", svc)
	}
	if svc := serve(func(s *Station) { s.SetDegradation(0.5) }); math.Abs(svc-2.0) > 1e-12 {
		t.Fatalf("degraded service = %g, want 2.0", svc)
	}
	if svc := serve(func(s *Station) {
		s.SetDegradation(0.5)
		s.SetDegradation(1)
	}); math.Abs(svc-1.0) > 1e-12 {
		t.Fatalf("restored service = %g, want 1.0", svc)
	}
}

// TestStationDegradationClamped pins the guard rails: factors at or below
// zero clamp to a tiny positive speed (a stall, not a divide-by-zero), and
// factors above one never speed a station up.
func TestStationDegradationClamped(t *testing.T) {
	k := NewKernel(1)
	s := detStation(k, 1, 1.0, 0)
	var svc float64
	s.SetDegradation(0)
	s.Submit(0.001, func(_ bool, _, service float64) { svc = service })
	k.Run(10)
	if math.IsInf(svc, 0) || math.IsNaN(svc) || svc <= 0 {
		t.Fatalf("zero degradation produced service %g", svc)
	}
	k2 := NewKernel(1)
	s2 := detStation(k2, 1, 1.0, 0)
	s2.SetDegradation(5)
	s2.Submit(1.0, func(_ bool, _, service float64) { svc = service })
	k2.Run(10)
	if svc < 1.0 {
		t.Fatalf("degradation above 1 sped the station up: service %g", svc)
	}
}

// TestDriverErrorRateInjection checks the error-burst hook: with a rate
// armed, the driver fails a matching share of issued requests before they
// reach the tiers, counts them as both errors and injected errors, and
// stops once the rate returns to zero.
func TestDriverErrorRateInjection(t *testing.T) {
	k := NewKernel(11)
	app := buildApp(k, 1, 2, 1, 0)
	model := fixedModel{
		it:    Interaction{Name: "ix", WebDemand: 0.001, AppDemand: 0.005, DBDemand: 0.002},
		think: 0.5,
	}
	d := NewDriver(k, app, model, DriverConfig{Users: 20, RampUp: 1}, 3)
	d.Start()
	k.Run(10)

	d.SetErrorRate(0.4)
	d.BeginMeasurement()
	k.Run(k.Now() + 60)
	d.EndMeasurement()
	injected := d.InjectedErrors()
	if injected == 0 {
		t.Fatal("error rate 0.4 injected nothing")
	}
	if errs := d.Errors(); errs < injected {
		t.Fatalf("injected errors (%d) not counted in errors (%d)", injected, errs)
	}
	total := injected + int64(d.ResponseTimes().Count())
	frac := float64(injected) / float64(total)
	if frac < 0.25 || frac > 0.55 {
		t.Fatalf("injected fraction = %.2f, want ≈0.4", frac)
	}

	// Clearing the rate stops injection; the next window is clean.
	d.SetErrorRate(0)
	d.BeginMeasurement()
	k.Run(k.Now() + 30)
	d.EndMeasurement()
	if d.InjectedErrors() != 0 || d.Errors() != 0 {
		t.Fatalf("errors after clearing the rate: injected=%d errors=%d",
			d.InjectedErrors(), d.Errors())
	}
}

// TestDriverErrorRateClamped checks SetErrorRate's input guard: out-of-
// range rates clamp to [0,1] rather than corrupting the draw.
func TestDriverErrorRateClamped(t *testing.T) {
	k := NewKernel(2)
	app := buildApp(k, 1, 1, 1, 0)
	model := fixedModel{
		it:    Interaction{Name: "ix", WebDemand: 0.001, AppDemand: 0.005, DBDemand: 0.002},
		think: 0.5,
	}
	d := NewDriver(k, app, model, DriverConfig{Users: 5, RampUp: 1}, 9)
	d.SetErrorRate(7) // clamps to 1: every request fails
	d.Start()
	d.BeginMeasurement()
	k.Run(20)
	d.EndMeasurement()
	if d.ResponseTimes().Count() != 0 {
		t.Fatalf("rate clamped to 1 still completed %d requests", d.ResponseTimes().Count())
	}
	if d.InjectedErrors() == 0 {
		t.Fatal("rate clamped to 1 injected nothing")
	}
	d.SetErrorRate(-3) // clamps to 0
	d.BeginMeasurement()
	k.Run(k.Now() + 20)
	d.EndMeasurement()
	if d.InjectedErrors() != 0 {
		t.Fatalf("negative rate injected %d errors", d.InjectedErrors())
	}
}
