package sim

import (
	"math"
	"testing"
)

func detStation(k *Kernel, servers int, speed float64, maxJobs int) *Station {
	return NewStation(k, StationConfig{
		Name: "S", Servers: servers, Speed: speed, MaxJobs: maxJobs, Deterministic: true,
	})
}

func TestStationSingleJob(t *testing.T) {
	k := NewKernel(1)
	s := detStation(k, 1, 1.0, 0)
	var done bool
	var svc float64
	s.Submit(0.5, func(ok bool, wait, service float64) {
		done, svc = ok, service
	})
	k.Run(1)
	if !done || svc != 0.5 {
		t.Fatalf("job not served correctly: done=%v svc=%g", done, svc)
	}
	if k.Now() < 0.5 {
		t.Fatalf("clock did not advance through service")
	}
	if s.Completed() != 1 {
		t.Fatalf("completed = %d", s.Completed())
	}
}

func TestStationSpeedScaling(t *testing.T) {
	k := NewKernel(1)
	s := detStation(k, 1, 0.2, 0) // 600 MHz vs 3 GHz reference
	var svc float64
	s.Submit(1.0, func(_ bool, _, service float64) { svc = service })
	k.Run(10)
	if math.Abs(svc-5.0) > 1e-12 {
		t.Fatalf("service = %g, want 5.0 (demand/speed)", svc)
	}
}

func TestStationFCFSQueueing(t *testing.T) {
	k := NewKernel(1)
	s := detStation(k, 1, 1.0, 0)
	var finishOrder []int
	var waits []float64
	for i := 0; i < 3; i++ {
		i := i
		s.Submit(1.0, func(_ bool, wait, _ float64) {
			finishOrder = append(finishOrder, i)
			waits = append(waits, wait)
		})
	}
	k.Run(10)
	for i, v := range finishOrder {
		if v != i {
			t.Fatalf("not FCFS: %v", finishOrder)
		}
	}
	// deterministic 1s jobs: waits are 0, 1, 2
	for i, w := range waits {
		if math.Abs(w-float64(i)) > 1e-9 {
			t.Fatalf("wait[%d] = %g, want %d", i, w, i)
		}
	}
	if s.QueuedPeak() != 2 {
		t.Fatalf("queued peak = %d, want 2", s.QueuedPeak())
	}
}

func TestStationMultiServerParallelism(t *testing.T) {
	k := NewKernel(1)
	s := detStation(k, 2, 1.0, 0)
	var finished []float64
	for i := 0; i < 4; i++ {
		s.Submit(1.0, func(_ bool, _, _ float64) { finished = append(finished, k.Now()) })
	}
	k.Run(10)
	// 2 servers, 4 deterministic 1s jobs: finish at 1,1,2,2
	want := []float64{1, 1, 2, 2}
	for i := range want {
		if math.Abs(finished[i]-want[i]) > 1e-9 {
			t.Fatalf("finish times = %v, want %v", finished, want)
		}
	}
}

func TestStationRejection(t *testing.T) {
	k := NewKernel(1)
	s := detStation(k, 1, 1.0, 2)
	results := make([]bool, 0, 3)
	for i := 0; i < 3; i++ {
		s.Submit(1.0, func(ok bool, _, _ float64) { results = append(results, ok) })
	}
	// Third job must be rejected synchronously.
	if len(results) != 1 || results[0] != false {
		t.Fatalf("expected immediate rejection of third job, got %v", results)
	}
	k.Run(10)
	if s.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected())
	}
	okCount := 0
	for _, r := range results {
		if r {
			okCount++
		}
	}
	if okCount != 2 {
		t.Fatalf("ok completions = %d, want 2", okCount)
	}
}

func TestStationUtilizationAccounting(t *testing.T) {
	k := NewKernel(1)
	s := detStation(k, 1, 1.0, 0)
	s.Submit(2.0, func(bool, float64, float64) {})
	k.Run(4) // busy 0..2, idle 2..4
	if u := s.Utilization(0); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %g, want 0.5", u)
	}
	if bt := s.BusyTime(); math.Abs(bt-2.0) > 1e-9 {
		t.Fatalf("busy time = %g, want 2.0", bt)
	}
}

func TestStationResetAccounting(t *testing.T) {
	k := NewKernel(1)
	s := detStation(k, 1, 1.0, 0)
	s.Submit(1.0, func(bool, float64, float64) {})
	k.Run(2)
	s.ResetAccounting()
	if s.Completed() != 0 || s.BusyTime() != 0 {
		t.Fatalf("reset did not clear accounting")
	}
	// In-flight work must survive a reset.
	s.Submit(1.0, func(bool, float64, float64) {})
	k.Run(4)
	if s.Completed() != 1 {
		t.Fatalf("post-reset job lost")
	}
}

func TestStationPanicsOnBadConfig(t *testing.T) {
	k := NewKernel(1)
	for _, cfg := range []StationConfig{
		{Name: "bad", Servers: 0, Speed: 1},
		{Name: "bad", Servers: 1, Speed: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewStation(k, cfg)
		}()
	}
}

func TestStationStochasticServiceMean(t *testing.T) {
	k := NewKernel(99)
	s := NewStation(k, StationConfig{Name: "S", Servers: 1, Speed: 1})
	const n = 5000
	var total float64
	remaining := n
	var submit func()
	submit = func() {
		s.Submit(0.03, func(_ bool, _, service float64) {
			total += service
			remaining--
			if remaining > 0 {
				submit()
			}
		})
	}
	submit()
	k.Run(1e9)
	mean := total / n
	if math.Abs(mean-0.03) > 0.002 {
		t.Fatalf("stochastic service mean = %g, want ≈0.03", mean)
	}
}

func TestStationFailRecover(t *testing.T) {
	k := NewKernel(1)
	s := detStation(k, 1, 1.0, 0)
	// A job in service survives the failure.
	var survived bool
	s.Submit(1.0, func(ok bool, _, _ float64) { survived = ok })
	s.Fail()
	if !s.Failed() {
		t.Fatalf("Failed() should report true")
	}
	rejected := false
	s.Submit(1.0, func(ok bool, _, _ float64) { rejected = !ok })
	if !rejected {
		t.Fatalf("failed station accepted a job")
	}
	k.Run(5)
	if !survived {
		t.Fatalf("in-service job should complete through the failure")
	}
	s.Recover()
	var after bool
	s.Submit(1.0, func(ok bool, _, _ float64) { after = ok })
	k.Run(10)
	if !after {
		t.Fatalf("recovered station should serve again")
	}
	if s.Rejected() != 1 {
		t.Fatalf("rejected = %d", s.Rejected())
	}
}
