package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Schedule(2.0, func() { order = append(order, 2) })
	k.Schedule(1.0, func() { order = append(order, 1) })
	k.Schedule(3.0, func() { order = append(order, 3) })
	k.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if k.Now() != 10 {
		t.Fatalf("clock should advance to until: %g", k.Now())
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Schedule(1.0, func() { order = append(order, i) })
	}
	k.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestKernelRunStopsAtUntil(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.Schedule(5.0, func() { fired = true })
	k.Run(4.9)
	if fired {
		t.Fatalf("event beyond until fired")
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run(5.0)
	if !fired {
		t.Fatalf("event at until should fire")
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 100 {
			k.Schedule(0.01, chain)
		}
	}
	k.Schedule(0, chain)
	k.Run(100)
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if got := k.Events(); got != 100 {
		t.Fatalf("fired = %d, want 100", got)
	}
}

func TestKernelNegativeDelayClamped(t *testing.T) {
	k := NewKernel(1)
	k.Run(5) // advance clock
	ran := false
	k.Schedule(-3, func() { ran = true })
	k.Step()
	if !ran {
		t.Fatalf("negative-delay event should run immediately")
	}
	if k.Now() != 5 {
		t.Fatalf("negative delay moved clock backwards: %g", k.Now())
	}
}

func TestKernelStep(t *testing.T) {
	k := NewKernel(1)
	if k.Step() {
		t.Fatalf("Step on empty kernel should report false")
	}
	k.Schedule(1, func() {})
	if !k.Step() {
		t.Fatalf("Step should fire the pending event")
	}
}

func TestKernelExp(t *testing.T) {
	k := NewKernel(42)
	if k.Exp(0) != 0 || k.Exp(-1) != 0 {
		t.Fatalf("non-positive mean must yield 0")
	}
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += k.Exp(2.0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.0) > 0.1 {
		t.Fatalf("Exp mean = %g, want ≈2.0", mean)
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func() []float64 {
		k := NewKernel(7)
		var out []float64
		var loop func()
		loop = func() {
			out = append(out, k.Now())
			if len(out) < 50 {
				k.Schedule(k.Exp(1.0), loop)
			}
		}
		k.Schedule(0, loop)
		k.Run(1e9)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different schedules at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// Property: the clock never moves backwards no matter how events are
// scheduled.
func TestKernelMonotoneClockProperty(t *testing.T) {
	f := func(delays []float64) bool {
		k := NewKernel(3)
		last := 0.0
		monotone := true
		for _, d := range delays {
			d := math.Mod(math.Abs(d), 100)
			k.Schedule(d, func() {
				if k.Now() < last {
					monotone = false
				}
				last = k.Now()
			})
		}
		k.Run(1000)
		return monotone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
