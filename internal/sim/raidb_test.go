package sim

import (
	"math"
	"strings"
	"testing"
)

func makeRAIDb(k *Kernel, n int) *RAIDb {
	reps := make([]*Station, n)
	for i := range reps {
		reps[i] = NewStation(k, StationConfig{
			Name: "DB", Servers: 1, Speed: 1, Deterministic: true,
		})
	}
	return NewRAIDb(k, RoundRobin, reps)
}

func TestRAIDbReadGoesToOneReplica(t *testing.T) {
	k := NewKernel(1)
	db := makeRAIDb(k, 3)
	db.Read(1.0, func(bool, float64, float64) {})
	k.Run(10)
	if db.Completed() != 1 {
		t.Fatalf("read executed on %d replicas, want 1", db.Completed())
	}
}

func TestRAIDbWriteBroadcasts(t *testing.T) {
	k := NewKernel(1)
	db := makeRAIDb(k, 3)
	var completions int
	db.Write(1.0, func(ok bool, _, _ float64) {
		completions++
		if !ok {
			t.Errorf("write should succeed")
		}
	})
	k.Run(10)
	if completions != 1 {
		t.Fatalf("done fired %d times, want exactly once", completions)
	}
	if db.Completed() != 3 {
		t.Fatalf("write executed on %d replicas, want 3", db.Completed())
	}
}

func TestRAIDbWriteWaitsForSlowest(t *testing.T) {
	k := NewKernel(1)
	// Two replicas at different speeds: write completes at the slower one.
	fast := NewStation(k, StationConfig{Name: "DB1", Servers: 1, Speed: 1, Deterministic: true})
	slow := NewStation(k, StationConfig{Name: "DB2", Servers: 1, Speed: 0.5, Deterministic: true})
	db := NewRAIDb(k, RoundRobin, []*Station{fast, slow})
	var doneAt float64
	db.Write(1.0, func(bool, float64, float64) { doneAt = k.Now() })
	k.Run(10)
	if math.Abs(doneAt-2.0) > 1e-9 {
		t.Fatalf("write completed at %g, want 2.0 (slowest replica)", doneAt)
	}
}

func TestRAIDbWriteRejectionPropagates(t *testing.T) {
	k := NewKernel(1)
	full := NewStation(k, StationConfig{Name: "DB1", Servers: 1, Speed: 1, MaxJobs: 1, Deterministic: true})
	ok1 := NewStation(k, StationConfig{Name: "DB2", Servers: 1, Speed: 1, Deterministic: true})
	db := NewRAIDb(k, RoundRobin, []*Station{full, ok1})
	// Fill the first replica.
	full.Submit(100, func(bool, float64, float64) {})
	var gotOK *bool
	db.Write(1.0, func(ok bool, _, _ float64) { gotOK = &ok })
	k.Run(10)
	if gotOK == nil {
		t.Fatalf("write never completed")
	}
	if *gotOK {
		t.Fatalf("write with a rejecting replica should report failure")
	}
}

func TestRAIDbReadBalancing(t *testing.T) {
	k := NewKernel(1)
	db := makeRAIDb(k, 2)
	for i := 0; i < 6; i++ {
		db.Read(10.0, func(bool, float64, float64) {})
	}
	for i, rep := range db.Replicas() {
		if rep.InFlight() != 3 {
			t.Fatalf("replica %d holds %d reads, want 3", i, rep.InFlight())
		}
	}
}

func TestRAIDbResetAndString(t *testing.T) {
	k := NewKernel(1)
	db := makeRAIDb(k, 2)
	db.Read(1.0, func(bool, float64, float64) {})
	k.Run(10)
	db.ResetAccounting()
	if db.Completed() != 0 {
		t.Fatalf("reset did not clear replica counters")
	}
	if !strings.Contains(db.String(), "RAIDb-1[2 replicas") {
		t.Fatalf("string = %q", db.String())
	}
	if db.Size() != 2 {
		t.Fatalf("size = %d", db.Size())
	}
}

func TestRAIDbPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for empty RAIDb")
		}
	}()
	NewRAIDb(NewKernel(1), RoundRobin, nil)
}

// TestRAIDbScaleOutCapacity verifies the RAIDb-1 capacity law the design
// relies on: with write fraction w, d replicas multiply read capacity but
// every replica pays for every write. We drive an open stream of
// operations and compare per-replica busy time against the analytic
// w·Dw + (1−w)·Dr/d per request.
func TestRAIDbScaleOutCapacity(t *testing.T) {
	const (
		reqs = 3000
		w    = 0.15
		dr   = 0.004
		dw   = 0.008
	)
	for _, d := range []int{1, 2, 3} {
		k := NewKernel(11)
		db := makeRAIDb(k, d)
		for i := 0; i < reqs; i++ {
			if i%100 < int(w*100) {
				db.Write(dw, func(bool, float64, float64) {})
			} else {
				db.Read(dr, func(bool, float64, float64) {})
			}
		}
		k.Run(1e9)
		var busy float64
		for _, rep := range db.Replicas() {
			busy += rep.BusyTime()
		}
		perReplica := busy / float64(d) / reqs
		analytic := w*dw + (1-w)*dr/float64(d)
		if math.Abs(perReplica-analytic)/analytic > 0.02 {
			t.Errorf("d=%d: per-replica demand %.6f, analytic %.6f", d, perReplica, analytic)
		}
	}
}
