package sim

import (
	"math/rand/v2"

	"elba/internal/metrics"
	"elba/internal/trace"
)

// RequestRecord is the driver's log entry for one completed request, the
// simulated equivalent of the client emulator's response-time log.
type RequestRecord struct {
	// Issued is the simulated time the request was sent.
	Issued float64
	// RT is the response time in seconds.
	RT float64
	// Interaction names the interaction performed.
	Interaction string
	// Outcome is the request's final disposition.
	Outcome Outcome
	// TimedOut marks requests that completed after the client timeout.
	TimedOut bool
}

// DriverConfig parameterizes the closed-loop client driver. Mulini
// generates these values from the TBL workload section.
type DriverConfig struct {
	// Users is the number of concurrent emulated users.
	Users int
	// Timeout is the client-side response timeout in seconds; responses
	// slower than this are counted as errors (0 disables).
	Timeout float64
	// RampUp spreads session starts uniformly over this many seconds so
	// all users do not fire their first request at the same instant.
	RampUp float64
	// MaxSessions caps the number of users the deployment can hold
	// persistent connections for (application-server MaxClients × app
	// servers, with mod_jk sticky sessions). Users beyond the cap get
	// connection-refused on every request, which is how overloaded small
	// configurations fail to complete experiments (paper Table 7's
	// missing squares). 0 disables the cap.
	MaxSessions int
}

// Driver emulates a population of users in a closed loop: think, issue the
// session's next interaction, wait for the response, repeat. It records
// response times and outcomes for the measurement window.
type Driver struct {
	k     *Kernel
	app   *NTier
	model Model
	cfg   DriverConfig
	rng   *rand.Rand

	measuring bool
	records   []RequestRecord
	issued    int64
	completed int64
	errors    int64
	timeouts  int64

	// errRate, when positive, fails each issued request with this
	// probability before it reaches the application — a fault-injection
	// error burst on the client network path. injected counts the
	// requests so failed during the measurement window.
	errRate  float64
	injected int64

	// tracer, when set, head-samples measured requests into span traces.
	// The keep/drop decision is a pure function of (tracer seed, issue
	// index), so the traced subset is identical for any worker count.
	tracer *trace.Collector

	users  []*user
	active int

	rtSample *metrics.Sample
	perIx    map[string]*metrics.Summary

	// rtObs, when set, additionally observes every measured successful
	// response time in completion order — the streaming path's tap for
	// per-trial quantile sketches and differential tests. Nil costs
	// nothing and never touches the random streams.
	rtObs metrics.Observer
}

// Event tags for the per-user state machine.
const (
	tagUserStart int32 = iota // session's start delay elapsed: enter the loop
	tagUserThink              // think period ended: issue the next request
)

// user is one emulated client session. It implements the kernel's actor
// interface (for think/start timers) and the router's outcomeDone interface
// (for request completions), so a full think→request→response cycle
// schedules no closures and allocates nothing in steady state.
type user struct {
	d       *Driver
	sess    Session
	id      int
	stop    bool
	refused bool

	// in-flight request state; valid between issue and requestDone.
	it       Interaction
	issuedAt float64
	tr       *trace.Trace
}

// act handles the user's timer events.
func (u *user) act(tag int32) {
	d := u.d
	if tag == tagUserStart {
		u.loop()
		return
	}
	// Think period over: issue the session's next interaction.
	if u.refused {
		it := u.sess.Next(d.rng)
		d.issued++
		d.complete(it, d.k.Now(), 0, Rejected)
		u.loop()
		return
	}
	if u.stop {
		return
	}
	it := u.sess.Next(d.rng)
	// Error-burst window: the request fails on the wire. The rng is only
	// consulted while a burst is active, so fault-free runs keep their
	// historical random stream bit-for-bit.
	if d.errRate > 0 && d.rng.Float64() < d.errRate {
		d.issued++
		if d.measuring {
			d.injected++
		}
		d.complete(it, d.k.Now(), 0, Failed)
		u.loop()
		return
	}
	u.it = it
	u.issuedAt = d.k.Now()
	d.issued++
	if d.tracer != nil && d.measuring && d.tracer.Sample(uint64(d.issued)) {
		u.tr = d.tracer.Start(it.Name, u.id, u.issuedAt, it.Write)
	}
	d.app.serveSession(u.id, it, u, u.tr)
}

// requestDone receives the end-to-end outcome of the user's in-flight
// request and closes the loop: the user starts thinking again immediately,
// whatever the outcome (a real emulator retries after errors).
func (u *user) requestDone(out Outcome) {
	d := u.d
	rt := d.k.Now() - u.issuedAt
	if u.tr != nil {
		d.tracer.Commit(u.tr, rt, out.String())
		u.tr = nil
	}
	d.complete(u.it, u.issuedAt, rt, out)
	u.loop()
}

// loop begins one think period unless the session has been retired.
// Refused sessions never retire: they model browsers hammering a full
// accept queue, exactly as the original refused loop did.
func (u *user) loop() {
	if !u.refused && u.stop {
		return
	}
	think := u.d.k.Exp(u.d.model.ThinkTime())
	u.d.k.scheduleAct(think, u, tagUserThink)
}

// NewDriver creates a driver for users of the given workload model against
// app. The driver draws all randomness from its own PCG stream seeded from
// seed so concurrent trials never share state.
func NewDriver(k *Kernel, app *NTier, model Model, cfg DriverConfig, seed uint64) *Driver {
	d := &Driver{
		k:        k,
		app:      app,
		model:    model,
		cfg:      cfg,
		rng:      rand.New(rand.NewPCG(seed, seed^0xdeadbeefcafef00d)),
		rtSample: metrics.NewSample(4096),
		perIx:    make(map[string]*metrics.Summary),
	}
	// Pre-register a summary per declared interaction so steady-state
	// recording never allocates inside the measurement window.
	for _, it := range model.Interactions() {
		d.perIx[it.Name] = &metrics.Summary{}
	}
	return d
}

// Start launches all user sessions. Call before Kernel.Run.
func (d *Driver) Start() {
	for i := 0; i < d.cfg.Users; i++ {
		delay := 0.0
		if d.cfg.RampUp > 0 {
			delay = d.rng.Float64() * d.cfg.RampUp
		}
		if d.cfg.MaxSessions > 0 && i >= d.cfg.MaxSessions {
			// No connection slot: this user's requests are refused.
			u := &user{d: d, sess: d.model.NewSession(d.rng), id: -1, refused: true}
			d.k.scheduleAct(delay, u, tagUserStart)
			continue
		}
		u := &user{d: d, sess: d.model.NewSession(d.rng), id: len(d.users)}
		d.users = append(d.users, u)
		d.active++
		d.k.scheduleAct(delay, u, tagUserStart)
	}
}

// ActiveUsers reports the number of live user sessions.
func (d *Driver) ActiveUsers() int { return d.active }

// AddUsers grows the population mid-run by n sessions, modelling workload
// evolution (a traffic surge arriving at a running deployment). New users
// ramp in over rampUp seconds. Session caps do not apply to late joiners;
// callers modelling capped servers should size the initial population
// instead.
func (d *Driver) AddUsers(n int, rampUp float64) {
	for i := 0; i < n; i++ {
		u := &user{d: d, sess: d.model.NewSession(d.rng), id: len(d.users)}
		d.users = append(d.users, u)
		d.active++
		delay := 0.0
		if rampUp > 0 {
			delay = d.rng.Float64() * rampUp
		}
		d.k.scheduleAct(delay, u, tagUserStart)
	}
}

// RemoveUsers retires n of the most recently added live sessions: each
// finishes its in-flight request (if any) and leaves instead of thinking
// again.
func (d *Driver) RemoveUsers(n int) {
	for i := len(d.users) - 1; i >= 0 && n > 0; i-- {
		if u := d.users[i]; !u.stop {
			u.stop = true
			d.active--
			n--
		}
	}
}

func (d *Driver) complete(it Interaction, issued, rt float64, out Outcome) {
	d.completed++
	timedOut := d.cfg.Timeout > 0 && rt > d.cfg.Timeout
	if d.measuring {
		rec := RequestRecord{Issued: issued, RT: rt, Interaction: it.Name, Outcome: out, TimedOut: timedOut}
		d.records = append(d.records, rec)
		if out == OK && !timedOut {
			d.rtSample.Observe(rt)
			if d.rtObs != nil {
				d.rtObs.Observe(rt)
			}
			s := d.perIx[it.Name]
			if s == nil {
				// Interaction not declared by the model; register lazily.
				s = &metrics.Summary{}
				d.perIx[it.Name] = s
			}
			s.Observe(rt)
		}
	}
	if out != OK || timedOut {
		d.errors++
		if timedOut {
			d.timeouts++
		}
	}
}

// BeginMeasurement starts recording requests; the trial runner calls this
// at the end of the warm-up period. Any previously recorded window is
// released, not truncated, so slices returned by earlier Records calls
// stay valid.
func (d *Driver) BeginMeasurement() {
	d.measuring = true
	d.records = nil
	d.rtSample.Reset()
	for _, s := range d.perIx {
		s.Reset()
	}
	d.errors = 0
	d.timeouts = 0
	d.injected = 0
}

// EndMeasurement stops recording.
func (d *Driver) EndMeasurement() { d.measuring = false }

// Records returns the measured request log (shared, not copied). The
// returned slice is never overwritten by a later measurement window:
// BeginMeasurement starts a fresh log rather than truncating this one.
func (d *Driver) Records() []RequestRecord { return d.records }

// SetTracer attaches a per-trial trace collector. While measuring, each
// issued request is head-sampled by the collector; sampled requests carry
// a span trace through the tiers and commit at completion. Call with nil
// to disable. Tracing never touches the driver's random streams, so a
// traced run issues the identical request sequence as an untraced one.
func (d *Driver) SetTracer(c *trace.Collector) { d.tracer = c }

// SetRTObserver attaches an additional observer for measured successful
// response times (seconds, completion order). The observer sees exactly
// the stream rtSample records, so a sketch fed through it summarizes the
// same multiset the exact quantiles are computed from. Call with nil to
// detach. Observation never consults the driver's random streams, so an
// observed run issues the identical request sequence as an unobserved one.
func (d *Driver) SetRTObserver(o metrics.Observer) { d.rtObs = o }

// ResponseTimes returns the sample of successful response times measured.
func (d *Driver) ResponseTimes() *metrics.Sample { return d.rtSample }

// PerInteraction returns response-time summaries keyed by interaction
// name, for interactions observed during the measurement window.
func (d *Driver) PerInteraction() map[string]*metrics.Summary {
	out := make(map[string]*metrics.Summary, len(d.perIx))
	for name, s := range d.perIx {
		if s.Count() > 0 {
			out[name] = s
		}
	}
	return out
}

// SetErrorRate starts (p > 0) or ends (p <= 0) an error-burst window:
// while active, each issued request fails with probability p before
// reaching the application. Fault injection schedules these windows on
// the kernel.
func (d *Driver) SetErrorRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	d.errRate = p
}

// InjectedErrors reports requests failed by error bursts during the
// measurement window.
func (d *Driver) InjectedErrors() int64 { return d.injected }

// Issued reports the total number of requests sent since Start.
func (d *Driver) Issued() int64 { return d.issued }

// Errors reports rejected, failed, or timed-out requests during the
// measurement window.
func (d *Driver) Errors() int64 { return d.errors }

// Timeouts reports requests exceeding the client timeout during the
// measurement window.
func (d *Driver) Timeouts() int64 { return d.timeouts }
