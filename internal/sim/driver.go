package sim

import (
	"math/rand/v2"

	"elba/internal/metrics"
)

// RequestRecord is the driver's log entry for one completed request, the
// simulated equivalent of the client emulator's response-time log.
type RequestRecord struct {
	// Issued is the simulated time the request was sent.
	Issued float64
	// RT is the response time in seconds.
	RT float64
	// Interaction names the interaction performed.
	Interaction string
	// Outcome is the request's final disposition.
	Outcome Outcome
	// TimedOut marks requests that completed after the client timeout.
	TimedOut bool
}

// DriverConfig parameterizes the closed-loop client driver. Mulini
// generates these values from the TBL workload section.
type DriverConfig struct {
	// Users is the number of concurrent emulated users.
	Users int
	// Timeout is the client-side response timeout in seconds; responses
	// slower than this are counted as errors (0 disables).
	Timeout float64
	// RampUp spreads session starts uniformly over this many seconds so
	// all users do not fire their first request at the same instant.
	RampUp float64
	// MaxSessions caps the number of users the deployment can hold
	// persistent connections for (application-server MaxClients × app
	// servers, with mod_jk sticky sessions). Users beyond the cap get
	// connection-refused on every request, which is how overloaded small
	// configurations fail to complete experiments (paper Table 7's
	// missing squares). 0 disables the cap.
	MaxSessions int
}

// Driver emulates a population of users in a closed loop: think, issue the
// session's next interaction, wait for the response, repeat. It records
// response times and outcomes for the measurement window.
type Driver struct {
	k     *Kernel
	app   *NTier
	model Model
	cfg   DriverConfig
	rng   *rand.Rand

	measuring bool
	records   []RequestRecord
	issued    int64
	completed int64
	errors    int64
	timeouts  int64

	nextID  int
	stopped map[int]bool
	active  int

	rtSample *metrics.Sample
	perIx    map[string]*metrics.Summary
}

// NewDriver creates a driver for users of the given workload model against
// app. The driver draws all randomness from its own PCG stream seeded from
// seed so concurrent trials never share state.
func NewDriver(k *Kernel, app *NTier, model Model, cfg DriverConfig, seed uint64) *Driver {
	return &Driver{
		k:        k,
		app:      app,
		model:    model,
		cfg:      cfg,
		rng:      rand.New(rand.NewPCG(seed, seed^0xdeadbeefcafef00d)),
		rtSample: metrics.NewSample(4096),
		perIx:    make(map[string]*metrics.Summary),
		stopped:  map[int]bool{},
	}
}

// Start launches all user sessions. Call before Kernel.Run.
func (d *Driver) Start() {
	for i := 0; i < d.cfg.Users; i++ {
		delay := 0.0
		if d.cfg.RampUp > 0 {
			delay = d.rng.Float64() * d.cfg.RampUp
		}
		if d.cfg.MaxSessions > 0 && i >= d.cfg.MaxSessions {
			// No connection slot: this user's requests are refused.
			sess := d.model.NewSession(d.rng)
			d.k.Schedule(delay, func() { d.refusedLoop(sess) })
			continue
		}
		sess := d.model.NewSession(d.rng)
		id := d.nextID
		d.nextID++
		d.active++
		d.k.Schedule(delay, func() { d.userLoop(id, sess) })
	}
}

// ActiveUsers reports the number of live user sessions.
func (d *Driver) ActiveUsers() int { return d.active }

// AddUsers grows the population mid-run by n sessions, modelling workload
// evolution (a traffic surge arriving at a running deployment). New users
// ramp in over rampUp seconds. Session caps do not apply to late joiners;
// callers modelling capped servers should size the initial population
// instead.
func (d *Driver) AddUsers(n int, rampUp float64) {
	for i := 0; i < n; i++ {
		sess := d.model.NewSession(d.rng)
		id := d.nextID
		d.nextID++
		d.active++
		delay := 0.0
		if rampUp > 0 {
			delay = d.rng.Float64() * rampUp
		}
		d.k.Schedule(delay, func() { d.userLoop(id, sess) })
	}
}

// RemoveUsers retires n of the most recently added live sessions: each
// finishes its in-flight request (if any) and leaves instead of thinking
// again.
func (d *Driver) RemoveUsers(n int) {
	for id := d.nextID - 1; id >= 0 && n > 0; id-- {
		if !d.stopped[id] {
			d.stopped[id] = true
			d.active--
			n--
		}
	}
}

// refusedLoop emulates a user whose connection attempts are refused: each
// think period ends in an immediate error, like a browser hitting a full
// accept queue.
func (d *Driver) refusedLoop(sess Session) {
	think := d.k.Exp(d.model.ThinkTime())
	d.k.Schedule(think, func() {
		it := sess.Next(d.rng)
		d.issued++
		d.complete(it, d.k.Now(), 0, Rejected)
		d.refusedLoop(sess)
	})
}

// userLoop performs one think + request cycle and reschedules itself
// until the session is retired.
func (d *Driver) userLoop(id int, sess Session) {
	if d.stopped[id] {
		return
	}
	think := d.k.Exp(d.model.ThinkTime())
	d.k.Schedule(think, func() {
		if d.stopped[id] {
			return
		}
		it := sess.Next(d.rng)
		issued := d.k.Now()
		d.issued++
		d.app.ServeSession(id, it, func(out Outcome) {
			rt := d.k.Now() - issued
			d.complete(it, issued, rt, out)
			// Closed loop: the user starts thinking again immediately,
			// whatever the outcome (a real emulator retries after errors).
			d.userLoop(id, sess)
		})
	})
}

func (d *Driver) complete(it Interaction, issued, rt float64, out Outcome) {
	d.completed++
	timedOut := d.cfg.Timeout > 0 && rt > d.cfg.Timeout
	if d.measuring {
		rec := RequestRecord{Issued: issued, RT: rt, Interaction: it.Name, Outcome: out, TimedOut: timedOut}
		d.records = append(d.records, rec)
		if out == OK && !timedOut {
			d.rtSample.Observe(rt)
			s := d.perIx[it.Name]
			if s == nil {
				s = &metrics.Summary{}
				d.perIx[it.Name] = s
			}
			s.Observe(rt)
		}
	}
	if out != OK || timedOut {
		d.errors++
		if timedOut {
			d.timeouts++
		}
	}
}

// BeginMeasurement starts recording requests; the trial runner calls this
// at the end of the warm-up period.
func (d *Driver) BeginMeasurement() {
	d.measuring = true
	d.records = d.records[:0]
	d.rtSample.Reset()
	d.perIx = make(map[string]*metrics.Summary)
	d.errors = 0
	d.timeouts = 0
}

// EndMeasurement stops recording.
func (d *Driver) EndMeasurement() { d.measuring = false }

// Records returns the measured request log (shared, not copied).
func (d *Driver) Records() []RequestRecord { return d.records }

// ResponseTimes returns the sample of successful response times measured.
func (d *Driver) ResponseTimes() *metrics.Sample { return d.rtSample }

// PerInteraction returns response-time summaries keyed by interaction name.
func (d *Driver) PerInteraction() map[string]*metrics.Summary { return d.perIx }

// Issued reports the total number of requests sent since Start.
func (d *Driver) Issued() int64 { return d.issued }

// Errors reports rejected, failed, or timed-out requests during the
// measurement window.
func (d *Driver) Errors() int64 { return d.errors }

// Timeouts reports requests exceeding the client timeout during the
// measurement window.
func (d *Driver) Timeouts() int64 { return d.timeouts }
