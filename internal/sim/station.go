package sim

import "fmt"

// Completion receives the outcome of a submitted job. ok is false when the
// station rejected the job (queue limit exceeded); wait and service report
// the time the job spent queued and in service, in seconds.
type Completion func(ok bool, wait, service float64)

// jobDone is the allocation-free form of Completion: hot-path callers
// (the n-tier request router, the RAIDb write broadcaster) implement it on
// pooled objects so a request traverses the whole tier chain without
// allocating a closure per hop.
type jobDone interface {
	jobFinished(ok bool, wait, service float64)
}

// completionFunc adapts a Completion closure to the jobDone interface.
// Converting a func value to an interface does not allocate, so the public
// Submit/Read/Write entry points cost the same as before.
type completionFunc Completion

func (f completionFunc) jobFinished(ok bool, wait, service float64) { f(ok, wait, service) }

// Station models one host resource (a server process bound to a node CPU)
// as a multi-server FCFS queue. Service demands are specified at a
// reference CPU frequency and divided by the station's speed factor, so a
// 600 MHz node (speed 0.2 against a 3 GHz reference) serves the same
// demand five times slower.
//
// A station optionally enforces a capacity limit on concurrently held
// jobs (in service + queued), modelling a server's connection/thread pool;
// jobs arriving beyond the limit are rejected. This is what makes
// overload experiments fail to complete, as the paper observes for small
// configurations at high load (Table 7's missing squares).
type Station struct {
	k       *Kernel
	name    string
	servers int
	speed   float64
	maxJobs int // 0 = unlimited
	detSvc  bool

	busy   int
	queue  []pendingJob // ring: live entries are queue[qhead:]
	qhead  int
	failed bool
	degr   float64 // runtime degradation factor; 1 = full speed

	// slots hold in-service jobs; the kernel's actor events carry the slot
	// index, so a service completion costs no allocation.
	slots []svcSlot
	free  []int32

	// disk and net are the node's optional contended devices; requests
	// with disk/net demands queue on them around CPU service (see
	// submitRes). rpool recycles the multi-leg job trackers.
	disk  *Resource
	net   *Resource
	rpool []*resJob

	// accounting
	busyTime   float64 // integral of busy servers over time, in server-seconds
	lastChange float64
	completed  int64
	rejected   int64
	queuedPeak int
}

type pendingJob struct {
	demand  float64
	arrived float64
	done    jobDone
}

type svcSlot struct {
	jd   jobDone
	wait float64
	svc  float64
}

// StationConfig configures a Station.
type StationConfig struct {
	// Name identifies the station in monitor output, e.g. "APP1".
	Name string
	// Servers is the number of parallel servers (CPU cores × processes).
	Servers int
	// Speed is the node's CPU frequency relative to the 3 GHz reference.
	Speed float64
	// MaxJobs caps concurrently held jobs (0 = unlimited).
	MaxJobs int
	// Deterministic disables exponential service-time sampling; demands
	// are served exactly. Used by tests and by ablation benches.
	Deterministic bool
}

// NewStation creates a station attached to kernel k. Invalid configuration
// (no servers, non-positive speed) panics: stations are constructed from
// validated deployment plans, so this indicates a bug.
func NewStation(k *Kernel, cfg StationConfig) *Station {
	if cfg.Servers <= 0 {
		panic(fmt.Sprintf("sim: station %q needs at least one server", cfg.Name))
	}
	if cfg.Speed <= 0 {
		panic(fmt.Sprintf("sim: station %q needs positive speed", cfg.Name))
	}
	return &Station{
		k:       k,
		name:    cfg.Name,
		servers: cfg.Servers,
		speed:   cfg.Speed,
		maxJobs: cfg.MaxJobs,
		detSvc:  cfg.Deterministic,
		degr:    1,
	}
}

// Name reports the station's identifier.
func (s *Station) Name() string { return s.name }

// Servers reports the number of parallel servers.
func (s *Station) Servers() int { return s.servers }

// queued reports the number of jobs waiting in the ring buffer.
func (s *Station) queued() int { return len(s.queue) - s.qhead }

// InFlight reports jobs currently queued or in service.
func (s *Station) InFlight() int { return s.busy + s.queued() }

// Completed reports the number of jobs served to completion.
func (s *Station) Completed() int64 { return s.completed }

// Rejected reports the number of jobs refused due to the capacity limit.
func (s *Station) Rejected() int64 { return s.rejected }

// QueuedPeak reports the largest queue length observed.
func (s *Station) QueuedPeak() int { return s.queuedPeak }

// Fail takes the station out of service: every subsequent submission is
// refused until Recover. Jobs already queued or in service complete
// normally, modelling a server whose accept queue is closed (crash-stop
// of the listener) rather than a power failure. The failure-injection
// experiments use this to observe how the deployment degrades.
func (s *Station) Fail() { s.failed = true }

// Recover returns a failed station to service.
func (s *Station) Recover() { s.failed = false }

// Failed reports whether the station is out of service.
func (s *Station) Failed() bool { return s.failed }

// SetDegradation scales the station's effective speed by f for jobs that
// start from now on: 1 restores full speed, values toward 0 model a
// slowed or stalled host (fault-injection slowdown and stall windows).
// Non-positive factors are clamped to a small floor rather than zero so
// in-flight work still drains, matching a stalled-but-alive server.
func (s *Station) SetDegradation(f float64) {
	if f <= 0 {
		f = 0.001
	}
	if f > 1 {
		f = 1
	}
	s.degr = f
}

// Degradation reports the current runtime degradation factor.
func (s *Station) Degradation() float64 { return s.degr }

// Submit offers a job with the given reference demand (seconds at the
// reference frequency). done is invoked exactly once: immediately with
// ok=false on rejection, or at service completion with ok=true.
func (s *Station) Submit(demand float64, done Completion) {
	s.submit(demand, completionFunc(done))
}

// submit is the allocation-free entry point used inside the package.
func (s *Station) submit(demand float64, done jobDone) {
	if s.failed {
		s.rejected++
		done.jobFinished(false, 0, 0)
		return
	}
	if s.maxJobs > 0 && s.busy+s.queued() >= s.maxJobs {
		s.rejected++
		done.jobFinished(false, 0, 0)
		return
	}
	j := pendingJob{demand: demand, arrived: s.k.Now(), done: done}
	if s.busy < s.servers {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
	if q := s.queued(); q > s.queuedPeak {
		s.queuedPeak = q
	}
}

func (s *Station) start(j pendingJob) {
	s.accumulate()
	s.busy++
	svc := j.demand / (s.speed * s.degr)
	if !s.detSvc {
		svc = s.k.Exp(svc)
	}
	wait := s.k.Now() - j.arrived
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, svcSlot{})
		slot = int32(len(s.slots) - 1)
	}
	s.slots[slot] = svcSlot{jd: j.done, wait: wait, svc: svc}
	s.k.scheduleAct(svc, s, slot)
}

// act completes the service occupying the given slot. It implements the
// kernel's actor interface, so a completion event carries only the slot
// index rather than an allocated closure.
func (s *Station) act(slot int32) {
	sl := s.slots[slot]
	s.slots[slot] = svcSlot{}
	s.free = append(s.free, slot)
	s.accumulate()
	s.busy--
	s.completed++
	if s.qhead < len(s.queue) {
		next := s.queue[s.qhead]
		s.queue[s.qhead] = pendingJob{}
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue = s.queue[:0]
			s.qhead = 0
		}
		s.start(next)
	}
	sl.jd.jobFinished(true, sl.wait, sl.svc)
}

// accumulate folds busy-server time since the last state change into the
// busy-time integral.
func (s *Station) accumulate() {
	now := s.k.Now()
	s.busyTime += float64(s.busy) * (now - s.lastChange)
	s.lastChange = now
}

// Utilization reports the mean fraction of server capacity busy over
// [since, now]. It is the signal a monitor's CPU sampler reads.
func (s *Station) Utilization(since float64) float64 {
	s.accumulate()
	dt := s.k.Now() - since
	if dt <= 0 {
		return 0
	}
	// busyTime counts from t=0; the caller tracks its own window by
	// sampling BusyTime deltas. Utilization(since) is a convenience for
	// whole-run windows starting at `since` when no work predates it.
	return s.busyTime / (dt * float64(s.servers))
}

// BusyTime reports the cumulative busy server-seconds, for windowed
// utilization sampling: util = ΔBusyTime / (Δt × servers).
func (s *Station) BusyTime() float64 {
	s.accumulate()
	return s.busyTime
}

// ResetAccounting clears counters and the busy-time integral without
// disturbing in-flight work. The trial runner calls this at the end of the
// warm-up period so measurements cover only the run period.
func (s *Station) ResetAccounting() {
	s.accumulate()
	s.busyTime = 0
	s.completed = 0
	s.rejected = 0
	s.queuedPeak = s.queued()
	if s.disk != nil {
		s.disk.ResetAccounting()
	}
	if s.net != nil {
		s.net.ResetAccounting()
	}
}
