package sim

import "fmt"

// Resource models one single-capacity contended device attached to a
// station's node: the disk spindle serving the tier's I/O, or the network
// link carrying the tier's ingress payloads. It is a single-server FCFS
// queue with deterministic service times — demand divided by the device's
// rate — so attaching a resource never consumes the kernel's random
// stream, and configurations without disk/net demands keep their exact
// historical event and random sequences.
//
// Demands are specified against a reference device (the disk demand in
// seconds at the reference spindle, the network demand in bytes) and the
// rate scales them to this node's hardware: a disk at 0.64× the reference
// bandwidth serves the same demand 1.56× slower, and a 100 Mbps link
// moves a payload ten times slower than a gigabit one.
type Resource struct {
	k    *Kernel
	name string
	rate float64

	busy  bool
	queue []pendingJob // ring: live entries are queue[qhead:]
	qhead int

	// cur holds the in-service job; single capacity means at most one, so
	// the actor event needs no slot index.
	cur svcSlot

	// accounting, mirroring Station's busy-time integral.
	busyTime   float64
	lastChange float64
	completed  int64
	queuedPeak int
}

// NewResource creates a resource attached to kernel k. rate converts
// demand units to seconds of service: a speed factor for disks (demand in
// reference-disk seconds), bytes per second for links (demand in bytes).
// A non-positive rate panics: resources are constructed from validated
// platform capacities, so this indicates a bug.
func NewResource(k *Kernel, name string, rate float64) *Resource {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: resource %q needs positive rate", name))
	}
	return &Resource{k: k, name: name, rate: rate}
}

// Name reports the resource's identifier, e.g. "MYSQL1/disk".
func (r *Resource) Name() string { return r.name }

// Completed reports jobs served to completion.
func (r *Resource) Completed() int64 { return r.completed }

// QueuedPeak reports the largest queue length observed.
func (r *Resource) QueuedPeak() int { return r.queuedPeak }

func (r *Resource) queued() int { return len(r.queue) - r.qhead }

// InFlight reports jobs currently queued or in service.
func (r *Resource) InFlight() int {
	n := r.queued()
	if r.busy {
		n++
	}
	return n
}

// submit offers a job with the given demand. done always completes with
// ok=true: capacity limits and failures are modelled on the CPU station,
// which fronts every request; the attached devices only add contention.
func (r *Resource) submit(demand float64, done jobDone) {
	j := pendingJob{demand: demand, arrived: r.k.Now(), done: done}
	if !r.busy {
		r.start(j)
		return
	}
	r.queue = append(r.queue, j)
	if q := r.queued(); q > r.queuedPeak {
		r.queuedPeak = q
	}
}

func (r *Resource) start(j pendingJob) {
	r.accumulate()
	r.busy = true
	svc := j.demand / r.rate
	wait := r.k.Now() - j.arrived
	r.cur = svcSlot{jd: j.done, wait: wait, svc: svc}
	r.k.scheduleAct(svc, r, 0)
}

// act completes the in-service job. It implements the kernel's actor
// interface so a completion event carries no allocated closure.
func (r *Resource) act(int32) {
	sl := r.cur
	r.cur = svcSlot{}
	r.accumulate()
	r.busy = false
	r.completed++
	if r.qhead < len(r.queue) {
		next := r.queue[r.qhead]
		r.queue[r.qhead] = pendingJob{}
		r.qhead++
		if r.qhead == len(r.queue) {
			r.queue = r.queue[:0]
			r.qhead = 0
		}
		r.start(next)
	}
	sl.jd.jobFinished(true, sl.wait, sl.svc)
}

func (r *Resource) accumulate() {
	now := r.k.Now()
	if r.busy {
		r.busyTime += now - r.lastChange
	}
	r.lastChange = now
}

// BusyTime reports cumulative busy seconds, for windowed utilization
// sampling: util = ΔBusyTime / Δt (single capacity).
func (r *Resource) BusyTime() float64 {
	r.accumulate()
	return r.busyTime
}

// Utilization reports the mean busy fraction over [since, now].
func (r *Resource) Utilization(since float64) float64 {
	r.accumulate()
	dt := r.k.Now() - since
	if dt <= 0 {
		return 0
	}
	return r.busyTime / dt
}

// ResetAccounting clears counters and the busy-time integral without
// disturbing in-flight work, like Station.ResetAccounting.
func (r *Resource) ResetAccounting() {
	r.accumulate()
	r.busyTime = 0
	r.completed = 0
	r.queuedPeak = r.queued()
}

// resJob sequences one request's legs across a station's contended
// resources — network link, then CPU, then disk — accumulating the
// per-leg queue waits and service times into one aggregated completion,
// so callers (the n-tier router, the RAIDb broadcaster, the tracer) see
// a single hop exactly as they would from a bare CPU station. Jobs are
// pooled on the station, keeping the multi-resource path allocation-free
// in steady state.
type resJob struct {
	s     *Station
	done  jobDone
	cpu   float64
	disk  float64
	stage int8 // 0 = network leg, 1 = CPU leg, 2 = disk leg
	wait  float64
	svc   float64
}

func (j *resJob) jobFinished(ok bool, wait, service float64) {
	j.wait += wait
	j.svc += service
	if !ok {
		// Only the CPU station can reject or fail; surface it immediately
		// with whatever time the earlier legs already spent.
		j.finish(false)
		return
	}
	switch j.stage {
	case 0: // network leg done → CPU
		j.stage = 1
		j.s.submit(j.cpu, j)
	case 1: // CPU leg done → disk, if demanded
		if j.disk > 0 && j.s.disk != nil {
			j.stage = 2
			j.s.disk.submit(j.disk, j)
			return
		}
		j.finish(true)
	default: // disk leg done
		j.finish(true)
	}
}

func (j *resJob) finish(ok bool) {
	done, wait, svc := j.done, j.wait, j.svc
	j.done = nil
	j.s.rpool = append(j.s.rpool, j)
	done.jobFinished(ok, wait, svc)
}

// AttachDisk binds a disk resource to the station's node. Requests
// submitted with a disk demand queue on it after CPU service.
func (s *Station) AttachDisk(r *Resource) { s.disk = r }

// AttachNet binds an ingress-link resource to the station's node.
// Requests submitted with a payload size queue on it before CPU service.
func (s *Station) AttachNet(r *Resource) { s.net = r }

// Disk reports the attached disk resource (nil when none).
func (s *Station) Disk() *Resource { return s.disk }

// Net reports the attached network-link resource (nil when none).
func (s *Station) Net() *Resource { return s.net }

// submitRes offers a job demanding cpu seconds (at the reference
// frequency), disk seconds (at the reference disk), and netBytes of link
// payload. Legs the request does not demand — or the station has no
// device for — are skipped; a request with neither disk nor network
// demand takes the exact historical submit path, so zero-demand
// configurations stay event- and allocation-identical.
func (s *Station) submitRes(cpu, disk, netBytes float64, done jobDone) {
	netLeg := netBytes > 0 && s.net != nil
	diskLeg := disk > 0 && s.disk != nil
	if !netLeg && !diskLeg {
		s.submit(cpu, done)
		return
	}
	var j *resJob
	if n := len(s.rpool); n > 0 {
		j = s.rpool[n-1]
		s.rpool = s.rpool[:n-1]
	} else {
		j = &resJob{s: s}
	}
	j.done = done
	j.cpu = cpu
	j.disk = disk
	j.wait, j.svc = 0, 0
	if netLeg {
		j.stage = 0
		s.net.submit(netBytes, j)
		return
	}
	j.stage = 1
	s.submit(cpu, j)
}

// SubmitRes is the exported form of submitRes for callers outside the
// package (tests, ablation benches).
func (s *Station) SubmitRes(cpu, disk, netBytes float64, done Completion) {
	s.submitRes(cpu, disk, netBytes, completionFunc(done))
}
