package sim

import "fmt"

// BalancerPolicy selects which station in a tier receives the next job.
type BalancerPolicy int

// Supported balancing policies. RoundRobin matches the paper's Apache
// mod_jk worker configuration; LeastConnections is provided for the
// ablation study of balancer sensitivity.
const (
	RoundRobin BalancerPolicy = iota
	LeastConnections
	RandomPick
)

// String names the policy for reports.
func (p BalancerPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastConnections:
		return "least-connections"
	case RandomPick:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Tier is a replicated set of stations fronted by a load balancer, such as
// the application-server tier with a app servers.
type Tier struct {
	k        *Kernel
	name     string
	stations []*Station
	policy   BalancerPolicy
	next     int
	// retired holds stations removed by scale-in. They receive no new
	// work but keep draining in-flight jobs, and their counters stay
	// readable so cumulative busy-time and completion sums over the tier
	// remain monotone across replica-set changes.
	retired []*Station
}

// NewTier groups stations under a balancing policy. At least one station
// is required.
func NewTier(k *Kernel, name string, policy BalancerPolicy, stations []*Station) *Tier {
	if len(stations) == 0 {
		panic(fmt.Sprintf("sim: tier %q needs at least one station", name))
	}
	return &Tier{k: k, name: name, stations: stations, policy: policy}
}

// Name reports the tier name ("web", "app", "db").
func (t *Tier) Name() string { return t.name }

// Stations returns the tier's stations (shared, not copied).
func (t *Tier) Stations() []*Station { return t.stations }

// Retired returns stations removed by scale-in (shared, not copied).
func (t *Tier) Retired() []*Station { return t.retired }

// Size reports the number of replicated stations.
func (t *Tier) Size() int { return len(t.stations) }

// AddStation joins a station to the balanced set. The round-robin cursor
// restarts at the head so the rebalanced rotation is a deterministic
// function of the new set, not of how much traffic preceded the change.
func (t *Tier) AddStation(s *Station) {
	t.stations = append(t.stations, s)
	t.next = 0
}

// RemoveStation retires the most recently added active station (LIFO,
// mirroring how scale-out grew the set) and returns it, or nil when the
// tier is already down to one station. The retired station finishes its
// in-flight jobs but is never picked again.
func (t *Tier) RemoveStation() *Station {
	if len(t.stations) <= 1 {
		return nil
	}
	s := t.stations[len(t.stations)-1]
	t.stations = t.stations[:len(t.stations)-1]
	t.retired = append(t.retired, s)
	t.next = 0
	return s
}

// pick selects a station according to the balancing policy.
func (t *Tier) pick() *Station {
	switch t.policy {
	case LeastConnections:
		best := t.stations[0]
		for _, s := range t.stations[1:] {
			if s.InFlight() < best.InFlight() {
				best = s
			}
		}
		return best
	case RandomPick:
		return t.stations[t.k.Rand().IntN(len(t.stations))]
	default: // RoundRobin
		s := t.stations[t.next%len(t.stations)]
		t.next++
		return s
	}
}

// Submit dispatches a job with the given reference demand to one station
// chosen by the balancing policy.
func (t *Tier) Submit(demand float64, done Completion) {
	t.pick().submit(demand, completionFunc(done))
}

// SubmitPinned dispatches to the station assigned to affinity key pin,
// as Apache mod_jk's sticky sessions pin a user's session to one
// application server.
func (t *Tier) SubmitPinned(pin int, demand float64, done Completion) {
	t.pinned(pin).submit(demand, completionFunc(done))
}

// pinned selects the station assigned to affinity key pin. The request
// router uses it so the traced path can note which station serves a hop
// before submitting.
func (t *Tier) pinned(pin int) *Station {
	if pin < 0 {
		pin = -pin
	}
	return t.stations[pin%len(t.stations)]
}

// Completed sums completed jobs across the tier's stations, including
// retired ones (their work happened and still counts).
func (t *Tier) Completed() int64 {
	var n int64
	for _, s := range t.stations {
		n += s.Completed()
	}
	for _, s := range t.retired {
		n += s.Completed()
	}
	return n
}

// Rejected sums rejected jobs across the tier's stations.
func (t *Tier) Rejected() int64 {
	var n int64
	for _, s := range t.stations {
		n += s.Rejected()
	}
	for _, s := range t.retired {
		n += s.Rejected()
	}
	return n
}

// ResetAccounting resets counters on every station in the tier.
func (t *Tier) ResetAccounting() {
	for _, s := range t.stations {
		s.ResetAccounting()
	}
	for _, s := range t.retired {
		s.ResetAccounting()
	}
}
