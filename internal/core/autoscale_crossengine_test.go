package core

import (
	"os"
	"reflect"
	"testing"

	"elba/internal/store"
)

// autoscaleTBL loads specs/rubbos-autoscale.tbl — the shipped §V.A
// autoscaling scenario: a 500-user surge over a CPU-inflated app tier,
// a scale-out policy that adds two servers per 30 s cooldown above 80%
// utilization, and a scale-in policy that drains two per 60 s cooldown
// below 30%. The spec file is the contract under test so the walkthrough
// in EXPERIMENTS.md exercises exactly what CI pins.
func autoscaleTBL(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../specs/rubbos-autoscale.tbl")
	if err != nil {
		t.Fatalf("load autoscale spec: %v", err)
	}
	return string(data)
}

func autoscaleResult(t *testing.T, c *Characterizer) store.Result {
	t.Helper()
	r, ok := c.Results().Get(store.Key{Experiment: "rubbos-autoscale", Topology: "1-2-1",
		Users: 120, WriteRatioPct: 15})
	if !ok {
		t.Fatal("autoscale result missing (grid should collapse to the t=0 population)")
	}
	if !r.Completed {
		t.Fatalf("autoscale trial failed: %s", r.FailReason)
	}
	return r
}

// TestAutoscaleCrossEngineAgreement runs the shipped autoscale spec
// through the exact DES and the fluid approximation and demands the
// same scaling story from both: the identical sequence of transitions
// (tier, from, to) and per-event firing times within one 5 s
// observation window of each other. Both engines watch the same
// protocol-time window cadence, so a policy whose threshold crossing is
// decisive must fire in the same (or at worst adjacent) window
// regardless of how the window statistics were produced.
func TestAutoscaleCrossEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("DES run in -short mode")
	}
	tbl := autoscaleTBL(t)
	des, fluid := runBothEngines(t, tbl)
	dr := autoscaleResult(t, des)
	fr := autoscaleResult(t, fluid)

	if len(dr.ScaleEvents) == 0 {
		t.Fatal("DES recorded no scale events; the surge must trigger the policies")
	}
	if len(dr.ScaleEvents) != len(fr.ScaleEvents) {
		t.Fatalf("event counts diverge: DES %v vs fluid %v", dr.ScaleEvents, fr.ScaleEvents)
	}
	const windowSec = 5.0
	for i := range dr.ScaleEvents {
		de, fe := dr.ScaleEvents[i], fr.ScaleEvents[i]
		if de.Tier != fe.Tier || de.From != fe.From || de.To != fe.To {
			t.Errorf("event %d transitions diverge: DES %v vs fluid %v", i, de, fe)
		}
		diff := de.TSec - fe.TSec
		if diff < 0 {
			diff = -diff
		}
		if diff > windowSec {
			t.Errorf("event %d fired %gs apart (DES %v vs fluid %v), want within one %gs window",
				i, diff, de, fe, windowSec)
		}
	}

	// The scaling story itself: out-fires land in the surge (the first
	// at the utilization crossing, the rest paced by the 30s cooldown),
	// in-fires in the post-surge drain, and the fleet returns to the
	// deployed baseline of two app servers.
	var out, in []store.ScaleEvent
	for _, ev := range dr.ScaleEvents {
		if ev.Tier != "app" {
			t.Errorf("event scales tier %q, spec only scales app", ev.Tier)
		}
		if ev.To > ev.From {
			out = append(out, ev)
		} else {
			in = append(in, ev)
		}
	}
	if len(out) < 2 || len(in) < 2 {
		t.Fatalf("want ≥2 scale-outs and ≥2 scale-ins, got %v", dr.ScaleEvents)
	}
	if first := out[0]; first.TSec < 100 || first.TSec > 160 {
		t.Errorf("first scale-out at %gs, want inside the surge onset [100s, 160s]", first.TSec)
	}
	if gap := out[1].TSec - out[0].TSec; gap < 30 {
		t.Errorf("scale-outs %gs apart, cooldown demands ≥30s", gap)
	}
	if first := in[0]; first.TSec < 400 {
		t.Errorf("first scale-in at %gs, want after the surge recedes at 400s", first.TSec)
	}
	if gap := in[1].TSec - in[0].TSec; gap < 60 {
		t.Errorf("scale-ins %gs apart, cooldown demands ≥60s", gap)
	}
	if last := dr.ScaleEvents[len(dr.ScaleEvents)-1]; last.To != 2 {
		t.Errorf("fleet settles at %d app servers, want back at the deployed 2", last.To)
	}
}

// TestAutoscaleDeterminism re-runs the autoscale spec under the same
// engine and demands bit-identical scale-event timelines: policy
// actuation (allocation from the spare pool, station retirement,
// round-robin rebalance) must not introduce any run-to-run
// nondeterminism.
func TestAutoscaleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("DES run in -short mode")
	}
	tbl := autoscaleTBL(t)
	var runs [2][]store.ScaleEvent
	for i := range runs {
		c := fastCharacterizer(t)
		if err := c.RunTBL(tbl); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		runs[i] = autoscaleResult(t, c).ScaleEvents
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Errorf("DES scale events differ across runs:\n  %v\n  %v", runs[0], runs[1])
	}
}
