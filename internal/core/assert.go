package core

import (
	"fmt"
	"math"
)

// TB is the minimal testing surface AssertWithin needs. *testing.T and
// *testing.B satisfy it; keeping the interface local avoids importing
// testing into a non-test package.
type TB interface {
	Helper()
	Errorf(format string, args ...interface{})
}

// AssertWithin checks that got is within relTol relative tolerance of
// want and reports a self-contained failure message otherwise: the label,
// both values, the achieved relative error, and the allowed band. The
// reference for the relative error is want; a zero want requires an
// exactly zero got. label may be a format string with args.
func AssertWithin(t TB, got, want, relTol float64, label string, args ...interface{}) bool {
	t.Helper()
	what := fmt.Sprintf(label, args...)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("%s: got %g, want %g ± %.1f%%", what, got, want, relTol*100)
		return false
	}
	if want == 0 {
		if got != 0 {
			t.Errorf("%s: got %g, want exactly 0", what, got)
			return false
		}
		return true
	}
	rel := math.Abs(got-want) / math.Abs(want)
	if rel > relTol {
		t.Errorf("%s: got %g, want %g ± %.1f%% (off by %.1f%%)",
			what, got, want, relTol*100, rel*100)
		return false
	}
	return true
}
