package core

import (
	"fmt"
	"strings"

	"elba/internal/spec"
)

// The paper's four experiment sets (Table 3), expressed in TBL. These are
// the full-fidelity specifications; ReducedSuite shrinks them for quick
// runs and benchmarks.

// RubisBaselineJOnASTBL is the Figure 1–2 set: RUBiS on JOnAS, Emulab,
// 1-1-1, 50–250 users × 0–90% writes.
const RubisBaselineJOnASTBL = `
experiment "rubis-baseline-jonas" {
	benchmark rubis;
	platform  emulab;
	appserver jonas;
	topology  { web 1; app 1; db 1; }
	workload  { users 50 to 250 step 50; writeratio 0 to 90 step 10; }
	slo       { avg 1000ms; }
}
`

// RubisBaselineWebLogicTBL is the Figure 3 set: RUBiS on WebLogic, Warp,
// 1-1-1, 100–600 users × 0–90% writes.
const RubisBaselineWebLogicTBL = `
experiment "rubis-baseline-weblogic" {
	benchmark rubis;
	platform  warp;
	appserver weblogic;
	topology  { web 1; app 1; db 1; }
	workload  { users 100 to 600 step 50; writeratio 0 to 90 step 10; }
	slo       { avg 1000ms; }
}
`

// RubbosBaselineTBL is the Figure 4 set: RUBBoS read-only and 85/15
// mixes on Emulab, 500–5000 users.
const RubbosBaselineTBL = `
experiment "rubbos-baseline-readonly" {
	benchmark rubbos;
	platform  emulab;
	mix       read-only;
	topology  { web 1; app 1; db 1; }
	workload  { users 500 to 5000 step 500; }
}
experiment "rubbos-baseline-mix" {
	benchmark rubbos;
	platform  emulab;
	mix       submission;
	topology  { web 1; app 1; db 1; }
	workload  { users 500 to 5000 step 500; writeratio 15; }
}
`

// ScaleoutTopologies builds the paper's §V.B topology grid: 1-a-d for
// a in [minApp, maxApp], d in [1, maxDB].
func ScaleoutTopologies(minApp, maxApp, maxDB int) []spec.Topology {
	var out []spec.Topology
	for a := minApp; a <= maxApp; a++ {
		for d := 1; d <= maxDB; d++ {
			out = append(out, spec.Topology{Web: 1, App: a, DB: d})
		}
	}
	return out
}

// RubisScaleoutTBL builds the Figure 5–8 / Table 6–7 set: RUBiS on JOnAS,
// Emulab, topologies 1-a-d for a in [1,maxApp] × d in [1,maxDB], with the
// workload swept to maxUsers at 15% writes.
func RubisScaleoutTBL(maxApp, maxDB, maxUsers, step int) string {
	var tris []string
	for _, t := range ScaleoutTopologies(1, maxApp, maxDB) {
		tris = append(tris, t.String())
	}
	return fmt.Sprintf(`
experiment "rubis-scaleout-jonas" {
	benchmark rubis;
	platform  emulab;
	appserver jonas;
	topologies %s;
	workload  { users 100 to %d step %d; writeratio 15; }
	slo       { avg 1000ms; }
}
`, strings.Join(tris, ", "), maxUsers, step)
}

// PaperSuite returns the paper's four experiment sets at full fidelity.
// Running it executes every trial behind Figures 1–8 and Tables 3–7.
func PaperSuite() string {
	return RubisBaselineJOnASTBL + RubisBaselineWebLogicTBL +
		RubisScaleoutTBL(12, 3, 2900, 200) + RubbosBaselineTBL
}

// ReducedSuite returns a cut-down suite (fewer grid points, smaller
// topology envelope) whose trials keep the paper's qualitative shape;
// tests and benchmarks use it with a small TimeScale.
func ReducedSuite() string {
	return `
experiment "rubis-baseline-jonas" {
	benchmark rubis;
	platform  emulab;
	appserver jonas;
	topology  { web 1; app 1; db 1; }
	workload  { users 50 to 250 step 100; writeratio 0 to 90 step 30; }
}
experiment "rubis-baseline-weblogic" {
	benchmark rubis;
	platform  warp;
	appserver weblogic;
	topology  { web 1; app 1; db 1; }
	workload  { users 200 to 600 step 200; writeratio 0 to 90 step 30; }
}
experiment "rubis-scaleout-jonas" {
	benchmark rubis;
	platform  emulab;
	appserver jonas;
	topologies 1-1-1, 1-2-1, 1-2-2, 1-4-1, 1-8-1, 1-8-2;
	workload  { users 300 to 1900 step 400; writeratio 15; }
}
experiment "rubbos-baseline-readonly" {
	benchmark rubbos;
	platform  emulab;
	mix       read-only;
	topology  { web 1; app 1; db 1; }
	workload  { users 1000 to 5000 step 1000; }
}
experiment "rubbos-baseline-mix" {
	benchmark rubbos;
	platform  emulab;
	mix       submission;
	topology  { web 1; app 1; db 1; }
	workload  { users 1000 to 5000 step 1000; writeratio 15; }
}
`
}

// FigureOf maps the standard suite's experiment sets to the paper figure
// they feed, for Table 3 rendering.
func FigureOf(set string) string {
	switch set {
	case "rubis-baseline-jonas":
		return "Figures 1-2"
	case "rubis-baseline-weblogic":
		return "Figure 3"
	case "rubis-scaleout-jonas":
		return "Figures 5-8"
	case "rubbos-baseline-readonly", "rubbos-baseline-mix":
		return "Figure 4"
	default:
		return ""
	}
}
