package core

import (
	"strings"
	"testing"

	"elba/internal/experiment"
	"elba/internal/report"
	"elba/internal/spec"
	"elba/internal/store"
)

func fastCharacterizer(t *testing.T) *Characterizer {
	t.Helper()
	c, err := New(Options{TimeScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunTBLAccumulatesEverything(t *testing.T) {
	c := fastCharacterizer(t)
	err := c.RunTBL(`
experiment "tiny" {
	benchmark rubis; platform emulab; appserver jonas;
	topologies 1-1-1, 1-2-1;
	workload { users 100 to 200 step 100; writeratio 15; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Results().Len(); got != 4 {
		t.Fatalf("results = %d, want 4", got)
	}
	if c.CollectedBytes("tiny") == 0 {
		t.Fatalf("no monitoring bytes accounted")
	}
	rows := c.ScaleRows(FigureOf)
	if len(rows) != 1 || rows[0].Set != "tiny" {
		t.Fatalf("scale rows = %+v", rows)
	}
	if rows[0].Scale.Configurations != 2 || rows[0].Scale.ScriptLines == 0 {
		t.Fatalf("scale accounting empty: %+v", rows[0].Scale)
	}
	// Rows render into Table 3.
	if out := report.Table3Scale(rows); !strings.Contains(out, "tiny") {
		t.Fatalf("table 3 missing set:\n%s", out)
	}
}

func TestRunTBLPropagatesParseErrors(t *testing.T) {
	c := fastCharacterizer(t)
	if err := c.RunTBL(`experiment "bad" {`); err == nil {
		t.Fatalf("parse error swallowed")
	}
	if err := c.RunTBL(`experiment "bad" { benchmark nope; platform emulab; workload { users 1; } }`); err == nil {
		t.Fatalf("validation error swallowed")
	}
}

func TestGenerateBundleOnly(t *testing.T) {
	c := fastCharacterizer(t)
	doc, err := spec.Parse(RubisBaselineJOnASTBL)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.GenerateBundle(doc.Experiments[0], spec.Topology{Web: 1, App: 2, DB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Bundle == nil || d.Bundle.Len() == 0 {
		t.Fatalf("no bundle generated")
	}
	if _, ok := d.Bundle.Get("mysqldb-raidb1-elba.xml"); !ok {
		t.Fatalf("bundle missing the C-JDBC config")
	}
	// Generation-only runs record nothing.
	if c.Results().Len() != 0 {
		t.Fatalf("generation should not run trials")
	}
}

func TestPaperSuiteParses(t *testing.T) {
	doc, err := spec.Parse(PaperSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Experiments) != 5 {
		t.Fatalf("paper suite has %d experiments, want 5", len(doc.Experiments))
	}
	scaleout, ok := doc.Find("rubis-scaleout-jonas")
	if !ok {
		t.Fatalf("scale-out set missing")
	}
	// 1-a-d for a=1..12, d=1..3 → 36 configurations.
	if got := len(scaleout.AllTopologies()); got != 36 {
		t.Fatalf("scale-out topologies = %d, want 36", got)
	}
	// The full suite is big: hundreds of trials.
	total := 0
	for _, e := range doc.Experiments {
		total += e.TrialCount()
	}
	if total < 500 {
		t.Fatalf("paper suite totals %d trials; expected hundreds", total)
	}
}

func TestReducedSuiteParses(t *testing.T) {
	doc, err := spec.Parse(ReducedSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Experiments) != 5 {
		t.Fatalf("reduced suite has %d experiments", len(doc.Experiments))
	}
}

func TestScaleoutTopologies(t *testing.T) {
	topos := ScaleoutTopologies(2, 4, 2)
	if len(topos) != 6 {
		t.Fatalf("topologies = %v", topos)
	}
	if topos[0] != (spec.Topology{Web: 1, App: 2, DB: 1}) {
		t.Fatalf("first = %v", topos[0])
	}
}

func TestFigureOf(t *testing.T) {
	if FigureOf("rubis-baseline-jonas") != "Figures 1-2" || FigureOf("zzz") != "" {
		t.Fatalf("figure mapping wrong")
	}
}

func TestCapacityPlanning(t *testing.T) {
	c := fastCharacterizer(t)
	err := c.RunTBL(`
experiment "cap" {
	benchmark rubis; platform emulab; appserver jonas;
	topologies 1-1-1, 1-2-1, 1-3-1;
	workload { users 500; writeratio 15; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	// At 500 users one app server is over its session cap; 2–3 servers
	// meet a 1 s SLO. The planner must pick the smallest adequate config.
	topo, res, err := c.Capacity("cap", 500, 15, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if topo.App < 2 {
		t.Fatalf("capacity picked %s, which cannot hold 500 users", topo)
	}
	if topo.App != 2 {
		t.Fatalf("capacity picked %s; 1-2-1 should suffice (RT %.0f ms)", topo, res.AvgRTms)
	}
	// Impossible SLO errors.
	if _, _, err := c.Capacity("cap", 500, 15, 0.001); err == nil {
		t.Fatalf("impossible SLO should error")
	}
}

func TestScaleOutThroughCore(t *testing.T) {
	c := fastCharacterizer(t)
	doc, err := spec.Parse(`experiment "so" {
		benchmark rubis; platform emulab; appserver jonas;
		workload { users 100; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := c.ScaleOut(doc.Experiments[0], experiment.ScaleOutOptions{
		LoadStep: 200, MaxUsers: 400, MaxApp: 3, MaxDB: 2, SLOms: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatalf("no steps")
	}
}

func TestOnTrialForwarding(t *testing.T) {
	var seen []store.Result
	c, err := New(Options{TimeScale: 0.1, OnTrial: func(r store.Result) { seen = append(seen, r) }})
	if err != nil {
		t.Fatal(err)
	}
	err = c.RunTBL(`experiment "cb" {
		benchmark rubis; platform emulab; appserver jonas;
		workload { users 60; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("callback fired %d times", len(seen))
	}
}

// keyFor is a test helper building a store key.
func keyFor(exp, topo string, users int, wr float64) store.Key {
	return store.Key{Experiment: exp, Topology: topo, Users: users, WriteRatioPct: wr}
}
