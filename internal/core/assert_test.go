package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// recorder satisfies TB and captures failure messages.
type recorder struct {
	failures []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...interface{}) {
	r.failures = append(r.failures, fmt.Sprintf(format, args...))
}

func TestAssertWithin(t *testing.T) {
	cases := []struct {
		name       string
		got, want  float64
		relTol     float64
		ok         bool
		mentioning string
	}{
		{"inside band", 105, 100, 0.05, true, ""},
		{"exact", 100, 100, 0, true, ""},
		{"outside band", 106, 100, 0.05, false, "off by 6.0%"},
		{"below band", 94, 100, 0.05, false, "off by 6.0%"},
		{"zero want zero got", 0, 0, 0.05, true, ""},
		{"zero want nonzero got", 0.1, 0, 0.05, false, "want exactly 0"},
		{"nan got", math.NaN(), 100, 0.05, false, "got NaN"},
		{"negative values inside", -105, -100, 0.05, true, ""},
	}
	for _, c := range cases {
		rec := &recorder{}
		ok := AssertWithin(rec, c.got, c.want, c.relTol, "metric %s", "x")
		if ok != c.ok {
			t.Errorf("%s: AssertWithin = %v, want %v", c.name, ok, c.ok)
			continue
		}
		if !c.ok {
			if len(rec.failures) != 1 {
				t.Errorf("%s: recorded %d failures, want 1", c.name, len(rec.failures))
				continue
			}
			msg := rec.failures[0]
			if !strings.Contains(msg, "metric x") {
				t.Errorf("%s: failure %q does not carry the label", c.name, msg)
			}
			if c.mentioning != "" && !strings.Contains(msg, c.mentioning) {
				t.Errorf("%s: failure %q does not mention %q", c.name, msg, c.mentioning)
			}
		} else if len(rec.failures) != 0 {
			t.Errorf("%s: unexpected failures %v", c.name, rec.failures)
		}
	}
}

func TestAssertWithinSatisfiedByTestingT(t *testing.T) {
	// Compile-time check that *testing.T satisfies TB.
	var _ TB = t
	AssertWithin(t, 100, 100, 0, "identity")
}
