package core

import (
	"fmt"
	"testing"

	"elba/internal/spec"
	"elba/internal/store"
)

// TestMVACrossValidation cross-validates the DES against exact MVA on
// product-form configurations: no declared disk or network demands, so
// every tier is the CPU-only queueing station MVA solves exactly. Below
// the saturation knee the two must agree on throughput (both obey the
// closed-loop response-time law) and broadly on response time and
// bottleneck-tier utilization; systematic disagreement there would mean
// the simulator's service-demand accounting has drifted from the model.
// Table-driven over the paper's Table 2 platforms.
func TestMVACrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("DES sweep in -short mode")
	}
	cases := []struct {
		platform  string
		benchmark string
		appserver string
		users     []int
	}{
		// Emulab 1-1-1 with the slow low-end DB saturates around 250
		// users; stay below the knee.
		{"emulab", "rubis", "jonas", []int{50, 100, 150, 200}},
		// The Warp blades are dual 3.06 GHz Xeons; same workload keeps
		// comfortable headroom at these populations.
		{"warp", "rubis", "weblogic", []int{50, 100, 200}},
		// Rohan with RUBBoS' longer trial protocol.
		{"rohan", "rubbos", "tomcat", []int{50, 100, 200}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.platform, func(t *testing.T) {
			lo, hi := tc.users[0], tc.users[len(tc.users)-1]
			step := tc.users[1] - tc.users[0]
			tbl := fmt.Sprintf(`experiment "xval-%s" {
				benchmark %s; platform %s; appserver %s;
				workload { users %d to %d step %d; writeratio 15; }
			}`, tc.platform, tc.benchmark, tc.platform, tc.appserver, lo, hi, step)
			c := fastCharacterizer(t)
			if err := c.RunTBL(tbl); err != nil {
				t.Fatal(err)
			}
			doc, err := spec.Parse(tbl)
			if err != nil {
				t.Fatal(err)
			}
			e := doc.Experiments[0]
			for _, users := range tc.users {
				pred, err := c.Predict(e, spec.Topology{Web: 1, App: 1, DB: 1}, 15, users)
				if err != nil {
					t.Fatal(err)
				}
				obs, ok := c.Results().Get(store.Key{
					Experiment: e.Name, Topology: "1-1-1",
					Users: users, WriteRatioPct: 15,
				})
				if !ok {
					t.Fatalf("u=%d: observation missing", users)
				}
				if !obs.Completed {
					t.Fatalf("u=%d: trial failed: %s", users, obs.FailReason)
				}
				AssertWithin(t, pred.Throughput, obs.Throughput, 0.1,
					"u=%d throughput (predicted vs observed)", users)
				if ratio := pred.ResponseTimeMS / obs.AvgRTms; ratio < 0.4 || ratio > 2.5 {
					t.Errorf("u=%d: RT predicted %.1f ms vs observed %.1f ms",
						users, pred.ResponseTimeMS, obs.AvgRTms)
				}
				// Utilization: looser than throughput — the simulator's
				// multi-visit request path spreads work the single-visit
				// model charges entirely to the bottleneck tier, so the
				// model systematically over-predicts its utilization as
				// load grows. A relative band catches demand-accounting
				// drift without pinning that known modelling gap.
				bt := pred.BottleneckTier
				AssertWithin(t, obs.TierCPU[bt], pred.TierUtilization[bt], 0.35,
					"u=%d %s utilization (observed vs predicted)", users, bt)
			}
		})
	}
}

// TestMVACrossValidationBreaksWithDemands is the control: declaring a
// disk demand takes the configuration out of product form, and the
// CPU-only MVA prediction visibly over-predicts throughput past the
// disk knee. The cross-check above is meaningful exactly because this
// divergence exists.
func TestMVACrossValidationBreaksWithDemands(t *testing.T) {
	if testing.Short() {
		t.Skip("DES sweep in -short mode")
	}
	tbl := `experiment "xval-disk" {
		benchmark rubbos; platform emulab;
		workload { users 800; writeratio 15; }
		demands { db { disk 9ms; } }
	}`
	c := fastCharacterizer(t)
	if err := c.RunTBL(tbl); err != nil {
		t.Fatal(err)
	}
	doc, err := spec.Parse(tbl)
	if err != nil {
		t.Fatal(err)
	}
	e := doc.Experiments[0]
	pred, err := c.Predict(e, spec.Topology{Web: 1, App: 1, DB: 1}, 15, 800)
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := c.Results().Get(store.Key{
		Experiment: e.Name, Topology: "1-1-1", Users: 800, WriteRatioPct: 15,
	})
	if !ok {
		t.Fatal("observation missing")
	}
	// The CPU-only model cannot see the spindle: it should predict far
	// more throughput than the disk-bound system delivers.
	if pred.Throughput < obs.Throughput*1.5 {
		t.Fatalf("expected CPU-only MVA to over-predict: predicted %.2f vs observed %.2f",
			pred.Throughput, obs.Throughput)
	}
}
