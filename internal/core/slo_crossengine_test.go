package core

import (
	"testing"

	"elba/internal/store"
)

// sloSurgeTBL is the cross-engine SLO scenario: a flash crowd expressed
// as a population expression (100 background users, then a surge ramps
// 400 more in between t=200s and t=300s) over a database whose slow
// spindle charges 9 ms per request. The assert is evaluated every 5 s
// observation window; the pre-surge windows pass and the post-surge
// windows violate on both the disk-utilization and tail-latency terms.
func sloSurgeTBL(assert string) string {
	return `experiment "xslo-surge" { benchmark rubbos; platform emulab; appserver tomcat;
		topology { web 1; app 2; db 1; }
		workload { users clamp(100 + 400*ramp((t - 200s)/100s), 100, 500); writeratio 15; }
		demands  { db { disk 9ms; } }
		trial    { warmup 100s; run 600s; cooldown 50s; }
		slo      { assert ` + assert + `; } }`
}

func sloSurgeResult(t *testing.T, c *Characterizer) store.Result {
	t.Helper()
	r, ok := c.Results().Get(store.Key{Experiment: "xslo-surge", Topology: "1-2-1",
		Users: 100, WriteRatioPct: 15})
	if !ok {
		t.Fatal("surge result missing (grid should collapse to the t=0 population)")
	}
	return r
}

// TestSLOCrossEngineAgreement runs the surge scenario through the exact
// DES and the fluid approximation and demands the same SLO story from
// both: identical window counts (the observation cadence is protocol
// time, not engine time), a FAIL verdict on both sides with the first
// violation inside the surge, and violation totals within a few windows
// of each other — the engines may disagree about exactly when the knee
// is crossed, but not about whether or roughly how long.
func TestSLOCrossEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("DES run in -short mode")
	}
	tbl := sloSurgeTBL("p99(rt) < 1s && util(db, disk) < 0.9")
	des, fluid := runBothEngines(t, tbl)
	dr := sloSurgeResult(t, des)
	fr := sloSurgeResult(t, fluid)

	// 600 s of run at 5 s cadence: 120 windows, engine-independent.
	if dr.SLOWindows != 120 || fr.SLOWindows != 120 {
		t.Fatalf("window counts: DES %d, fluid %d, want 120 each",
			dr.SLOWindows, fr.SLOWindows)
	}
	if dr.SLOViolations == 0 || fr.SLOViolations == 0 {
		t.Fatalf("surge must violate under both engines: DES %d, fluid %d",
			dr.SLOViolations, fr.SLOViolations)
	}
	diff := dr.SLOViolations - fr.SLOViolations
	if diff < 0 {
		diff = -diff
	}
	if diff > 6 {
		t.Errorf("violation totals diverge: DES %d vs fluid %d (>6 windows apart)",
			dr.SLOViolations, fr.SLOViolations)
	}
	for name, r := range map[string]store.Result{"DES": dr, "fluid": fr} {
		first := r.SLOViolatedAt[0]
		if first < 200 || first > 350 {
			t.Errorf("%s first violation at %gs, want inside the surge [200s, 350s]",
				name, first)
		}
		if len(r.SLOViolatedAt) != r.SLOViolations {
			t.Errorf("%s recorded %d violation times for %d violations",
				name, len(r.SLOViolatedAt), r.SLOViolations)
		}
	}
}

// TestSLOCrossEngineCalm is the control: with a generous objective the
// same surge passes cleanly under both engines — violations come from
// the workload crossing the assert, not from engine noise.
func TestSLOCrossEngineCalm(t *testing.T) {
	if testing.Short() {
		t.Skip("DES run in -short mode")
	}
	tbl := sloSurgeTBL("p50(rt) < 60s && util(db, cpu) < 1.5")
	des, fluid := runBothEngines(t, tbl)
	dr := sloSurgeResult(t, des)
	fr := sloSurgeResult(t, fluid)
	if dr.SLOWindows != 120 || fr.SLOWindows != 120 {
		t.Fatalf("window counts: DES %d, fluid %d, want 120 each",
			dr.SLOWindows, fr.SLOWindows)
	}
	if dr.SLOViolations != 0 || fr.SLOViolations != 0 {
		t.Fatalf("calm assert violated: DES %d, fluid %d windows",
			dr.SLOViolations, fr.SLOViolations)
	}
}

// TestGoodputCrossEngineAgreement pins x() as one cross-engine quantity:
// goodput, successful in-deadline completions per second. The DES counts
// its OK, non-timed-out records; the fluid engine's window Requests
// already exclude rejections and timeouts. A goodput floor bisecting the
// surge (above the 100-user baseline, below the saturated 500-user
// plateau) must therefore tell the same story under both engines:
// violations from the first window, none after the surge settles, and
// totals within the same few-window tolerance the SLO battery uses.
func TestGoodputCrossEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("DES run in -short mode")
	}
	tbl := sloSurgeTBL("x() > 50")
	des, fluid := runBothEngines(t, tbl)
	dr := sloSurgeResult(t, des)
	fr := sloSurgeResult(t, fluid)
	if dr.SLOWindows != 120 || fr.SLOWindows != 120 {
		t.Fatalf("window counts: DES %d, fluid %d, want 120 each", dr.SLOWindows, fr.SLOWindows)
	}
	for name, r := range map[string]store.Result{"DES": dr, "fluid": fr} {
		if r.SLOViolations == 0 || r.SLOViolations == 120 {
			t.Fatalf("%s: %d/120 violations — the floor must bisect the surge", name, r.SLOViolations)
		}
		if first := r.SLOViolatedAt[0]; first != 0 {
			t.Errorf("%s: first violation at %gs, want the 100-user opening window", name, first)
		}
		if last := r.SLOViolatedAt[len(r.SLOViolatedAt)-1]; last > 350 {
			t.Errorf("%s: goodput still below floor at %gs, want recovery once the surge settles", name, last)
		}
	}
	diff := dr.SLOViolations - fr.SLOViolations
	if diff < 0 {
		diff = -diff
	}
	if diff > 6 {
		t.Errorf("goodput violation totals diverge: DES %d vs fluid %d (>6 windows apart)",
			dr.SLOViolations, fr.SLOViolations)
	}
}
