package core

import (
	"fmt"
	"testing"

	"elba/internal/bottleneck"
	"elba/internal/store"
)

// The fluid cross-validation battery runs every baseline and
// multi-resource specification through both engines — the exact
// per-session DES and the aggregated fluid approximation — over the same
// population sweep, and asserts agreement on the three observables the
// paper's methodology turns into decisions: throughput, median response
// time, and the bottleneck (tier, resource) verdict.
//
// Tolerance bands: throughput and p50 within 5% (crosscheckTol). Both
// engines are deterministic for a fixed spec, so a passing point stays
// passing; the band absorbs the DES's finite-window sampling noise
// (±2-3% on p50 at these run lengths) on top of the fluid model's bias
// (≤2.5% below the saturation knee).
const crosscheckTol = 0.05

// crosscheckTrial stretches the measured window so DES sampling noise
// stays well inside the band (600 s of measured run at TimeScale 0.1).
const crosscheckTrial = `trial { warmup 300s; run 6000s; cooldown 100s; }`

type crosscheckSpec struct {
	name  string
	tbl   string
	wr    float64
	users []int
}

// crosscheckSpecs is every product-form baseline plus the two
// multi-resource contention configurations from PR 4, each checked at
// four populations spanning think-dominated to near-knee operation.
func crosscheckSpecs() []crosscheckSpec {
	users := []int{50, 100, 150, 200}
	return []crosscheckSpec{
		{
			// The slow-node platform: checked up to 150 users (~62% app
			// utilization). At 200 the app tier passes 80% and the DES's
			// median wanders several percent between seeds — past the
			// envelope edge the divergence control below documents.
			name: "emulab-rubis",
			tbl: `experiment "xfluid-emulab" { benchmark rubis; platform emulab; appserver jonas;
				workload { users 50 to 200 step 50; writeratio 15; } ` + crosscheckTrial + ` }`,
			wr: 15, users: []int{50, 100, 150},
		},
		{
			name: "warp-rubis",
			tbl: `experiment "xfluid-warp" { benchmark rubis; platform warp; appserver weblogic;
				workload { users 50 to 200 step 50; writeratio 15; } ` + crosscheckTrial + ` }`,
			wr: 15, users: users,
		},
		{
			name: "rohan-rubbos",
			tbl: `experiment "xfluid-rohan" { benchmark rubbos; platform rohan; appserver tomcat;
				workload { users 50 to 200 step 50; } ` + crosscheckTrial + ` }`,
			wr: 0, users: users,
		},
		{
			name: "emulab-disk",
			tbl: `experiment "xfluid-disk" { benchmark rubbos; platform emulab; appserver tomcat;
				workload { users 50 to 200 step 50; writeratio 15; }
				demands { db { disk 9ms; } } ` + crosscheckTrial + ` }`,
			wr: 15, users: users,
		},
		{
			name: "warp-net",
			tbl: `experiment "xfluid-net" { benchmark rubis; platform warp; appserver weblogic;
				workload { users 50 to 200 step 50; writeratio 15; }
				demands { web { net 200000; } } ` + crosscheckTrial + ` }`,
			wr: 15, users: users,
		},
	}
}

// runBothEngines executes one TBL document under the exact DES and the
// fluid engine and returns both result stores.
func runBothEngines(t *testing.T, tbl string) (des, fluid *Characterizer) {
	t.Helper()
	des = fastCharacterizer(t)
	if err := des.RunTBL(tbl); err != nil {
		t.Fatalf("DES run: %v", err)
	}
	fluid, err := New(Options{TimeScale: 0.1, ScalingEngine: "fluid"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fluid.RunTBL(tbl); err != nil {
		t.Fatalf("fluid run: %v", err)
	}
	return des, fluid
}

func crosscheckKey(tbl string, sp crosscheckSpec, users int) store.Key {
	// Experiment name is the quoted token of the TBL document.
	var name string
	fmt.Sscanf(tbl, "experiment %q", &name)
	return store.Key{Experiment: name, Topology: "1-1-1", Users: users, WriteRatioPct: sp.wr}
}

// TestFluidCrossValidation is the headline battery: on every baseline
// and multi-resource spec, the fluid engine must reproduce the DES's
// throughput and median response time within crosscheckTol and its
// bottleneck verdict exactly, at every checked population.
func TestFluidCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("DES sweeps in -short mode")
	}
	for _, sp := range crosscheckSpecs() {
		sp := sp
		t.Run(sp.name, func(t *testing.T) {
			des, fluid := runBothEngines(t, sp.tbl)
			for _, u := range sp.users {
				key := crosscheckKey(sp.tbl, sp, u)
				dr, ok := des.Results().Get(key)
				if !ok {
					t.Fatalf("u=%d: DES result missing", u)
				}
				fr, ok := fluid.Results().Get(key)
				if !ok {
					t.Fatalf("u=%d: fluid result missing", u)
				}
				if fr.Engine != "fluid" {
					t.Fatalf("u=%d: engine = %q, want fluid", u, fr.Engine)
				}
				if dr.Engine != "" {
					t.Fatalf("u=%d: DES result unexpectedly tagged %q", u, dr.Engine)
				}
				AssertWithin(t, fr.Throughput, dr.Throughput, crosscheckTol,
					"%s u=%d throughput", sp.name, u)
				AssertWithin(t, fr.P50ms, dr.P50ms, crosscheckTol,
					"%s u=%d p50", sp.name, u)
				vd := bottleneck.Detect(dr, bottleneck.DefaultThresholds)
				vf := bottleneck.Detect(fr, bottleneck.DefaultThresholds)
				if vd.Tier != vf.Tier || vd.Resource != vf.Resource {
					t.Errorf("%s u=%d: verdict DES %s-%s, fluid %s-%s",
						sp.name, u, vd.Tier, vd.Resource, vf.Tier, vf.Resource)
				}
			}
		})
	}
}

// TestFluidCrossValidationDivergenceControl is the control that proves
// the battery can fail: at deep overload the two engines still agree on
// throughput, median, and verdict — the backlogged system is governed by
// capacity and Little's law, which both models share — but the upper
// tail does not. The DES's wait is a nearly deterministic backlog drain,
// while the fluid's analytic conditional wait keeps residual variance,
// so its p90 overshoots well past the agreement band. If this divergence
// ever disappears, the agreement assertions above have lost their teeth
// and the tolerance bands need re-deriving.
func TestFluidCrossValidationDivergenceControl(t *testing.T) {
	if testing.Short() {
		t.Skip("DES sweep in -short mode")
	}
	tbl := `experiment "xfluid-overload" { benchmark rubis; platform emulab; appserver jonas;
		workload { users 500; writeratio 15; } ` + crosscheckTrial + ` }`
	des, fluid := runBothEngines(t, tbl)
	key := store.Key{Experiment: "xfluid-overload", Topology: "1-1-1", Users: 500, WriteRatioPct: 15}
	dr, ok1 := des.Results().Get(key)
	fr, ok2 := fluid.Results().Get(key)
	if !ok1 || !ok2 {
		t.Fatal("overload results missing")
	}
	// Both engines must agree the configuration is saturated …
	vd := bottleneck.Detect(dr, bottleneck.DefaultThresholds)
	vf := bottleneck.Detect(fr, bottleneck.DefaultThresholds)
	if vd.Tier != vf.Tier || vd.Resource != vf.Resource {
		t.Fatalf("overload verdicts disagree: DES %s-%s, fluid %s-%s",
			vd.Tier, vd.Resource, vf.Tier, vf.Resource)
	}
	AssertWithin(t, fr.Throughput, dr.Throughput, crosscheckTol, "overload throughput")
	AssertWithin(t, fr.P50ms, dr.P50ms, crosscheckTol, "overload p50")
	// … but the p90 must NOT be within the band. A recorder stands in
	// for t so the expected failure doesn't fail this test.
	rec := &recorder{}
	if AssertWithin(rec, fr.P90ms, dr.P90ms, crosscheckTol, "overload p90") {
		t.Fatalf("expected >%.0f%% p90 divergence at deep overload, got fluid %.1f vs DES %.1f",
			crosscheckTol*100, fr.P90ms, dr.P90ms)
	}
	if len(rec.failures) != 1 {
		t.Fatalf("recorder captured %d failures, want 1", len(rec.failures))
	}
}
