package core

import (
	"math"
	"testing"

	"elba/internal/spec"
)

func TestPredictMatchesPaperKnees(t *testing.T) {
	c := fastCharacterizer(t)
	doc, err := spec.Parse(RubisBaselineJOnASTBL)
	if err != nil {
		t.Fatal(err)
	}
	e := doc.Experiments[0]

	p, err := c.Predict(e, spec.Topology{Web: 1, App: 1, DB: 1}, 15, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.BottleneckTier != "app" {
		t.Fatalf("1-1-1 bottleneck = %q, want app", p.BottleneckTier)
	}
	if p.SaturationUsers < 220 || p.SaturationUsers > 280 {
		t.Fatalf("1-1-1 N* = %g, want ≈250", p.SaturationUsers)
	}

	p81, err := c.Predict(e, spec.Topology{Web: 1, App: 8, DB: 1}, 15, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p81.BottleneckTier != "db" {
		t.Fatalf("1-8-1 bottleneck = %q, want db", p81.BottleneckTier)
	}
	if p81.SaturationUsers < 1500 || p81.SaturationUsers > 1900 {
		t.Fatalf("1-8-1 N* = %g, want ≈1700", p81.SaturationUsers)
	}
}

// TestPredictionAgreesWithObservationBelowSaturation is the paper's §I
// claim made executable: below the knee the analytical model and the
// observed system agree; the observation infrastructure can therefore
// validate (or refute) a model.
func TestPredictionAgreesWithObservationBelowSaturation(t *testing.T) {
	c := fastCharacterizer(t)
	err := c.RunTBL(`experiment "validate" {
		benchmark rubis; platform emulab; appserver jonas;
		workload { users 100; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := spec.Parse(`experiment "validate" {
		benchmark rubis; platform emulab; appserver jonas;
		workload { users 100; writeratio 15; }
	}`)
	pred, err := c.Predict(doc.Experiments[0], spec.Topology{Web: 1, App: 1, DB: 1}, 15, 100)
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := c.Results().Get(keyFor("validate", "1-1-1", 100, 15))
	if !ok {
		t.Fatal("observation missing")
	}
	// Throughput: both obey the closed-loop law; expect close agreement.
	if rel := math.Abs(pred.Throughput-obs.Throughput) / obs.Throughput; rel > 0.1 {
		t.Fatalf("throughput: predicted %.2f vs observed %.2f (%.0f%% off)",
			pred.Throughput, obs.Throughput, rel*100)
	}
	// Response time: agree within a factor ~2 at moderate load (MVA is
	// exact for exponential FCFS single-server; our multi-visit path and
	// monitor windows differ slightly).
	ratio := pred.ResponseTimeMS / obs.AvgRTms
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("response time: predicted %.1f ms vs observed %.1f ms",
			pred.ResponseTimeMS, obs.AvgRTms)
	}
	// Utilization of the bottleneck tier agrees.
	if d := math.Abs(pred.TierUtilization["app"] - obs.TierCPU["app"]); d > 15 {
		t.Fatalf("app utilization: predicted %.1f%% vs observed %.1f%%",
			pred.TierUtilization["app"], obs.TierCPU["app"])
	}
}

// TestPredictionMissesSessionCapFailure shows the flip side: MVA predicts
// a working system at 800 users on 1-2-1 where the observed trial fails —
// the paper's argument for observation over pure modelling.
func TestPredictionMissesSessionCapFailure(t *testing.T) {
	c := fastCharacterizer(t)
	tbl := `experiment "gap" {
		benchmark rubis; platform emulab; appserver jonas;
		topologies 1-2-1;
		workload { users 800; writeratio 15; }
	}`
	if err := c.RunTBL(tbl); err != nil {
		t.Fatal(err)
	}
	doc, _ := spec.Parse(tbl)
	pred, err := c.Predict(doc.Experiments[0], spec.Topology{Web: 1, App: 2, DB: 1}, 15, 800)
	if err != nil {
		t.Fatal(err)
	}
	// The model sees a saturated-but-functioning system.
	if pred.Throughput <= 0 {
		t.Fatalf("model should predict positive throughput")
	}
	obs, ok := c.Results().Get(keyFor("gap", "1-2-1", 800, 15))
	if !ok {
		t.Fatal("observation missing")
	}
	if obs.Completed {
		t.Fatalf("observed trial should fail at 800 users on 1-2-1")
	}
}

func TestPredictValidation(t *testing.T) {
	c := fastCharacterizer(t)
	doc, _ := spec.Parse(RubisBaselineJOnASTBL)
	e := doc.Experiments[0]
	if _, err := c.Predict(e, spec.Topology{Web: 1, App: 1, DB: 1}, 15, 0); err == nil {
		t.Fatalf("zero users should be rejected")
	}
	bad := *e
	bad.Allocate = map[string]string{"db": "hyper-end"}
	if _, err := c.Predict(&bad, spec.Topology{Web: 1, App: 1, DB: 1}, 15, 10); err == nil {
		t.Fatalf("unknown node type should be rejected")
	}
}
