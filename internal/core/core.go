// Package core implements the paper's primary contribution as a library:
// observation-based performance characterization of n-tier applications.
// A Characterizer takes TBL experiment specifications, generates and
// executes them with the Mulini/deploy/experiment pipeline on the
// simulated testbed, accumulates results and generation-scale accounting,
// and renders the paper's tables and figures.
package core

import (
	"context"
	"fmt"
	"sync"

	"elba/internal/cim"
	"elba/internal/experiment"
	"elba/internal/fault"
	"elba/internal/mulini"
	"elba/internal/report"
	"elba/internal/spec"
	"elba/internal/store"
)

// Options configure a Characterizer.
type Options struct {
	// TimeScale shrinks trial periods (1.0 = the paper's full protocol).
	TimeScale float64
	// Parallel runs this many deployments of each sweep concurrently
	// (default 1). OnTrial may then fire from multiple goroutines.
	Parallel int
	// TrialParallel runs this many trials within each deployment's
	// workload grid concurrently (default 1). Stored results are
	// bit-identical for every setting; see Runner.TrialParallel.
	TrialParallel int
	// Seed is an optional root seed mixed into every derived trial seed
	// (0 keeps the historical per-experiment derivation). Two runs with
	// the same Seed produce identical results; different Seeds re-run the
	// same experiments under an independent random universe.
	Seed uint64
	// FaultProfile names a built-in fault profile ("none", "light",
	// "heavy") to inject into every experiment, overriding any profile an
	// experiment declares itself. Empty defers to the TBL declarations.
	FaultProfile string
	// TrialRetries re-runs each failed workload point up to this many
	// extra times with fresh attempt-mixed seeds (0 = no retries).
	TrialRetries int
	// TraceRate head-samples this fraction of every trial's measured
	// requests into span traces (0 = tracing off).
	TraceRate float64
	// TraceExemplars is the number of slowest traces each traced trial
	// persists in full (used only when TraceRate > 0).
	TraceExemplars int
	// ScalingEngine overrides every experiment's scaling clause: "des",
	// "fluid", or "auto" (empty = defer to TBL declarations).
	ScalingEngine string
	// ScalingThreshold is the population at which ScalingEngine "auto"
	// switches trials to the fluid approximation.
	ScalingThreshold int
	// SketchRT attaches a mergeable response-time t-digest to every DES
	// trial's stored result, the per-trial summary the streaming folder
	// merges into campaign-level quantiles. Off by default; sketch-free
	// results serialize byte-identically to historical output.
	SketchRT bool
	// TrialCache, when set, memoizes every workload point by its
	// content-addressed trial key, so overlapping sweeps — within one
	// run or across runs sharing the cache — reuse prior results
	// byte-for-byte instead of re-simulating. Nil disables memoization.
	TrialCache experiment.TrialCache
	// Catalog overrides the built-in CIM resource model.
	Catalog *cim.Catalog
	// Store receives results; a fresh store is created when nil.
	Store *store.Store
	// OnTrial observes each trial result as it lands.
	OnTrial func(store.Result)
}

// Characterizer is the top-level engine.
type Characterizer struct {
	catalog *cim.Catalog
	runner  *experiment.Runner
	results *store.Store

	mu        sync.Mutex     // guards collected (OnTrial may be concurrent)
	collected map[string]int // experiment set → monitoring bytes
	scales    map[string]mulini.ScaleReport
	order     []string
}

// New creates a Characterizer.
func New(opts Options) (*Characterizer, error) {
	cat := opts.Catalog
	if cat == nil {
		var err error
		cat, err = cim.LoadCatalog()
		if err != nil {
			return nil, err
		}
	}
	st := opts.Store
	if st == nil {
		st = store.New()
	}
	runner, err := experiment.NewRunner(cat, st)
	if err != nil {
		return nil, err
	}
	if opts.TimeScale > 0 {
		runner.TimeScale = opts.TimeScale
	}
	if opts.Parallel > 0 {
		runner.Parallel = opts.Parallel
	}
	if opts.TrialParallel > 0 {
		runner.TrialParallel = opts.TrialParallel
	}
	runner.Seed = opts.Seed
	if opts.FaultProfile != "" {
		prof, ok := fault.ProfileByName(opts.FaultProfile)
		if !ok {
			return nil, fmt.Errorf("core: unknown fault profile %q (have %v)",
				opts.FaultProfile, fault.Profiles())
		}
		runner.FaultProfile = &prof
	}
	runner.TrialRetries = opts.TrialRetries
	runner.TraceRate = opts.TraceRate
	runner.TraceExemplars = opts.TraceExemplars
	runner.ScalingEngine = opts.ScalingEngine
	runner.ScalingThreshold = opts.ScalingThreshold
	runner.SketchRT = opts.SketchRT
	runner.TrialCache = opts.TrialCache
	c := &Characterizer{
		catalog:   cat,
		runner:    runner,
		results:   st,
		collected: map[string]int{},
		scales:    map[string]mulini.ScaleReport{},
	}
	runner.OnTrial = func(r store.Result) {
		c.mu.Lock()
		c.collected[r.Key.Experiment] += r.CollectedBytes
		c.mu.Unlock()
		if opts.OnTrial != nil {
			opts.OnTrial(r)
		}
	}
	return c, nil
}

// Catalog exposes the CIM catalog (Tables 1–2).
func (c *Characterizer) Catalog() *cim.Catalog { return c.catalog }

// Results exposes the accumulated result store.
func (c *Characterizer) Results() *store.Store { return c.results }

// Runner exposes the underlying experiment runner for advanced use
// (scale-out control, single trials).
func (c *Characterizer) Runner() *experiment.Runner { return c.runner }

// RunTBL parses a TBL document and runs every experiment it declares.
func (c *Characterizer) RunTBL(src string) error {
	return c.RunTBLContext(context.Background(), src)
}

// RunTBLContext is RunTBL under a cancellation context: experiments run
// in declaration order until the document is done or ctx is cancelled.
func (c *Characterizer) RunTBLContext(ctx context.Context, src string) error {
	doc, err := spec.Parse(src)
	if err != nil {
		return err
	}
	for _, e := range doc.Experiments {
		if err := c.RunExperimentContext(ctx, e); err != nil {
			return err
		}
	}
	return nil
}

// RunExperiment generates, deploys, and sweeps one experiment, recording
// both the results and the Table 3 generation accounting.
func (c *Characterizer) RunExperiment(e *spec.Experiment) error {
	return c.RunExperimentContext(context.Background(), e)
}

// RunExperimentContext is RunExperiment under a cancellation context:
// the sweep stops cleanly between trials when ctx is cancelled, keeping
// every completed trial in the store.
func (c *Characterizer) RunExperimentContext(ctx context.Context, e *spec.Experiment) error {
	deployments, err := c.runner.Generator().Generate(e)
	if err != nil {
		return err
	}
	if _, seen := c.scales[e.Name]; !seen {
		c.order = append(c.order, e.Name)
	}
	c.scales[e.Name] = mulini.Scale(e, deployments)
	return c.runner.RunExperimentContext(ctx, e)
}

// GenerateBundle renders the deployment bundle for one experiment
// topology without running it — the paper's generation-only workflow for
// inspecting scripts (Tables 4–5).
func (c *Characterizer) GenerateBundle(e *spec.Experiment, topo spec.Topology) (*mulini.Deployment, error) {
	return c.runner.Generator().GenerateOne(e, topo)
}

// ScaleOut runs the paper's §V.A observation-driven scale-out loop.
func (c *Characterizer) ScaleOut(e *spec.Experiment, opts experiment.ScaleOutOptions) ([]experiment.Step, error) {
	return c.runner.ScaleOut(e, opts)
}

// ScaleRows assembles Table 3's rows for every experiment run so far, in
// execution order.
func (c *Characterizer) ScaleRows(figureOf func(set string) string) []report.ScaleRow {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rows []report.ScaleRow
	for _, name := range c.order {
		fig := ""
		if figureOf != nil {
			fig = figureOf(name)
		}
		rows = append(rows, report.ScaleRow{
			Set:            name,
			Figure:         fig,
			Scale:          c.scales[name],
			CollectedBytes: c.collected[name],
		})
	}
	return rows
}

// CollectedBytes reports the monitoring-data volume gathered for one
// experiment set.
func (c *Characterizer) CollectedBytes(set string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.collected[set]
}

// Capacity answers the paper's §V.C capacity-planning question from
// observed data: the smallest configuration (by machine count) of
// experiment set whose observed mean response time at the given workload
// meets the SLO.
func (c *Characterizer) Capacity(set string, users int, writeRatioPct, sloMS float64) (spec.Topology, store.Result, error) {
	best := spec.Topology{}
	var bestRes store.Result
	found := false
	for _, topo := range c.results.Topologies(set) {
		r, ok := c.results.Get(store.Key{
			Experiment: set, Topology: topo,
			Users: users, WriteRatioPct: writeRatioPct,
		})
		if !ok || !r.Completed || r.AvgRTms > sloMS {
			continue
		}
		t, err := spec.ParseTopology(topo)
		if err != nil {
			continue
		}
		if !found || t.Nodes() < best.Nodes() {
			best, bestRes, found = t, r, true
		}
	}
	if !found {
		return spec.Topology{}, store.Result{}, fmt.Errorf(
			"core: no observed configuration meets %g ms at %d users (w=%g%%)", sloMS, users, writeRatioPct)
	}
	return best, bestRes, nil
}
