package core

import (
	"fmt"

	"elba/internal/cim"
	"elba/internal/experiment"
	"elba/internal/mva"
	"elba/internal/spec"
)

// Prediction is the analytical (MVA) counterpart of a trial result. The
// paper positions experimental observation as providing "validation
// points for model-based characterizations" (§I); Predict produces the
// model side of that comparison for any configuration the testbed can
// measure.
type Prediction struct {
	// ResponseTimeMS is the predicted mean response time.
	ResponseTimeMS float64
	// Throughput is the predicted rate in requests/second.
	Throughput float64
	// TierUtilization maps tier → predicted utilization percent.
	TierUtilization map[string]float64
	// BottleneckTier is the asymptotic bottleneck ("web", "app", "db").
	BottleneckTier string
	// SaturationUsers is the asymptotic knee population N*.
	SaturationUsers float64
}

// Predict solves the exact MVA model of one experiment configuration.
// The model shares the workload profile and hardware catalog with the
// simulator but knows nothing of connection pools, failures, or
// RAIDb-1 broadcast synchronization beyond its mean-demand effect — the
// gaps between Predict and the measured results are the paper's argument
// for observation.
func (c *Characterizer) Predict(e *spec.Experiment, topo spec.Topology, writeRatioPct float64, users int) (Prediction, error) {
	if users < 1 {
		return Prediction{}, fmt.Errorf("core: prediction needs at least one user")
	}
	profile, err := experiment.Model(e, writeRatioPct)
	if err != nil {
		return Prediction{}, err
	}
	speeds, err := tierSpeeds(c.catalog, e)
	if err != nil {
		return Prediction{}, err
	}
	nw, err := mva.FromProfile(profile, topo, speeds)
	if err != nil {
		return Prediction{}, err
	}
	r, err := nw.Solve(users)
	if err != nil {
		return Prediction{}, err
	}
	tiers := []string{"web", "app", "db"}
	p := Prediction{
		ResponseTimeMS:  r.ResponseTime * 1000,
		Throughput:      r.Throughput,
		TierUtilization: map[string]float64{},
		SaturationUsers: nw.SaturationPopulation(),
	}
	for i, tier := range tiers {
		p.TierUtilization[tier] = r.Utilization[i] * 100
	}
	if b := nw.BottleneckStation(); b >= 0 && b < len(tiers) {
		p.BottleneckTier = tiers[b]
	}
	return p, nil
}

// tierSpeeds resolves per-tier node characteristics from the platform
// catalog and the experiment's allocation pinning, the same information
// the deployment engine uses to allocate real (simulated) nodes.
func tierSpeeds(cat *cim.Catalog, e *spec.Experiment) (mva.TierSpeeds, error) {
	platform, ok := cat.PlatformByName(e.Platform)
	if !ok {
		return mva.TierSpeeds{}, fmt.Errorf("core: platform %q not in catalog", e.Platform)
	}
	pool := func(tier string) (cim.NodePool, error) {
		want := e.Allocate[tier]
		for _, p := range platform.Pools {
			if want == "" || p.NodeType == want {
				return p, nil
			}
		}
		return cim.NodePool{}, fmt.Errorf("core: platform %q has no %q nodes", e.Platform, want)
	}
	var out mva.TierSpeeds
	web, err := pool("web")
	if err != nil {
		return out, err
	}
	app, err := pool("app")
	if err != nil {
		return out, err
	}
	db, err := pool("db")
	if err != nil {
		return out, err
	}
	const ref = 3000
	out = mva.TierSpeeds{
		WebSpeed: float64(web.CPUMHz) / ref, WebCores: web.CPUCount,
		AppSpeed: float64(app.CPUMHz) / ref, AppCores: app.CPUCount,
		DBSpeed: float64(db.CPUMHz) / ref, DBCores: db.CPUCount,
	}
	return out, nil
}
