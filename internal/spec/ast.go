// Package spec implements TBL, the Testbed Language the paper uses as
// Mulini's input specification (§II). A TBL document declares one or more
// experiments: the benchmark and platform, the w-a-d topology, the
// workload sweep (users and write ratio), the trial protocol
// (warm-up/run/cool-down), service-level objectives, and monitoring
// configuration. "Simply updating the input TBL specification is enough"
// to reconfigure and redeploy an experiment — that property is the core
// of the automation claim, and this package is where it lives.
package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Document is a parsed TBL file.
type Document struct {
	Experiments []*Experiment
}

// Find returns the experiment with the given name.
func (d *Document) Find(name string) (*Experiment, bool) {
	for _, e := range d.Experiments {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// Range is an inclusive numeric sweep: Lo, Lo+Step, ..., Hi. A fixed
// value is expressed as Lo == Hi with Step 0.
type Range struct {
	Lo, Hi, Step float64
}

// Fixed reports whether the range is a single value.
func (r Range) Fixed() bool { return r.Lo == r.Hi }

// Values expands the range. A fixed range yields one value.
func (r Range) Values() []float64 {
	if r.Fixed() {
		return []float64{r.Lo}
	}
	var out []float64
	for v := r.Lo; v <= r.Hi+1e-9; v += r.Step {
		out = append(out, v)
	}
	return out
}

// Count reports the number of points the range expands to.
func (r Range) Count() int { return len(r.Values()) }

// String renders the range in TBL syntax.
func (r Range) String() string {
	if r.Fixed() {
		return trimFloat(r.Lo)
	}
	return fmt.Sprintf("%s to %s step %s", trimFloat(r.Lo), trimFloat(r.Hi), trimFloat(r.Step))
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// trimFixed renders f in shortest fixed-decimal notation. Unlike %g it
// never switches to exponent form, which the TBL lexer cannot tokenize —
// demand values round-trip through Parse exactly.
func trimFixed(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// Topology is the paper's w-a-d triple: replica counts per tier.
type Topology struct {
	Web, App, DB int
}

// String renders the triple the way the paper writes configurations,
// e.g. "1-8-2".
func (t Topology) String() string { return fmt.Sprintf("%d-%d-%d", t.Web, t.App, t.DB) }

// Nodes reports the number of server machines the topology occupies.
func (t Topology) Nodes() int { return t.Web + t.App + t.DB }

// Workload is the experiment's load sweep.
type Workload struct {
	// Users sweeps the concurrent-user population.
	Users Range
	// UsersExpr, when non-empty, makes the population time-varying: a
	// canonical float expression of the clock (e.g.
	// "100 + 900*ramp(t/300s)") re-evaluated every measurement window.
	// It replaces the Users sweep; the population at t=0 seeds the trial.
	UsersExpr string
	// WriteRatioPct sweeps the database write ratio in percent (0–90).
	WriteRatioPct Range
	// ThinkTimeSec overrides the benchmark's think time (0 = default).
	ThinkTimeSec float64
	// TimeoutSec is the client response timeout (0 = default 30 s).
	TimeoutSec float64
}

// Trial is the warm-up/run/cool-down protocol (paper §III.B).
type Trial struct {
	WarmupSec, RunSec, CooldownSec float64
}

// Total reports the trial's full wall-clock length in seconds.
func (t Trial) Total() float64 { return t.WarmupSec + t.RunSec + t.CooldownSec }

// SLO holds the experiment's service-level objectives in milliseconds;
// zero values are unconstrained.
type SLO struct {
	AvgMS float64
	P90MS float64
	P99MS float64
	// AssertExpr, when non-empty, is a canonical boolean expression
	// (e.g. "p99(rt) < 500ms && util(db, disk) < 0.9") checked against
	// every measurement window; windows where it fails are recorded as
	// SLO violations in the trial result.
	AssertExpr string
}

// Monitor configures the system-level monitors Mulini generates per host.
type Monitor struct {
	// IntervalSec is the sampling interval (sysstat's granularity).
	IntervalSec float64
	// Metrics lists the collected metric families: cpu, memory, network,
	// disk.
	Metrics []string
}

// Has reports whether a metric family is enabled.
func (m Monitor) Has(name string) bool {
	for _, x := range m.Metrics {
		if x == name {
			return true
		}
	}
	return false
}

// Fault schedules a fault window during each trial, for failure
// injection studies: the named role misbehaves AtSec seconds into the
// run period and recovers DurationSec later.
type Fault struct {
	// Role is the deployment role to fail, e.g. "JONAS1" or "MYSQL2".
	// Error bursts target the client driver and leave Role empty.
	Role string
	// Kind picks the fault class: "" or "crash" (the original outage),
	// "slowdown", "stall", or "errorburst".
	Kind string
	// Factor is the kind-specific intensity: the effective-speed
	// multiplier for slowdown/stall, the per-request error probability for
	// errorburst. Unused for crash.
	Factor float64
	// AtSec is the window start, in seconds from the run period's start.
	AtSec float64
	// DurationSec is the window length in seconds.
	DurationSec float64
	// WhenExpr, when non-empty, is a canonical boolean guard: the fault
	// window arms at AtSec only if the predicate has held in an observed
	// measurement window by then; otherwise it fires as soon as a later
	// window satisfies it (still running DurationSec).
	WhenExpr string
}

// ResourceDemand declares one tier's per-request demands on its node's
// contended resources beyond the benchmark's calibrated CPU demand — the
// knobs that let a spec reproduce the paper's disk- and network-bound
// knees on the low-end platforms.
type ResourceDemand struct {
	// CPUScale multiplies the benchmark's CPU demand (0 = unchanged).
	CPUScale float64
	// DiskSec is seconds of disk service per request at the reference
	// spindle (0 = no disk demand).
	DiskSec float64
	// NetBytes is the payload carried into the tier per request over its
	// ingress link, in bytes (0 = no network demand).
	NetBytes float64
}

// Zero reports whether the demand declares nothing.
func (d ResourceDemand) Zero() bool {
	return d.CPUScale == 0 && d.DiskSec == 0 && d.NetBytes == 0
}

// Scaling is the TBL `scaling` clause: per-population trial-engine
// selection. The exact DES emulates every user session individually; the
// fluid engine aggregates sessions into user-class flow dynamics so
// million-user populations cost the same as hundreds.
type Scaling struct {
	// ThresholdUsers is the population at which engine "auto" switches
	// from the DES to the fluid approximation (0 = never).
	ThresholdUsers int
	// Engine is "des", "fluid", or "auto"; empty means unset (the
	// historical DES path, with no engine recorded in results).
	Engine string
}

// EngineFor resolves the engine for a workload point: "auto" picks the
// fluid engine at or above the threshold and the DES below it.
func (s Scaling) EngineFor(users int) string {
	switch s.Engine {
	case "auto":
		if s.ThresholdUsers > 0 && users >= s.ThresholdUsers {
			return "fluid"
		}
		return "des"
	default:
		return s.Engine
	}
}

// Policy is one autoscaling rule from the TBL `policies` clause: at every
// observation-window boundary whose environment satisfies the predicate,
// the tier gains (or, for `in` policies, loses) Delta servers, subject to
// the replica bound and a per-policy cooldown. This is the actuation half
// of the paper's §V.A scale-out strategy: observe a window, decide, add a
// server — run as a mid-trial controller instead of a human in the loop.
type Policy struct {
	// Tier names the scaled tier: "web", "app", or "db".
	Tier string
	// In selects scale-in (remove servers); the default is scale-out.
	In bool
	// Delta is the number of servers added or removed per firing (≥ 1).
	Delta int
	// WhenExpr is the canonical boolean predicate evaluated against each
	// observation window, e.g. "util(app, cpu) > 0.8".
	WhenExpr string
	// CooldownSec is the minimum protocol time between firings of this
	// policy (0 = every window may fire).
	CooldownSec float64
	// Max bounds a scale-out policy's replica count (required: it sizes
	// the spare node pool the DES allocates from).
	Max int
	// Min floors a scale-in policy's replica count (default 1).
	Min int
}

// Experiment is one TBL experiment block.
type Experiment struct {
	// Name identifies the experiment set, e.g. "rubis-baseline-jonas".
	Name string
	// Benchmark is "rubis", "rubbos", or "tpcapp".
	Benchmark string
	// Platform names the hardware platform: "warp", "rohan", "emulab".
	Platform string
	// AppServer picks the application server for RUBiS ("jonas" or
	// "weblogic"); empty means the benchmark default.
	AppServer string
	// Mix selects a benchmark workload mix where applicable (RUBBoS:
	// "read-only" or "submission").
	Mix string
	// Topology is the w-a-d replica triple. When the experiment sweeps
	// topologies, Topologies holds every triple and Topology the first.
	Topology   Topology
	Topologies []Topology
	Workload   Workload
	Trial      Trial
	SLO        SLO
	Monitor    Monitor
	// Allocate maps tier name → node type for platforms with
	// heterogeneous pools (Emulab's low-end/high-end).
	Allocate map[string]string
	// Demands maps tier name → per-request resource demands (disk,
	// network, CPU scaling). Absent tiers keep the CPU-only model.
	Demands map[string]ResourceDemand
	// Scaling selects the trial engine by population: at or above the
	// threshold the runner switches from the exact per-session DES to the
	// aggregated fluid approximation.
	Scaling Scaling
	// Policies are autoscaling rules evaluated at observation-window
	// boundaries during every trial, in declaration order.
	Policies []Policy
	// Faults schedules fault windows within every trial.
	Faults []Fault
	// FaultProfile names a built-in random fault profile ("none", "light",
	// "heavy") applied on top of the explicit Faults list; empty disables.
	FaultProfile string
	// Repeat runs every workload point this many times with independent
	// seeds and stores the aggregate with confidence intervals (default 1).
	Repeat int
	// Seed makes the experiment's randomness reproducible.
	Seed uint64
}

// AllTopologies returns the experiment's topology sweep (at least one).
func (e *Experiment) AllTopologies() []Topology {
	if len(e.Topologies) > 0 {
		return e.Topologies
	}
	return []Topology{e.Topology}
}

// TrialCount reports the number of individual trials the experiment
// expands to: topologies × user points × write-ratio points.
func (e *Experiment) TrialCount() int {
	return len(e.AllTopologies()) * e.Workload.Users.Count() * e.Workload.WriteRatioPct.Count()
}

// String renders the experiment back to canonical TBL. The output
// round-trips through Parse.
func (e *Experiment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment %q {\n", e.Name)
	fmt.Fprintf(&b, "\tbenchmark %s;\n", e.Benchmark)
	fmt.Fprintf(&b, "\tplatform %s;\n", e.Platform)
	if e.AppServer != "" {
		fmt.Fprintf(&b, "\tappserver %s;\n", e.AppServer)
	}
	if e.Mix != "" {
		fmt.Fprintf(&b, "\tmix %s;\n", e.Mix)
	}
	if len(e.Topologies) > 1 {
		tris := make([]string, len(e.Topologies))
		for i, t := range e.Topologies {
			tris[i] = t.String()
		}
		fmt.Fprintf(&b, "\ttopologies %s;\n", strings.Join(tris, ", "))
	} else {
		t := e.Topology
		fmt.Fprintf(&b, "\ttopology { web %d; app %d; db %d; }\n", t.Web, t.App, t.DB)
	}
	fmt.Fprintf(&b, "\tworkload {\n")
	if e.Workload.UsersExpr != "" {
		fmt.Fprintf(&b, "\t\tusers %s;\n", e.Workload.UsersExpr)
	} else {
		fmt.Fprintf(&b, "\t\tusers %s;\n", e.Workload.Users)
	}
	if !(e.Workload.WriteRatioPct.Fixed() && e.Workload.WriteRatioPct.Lo == 0) || e.Benchmark == "rubis" {
		fmt.Fprintf(&b, "\t\twriteratio %s;\n", e.Workload.WriteRatioPct)
	}
	if e.Workload.ThinkTimeSec > 0 {
		fmt.Fprintf(&b, "\t\tthinktime %ss;\n", trimFloat(e.Workload.ThinkTimeSec))
	}
	if e.Workload.TimeoutSec > 0 {
		fmt.Fprintf(&b, "\t\ttimeout %ss;\n", trimFloat(e.Workload.TimeoutSec))
	}
	fmt.Fprintf(&b, "\t}\n")
	fmt.Fprintf(&b, "\ttrial { warmup %ss; run %ss; cooldown %ss; }\n",
		trimFloat(e.Trial.WarmupSec), trimFloat(e.Trial.RunSec), trimFloat(e.Trial.CooldownSec))
	if e.SLO != (SLO{}) {
		fmt.Fprintf(&b, "\tslo {")
		if e.SLO.AvgMS > 0 {
			fmt.Fprintf(&b, " avg %sms;", trimFloat(e.SLO.AvgMS))
		}
		if e.SLO.P90MS > 0 {
			fmt.Fprintf(&b, " p90 %sms;", trimFloat(e.SLO.P90MS))
		}
		if e.SLO.P99MS > 0 {
			fmt.Fprintf(&b, " p99 %sms;", trimFloat(e.SLO.P99MS))
		}
		if e.SLO.AssertExpr != "" {
			fmt.Fprintf(&b, " assert %s;", e.SLO.AssertExpr)
		}
		fmt.Fprintf(&b, " }\n")
	}
	fmt.Fprintf(&b, "\tmonitor { interval %ss; metrics %s; }\n",
		trimFloat(e.Monitor.IntervalSec), strings.Join(e.Monitor.Metrics, ", "))
	if len(e.Allocate) > 0 {
		fmt.Fprintf(&b, "\tallocate {")
		for _, tier := range []string{"web", "app", "db"} {
			if nt, ok := e.Allocate[tier]; ok {
				fmt.Fprintf(&b, " %s %s;", tier, nt)
			}
		}
		fmt.Fprintf(&b, " }\n")
	}
	if len(e.Demands) > 0 {
		fmt.Fprintf(&b, "\tdemands {")
		for _, tier := range []string{"web", "app", "db"} {
			d, ok := e.Demands[tier]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, " %s {", tier)
			if d.CPUScale > 0 {
				fmt.Fprintf(&b, " cpu %s;", trimFixed(d.CPUScale))
			}
			if d.DiskSec > 0 {
				// Rendered in seconds: the unit multiplier is exactly 1, so
				// the rendering re-parses to the identical float (fixpoint).
				fmt.Fprintf(&b, " disk %ss;", trimFixed(d.DiskSec))
			}
			if d.NetBytes > 0 {
				fmt.Fprintf(&b, " net %s;", trimFixed(d.NetBytes))
			}
			fmt.Fprintf(&b, " }")
		}
		fmt.Fprintf(&b, " }\n")
	}
	if e.Scaling != (Scaling{}) {
		fmt.Fprintf(&b, "\tscaling {")
		if e.Scaling.ThresholdUsers > 0 {
			fmt.Fprintf(&b, " threshold %d;", e.Scaling.ThresholdUsers)
		}
		if e.Scaling.Engine != "" {
			fmt.Fprintf(&b, " engine %s;", e.Scaling.Engine)
		}
		fmt.Fprintf(&b, " }\n")
	}
	if len(e.Policies) > 0 {
		fmt.Fprintf(&b, "\tpolicies {")
		for _, pol := range e.Policies {
			if pol.In {
				fmt.Fprintf(&b, " scale %s in by %d when %s", pol.Tier, pol.Delta, pol.WhenExpr)
			} else {
				fmt.Fprintf(&b, " scale %s by %d when %s", pol.Tier, pol.Delta, pol.WhenExpr)
			}
			if pol.CooldownSec > 0 {
				fmt.Fprintf(&b, " cooldown %ss", trimFloat(pol.CooldownSec))
			}
			if pol.In {
				if pol.Min > 0 {
					fmt.Fprintf(&b, " min %d", pol.Min)
				}
			} else if pol.Max > 0 {
				fmt.Fprintf(&b, " max %d", pol.Max)
			}
			b.WriteString(";")
		}
		fmt.Fprintf(&b, " }\n")
	}
	if len(e.Faults) > 0 || e.FaultProfile != "" {
		fmt.Fprintf(&b, "\tfaults {")
		if e.FaultProfile != "" {
			fmt.Fprintf(&b, " profile %s;", e.FaultProfile)
		}
		for _, f := range e.Faults {
			switch f.Kind {
			case "", "crash":
				fmt.Fprintf(&b, " %s at %ss for %ss", f.Role, trimFloat(f.AtSec), trimFloat(f.DurationSec))
			case "errorburst":
				fmt.Fprintf(&b, " client errorburst %s at %ss for %ss",
					trimFloat(f.Factor), trimFloat(f.AtSec), trimFloat(f.DurationSec))
			default:
				fmt.Fprintf(&b, " %s %s %s at %ss for %ss",
					f.Role, f.Kind, trimFloat(f.Factor), trimFloat(f.AtSec), trimFloat(f.DurationSec))
			}
			if f.WhenExpr != "" {
				fmt.Fprintf(&b, " when %s", f.WhenExpr)
			}
			b.WriteString(";")
		}
		fmt.Fprintf(&b, " }\n")
	}
	if e.Repeat > 1 {
		fmt.Fprintf(&b, "\trepeat %d;\n", e.Repeat)
	}
	if e.Seed != 0 {
		fmt.Fprintf(&b, "\tseed %d;\n", e.Seed)
	}
	fmt.Fprintf(&b, "}\n")
	return b.String()
}
