package spec

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseTBL fuzzes the TBL front end: the parser and validator must
// never panic or hang on arbitrary input, and anything they accept must
// re-parse from its own String() rendering to the same rendering (the
// printer is a fixpoint). The committed specs seed the corpus with every
// construct the grammar supports.
func FuzzParseTBL(f *testing.F) {
	seeds, err := filepath.Glob("../../specs/*.tbl")
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no seed specs found under specs/")
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add(`experiment "x" { benchmark rubis; platform emulab;
		workload { users 1 to 10 step 1; writeratio 5; }
		faults { profile light; client errorburst 0.5 at 10s for 10s; } }`)
	f.Add(`experiment "y" { benchmark rubbos; platform emulab;
		workload { users 100; writeratio 15; }
		demands { web { net 1500; } app { cpu 1.5; } db { cpu 0.5; disk 9ms; net 600; } } }`)
	f.Add(`experiment "z" { benchmark rubbos; platform rohan;
		workload { users 100 to 100000 step 100; }
		scaling { threshold 5000; engine auto; } }`)
	f.Add(`experiment "e" { benchmark rubbos; platform rohan;
		workload { users 100 + 900*ramp(t/300s); }
		slo { p99 500ms; assert p99(rt) < 500ms && util(db, disk) < 0.9; } }`)
	f.Add(`experiment "w" { benchmark rubis; platform warp;
		workload { users min(50 + 50*sin(t/60s), 200); }
		trial { warmup 60s; run 300s; cooldown 60s; }
		faults { JONAS1 at 100s for 60s when util(app, cpu) > 0.8;
			MYSQL1 slowdown 0.5 at 80s for 30s when x() > 100; } }`)
	f.Add(`experiment "q" { benchmark rubis; platform warp;
		workload { users clamp(1000*ramp(t/120s), 10, 800); }
		slo { assert !(p90(rt) > 250ms) || x() < 1; } }`)

	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics and hangs are not
		}
		for _, e := range doc.Experiments {
			rendered := e.String()
			re, err := Parse(rendered)
			if err != nil {
				t.Fatalf("accepted experiment does not re-parse: %v\n--- rendering ---\n%s", err, rendered)
			}
			if len(re.Experiments) != 1 {
				t.Fatalf("rendering parsed to %d experiments:\n%s", len(re.Experiments), rendered)
			}
			if again := re.Experiments[0].String(); again != rendered {
				t.Fatalf("String() not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", rendered, again)
			}
		}
	})
}
