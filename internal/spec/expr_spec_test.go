package spec

import (
	"strings"
	"testing"
)

func TestParseUsersExpr(t *testing.T) {
	e := parseOne(t, `experiment "x" { benchmark rubis; platform warp;
		workload { users 100 + 900*ramp(t/300s); } }`)
	if got, want := e.Workload.UsersExpr, "100 + 900*ramp(t/300s)"; got != want {
		t.Fatalf("UsersExpr = %q, want %q", got, want)
	}
	// The static sweep stays zero; the expression owns the population.
	if e.Workload.Users != (Range{}) {
		t.Fatalf("static Users range set alongside expression: %+v", e.Workload.Users)
	}
}

func TestParseUsersStaticStaysRange(t *testing.T) {
	for _, src := range []string{"users 100;", "users 100 to 1000 step 100;"} {
		e := parseOne(t, `experiment "x" { benchmark rubis; platform warp;
			workload { `+src+` } }`)
		if e.Workload.UsersExpr != "" {
			t.Fatalf("%s: static users parsed as expression %q", src, e.Workload.UsersExpr)
		}
		if e.Workload.Users.Lo != 100 {
			t.Fatalf("%s: Users.Lo = %g", src, e.Workload.Users.Lo)
		}
	}
}

func TestParseSLOAssert(t *testing.T) {
	e := parseOne(t, `experiment "x" { benchmark rubis; platform warp;
		workload { users 100; }
		slo { p99 500ms; assert p99(rt) < 500ms && util(db, disk) < 0.9; } }`)
	if got, want := e.SLO.AssertExpr, "p99(rt) < 500ms && util(db, disk) < 0.9"; got != want {
		t.Fatalf("AssertExpr = %q, want %q", got, want)
	}
	if e.SLO.P99MS != 500 {
		t.Fatalf("threshold SLO lost alongside assert: %+v", e.SLO)
	}
}

func TestParseFaultWhenGuard(t *testing.T) {
	e := parseOne(t, `experiment "x" { benchmark rubis; platform warp;
		workload { users 100; }
		faults { JONAS1 at 100s for 60s when util(app, cpu) > 0.8;
			MYSQL1 slowdown 0.5 at 80s for 30s; } }`)
	if got, want := e.Faults[0].WhenExpr, "util(app, cpu) > 0.8"; got != want {
		t.Fatalf("WhenExpr = %q, want %q", got, want)
	}
	if e.Faults[1].WhenExpr != "" {
		t.Fatalf("unguarded fault grew a guard: %q", e.Faults[1].WhenExpr)
	}
}

func TestExprClausesRoundTrip(t *testing.T) {
	src := `experiment "x" { benchmark rubis; platform warp;
		workload { users 100 + 900*ramp(t/300s); }
		slo { assert p99(rt) < 500ms; }
		faults { JONAS1 at 100s for 60s when util(app, cpu) > 0.8; } }`
	e := parseOne(t, src)
	rendered := e.String()
	re := parseOne(t, rendered)
	if again := re.String(); again != rendered {
		t.Fatalf("String() not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", rendered, again)
	}
	if re.Workload.UsersExpr != e.Workload.UsersExpr ||
		re.SLO.AssertExpr != e.SLO.AssertExpr ||
		re.Faults[0].WhenExpr != e.Faults[0].WhenExpr {
		t.Fatalf("expressions changed across round-trip: %+v vs %+v", re, e)
	}
}

// TestExprClauseCanonicalized pins canonicalization: the stored source
// is the expression printer's output, whatever spacing the spec used.
func TestExprClauseCanonicalized(t *testing.T) {
	e := parseOne(t, `experiment "x" { benchmark rubis; platform warp;
		workload { users ((100))+900 * ramp( t / 300s ); } }`)
	if got, want := e.Workload.UsersExpr, "100 + 900*ramp(t/300s)"; got != want {
		t.Fatalf("UsersExpr = %q, want %q", got, want)
	}
}

func TestExprClauseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"users type", `experiment "x" { benchmark rubis; platform warp;
			workload { users p99(rt) < 1s; } }`, "must be float, got bool"},
		{"users unknown var", `experiment "x" { benchmark rubis; platform warp;
			workload { users 100 + load; } }`, "unknown variable"},
		{"users duration", `experiment "x" { benchmark rubis; platform warp;
			workload { users t + 100s; } }`, "must be float, got duration"},
		{"assert type", `experiment "x" { benchmark rubis; platform warp;
			workload { users 1; } slo { assert 1 + 2; } }`, "must be bool, got float"},
		{"assert unit mismatch", `experiment "x" { benchmark rubis; platform warp;
			workload { users 1; } slo { assert p99(rt) < 0.5; } }`, "matching"},
		{"duplicate assert", `experiment "x" { benchmark rubis; platform warp;
			workload { users 1; } slo { assert x() > 1; assert x() < 9; } }`, "already has an assert"},
		{"when type", `experiment "x" { benchmark rubis; platform warp;
			workload { users 1; } faults { JONAS1 at 1s for 1s when t; } }`, "must be bool, got duration"},
		{"missing semicolon", `experiment "x" { benchmark rubis; platform warp;
			workload { users 100 + 900*ramp(t/300s) } }`, "missing ';'"},
		{"zero at t0", `experiment "x" { benchmark rubis; platform warp;
			workload { users 1000*ramp(t/300s); } }`, "at t=0"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err.Error(), c.want)
		}
	}
}

// TestExprErrorPositions pins that expression errors surface with the
// document's line and column, not the captured span's.
func TestExprErrorPositions(t *testing.T) {
	src := `experiment "x" {
	benchmark rubis;
	platform warp;
	workload { users 100 + bogus; }
}`
	_, err := Parse(src)
	if err == nil {
		t.Fatal("accepted spec with bad users expression")
	}
	// "bogus" sits on line 4; the column points at the identifier itself
	// (col 25: `	workload { users 100 + bogus; }` with a leading tab).
	if !strings.Contains(err.Error(), "line 4:25") {
		t.Fatalf("error %q does not carry document position line 4:25", err.Error())
	}
}

// TestExactTokenErrorPositions is the regression battery for the
// positioned-error fix: the reported line must be the offending token's
// own line even when the parser has already consumed it, or when the
// value after an unknown key would otherwise be blamed.
func TestExactTokenErrorPositions(t *testing.T) {
	cases := []struct {
		name, src, wantPos string
	}{
		{"unknown clause at EOL", `experiment "x" {
	frobnicate
	y; }`, "line 2:2"},
		{"unknown trial key before value", `experiment "x" { benchmark rubis; platform warp;
	workload { users 1; }
	trial { rampup 60s; } }`, "line 3:10"},
		{"unknown slo key before value", `experiment "x" { benchmark rubis; platform warp;
	workload { users 1; }
	slo { p95 100ms; } }`, "line 3:8"},
		{"unknown topology tier before count", `experiment "x" { benchmark rubis; platform warp;
	topology { cache 1; }
	workload { users 1; } }`, "line 2:13"},
		{"unknown workload key", `experiment "x" { benchmark rubis; platform warp;
	workload { population
	100; } }`, "line 2:13"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantPos) {
			t.Errorf("%s: error %q does not point at %s", c.name, err.Error(), c.wantPos)
		}
	}
}
