package spec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCanonicalHashRoundTripsShippedSpecs pins the canonical hash
// against drift: for every spec under specs/, String() must re-parse to
// an experiment whose rendering — and therefore whose hash — is
// byte-identical. A parser or String change that breaks the fixpoint
// would silently split the campaign cache's address space; this test
// makes it loud instead.
func TestCanonicalHashRoundTripsShippedSpecs(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.tbl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no shipped specs found under specs/")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := Parse(string(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, e := range doc.Experiments {
			canon := e.String()
			doc2, err := Parse(canon)
			if err != nil {
				t.Fatalf("%s/%s: canonical form does not re-parse: %v", path, e.Name, err)
			}
			e2, ok := doc2.Find(e.Name)
			if !ok {
				t.Fatalf("%s/%s: experiment lost in round trip", path, e.Name)
			}
			if got := e2.String(); got != canon {
				t.Fatalf("%s/%s: String not a fixpoint:\nfirst:\n%s\nsecond:\n%s",
					path, e.Name, canon, got)
			}
			if e2.CanonicalHash() != e.CanonicalHash() {
				t.Fatalf("%s/%s: hash changed across a round trip", path, e.Name)
			}
			if e2.TrialHash() != e.TrialHash() {
				t.Fatalf("%s/%s: trial hash changed across a round trip", path, e.Name)
			}
		}
	}
}

// hashBase is a minimal experiment every optional clause can be toggled
// onto.
const hashBase = `experiment "hash-base" {
	benchmark rubis; platform emulab; appserver jonas;
	workload { users 100 to 500 step 100; writeratio 15; }
}`

// TestCanonicalHashDistinguishesClauses toggles each optional clause on
// the base experiment and asserts every variant hashes differently from
// the base and from every other variant: semantically distinct specs
// must not collide into one cache address.
func TestCanonicalHashDistinguishesClauses(t *testing.T) {
	variants := map[string]string{
		"base": hashBase,
		"appserver": strings.Replace(hashBase, "appserver jonas;",
			"appserver weblogic;", 1),
		"mix": strings.Replace(
			strings.Replace(hashBase, "benchmark rubis; platform emulab; appserver jonas;",
				"benchmark rubbos; platform emulab; mix read-only;", 1),
			"writeratio 15;", "", 1),
		"topology": strings.Replace(hashBase, "workload",
			"topology { web 1; app 2; db 1; }\nworkload", 1),
		"topologies": strings.Replace(hashBase, "workload",
			"topologies 1-1-1, 1-2-1;\nworkload", 1),
		"users": strings.Replace(hashBase, "users 100 to 500 step 100;",
			"users 100 to 600 step 100;", 1),
		"usersexpr": strings.Replace(hashBase, "users 100 to 500 step 100;",
			"users 100 + 400*ramp(t/300s);", 1),
		"writeratio": strings.Replace(hashBase, "writeratio 15;",
			"writeratio 25;", 1),
		"thinktime": strings.Replace(hashBase, "writeratio 15;",
			"writeratio 15; thinktime 5s;", 1),
		"timeout": strings.Replace(hashBase, "writeratio 15;",
			"writeratio 15; timeout 20s;", 1),
		"trial": strings.Replace(hashBase, "workload",
			"trial { warmup 60s; run 300s; cooldown 30s; }\nworkload", 1),
		"slo": strings.Replace(hashBase, "workload",
			"slo { avg 500ms; }\nworkload", 1),
		"sloassert": strings.Replace(hashBase, "workload",
			"slo { assert p99(rt) < 1s; }\nworkload", 1),
		"monitor": strings.Replace(hashBase, "workload",
			"monitor { interval 5s; metrics cpu, disk; }\nworkload", 1),
		"allocate": strings.Replace(hashBase, "workload",
			"allocate { db high-end; }\nworkload", 1),
		"demands": strings.Replace(hashBase, "workload",
			"demands { db { disk 0.004s; } }\nworkload", 1),
		"scaling": strings.Replace(hashBase, "workload",
			"scaling { threshold 10000; engine auto; }\nworkload", 1),
		"policies": strings.Replace(hashBase, "workload",
			"policies { scale app by 1 when util(app, cpu) > 0.8 max 4; }\nworkload", 1),
		"faults": strings.Replace(hashBase, "workload",
			"faults { JONAS1 at 60s for 30s; }\nworkload", 1),
		"faultprofile": strings.Replace(hashBase, "workload",
			"faults { profile light; }\nworkload", 1),
		"repeat": strings.Replace(hashBase, "workload",
			"repeat 3;\nworkload", 1),
		"seed": strings.Replace(hashBase, "workload",
			"seed 42;\nworkload", 1),
		"name": strings.Replace(hashBase, `"hash-base"`, `"hash-base-2"`, 1),
	}
	hashes := map[string]string{}
	for name, src := range variants {
		doc, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h := doc.Experiments[0].CanonicalHash()
		for other, oh := range hashes {
			if oh == h {
				t.Errorf("variants %q and %q collide on %s", name, other, h)
			}
		}
		hashes[name] = h
	}
}

// TestTrialHashIgnoresSweptAxes is the cache-key contract: sweeps that
// differ only in their grids (user range, write-ratio range, topology
// list) share a trial hash, because a trial at any shared coordinate is
// byte-identical between them. Clauses that reach the trial itself must
// still split the hash.
func TestTrialHashIgnoresSweptAxes(t *testing.T) {
	hash := func(src string) string {
		t.Helper()
		doc, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return doc.Experiments[0].TrialHash()
	}
	base := hash(hashBase)
	same := map[string]string{
		"wider users": strings.Replace(hashBase, "users 100 to 500 step 100;",
			"users 200 to 900 step 50;", 1),
		"fixed users": strings.Replace(hashBase, "users 100 to 500 step 100;",
			"users 300;", 1),
		"other writeratio": strings.Replace(hashBase, "writeratio 15;",
			"writeratio 5 to 25 step 10;", 1),
		"explicit topology": strings.Replace(hashBase, "workload",
			"topology { web 1; app 4; db 2; }\nworkload", 1),
		"topology sweep": strings.Replace(hashBase, "workload",
			"topologies 1-1-1, 1-2-1, 1-4-2;\nworkload", 1),
	}
	for name, src := range same {
		if h := hash(src); h != base {
			t.Errorf("%s: trial hash %s should match base %s", name, h, base)
		}
	}
	different := map[string]string{
		"name": strings.Replace(hashBase, `"hash-base"`, `"other"`, 1),
		"seed": strings.Replace(hashBase, "workload", "seed 7;\nworkload", 1),
		"thinktime": strings.Replace(hashBase, "writeratio 15;",
			"writeratio 15; thinktime 9s;", 1),
		"trial protocol": strings.Replace(hashBase, "workload",
			"trial { warmup 30s; run 120s; cooldown 15s; }\nworkload", 1),
		"demands": strings.Replace(hashBase, "workload",
			"demands { db { disk 0.004s; } }\nworkload", 1),
		"users expression": strings.Replace(hashBase, "users 100 to 500 step 100;",
			"users 100 + 400*ramp(t/300s);", 1),
		"repeat": strings.Replace(hashBase, "workload", "repeat 3;\nworkload", 1),
	}
	for name, src := range different {
		if h := hash(src); h == base {
			t.Errorf("%s: trial hash must differ from base", name)
		}
	}
}
