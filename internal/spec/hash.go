package spec

import (
	"crypto/sha256"
	"encoding/hex"
)

// CanonicalHash is the content address of an experiment: the SHA-256 of
// its canonical TBL rendering (String), in hex. Two experiments hash
// equal exactly when their canonical renderings are byte-identical, so
// the hash survives any round trip through Parse — reformatting,
// comment changes, and clause reordering in the source text all
// disappear in the canonical form, while toggling any clause that
// changes the experiment's meaning changes the hash.
func (e *Experiment) CanonicalHash() string {
	sum := sha256.Sum256([]byte(e.String()))
	return hex.EncodeToString(sum[:])
}

// TrialInvariant returns a copy of e with the swept axes cleared: the
// topology list and the users / write-ratio ranges, which parameterize
// *which* trials a sweep runs but never *what any one trial measures*.
// A trial is a pure function of (TrialInvariant, topology, users, write
// ratio, seed) — the determinism property the parallel runner pins —
// so two sweeps whose invariant forms match may share per-trial results
// at overlapping coordinates, whatever their grids looked like.
//
// Everything else stays: the experiment name and seed (both mixed into
// every derived trial seed), think time, trial protocol, SLOs,
// monitoring, demands, scaling, policies, faults, and a time-varying
// users expression (which shapes the trial itself, not the grid).
func (e *Experiment) TrialInvariant() Experiment {
	inv := *e
	inv.Topology = Topology{}
	inv.Topologies = nil
	inv.Workload.Users = Range{}
	inv.Workload.WriteRatioPct = Range{}
	return inv
}

// TrialHash is the content address of everything about an experiment
// that reaches an individual trial: CanonicalHash over the
// TrialInvariant form. It is the spec component of a memoized trial's
// cache key — overlapping sweeps and re-anchored knee searches of the
// same experiment agree on it, while any change that could alter a
// trial's bytes (name, seed, protocol, demands, faults, ...) does not.
func (e *Experiment) TrialHash() string {
	inv := e.TrialInvariant()
	return inv.CanonicalHash()
}
