package spec

import (
	"strings"
	"testing"
)

// TestParseTypedFaults covers the extended fault grammar: explicit crash,
// slowdown/stall with a speed factor, client error bursts, and the
// profile reference — all of which must survive a String() round trip.
func TestParseTypedFaults(t *testing.T) {
	e := parseOne(t, `experiment "f" {
		benchmark rubis; platform emulab;
		workload { users 100; writeratio 15; }
		trial { warmup 60s; run 300s; cooldown 60s; }
		faults {
			profile light;
			JONAS1 crash at 100s for 60s;
			MYSQL1 slowdown 0.5 at 80s for 30s;
			MYSQL1 stall 0.05 at 120s for 20s;
			client errorburst 0.2 at 150s for 30s;
		}
	}`)
	if e.FaultProfile != "light" {
		t.Fatalf("profile = %q", e.FaultProfile)
	}
	want := []Fault{
		{Role: "JONAS1", AtSec: 100, DurationSec: 60}, // crash normalizes to ""
		{Role: "MYSQL1", Kind: "slowdown", Factor: 0.5, AtSec: 80, DurationSec: 30},
		{Role: "MYSQL1", Kind: "stall", Factor: 0.05, AtSec: 120, DurationSec: 20},
		{Kind: "errorburst", Factor: 0.2, AtSec: 150, DurationSec: 30},
	}
	if len(e.Faults) != len(want) {
		t.Fatalf("faults = %+v", e.Faults)
	}
	for i, w := range want {
		if e.Faults[i] != w {
			t.Errorf("fault[%d] = %+v, want %+v", i, e.Faults[i], w)
		}
	}
	re := parseOne(t, e.String())
	if re.FaultProfile != "light" || len(re.Faults) != len(want) {
		t.Fatalf("round trip lost faults: profile=%q faults=%+v", re.FaultProfile, re.Faults)
	}
	for i, w := range want {
		if re.Faults[i] != w {
			t.Errorf("round-tripped fault[%d] = %+v, want %+v", i, re.Faults[i], w)
		}
	}
}

// TestTypedFaultErrors rejects the new grammar's invalid spellings with
// messages that name the problem.
func TestTypedFaultErrors(t *testing.T) {
	wrap := func(faults string) string {
		return `experiment "f" { benchmark rubis; platform emulab;
			workload { users 1; } trial { warmup 1s; run 300s; cooldown 1s; }
			faults { ` + faults + ` } }`
	}
	cases := []struct{ name, faults, want string }{
		{"unknown kind", `JONAS1 meltdown 0.5 at 10s for 10s;`, "unknown fault kind"},
		{"errorburst on a server role", `JONAS1 errorburst 0.2 at 10s for 10s;`, "client"},
		{"slowdown factor zero", `JONAS1 slowdown 0 at 10s for 10s;`, "factor in (0, 1)"},
		{"slowdown factor one", `JONAS1 slowdown 1 at 10s for 10s;`, "factor in (0, 1)"},
		{"stall factor above one", `MYSQL1 stall 1.5 at 10s for 10s;`, "factor in (0, 1)"},
		{"burst probability above one", `client errorburst 1.5 at 10s for 10s;`, "(0, 1]"},
		{"unknown profile", `profile catastrophic;`, "unknown fault profile"},
		{"typed fault past run period", `JONAS1 stall 0.5 at 290s for 20s;`, "past the run period"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(wrap(c.faults))
			if err == nil {
				t.Fatalf("accepted %q", c.faults)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestProfileOnlyFaultStanza allows a stanza that names a profile without
// any explicit windows, and renders it back.
func TestProfileOnlyFaultStanza(t *testing.T) {
	e := parseOne(t, `experiment "f" {
		benchmark rubis; platform emulab;
		workload { users 10; }
		faults { profile heavy; }
	}`)
	if e.FaultProfile != "heavy" || len(e.Faults) != 0 {
		t.Fatalf("profile=%q faults=%v", e.FaultProfile, e.Faults)
	}
	if !strings.Contains(e.String(), "profile heavy;") {
		t.Fatalf("String() lost the profile:\n%s", e.String())
	}
	if re := parseOne(t, e.String()); re.FaultProfile != "heavy" {
		t.Fatalf("round trip lost the profile: %q", re.FaultProfile)
	}
}

// TestWorkloadRangeCardinalityBounded pins the sweep-size guard: a range
// that would expand to millions of grid points is rejected during
// validation instead of exhausting memory (found by the TBL fuzzer).
func TestWorkloadRangeCardinalityBounded(t *testing.T) {
	_, err := Parse(`experiment "huge" {
		benchmark rubis; platform emulab;
		workload { users 1 to 100000000 step 1; }
	}`)
	if err == nil {
		t.Fatal("hundred-million-point sweep accepted")
	}
	if !strings.Contains(err.Error(), "expands to") {
		t.Fatalf("error does not explain the bound: %v", err)
	}
	// A legal dense range well under the cap still parses.
	e := parseOne(t, `experiment "ok" {
		benchmark rubis; platform emulab;
		workload { users 1 to 5000 step 1; }
	}`)
	if got := e.Workload.Users.Count(); got != 5000 {
		t.Fatalf("users count = %d", got)
	}
}
