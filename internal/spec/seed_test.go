package spec

import (
	"strings"
	"testing"
)

// TestSeedParsesExactly guards against float64 rounding: seeds above 2^53
// must survive parse → String → parse bit-for-bit (found by the TBL
// fuzzer via the committed fault-injection spec's 59-bit seed).
func TestSeedParsesExactly(t *testing.T) {
	// Seed 0 is excluded: it means "unset" and gets a derived default.
	for _, seed := range []uint64{1, 1 << 53, (1 << 53) + 3,
		359868315653767747, 18446744073709551615} {
		src := `experiment "s" { benchmark rubis; platform emulab;
			workload { users 1; } seed ` + strings.TrimSpace(uitoa(seed)) + `; }`
		e := parseOne(t, src)
		if e.Seed != seed {
			t.Errorf("seed %d parsed as %d", seed, e.Seed)
		}
		if re := parseOne(t, e.String()); re.Seed != seed {
			t.Errorf("seed %d round-tripped as %d", seed, re.Seed)
		}
	}
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestSeedRejectsNonInteger(t *testing.T) {
	for _, bad := range []string{"seed 1.5;", "seed -1;", "seed 18446744073709551616;"} {
		_, err := Parse(`experiment "s" { benchmark rubis; platform emulab;
			workload { users 1; } ` + bad + ` }`)
		if err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
