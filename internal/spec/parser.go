package spec

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"elba/internal/expr"
)

// tokKind classifies TBL lexemes.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber // may carry a unit suffix: 60s, 300ms, 50
	tPunct
)

type tok struct {
	kind tokKind
	text string
	line int
	col  int // 1-based column of the token's first byte
	off  int // byte offset of the token's first byte in the document
}

type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int // byte offset of the current line's first byte
}

// col reports the 1-based column of a byte offset on the current line.
func (l *lexer) colAt(off int) int { return off - l.lineStart + 1 }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("tbl: line %d:%d: %s", l.line, l.colAt(l.pos), fmt.Sprintf(format, args...))
}

func (l *lexer) next() (tok, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
			l.lineStart = l.pos
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.scan()
		}
	}
	return tok{kind: tEOF, line: l.line, col: l.colAt(l.pos), off: l.pos}, nil
}

func (l *lexer) scan() (tok, error) {
	c := l.src[l.pos]
	start := l.pos
	line, col := l.line, l.colAt(start)
	mk := func(kind tokKind, text string) tok {
		return tok{kind: kind, text: text, line: line, col: col, off: start}
	}
	switch {
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				return tok{}, l.errf("newline in string")
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return tok{}, l.errf("unterminated string")
		}
		l.pos++
		return mk(tString, l.src[start+1:l.pos-1]), nil
	case unicode.IsDigit(rune(c)):
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
			l.pos++
		}
		// absorb dash-joined digit groups so topology triples like
		// "1-8-2" stay one token
		for l.pos+1 < len(l.src) && l.src[l.pos] == '-' && unicode.IsDigit(rune(l.src[l.pos+1])) {
			l.pos++
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
		}
		// absorb a unit suffix (s, ms, %)
		for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || l.src[l.pos] == '%') {
			l.pos++
		}
		return mk(tNumber, l.src[start:l.pos]), nil
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_' || l.src[l.pos] == '-') {
			l.pos++
		}
		return mk(tIdent, l.src[start:l.pos]), nil
	case strings.ContainsRune("{};,", rune(c)):
		l.pos++
		return mk(tPunct, string(c)), nil
	default:
		return tok{}, l.errf("unexpected character %q", c)
	}
}

type parser struct {
	lx   *lexer
	tok  tok
	last tok // most recently consumed token, for exact-position errors
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.last = p.tok
	p.tok = t
	return nil
}

// errf reports an error at the current (unconsumed) token.
func (p *parser) errf(format string, args ...interface{}) error {
	return errTok(p.tok, format, args...)
}

// errLast reports an error at the most recently consumed token. Use it
// when the token itself is the problem ("unknown clause %q") and the
// parser has already advanced past it — reporting the current token
// would point at whatever happens to follow, often on the wrong line.
func (p *parser) errLast(format string, args ...interface{}) error {
	return errTok(p.last, format, args...)
}

// errTok reports an error positioned at a specific token.
func errTok(t tok, format string, args ...interface{}) error {
	return fmt.Errorf("tbl: line %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tPunct || p.tok.text != s {
		return p.errf("expected %q, found %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf("expected identifier, found %q", p.tok.text)
	}
	s := p.tok.text
	return s, p.advance()
}

// number parses a bare number (no unit).
func (p *parser) number() (float64, error) {
	if p.tok.kind != tNumber {
		return 0, p.errf("expected number, found %q", p.tok.text)
	}
	v, err := strconv.ParseFloat(p.tok.text, 64)
	if err != nil {
		return 0, p.errf("invalid number %q (unit not allowed here)", p.tok.text)
	}
	return v, p.advance()
}

// uint64Number parses an exact unsigned integer. Seeds need this: going
// through float64 silently rounds values above 2^53.
func (p *parser) uint64Number() (uint64, error) {
	if p.tok.kind != tNumber {
		return 0, p.errf("expected integer, found %q", p.tok.text)
	}
	v, err := strconv.ParseUint(p.tok.text, 10, 64)
	if err != nil {
		return 0, p.errf("invalid integer %q", p.tok.text)
	}
	return v, p.advance()
}

// duration parses a number with an s or ms unit into seconds.
func (p *parser) duration() (float64, error) {
	if p.tok.kind != tNumber {
		return 0, p.errf("expected duration, found %q", p.tok.text)
	}
	text := p.tok.text
	var div float64
	var digits string
	switch {
	case strings.HasSuffix(text, "ms"):
		// Divide rather than multiply by an inexact 1e-3: division rounds
		// correctly, so 9ms parses to the double nearest 0.009 and renders
		// back without float dust.
		div, digits = 1e3, strings.TrimSuffix(text, "ms")
	case strings.HasSuffix(text, "s"):
		div, digits = 1, strings.TrimSuffix(text, "s")
	default:
		return 0, p.errf("duration %q needs an s or ms unit", text)
	}
	v, err := strconv.ParseFloat(digits, 64)
	if err != nil {
		return 0, p.errf("invalid duration %q", text)
	}
	return v / div, p.advance()
}

// millis parses a duration and returns milliseconds.
func (p *parser) millis() (float64, error) {
	sec, err := p.duration()
	return sec * 1000, err
}

// rangeOrValue parses "N" or "N to M step K", with numbers optionally
// carrying a % suffix (stripped; values stay in the written unit).
func (p *parser) rangeOrValue() (Range, error) {
	lo, err := p.rangeNumber()
	if err != nil {
		return Range{}, err
	}
	if p.tok.kind == tIdent && p.tok.text == "to" {
		if err := p.advance(); err != nil {
			return Range{}, err
		}
		hi, err := p.rangeNumber()
		if err != nil {
			return Range{}, err
		}
		if p.tok.kind != tIdent || p.tok.text != "step" {
			return Range{}, p.errf("range needs 'step', found %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return Range{}, err
		}
		step, err := p.rangeNumber()
		if err != nil {
			return Range{}, err
		}
		if step <= 0 {
			return Range{}, p.errf("range step must be positive")
		}
		if hi < lo {
			return Range{}, p.errf("range upper bound %g below lower bound %g", hi, lo)
		}
		return Range{Lo: lo, Hi: hi, Step: step}, nil
	}
	return Range{Lo: lo, Hi: lo}, nil
}

func (p *parser) rangeNumber() (float64, error) {
	if p.tok.kind != tNumber {
		return 0, p.errf("expected number, found %q", p.tok.text)
	}
	text := strings.TrimSuffix(p.tok.text, "%")
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return 0, p.errf("invalid number %q", p.tok.text)
	}
	return v, p.advance()
}

// rawValue captures the raw source text from just after the current
// token up to (not including) the next ';', then leaves the parser
// positioned past that ';'. Expression-bearing clauses (users asserts,
// SLO asserts, fault when-guards) use it: expressions carry characters
// the TBL lexer does not tokenize ((, &&, !), so their span must be cut
// from the raw document and handed to the expression front end whole.
// The returned line/col locate the span's first byte for translating
// expression-error positions back into document coordinates.
func (p *parser) rawValue() (raw string, line, col int, err error) {
	l := p.lx
	start := l.pos
	idx := strings.IndexByte(l.src[start:], ';')
	if idx < 0 {
		return "", 0, 0, p.errf("missing ';' after %s", p.tok.text)
	}
	raw = l.src[start : start+idx]
	line, col = l.line, l.colAt(start)
	// The lexer never saw the span: replay its newlines so subsequent
	// tokens keep correct positions.
	for i := 0; i < len(raw); i++ {
		if raw[i] == '\n' {
			l.line++
			l.lineStart = start + i + 1
		}
	}
	l.pos = start + idx
	if err := p.advance(); err != nil { // lex the ';'
		return "", 0, 0, err
	}
	if err := p.expectPunct(";"); err != nil {
		return "", 0, 0, err
	}
	return raw, line, col, nil
}

// exprErrAt translates an expression front-end error into document
// coordinates: expression positions are 1-based within the raw span,
// which starts at (line, col) in the document.
func exprErrAt(err error, line, col int) error {
	if ee, ok := err.(*expr.Error); ok {
		dl, dc := line+ee.Pos.Line-1, ee.Pos.Col
		if ee.Pos.Line == 1 {
			dc = col + ee.Pos.Col - 1
		}
		return fmt.Errorf("tbl: line %d:%d: %s", dl, dc, ee.Msg)
	}
	return fmt.Errorf("tbl: line %d:%d: %v", line, col, err)
}

// compileClauseExpr compiles a raw expression span captured at
// (line, col) and requires the given result type.
func compileClauseExpr(raw string, line, col int, want expr.Kind, clause string) (*expr.Program, error) {
	prog, err := expr.Compile(raw)
	if err != nil {
		return nil, exprErrAt(err, line, col)
	}
	if prog.Kind() != want {
		return nil, fmt.Errorf("tbl: line %d:%d: %s expression must be %s, got %s",
			line, col, clause, want, prog.Kind())
	}
	return prog, nil
}

// tryRange attempts to read a raw span starting at document position
// (line, col) as the static range grammar ("100" or "100 to 1000 step
// 100"). Static specs keep parsing into Range — byte-identically to
// before the expression language existed. The shape "<number>" or
// "<number> to ..." claims the range grammar definitively: a malformed
// range reports the range error (isRange true) instead of falling
// through to a baffling expression error. Everything else is handed to
// the expression parser.
func tryRange(raw string, line, col int) (r Range, isRange bool, err error) {
	// Seed the sub-lexer with document coordinates so any error it
	// reports points into the original file, not the captured span.
	mkSub := func() *parser {
		return &parser{lx: &lexer{src: raw, line: line, lineStart: -(col - 1)}}
	}
	shape := mkSub()
	if shape.advance() != nil || shape.tok.kind != tNumber {
		return Range{}, false, nil
	}
	if shape.advance() != nil {
		return Range{}, false, nil
	}
	if shape.tok.kind != tEOF && !(shape.tok.kind == tIdent && shape.tok.text == "to") {
		return Range{}, false, nil
	}
	sub := mkSub()
	if err := sub.advance(); err != nil {
		return Range{}, true, err
	}
	r, err = sub.rangeOrValue()
	if err != nil {
		return Range{}, true, err
	}
	if sub.tok.kind != tEOF {
		return Range{}, true, sub.errf("unexpected %q after range", sub.tok.text)
	}
	return r, true, nil
}

// Parse reads a TBL document.
func Parse(src string) (*Document, error) {
	p := &parser{lx: &lexer{src: src, line: 1}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	doc := &Document{}
	for p.tok.kind != tEOF {
		if p.tok.kind != tIdent || p.tok.text != "experiment" {
			return nil, p.errf("expected 'experiment', found %q", p.tok.text)
		}
		e, err := p.parseExperiment()
		if err != nil {
			return nil, err
		}
		doc.Experiments = append(doc.Experiments, e)
	}
	if len(doc.Experiments) == 0 {
		return nil, fmt.Errorf("tbl: document declares no experiments")
	}
	return doc, nil
}

func (p *parser) parseExperiment() (*Experiment, error) {
	if err := p.advance(); err != nil { // consume "experiment"
		return nil, err
	}
	if p.tok.kind != tString {
		return nil, p.errf("experiment needs a quoted name")
	}
	// The lexer has no escape sequences, so a name must be plain printable
	// UTF-8 to render back into a parseable quoted string (%q escapes
	// everything else, and escapes do not re-parse).
	if !utf8.ValidString(p.tok.text) {
		return nil, p.errf("experiment name %q is not valid UTF-8", p.tok.text)
	}
	for _, r := range p.tok.text {
		if r < 0x20 || r == 0x7f || r == '\\' || !unicode.IsPrint(r) {
			return nil, p.errf("experiment name %q contains unprintable or escape characters", p.tok.text)
		}
	}
	e := &Experiment{
		Name:     p.tok.text,
		Allocate: map[string]string{},
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		key, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.parseClause(e, key); err != nil {
			return nil, err
		}
	}
	if err := p.advance(); err != nil { // consume "}"
		return nil, err
	}
	applyDefaults(e)
	if err := Validate(e); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) parseClause(e *Experiment, key string) error {
	switch key {
	case "benchmark":
		v, err := p.expectIdent()
		if err != nil {
			return err
		}
		e.Benchmark = v
		return p.expectPunct(";")
	case "platform":
		v, err := p.expectIdent()
		if err != nil {
			return err
		}
		e.Platform = v
		return p.expectPunct(";")
	case "appserver":
		v, err := p.expectIdent()
		if err != nil {
			return err
		}
		e.AppServer = v
		return p.expectPunct(";")
	case "mix":
		v, err := p.expectIdent()
		if err != nil {
			return err
		}
		e.Mix = v
		return p.expectPunct(";")
	case "topology":
		return p.parseTopology(e)
	case "topologies":
		return p.parseTopologies(e)
	case "workload":
		return p.parseWorkload(e)
	case "trial":
		return p.parseTrial(e)
	case "slo":
		return p.parseSLO(e)
	case "monitor":
		return p.parseMonitor(e)
	case "allocate":
		return p.parseAllocate(e)
	case "demands":
		return p.parseDemands(e)
	case "scaling":
		return p.parseScaling(e)
	case "policies":
		return p.parsePolicies(e)
	case "faults":
		return p.parseFaults(e)
	case "seed":
		v, err := p.uint64Number()
		if err != nil {
			return err
		}
		e.Seed = v
		return p.expectPunct(";")
	case "repeat":
		v, err := p.number()
		if err != nil {
			return err
		}
		e.Repeat = int(v)
		return p.expectPunct(";")
	default:
		return p.errLast("unknown clause %q", key)
	}
}

func (p *parser) parseTopology(e *Experiment) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		tierTok := p.tok
		tier, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch tier {
		case "web", "app", "db":
		default:
			return errTok(tierTok, "unknown tier %q", tier)
		}
		n, err := p.number()
		if err != nil {
			return err
		}
		switch tier {
		case "web":
			e.Topology.Web = int(n)
		case "app":
			e.Topology.App = int(n)
		case "db":
			e.Topology.DB = int(n)
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return p.advance()
}

// parseTopologies reads a comma-separated list of w-a-d triples written as
// identifiers, e.g. "topologies 1-2-1, 1-3-1, 1-4-2;".
func (p *parser) parseTopologies(e *Experiment) error {
	for {
		if p.tok.kind != tNumber && p.tok.kind != tIdent {
			return p.errf("expected topology triple, found %q", p.tok.text)
		}
		t, err := ParseTopology(p.tok.text)
		if err != nil {
			return p.errf("%v", err)
		}
		e.Topologies = append(e.Topologies, t)
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	if len(e.Topologies) > 0 {
		e.Topology = e.Topologies[0]
	}
	return p.expectPunct(";")
}

// ParseTopology parses a "w-a-d" triple such as "1-8-2".
func ParseTopology(s string) (Topology, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return Topology{}, fmt.Errorf("tbl: topology %q is not a w-a-d triple", s)
	}
	var nums [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return Topology{}, fmt.Errorf("tbl: topology %q has invalid component %q", s, p)
		}
		nums[i] = n
	}
	return Topology{Web: nums[0], App: nums[1], DB: nums[2]}, nil
}

func (p *parser) parseWorkload(e *Experiment) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		// users may carry an expression, whose span must be captured
		// before the lexer touches it — peek the key without advancing.
		if p.tok.kind == tIdent && p.tok.text == "users" {
			raw, line, col, err := p.rawValue()
			if err != nil {
				return err
			}
			if r, isRange, rerr := tryRange(raw, line, col); isRange {
				if rerr != nil {
					return rerr
				}
				e.Workload.Users = r
				e.Workload.UsersExpr = ""
				continue
			}
			prog, err := compileClauseExpr(raw, line, col, expr.Float, "users")
			if err != nil {
				return err
			}
			e.Workload.UsersExpr = prog.Source()
			continue
		}
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch key {
		case "writeratio":
			r, err := p.rangeOrValue()
			if err != nil {
				return err
			}
			e.Workload.WriteRatioPct = r
		case "thinktime":
			v, err := p.duration()
			if err != nil {
				return err
			}
			e.Workload.ThinkTimeSec = v
		case "timeout":
			v, err := p.duration()
			if err != nil {
				return err
			}
			e.Workload.TimeoutSec = v
		default:
			return p.errLast("unknown workload key %q", key)
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return p.advance()
}

func (p *parser) parseTrial(e *Experiment) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		keyTok := p.tok
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch key {
		case "warmup", "run", "cooldown":
		default:
			return errTok(keyTok, "unknown trial key %q", key)
		}
		v, err := p.duration()
		if err != nil {
			return err
		}
		switch key {
		case "warmup":
			e.Trial.WarmupSec = v
		case "run":
			e.Trial.RunSec = v
		case "cooldown":
			e.Trial.CooldownSec = v
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return p.advance()
}

func (p *parser) parseSLO(e *Experiment) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		// assert carries an expression: capture its raw span before the
		// TBL lexer can trip over expression-only characters.
		if p.tok.kind == tIdent && p.tok.text == "assert" {
			if e.SLO.AssertExpr != "" {
				return p.errf("slo already has an assert (combine predicates with &&)")
			}
			raw, line, col, err := p.rawValue()
			if err != nil {
				return err
			}
			prog, err := compileClauseExpr(raw, line, col, expr.Bool, "assert")
			if err != nil {
				return err
			}
			e.SLO.AssertExpr = prog.Source()
			continue
		}
		keyTok := p.tok
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch key {
		case "avg", "p90", "p99":
		default:
			return errTok(keyTok, "unknown slo key %q", key)
		}
		v, err := p.millis()
		if err != nil {
			return err
		}
		switch key {
		case "avg":
			e.SLO.AvgMS = v
		case "p90":
			e.SLO.P90MS = v
		case "p99":
			e.SLO.P99MS = v
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return p.advance()
}

func (p *parser) parseMonitor(e *Experiment) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch key {
		case "interval":
			v, err := p.duration()
			if err != nil {
				return err
			}
			e.Monitor.IntervalSec = v
		case "metrics":
			for {
				m, err := p.expectIdent()
				if err != nil {
					return err
				}
				e.Monitor.Metrics = append(e.Monitor.Metrics, m)
				if p.tok.kind == tPunct && p.tok.text == "," {
					if err := p.advance(); err != nil {
						return err
					}
					continue
				}
				break
			}
		default:
			return p.errLast("unknown monitor key %q", key)
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return p.advance()
}

// parseFaults reads the fault stanza. Entries are either a profile
// reference or a typed fault window:
//
//	faults {
//		profile light;
//		JONAS1 at 100s for 60s;                  # crash (original form)
//		JONAS1 crash at 100s for 60s;            # crash, explicit
//		MYSQL1 slowdown 0.5 at 80s for 30s;      # speed × 0.5
//		MYSQL1 stall 0.05 at 80s for 30s;        # near-stopped
//		client errorburst 0.2 at 80s for 30s;    # 20% request errors
//	}
func (p *parser) parseFaults(e *Experiment) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		role, err := p.expectIdent()
		if err != nil {
			return err
		}
		if role == "profile" {
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			e.FaultProfile = name
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			continue
		}
		f := Fault{Role: role}
		kw, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch kw {
		case "at":
			// Original crash form: ROLE at Ns for Ms.
		case "crash":
			// Explicit crash spelling normalizes to the original form so
			// String() round-trips to a single rendering.
			if kw, err = p.expectIdent(); err != nil {
				return err
			}
		case "slowdown", "stall", "errorburst":
			f.Kind = kw
			if f.Factor, err = p.number(); err != nil {
				return err
			}
			if kw, err = p.expectIdent(); err != nil {
				return err
			}
		default:
			return p.errLast("unknown fault kind %q", kw)
		}
		if kw != "at" {
			return p.errf("fault needs 'at', found %q", kw)
		}
		if f.AtSec, err = p.duration(); err != nil {
			return err
		}
		if kw, err = p.expectIdent(); err != nil {
			return err
		}
		if kw != "for" {
			return p.errf("fault needs 'for', found %q", kw)
		}
		if f.DurationSec, err = p.duration(); err != nil {
			return err
		}
		if f.Kind == "errorburst" {
			if f.Role != "client" {
				return p.errf("errorburst faults target the client driver; write 'client errorburst', not %q", f.Role)
			}
			f.Role = ""
		}
		// Optional conditional guard: `... for 30s when util(app, cpu) > 0.8;`
		// arms the window only once the predicate has held in an observed
		// measurement window.
		if p.tok.kind == tIdent && p.tok.text == "when" {
			raw, line, col, err := p.rawValue()
			if err != nil {
				return err
			}
			prog, err := compileClauseExpr(raw, line, col, expr.Bool, "when")
			if err != nil {
				return err
			}
			f.WhenExpr = prog.Source()
			e.Faults = append(e.Faults, f)
			continue
		}
		e.Faults = append(e.Faults, f)
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return p.advance()
}

// parseDemands reads the per-tier resource-demand stanza:
//
//	demands {
//		db  { cpu 1.5; disk 9ms; net 2000; }   # scale CPU, add disk+net legs
//		app { net 4000; }                      # bytes into the app tier
//	}
//
// cpu is a bare multiplier on the benchmark's calibrated CPU demand,
// disk a duration at the reference spindle (s/ms unit required), net a
// bare payload size in bytes. Negative values cannot lex (the '-' is a
// parse error) and oversized literals fail number parsing, so every
// malformed demand is rejected with a positioned error.
func (p *parser) parseDemands(e *Experiment) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		tier, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch tier {
		case "web", "app", "db":
		default:
			return p.errLast("demands names unknown tier %q", tier)
		}
		if err := p.expectPunct("{"); err != nil {
			return err
		}
		var d ResourceDemand
		for !(p.tok.kind == tPunct && p.tok.text == "}") {
			key, err := p.expectIdent()
			if err != nil {
				return err
			}
			switch key {
			case "cpu":
				if d.CPUScale, err = p.number(); err != nil {
					return err
				}
			case "disk":
				if d.DiskSec, err = p.duration(); err != nil {
					return err
				}
			case "net":
				if d.NetBytes, err = p.number(); err != nil {
					return err
				}
			default:
				return p.errLast("unknown demand key %q", key)
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		}
		if err := p.advance(); err != nil { // consume inner "}"
			return err
		}
		if e.Demands == nil {
			e.Demands = map[string]ResourceDemand{}
		}
		e.Demands[tier] = d
	}
	return p.advance()
}

func (p *parser) parseScaling(e *Experiment) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch key {
		case "threshold":
			v, err := p.number()
			if err != nil {
				return err
			}
			// Range-check before the int conversion: out-of-range
			// float→int is implementation-defined, and no deployment has
			// a trillion users anyway.
			if !(v >= 0 && v <= 1e12) {
				return p.errf("scaling threshold %g out of range", v)
			}
			if v != math.Trunc(v) {
				return p.errf("scaling threshold %g must be an integer", v)
			}
			e.Scaling.ThresholdUsers = int(v)
		case "engine":
			v, err := p.expectIdent()
			if err != nil {
				return err
			}
			switch v {
			case "des", "fluid", "auto":
			default:
				return p.errf("unknown scaling engine %q (want des, fluid, or auto)", v)
			}
			e.Scaling.Engine = v
		default:
			return p.errLast("unknown scaling key %q", key)
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return p.advance()
}

// parsePolicies reads the autoscaling stanza:
//
//	policies {
//		scale app by 1 when util(app, cpu) > 0.8 cooldown 60s max 12;
//		scale app in by 1 when util(app, cpu) < 0.3 cooldown 120s min 2;
//	}
//
// The predicate span runs from `when` to the policy's own `cooldown`/
// `max`/`min` keywords: the expression front end parses the longest
// expression prefix (a bare `cooldown` identifier cannot continue an
// expression), and the TBL sub-parser resumes at the returned offset —
// so `max(...)` inside the predicate is a call while a trailing `max 12`
// is the replica bound.
func (p *parser) parsePolicies(e *Experiment) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		kw, err := p.expectIdent()
		if err != nil {
			return err
		}
		if kw != "scale" {
			return p.errLast("policy needs 'scale', found %q", kw)
		}
		var pol Policy
		tierTok := p.tok
		if pol.Tier, err = p.expectIdent(); err != nil {
			return err
		}
		switch pol.Tier {
		case "web", "app", "db":
		default:
			return errTok(tierTok, "unknown tier %q", pol.Tier)
		}
		if p.tok.kind == tIdent && p.tok.text == "in" {
			pol.In = true
			if err := p.advance(); err != nil {
				return err
			}
		}
		if kw, err = p.expectIdent(); err != nil {
			return err
		}
		if kw != "by" {
			return p.errLast("policy needs 'by', found %q", kw)
		}
		n, err := p.number()
		if err != nil {
			return err
		}
		if n != math.Trunc(n) || n < 1 {
			return p.errf("policy delta %g must be a positive integer", n)
		}
		pol.Delta = int(n)
		if p.tok.kind != tIdent || p.tok.text != "when" {
			return p.errf("policy needs 'when', found %q", p.tok.text)
		}
		raw, line, col, err := p.rawValue()
		if err != nil {
			return err
		}
		ast, off, perr := expr.ParsePrefix(raw)
		if perr != nil {
			return exprErrAt(perr, line, col)
		}
		prog, perr := expr.CompileAST(ast)
		if perr != nil {
			return exprErrAt(perr, line, col)
		}
		if prog.Kind() != expr.Bool {
			return fmt.Errorf("tbl: line %d:%d: policy when expression must be bool, got %s",
				line, col, prog.Kind())
		}
		pol.WhenExpr = prog.Source()
		// Resume TBL parsing on the span's remainder, seeded with the
		// stop offset's document coordinates so errors point into the file.
		sline, scol := line, col+off
		if i := strings.LastIndexByte(raw[:off], '\n'); i >= 0 {
			sline += strings.Count(raw[:off], "\n")
			scol = off - i
		}
		sub := &parser{lx: &lexer{src: raw[off:], line: sline, lineStart: -(scol - 1)}}
		if err := sub.advance(); err != nil {
			return err
		}
		if sub.tok.kind == tIdent && sub.tok.text == "cooldown" {
			if err := sub.advance(); err != nil {
				return err
			}
			if pol.CooldownSec, err = sub.duration(); err != nil {
				return err
			}
		}
		if sub.tok.kind == tIdent && (sub.tok.text == "max" || sub.tok.text == "min") {
			bound := sub.tok.text
			if bound == "max" && pol.In {
				return sub.errf("scale-in policies floor with 'min', not 'max'")
			}
			if bound == "min" && !pol.In {
				return sub.errf("scale-out policies cap with 'max', not 'min'")
			}
			if err := sub.advance(); err != nil {
				return err
			}
			v, err := sub.number()
			if err != nil {
				return err
			}
			if v != math.Trunc(v) || v < 1 {
				return sub.errf("policy %s bound %g must be a positive integer", bound, v)
			}
			if bound == "max" {
				pol.Max = int(v)
			} else {
				pol.Min = int(v)
			}
		}
		if sub.tok.kind != tEOF {
			return sub.errf("unexpected %q in policy", sub.tok.text)
		}
		e.Policies = append(e.Policies, pol)
	}
	return p.advance()
}

func (p *parser) parseAllocate(e *Experiment) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tPunct && p.tok.text == "}") {
		tier, err := p.expectIdent()
		if err != nil {
			return err
		}
		nodeType, err := p.expectIdent()
		if err != nil {
			return err
		}
		e.Allocate[tier] = nodeType
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return p.advance()
}
