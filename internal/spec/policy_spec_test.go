package spec

import (
	"strings"
	"testing"
)

const policyTBL = `experiment "p" {
	benchmark rubbos;
	platform  emulab;
	appserver tomcat;
	topology  { web 1; app 2; db 1; }
	workload  { users 100; writeratio 15; }
	policies  {
		scale app by 1 when util(app, cpu) > 0.8 cooldown 60s max 12;
		scale app in by 2 when util(app, cpu) < 0.3 cooldown 120s min 2;
	}
}`

func TestParsePolicies(t *testing.T) {
	e := parseOne(t, policyTBL)
	if len(e.Policies) != 2 {
		t.Fatalf("policies = %+v", e.Policies)
	}
	out := e.Policies[0]
	if out.Tier != "app" || out.In || out.Delta != 1 || out.CooldownSec != 60 ||
		out.Max != 12 || out.Min != 0 {
		t.Fatalf("scale-out policy = %+v", out)
	}
	if out.WhenExpr != "util(app, cpu) > 0.8" {
		t.Fatalf("scale-out predicate = %q", out.WhenExpr)
	}
	in := e.Policies[1]
	if in.Tier != "app" || !in.In || in.Delta != 2 || in.CooldownSec != 120 ||
		in.Min != 2 || in.Max != 0 {
		t.Fatalf("scale-in policy = %+v", in)
	}
}

// TestPoliciesRoundTrip pins the String fixpoint for the policies clause:
// re-parsing a rendered experiment reproduces the same policies.
func TestPoliciesRoundTrip(t *testing.T) {
	e := parseOne(t, policyTBL)
	re := parseOne(t, e.String())
	if len(re.Policies) != 2 || re.Policies[0] != e.Policies[0] || re.Policies[1] != e.Policies[1] {
		t.Fatalf("policies did not round trip:\n%+v\n%+v", e.Policies, re.Policies)
	}
	if re.String() != e.String() {
		t.Fatalf("String not a fixpoint:\n%s\n%s", e.String(), re.String())
	}
}

// TestPolicyScaleInDefaultsMinOne: a scale-in policy without an explicit
// floor gets min 1 — a drain can empty every spare but never the tier.
func TestPolicyScaleInDefaultsMinOne(t *testing.T) {
	e := parseOne(t, `experiment "p" {
		benchmark rubbos; platform emulab; appserver tomcat;
		topology { web 1; app 2; db 1; }
		workload { users 100; }
		policies { scale app in by 1 when util(app, cpu) < 0.2; }
	}`)
	if e.Policies[0].Min != 1 {
		t.Fatalf("default min = %d, want 1", e.Policies[0].Min)
	}
}

// TestPolicyPredicateMaxIsACall pins the grammar's trickiest corner: the
// predicate span is parsed as the longest expression prefix, so max(...)
// with parentheses inside the predicate is the expression builtin while a
// trailing bare `max N` is the policy's replica bound.
func TestPolicyPredicateMaxIsACall(t *testing.T) {
	e := parseOne(t, `experiment "p" {
		benchmark rubbos; platform emulab; appserver tomcat;
		topology { web 1; app 2; db 1; }
		workload { users 100; }
		policies { scale app by 1 when max(util(app, cpu), util(web, cpu)) > 0.8 max 4; }
	}`)
	pol := e.Policies[0]
	if pol.WhenExpr != "max(util(app, cpu), util(web, cpu)) > 0.8" {
		t.Fatalf("predicate = %q", pol.WhenExpr)
	}
	if pol.Max != 4 {
		t.Fatalf("replica bound = %d, want 4", pol.Max)
	}
}

func TestPolicyErrors(t *testing.T) {
	mk := func(policies string) string {
		return `experiment "p" { benchmark rubbos; platform emulab; appserver tomcat;
			topology { web 1; app 2; db 1; }
			workload { users 100; }
			policies { ` + policies + ` } }`
	}
	cases := []struct {
		name, policies, want string
	}{
		{"missing scale", `grow app by 1 when x() > 1 max 4;`, "needs 'scale'"},
		{"unknown tier", `scale cache by 1 when x() > 1 max 4;`, "unknown tier"},
		{"zero delta", `scale app by 0 when x() > 1 max 4;`, "delta 0 must be a positive integer"},
		{"missing when", `scale app by 1 max 4;`, "needs 'when'"},
		{"numeric predicate", `scale app by 1 when x() max 4;`, "must be bool"},
		{"bad predicate", `scale app by 1 when util(app) > 0.8 max 4;`, "util"},
		{"out with min", `scale app by 1 when x() > 1 min 2;`, "cap with 'max', not 'min'"},
		{"in with max", `scale app in by 1 when x() < 1 max 2;`, "floor with 'min', not 'max'"},
		{"missing max", `scale app by 1 when x() > 1;`, "needs a max replica bound"},
		{"max below topology", `scale app by 1 when x() > 1 max 1;`, "below topology"},
		{"junk tail", `scale app by 1 when x() > 1 max 4 surplus;`, "unexpected"},
	}
	for _, c := range cases {
		_, err := Parse(mk(c.policies))
		if err == nil {
			t.Errorf("%s: parse accepted %q", c.name, c.policies)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestPolicyErrorPosition checks a predicate error points into the
// document, not into the extracted expression span.
func TestPolicyErrorPosition(t *testing.T) {
	_, err := Parse(`experiment "p" { benchmark rubbos; platform emulab; appserver tomcat;
	topology { web 1; app 2; db 1; }
	workload { users 100; }
	policies { scale app by 1 when util(app, cpu) >> 0.8 max 4; } }`)
	if err == nil {
		t.Fatal("bad predicate accepted")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %q does not carry the document line", err)
	}
}
