package spec

import (
	"strings"
	"testing"
)

const sampleTBL = `
# RUBiS baseline on Emulab, as in the paper's Figure 1.
experiment "rubis-baseline-jonas" {
	benchmark rubis;
	platform  emulab;
	appserver jonas;
	topology  { web 1; app 1; db 1; }
	workload  {
		users 50 to 250 step 50;
		writeratio 0 to 90 step 10;
	}
	trial { warmup 60s; run 300s; cooldown 60s; }
	slo   { avg 1000ms; p90 2000ms; }
	monitor { interval 5s; metrics cpu, memory, network, disk; }
	seed 42;
}
`

func parseOne(t *testing.T, src string) *Experiment {
	t.Helper()
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Experiments) != 1 {
		t.Fatalf("experiments = %d", len(doc.Experiments))
	}
	return doc.Experiments[0]
}

func TestParseFullExperiment(t *testing.T) {
	e := parseOne(t, sampleTBL)
	if e.Name != "rubis-baseline-jonas" || e.Benchmark != "rubis" || e.Platform != "emulab" {
		t.Fatalf("header wrong: %+v", e)
	}
	if e.AppServer != "jonas" {
		t.Fatalf("appserver = %q", e.AppServer)
	}
	if e.Topology != (Topology{Web: 1, App: 1, DB: 1}) {
		t.Fatalf("topology = %v", e.Topology)
	}
	if e.Workload.Users != (Range{Lo: 50, Hi: 250, Step: 50}) {
		t.Fatalf("users = %v", e.Workload.Users)
	}
	if e.Workload.WriteRatioPct != (Range{Lo: 0, Hi: 90, Step: 10}) {
		t.Fatalf("writeratio = %v", e.Workload.WriteRatioPct)
	}
	if e.Trial != (Trial{WarmupSec: 60, RunSec: 300, CooldownSec: 60}) {
		t.Fatalf("trial = %v", e.Trial)
	}
	if e.SLO.AvgMS != 1000 || e.SLO.P90MS != 2000 {
		t.Fatalf("slo = %v", e.SLO)
	}
	if e.Monitor.IntervalSec != 5 || !e.Monitor.Has("disk") || e.Monitor.Has("gpu") {
		t.Fatalf("monitor = %v", e.Monitor)
	}
	if e.Seed != 42 {
		t.Fatalf("seed = %d", e.Seed)
	}
	// 5 user points × 10 write ratios × 1 topology
	if got := e.TrialCount(); got != 50 {
		t.Fatalf("trial count = %d, want 50", got)
	}
}

func TestParseDefaults(t *testing.T) {
	e := parseOne(t, `experiment "min" {
		benchmark rubis;
		platform emulab;
		workload { users 100; }
	}`)
	if e.Trial != (Trial{WarmupSec: 60, RunSec: 300, CooldownSec: 60}) {
		t.Fatalf("RUBiS default trial = %v", e.Trial)
	}
	if e.AppServer != "jonas" {
		t.Fatalf("default appserver = %q", e.AppServer)
	}
	if e.Workload.TimeoutSec != 30 {
		t.Fatalf("default timeout = %g", e.Workload.TimeoutSec)
	}
	if e.Topology != (Topology{1, 1, 1}) {
		t.Fatalf("default topology = %v", e.Topology)
	}
	if e.Seed == 0 {
		t.Fatalf("seed should default to name hash")
	}
	if e.Allocate["db"] != "low-end" || e.Allocate["app"] != "high-end" {
		t.Fatalf("emulab allocation defaults wrong: %v", e.Allocate)
	}
	if len(e.Monitor.Metrics) != 4 {
		t.Fatalf("default metrics = %v", e.Monitor.Metrics)
	}
}

func TestParseRubbosDefaults(t *testing.T) {
	e := parseOne(t, `experiment "rb" {
		benchmark rubbos;
		platform emulab;
		workload { users 500 to 5000 step 500; }
	}`)
	if e.Trial != (Trial{WarmupSec: 150, RunSec: 900, CooldownSec: 150}) {
		t.Fatalf("RUBBoS default trial = %v (paper §III.B)", e.Trial)
	}
	if e.Mix != "submission" {
		t.Fatalf("default mix = %q", e.Mix)
	}
}

func TestParseTopologiesSweep(t *testing.T) {
	e := parseOne(t, `experiment "scaleout" {
		benchmark rubis;
		platform emulab;
		topologies 1-2-1, 1-2-2, 1-3-1;
		workload { users 100 to 300 step 100; writeratio 15; }
	}`)
	if len(e.Topologies) != 3 {
		t.Fatalf("topologies = %v", e.Topologies)
	}
	if e.Topologies[1] != (Topology{1, 2, 2}) {
		t.Fatalf("topologies[1] = %v", e.Topologies[1])
	}
	if e.TrialCount() != 9 {
		t.Fatalf("trial count = %d, want 9", e.TrialCount())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty doc", ``, "no experiments"},
		{"unknown benchmark", `experiment "x" { benchmark foo; platform emulab; workload { users 1; } }`, "unknown benchmark"},
		{"unknown platform", `experiment "x" { benchmark rubis; platform moon; workload { users 1; } }`, "unknown platform"},
		{"wrong appserver", `experiment "x" { benchmark rubbos; platform emulab; appserver weblogic; workload { users 1; } }`, "not available"},
		{"no users", `experiment "x" { benchmark rubis; platform emulab; }`, "at least one user"},
		{"write ratio range", `experiment "x" { benchmark rubis; platform emulab; workload { users 1; writeratio 95; } }`, "0–90"},
		{"zero tier", `experiment "x" { benchmark rubis; platform emulab; topology { web 1; app 0; db 1; } workload { users 1; } }`, "at least one server"},
		{"bad clause", `experiment "x" { frobnicate y; }`, "unknown clause"},
		{"bad duration", `experiment "x" { benchmark rubis; platform emulab; workload { users 1; } trial { warmup 60; run 300s; cooldown 60s; } }`, "unit"},
		{"bad range", `experiment "x" { benchmark rubis; platform emulab; workload { users 250 to 50 step 50; } }`, "below lower bound"},
		{"zero step", `experiment "x" { benchmark rubis; platform emulab; workload { users 50 to 250 step 0; } }`, "step must be positive"},
		{"bad topology triple", `experiment "x" { benchmark rubis; platform emulab; topologies 1-2; workload { users 1; } }`, "w-a-d"},
		{"unknown metric", `experiment "x" { benchmark rubis; platform emulab; workload { users 1; } monitor { interval 5s; metrics gpu; } }`, "metric"},
		{"unterminated string", `experiment "x { }`, "unterminated"},
		{"read-only with writes", `experiment "x" { benchmark rubbos; platform emulab; mix read-only; workload { users 1; writeratio 15; } }`, "read-only mix"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseErrorNamesLine(t *testing.T) {
	src := "experiment \"x\" {\n\tbenchmark rubis;\n\tbogus y;\n}"
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should name line 3: %v", err)
	}
}

func TestRangeValues(t *testing.T) {
	r := Range{Lo: 50, Hi: 250, Step: 50}
	vals := r.Values()
	if len(vals) != 5 || vals[0] != 50 || vals[4] != 250 {
		t.Fatalf("values = %v", vals)
	}
	fixed := Range{Lo: 15, Hi: 15}
	if !fixed.Fixed() || len(fixed.Values()) != 1 {
		t.Fatalf("fixed range wrong")
	}
	if fixed.String() != "15" || r.String() != "50 to 250 step 50" {
		t.Fatalf("range strings: %q %q", fixed.String(), r.String())
	}
}

func TestTopologyHelpers(t *testing.T) {
	tp := Topology{1, 8, 2}
	if tp.String() != "1-8-2" || tp.Nodes() != 11 {
		t.Fatalf("topology helpers wrong: %s %d", tp.String(), tp.Nodes())
	}
	parsed, err := ParseTopology("1-8-2")
	if err != nil || parsed != tp {
		t.Fatalf("ParseTopology = %v, %v", parsed, err)
	}
	if _, err := ParseTopology("a-b-c"); err == nil {
		t.Fatalf("bad triple accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	e := parseOne(t, sampleTBL)
	re := parseOne(t, e.String())
	if re.Name != e.Name || re.Workload != e.Workload || re.Trial != e.Trial ||
		re.SLO != e.SLO || re.Topology != e.Topology || re.Seed != e.Seed {
		t.Fatalf("round trip changed experiment:\n%+v\n%+v", e, re)
	}
}

func TestRoundTripTopologies(t *testing.T) {
	src := `experiment "s" {
		benchmark rubis; platform emulab;
		topologies 1-2-1, 1-3-2;
		workload { users 100; writeratio 15; }
	}`
	e := parseOne(t, src)
	re := parseOne(t, e.String())
	if len(re.Topologies) != 2 || re.Topologies[1] != e.Topologies[1] {
		t.Fatalf("topologies did not round trip: %v", re.Topologies)
	}
}

func TestDocumentFind(t *testing.T) {
	doc, err := Parse(sampleTBL + `
experiment "second" { benchmark rubbos; platform emulab; workload { users 10; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Find("second"); !ok {
		t.Fatalf("Find missed experiment")
	}
	if _, ok := doc.Find("zzz"); ok {
		t.Fatalf("Find matched nonexistent experiment")
	}
}

func TestValidateDirect(t *testing.T) {
	e := &Experiment{
		Name: "prog", Benchmark: "rubis", Platform: "warp", AppServer: "weblogic",
		Topology: Topology{1, 1, 1},
		Workload: Workload{Users: Range{Lo: 100, Hi: 100}},
		Trial:    Trial{WarmupSec: 60, RunSec: 300, CooldownSec: 60},
		Monitor:  Monitor{IntervalSec: 5, Metrics: []string{"cpu"}},
	}
	if err := Validate(e); err != nil {
		t.Fatalf("programmatic experiment invalid: %v", err)
	}
	e.Allocate = map[string]string{"cache": "x"}
	if err := Validate(e); err == nil {
		t.Fatalf("unknown allocate tier accepted")
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("abc") != hashName("abc") {
		t.Fatalf("hash not deterministic")
	}
	if hashName("abc") == hashName("abd") {
		t.Fatalf("suspicious hash collision")
	}
	if hashName("") == 0 {
		t.Fatalf("hash of empty string must not be zero seed")
	}
}

func TestCommentsAndHash(t *testing.T) {
	e := parseOne(t, `
// line comment
# hash comment
experiment "c" {
	benchmark rubis; // trailing
	platform emulab;
	workload { users 5; } # trailing hash
}`)
	if e.Name != "c" {
		t.Fatalf("comment handling broke parse")
	}
}

func TestParseFaults(t *testing.T) {
	e := parseOne(t, `experiment "f" {
		benchmark rubis; platform emulab;
		workload { users 100; writeratio 15; }
		trial { warmup 60s; run 300s; cooldown 60s; }
		faults { JONAS1 at 100s for 60s; MYSQL1 at 200s for 30s; }
	}`)
	if len(e.Faults) != 2 {
		t.Fatalf("faults = %v", e.Faults)
	}
	if e.Faults[0] != (Fault{Role: "JONAS1", AtSec: 100, DurationSec: 60}) {
		t.Fatalf("fault[0] = %+v", e.Faults[0])
	}
	// Round trip.
	re := parseOne(t, e.String())
	if len(re.Faults) != 2 || re.Faults[1] != e.Faults[1] {
		t.Fatalf("faults did not round trip: %v", re.Faults)
	}
}

func TestParseFaultErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing at", `experiment "f" { benchmark rubis; platform emulab;
			workload { users 1; } faults { X for 10s; } }`},
		{"missing for", `experiment "f" { benchmark rubis; platform emulab;
			workload { users 1; } faults { X at 10s; } }`},
		{"past run period", `experiment "f" { benchmark rubis; platform emulab;
			workload { users 1; } trial { warmup 1s; run 10s; cooldown 1s; }
			faults { X at 5s for 60s; } }`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRepeatRoundTrip(t *testing.T) {
	e := parseOne(t, `experiment "rep" {
		benchmark rubis; platform emulab;
		workload { users 100; writeratio 15; }
		repeat 3;
	}`)
	if e.Repeat != 3 {
		t.Fatalf("repeat = %d", e.Repeat)
	}
	re := parseOne(t, e.String())
	if re.Repeat != 3 {
		t.Fatalf("repeat did not round trip: %d", re.Repeat)
	}
}
