package spec

import (
	"strings"
	"testing"
)

func TestParseScaling(t *testing.T) {
	e := parseOne(t, `experiment "s" {
	benchmark rubbos;
	platform  rohan;
	workload  { users 1000; }
	scaling   { threshold 500; engine auto; }
}`)
	if e.Scaling.ThresholdUsers != 500 || e.Scaling.Engine != "auto" {
		t.Fatalf("scaling = %+v", e.Scaling)
	}
}

func TestParseScalingDefaultsEngineAuto(t *testing.T) {
	e := parseOne(t, `experiment "s" {
	benchmark rubbos; platform rohan;
	workload { users 1000; }
	scaling { threshold 500; }
}`)
	if e.Scaling.Engine != "auto" {
		t.Fatalf("threshold without engine should default to auto, got %q", e.Scaling.Engine)
	}
}

func TestParseScalingEngineOnly(t *testing.T) {
	e := parseOne(t, `experiment "s" {
	benchmark rubbos; platform rohan;
	workload { users 1000; }
	scaling { engine fluid; }
}`)
	if e.Scaling.Engine != "fluid" || e.Scaling.ThresholdUsers != 0 {
		t.Fatalf("scaling = %+v", e.Scaling)
	}
}

func TestParseScalingErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown key",
			`experiment "x" { benchmark rubbos; platform rohan; workload { users 1; }
			scaling { cutover 500; } }`,
			"unknown scaling key"},
		{"unknown engine",
			`experiment "x" { benchmark rubbos; platform rohan; workload { users 1; }
			scaling { engine turbo; } }`,
			"unknown scaling engine"},
		{"negative threshold",
			`experiment "x" { benchmark rubbos; platform rohan; workload { users 1; }
			scaling { threshold -5; } }`,
			"line"},
		{"huge threshold",
			`experiment "x" { benchmark rubbos; platform rohan; workload { users 1; }
			scaling { threshold 10000000000000; } }`,
			"out of range"},
		{"fractional threshold",
			`experiment "x" { benchmark rubbos; platform rohan; workload { users 1; }
			scaling { threshold 10.5; } }`,
			"must be an integer"},
		{"unit on threshold",
			`experiment "x" { benchmark rubbos; platform rohan; workload { users 1; }
			scaling { threshold 500s; } }`,
			"unit not allowed"},
		{"auto without threshold",
			`experiment "x" { benchmark rubbos; platform rohan; workload { users 1; }
			scaling { engine auto; } }`,
			"needs a positive threshold"},
		{"fluid with faults",
			`experiment "x" { benchmark rubbos; platform rohan; workload { users 1; }
			scaling { engine fluid; }
			faults { db at 10s for 20s; } }`,
			"cannot emulate fault windows"},
		{"missing semicolon",
			`experiment "x" { benchmark rubbos; platform rohan; workload { users 1; }
			scaling { threshold 500 engine auto; } }`,
			"line"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseScalingErrorNamesLine(t *testing.T) {
	src := "experiment \"x\" {\n\tbenchmark rubbos;\n\tplatform rohan;\n\tworkload { users 1; }\n\tscaling { engine turbo; }\n}"
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error should name line 5: %v", err)
	}
}

func TestScalingRoundTrip(t *testing.T) {
	src := `experiment "s" {
	benchmark rubbos;
	platform  rohan;
	workload  { users 100 to 2000 step 100; }
	scaling   { threshold 1000; engine auto; }
}`
	e := parseOne(t, src)
	rendered := e.String()
	re := parseOne(t, rendered)
	if re.Scaling != e.Scaling {
		t.Fatalf("scaling changed through round trip: %+v -> %+v\n%s", e.Scaling, re.Scaling, rendered)
	}
	if again := re.String(); again != rendered {
		t.Fatalf("String() not a fixpoint:\n%s\n---\n%s", rendered, again)
	}
}

func TestScalingAbsentRendersNothing(t *testing.T) {
	e := parseOne(t, `experiment "s" { benchmark rubbos; platform rohan; workload { users 100; } }`)
	if strings.Contains(e.String(), "scaling") {
		t.Fatalf("spec without scaling clause rendered one:\n%s", e.String())
	}
}

func TestEngineFor(t *testing.T) {
	cases := []struct {
		s     Scaling
		users int
		want  string
	}{
		{Scaling{}, 100, ""},
		{Scaling{Engine: "des"}, 1000000, "des"},
		{Scaling{Engine: "fluid"}, 1, "fluid"},
		{Scaling{Engine: "auto", ThresholdUsers: 500}, 499, "des"},
		{Scaling{Engine: "auto", ThresholdUsers: 500}, 500, "fluid"},
		{Scaling{Engine: "auto", ThresholdUsers: 500}, 1000000, "fluid"},
		{Scaling{Engine: "auto"}, 1000000, "des"}, // unvalidated zero threshold: never switch
	}
	for i, c := range cases {
		if got := c.s.EngineFor(c.users); got != c.want {
			t.Errorf("case %d: %+v.EngineFor(%d) = %q, want %q", i, c.s, c.users, got, c.want)
		}
	}
}

func TestValidateScalingProgrammatic(t *testing.T) {
	mk := func(s Scaling) *Experiment {
		e := parseOne(t, `experiment "v" { benchmark rubbos; platform rohan; workload { users 1; } }`)
		e.Scaling = s
		return e
	}
	if err := Validate(mk(Scaling{ThresholdUsers: 100, Engine: "auto"})); err != nil {
		t.Fatalf("valid scaling rejected: %v", err)
	}
	bad := []Scaling{
		{Engine: "turbo"},
		{Engine: "auto"},
		{ThresholdUsers: -1},
	}
	for _, s := range bad {
		if err := Validate(mk(s)); err == nil {
			t.Errorf("scaling %+v accepted", s)
		}
	}
}
