package spec

import (
	"strings"
	"testing"
)

func TestParseDemands(t *testing.T) {
	src := `experiment "d" {
	benchmark rubis;
	platform  emulab;
	workload  { users 100; writeratio 15; }
	demands {
		app { cpu 1.5; net 2048; }
		db  { disk 9ms; net 600; }
	}
}`
	e := parseOne(t, src)
	app, ok := e.Demands["app"]
	if !ok || app.CPUScale != 1.5 || app.NetBytes != 2048 || app.DiskSec != 0 {
		t.Fatalf("app demands = %+v", app)
	}
	db, ok := e.Demands["db"]
	if !ok || db.DiskSec != 0.009 || db.NetBytes != 600 || db.CPUScale != 0 {
		t.Fatalf("db demands = %+v", db)
	}
	if _, ok := e.Demands["web"]; ok {
		t.Fatalf("web demands should be absent")
	}
}

func TestParseDemandsSecondsUnit(t *testing.T) {
	e := parseOne(t, `experiment "d" {
	benchmark rubis; platform emulab;
	workload { users 1; }
	demands { db { disk 0.5s; } }
}`)
	if e.Demands["db"].DiskSec != 0.5 {
		t.Fatalf("disk = %g, want 0.5", e.Demands["db"].DiskSec)
	}
}

func TestParseDemandsErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown tier",
			`experiment "x" { benchmark rubis; platform emulab; workload { users 1; }
			demands { cache { cpu 1; } } }`,
			"unknown tier"},
		{"unknown key",
			`experiment "x" { benchmark rubis; platform emulab; workload { users 1; }
			demands { db { iops 9; } } }`,
			"unknown demand"},
		{"negative cpu",
			`experiment "x" { benchmark rubis; platform emulab; workload { users 1; }
			demands { db { cpu -1; } } }`,
			"line"},
		{"negative disk",
			`experiment "x" { benchmark rubis; platform emulab; workload { users 1; }
			demands { db { disk -9ms; } } }`,
			"line"},
		{"overflow number",
			`experiment "x" { benchmark rubis; platform emulab; workload { users 1; }
			demands { db { net ` + strings.Repeat("9", 400) + `; } } }`,
			"line"},
		{"disk past bound",
			`experiment "x" { benchmark rubis; platform emulab; workload { users 1; }
			demands { db { disk 61s; } } }`,
			"out of range"},
		{"net past bound",
			`experiment "x" { benchmark rubis; platform emulab; workload { users 1; }
			demands { db { net 2000000000; } } }`,
			"out of range"},
		{"cpu past bound",
			`experiment "x" { benchmark rubis; platform emulab; workload { users 1; }
			demands { db { cpu 1001; } } }`,
			"out of range"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseDemandsErrorNamesLine(t *testing.T) {
	src := "experiment \"x\" {\n\tbenchmark rubis;\n\tplatform emulab;\n\tworkload { users 1; }\n\tdemands { db { disk -1ms; } }\n}"
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error should name line 5: %v", err)
	}
}

func TestDemandsRoundTrip(t *testing.T) {
	src := `experiment "d" {
	benchmark rubis;
	platform  emulab;
	workload  { users 100; writeratio 15; }
	demands {
		web { net 1500; }
		app { cpu 2; }
		db  { cpu 0.5; disk 9ms; net 600; }
	}
}`
	e := parseOne(t, src)
	rendered := e.String()
	re := parseOne(t, rendered)
	if len(re.Demands) != 3 {
		t.Fatalf("demands did not round trip: %+v\n%s", re.Demands, rendered)
	}
	for tier, d := range e.Demands {
		if re.Demands[tier] != d {
			t.Fatalf("%s demands changed: %+v -> %+v", tier, d, re.Demands[tier])
		}
	}
	if again := re.String(); again != rendered {
		t.Fatalf("String() not a fixpoint:\n%s\n---\n%s", rendered, again)
	}
}

func TestValidateDemandsProgrammatic(t *testing.T) {
	mk := func(d ResourceDemand) *Experiment {
		e := parseOne(t, `experiment "v" { benchmark rubis; platform emulab; workload { users 1; } }`)
		e.Demands = map[string]ResourceDemand{"db": d}
		return e
	}
	if err := Validate(mk(ResourceDemand{CPUScale: 1, DiskSec: 0.009, NetBytes: 600})); err != nil {
		t.Fatalf("valid demands rejected: %v", err)
	}
	bad := []ResourceDemand{
		{CPUScale: -1},
		{DiskSec: -0.001},
		{NetBytes: -1},
		{DiskSec: 61},
		{NetBytes: 2e9},
	}
	for _, d := range bad {
		if err := Validate(mk(d)); err == nil {
			t.Errorf("demands %+v accepted", d)
		}
	}
}
