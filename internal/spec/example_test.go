package spec_test

import (
	"fmt"

	"elba/internal/spec"
)

// Parsing a TBL document yields validated experiments with the paper's
// defaults filled in.
func ExampleParse() {
	doc, err := spec.Parse(`
experiment "demo" {
	benchmark rubis;
	platform  emulab;
	topologies 1-1-1, 1-2-1;
	workload  { users 50 to 250 step 50; writeratio 15; }
}`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	e := doc.Experiments[0]
	fmt.Println("name:", e.Name)
	fmt.Println("app server:", e.AppServer) // defaulted for RUBiS
	fmt.Println("trial:", e.Trial.WarmupSec, e.Trial.RunSec, e.Trial.CooldownSec)
	fmt.Println("trials:", e.TrialCount())
	fmt.Println("db node type:", e.Allocate["db"]) // Emulab default
	// Output:
	// name: demo
	// app server: jonas
	// trial: 60 300 60
	// trials: 10
	// db node type: low-end
}

// Topology triples use the paper's w-a-d notation.
func ExampleParseTopology() {
	t, _ := spec.ParseTopology("1-8-2")
	fmt.Println(t.Web, t.App, t.DB, "=", t)
	fmt.Println("machines:", t.Nodes())
	// Output:
	// 1 8 2 = 1-8-2
	// machines: 11
}

// Ranges expand to the swept values.
func ExampleRange_Values() {
	r := spec.Range{Lo: 50, Hi: 200, Step: 50}
	fmt.Println(r.Values())
	// Output:
	// [50 100 150 200]
}
