package spec

import (
	"fmt"
	"math"

	"elba/internal/expr"
	"elba/internal/fault"
)

// Benchmarks supported by the infrastructure.
var knownBenchmarks = map[string]bool{"rubis": true, "rubbos": true, "tpcapp": true}

// Platforms in the built-in catalog (paper Table 2).
var knownPlatforms = map[string]bool{"warp": true, "rohan": true, "emulab": true}

// Application servers per benchmark (paper Table 1).
var knownAppServers = map[string]map[string]bool{
	"rubis":  {"jonas": true, "weblogic": true},
	"rubbos": {"tomcat": true},
	"tpcapp": {"tomcat": true},
}

// applyDefaults fills the paper's defaults: trial periods per benchmark
// (§III.B), 5 s monitor sampling, all metric families, 30 s client
// timeout, and a fixed seed derived from the name for reproducibility.
func applyDefaults(e *Experiment) {
	if e.Trial == (Trial{}) {
		switch e.Benchmark {
		case "rubbos":
			// two-and-a-half minute warm-up/cool-down, 15 minute run
			e.Trial = Trial{WarmupSec: 150, RunSec: 900, CooldownSec: 150}
		default:
			// one minute warm-up/cool-down, five minute run
			e.Trial = Trial{WarmupSec: 60, RunSec: 300, CooldownSec: 60}
		}
	}
	if e.Monitor.IntervalSec == 0 {
		e.Monitor.IntervalSec = 5
	}
	if len(e.Monitor.Metrics) == 0 {
		e.Monitor.Metrics = []string{"cpu", "memory", "network", "disk"}
	}
	if e.Workload.TimeoutSec == 0 {
		e.Workload.TimeoutSec = 30
	}
	if e.Topology == (Topology{}) && len(e.Topologies) == 0 {
		e.Topology = Topology{Web: 1, App: 1, DB: 1}
	}
	if e.Seed == 0 {
		e.Seed = hashName(e.Name)
	}
	if e.Repeat == 0 {
		e.Repeat = 1
	}
	if e.AppServer == "" {
		switch e.Benchmark {
		case "rubis":
			e.AppServer = "jonas"
		default:
			e.AppServer = "tomcat"
		}
	}
	if e.Mix == "" && e.Benchmark == "rubbos" {
		e.Mix = "submission"
	}
	if e.Scaling.ThresholdUsers > 0 && e.Scaling.Engine == "" {
		e.Scaling.Engine = "auto"
	}
	for i := range e.Policies {
		if e.Policies[i].In && e.Policies[i].Min == 0 {
			e.Policies[i].Min = 1
		}
	}
	if len(e.Allocate) == 0 && e.Platform == "emulab" {
		// Paper §IV.A: the Emulab database node is the slow 600 MHz host;
		// web and app servers run on 3 GHz nodes.
		e.Allocate = map[string]string{"web": "high-end", "app": "high-end", "db": "low-end"}
	}
}

// hashName derives a stable 64-bit seed from the experiment name (FNV-1a).
func hashName(name string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Validate checks an experiment for structural and semantic errors. Parse
// validates every experiment it returns; Validate is exported so
// programmatically built experiments get the same checks.
func Validate(e *Experiment) error {
	if e.Name == "" {
		return fmt.Errorf("tbl: experiment needs a name")
	}
	if !knownBenchmarks[e.Benchmark] {
		return fmt.Errorf("tbl: experiment %q: unknown benchmark %q", e.Name, e.Benchmark)
	}
	if !knownPlatforms[e.Platform] {
		return fmt.Errorf("tbl: experiment %q: unknown platform %q", e.Name, e.Platform)
	}
	if e.AppServer != "" && !knownAppServers[e.Benchmark][e.AppServer] {
		return fmt.Errorf("tbl: experiment %q: app server %q not available for %s",
			e.Name, e.AppServer, e.Benchmark)
	}
	if e.Benchmark == "rubbos" && e.Mix != "read-only" && e.Mix != "submission" {
		return fmt.Errorf("tbl: experiment %q: rubbos mix must be read-only or submission, got %q",
			e.Name, e.Mix)
	}
	for _, t := range e.AllTopologies() {
		if t.Web < 1 || t.App < 1 || t.DB < 1 {
			return fmt.Errorf("tbl: experiment %q: topology %s needs at least one server per tier",
				e.Name, t)
		}
	}
	if e.Workload.UsersExpr != "" {
		prog, err := expr.Compile(e.Workload.UsersExpr)
		if err != nil {
			return fmt.Errorf("tbl: experiment %q: users expression: %v", e.Name, err)
		}
		if prog.Kind() != expr.Float {
			return fmt.Errorf("tbl: experiment %q: users expression must be float, got %s",
				e.Name, prog.Kind())
		}
		if v := prog.Eval(&expr.Env{}); !(v >= 1) {
			return fmt.Errorf("tbl: experiment %q: users expression starts at %g users at t=0 (needs at least 1)",
				e.Name, v)
		}
	} else {
		if e.Workload.Users.Lo < 1 {
			return fmt.Errorf("tbl: experiment %q: workload needs at least one user", e.Name)
		}
		if n := rangePoints(e.Workload.Users); n > maxRangePoints {
			return fmt.Errorf("tbl: experiment %q: users sweep expands to %.0f points (max %d)",
				e.Name, n, maxRangePoints)
		}
	}
	if e.SLO.AssertExpr != "" {
		prog, err := expr.Compile(e.SLO.AssertExpr)
		if err != nil {
			return fmt.Errorf("tbl: experiment %q: slo assert: %v", e.Name, err)
		}
		if prog.Kind() != expr.Bool {
			return fmt.Errorf("tbl: experiment %q: slo assert must be bool, got %s",
				e.Name, prog.Kind())
		}
	}
	wr := e.Workload.WriteRatioPct
	if wr.Lo < 0 || wr.Hi > 90 {
		return fmt.Errorf("tbl: experiment %q: write ratio %s outside the paper's 0–90%% range",
			e.Name, wr)
	}
	if n := rangePoints(wr); n > maxRangePoints {
		return fmt.Errorf("tbl: experiment %q: write-ratio sweep expands to %.0f points (max %d)",
			e.Name, n, maxRangePoints)
	}
	if e.Benchmark == "rubbos" && e.Mix == "read-only" && wr.Hi > 0 {
		return fmt.Errorf("tbl: experiment %q: read-only mix cannot carry a write ratio", e.Name)
	}
	if e.Trial.RunSec <= 0 {
		return fmt.Errorf("tbl: experiment %q: trial run period must be positive", e.Name)
	}
	if e.Trial.WarmupSec < 0 || e.Trial.CooldownSec < 0 {
		return fmt.Errorf("tbl: experiment %q: trial periods cannot be negative", e.Name)
	}
	if e.Monitor.IntervalSec <= 0 {
		return fmt.Errorf("tbl: experiment %q: monitor interval must be positive", e.Name)
	}
	for _, m := range e.Monitor.Metrics {
		switch m {
		case "cpu", "memory", "network", "disk":
		default:
			return fmt.Errorf("tbl: experiment %q: unknown metric family %q", e.Name, m)
		}
	}
	for tier := range e.Allocate {
		switch tier {
		case "web", "app", "db":
		default:
			return fmt.Errorf("tbl: experiment %q: allocate names unknown tier %q", e.Name, tier)
		}
	}
	for tier, d := range e.Demands {
		switch tier {
		case "web", "app", "db":
		default:
			return fmt.Errorf("tbl: experiment %q: demands names unknown tier %q", e.Name, tier)
		}
		bad := func(field string, v float64) error {
			return fmt.Errorf("tbl: experiment %q: %s tier %s demand %g out of range",
				e.Name, tier, field, v)
		}
		// Bounds reject nonsense (negative, NaN, Inf — possible only for
		// programmatically built experiments; the parser cannot produce
		// them) and keep declared demands physically plausible: CPU scaled
		// by at most 1000×, a disk op within a minute at the reference
		// spindle, a payload within a gigabyte.
		if !(d.CPUScale >= 0 && d.CPUScale <= 1000) {
			return bad("cpu", d.CPUScale)
		}
		if !(d.DiskSec >= 0 && d.DiskSec <= 60) {
			return bad("disk", d.DiskSec)
		}
		if !(d.NetBytes >= 0 && d.NetBytes <= 1e9) {
			return bad("net", d.NetBytes)
		}
	}
	// Repeat 0 means "unset" for programmatically built experiments and
	// is treated as 1 by the runner.
	if e.Repeat < 0 || e.Repeat > 100 {
		return fmt.Errorf("tbl: experiment %q: repeat %d outside 1–100", e.Name, e.Repeat)
	}
	for _, f := range e.Faults {
		target := f.Role
		if target == "" {
			target = "client"
		}
		switch f.Kind {
		case "", "crash", "slowdown", "stall", "errorburst":
		default:
			return fmt.Errorf("tbl: experiment %q: unknown fault kind %q", e.Name, f.Kind)
		}
		if f.Role == "" && f.Kind != "errorburst" {
			return fmt.Errorf("tbl: experiment %q: fault needs a role", e.Name)
		}
		switch f.Kind {
		case "slowdown", "stall":
			if f.Factor <= 0 || f.Factor >= 1 {
				return fmt.Errorf("tbl: experiment %q: %s fault on %s needs a factor in (0, 1), got %g",
					e.Name, f.Kind, target, f.Factor)
			}
		case "errorburst":
			if f.Factor <= 0 || f.Factor > 1 {
				return fmt.Errorf("tbl: experiment %q: errorburst needs an error probability in (0, 1], got %g",
					e.Name, f.Factor)
			}
		}
		if f.AtSec < 0 || f.DurationSec <= 0 {
			return fmt.Errorf("tbl: experiment %q: fault on %s needs non-negative start and positive duration",
				e.Name, target)
		}
		if f.AtSec+f.DurationSec > e.Trial.RunSec {
			return fmt.Errorf("tbl: experiment %q: fault on %s extends past the run period", e.Name, target)
		}
		if f.WhenExpr != "" {
			prog, err := expr.Compile(f.WhenExpr)
			if err != nil {
				return fmt.Errorf("tbl: experiment %q: fault when-guard: %v", e.Name, err)
			}
			if prog.Kind() != expr.Bool {
				return fmt.Errorf("tbl: experiment %q: fault when-guard must be bool, got %s",
					e.Name, prog.Kind())
			}
		}
	}
	if e.FaultProfile != "" {
		if _, ok := fault.ProfileByName(e.FaultProfile); !ok {
			return fmt.Errorf("tbl: experiment %q: unknown fault profile %q (have %v)",
				e.Name, e.FaultProfile, fault.Profiles())
		}
	}
	for _, pol := range e.Policies {
		switch pol.Tier {
		case "web", "app", "db":
		default:
			return fmt.Errorf("tbl: experiment %q: policy scales unknown tier %q", e.Name, pol.Tier)
		}
		if pol.Delta < 1 || pol.Delta > 64 {
			return fmt.Errorf("tbl: experiment %q: policy delta %d outside 1–64", e.Name, pol.Delta)
		}
		if pol.WhenExpr == "" {
			return fmt.Errorf("tbl: experiment %q: policy on %s needs a when predicate", e.Name, pol.Tier)
		}
		prog, err := expr.Compile(pol.WhenExpr)
		if err != nil {
			return fmt.Errorf("tbl: experiment %q: policy when predicate: %v", e.Name, err)
		}
		if prog.Kind() != expr.Bool {
			return fmt.Errorf("tbl: experiment %q: policy when predicate must be bool, got %s",
				e.Name, prog.Kind())
		}
		if pol.CooldownSec < 0 || math.IsNaN(pol.CooldownSec) {
			return fmt.Errorf("tbl: experiment %q: policy cooldown cannot be negative", e.Name)
		}
		if pol.In {
			if pol.Min < 1 {
				return fmt.Errorf("tbl: experiment %q: scale-in policy on %s needs min ≥ 1", e.Name, pol.Tier)
			}
			if pol.Max != 0 {
				return fmt.Errorf("tbl: experiment %q: scale-in policy on %s floors with min, not max",
					e.Name, pol.Tier)
			}
		} else {
			if pol.Max < 1 {
				return fmt.Errorf("tbl: experiment %q: scale-out policy on %s needs a max replica bound",
					e.Name, pol.Tier)
			}
			if pol.Max > 64 {
				return fmt.Errorf("tbl: experiment %q: policy max %d outside 1–64 (it sizes the spare node pool)",
					e.Name, pol.Max)
			}
			if pol.Min != 0 {
				return fmt.Errorf("tbl: experiment %q: scale-out policy on %s caps with max, not min",
					e.Name, pol.Tier)
			}
			for _, t := range e.AllTopologies() {
				base := map[string]int{"web": t.Web, "app": t.App, "db": t.DB}[pol.Tier]
				if pol.Max < base {
					return fmt.Errorf("tbl: experiment %q: policy max %d below topology %s's %d %s servers",
						e.Name, pol.Max, t, base, pol.Tier)
				}
			}
		}
	}
	switch e.Scaling.Engine {
	case "", "des", "fluid", "auto":
	default:
		return fmt.Errorf("tbl: experiment %q: unknown scaling engine %q (want des, fluid, or auto)",
			e.Name, e.Scaling.Engine)
	}
	if e.Scaling.Engine == "auto" && e.Scaling.ThresholdUsers < 1 {
		return fmt.Errorf("tbl: experiment %q: scaling engine auto needs a positive threshold", e.Name)
	}
	if e.Scaling.ThresholdUsers < 0 {
		return fmt.Errorf("tbl: experiment %q: scaling threshold cannot be negative", e.Name)
	}
	if e.Scaling.Engine == "fluid" || e.Scaling.Engine == "auto" {
		faulty := len(e.Faults) > 0
		if p, ok := fault.ProfileByName(e.FaultProfile); ok && p.Enabled() {
			faulty = true
		}
		if faulty {
			return fmt.Errorf("tbl: experiment %q: the fluid engine cannot emulate fault windows; remove the faults clause or use engine des",
				e.Name)
		}
	}
	return nil
}

// maxRangePoints bounds how many points a workload range may expand to.
// The cardinality is computed arithmetically, never by materializing the
// range, so adversarial sweeps like "users 1 to 9e18 step 1" are rejected
// here instead of hanging Range.Values.
const maxRangePoints = 10000

// rangePoints computes a range's cardinality without expanding it.
func rangePoints(r Range) float64 {
	if r.Fixed() {
		return 1
	}
	if r.Step <= 0 || math.IsNaN(r.Step) {
		return math.Inf(1)
	}
	n := math.Floor((r.Hi-r.Lo)/r.Step) + 1
	if math.IsNaN(n) {
		return math.Inf(1)
	}
	return n
}
