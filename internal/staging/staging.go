// Package staging statically validates Mulini-generated deployment
// bundles before they run. The Elba project's original application was
// "validation of staging deployment scripts" (paper §VI); this package is
// that idea for our bundles: it walks the generated scripts without
// executing them and reports structural defects — dangling script or
// artifact references, lifecycle violations (start before install,
// configure while running), leaked allocations, unreachable artifacts —
// with script/line provenance.
//
// The deploy engine would also surface most of these, but only at the
// first failing step of an actual run; staging finds every issue at once,
// cheaply, which is what made script validation worth a research project.
package staging

import (
	"fmt"
	"sort"
	"strings"

	"elba/internal/mulini"
)

// Severity classifies an issue.
type Severity int

// Issue severities. Errors would abort a deployment; warnings indicate
// waste or smells (unused artifacts, redundant steps).
const (
	Warning Severity = iota
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Issue is one validation finding.
type Issue struct {
	// Severity classifies the finding.
	Severity Severity
	// Script and Line locate it ("" for bundle-level findings).
	Script string
	Line   int
	// Message describes the defect.
	Message string
}

// String renders the issue compiler-style.
func (i Issue) String() string {
	if i.Script == "" {
		return fmt.Sprintf("%s: %s", i.Severity, i.Message)
	}
	return fmt.Sprintf("%s:%d: %s: %s", i.Script, i.Line, i.Severity, i.Message)
}

// svcState mirrors the cluster lifecycle for static tracking.
type svcState int

const (
	absent svcState = iota
	installed
	configured
	running
	stopped
)

// validator walks scripts accumulating simulated state.
type validator struct {
	bundle *mulini.Bundle
	issues []Issue

	allocated map[string]bool
	services  map[string]map[string]svcState // role → pkg → state
	visited   map[string]bool                // scripts reached from the entry
	usedArts  map[string]bool                // artifacts referenced by pushes
	depth     int
}

// Validate statically checks a bundle starting from entry (normally
// "run.sh"), then checks teardown.sh if present, and finally reports
// bundle-level findings (unreferenced artifacts, unreachable scripts).
// Issues are ordered errors-first, then by location.
func Validate(b *mulini.Bundle, entry string) []Issue {
	v := &validator{
		bundle:    b,
		allocated: map[string]bool{},
		services:  map[string]map[string]svcState{},
		visited:   map[string]bool{},
		usedArts:  map[string]bool{},
	}
	if _, ok := b.Get(entry); !ok {
		return []Issue{{Severity: Error, Message: fmt.Sprintf("bundle has no entry script %q", entry)}}
	}
	v.walk(entry)
	// Everything ignited by run.sh should be running at its end.
	for role, pkgs := range v.services {
		for pkg, st := range pkgs {
			if st != running {
				v.errf("", 0, "after %s: %s on %s is %s, expected running", entry, pkg, role, stateName(st))
			}
		}
	}
	if _, ok := b.Get("teardown.sh"); ok {
		v.walk("teardown.sh")
		for role := range v.allocated {
			if v.allocated[role] {
				v.errf("", 0, "after teardown.sh: role %s still allocated", role)
			}
		}
		for role, pkgs := range v.services {
			for pkg, st := range pkgs {
				if st == running {
					v.errf("", 0, "after teardown.sh: %s on %s still running", pkg, role)
				}
			}
		}
	}
	// Bundle-level checks.
	for _, path := range b.Paths() {
		a, _ := b.Get(path)
		switch a.Kind {
		case mulini.Script:
			if !v.visited[path] {
				v.warnf("", 0, "script %s is unreachable from %s/teardown.sh", path, entry)
			}
		case mulini.Config, mulini.Data:
			if !v.usedArts[path] {
				v.warnf("", 0, "artifact %s is never pushed to any node", path)
			}
		}
	}
	sort.SliceStable(v.issues, func(i, j int) bool {
		if v.issues[i].Severity != v.issues[j].Severity {
			return v.issues[i].Severity > v.issues[j].Severity
		}
		if v.issues[i].Script != v.issues[j].Script {
			return v.issues[i].Script < v.issues[j].Script
		}
		return v.issues[i].Line < v.issues[j].Line
	})
	return v.issues
}

func stateName(s svcState) string {
	return [...]string{"absent", "installed", "configured", "running", "stopped"}[s]
}

func (v *validator) errf(script string, line int, format string, args ...interface{}) {
	v.issues = append(v.issues, Issue{Severity: Error, Script: script, Line: line,
		Message: fmt.Sprintf(format, args...)})
}

func (v *validator) warnf(script string, line int, format string, args ...interface{}) {
	v.issues = append(v.issues, Issue{Severity: Warning, Script: script, Line: line,
		Message: fmt.Sprintf(format, args...)})
}

func (v *validator) walk(path string) {
	if v.depth > 16 {
		v.errf(path, 0, "script nesting exceeds 16 levels (recursion?)")
		return
	}
	art, ok := v.bundle.Get(path)
	if !ok {
		return // caller reports the dangling reference with its location
	}
	v.visited[path] = true
	v.depth++
	defer func() { v.depth-- }()
	for i, raw := range strings.Split(art.Content, "\n") {
		line := strings.TrimSpace(raw)
		lineNo := i + 1
		switch {
		case strings.HasPrefix(line, "bash "):
			sub := strings.TrimSpace(strings.TrimPrefix(line, "bash "))
			if sa, ok := v.bundle.Get(sub); !ok {
				v.errf(path, lineNo, "references missing script %q", sub)
			} else if sa.Kind != mulini.Script {
				v.errf(path, lineNo, "invokes non-script artifact %q", sub)
			} else {
				v.walk(sub)
			}
		case line == "elbactl" || strings.HasPrefix(line, "elbactl "):
			v.checkElbactl(path, lineNo, line)
		}
	}
}

func (v *validator) checkElbactl(script string, lineNo int, line string) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		v.errf(script, lineNo, "malformed elbactl command")
		return
	}
	verb := fields[1]
	flags := map[string]string{}
	for i := 2; i+1 < len(fields); i += 2 {
		flags[strings.TrimPrefix(fields[i], "--")] = strings.Trim(fields[i+1], `"`)
	}
	role := flags["role"]
	if role == "" {
		v.errf(script, lineNo, "elbactl %s without --role", verb)
		return
	}
	state := func(pkg string) svcState {
		if v.services[role] == nil {
			return absent
		}
		return v.services[role][pkg]
	}
	setState := func(pkg string, st svcState) {
		if v.services[role] == nil {
			v.services[role] = map[string]svcState{}
		}
		v.services[role][pkg] = st
	}
	switch verb {
	case "allocate":
		if v.allocated[role] {
			v.errf(script, lineNo, "role %s allocated twice", role)
		}
		v.allocated[role] = true
	case "release":
		if !v.allocated[role] {
			v.errf(script, lineNo, "release of unallocated role %s", role)
		}
		v.allocated[role] = false
	case "install":
		if !v.allocated[role] {
			v.errf(script, lineNo, "install on unallocated role %s", role)
		}
		pkg := flags["package"]
		if pkg == "" {
			v.errf(script, lineNo, "install without --package")
			return
		}
		if state(pkg) != absent {
			v.errf(script, lineNo, "%s already installed on %s", pkg, role)
		}
		setState(pkg, installed)
	case "configure":
		pkg := flags["package"]
		if pkg == "" {
			v.errf(script, lineNo, "configure without --package")
			return
		}
		switch state(pkg) {
		case absent:
			v.errf(script, lineNo, "configure of %s on %s before install", pkg, role)
		case running:
			v.errf(script, lineNo, "configure of %s on %s while running", pkg, role)
		}
		setState(pkg, configured)
	case "start":
		svc := flags["service"]
		if svc == "" {
			v.errf(script, lineNo, "start without --service")
			return
		}
		switch state(svc) {
		case configured, stopped:
		case running:
			v.errf(script, lineNo, "%s on %s started twice", svc, role)
		default:
			v.errf(script, lineNo, "start of %s on %s from state %s", svc, role, stateName(state(svc)))
		}
		setState(svc, running)
	case "stop":
		svc := flags["service"]
		if svc == "" {
			v.errf(script, lineNo, "stop without --service")
			return
		}
		if state(svc) != running {
			v.errf(script, lineNo, "stop of %s on %s which is %s", svc, role, stateName(state(svc)))
		}
		setState(svc, stopped)
	case "push":
		artName := flags["artifact"]
		if artName == "" || flags["file"] == "" {
			v.errf(script, lineNo, "push needs --file and --artifact")
			return
		}
		if _, ok := v.bundle.Get(artName); !ok {
			v.errf(script, lineNo, "push references missing artifact %q", artName)
			return
		}
		v.usedArts[artName] = true
		if !v.allocated[role] {
			v.errf(script, lineNo, "push to unallocated role %s", role)
		}
	default:
		v.errf(script, lineNo, "unknown elbactl verb %q", verb)
	}
}

// Errors filters the issues to errors only.
func Errors(issues []Issue) []Issue {
	var out []Issue
	for _, i := range issues {
		if i.Severity == Error {
			out = append(out, i)
		}
	}
	return out
}
