package staging

import (
	"strings"
	"testing"

	"elba/internal/cim"
	"elba/internal/mulini"
	"elba/internal/spec"
)

func generated(t *testing.T, topo string) *mulini.Bundle {
	t.Helper()
	cat, err := cim.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := spec.Parse(`experiment "stage" {
		benchmark rubis; platform emulab; appserver jonas;
		topologies ` + topo + `;
		workload { users 100; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mulini.NewGenerator(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.Generate(doc.Experiments[0])
	if err != nil {
		t.Fatal(err)
	}
	return ds[0].Bundle
}

// TestGeneratedBundlesValidateClean is the generator's staging contract:
// Mulini output must produce zero errors and zero warnings.
func TestGeneratedBundlesValidateClean(t *testing.T) {
	for _, topo := range []string{"1-1-1", "1-2-2", "1-8-3"} {
		issues := Validate(generated(t, topo), "run.sh")
		for _, i := range issues {
			t.Errorf("%s: %s", topo, i)
		}
	}
}

func scriptBundle(t *testing.T, scripts map[string]string) *mulini.Bundle {
	t.Helper()
	b := mulini.NewBundle()
	for path, content := range scripts {
		kind := mulini.Script
		if strings.HasSuffix(path, ".properties") {
			kind = mulini.Config
		}
		if err := b.Add(mulini.Artifact{Path: path, Kind: kind, Content: content}); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func wantIssue(t *testing.T, issues []Issue, substr string) {
	t.Helper()
	for _, i := range issues {
		if strings.Contains(i.Message, substr) {
			return
		}
	}
	t.Errorf("no issue mentions %q; got %v", substr, issues)
}

func TestValidateMissingEntry(t *testing.T) {
	b := scriptBundle(t, map[string]string{"other.sh": "echo hi\n"})
	issues := Validate(b, "run.sh")
	if len(issues) != 1 || issues[0].Severity != Error {
		t.Fatalf("issues = %v", issues)
	}
	wantIssue(t, issues, "no entry script")
}

func TestValidateDanglingScriptReference(t *testing.T) {
	b := scriptBundle(t, map[string]string{"run.sh": "bash missing.sh\n"})
	wantIssue(t, Validate(b, "run.sh"), "missing script")
}

func TestValidateLifecycleViolations(t *testing.T) {
	cases := []struct {
		name   string
		script string
		want   string
	}{
		{"start before install",
			"elbactl allocate --role A\nelbactl start --role A --service x\n",
			"from state absent"},
		{"configure before install",
			"elbactl allocate --role A\nelbactl configure --role A --package x\n",
			"before install"},
		{"double install",
			"elbactl allocate --role A\nelbactl install --role A --package x\nelbactl install --role A --package x\n",
			"already installed"},
		{"double start",
			"elbactl allocate --role A\nelbactl install --role A --package x\nelbactl configure --role A --package x\nelbactl start --role A --service x\nelbactl start --role A --service x\n",
			"started twice"},
		{"install unallocated",
			"elbactl install --role A --package x\n",
			"unallocated role"},
		{"double allocate",
			"elbactl allocate --role A\nelbactl allocate --role A\n",
			"allocated twice"},
		{"release unallocated",
			"elbactl release --role Z\n",
			"unallocated role"},
		{"unknown verb",
			"elbactl allocate --role A\nelbactl frob --role A\n",
			"unknown elbactl verb"},
		{"push missing artifact",
			"elbactl allocate --role A\nelbactl push --role A --file /x --artifact nope\n",
			"missing artifact"},
	}
	for _, c := range cases {
		b := scriptBundle(t, map[string]string{"run.sh": c.script})
		issues := Errors(Validate(b, "run.sh"))
		found := false
		for _, i := range issues {
			if strings.Contains(i.Message, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no error mentions %q; got %v", c.name, c.want, issues)
		}
	}
}

func TestValidateServicesLeftDown(t *testing.T) {
	b := scriptBundle(t, map[string]string{
		"run.sh": "elbactl allocate --role A\nelbactl install --role A --package x\nelbactl configure --role A --package x\n",
	})
	wantIssue(t, Validate(b, "run.sh"), "expected running")
}

func TestValidateTeardownLeaks(t *testing.T) {
	b := scriptBundle(t, map[string]string{
		"run.sh": "elbactl allocate --role A\nelbactl install --role A --package x\n" +
			"elbactl configure --role A --package x\nelbactl start --role A --service x\n",
		"teardown.sh": "elbactl stop --role A --service x\n", // no release
	})
	wantIssue(t, Validate(b, "run.sh"), "still allocated")
}

func TestValidateUnreachableAndUnused(t *testing.T) {
	b := scriptBundle(t, map[string]string{
		"run.sh":            "elbactl allocate --role A\nelbactl release --role A\n",
		"orphan.sh":         "echo never called\n",
		"unused.properties": "key=value\n",
	})
	issues := Validate(b, "run.sh")
	wantIssue(t, issues, "unreachable")
	wantIssue(t, issues, "never pushed")
	// Both are warnings, not errors.
	if len(Errors(issues)) != 0 {
		t.Fatalf("expected warnings only: %v", issues)
	}
}

func TestValidateRecursionCapped(t *testing.T) {
	b := scriptBundle(t, map[string]string{"run.sh": "bash run.sh\n"})
	wantIssue(t, Validate(b, "run.sh"), "nesting")
}

func TestIssueString(t *testing.T) {
	i := Issue{Severity: Error, Script: "run.sh", Line: 3, Message: "boom"}
	if i.String() != "run.sh:3: error: boom" {
		t.Fatalf("issue string = %q", i.String())
	}
	b := Issue{Severity: Warning, Message: "meh"}
	if b.String() != "warning: meh" {
		t.Fatalf("bundle-level string = %q", b.String())
	}
}

// TestValidatorMatchesEngine cross-checks the static validator against
// the dynamic deploy engine: a bundle that validates without errors must
// deploy; a bundle with a lifecycle error must fail execution too.
func TestValidatorMatchesEngine(t *testing.T) {
	good := generated(t, "1-2-1")
	if errs := Errors(Validate(good, "run.sh")); len(errs) != 0 {
		t.Fatalf("clean bundle has errors: %v", errs)
	}
	// Corrupt the bundle: reference a missing artifact.
	bad := scriptBundle(t, map[string]string{
		"run.sh": "elbactl allocate --role A\nelbactl push --role A --file /x --artifact gone\n",
	})
	if errs := Errors(Validate(bad, "run.sh")); len(errs) == 0 {
		t.Fatalf("corrupted bundle validated clean")
	}
}
