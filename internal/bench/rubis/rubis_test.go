package rubis

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNewValidatesWriteRatio(t *testing.T) {
	for _, w := range []float64{-0.1, 0.91, 1.5} {
		if _, err := New(JOnAS, w); err == nil {
			t.Errorf("write ratio %g should be rejected", w)
		}
	}
	for _, w := range []float64{0, 0.15, 0.9} {
		if _, err := New(JOnAS, w); err != nil {
			t.Errorf("write ratio %g rejected: %v", w, err)
		}
	}
}

func TestInteractionCount(t *testing.T) {
	p, err := Bidding(JOnAS)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Interactions()); got != NumInteractions {
		t.Fatalf("interactions = %d, want %d (paper §III.B)", got, NumInteractions)
	}
	writes := 0
	for _, it := range p.Interactions() {
		if it.Write {
			writes++
		}
	}
	if writes != 5 {
		t.Fatalf("write interactions = %d, want 5", writes)
	}
}

func TestWriteFractionMatchesRatio(t *testing.T) {
	for _, w := range []float64{0, 0.15, 0.3, 0.6, 0.9} {
		p, err := New(JOnAS, w)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Matrix().WriteFraction(); math.Abs(got-w) > 1e-9 {
			t.Errorf("w=%g: stationary write fraction %g", w, got)
		}
	}
}

// TestCalibratedDemands checks the design's headline calibration: mean app
// demand at w=0.15 must give ≈250 users per JOnAS app server with the 7 s
// think time (N* ≈ (Z+R)/D with R ≈ 0.5 s near saturation).
func TestCalibratedDemands(t *testing.T) {
	p, err := Bidding(JOnAS)
	if err != nil {
		t.Fatal(err)
	}
	_, app, _ := p.MeanDemands()
	want := 0.85*jonasReadApp + 0.15*jonasWriteApp
	if math.Abs(app-want)/want > 1e-6 {
		t.Fatalf("mean app demand = %.6f, want %.6f", app, want)
	}
	users := (ThinkTime + 0.5) / app
	if users < 230 || users > 280 {
		t.Fatalf("implied app-server capacity %.0f users, want ≈250", users)
	}
}

func TestWriteRatioLowersAppDemand(t *testing.T) {
	// Paper §IV.A: high write ratio → little app-tier work → short RT.
	low, err := New(JOnAS, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	high, err := New(JOnAS, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	_, appLow, _ := low.MeanDemands()
	_, appHigh, _ := high.MeanDemands()
	if appHigh >= appLow {
		t.Fatalf("app demand should fall with write ratio: w=0 %.4f vs w=0.9 %.4f", appLow, appHigh)
	}
}

func TestWebLogicSaturationDoubling(t *testing.T) {
	j, err := Bidding(JOnAS)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Bidding(WebLogic)
	if err != nil {
		t.Fatal(err)
	}
	_, appJ, _ := j.MeanDemands()
	_, appW, _ := w.MeanDemands()
	// JOnAS ran on single-CPU Emulab nodes, WebLogic on dual-CPU Warp
	// blades (paper Table 2). Saturation population scales with
	// cores/demand, and the paper reports "about twice as many users at
	// saturation" for WebLogic (§IV.B).
	jonasUsers := 1.0 / appJ * (ThinkTime + 0.5)
	weblogicUsers := 2.0 * 1.02 / appW * (ThinkTime + 0.5)
	ratio := weblogicUsers / jonasUsers
	if ratio < 1.8 || ratio > 2.5 {
		t.Fatalf("WebLogic/JOnAS saturation ratio = %.2f, want ≈2 (paper §IV.B)", ratio)
	}
	// DB demands must be identical: the DB tier does not change.
	_, _, dbJ := j.MeanDemands()
	_, _, dbW := w.MeanDemands()
	if math.Abs(dbJ-dbW)/dbJ > 1e-9 {
		t.Fatalf("DB demand differs across app servers: %g vs %g", dbJ, dbW)
	}
}

func TestSessionReachesAllInteractions(t *testing.T) {
	p, err := Bidding(JOnAS)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	sess := p.NewSession(rng)
	seen := make(map[string]bool)
	for i := 0; i < 200000; i++ {
		seen[sess.Next(rng).Name] = true
	}
	if len(seen) != NumInteractions {
		missing := []string{}
		for _, it := range p.Interactions() {
			if !seen[it.Name] {
				missing = append(missing, it.Name)
			}
		}
		t.Fatalf("chain visited %d/%d interactions; missing %v", len(seen), NumInteractions, missing)
	}
}

func TestBrowseOnlyHasNoWrites(t *testing.T) {
	p, err := BrowseOnly(WebLogic)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	sess := p.NewSession(rng)
	for i := 0; i < 20000; i++ {
		if it := sess.Next(rng); it.Write {
			t.Fatalf("browse-only mix issued write %s", it.Name)
		}
	}
}

func TestAppServerString(t *testing.T) {
	if JOnAS.String() != "jonas" || WebLogic.String() != "weblogic" {
		t.Fatalf("server names wrong")
	}
	if AppServer(9).String() == "" {
		t.Fatalf("unknown server should render")
	}
	if _, err := New(AppServer(9), 0.15); err == nil {
		t.Fatalf("unknown server should be rejected")
	}
}

func TestProfileNameEncodesVariant(t *testing.T) {
	p, err := New(WebLogic, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "rubis/weblogic/w=30%" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.ThinkTime() != ThinkTime {
		t.Fatalf("think time = %g", p.ThinkTime())
	}
}
