// Package rubis models the RUBiS auction-site benchmark (Rice University
// Bidding System) used in the paper's Sections IV and V: 26 interaction
// types, the browse-only and bidding transition mixes, and a tunable
// database write ratio extended to 0%–90% as in the paper's Figures 1–3.
//
// Two application-server demand profiles are provided, matching the
// paper's JOnAS and WebLogic experiments; the WebLogic server sustains
// roughly twice the users of JOnAS at saturation (paper §IV.B).
package rubis

import (
	"fmt"

	"elba/internal/bench"
	"elba/internal/sim"
)

// AppServer selects the application-server demand profile.
type AppServer int

// Supported application servers (paper Table 1: JOnAS and WebLogic 8.1).
const (
	JOnAS AppServer = iota
	WebLogic
)

// String names the server for reports.
func (a AppServer) String() string {
	switch a {
	case JOnAS:
		return "jonas"
	case WebLogic:
		return "weblogic"
	default:
		return fmt.Sprintf("appserver(%d)", int(a))
	}
}

// ThinkTime is the emulated browser's mean think time in seconds,
// matching the RUBiS client emulator default.
const ThinkTime = 7.0

// Reference per-class demand targets in CPU seconds at the 3 GHz
// reference frequency (see DESIGN.md §3 for the calibration derivation).
const (
	webDemand = 0.0015

	jonasReadApp  = 0.0344
	jonasWriteApp = 0.0050

	// WebLogic is modestly more efficient per request than JOnAS; the
	// paper's "about twice as many users at saturation" (§IV.B) is the
	// product of this and the Warp nodes' two CPUs (Table 2), versus the
	// single-CPU Emulab nodes JOnAS ran on.
	weblogicReadApp  = 0.0310
	weblogicWriteApp = 0.0045

	readDB  = 0.00078
	writeDB = 0.00157
)

// state declares one RUBiS interaction and its hand-authored relative
// demand weights; absolute demands come from calibration against the
// per-class targets.
type state struct {
	name      string
	write     bool
	appWeight float64
	dbWeight  float64
	reply     int // reply size in bytes
	next      map[string]float64
}

// The 26 RUBiS interaction states. Successor weights encode the user's
// browsing structure: browsing leads to searches, item views lead to bid,
// buy, and comment flows, and the write interactions return the user to
// browsing. The five write interactions (RegisterUser, StoreBuyNow,
// StoreBid, StoreComment, RegisterItem) are the database writers.
var rubisStates = []state{
	{name: "Home", appWeight: 0.3, dbWeight: 0.3, reply: 2600, next: map[string]float64{
		"Browse": 6, "Register": 1, "SellItemForm": 1, "AboutMe": 1,
	}},
	{name: "Browse", appWeight: 0.4, dbWeight: 0.4, reply: 3200, next: map[string]float64{
		"BrowseCategories": 5, "BrowseRegions": 3,
	}},
	{name: "BrowseCategories", appWeight: 0.8, dbWeight: 0.9, reply: 6300, next: map[string]float64{
		"SearchItemsInCategory": 8, "Browse": 1,
	}},
	{name: "SearchItemsInCategory", appWeight: 1.6, dbWeight: 1.8, reply: 12000, next: map[string]float64{
		"ViewItem": 6, "SearchItemsInCategory": 3, "Browse": 1,
	}},
	{name: "BrowseRegions", appWeight: 0.8, dbWeight: 0.8, reply: 5200, next: map[string]float64{
		"BrowseCategoriesInRegion": 8, "Browse": 1,
	}},
	{name: "BrowseCategoriesInRegion", appWeight: 1.0, dbWeight: 0.9, reply: 6100, next: map[string]float64{
		"SearchItemsInRegion": 8, "Browse": 1,
	}},
	{name: "SearchItemsInRegion", appWeight: 1.6, dbWeight: 1.7, reply: 11500, next: map[string]float64{
		"ViewItem": 6, "SearchItemsInRegion": 3, "Browse": 1,
	}},
	{name: "ViewItem", appWeight: 1.2, dbWeight: 1.2, reply: 8800, next: map[string]float64{
		"ViewUserInfo": 2, "ViewBidHistory": 2, "PutBidAuth": 3,
		"BuyNowAuth": 1, "PutCommentAuth": 1, "Browse": 3,
	}},
	{name: "ViewUserInfo", appWeight: 0.9, dbWeight: 1.0, reply: 6200, next: map[string]float64{
		"ViewItem": 4, "Browse": 2,
	}},
	{name: "ViewBidHistory", appWeight: 1.1, dbWeight: 1.5, reply: 7400, next: map[string]float64{
		"ViewItem": 4, "PutBidAuth": 2, "Browse": 1,
	}},
	{name: "BuyNowAuth", appWeight: 0.5, dbWeight: 0.5, reply: 2100, next: map[string]float64{
		"BuyNow": 9, "ViewItem": 1,
	}},
	{name: "BuyNow", appWeight: 0.9, dbWeight: 0.9, reply: 4300, next: map[string]float64{
		"StoreBuyNow": 8, "ViewItem": 2,
	}},
	{name: "StoreBuyNow", write: true, appWeight: 1.0, dbWeight: 1.0, reply: 1700, next: map[string]float64{
		"Home": 2, "Browse": 6,
	}},
	{name: "PutBidAuth", appWeight: 0.5, dbWeight: 0.5, reply: 2100, next: map[string]float64{
		"PutBid": 9, "ViewItem": 1,
	}},
	{name: "PutBid", appWeight: 1.0, dbWeight: 1.1, reply: 5400, next: map[string]float64{
		"StoreBid": 8, "ViewItem": 2,
	}},
	{name: "StoreBid", write: true, appWeight: 1.0, dbWeight: 0.8, reply: 1600, next: map[string]float64{
		"SearchItemsInCategory": 4, "ViewItem": 3, "Browse": 3,
	}},
	{name: "PutCommentAuth", appWeight: 0.5, dbWeight: 0.5, reply: 2100, next: map[string]float64{
		"PutComment": 9, "ViewItem": 1,
	}},
	{name: "PutComment", appWeight: 0.8, dbWeight: 0.8, reply: 3900, next: map[string]float64{
		"StoreComment": 8, "ViewItem": 2,
	}},
	{name: "StoreComment", write: true, appWeight: 1.0, dbWeight: 0.9, reply: 1600, next: map[string]float64{
		"ViewItem": 5, "Browse": 5,
	}},
	{name: "Register", appWeight: 0.4, dbWeight: 0.3, reply: 2500, next: map[string]float64{
		"RegisterUser": 8, "Home": 2,
	}},
	{name: "RegisterUser", write: true, appWeight: 1.0, dbWeight: 1.2, reply: 1900, next: map[string]float64{
		"Home": 4, "Browse": 6,
	}},
	{name: "SellItemForm", appWeight: 0.5, dbWeight: 0.4, reply: 2300, next: map[string]float64{
		"SelectCategoryToSellItem": 9, "Home": 1,
	}},
	{name: "SelectCategoryToSellItem", appWeight: 0.6, dbWeight: 0.6, reply: 3600, next: map[string]float64{
		"Sell": 9, "Home": 1,
	}},
	{name: "Sell", appWeight: 0.5, dbWeight: 0.5, reply: 3100, next: map[string]float64{
		"RegisterItem": 8, "Home": 2,
	}},
	{name: "RegisterItem", write: true, appWeight: 1.0, dbWeight: 1.4, reply: 1800, next: map[string]float64{
		"Home": 3, "Browse": 7,
	}},
	{name: "AboutMe", appWeight: 1.8, dbWeight: 2.0, reply: 14800, next: map[string]float64{
		"ViewItem": 4, "Browse": 4, "Home": 2,
	}},
}

// NumInteractions is the number of RUBiS interaction types.
const NumInteractions = 26

// DefaultWriteRatio is the bidding mix's write fraction (paper §III.B:
// "bidding interactions that cause 15% writes to the database").
const DefaultWriteRatio = 0.15

// buildStates materializes a fresh interaction table (each model owns its
// own copy because calibration rescales demands in place).
func buildStates() []sim.Interaction {
	out := make([]sim.Interaction, len(rubisStates))
	for i, s := range rubisStates {
		out[i] = sim.Interaction{
			Name:         s.name,
			Write:        s.write,
			AppDemand:    s.appWeight, // placeholder weight; calibrated below
			DBDemand:     s.dbWeight,
			WebDemand:    1,
			RequestBytes: 420,
			ReplyBytes:   s.reply,
		}
	}
	return out
}

// buildMatrix constructs the bidding-mix base transition matrix over a
// fresh state table.
func buildMatrix() (*bench.TransitionMatrix, error) {
	states := buildStates()
	index := make(map[string]int, len(states))
	for i, s := range states {
		index[s.Name] = i
	}
	rows := make([][]float64, len(states))
	for i, s := range rubisStates {
		row := make([]float64, len(states))
		for name, w := range s.next {
			j, ok := index[name]
			if !ok {
				return nil, fmt.Errorf("rubis: state %s references unknown successor %s", s.name, name)
			}
			row[j] = w
		}
		rows[i] = row
	}
	return bench.NewTransitionMatrix(states, rows)
}

// New builds a RUBiS workload model for the given application server and
// database write ratio in [0, 0.9] (the paper's extended range).
func New(server AppServer, writeRatio float64) (*bench.Profile, error) {
	if writeRatio < 0 || writeRatio > 0.9 {
		return nil, fmt.Errorf("rubis: write ratio %g outside the paper's 0–0.9 range", writeRatio)
	}
	base, err := buildMatrix()
	if err != nil {
		return nil, err
	}
	m, err := base.Reweight(writeRatio)
	if err != nil {
		return nil, err
	}
	targets := bench.DemandTargets{
		Web:     webDemand,
		ReadDB:  readDB,
		WriteDB: writeDB,
	}
	switch server {
	case JOnAS:
		targets.ReadApp, targets.WriteApp = jonasReadApp, jonasWriteApp
	case WebLogic:
		targets.ReadApp, targets.WriteApp = weblogicReadApp, weblogicWriteApp
	default:
		return nil, fmt.Errorf("rubis: unknown application server %v", server)
	}
	if err := bench.Calibrate(m, targets); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("rubis/%s/w=%.0f%%", server, writeRatio*100)
	return bench.NewProfile(name, m, ThinkTime)
}

// BrowseOnly builds the read-only browsing mix (write ratio 0).
func BrowseOnly(server AppServer) (*bench.Profile, error) {
	return New(server, 0)
}

// Bidding builds the default bidding mix (15% writes).
func Bidding(server AppServer) (*bench.Profile, error) {
	return New(server, DefaultWriteRatio)
}
