package bench

import (
	"fmt"
	"math/rand/v2"

	"elba/internal/sim"
)

// Profile is a complete benchmark workload model: a transition matrix plus
// a mean think time. It implements sim.Model.
type Profile struct {
	name   string
	matrix *TransitionMatrix
	think  float64
}

// NewProfile assembles a workload model. think is the mean think time in
// seconds.
func NewProfile(name string, m *TransitionMatrix, think float64) (*Profile, error) {
	if m == nil || m.Len() == 0 {
		return nil, fmt.Errorf("bench: profile %q needs a transition matrix", name)
	}
	if think < 0 {
		return nil, fmt.Errorf("bench: profile %q has negative think time", name)
	}
	return &Profile{name: name, matrix: m, think: think}, nil
}

// Name identifies the benchmark and variant.
func (p *Profile) Name() string { return p.name }

// ThinkTime reports the mean think time in seconds.
func (p *Profile) ThinkTime() float64 { return p.think }

// Matrix exposes the transition matrix for analysis and reporting.
func (p *Profile) Matrix() *TransitionMatrix { return p.matrix }

// Interactions lists the distinct interaction types.
func (p *Profile) Interactions() []sim.Interaction { return p.matrix.States() }

// markovSession walks the profile's transition matrix.
type markovSession struct {
	m     *TransitionMatrix
	state int
}

// NewSession creates a user session starting in a stationary-weighted
// random state, so short measurement windows are not biased by a fixed
// entry page.
func (p *Profile) NewSession(rng *rand.Rand) sim.Session {
	return &markovSession{m: p.matrix, state: rng.IntN(p.matrix.Len())}
}

// Next advances the Markov chain and returns the interaction performed.
func (s *markovSession) Next(rng *rand.Rand) sim.Interaction {
	s.state = s.m.Next(s.state, rng)
	return s.m.States()[s.state]
}

// MeanDemands reports the stationary mean per-tier demands of the profile,
// used by calibration tests and capacity reports: these are the D values
// in the closed-network saturation law N* ≈ c·(Z+R)/D.
func (p *Profile) MeanDemands() (web, app, db float64) {
	pi := p.matrix.Stationary()
	for j, s := range p.matrix.States() {
		web += pi[j] * s.WebDemand
		app += pi[j] * s.AppDemand
		db += pi[j] * s.DBDemand
	}
	return web, app, db
}

// MeanBytes reports the stationary mean request and reply sizes, which
// the monitoring layer uses for network-I/O accounting.
func (p *Profile) MeanBytes() (request, reply float64) {
	pi := p.matrix.Stationary()
	for j, s := range p.matrix.States() {
		request += pi[j] * float64(s.RequestBytes)
		reply += pi[j] * float64(s.ReplyBytes)
	}
	return request, reply
}

// DemandTargets are conditional per-class mean demands used to calibrate a
// state table against measured or published service times. All values are
// CPU seconds at the reference frequency.
type DemandTargets struct {
	// Web is the mean web-tier demand for every interaction.
	Web float64
	// ReadApp and WriteApp are mean app-tier demands conditioned on the
	// interaction class.
	ReadApp  float64
	WriteApp float64
	// ReadDB and WriteDB are mean DB demands conditioned on class.
	ReadDB  float64
	WriteDB float64
}

// Calibrate rescales the states' demands in place so that the
// stationary conditional means under matrix m equal the targets, while
// preserving each interaction's relative weight within its class. A class
// with zero stationary mass (e.g. write states at write ratio 0) is left
// unscaled: its demands cannot affect the workload. It returns an error
// when a class with mass has zero current demand, which would make the
// target unreachable.
func Calibrate(m *TransitionMatrix, t DemandTargets) error {
	pi := m.Stationary()
	states := m.States()
	var readMass, writeMass float64
	var readApp, writeApp, readDB, writeDB, webMean float64
	for j, s := range states {
		if s.Write {
			writeMass += pi[j]
			writeApp += pi[j] * s.AppDemand
			writeDB += pi[j] * s.DBDemand
		} else {
			readMass += pi[j]
			readApp += pi[j] * s.AppDemand
			readDB += pi[j] * s.DBDemand
		}
		webMean += pi[j] * s.WebDemand
	}
	scale := func(current, mass, target float64, class string) (float64, error) {
		if mass == 0 {
			return 1, nil
		}
		mean := current / mass
		if mean <= 0 {
			if target == 0 {
				return 1, nil
			}
			return 0, fmt.Errorf("bench: cannot calibrate %s demands: current mean is zero", class)
		}
		return target / mean, nil
	}
	ra, err := scale(readApp, readMass, t.ReadApp, "read app")
	if err != nil {
		return err
	}
	wa, err := scale(writeApp, writeMass, t.WriteApp, "write app")
	if err != nil {
		return err
	}
	rd, err := scale(readDB, readMass, t.ReadDB, "read db")
	if err != nil {
		return err
	}
	wd, err := scale(writeDB, writeMass, t.WriteDB, "write db")
	if err != nil {
		return err
	}
	wb, err := scale(webMean, 1, t.Web, "web")
	if err != nil {
		return err
	}
	for j := range states {
		states[j].WebDemand *= wb
		if states[j].Write {
			states[j].AppDemand *= wa
			states[j].DBDemand *= wd
		} else {
			states[j].AppDemand *= ra
			states[j].DBDemand *= rd
		}
	}
	return nil
}
