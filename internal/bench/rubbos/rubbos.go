// Package rubbos models the RUBBoS bulletin-board benchmark (Rice
// University Bulletin Board System, a Slashdot-style news site) used in
// the paper's Section IV.C: 24 interaction states, a read-only mix and a
// submission mix with a tunable write ratio, and a database-heavy demand
// profile — the paper identifies the database server as RUBBoS's
// bottleneck.
//
// Unlike RUBiS, the two standard mixes differ in their *read* behaviour
// too: the read-only mix concentrates on story and comment pages, which
// carry heavy database demand, while the submission mix spends time on
// lightweight forms between writes. This is why the paper's Figure 4
// shows the read-only setting reaching its bottleneck at a much lower
// workload than the 85/15 read/write mix.
package rubbos

import (
	"fmt"

	"elba/internal/bench"
	"elba/internal/sim"
)

// ThinkTime is the client emulator's mean think time in seconds.
const ThinkTime = 7.0

// DefaultWriteRatio is the submission mix's write fraction (15%).
const DefaultWriteRatio = 0.15

// Reference per-class demand targets at 3 GHz (DESIGN.md §3). RUBBoS's
// front tier (Apache+PHP) is deliberately light; the database carries the
// load. The read targets differ per mix: the read-only mix's pages are
// heavier.
const (
	webDemand = 0.0004
	readApp   = 0.0012
	writeApp  = 0.0008

	readOnlyReadDB   = 0.00064 // 3.2 ms effective on the 600 MHz Emulab DB node
	submissionReadDB = 0.00034 // 1.7 ms effective
	writeDB          = 0.00070 // 3.5 ms effective
)

type state struct {
	name      string
	write     bool
	dbWeight  float64
	appWeight float64
	reply     int
	// nextRO and nextSub are successor weights under the read-only and
	// submission mixes; a nil nextRO means the state is unreachable in
	// the read-only mix (forms and write flows).
	nextRO  map[string]float64
	nextSub map[string]float64
}

// The 24 RUBBoS interaction states. Six are database writers.
var rubbosStates = []state{
	{name: "StoriesOfTheDay", dbWeight: 1.2, appWeight: 1.0, reply: 9400,
		nextRO:  map[string]float64{"ViewStory": 6, "OlderStories": 2, "BrowseCategories": 2},
		nextSub: map[string]float64{"ViewStory": 4, "SubmitStoryPage": 2, "BrowseCategories": 2, "RegisterPage": 1, "AuthorLogin": 1}},
	{name: "RegisterPage", dbWeight: 0.2, appWeight: 0.5, reply: 2100,
		nextSub: map[string]float64{"RegisterUser": 8, "StoriesOfTheDay": 2}},
	{name: "RegisterUser", write: true, dbWeight: 0.8, appWeight: 1.0, reply: 1800,
		nextSub: map[string]float64{"StoriesOfTheDay": 10}},
	{name: "BrowseCategories", dbWeight: 0.7, appWeight: 0.8, reply: 4600,
		nextRO:  map[string]float64{"BrowseStoriesByCategory": 9, "StoriesOfTheDay": 1},
		nextSub: map[string]float64{"BrowseStoriesByCategory": 9, "StoriesOfTheDay": 1}},
	{name: "BrowseStoriesByCategory", dbWeight: 1.3, appWeight: 1.0, reply: 8200,
		nextRO:  map[string]float64{"ViewStory": 7, "BrowseCategories": 2, "OlderStories": 1},
		nextSub: map[string]float64{"ViewStory": 6, "BrowseCategories": 2, "SubmitStoryPage": 2}},
	{name: "OlderStories", dbWeight: 1.6, appWeight: 1.1, reply: 10400,
		nextRO:  map[string]float64{"ViewStory": 7, "OlderStories": 2, "StoriesOfTheDay": 1},
		nextSub: map[string]float64{"ViewStory": 6, "OlderStories": 2, "StoriesOfTheDay": 2}},
	{name: "ViewStory", dbWeight: 2.0, appWeight: 1.2, reply: 16800,
		nextRO:  map[string]float64{"ViewComment": 5, "ViewStory": 2, "StoriesOfTheDay": 2, "SearchInStories": 1},
		nextSub: map[string]float64{"ViewComment": 3, "PostCommentPage": 3, "StoriesOfTheDay": 2, "ModeratePage": 1}},
	{name: "ViewComment", dbWeight: 1.7, appWeight: 1.1, reply: 9600,
		nextRO:  map[string]float64{"ViewStory": 4, "ViewComment": 3, "ViewUserInfo": 2, "StoriesOfTheDay": 1},
		nextSub: map[string]float64{"ViewStory": 4, "PostCommentPage": 3, "ViewUserInfo": 2}},
	{name: "PostCommentPage", dbWeight: 0.4, appWeight: 0.6, reply: 3100,
		nextSub: map[string]float64{"StoreComment": 9, "ViewStory": 1}},
	{name: "StoreComment", write: true, dbWeight: 1.0, appWeight: 1.0, reply: 1700,
		nextSub: map[string]float64{"ViewStory": 6, "StoriesOfTheDay": 4}},
	{name: "SubmitStoryPage", dbWeight: 0.3, appWeight: 0.6, reply: 2600,
		nextSub: map[string]float64{"StoreStory": 9, "StoriesOfTheDay": 1}},
	{name: "StoreStory", write: true, dbWeight: 1.2, appWeight: 1.0, reply: 1900,
		nextSub: map[string]float64{"StoriesOfTheDay": 8, "ViewStory": 2}},
	{name: "AcceptStoryPage", dbWeight: 0.6, appWeight: 0.7, reply: 4100,
		nextSub: map[string]float64{"AcceptStory": 6, "RejectStory": 3, "ReviewStories": 1}},
	{name: "AcceptStory", write: true, dbWeight: 1.1, appWeight: 1.0, reply: 1600,
		nextSub: map[string]float64{"ReviewStories": 6, "StoriesOfTheDay": 4}},
	{name: "RejectStory", write: true, dbWeight: 0.7, appWeight: 0.9, reply: 1500,
		nextSub: map[string]float64{"ReviewStories": 6, "StoriesOfTheDay": 4}},
	{name: "ReviewStories", dbWeight: 1.1, appWeight: 0.9, reply: 7300,
		nextSub: map[string]float64{"AcceptStoryPage": 7, "StoriesOfTheDay": 3}},
	{name: "AuthorLogin", dbWeight: 0.3, appWeight: 0.5, reply: 1900,
		nextSub: map[string]float64{"AuthorTasks": 9, "StoriesOfTheDay": 1}},
	{name: "AuthorTasks", dbWeight: 0.5, appWeight: 0.7, reply: 3400,
		nextSub: map[string]float64{"ReviewStories": 6, "ModeratePage": 3, "StoriesOfTheDay": 1}},
	{name: "ModeratePage", dbWeight: 0.6, appWeight: 0.7, reply: 3800,
		nextSub: map[string]float64{"StoreModerateLog": 8, "ViewComment": 2}},
	{name: "StoreModerateLog", write: true, dbWeight: 0.9, appWeight: 1.0, reply: 1500,
		nextSub: map[string]float64{"ViewComment": 5, "StoriesOfTheDay": 5}},
	{name: "SearchInStories", dbWeight: 1.8, appWeight: 1.1, reply: 8900,
		nextRO:  map[string]float64{"ViewStory": 6, "SearchInStories": 2, "SearchInComments": 2},
		nextSub: map[string]float64{"ViewStory": 6, "SearchInComments": 2, "StoriesOfTheDay": 2}},
	{name: "SearchInComments", dbWeight: 1.9, appWeight: 1.1, reply: 8700,
		nextRO:  map[string]float64{"ViewComment": 6, "SearchInStories": 2, "StoriesOfTheDay": 2},
		nextSub: map[string]float64{"ViewComment": 6, "SearchInUsers": 2, "StoriesOfTheDay": 2}},
	{name: "SearchInUsers", dbWeight: 1.4, appWeight: 1.0, reply: 5600,
		nextRO:  map[string]float64{"ViewUserInfo": 7, "StoriesOfTheDay": 3},
		nextSub: map[string]float64{"ViewUserInfo": 7, "StoriesOfTheDay": 3}},
	{name: "ViewUserInfo", dbWeight: 0.9, appWeight: 0.8, reply: 4400,
		nextRO:  map[string]float64{"StoriesOfTheDay": 5, "ViewStory": 5},
		nextSub: map[string]float64{"StoriesOfTheDay": 5, "ViewStory": 5}},
}

// NumInteractions is the number of RUBBoS interaction states.
const NumInteractions = 24

func buildStates() []sim.Interaction {
	out := make([]sim.Interaction, len(rubbosStates))
	for i, s := range rubbosStates {
		out[i] = sim.Interaction{
			Name:         s.name,
			Write:        s.write,
			AppDemand:    s.appWeight,
			DBDemand:     s.dbWeight,
			WebDemand:    1,
			RequestBytes: 380,
			ReplyBytes:   s.reply,
		}
	}
	return out
}

func buildMatrix(sub bool) (*bench.TransitionMatrix, error) {
	states := buildStates()
	index := make(map[string]int, len(states))
	for i, s := range states {
		index[s.Name] = i
	}
	rows := make([][]float64, len(states))
	for i, s := range rubbosStates {
		next := s.nextRO
		if sub {
			next = s.nextSub
		}
		row := make([]float64, len(states))
		if len(next) == 0 {
			// Unreachable under this mix: route back to the home page so
			// the matrix stays stochastic; stationary mass will be zero.
			row[index["StoriesOfTheDay"]] = 1
		}
		for name, w := range next {
			j, ok := index[name]
			if !ok {
				return nil, fmt.Errorf("rubbos: state %s references unknown successor %s", s.name, name)
			}
			row[j] = w
		}
		rows[i] = row
	}
	return bench.NewTransitionMatrix(states, rows)
}

// NewReadOnly builds the 100%-read mix (Figure 4's darker series).
func NewReadOnly() (*bench.Profile, error) {
	m, err := buildMatrix(false)
	if err != nil {
		return nil, err
	}
	// The read-only matrix must be pure reads by construction.
	if wf := m.WriteFraction(); wf > 0 {
		return nil, fmt.Errorf("rubbos: read-only matrix has write mass %g", wf)
	}
	err = bench.Calibrate(m, bench.DemandTargets{
		Web: webDemand, ReadApp: readApp, WriteApp: writeApp,
		ReadDB: readOnlyReadDB, WriteDB: writeDB,
	})
	if err != nil {
		return nil, err
	}
	return bench.NewProfile("rubbos/read-only", m, ThinkTime)
}

// NewSubmission builds the submission mix with the given write ratio
// (0 < w <= 0.5; the standard mix is 15%).
func NewSubmission(writeRatio float64) (*bench.Profile, error) {
	if writeRatio <= 0 || writeRatio > 0.5 {
		return nil, fmt.Errorf("rubbos: submission write ratio %g outside (0, 0.5]", writeRatio)
	}
	base, err := buildMatrix(true)
	if err != nil {
		return nil, err
	}
	m, err := base.Reweight(writeRatio)
	if err != nil {
		return nil, err
	}
	err = bench.Calibrate(m, bench.DemandTargets{
		Web: webDemand, ReadApp: readApp, WriteApp: writeApp,
		ReadDB: submissionReadDB, WriteDB: writeDB,
	})
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("rubbos/submission/w=%.0f%%", writeRatio*100)
	return bench.NewProfile(name, m, ThinkTime)
}
