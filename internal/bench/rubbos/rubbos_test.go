package rubbos

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestInteractionCount(t *testing.T) {
	p, err := NewSubmission(DefaultWriteRatio)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Interactions()); got != NumInteractions {
		t.Fatalf("interactions = %d, want %d (paper §III.B)", got, NumInteractions)
	}
	writes := 0
	for _, it := range p.Interactions() {
		if it.Write {
			writes++
		}
	}
	if writes != 6 {
		t.Fatalf("write interactions = %d, want 6", writes)
	}
}

func TestReadOnlyIssuesNoWrites(t *testing.T) {
	p, err := NewReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	sess := p.NewSession(rng)
	for i := 0; i < 30000; i++ {
		if it := sess.Next(rng); it.Write {
			t.Fatalf("read-only mix issued write %s", it.Name)
		}
	}
}

func TestSubmissionWriteFraction(t *testing.T) {
	p, err := NewSubmission(0.15)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Matrix().WriteFraction(); math.Abs(got-0.15) > 1e-9 {
		t.Fatalf("write fraction = %g, want 0.15", got)
	}
}

func TestSubmissionValidatesRatio(t *testing.T) {
	for _, w := range []float64{0, -0.1, 0.6} {
		if _, err := NewSubmission(w); err == nil {
			t.Errorf("ratio %g should be rejected", w)
		}
	}
}

// TestReadOnlyHeavierOnDB is the core Figure 4 property: the read-only
// mix must place more demand on the database per interaction than the
// 85/15 submission mix, so it saturates at a lower workload.
func TestReadOnlyHeavierOnDB(t *testing.T) {
	ro, err := NewReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewSubmission(DefaultWriteRatio)
	if err != nil {
		t.Fatal(err)
	}
	_, _, dbRO := ro.MeanDemands()
	_, _, dbSub := sub.MeanDemands()
	if dbRO <= dbSub {
		t.Fatalf("read-only DB demand %.6f not heavier than mix %.6f", dbRO, dbSub)
	}
	if ratio := dbRO / dbSub; ratio < 1.3 {
		t.Fatalf("demand ratio %.2f too small to reproduce Figure 4's gap", ratio)
	}
}

// TestDBIsTheBottleneckTier verifies the benchmark's character (paper
// §IV.C): database demand must dominate the front tiers after accounting
// for the slower DB node (600 MHz vs 3 GHz = 5× demand inflation).
func TestDBIsTheBottleneckTier(t *testing.T) {
	for _, build := range []func() (interface {
		MeanDemands() (float64, float64, float64)
	}, error){
		func() (interface {
			MeanDemands() (float64, float64, float64)
		}, error) {
			return NewReadOnly()
		},
		func() (interface {
			MeanDemands() (float64, float64, float64)
		}, error) {
			return NewSubmission(DefaultWriteRatio)
		},
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		web, app, db := p.MeanDemands()
		effectiveDB := db / 0.2 // low-end Emulab node
		if effectiveDB <= app || effectiveDB <= web {
			t.Fatalf("DB not the bottleneck: web=%.5f app=%.5f db(eff)=%.5f", web, app, effectiveDB)
		}
	}
}

func TestSubmissionReachesWriteStates(t *testing.T) {
	p, err := NewSubmission(0.15)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	sess := p.NewSession(rng)
	writes := 0
	n := 100000
	for i := 0; i < n; i++ {
		if sess.Next(rng).Write {
			writes++
		}
	}
	got := float64(writes) / float64(n)
	if math.Abs(got-0.15) > 0.01 {
		t.Fatalf("empirical write fraction = %g, want ≈0.15", got)
	}
}

func TestProfileNames(t *testing.T) {
	ro, _ := NewReadOnly()
	if ro.Name() != "rubbos/read-only" {
		t.Fatalf("name = %q", ro.Name())
	}
	sub, _ := NewSubmission(0.15)
	if sub.Name() != "rubbos/submission/w=15%" {
		t.Fatalf("name = %q", sub.Name())
	}
}
