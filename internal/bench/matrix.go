// Package bench provides the machinery shared by Elba's benchmark
// workload models: first-order Markov transition matrices over interaction
// states, write-ratio reweighting (the paper varies RUBiS's write ratio
// from 0% to 90%), stationary-distribution analysis, and demand
// calibration against per-tier targets.
package bench

import (
	"fmt"
	"math"
	"math/rand/v2"

	"elba/internal/sim"
)

// TransitionMatrix is a row-stochastic matrix over a benchmark's
// interaction states: P[i][j] is the probability that a user in state i
// performs interaction j next.
type TransitionMatrix struct {
	states []sim.Interaction
	p      [][]float64
}

// NewTransitionMatrix builds a matrix over states from rows of
// probabilities. Rows are normalized; a row summing to zero is an error.
func NewTransitionMatrix(states []sim.Interaction, rows [][]float64) (*TransitionMatrix, error) {
	n := len(states)
	if n == 0 {
		return nil, fmt.Errorf("bench: transition matrix needs at least one state")
	}
	if len(rows) != n {
		return nil, fmt.Errorf("bench: %d rows for %d states", len(rows), n)
	}
	p := make([][]float64, n)
	for i, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("bench: row %d has %d entries, want %d", i, len(row), n)
		}
		var sum float64
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("bench: row %d col %d has invalid probability %g", i, j, v)
			}
			sum += v
		}
		if sum <= 0 {
			return nil, fmt.Errorf("bench: row %d (state %s) sums to zero", i, states[i].Name)
		}
		p[i] = make([]float64, n)
		for j, v := range row {
			p[i][j] = v / sum
		}
	}
	return &TransitionMatrix{states: states, p: p}, nil
}

// States returns the interaction states (shared, not copied).
func (m *TransitionMatrix) States() []sim.Interaction { return m.states }

// Len reports the number of states.
func (m *TransitionMatrix) Len() int { return len(m.states) }

// Prob reports P[i][j].
func (m *TransitionMatrix) Prob(i, j int) float64 { return m.p[i][j] }

// Next samples the successor state of i using rng.
func (m *TransitionMatrix) Next(i int, rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	row := m.p[i]
	for j, v := range row {
		cum += v
		if u < cum {
			return j
		}
	}
	return len(row) - 1 // float residue lands on the last state
}

// RowWriteMass reports the probability that the successor of state i is a
// write interaction.
func (m *TransitionMatrix) RowWriteMass(i int) float64 {
	var w float64
	for j, v := range m.p[i] {
		if m.states[j].Write {
			w += v
		}
	}
	return w
}

// Reweight returns a copy of the matrix whose every row has exactly
// writeRatio probability mass on write interactions, preserving the
// relative structure of the original transitions within the read and
// write classes. This is how one base matrix (the RUBiS bidding mix)
// yields the paper's 0%–90% write-ratio sweep.
//
// If a row has no write-successor mass and writeRatio > 0, the write mass
// is spread uniformly over all write states (symmetrically for reads).
func (m *TransitionMatrix) Reweight(writeRatio float64) (*TransitionMatrix, error) {
	if writeRatio < 0 || writeRatio > 1 {
		return nil, fmt.Errorf("bench: write ratio %g out of [0,1]", writeRatio)
	}
	var writeStates, readStates []int
	for j, s := range m.states {
		if s.Write {
			writeStates = append(writeStates, j)
		} else {
			readStates = append(readStates, j)
		}
	}
	if writeRatio > 0 && len(writeStates) == 0 {
		return nil, fmt.Errorf("bench: write ratio %g requested but model has no write states", writeRatio)
	}
	if writeRatio < 1 && len(readStates) == 0 {
		return nil, fmt.Errorf("bench: read mass requested but model has no read states")
	}
	n := len(m.states)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		var wm, rm float64
		for j, v := range m.p[i] {
			if m.states[j].Write {
				wm += v
			} else {
				rm += v
			}
		}
		for j, v := range m.p[i] {
			switch {
			case m.states[j].Write && wm > 0:
				row[j] = v * writeRatio / wm
			case !m.states[j].Write && rm > 0:
				row[j] = v * (1 - writeRatio) / rm
			}
		}
		if wm == 0 && writeRatio > 0 {
			for _, j := range writeStates {
				row[j] = writeRatio / float64(len(writeStates))
			}
		}
		if rm == 0 && writeRatio < 1 {
			for _, j := range readStates {
				row[j] = (1 - writeRatio) / float64(len(readStates))
			}
		}
		rows[i] = row
	}
	return NewTransitionMatrix(m.states, rows)
}

// Stationary computes the stationary distribution by power iteration. The
// matrices our benchmarks build are irreducible and aperiodic, so the
// iteration converges; iteration is capped defensively.
func (m *TransitionMatrix) Stationary() []float64 {
	n := len(m.states)
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < 10000; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			if pi[i] == 0 {
				continue
			}
			for j, v := range m.p[i] {
				next[j] += pi[i] * v
			}
		}
		var delta float64
		for j := range next {
			delta += math.Abs(next[j] - pi[j])
		}
		pi, next = next, pi
		if delta < 1e-12 {
			break
		}
	}
	return pi
}

// WriteFraction reports the stationary probability of being in a write
// state.
func (m *TransitionMatrix) WriteFraction() float64 {
	pi := m.Stationary()
	var w float64
	for j, s := range m.states {
		if s.Write {
			w += pi[j]
		}
	}
	return w
}
