package tpcapp

import (
	"math/rand/v2"
	"testing"
)

func TestNewBuilds(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Interactions()) != NumInteractions {
		t.Fatalf("interactions = %d, want %d", len(p.Interactions()), NumInteractions)
	}
	if p.ThinkTime() != ThinkTime {
		t.Fatalf("think time = %g", p.ThinkTime())
	}
}

func TestWriteHeavyMix(t *testing.T) {
	// TPC-App's order-processing mix is write-dominated, unlike RUBiS.
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if wf := p.Matrix().WriteFraction(); wf < 0.5 {
		t.Fatalf("write fraction = %g, want >= 0.5", wf)
	}
}

func TestSessionCoversOperations(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	sess := p.NewSession(rng)
	seen := map[string]bool{}
	for i := 0; i < 50000; i++ {
		seen[sess.Next(rng).Name] = true
	}
	if len(seen) != NumInteractions {
		t.Fatalf("visited %d/%d operations", len(seen), NumInteractions)
	}
}
