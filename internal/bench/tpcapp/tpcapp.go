// Package tpcapp sketches the TPC-App application-server benchmark the
// paper mentions as a candidate for "potentially rapid inclusion ... when
// a mature implementation is released" (§I). It demonstrates that the
// bench.Model machinery accommodates a third benchmark with a different
// character: TPC-App is a web-services order-processing workload with a
// much higher write fraction than RUBiS and a short think time.
//
// The demand profile is synthetic (TPC-App was never released in a form
// the paper could run); the package exists to exercise the extensibility
// claim, and its numbers should not be read as a TPC-App reproduction.
package tpcapp

import (
	"fmt"

	"elba/internal/bench"
	"elba/internal/sim"
)

// ThinkTime is the service-oriented client's mean think time in seconds;
// TPC-App drives business sessions far faster than human browsing.
const ThinkTime = 2.0

// Per-class demand targets at the 3 GHz reference.
const (
	webDemand = 0.0008
	readApp   = 0.0120
	writeApp  = 0.0160
	readDB    = 0.0009
	writeDB   = 0.0022
)

// NumInteractions is the number of modelled TPC-App operations.
const NumInteractions = 8

type op struct {
	name      string
	write     bool
	appWeight float64
	dbWeight  float64
	weight    float64 // TPC-App operation mix weight
}

// The TPC-App web-service operations and their specified mix.
var ops = []op{
	{name: "NewOrder", write: true, appWeight: 1.3, dbWeight: 1.4, weight: 50},
	{name: "OrderStatus", appWeight: 0.8, dbWeight: 0.9, weight: 5},
	{name: "NewCustomer", write: true, appWeight: 1.0, dbWeight: 1.1, weight: 10},
	{name: "ChangePaymentMethod", write: true, appWeight: 0.7, dbWeight: 0.8, weight: 5},
	{name: "NewProducts", appWeight: 1.1, dbWeight: 1.2, weight: 7},
	{name: "ProductDetail", appWeight: 0.9, dbWeight: 1.0, weight: 13},
	{name: "ChangeItem", write: true, appWeight: 0.9, dbWeight: 1.0, weight: 5},
	{name: "Home", appWeight: 0.5, dbWeight: 0.4, weight: 5},
}

// New builds the TPC-App workload model with its specified operation mix.
func New() (*bench.Profile, error) {
	states := make([]sim.Interaction, len(ops))
	for i, o := range ops {
		states[i] = sim.Interaction{
			Name:         o.name,
			Write:        o.write,
			AppDemand:    o.appWeight,
			DBDemand:     o.dbWeight,
			WebDemand:    1,
			RequestBytes: 900,
			ReplyBytes:   2400,
		}
	}
	// TPC-App sessions draw operations i.i.d. from the mix: every row of
	// the transition matrix is the mix itself.
	row := make([]float64, len(ops))
	for j, o := range ops {
		row[j] = o.weight
	}
	rows := make([][]float64, len(ops))
	for i := range rows {
		rows[i] = row
	}
	m, err := bench.NewTransitionMatrix(states, rows)
	if err != nil {
		return nil, err
	}
	err = bench.Calibrate(m, bench.DemandTargets{
		Web: webDemand, ReadApp: readApp, WriteApp: writeApp,
		ReadDB: readDB, WriteDB: writeDB,
	})
	if err != nil {
		return nil, err
	}
	p, err := bench.NewProfile("tpcapp", m, ThinkTime)
	if err != nil {
		return nil, fmt.Errorf("tpcapp: %w", err)
	}
	return p, nil
}
