package bench

import (
	"math"
	"math/rand/v2"
	"testing"

	"elba/internal/sim"
)

func testProfile(t *testing.T, w float64) *Profile {
	t.Helper()
	m, err := NewTransitionMatrix(twoStateStates(), [][]float64{{4, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := m.Reweight(w)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfile("test", rw, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileBasics(t *testing.T) {
	p := testProfile(t, 0.25)
	if p.Name() != "test" || p.ThinkTime() != 1.5 {
		t.Fatalf("profile metadata wrong")
	}
	if len(p.Interactions()) != 2 {
		t.Fatalf("interactions = %d", len(p.Interactions()))
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := NewProfile("x", nil, 1); err == nil {
		t.Errorf("nil matrix should error")
	}
	m, _ := NewTransitionMatrix(twoStateStates(), [][]float64{{1, 1}, {1, 1}})
	if _, err := NewProfile("x", m, -1); err == nil {
		t.Errorf("negative think should error")
	}
}

func TestProfileSessionWriteFraction(t *testing.T) {
	p := testProfile(t, 0.25)
	rng := rand.New(rand.NewPCG(42, 42))
	sess := p.NewSession(rng)
	writes, n := 0, 50000
	for i := 0; i < n; i++ {
		if sess.Next(rng).Write {
			writes++
		}
	}
	got := float64(writes) / float64(n)
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("session write fraction = %g, want 0.25", got)
	}
}

func TestProfileMeanDemands(t *testing.T) {
	p := testProfile(t, 0.5)
	// Stationary is (0.5, 0.5) by symmetry of the reweighted matrix.
	web, app, db := p.MeanDemands()
	if math.Abs(app-(0.03+0.005)/2) > 1e-9 {
		t.Fatalf("mean app demand = %g", app)
	}
	if math.Abs(db-(0.001+0.002)/2) > 1e-9 {
		t.Fatalf("mean db demand = %g", db)
	}
	if math.Abs(web-0.001) > 1e-9 {
		t.Fatalf("mean web demand = %g", web)
	}
}

func TestCalibrateHitsTargets(t *testing.T) {
	states := []sim.Interaction{
		{Name: "r1", AppDemand: 1, DBDemand: 2, WebDemand: 1},
		{Name: "r2", AppDemand: 3, DBDemand: 1, WebDemand: 1},
		{Name: "w1", Write: true, AppDemand: 2, DBDemand: 4, WebDemand: 1},
	}
	m, err := NewTransitionMatrix(states, [][]float64{
		{1, 1, 1}, {1, 1, 1}, {1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	targets := DemandTargets{
		Web: 0.002, ReadApp: 0.030, WriteApp: 0.005,
		ReadDB: 0.0008, WriteDB: 0.0016,
	}
	if err := Calibrate(m, targets); err != nil {
		t.Fatal(err)
	}
	pi := m.Stationary()
	var readMass, writeMass, readApp, writeApp, readDB, writeDB, web float64
	for j, s := range m.States() {
		web += pi[j] * s.WebDemand
		if s.Write {
			writeMass += pi[j]
			writeApp += pi[j] * s.AppDemand
			writeDB += pi[j] * s.DBDemand
		} else {
			readMass += pi[j]
			readApp += pi[j] * s.AppDemand
			readDB += pi[j] * s.DBDemand
		}
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	check("read app", readApp/readMass, targets.ReadApp)
	check("write app", writeApp/writeMass, targets.WriteApp)
	check("read db", readDB/readMass, targets.ReadDB)
	check("write db", writeDB/writeMass, targets.WriteDB)
	check("web", web, targets.Web)
	// Relative structure within a class must be preserved: r2 app demand
	// stays 3× r1.
	if math.Abs(m.States()[1].AppDemand/m.States()[0].AppDemand-3) > 1e-9 {
		t.Errorf("calibration destroyed relative structure")
	}
}

func TestCalibrateSkipsMasslessClass(t *testing.T) {
	// No write states at all: write targets are unreachable but also
	// irrelevant, so calibration must succeed and leave reads on target.
	states := []sim.Interaction{{Name: "r", AppDemand: 1, DBDemand: 1, WebDemand: 1}}
	m, err := NewTransitionMatrix(states, [][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	err = Calibrate(m, DemandTargets{Web: 0.001, ReadApp: 0.01, WriteApp: 0.01, ReadDB: 0.001, WriteDB: 0.001})
	if err != nil {
		t.Fatalf("massless write class should be skipped: %v", err)
	}
	if got := m.States()[0].AppDemand; math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("read app demand = %g, want 0.01", got)
	}
}

func TestCalibrateErrorsOnZeroDemandClass(t *testing.T) {
	// A write state with stationary mass but zero demand cannot be scaled
	// to a non-zero target.
	states := []sim.Interaction{
		{Name: "r", AppDemand: 1, DBDemand: 1, WebDemand: 1},
		{Name: "w", Write: true, AppDemand: 0, DBDemand: 0, WebDemand: 1},
	}
	m, err := NewTransitionMatrix(states, [][]float64{{1, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	err = Calibrate(m, DemandTargets{Web: 0.001, ReadApp: 0.01, WriteApp: 0.01, ReadDB: 0.001, WriteDB: 0.001})
	if err == nil {
		t.Fatalf("zero-demand class with non-zero target should error")
	}
}
