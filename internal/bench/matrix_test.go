package bench

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"elba/internal/sim"
)

func twoStateStates() []sim.Interaction {
	return []sim.Interaction{
		{Name: "read", Write: false, AppDemand: 0.03, DBDemand: 0.001, WebDemand: 0.001},
		{Name: "write", Write: true, AppDemand: 0.005, DBDemand: 0.002, WebDemand: 0.001},
	}
}

func TestNewTransitionMatrixNormalizes(t *testing.T) {
	m, err := NewTransitionMatrix(twoStateStates(), [][]float64{{3, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Prob(0, 0)-0.75) > 1e-12 || math.Abs(m.Prob(0, 1)-0.25) > 1e-12 {
		t.Fatalf("row 0 not normalized: %g %g", m.Prob(0, 0), m.Prob(0, 1))
	}
}

func TestNewTransitionMatrixErrors(t *testing.T) {
	states := twoStateStates()
	cases := []struct {
		name string
		rows [][]float64
	}{
		{"wrong row count", [][]float64{{1, 0}}},
		{"wrong col count", [][]float64{{1}, {1, 0}}},
		{"negative prob", [][]float64{{-1, 2}, {1, 1}}},
		{"zero row", [][]float64{{0, 0}, {1, 1}}},
		{"NaN", [][]float64{{math.NaN(), 1}, {1, 1}}},
	}
	for _, c := range cases {
		if _, err := NewTransitionMatrix(states, c.rows); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewTransitionMatrix(nil, nil); err == nil {
		t.Errorf("empty states: expected error")
	}
}

func TestStationaryTwoState(t *testing.T) {
	// P = [[0.5, 0.5], [1, 0]] has stationary (2/3, 1/3).
	m, err := NewTransitionMatrix(twoStateStates(), [][]float64{{1, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	pi := m.Stationary()
	if math.Abs(pi[0]-2.0/3.0) > 1e-9 || math.Abs(pi[1]-1.0/3.0) > 1e-9 {
		t.Fatalf("stationary = %v, want (2/3, 1/3)", pi)
	}
	if wf := m.WriteFraction(); math.Abs(wf-1.0/3.0) > 1e-9 {
		t.Fatalf("write fraction = %g, want 1/3", wf)
	}
}

func TestReweightExactWriteMass(t *testing.T) {
	m, err := NewTransitionMatrix(twoStateStates(), [][]float64{{4, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0, 0.15, 0.5, 0.9, 1} {
		rw, err := m.Reweight(w)
		if err != nil {
			t.Fatalf("w=%g: %v", w, err)
		}
		for i := 0; i < rw.Len(); i++ {
			if got := rw.RowWriteMass(i); math.Abs(got-w) > 1e-12 {
				t.Fatalf("w=%g row %d write mass %g", w, i, got)
			}
		}
		if wf := rw.WriteFraction(); math.Abs(wf-w) > 1e-9 {
			t.Fatalf("w=%g stationary write fraction %g", w, wf)
		}
	}
}

func TestReweightRangeErrors(t *testing.T) {
	m, _ := NewTransitionMatrix(twoStateStates(), [][]float64{{1, 1}, {1, 1}})
	if _, err := m.Reweight(-0.1); err == nil {
		t.Errorf("negative ratio should error")
	}
	if _, err := m.Reweight(1.1); err == nil {
		t.Errorf("ratio > 1 should error")
	}
	// No write states but write ratio requested.
	readsOnly := []sim.Interaction{{Name: "a"}, {Name: "b"}}
	m2, _ := NewTransitionMatrix(readsOnly, [][]float64{{1, 1}, {1, 1}})
	if _, err := m2.Reweight(0.5); err == nil {
		t.Errorf("write ratio without write states should error")
	}
}

func TestReweightFillsMissingClassMass(t *testing.T) {
	// Row 0 never transitions to the write state; after reweighting it
	// must still put exactly w there.
	m, err := NewTransitionMatrix(twoStateStates(), [][]float64{{1, 0}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := m.Reweight(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := rw.RowWriteMass(0); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("missing write mass not filled: %g", got)
	}
}

func TestNextSamplingMatchesDistribution(t *testing.T) {
	m, err := NewTransitionMatrix(twoStateStates(), [][]float64{{7, 3}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	n := 100000
	counts := make([]int, 2)
	for i := 0; i < n; i++ {
		counts[m.Next(0, rng)]++
	}
	got := float64(counts[1]) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("empirical P(0→1) = %g, want 0.3", got)
	}
}

// Property: any valid reweight keeps every row stochastic.
func TestReweightRowsStochasticProperty(t *testing.T) {
	f := func(seed uint64, wRaw float64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 2 + rng.IntN(6)
		states := make([]sim.Interaction, n)
		for i := range states {
			states[i].Name = string(rune('A' + i))
			states[i].Write = i%3 == 0
		}
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = rng.Float64()
			}
		}
		m, err := NewTransitionMatrix(states, rows)
		if err != nil {
			return true // degenerate random matrix; skip
		}
		w := math.Mod(math.Abs(wRaw), 1)
		rw, err := m.Reweight(w)
		if err != nil {
			return false
		}
		for i := 0; i < rw.Len(); i++ {
			var sum float64
			for j := 0; j < rw.Len(); j++ {
				sum += rw.Prob(i, j)
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
