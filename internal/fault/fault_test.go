package fault

import (
	"reflect"
	"testing"
)

func lightProfile(t *testing.T) Profile {
	t.Helper()
	p, ok := ProfileByName("light")
	if !ok {
		t.Fatal("built-in profile light missing")
	}
	return p
}

func heavyProfile(t *testing.T) Profile {
	t.Helper()
	p, ok := ProfileByName("heavy")
	if !ok {
		t.Fatal("built-in profile heavy missing")
	}
	return p
}

func TestProfileRegistry(t *testing.T) {
	want := []string{"none", "light", "heavy"}
	if got := Profiles(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Profiles() = %v, want %v", got, want)
	}
	none, ok := ProfileByName("none")
	if !ok || none.Enabled() {
		t.Fatalf("profile none should exist and inject nothing (ok=%v enabled=%v)", ok, none.Enabled())
	}
	if !lightProfile(t).Enabled() || !heavyProfile(t).Enabled() {
		t.Fatal("light and heavy profiles must be enabled")
	}
	if _, ok := ProfileByName("catastrophic"); ok {
		t.Fatal("unknown profile name resolved")
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range []Kind{Crash, Slowdown, Stall, ErrorBurst} {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	if _, ok := KindByName("meltdown"); ok {
		t.Error("KindByName accepted an unknown kind")
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Kind: Crash, Role: "JONAS1", AtSec: 100, DurationSec: 60}, "crash(JONAS1@100s+60s)"},
		{Event{Kind: Slowdown, Role: "MYSQL1", AtSec: 30, DurationSec: 15, Factor: 0.45}, "slowdown(MYSQL1×0.45@30s+15s)"},
		{Event{Kind: Stall, Role: "APACHE1", AtSec: 5, DurationSec: 2.5, Factor: 0.05}, "stall(APACHE1×0.05@5s+2.5s)"},
		{Event{Kind: ErrorBurst, AtSec: 80, DurationSec: 30, Factor: 0.2}, "errorburst(p=0.20@80s+30s)"},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Errorf("Event.String() = %q, want %q", got, c.want)
		}
	}
}

// TestTrialPlanDeterministic pins the package's core contract: the plan is
// a pure function of (profile, root, coordinates). The experiment runner's
// byte-identical-across-workers guarantee depends on it.
func TestTrialPlanDeterministic(t *testing.T) {
	p := heavyProfile(t)
	roles := []string{"APACHE1", "JONAS1", "JONAS2", "MYSQL1"}
	a := p.TrialPlan(42, "rubis-it", "1-2-1", roles, 200, 15, 600)
	b := p.TrialPlan(42, "rubis-it", "1-2-1", roles, 200, 15, 600)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical coordinates produced different plans:\n%v\n%v", a, b)
	}
}

// TestTrialPlanCoordinateSensitivity checks that each coordinate actually
// feeds the derivation: perturbing any one of them yields an independent
// plan. With the heavy profile (several expected events per trial) the
// chance of an accidental collision across all perturbations is negligible.
func TestTrialPlanCoordinateSensitivity(t *testing.T) {
	p := heavyProfile(t)
	roles := []string{"APACHE1", "JONAS1", "JONAS2", "MYSQL1"}
	base := p.TrialPlan(42, "rubis-it", "1-2-1", roles, 200, 15, 600)
	if len(base) == 0 {
		t.Fatal("heavy profile produced an empty plan")
	}
	perturbed := map[string][]Event{
		"root":       p.TrialPlan(43, "rubis-it", "1-2-1", roles, 200, 15, 600),
		"experiment": p.TrialPlan(42, "rubis-it2", "1-2-1", roles, 200, 15, 600),
		"topology":   p.TrialPlan(42, "rubis-it", "1-3-1", roles, 200, 15, 600),
		"users":      p.TrialPlan(42, "rubis-it", "1-2-1", roles, 300, 15, 600),
		"writeratio": p.TrialPlan(42, "rubis-it", "1-2-1", roles, 200, 25, 600),
	}
	for coord, plan := range perturbed {
		if reflect.DeepEqual(base, plan) {
			t.Errorf("perturbing %s left the plan unchanged: %v", coord, plan)
		}
	}
}

func TestTrialPlanWellFormed(t *testing.T) {
	p := heavyProfile(t)
	roles := []string{"APACHE1", "JONAS1", "MYSQL1"}
	const runSec = 600.0
	// Sweep several coordinates so the invariants hold across many samples,
	// not just one lucky draw.
	for users := 50; users <= 1000; users += 50 {
		events := p.TrialPlan(7, "sweep", "1-1-1", roles, users, 15, runSec)
		var lastAt float64
		for _, ev := range events {
			if ev.AtSec < lastAt {
				t.Fatalf("users=%d: events not sorted by start time: %v", users, events)
			}
			lastAt = ev.AtSec
			if ev.AtSec < 0 || ev.AtSec+ev.DurationSec > runSec+1e-9 {
				t.Fatalf("users=%d: window %v escapes the run period [0,%g]", users, ev, runSec)
			}
			if ev.DurationSec <= 0 {
				t.Fatalf("users=%d: non-positive window %v", users, ev)
			}
			switch ev.Kind {
			case Crash:
				if ev.Role == "" {
					t.Fatalf("users=%d: crash without a role: %v", users, ev)
				}
			case Slowdown, Stall:
				if ev.Role == "" || ev.Factor <= 0 || ev.Factor > 1 {
					t.Fatalf("users=%d: bad slowdown/stall event %v", users, ev)
				}
			case ErrorBurst:
				if ev.Role != "" || ev.Factor <= 0 || ev.Factor > 0.95 {
					t.Fatalf("users=%d: bad errorburst event %v", users, ev)
				}
			}
		}
	}
}

func TestTrialPlanDisabledCases(t *testing.T) {
	p := heavyProfile(t)
	none, _ := ProfileByName("none")
	roles := []string{"JONAS1"}
	if got := none.TrialPlan(1, "e", "1-1-1", roles, 100, 15, 600); got != nil {
		t.Errorf("disabled profile planned events: %v", got)
	}
	if got := p.TrialPlan(1, "e", "1-1-1", nil, 100, 15, 600); got != nil {
		t.Errorf("no roles but planned events: %v", got)
	}
	if got := p.TrialPlan(1, "e", "1-1-1", roles, 100, 15, 0); got != nil {
		t.Errorf("zero run period but planned events: %v", got)
	}
}

// TestNodeFactorsPerRoleStreams verifies both determinism and the
// one-stream-per-role design: adding a role to the deployment must not
// change whether any existing role lands on a slow node.
func TestNodeFactorsPerRoleStreams(t *testing.T) {
	p := heavyProfile(t)
	small := []string{"APACHE1", "JONAS1", "MYSQL1"}
	large := append(append([]string{}, small...), "JONAS2", "JONAS3", "MYSQL2")

	a := p.NodeFactors(9, "exp", "1-1-1", small)
	b := p.NodeFactors(9, "exp", "1-1-1", small)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("NodeFactors not deterministic: %v vs %v", a, b)
	}
	grown := p.NodeFactors(9, "exp", "1-1-1", large)
	for _, role := range small {
		af, aok := a[role]
		gf, gok := grown[role]
		if aok != gok || af != gf {
			t.Errorf("adding roles changed %s: (%v,%v) vs (%v,%v)", role, af, aok, gf, gok)
		}
	}
	for role, f := range grown {
		if f <= 0 || f > 1 {
			t.Errorf("factor for %s out of (0,1]: %g", role, f)
		}
	}
}

func TestNodeFactorsHitRate(t *testing.T) {
	// With SlowNodeProb = 0.2 the heavy profile should degrade roughly a
	// fifth of a large role population — certainly some, and not all.
	p := heavyProfile(t)
	roles := make([]string, 400)
	for i := range roles {
		roles[i] = "ROLE" + string(rune('A'+i%26)) + string(rune('0'+i%10))
	}
	hit := len(p.NodeFactors(11, "pop", "1-1-1", roles))
	if hit == 0 || hit == len(roles) {
		t.Fatalf("slow-node hit count %d/%d implausible for p=%g", hit, len(roles), p.SlowNodeProb)
	}
	none, _ := ProfileByName("none")
	if got := none.NodeFactors(11, "pop", "1-1-1", roles); got != nil {
		t.Fatalf("disabled profile degraded nodes: %v", got)
	}
}

func TestGlitchCountDeterministicAndBounded(t *testing.T) {
	p := heavyProfile(t)
	sawGlitch := false
	for line := 1; line <= 200; line++ {
		n := p.GlitchCount(3, "exp", "1-2-1", "run.sh", line)
		if n != p.GlitchCount(3, "exp", "1-2-1", "run.sh", line) {
			t.Fatalf("GlitchCount not deterministic at line %d", line)
		}
		if n < 0 || n > p.MaxGlitches {
			t.Fatalf("line %d: glitch count %d outside [0,%d]", line, n, p.MaxGlitches)
		}
		if n > 0 {
			sawGlitch = true
		}
	}
	if !sawGlitch {
		t.Fatal("heavy profile (GlitchProb=0.1) glitched no step out of 200")
	}
	none, _ := ProfileByName("none")
	if none.GlitchCount(3, "exp", "1-2-1", "run.sh", 1) != 0 {
		t.Fatal("disabled profile glitched a step")
	}
}
