// Package fault derives deterministic fault plans for the simulated
// testbed. The paper's automation argument rests on surviving the ways a
// real cluster misbehaves mid-campaign — nodes crash, disks stall, hosts
// run slow, clients see error bursts, and deployment steps time out — so
// the simulated Warp/Rohan/Emulab substrate models exactly those
// scenarios here.
//
// Every decision in this package is a pure function of a root seed and
// the experiment coordinates (the same coordinate-hash scheme the trial
// seeds use), never of wall-clock time or execution order. Two runs with
// the same seed therefore inject byte-identical fault schedules whatever
// the worker count, which is what keeps the experiment runner's
// determinism guarantee intact under fault injection.
package fault

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Kind classifies an injected fault.
type Kind uint8

// Fault kinds, in severity order.
const (
	// Crash closes a station's accept queue for a window: every request
	// routed to it is refused until recovery (crash-stop of the listener).
	Crash Kind = iota
	// Slowdown scales a station's effective CPU speed down for a window,
	// modelling a host degraded by interference or thermal throttling.
	Slowdown
	// Stall drops a station's effective speed to near zero for a window,
	// modelling a disk or service stall: work queues but barely completes.
	Stall
	// ErrorBurst makes the client driver fail each issued request with a
	// given probability for a window, modelling network-path error bursts.
	ErrorBurst
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Slowdown:
		return "slowdown"
	case Stall:
		return "stall"
	case ErrorBurst:
		return "errorburst"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindByName resolves a kind from its TBL spelling.
func KindByName(name string) (Kind, bool) {
	switch name {
	case "crash":
		return Crash, true
	case "slowdown":
		return Slowdown, true
	case "stall":
		return Stall, true
	case "errorburst":
		return ErrorBurst, true
	}
	return 0, false
}

// Event is one scheduled fault window within a trial. Times are in
// unscaled seconds relative to the run period's start, exactly like the
// TBL faults stanza; the trial runner applies its own time scale.
type Event struct {
	// Kind is the fault class.
	Kind Kind
	// Role is the deployment role the fault targets, e.g. "JONAS1".
	// ErrorBurst events target the client driver and leave Role empty.
	Role string
	// AtSec is the window start in seconds from the run period's start.
	AtSec float64
	// DurationSec is the window length in seconds.
	DurationSec float64
	// Factor is the kind-specific intensity: the speed multiplier for
	// Slowdown/Stall, or the per-request error probability for ErrorBurst.
	// It is unused (zero) for Crash.
	Factor float64
}

// String renders the event compactly for logs and stored results, e.g.
// "crash(JONAS1@100s+60s)" or "errorburst(p=0.20@80s+30s)".
func (e Event) String() string {
	switch e.Kind {
	case ErrorBurst:
		return fmt.Sprintf("%s(p=%.2f@%gs+%gs)", e.Kind, e.Factor, e.AtSec, e.DurationSec)
	case Slowdown, Stall:
		return fmt.Sprintf("%s(%s×%.2f@%gs+%gs)", e.Kind, e.Role, e.Factor, e.AtSec, e.DurationSec)
	default:
		return fmt.Sprintf("%s(%s@%gs+%gs)", e.Kind, e.Role, e.AtSec, e.DurationSec)
	}
}

// Profile parameterizes the random fault model. Rates are expected event
// counts per trial; probabilities are per node or per deployment step.
// The zero Profile injects nothing.
type Profile struct {
	// Name identifies the profile ("light", "heavy", ...).
	Name string

	// Crashes, Slowdowns, Stalls, and Bursts are the expected number of
	// windows of each in-trial fault kind per trial.
	Crashes   float64
	Slowdowns float64
	Stalls    float64
	Bursts    float64

	// OutageFrac is the mean fault-window length as a fraction of the run
	// period.
	OutageFrac float64
	// SlowFactor is the centre of the sampled slowdown speed factor.
	SlowFactor float64
	// StallFactor is the effective speed factor during a stall window.
	StallFactor float64
	// BurstErrorRate is the centre of the sampled per-request error
	// probability during an error burst.
	BurstErrorRate float64

	// SlowNodeProb is the per-node probability of a deployment-scope
	// hardware degradation: the node runs at SlowNodeFactor of its rated
	// speed for the whole deployment (the classic "slow node" a real
	// cluster hides in every large allocation).
	SlowNodeProb float64
	// SlowNodeFactor is the centre of the sampled node degradation factor.
	SlowNodeFactor float64

	// GlitchProb is the per-deployment-step probability that the step
	// fails transiently (a timed-out ssh, a package mirror hiccup) and
	// must be retried.
	GlitchProb float64
	// MaxGlitches bounds consecutive transient failures for one step.
	MaxGlitches int
}

// Enabled reports whether the profile can inject anything at all.
func (p Profile) Enabled() bool {
	return p.Crashes > 0 || p.Slowdowns > 0 || p.Stalls > 0 || p.Bursts > 0 ||
		p.SlowNodeProb > 0 || p.GlitchProb > 0
}

// Built-in profiles. "none" is the explicit no-fault profile; "light"
// resembles a well-run cluster with occasional hiccups; "heavy" resembles
// a contended shared testbed where most sweeps hit several faults.
var builtins = []Profile{
	{Name: "none"},
	{
		Name:    "light",
		Crashes: 0.05, Slowdowns: 0.25, Stalls: 0.15, Bursts: 0.2,
		OutageFrac: 0.1, SlowFactor: 0.6, StallFactor: 0.05, BurstErrorRate: 0.15,
		SlowNodeProb: 0.05, SlowNodeFactor: 0.75,
		GlitchProb: 0.02, MaxGlitches: 2,
	},
	{
		Name:    "heavy",
		Crashes: 0.5, Slowdowns: 0.8, Stalls: 0.5, Bursts: 0.8,
		OutageFrac: 0.25, SlowFactor: 0.45, StallFactor: 0.02, BurstErrorRate: 0.35,
		SlowNodeProb: 0.2, SlowNodeFactor: 0.6,
		GlitchProb: 0.1, MaxGlitches: 3,
	},
}

// Profiles lists the built-in profile names.
func Profiles() []string {
	out := make([]string, len(builtins))
	for i, p := range builtins {
		out[i] = p.Name
	}
	return out
}

// ProfileByName resolves a built-in profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range builtins {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// hash folds the profile name, a root seed, and arbitrary coordinate
// parts into a 64-bit FNV-1a hash — the same mixing scheme the trial-seed
// derivation uses, so fault plans inherit its independence properties.
func (p Profile) hash(root uint64, parts ...string) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(x uint64) {
		h ^= x
		h *= 0x100000001b3
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
		mix(0x1f) // separator so "ab","c" != "a","bc"
	}
	mixStr(p.Name)
	mix(root * 0x9e3779b97f4a7c15)
	for _, s := range parts {
		mixStr(s)
	}
	if h == 0 {
		h = 1
	}
	return h
}

// rng builds the deterministic stream for one coordinate tuple.
func (p Profile) rng(root uint64, parts ...string) *rand.Rand {
	h := p.hash(root, parts...)
	return rand.New(rand.NewPCG(h, h^0x9e3779b97f4a7c15))
}

// count samples an event count with the given expected value: the integer
// part always happens, the fractional part happens with its probability.
func count(rng *rand.Rand, rate float64) int {
	if rate <= 0 {
		return 0
	}
	n := int(rate)
	if rng.Float64() < rate-float64(n) {
		n++
	}
	return n
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// window samples a fault window inside the run period: starts in the
// first 70% of the run, mean length OutageFrac of the run, clipped so it
// ends before the run does.
func (p Profile) window(rng *rand.Rand, runSec float64) (at, dur float64) {
	at = runSec * (0.05 + 0.65*rng.Float64())
	dur = runSec * p.OutageFrac * (0.5 + rng.Float64())
	if dur <= 0 {
		dur = runSec * 0.05
	}
	if at+dur > runSec {
		dur = runSec - at
	}
	return at, dur
}

// TrialPlan derives the in-trial fault schedule for one workload point.
// The plan is a pure function of (profile, root, experiment, topology,
// users, write ratio): independent of worker count, execution order, and
// everything else — the property test pins this. Roles lists the
// deployment's server roles in canonical (tier, replica) order; events
// are returned sorted by start time.
func (p Profile) TrialPlan(root uint64, experiment, topology string, roles []string,
	users int, writeRatioPct, runSec float64) []Event {

	if !p.Enabled() || runSec <= 0 || len(roles) == 0 {
		return nil
	}
	rng := p.rng(root, "trial", experiment, topology,
		fmt.Sprintf("u=%d", users), fmt.Sprintf("w=%g", writeRatioPct))

	var out []Event
	pick := func() string { return roles[rng.IntN(len(roles))] }
	for i := count(rng, p.Crashes); i > 0; i-- {
		at, dur := p.window(rng, runSec)
		out = append(out, Event{Kind: Crash, Role: pick(), AtSec: at, DurationSec: dur})
	}
	for i := count(rng, p.Slowdowns); i > 0; i-- {
		at, dur := p.window(rng, runSec)
		f := clamp(p.SlowFactor*(0.75+0.5*rng.Float64()), 0.05, 1)
		out = append(out, Event{Kind: Slowdown, Role: pick(), AtSec: at, DurationSec: dur, Factor: f})
	}
	for i := count(rng, p.Stalls); i > 0; i-- {
		at, dur := p.window(rng, runSec)
		f := clamp(p.StallFactor, 0.01, 1)
		out = append(out, Event{Kind: Stall, Role: pick(), AtSec: at, DurationSec: dur, Factor: f})
	}
	for i := count(rng, p.Bursts); i > 0; i-- {
		at, dur := p.window(rng, runSec)
		f := clamp(p.BurstErrorRate*(0.5+rng.Float64()), 0.01, 0.95)
		out = append(out, Event{Kind: ErrorBurst, AtSec: at, DurationSec: dur, Factor: f})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtSec < out[j].AtSec })
	return out
}

// NodeFactors derives deployment-scope degradation factors: a map from
// role to effective-speed multiplier for roles unlucky enough to land on
// a slow node. Roles not in the map run at full speed. Like TrialPlan,
// the result is a pure function of the coordinates.
func (p Profile) NodeFactors(root uint64, experiment, topology string, roles []string) map[string]float64 {
	if p.SlowNodeProb <= 0 || len(roles) == 0 {
		return nil
	}
	var out map[string]float64
	for _, role := range roles {
		// One stream per role so adding a role never shifts the others.
		rng := p.rng(root, "node", experiment, topology, role)
		if rng.Float64() >= p.SlowNodeProb {
			continue
		}
		f := clamp(p.SlowNodeFactor*(0.8+0.4*rng.Float64()), 0.1, 1)
		if out == nil {
			out = map[string]float64{}
		}
		out[role] = f
	}
	return out
}

// GlitchCount derives the number of transient failures a deployment step
// suffers before succeeding (usually zero). The deployment engine calls
// it once per elbactl step; the count is a pure function of the step's
// script/line coordinates, so retried deployments glitch identically.
func (p Profile) GlitchCount(root uint64, experiment, topology, script string, line int) int {
	if p.GlitchProb <= 0 {
		return 0
	}
	rng := p.rng(root, "glitch", experiment, topology, script, fmt.Sprintf("%d", line))
	if rng.Float64() >= p.GlitchProb {
		return 0
	}
	max := p.MaxGlitches
	if max < 1 {
		max = 1
	}
	return 1 + rng.IntN(max)
}
