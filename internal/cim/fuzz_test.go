package cim

import "testing"

// FuzzParseMOF fuzzes the MOF front end with the built-in catalog as the
// seed corpus: the parser must never panic or hang, and any input it
// accepts must survive a repository WriteMOF/LoadMOF round trip.
func FuzzParseMOF(f *testing.F) {
	f.Add(catalogMOF)
	f.Add(`class Elba_Node { string Name; uint32 CPUMHz = 3000; };`)
	f.Add(`instance of Elba_Node { Name = "a"; Values = {1, 2.5, "x"}; };`)

	f.Fuzz(func(t *testing.T, src string) {
		classes, instances, err := Parse(src)
		if err != nil {
			return
		}
		repo := NewRepository()
		if err := repo.LoadMOF(src); err != nil {
			// LoadMOF layers semantic checks (e.g. instances must name a
			// declared class) on top of the grammar; rejecting is fine.
			return
		}
		rendered := repo.WriteMOF()
		re := NewRepository()
		if err := re.LoadMOF(rendered); err != nil {
			t.Fatalf("WriteMOF output does not re-parse: %v\n--- classes %d, instances %d ---\n%s",
				err, len(classes), len(instances), rendered)
		}
	})
}
