package cim

import (
	"strings"
	"testing"
)

const repoTestMOF = `
class Base { string Name; uint32 Shared = 7; };
class Mid : Base { uint32 MidProp; };
class Leaf : Mid { string LeafProp = "dflt"; };
instance of Leaf { Name = "l1"; MidProp = 3; };
instance of Mid { Name = "m1"; MidProp = 4; };
instance of Base { Name = "b1"; };
`

func newTestRepo(t *testing.T) *Repository {
	t.Helper()
	r := NewRepository()
	if err := r.LoadMOF(repoTestMOF); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRepositoryInheritanceQuery(t *testing.T) {
	r := newTestRepo(t)
	if got := len(r.InstancesOf("Base")); got != 3 {
		t.Fatalf("InstancesOf(Base) = %d, want 3", got)
	}
	if got := len(r.InstancesOf("Mid")); got != 2 {
		t.Fatalf("InstancesOf(Mid) = %d, want 2", got)
	}
	if got := len(r.InstancesOf("Leaf")); got != 1 {
		t.Fatalf("InstancesOf(Leaf) = %d, want 1", got)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRepositoryDefaultsApplied(t *testing.T) {
	r := newTestRepo(t)
	leaf := r.InstancesOf("Leaf")[0]
	if leaf.GetString("LeafProp") != "dflt" {
		t.Fatalf("class default not applied: %+v", leaf.Props)
	}
	if leaf.GetInt("Shared") != 7 {
		t.Fatalf("inherited default not applied")
	}
}

func TestRepositoryValidatesUnknownProperty(t *testing.T) {
	r := NewRepository()
	err := r.LoadMOF(`class C { string Name; }; instance of C { Bogus = 1; };`)
	if err == nil || !strings.Contains(err.Error(), "unknown property") {
		t.Fatalf("expected unknown-property error, got %v", err)
	}
}

func TestRepositoryValidatesTypes(t *testing.T) {
	r := NewRepository()
	err := r.LoadMOF(`class C { uint32 N; }; instance of C { N = "nope"; };`)
	if err == nil || !strings.Contains(err.Error(), "string value for uint32") {
		t.Fatalf("expected type error, got %v", err)
	}
	// real accepts int
	r2 := NewRepository()
	if err := r2.LoadMOF(`class C { real32 X; }; instance of C { X = 3; };`); err != nil {
		t.Fatalf("real should accept integer literal: %v", err)
	}
	// typed arrays
	r3 := NewRepository()
	err = r3.LoadMOF(`class C { string Tags[]; }; instance of C { Tags = {1, 2}; };`)
	if err == nil {
		t.Fatalf("int array for string[] should error")
	}
}

func TestRepositoryRejectsUnknownClass(t *testing.T) {
	r := NewRepository()
	if err := r.LoadMOF(`instance of Nope { };`); err == nil {
		t.Fatalf("unknown class should error")
	}
	if err := r.LoadMOF(`class C : Nope { string Name; };`); err == nil {
		t.Fatalf("unknown superclass should error")
	}
}

func TestRepositoryRejectsDuplicateClass(t *testing.T) {
	r := NewRepository()
	if err := r.LoadMOF(`class C { string Name; };`); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadMOF(`class C { string Name; };`); err == nil {
		t.Fatalf("duplicate class should error")
	}
}

func TestRepositoryFindInstance(t *testing.T) {
	r := newTestRepo(t)
	in, ok := r.FindInstance("Base", "Name", "m1")
	if !ok || in.GetInt("MidProp") != 4 {
		t.Fatalf("FindInstance failed: %v %v", in, ok)
	}
	if _, ok := r.FindInstance("Base", "Name", "zzz"); ok {
		t.Fatalf("FindInstance matched nonexistent value")
	}
}

func TestRepositoryClassNames(t *testing.T) {
	r := newTestRepo(t)
	names := r.ClassNames()
	if len(names) != 3 || names[0] != "Base" || names[2] != "Mid" {
		t.Fatalf("ClassNames = %v", names)
	}
	if _, ok := r.Class("Leaf"); !ok {
		t.Fatalf("Class(Leaf) not found")
	}
}

// TestWriteMOFRoundTrip: serializing any repository and re-parsing it
// yields the same classes and instances.
func TestWriteMOFRoundTrip(t *testing.T) {
	r := newTestRepo(t)
	text := r.WriteMOF()
	r2 := NewRepository()
	if err := r2.LoadMOF(text); err != nil {
		t.Fatalf("round trip parse failed: %v\n%s", err, text)
	}
	if len(r2.ClassNames()) != len(r.ClassNames()) {
		t.Fatalf("classes lost: %v vs %v", r2.ClassNames(), r.ClassNames())
	}
	if r2.Len() != r.Len() {
		t.Fatalf("instances lost: %d vs %d", r2.Len(), r.Len())
	}
	leaf := r2.InstancesOf("Leaf")[0]
	if leaf.GetString("Name") != "l1" || leaf.GetInt("MidProp") != 3 {
		t.Fatalf("instance data lost: %+v", leaf.Props)
	}
	// Defaults survive (they were applied at first load, serialized as
	// explicit values).
	if leaf.GetString("LeafProp") != "dflt" || leaf.GetInt("Shared") != 7 {
		t.Fatalf("defaults lost: %+v", leaf.Props)
	}
}

// TestBuiltInCatalogRoundTrips serializes the whole built-in catalog.
func TestBuiltInCatalogRoundTrips(t *testing.T) {
	cat, err := LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	text := cat.Repository().WriteMOF()
	r2 := NewRepository()
	if err := r2.LoadMOF(text); err != nil {
		t.Fatalf("catalog round trip failed: %v", err)
	}
	cat2, err := CatalogFromRepository(r2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat2.Platforms) != len(cat.Platforms) || len(cat2.Software) != len(cat.Software) {
		t.Fatalf("catalog shrank: %d/%d platforms, %d/%d packages",
			len(cat2.Platforms), len(cat.Platforms), len(cat2.Software), len(cat.Software))
	}
	p, ok := cat2.PlatformByName("emulab")
	if !ok || len(p.Pools) != 2 {
		t.Fatalf("emulab lost in round trip: %+v", p)
	}
	wl, _ := cat2.SoftwareByName("weblogic")
	if wl.MaxClients != 350 || len(wl.Benchmarks) != 1 {
		t.Fatalf("weblogic lost fields: %+v", wl)
	}
}
