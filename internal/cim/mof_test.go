package cim

import (
	"strings"
	"testing"
)

func TestParseClassAndInstance(t *testing.T) {
	src := `
// a comment
class Base {
	string Name;
};
class Node : Base {
	uint32 CPUMHz;
	uint32 Cores = 2;
	real32 Speed = 1.5;
	boolean Fast = false;
	string Tags[];
};
instance of Node {
	Name = "n1";
	CPUMHz = 3000;
	Fast = true;
	Tags = {"a", "b"};
};
`
	classes, instances, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 || len(instances) != 1 {
		t.Fatalf("got %d classes, %d instances", len(classes), len(instances))
	}
	node := classes[1]
	if node.Name != "Node" || node.Super != "Base" {
		t.Fatalf("class header wrong: %+v", node)
	}
	if len(node.Properties) != 5 {
		t.Fatalf("properties = %d", len(node.Properties))
	}
	if node.Properties[1].Default == nil || node.Properties[1].Default.I != 2 {
		t.Fatalf("default for Cores wrong: %+v", node.Properties[1])
	}
	in := instances[0]
	if in.GetString("Name") != "n1" || in.GetInt("CPUMHz") != 3000 {
		t.Fatalf("instance props wrong: %+v", in.Props)
	}
	v, _ := in.Get("Fast")
	if v.Kind != BoolValue || !v.B {
		t.Fatalf("bool prop wrong: %+v", v)
	}
	tags, _ := in.Get("Tags")
	if tags.Kind != ArrayValue || len(tags.Array) != 2 || tags.Array[1].S != "b" {
		t.Fatalf("array prop wrong: %+v", tags)
	}
}

func TestParseComments(t *testing.T) {
	src := `
/* block
   comment */
class C { string Name; }; // trailing
instance of C { Name = "x"; };
`
	_, instances, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 1 {
		t.Fatalf("instances = %d", len(instances))
	}
}

func TestParseStringEscapes(t *testing.T) {
	src := `class C { string Name; };
instance of C { Name = "a\"b\\c\nd"; };`
	_, instances, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := instances[0].GetString("Name"); got != "a\"b\\c\nd" {
		t.Fatalf("escaped string = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unterminated string", `class C { string Name; }; instance of C { Name = "x; };`},
		{"unterminated comment", `/* oops`},
		{"missing semicolon", `class C { string Name }`},
		{"bad declaration", `widget C {};`},
		{"instance without of", `class C { string Name; }; instance C {};`},
		{"duplicate property", `class C { string Name; }; instance of C { Name = "a"; Name = "b"; };`},
		{"bad escape", `class C { string Name; }; instance of C { Name = "\q"; };`},
		{"stray char", `class C { string Name; }; @`},
	}
	for _, c := range cases {
		if _, _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseErrorsIncludeLine(t *testing.T) {
	src := "class C {\n string Name;\n};\nbogus"
	_, _, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error should name line 4: %v", err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Value{Kind: StringValue, S: "x"}, `"x"`},
		{Value{Kind: IntValue, I: 42}, "42"},
		{Value{Kind: RealValue, F: 1.5}, "1.5"},
		{Value{Kind: BoolValue, B: true}, "true"},
		{Value{Kind: ArrayValue, Array: []Value{{Kind: IntValue, I: 1}, {Kind: IntValue, I: 2}}}, "{1, 2}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValueCoercions(t *testing.T) {
	if i, ok := (Value{Kind: RealValue, F: 3.9}).AsInt(); !ok || i != 3 {
		t.Errorf("AsInt(3.9) = %d, %v", i, ok)
	}
	if f, ok := (Value{Kind: IntValue, I: 7}).AsFloat(); !ok || f != 7 {
		t.Errorf("AsFloat(7) = %g, %v", f, ok)
	}
	if _, ok := (Value{Kind: StringValue}).AsInt(); ok {
		t.Errorf("string should not coerce to int")
	}
	if _, ok := (Value{Kind: BoolValue}).AsFloat(); ok {
		t.Errorf("bool should not coerce to float")
	}
}

func TestNegativeNumbers(t *testing.T) {
	src := `class C { sint32 X; real32 Y; };
instance of C { X = -5; Y = -2.5; };`
	_, instances, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if instances[0].GetInt("X") != -5 || instances[0].GetFloat("Y") != -2.5 {
		t.Fatalf("negative values wrong: %+v", instances[0].Props)
	}
}
