package cim

import (
	"fmt"
	"sort"
	"strings"
)

// Repository holds parsed CIM classes and instances and answers typed
// queries with inheritance-aware validation, playing the role of the
// CIM Object Manager in the Elba toolchain.
type Repository struct {
	classes   map[string]*Class
	instances []*Instance
}

// NewRepository creates an empty repository.
func NewRepository() *Repository {
	return &Repository{classes: map[string]*Class{}}
}

// LoadMOF parses src and registers its declarations. Classes must be
// declared (here or in an earlier load) before instances reference them.
func (r *Repository) LoadMOF(src string) error {
	classes, instances, err := Parse(src)
	if err != nil {
		return err
	}
	for i := range classes {
		c := classes[i]
		if _, dup := r.classes[c.Name]; dup {
			return fmt.Errorf("cim: duplicate class %q (line %d)", c.Name, c.Line)
		}
		if c.Super != "" {
			if _, ok := r.classes[c.Super]; !ok {
				return fmt.Errorf("cim: class %q extends unknown class %q", c.Name, c.Super)
			}
		}
		r.classes[c.Name] = &c
	}
	for i := range instances {
		in := instances[i]
		if err := r.validate(&in); err != nil {
			return err
		}
		r.applyDefaults(&in)
		r.instances = append(r.instances, &in)
	}
	return nil
}

// Class returns a registered class by name.
func (r *Repository) Class(name string) (*Class, bool) {
	c, ok := r.classes[name]
	return c, ok
}

// ClassNames lists registered classes, sorted.
func (r *Repository) ClassNames() []string {
	names := make([]string, 0, len(r.classes))
	for n := range r.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// allProperties resolves a class's properties including inherited ones,
// nearest declaration winning.
func (r *Repository) allProperties(name string) (map[string]Property, error) {
	out := map[string]Property{}
	seen := map[string]bool{}
	for name != "" {
		if seen[name] {
			return nil, fmt.Errorf("cim: inheritance cycle at class %q", name)
		}
		seen[name] = true
		c, ok := r.classes[name]
		if !ok {
			return nil, fmt.Errorf("cim: unknown class %q", name)
		}
		for _, p := range c.Properties {
			if _, shadowed := out[p.Name]; !shadowed {
				out[p.Name] = p
			}
		}
		name = c.Super
	}
	return out, nil
}

// validate checks an instance's properties against its class schema,
// including property types.
func (r *Repository) validate(in *Instance) error {
	props, err := r.allProperties(in.Class)
	if err != nil {
		return fmt.Errorf("cim: instance at line %d: %w", in.Line, err)
	}
	for name, v := range in.Props {
		p, ok := props[name]
		if !ok {
			return fmt.Errorf("cim: instance of %q (line %d): unknown property %q", in.Class, in.Line, name)
		}
		if !typeMatches(p.Type, v) {
			return fmt.Errorf("cim: instance of %q (line %d): property %q: %s value for %s",
				in.Class, in.Line, name, kindName(v.Kind), p.Type)
		}
	}
	return nil
}

// applyDefaults fills in class-level property defaults the instance does
// not set.
func (r *Repository) applyDefaults(in *Instance) {
	props, err := r.allProperties(in.Class)
	if err != nil {
		return // validate already rejected unknown classes
	}
	for name, p := range props {
		if p.Default == nil {
			continue
		}
		if _, set := in.Props[name]; !set {
			in.Props[name] = *p.Default
		}
	}
}

func kindName(k ValueKind) string {
	switch k {
	case StringValue:
		return "string"
	case IntValue:
		return "integer"
	case RealValue:
		return "real"
	case BoolValue:
		return "boolean"
	case ArrayValue:
		return "array"
	default:
		return "invalid"
	}
}

// typeMatches checks a MOF type name against a value kind. Integer types
// accept integer literals; real types accept both; arrays are declared
// with a [] suffix.
func typeMatches(typ string, v Value) bool {
	if strings.HasSuffix(typ, "[]") {
		if v.Kind != ArrayValue {
			return false
		}
		elem := strings.TrimSuffix(typ, "[]")
		for _, e := range v.Array {
			if !typeMatches(elem, e) {
				return false
			}
		}
		return true
	}
	switch typ {
	case "string", "datetime", "ref":
		return v.Kind == StringValue
	case "uint8", "uint16", "uint32", "uint64", "sint8", "sint16", "sint32", "sint64":
		return v.Kind == IntValue
	case "real32", "real64":
		return v.Kind == RealValue || v.Kind == IntValue
	case "boolean":
		return v.Kind == BoolValue
	default:
		return false
	}
}

// isSubclassOf reports whether class name is cls or inherits from it.
func (r *Repository) isSubclassOf(name, cls string) bool {
	for name != "" {
		if name == cls {
			return true
		}
		c, ok := r.classes[name]
		if !ok {
			return false
		}
		name = c.Super
	}
	return false
}

// InstancesOf returns instances whose class is cls or a subclass of it,
// in declaration order.
func (r *Repository) InstancesOf(cls string) []*Instance {
	var out []*Instance
	for _, in := range r.instances {
		if r.isSubclassOf(in.Class, cls) {
			out = append(out, in)
		}
	}
	return out
}

// FindInstance returns the first instance of cls (or subclass) whose
// property prop equals value.
func (r *Repository) FindInstance(cls, prop, value string) (*Instance, bool) {
	for _, in := range r.InstancesOf(cls) {
		if in.GetString(prop) == value {
			return in, true
		}
	}
	return nil, false
}

// Len reports the number of registered instances.
func (r *Repository) Len() int { return len(r.instances) }
