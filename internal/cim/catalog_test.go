package cim

import "testing"

func loadCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCatalogMatchesPaperTable2 checks the built-in hardware catalog
// against the paper's Table 2.
func TestCatalogMatchesPaperTable2(t *testing.T) {
	c := loadCatalog(t)
	if len(c.Platforms) != 3 {
		t.Fatalf("platforms = %d, want 3", len(c.Platforms))
	}
	warp, ok := c.PlatformByName("warp")
	if !ok || len(warp.Pools) != 1 {
		t.Fatalf("warp platform wrong: %+v", warp)
	}
	if warp.Pools[0].CPUMHz != 3060 || warp.Pools[0].NodeCount != 56 || warp.Pools[0].CPUCount != 2 {
		t.Fatalf("warp pool = %+v", warp.Pools[0])
	}
	rohan, _ := c.PlatformByName("rohan")
	if rohan.Pools[0].CPUMHz != 3200 || rohan.Pools[0].MemoryMB != 6144 {
		t.Fatalf("rohan pool = %+v", rohan.Pools[0])
	}
	emulab, _ := c.PlatformByName("emulab")
	if len(emulab.Pools) != 2 {
		t.Fatalf("emulab should have low-end and high-end pools")
	}
	var low, high *NodePool
	for i := range emulab.Pools {
		switch emulab.Pools[i].NodeType {
		case "low-end":
			low = &emulab.Pools[i]
		case "high-end":
			high = &emulab.Pools[i]
		}
	}
	if low == nil || high == nil {
		t.Fatalf("emulab node types missing: %+v", emulab.Pools)
	}
	if low.CPUMHz != 600 || low.MemoryMB != 256 {
		t.Fatalf("emulab low-end = %+v", low)
	}
	if high.CPUMHz != 3000 || high.MemoryMB != 2048 {
		t.Fatalf("emulab high-end = %+v", high)
	}
}

// TestCatalogMatchesPaperTable1 checks the software catalog against the
// paper's Table 1.
func TestCatalogMatchesPaperTable1(t *testing.T) {
	c := loadCatalog(t)
	for _, name := range []string{"mysql", "tomcat", "apache", "jonas", "weblogic", "cjdbc", "sysstat"} {
		if _, ok := c.SoftwareByName(name); !ok {
			t.Errorf("software %q missing from catalog", name)
		}
	}
	wl, _ := c.SoftwareByName("weblogic")
	if wl.Version != "8.1" || wl.Tier != "app" {
		t.Fatalf("weblogic = %+v", wl)
	}
	// RUBiS app tier must offer Tomcat, JOnAS and WebLogic; RUBBoS must
	// not offer the EJB servers.
	rubisApp := c.SoftwareForTier("rubis", "app")
	if len(rubisApp) != 3 {
		t.Fatalf("rubis app-tier packages = %d, want 3", len(rubisApp))
	}
	rubbosApp := c.SoftwareForTier("rubbos", "app")
	if len(rubbosApp) != 1 || rubbosApp[0].Name != "tomcat" {
		t.Fatalf("rubbos app-tier packages = %+v", rubbosApp)
	}
}

func TestCatalogConnectionPoolLimit(t *testing.T) {
	// The app servers carry the 350-session pool that causes high-load
	// experiment failures (DESIGN.md §3).
	c := loadCatalog(t)
	for _, name := range []string{"jonas", "weblogic"} {
		s, _ := c.SoftwareByName(name)
		if s.MaxClients != 350 {
			t.Errorf("%s MaxClients = %d, want 350", name, s.MaxClients)
		}
	}
	// Tomcat (RUBBoS) and MySQL carry no fixed session pool: the paper
	// drives RUBBoS to 5000 users with no Table 7-style failures.
	for _, name := range []string{"tomcat", "mysql"} {
		s, _ := c.SoftwareByName(name)
		if s.MaxClients != 0 {
			t.Errorf("%s should have no session cap in the model", name)
		}
	}
}

func TestCatalogLookupMisses(t *testing.T) {
	c := loadCatalog(t)
	if _, ok := c.PlatformByName("none"); ok {
		t.Errorf("unknown platform found")
	}
	if _, ok := c.SoftwareByName("none"); ok {
		t.Errorf("unknown software found")
	}
	if got := c.SoftwareForTier("rubis", "cache"); got != nil {
		t.Errorf("unknown tier returned packages: %v", got)
	}
	if c.Repository() == nil {
		t.Errorf("repository accessor nil")
	}
}

func TestCatalogFromCustomRepository(t *testing.T) {
	repo := NewRepository()
	err := repo.LoadMOF(`
class CIM_ManagedElement { string Name; };
class CIM_ComputerSystem : CIM_ManagedElement {
	uint32 CPUMHz; uint32 CPUCount = 1; uint32 MemoryMB;
	uint32 NetworkMbps; uint32 DiskRPM; uint32 DiskCacheMB = 8;
};
class Elba_NodePool : CIM_ComputerSystem {
	string Platform; string NodeType; uint32 NodeCount;
};
class Elba_Platform : CIM_ManagedElement { string OS; string KernelVersion; };
class Elba_SoftwarePackage : CIM_ManagedElement {
	string Version; string Tier; string Benchmarks[];
	uint32 MaxClients = 0; uint32 PortBase;
};
instance of Elba_Platform { Name = "lab"; OS = "X"; KernelVersion = "1"; };
instance of Elba_NodePool {
	Name = "lab-n"; Platform = "lab"; NodeType = "x"; NodeCount = 4;
	CPUMHz = 2000; MemoryMB = 512; NetworkMbps = 100; DiskRPM = 7200;
};
`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CatalogFromRepository(repo)
	if err != nil {
		t.Fatal(err)
	}
	lab, ok := c.PlatformByName("lab")
	if !ok || len(lab.Pools) != 1 || lab.Pools[0].CPUMHz != 2000 {
		t.Fatalf("custom catalog wrong: %+v", lab)
	}
}

func TestCatalogRejectsInvalidPool(t *testing.T) {
	repo := NewRepository()
	err := repo.LoadMOF(`
class CIM_ManagedElement { string Name; };
class Elba_NodePool : CIM_ManagedElement {
	string Platform; string NodeType; uint32 NodeCount; uint32 CPUMHz;
};
instance of Elba_NodePool { Name = "p"; Platform = "x"; NodeCount = 0; CPUMHz = 100; };
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CatalogFromRepository(repo); err == nil {
		t.Fatalf("zero NodeCount should be rejected")
	}
}
