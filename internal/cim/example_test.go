package cim_test

import (
	"fmt"

	"elba/internal/cim"
)

// The MOF parser accepts CIM class and instance declarations, the format
// the paper feeds to Mulini (§II).
func ExampleParse() {
	classes, instances, err := cim.Parse(`
class Elba_Node {
	string Name;
	uint32 CPUMHz;
	uint32 Cores = 1;
};
instance of Elba_Node { Name = "n1"; CPUMHz = 3000; };
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("classes:", len(classes), "instances:", len(instances))
	fmt.Println(instances[0].GetString("Name"), instances[0].GetInt("CPUMHz"))
	// Output:
	// classes: 1 instances: 1
	// n1 3000
}

// The built-in catalog carries the paper's Table 2 platforms.
func ExampleLoadCatalog() {
	cat, err := cim.LoadCatalog()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	emulab, _ := cat.PlatformByName("emulab")
	for _, pool := range emulab.Pools {
		fmt.Printf("%s: %d MHz\n", pool.NodeType, pool.CPUMHz)
	}
	// Output:
	// low-end: 600 MHz
	// high-end: 3000 MHz
}
