package cim

import "fmt"

// catalogMOF is the built-in resource model describing the paper's
// experimental environment: the Warp, Rohan, and Emulab platforms
// (Table 2) and the software stacks per benchmark tier (Table 1). It is
// genuine MOF input: the platform catalog below is parsed by this
// package's MOF parser at first use, so the catalog exercises the same
// path a user-supplied resource model would.
const catalogMOF = `
// Elba resource model — hardware platforms (paper Table 2) and software
// configurations (paper Table 1).

class CIM_ManagedElement {
	string Name;
};

class CIM_ComputerSystem : CIM_ManagedElement {
	uint32 CPUMHz;
	uint32 CPUCount = 1;
	uint32 MemoryMB;
	uint32 NetworkMbps;
	uint32 DiskRPM;
	uint32 DiskCacheMB = 8;
	uint32 DiskMBps = 0;   // sustained transfer rate; 0 = unmeasured
};

// Elba_NodePool describes a homogeneous group of cluster nodes.
class Elba_NodePool : CIM_ComputerSystem {
	string Platform;
	string NodeType;
	uint32 NodeCount;
};

class Elba_Platform : CIM_ManagedElement {
	string OS;
	string KernelVersion;
};

class Elba_SoftwarePackage : CIM_ManagedElement {
	string Version;
	string Tier;          // "web", "app", or "db"
	string Benchmarks[];  // benchmarks this package serves
	uint32 MaxClients = 0;
	uint32 PortBase;
};

// ---- Platforms (Table 2) -------------------------------------------------

instance of Elba_Platform {
	Name = "warp";
	OS = "Red Hat Enterprise Linux 4";
	KernelVersion = "2.6.9-5.0.5.EL i386";
};
instance of Elba_NodePool {
	Name = "warp-node";
	Platform = "warp";
	NodeType = "blade";
	NodeCount = 56;
	CPUMHz = 3060;
	CPUCount = 2;
	MemoryMB = 1024;
	NetworkMbps = 1000;
	DiskRPM = 5400;
	DiskMBps = 35;
};

instance of Elba_Platform {
	Name = "rohan";
	OS = "Red Hat Enterprise Linux 4";
	KernelVersion = "2.6.9-5.0.5.EL x86_64";
};
instance of Elba_NodePool {
	Name = "rohan-node";
	Platform = "rohan";
	NodeType = "blade";
	NodeCount = 53;
	CPUMHz = 3200;
	CPUCount = 2;
	MemoryMB = 6144;
	NetworkMbps = 1000;
	DiskRPM = 10000;
	DiskMBps = 70;
};

instance of Elba_Platform {
	Name = "emulab";
	OS = "Fedora Core 4";
	KernelVersion = "2.6.12 i386";
};
instance of Elba_NodePool {
	Name = "emulab-low";
	Platform = "emulab";
	NodeType = "low-end";
	NodeCount = 128;
	CPUMHz = 600;
	CPUCount = 1;
	MemoryMB = 256;
	NetworkMbps = 100;
	DiskRPM = 7200;
	DiskMBps = 45;
};
instance of Elba_NodePool {
	Name = "emulab-high";
	Platform = "emulab";
	NodeType = "high-end";
	NodeCount = 128;
	CPUMHz = 3000;
	CPUCount = 1;
	MemoryMB = 2048;
	NetworkMbps = 1000;
	DiskRPM = 10000;
	DiskMBps = 70;
};

// ---- Software (Table 1) --------------------------------------------------

instance of Elba_SoftwarePackage {
	Name = "mysql";
	Version = "4.1 Max";
	Tier = "db";
	Benchmarks = {"rubis", "rubbos"};
	PortBase = 3306;
};
instance of Elba_SoftwarePackage {
	Name = "cjdbc";
	Version = "2.0.2";
	Tier = "db";
	Benchmarks = {"rubis", "rubbos"};
	PortBase = 25322;
};
// Tomcat fronts RUBBoS's PHP-style servlet pages; the paper drives that
// benchmark to 5000 concurrent users, so its connector is configured
// without the EJB servers' fixed 350-session pool.
instance of Elba_SoftwarePackage {
	Name = "tomcat";
	Version = "5.5";
	Tier = "app";
	Benchmarks = {"rubis", "rubbos"};
	MaxClients = 0;
	PortBase = 8009;
};
instance of Elba_SoftwarePackage {
	Name = "jonas";
	Version = "4.x";
	Tier = "app";
	Benchmarks = {"rubis"};
	MaxClients = 350;
	PortBase = 9000;
};
instance of Elba_SoftwarePackage {
	Name = "weblogic";
	Version = "8.1";
	Tier = "app";
	Benchmarks = {"rubis"};
	MaxClients = 350;
	PortBase = 7001;
};
instance of Elba_SoftwarePackage {
	Name = "apache";
	Version = "2.0";
	Tier = "web";
	Benchmarks = {"rubis", "rubbos"};
	PortBase = 80;
};
instance of Elba_SoftwarePackage {
	Name = "sysstat";
	Version = "5.0.5";
	Tier = "web";
	Benchmarks = {"rubis", "rubbos"};
	PortBase = 0;
};
`

// NodePool is a typed view of an Elba_NodePool instance.
type NodePool struct {
	Name        string
	Platform    string
	NodeType    string
	NodeCount   int
	CPUMHz      int
	CPUCount    int
	MemoryMB    int
	NetworkMbps int
	DiskRPM     int
	DiskMBps    int
}

// Platform is a typed view of an Elba_Platform instance with its pools.
type Platform struct {
	Name   string
	OS     string
	Kernel string
	Pools  []NodePool
}

// SoftwarePackage is a typed view of an Elba_SoftwarePackage instance.
type SoftwarePackage struct {
	Name       string
	Version    string
	Tier       string
	Benchmarks []string
	MaxClients int
	PortBase   int
}

// Catalog bundles the typed views of the built-in resource model.
type Catalog struct {
	repo      *Repository
	Platforms []Platform
	Software  []SoftwarePackage
}

// LoadCatalog parses the built-in MOF catalog. It is the programmatic
// entry point for the paper's Tables 1 and 2.
func LoadCatalog() (*Catalog, error) {
	repo := NewRepository()
	if err := repo.LoadMOF(catalogMOF); err != nil {
		return nil, fmt.Errorf("cim: built-in catalog: %w", err)
	}
	return CatalogFromRepository(repo)
}

// CatalogFromRepository builds typed views from any repository that
// defines the Elba classes, allowing user-supplied MOF to replace or
// extend the built-in environment.
func CatalogFromRepository(repo *Repository) (*Catalog, error) {
	c := &Catalog{repo: repo}
	pools := map[string][]NodePool{}
	for _, in := range repo.InstancesOf("Elba_NodePool") {
		p := NodePool{
			Name:        in.GetString("Name"),
			Platform:    in.GetString("Platform"),
			NodeType:    in.GetString("NodeType"),
			NodeCount:   int(in.GetInt("NodeCount")),
			CPUMHz:      int(in.GetInt("CPUMHz")),
			CPUCount:    int(in.GetInt("CPUCount")),
			MemoryMB:    int(in.GetInt("MemoryMB")),
			NetworkMbps: int(in.GetInt("NetworkMbps")),
			DiskRPM:     int(in.GetInt("DiskRPM")),
			DiskMBps:    int(in.GetInt("DiskMBps")),
		}
		if p.Name == "" || p.Platform == "" {
			return nil, fmt.Errorf("cim: node pool at line %d missing Name/Platform", in.Line)
		}
		if p.CPUMHz <= 0 || p.NodeCount <= 0 {
			return nil, fmt.Errorf("cim: node pool %q needs positive CPUMHz and NodeCount", p.Name)
		}
		pools[p.Platform] = append(pools[p.Platform], p)
	}
	for _, in := range repo.InstancesOf("Elba_Platform") {
		name := in.GetString("Name")
		c.Platforms = append(c.Platforms, Platform{
			Name:   name,
			OS:     in.GetString("OS"),
			Kernel: in.GetString("KernelVersion"),
			Pools:  pools[name],
		})
	}
	for _, in := range repo.InstancesOf("Elba_SoftwarePackage") {
		var benches []string
		if v, ok := in.Get("Benchmarks"); ok && v.Kind == ArrayValue {
			for _, e := range v.Array {
				benches = append(benches, e.S)
			}
		}
		c.Software = append(c.Software, SoftwarePackage{
			Name:       in.GetString("Name"),
			Version:    in.GetString("Version"),
			Tier:       in.GetString("Tier"),
			Benchmarks: benches,
			MaxClients: int(in.GetInt("MaxClients")),
			PortBase:   int(in.GetInt("PortBase")),
		})
	}
	return c, nil
}

// Repository exposes the underlying CIM repository.
func (c *Catalog) Repository() *Repository { return c.repo }

// PlatformByName finds a platform.
func (c *Catalog) PlatformByName(name string) (Platform, bool) {
	for _, p := range c.Platforms {
		if p.Name == name {
			return p, true
		}
	}
	return Platform{}, false
}

// SoftwareByName finds a software package.
func (c *Catalog) SoftwareByName(name string) (SoftwarePackage, bool) {
	for _, s := range c.Software {
		if s.Name == name {
			return s, true
		}
	}
	return SoftwarePackage{}, false
}

// SoftwareForTier lists packages serving a benchmark's tier.
func (c *Catalog) SoftwareForTier(benchmark, tier string) []SoftwarePackage {
	var out []SoftwarePackage
	for _, s := range c.Software {
		if s.Tier != tier {
			continue
		}
		for _, b := range s.Benchmarks {
			if b == benchmark {
				out = append(out, s)
				break
			}
		}
	}
	return out
}
