// Package cim implements the subset of the DMTF Common Information Model
// (CIM) and its Managed Object Format (MOF) syntax that Elba uses to
// describe hardware and software resources. The paper feeds CIM/MOF
// specifications to the Mulini generator (§II); this package provides the
// MOF parser, a class/instance repository with inheritance, and the
// built-in catalog of the paper's three experimental platforms (Table 2)
// and software stacks (Table 1).
package cim

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies MOF lexemes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct
)

type token struct {
	kind tokenKind
	text string
	line int
}

// lexer splits MOF source into tokens, skipping // and /* */ comments.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("mof: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errf("unterminated block comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return l.scan()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) scan() (token, error) {
	c := l.src[l.pos]
	start := l.pos
	switch {
	case c == '"':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				default:
					return token{}, l.errf("unknown escape \\%c", l.src[l.pos])
				}
				l.pos++
				continue
			}
			if ch == '"' {
				l.pos++
				return token{kind: tokString, text: b.String(), line: l.line}, nil
			}
			if ch == '\n' {
				return token{}, l.errf("newline in string literal")
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{}, l.errf("unterminated string literal")
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case unicode.IsDigit(rune(c)) || c == '-' || c == '+':
		l.pos++
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case strings.ContainsRune("{};:=,[]()", rune(c)):
		l.pos++
		return token{kind: tokPunct, text: string(c), line: l.line}, nil
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}

// Value is a MOF property value: string, int64, float64, bool, or a
// homogeneous []Value array.
type Value struct {
	S     string
	I     int64
	F     float64
	B     bool
	Array []Value
	Kind  ValueKind
}

// ValueKind discriminates Value contents.
type ValueKind int

// Value kinds.
const (
	StringValue ValueKind = iota
	IntValue
	RealValue
	BoolValue
	ArrayValue
)

// String renders the value in MOF syntax.
func (v Value) String() string {
	switch v.Kind {
	case StringValue:
		return strconv.Quote(v.S)
	case IntValue:
		return strconv.FormatInt(v.I, 10)
	case RealValue:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case BoolValue:
		return strconv.FormatBool(v.B)
	case ArrayValue:
		parts := make([]string, len(v.Array))
		for i, e := range v.Array {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return "<invalid>"
	}
}

// AsInt coerces numeric values to int64.
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case IntValue:
		return v.I, true
	case RealValue:
		return int64(v.F), true
	default:
		return 0, false
	}
}

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case IntValue:
		return float64(v.I), true
	case RealValue:
		return v.F, true
	default:
		return 0, false
	}
}

// Property declares a typed class property, optionally with a default.
type Property struct {
	Name    string
	Type    string // MOF type name: string, uint32, real32, boolean, ...
	Default *Value
}

// Class is a CIM class: a named set of typed properties, optionally
// inheriting from a superclass.
type Class struct {
	Name       string
	Super      string
	Properties []Property
	Line       int
}

// Instance is a CIM instance: property assignments for a class.
type Instance struct {
	Class string
	Props map[string]Value
	Line  int
}

// Get returns the instance's value for name.
func (in *Instance) Get(name string) (Value, bool) {
	v, ok := in.Props[name]
	return v, ok
}

// GetString returns a string property or "".
func (in *Instance) GetString(name string) string {
	if v, ok := in.Props[name]; ok && v.Kind == StringValue {
		return v.S
	}
	return ""
}

// GetInt returns a numeric property as int64 or 0.
func (in *Instance) GetInt(name string) int64 {
	if v, ok := in.Props[name]; ok {
		if i, ok := v.AsInt(); ok {
			return i
		}
	}
	return 0
}

// GetFloat returns a numeric property as float64 or 0.
func (in *Instance) GetFloat(name string) float64 {
	if v, ok := in.Props[name]; ok {
		if f, ok := v.AsFloat(); ok {
			return f
		}
	}
	return 0
}

// parser consumes tokens into classes and instances.
type parser struct {
	lx   *lexer
	tok  token
	peek *token
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return fmt.Errorf("mof: line %d: expected %q, found %q", p.tok.line, s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", fmt.Errorf("mof: line %d: expected identifier, found %q", p.tok.line, p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

// Parse reads MOF source and returns its class and instance declarations
// in order of appearance.
func Parse(src string) ([]Class, []Instance, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, nil, err
	}
	var classes []Class
	var instances []Instance
	for p.tok.kind != tokEOF {
		if p.tok.kind != tokIdent {
			return nil, nil, fmt.Errorf("mof: line %d: expected declaration, found %q", p.tok.line, p.tok.text)
		}
		switch p.tok.text {
		case "class":
			c, err := p.parseClass()
			if err != nil {
				return nil, nil, err
			}
			classes = append(classes, c)
		case "instance":
			in, err := p.parseInstance()
			if err != nil {
				return nil, nil, err
			}
			instances = append(instances, in)
		default:
			return nil, nil, fmt.Errorf("mof: line %d: unknown declaration %q", p.tok.line, p.tok.text)
		}
	}
	return classes, instances, nil
}

func (p *parser) parseClass() (Class, error) {
	line := p.tok.line
	if err := p.advance(); err != nil { // consume "class"
		return Class{}, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return Class{}, err
	}
	c := Class{Name: name, Line: line}
	if p.tok.kind == tokPunct && p.tok.text == ":" {
		if err := p.advance(); err != nil {
			return Class{}, err
		}
		super, err := p.expectIdent()
		if err != nil {
			return Class{}, err
		}
		c.Super = super
	}
	if err := p.expectPunct("{"); err != nil {
		return Class{}, err
	}
	for !(p.tok.kind == tokPunct && p.tok.text == "}") {
		typ, err := p.expectIdent()
		if err != nil {
			return Class{}, err
		}
		pname, err := p.expectIdent()
		if err != nil {
			return Class{}, err
		}
		// MOF array properties are written "string Tags[];".
		if p.tok.kind == tokPunct && p.tok.text == "[" {
			if err := p.advance(); err != nil {
				return Class{}, err
			}
			if err := p.expectPunct("]"); err != nil {
				return Class{}, err
			}
			typ += "[]"
		}
		prop := Property{Name: pname, Type: typ}
		if p.tok.kind == tokPunct && p.tok.text == "=" {
			if err := p.advance(); err != nil {
				return Class{}, err
			}
			v, err := p.parseValue()
			if err != nil {
				return Class{}, err
			}
			prop.Default = &v
		}
		if err := p.expectPunct(";"); err != nil {
			return Class{}, err
		}
		c.Properties = append(c.Properties, prop)
	}
	if err := p.advance(); err != nil { // consume "}"
		return Class{}, err
	}
	if err := p.expectPunct(";"); err != nil {
		return Class{}, err
	}
	return c, nil
}

func (p *parser) parseInstance() (Instance, error) {
	line := p.tok.line
	if err := p.advance(); err != nil { // consume "instance"
		return Instance{}, err
	}
	of, err := p.expectIdent()
	if err != nil {
		return Instance{}, err
	}
	if of != "of" {
		return Instance{}, fmt.Errorf("mof: line %d: expected 'of' after 'instance'", line)
	}
	class, err := p.expectIdent()
	if err != nil {
		return Instance{}, err
	}
	if err := p.expectPunct("{"); err != nil {
		return Instance{}, err
	}
	in := Instance{Class: class, Props: map[string]Value{}, Line: line}
	for !(p.tok.kind == tokPunct && p.tok.text == "}") {
		pname, err := p.expectIdent()
		if err != nil {
			return Instance{}, err
		}
		if err := p.expectPunct("="); err != nil {
			return Instance{}, err
		}
		v, err := p.parseValue()
		if err != nil {
			return Instance{}, err
		}
		if err := p.expectPunct(";"); err != nil {
			return Instance{}, err
		}
		if _, dup := in.Props[pname]; dup {
			return Instance{}, fmt.Errorf("mof: line %d: duplicate property %q", line, pname)
		}
		in.Props[pname] = v
	}
	if err := p.advance(); err != nil { // consume "}"
		return Instance{}, err
	}
	if err := p.expectPunct(";"); err != nil {
		return Instance{}, err
	}
	return in, nil
}

func (p *parser) parseValue() (Value, error) {
	switch {
	case p.tok.kind == tokString:
		v := Value{Kind: StringValue, S: p.tok.text}
		return v, p.advance()
	case p.tok.kind == tokNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return Value{}, err
		}
		if strings.ContainsAny(text, ".eE") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Value{}, fmt.Errorf("mof: invalid number %q", text)
			}
			return Value{Kind: RealValue, F: f}, nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("mof: invalid integer %q", text)
		}
		return Value{Kind: IntValue, I: i}, nil
	case p.tok.kind == tokIdent && (p.tok.text == "true" || p.tok.text == "false"):
		v := Value{Kind: BoolValue, B: p.tok.text == "true"}
		return v, p.advance()
	case p.tok.kind == tokPunct && p.tok.text == "{":
		if err := p.advance(); err != nil {
			return Value{}, err
		}
		arr := Value{Kind: ArrayValue}
		for !(p.tok.kind == tokPunct && p.tok.text == "}") {
			e, err := p.parseValue()
			if err != nil {
				return Value{}, err
			}
			arr.Array = append(arr.Array, e)
			if p.tok.kind == tokPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return Value{}, err
				}
			}
		}
		return arr, p.advance()
	default:
		return Value{}, fmt.Errorf("mof: line %d: expected value, found %q", p.tok.line, p.tok.text)
	}
}
