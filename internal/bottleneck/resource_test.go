package bottleneck

import (
	"testing"

	"elba/internal/store"
)

// resResult builds a trial observation with per-resource tier utilization.
func resResult(completed bool, errRate float64, cpu, disk, net map[string]float64) store.Result {
	r := result(completed, errRate, cpu)
	r.TierDisk = disk
	r.TierNet = net
	return r
}

// TestDetectResources drives the widened (tier, resource) verdict through
// every bottleneck class: CPU-bound, disk-bound, net-bound, session
// exhaustion, and an unsaturated system.
func TestDetectResources(t *testing.T) {
	cases := []struct {
		name      string
		r         store.Result
		tier      string
		resource  string
		saturated bool
		reason    string
	}{
		{
			name:      "cpu-bound",
			r:         resResult(true, 0, map[string]float64{"web": 10, "app": 96, "db": 40}, nil, nil),
			tier:      "app",
			resource:  "cpu",
			saturated: true,
			reason:    "app tier CPU at 96.0% (saturated)",
		},
		{
			name: "disk-bound",
			r: resResult(true, 0,
				map[string]float64{"web": 5, "app": 30, "db": 20},
				map[string]float64{"db": 91}, nil),
			tier:      "db",
			resource:  "disk",
			saturated: true,
			reason:    "db tier disk at 91.0% (saturated)",
		},
		{
			name: "net-bound",
			r: resResult(true, 0,
				map[string]float64{"web": 40, "app": 30, "db": 20},
				map[string]float64{"db": 35},
				map[string]float64{"web": 93}),
			tier:      "web",
			resource:  "net",
			saturated: true,
			reason:    "web tier net at 93.0% (saturated)",
		},
		{
			name: "disk-approaching",
			r: resResult(true, 0,
				map[string]float64{"db": 30},
				map[string]float64{"db": 78}, nil),
			tier:      "db",
			resource:  "disk",
			saturated: false,
			reason:    "db tier disk at 78.0% (approaching saturation)",
		},
		{
			name: "session-exhaustion",
			r: resResult(false, 0.1,
				map[string]float64{"app": 50},
				map[string]float64{"db": 60}, nil),
			tier:      "sessions",
			resource:  "",
			saturated: true,
			reason:    "trial failed with 10.0% errors: connection pool exhausted",
		},
		{
			name: "unsaturated",
			r: resResult(true, 0,
				map[string]float64{"web": 10, "app": 30, "db": 20},
				map[string]float64{"db": 45}, nil),
			tier:      "none",
			resource:  "disk",
			saturated: false,
			reason:    "highest tier disk is db at 45.0%; system unsaturated",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := Detect(tc.r, DefaultThresholds)
			if v.Tier != tc.tier || v.Resource != tc.resource || v.Saturated != tc.saturated {
				t.Fatalf("verdict = %+v, want tier=%q resource=%q saturated=%v",
					v, tc.tier, tc.resource, tc.saturated)
			}
			if v.Reason != tc.reason {
				t.Fatalf("reason = %q, want %q", v.Reason, tc.reason)
			}
		})
	}
}

// TestDetectCPUReasonsUnchanged pins the CPU-only reason strings to their
// pre-multi-resource spelling, byte for byte: stored reports and scale-out
// notes from old runs must stay reproducible.
func TestDetectCPUReasonsUnchanged(t *testing.T) {
	cases := []struct {
		cpu    map[string]float64
		reason string
	}{
		{map[string]float64{"web": 10, "app": 96, "db": 40}, "app tier CPU at 96.0% (saturated)"},
		{map[string]float64{"web": 10, "app": 75, "db": 40}, "app tier CPU at 75.0% (approaching saturation)"},
		{map[string]float64{"web": 10, "app": 30, "db": 20}, "highest tier CPU is app at 30.0%; system unsaturated"},
	}
	for _, tc := range cases {
		v := Detect(result(true, 0, tc.cpu), DefaultThresholds)
		if v.Reason != tc.reason {
			t.Fatalf("reason = %q, want %q", v.Reason, tc.reason)
		}
	}
}

// TestDetectResourceTieBreak: at equal utilization on the same tier, the
// classic CPU diagnosis wins, then disk, then net — deterministically.
func TestDetectResourceTieBreak(t *testing.T) {
	v := Detect(resResult(true, 0,
		map[string]float64{"db": 90},
		map[string]float64{"db": 90},
		map[string]float64{"db": 90}), DefaultThresholds)
	if v.Tier != "db" || v.Resource != "cpu" {
		t.Fatalf("verdict = %+v, want db/cpu", v)
	}
	v = Detect(resResult(true, 0,
		map[string]float64{"db": 50},
		map[string]float64{"db": 90},
		map[string]float64{"db": 90}), DefaultThresholds)
	if v.Tier != "db" || v.Resource != "disk" {
		t.Fatalf("verdict = %+v, want db/disk", v)
	}
}

// TestDetectMigrationSequence replays the observation sequence the
// scale-out loop must follow when the bottleneck migrates: the app tier's
// CPU saturates first, an app server is added, and the next saturated
// observation is the database disk — a different tier AND a different
// resource, so the loop's next action flips from add-app-server to
// add-db-server.
func TestDetectMigrationSequence(t *testing.T) {
	// Step 1: 1-1-1, app CPU is the wall.
	v1 := Detect(resResult(true, 0,
		map[string]float64{"web": 20, "app": 94, "db": 55},
		map[string]float64{"db": 60}, nil), DefaultThresholds)
	if v1.Tier != "app" || v1.Resource != "cpu" || !v1.Saturated {
		t.Fatalf("step 1 verdict = %+v, want saturated app/cpu", v1)
	}

	// Step 2: 1-2-1 after adding an app server; app CPU halves, the load
	// the extra server admits pushes the slow spindle over the edge.
	v2 := Detect(resResult(true, 0,
		map[string]float64{"web": 25, "app": 52, "db": 60},
		map[string]float64{"db": 92}, nil), DefaultThresholds)
	if v2.Tier != "db" || v2.Resource != "disk" || !v2.Saturated {
		t.Fatalf("step 2 verdict = %+v, want saturated db/disk", v2)
	}

	// The tier sequence app → db is exactly what drives the loop's
	// add-app-server → add-db-server action migration.
	if v1.Tier == v2.Tier || v1.Resource == v2.Resource {
		t.Fatalf("migration not distinguishable: %+v then %+v", v1, v2)
	}
}
