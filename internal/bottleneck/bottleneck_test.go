package bottleneck

import (
	"strings"
	"testing"

	"elba/internal/store"
)

func result(completed bool, errRate float64, cpu map[string]float64) store.Result {
	reqs := int64(1000)
	errs := int64(float64(reqs) * errRate / (1 - errRate))
	return store.Result{
		Completed: completed,
		Requests:  reqs,
		Errors:    errs,
		TierCPU:   cpu,
	}
}

func TestDetectAppSaturation(t *testing.T) {
	v := Detect(result(true, 0, map[string]float64{"web": 10, "app": 96, "db": 40}), DefaultThresholds)
	if v.Tier != "app" || !v.Saturated {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestDetectNearSaturation(t *testing.T) {
	v := Detect(result(true, 0, map[string]float64{"web": 10, "app": 75, "db": 40}), DefaultThresholds)
	if v.Tier != "app" || v.Saturated {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestDetectUnsaturated(t *testing.T) {
	v := Detect(result(true, 0, map[string]float64{"web": 10, "app": 30, "db": 20}), DefaultThresholds)
	if v.Tier != "none" {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestDetectSessionExhaustion(t *testing.T) {
	v := Detect(result(false, 0.1, map[string]float64{"app": 50}), DefaultThresholds)
	if v.Tier != "sessions" || !v.Saturated {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestDetectDBSaturation(t *testing.T) {
	v := Detect(result(true, 0, map[string]float64{"web": 5, "app": 60, "db": 92}), DefaultThresholds)
	if v.Tier != "db" || !v.Saturated {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestDetectDeterministicTieBreak(t *testing.T) {
	a := Detect(result(true, 0, map[string]float64{"app": 90, "db": 90}), DefaultThresholds)
	b := Detect(result(true, 0, map[string]float64{"db": 90, "app": 90}), DefaultThresholds)
	if a.Tier != b.Tier || a.Tier != "app" {
		t.Fatalf("tie break not deterministic: %q vs %q", a.Tier, b.Tier)
	}
}

func TestDetectEmptyAndDefaults(t *testing.T) {
	v := Detect(result(true, 0, nil), Thresholds{})
	if v.Tier != "none" {
		t.Fatalf("verdict = %+v", v)
	}
}

func pts(xy ...float64) []store.SeriesPoint {
	var out []store.SeriesPoint
	for i := 0; i+1 < len(xy); i += 2 {
		out = append(out, store.SeriesPoint{X: xy[i], Y: xy[i+1], OK: true})
	}
	return out
}

func TestKnee(t *testing.T) {
	series := pts(100, 50, 200, 60, 300, 90, 400, 800, 500, 2000)
	x, ok := Knee(series, 500)
	if !ok || x != 400 {
		t.Fatalf("knee = %g, %v", x, ok)
	}
	if _, ok := Knee(series, 5000); ok {
		t.Fatalf("compliant series should have no knee")
	}
}

func TestKneeFailedTrialCounts(t *testing.T) {
	series := pts(100, 50, 200, 60)
	series = append(series, store.SeriesPoint{X: 300, OK: false})
	x, ok := Knee(series, 1e9)
	if !ok || x != 300 {
		t.Fatalf("failed trial should be the knee: %g, %v", x, ok)
	}
}

func TestKneeUnsorted(t *testing.T) {
	series := pts(400, 800, 100, 50, 300, 90, 200, 60)
	x, ok := Knee(series, 500)
	if !ok || x != 400 {
		t.Fatalf("knee on unsorted input = %g, %v", x, ok)
	}
}

func TestSaturationUsers(t *testing.T) {
	series := pts(100, 40, 200, 45, 300, 50, 400, 200, 500, 900)
	x, ok := SaturationUsers(series, 3)
	if !ok || x != 400 {
		t.Fatalf("saturation = %g, %v", x, ok)
	}
	if _, ok := SaturationUsers(nil, 3); ok {
		t.Fatalf("empty series should report not found")
	}
	// default multiple
	if x, ok := SaturationUsers(series, 0); !ok || x != 400 {
		t.Fatalf("default multiple wrong: %g %v", x, ok)
	}
}

func TestDetectPartialOutage(t *testing.T) {
	r := result(false, 0.15, map[string]float64{"app": 55})
	r.HostCPU = map[string]float64{"JONAS1": 20, "JONAS2": 85, "MYSQL1": 30, "APACHE1": 10}
	v := Detect(r, DefaultThresholds)
	if v.Tier != "outage" {
		t.Fatalf("verdict = %+v, want partial-outage diagnosis", v)
	}
	if !strings.Contains(v.Reason, "JONAS") {
		t.Fatalf("reason should name the asymmetric group: %q", v.Reason)
	}
}

func TestDetectSymmetricFailureStaysSessions(t *testing.T) {
	r := result(false, 0.15, map[string]float64{"app": 85})
	r.HostCPU = map[string]float64{"JONAS1": 84, "JONAS2": 86}
	v := Detect(r, DefaultThresholds)
	if v.Tier != "sessions" {
		t.Fatalf("symmetric failure should diagnose sessions: %+v", v)
	}
}

func TestUtilizationImbalanceEdges(t *testing.T) {
	// Single-member groups can't be imbalanced.
	if _, _, _, ok := utilizationImbalance(map[string]float64{"JONAS1": 90, "MYSQL1": 5}); ok {
		t.Fatalf("singleton groups should not report imbalance")
	}
	// Low absolute load is not an outage signal.
	if _, _, _, ok := utilizationImbalance(map[string]float64{"JONAS1": 2, "JONAS2": 9}); ok {
		t.Fatalf("idle groups should not report imbalance")
	}
	if _, _, _, ok := utilizationImbalance(nil); ok {
		t.Fatalf("empty map should not report imbalance")
	}
}
