package bottleneck_test

// External test package: bottleneck sits below core in the import graph
// (core → experiment → bottleneck), so the shared tolerance helper can
// only be used from out-of-package tests.

import (
	"testing"

	"elba/internal/bottleneck"
	"elba/internal/core"
)

func TestImprovement(t *testing.T) {
	// Table 6's headline: 1-1-1 → 1-2-1 yields ~84% improvement.
	core.AssertWithin(t, bottleneck.Improvement(1000, 157), 84.3, 0.0012,
		"Table 6 improvement for 1000 → 157 ms")
	if bottleneck.Improvement(0, 100) != 0 {
		t.Fatalf("zero base should yield 0")
	}
	if got := bottleneck.Improvement(100, 130); got >= 0 {
		t.Fatalf("regression should be negative: %g", got)
	}
}
