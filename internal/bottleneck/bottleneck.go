// Package bottleneck implements the observation-based bottleneck analysis
// the paper's scale-out strategy relies on (§V.A): "if we are able to see
// a system component bottleneck (e.g., application server in RUBiS), we
// increase the number of the bottleneck resource to alleviate the
// bottleneck". Detection works purely from observed trial results — tier
// CPU utilization, error character, and response-time trends — never from
// model assumptions.
package bottleneck

import (
	"fmt"
	"sort"
	"strings"

	"elba/internal/store"
)

// Thresholds parameterize detection.
type Thresholds struct {
	// SaturationCPU is the mean utilization (percent) above which a tier
	// is considered saturated.
	SaturationCPU float64
	// NearSaturationCPU marks a tier as the leading suspect even before
	// full saturation.
	NearSaturationCPU float64
}

// DefaultThresholds match the behaviour described in the paper's
// analysis: app and DB tiers visibly pin their CPUs at the knee.
var DefaultThresholds = Thresholds{SaturationCPU: 85, NearSaturationCPU: 70}

// Verdict is the analysis outcome for one trial.
type Verdict struct {
	// Tier is the diagnosed bottleneck tier ("web", "app", "db"), or
	// "none" when the system is unsaturated, or "sessions" when the
	// failure is connection-pool exhaustion rather than CPU.
	Tier string
	// Resource names the contended resource behind the verdict: "cpu",
	// "disk", or "net". Empty for failure verdicts (sessions, outage) and
	// for trials with no utilization observations.
	Resource string
	// Utilization is the diagnosed tier's mean utilization percent on the
	// diagnosed resource.
	Utilization float64
	// Saturated reports whether the tier crossed the saturation
	// threshold.
	Saturated bool
	// Reason is a human-readable explanation for the report.
	Reason string
}

// resourceLabel renders a resource name for verdict reasons. CPU keeps
// its historical upper-case spelling so CPU-bound reasons stay
// byte-identical to pre-multi-resource output.
func resourceLabel(res string) string {
	if res == "cpu" {
		return "CPU"
	}
	return res
}

// resourceRank breaks utilization ties deterministically: the classic
// CPU diagnosis wins over the newer resources at equal utilization.
func resourceRank(res string) int {
	switch res {
	case "cpu":
		return 0
	case "disk":
		return 1
	default:
		return 2
	}
}

// Detect diagnoses the bottleneck from one trial's observations.
func Detect(r store.Result, th Thresholds) Verdict {
	if th.SaturationCPU == 0 {
		th = DefaultThresholds
	}
	// Failures first. A failed trial with strongly asymmetric per-host
	// utilization within one replica group points at a partial outage
	// (one server refusing connections while its peers absorb the load);
	// symmetric failure points at connection-pool exhaustion.
	if !r.Completed && r.ErrorRate() > 0.02 {
		if group, lo, hi, ok := utilizationImbalance(r.HostCPU); ok {
			return Verdict{
				Tier: "outage", Saturated: true,
				Reason: fmt.Sprintf("trial failed with %.1f%% errors and asymmetric %s utilization (%.0f%% vs %.0f%%): partial server outage",
					r.ErrorRate()*100, group, lo, hi),
			}
		}
		return Verdict{
			Tier: "sessions", Saturated: true,
			Reason: fmt.Sprintf("trial failed with %.1f%% errors: connection pool exhausted", r.ErrorRate()*100),
		}
	}
	// Rank (tier, resource) candidates by utilization, deterministically.
	// CPU is always observed; disk and network utilization exist only when
	// the experiment declared demands on those resources.
	type tierUtil struct {
		tier string
		res  string
		util float64
	}
	var tiers []tierUtil
	for tier, u := range r.TierCPU {
		tiers = append(tiers, tierUtil{tier, "cpu", u})
	}
	for tier, u := range r.TierDisk {
		tiers = append(tiers, tierUtil{tier, "disk", u})
	}
	for tier, u := range r.TierNet {
		tiers = append(tiers, tierUtil{tier, "net", u})
	}
	sort.Slice(tiers, func(i, j int) bool {
		if tiers[i].util != tiers[j].util {
			return tiers[i].util > tiers[j].util
		}
		if tiers[i].tier != tiers[j].tier {
			return tiers[i].tier < tiers[j].tier
		}
		return resourceRank(tiers[i].res) < resourceRank(tiers[j].res)
	})
	if len(tiers) == 0 {
		return Verdict{Tier: "none", Reason: "no utilization observations"}
	}
	top := tiers[0]
	label := resourceLabel(top.res)
	switch {
	case top.util >= th.SaturationCPU:
		return Verdict{
			Tier: top.tier, Resource: top.res, Utilization: top.util, Saturated: true,
			Reason: fmt.Sprintf("%s tier %s at %.1f%% (saturated)", top.tier, label, top.util),
		}
	case top.util >= th.NearSaturationCPU:
		return Verdict{
			Tier: top.tier, Resource: top.res, Utilization: top.util, Saturated: false,
			Reason: fmt.Sprintf("%s tier %s at %.1f%% (approaching saturation)", top.tier, label, top.util),
		}
	default:
		return Verdict{
			Tier: "none", Resource: top.res, Utilization: top.util,
			Reason: fmt.Sprintf("highest tier %s is %s at %.1f%%; system unsaturated", label, top.tier, top.util),
		}
	}
}

// utilizationImbalance looks for a replica group (roles sharing their
// alphabetic prefix, e.g. JONAS1/JONAS2) whose least-loaded member sits
// far below its busiest — the observable signature of a server that
// stopped accepting work mid-run.
func utilizationImbalance(hostCPU map[string]float64) (group string, lo, hi float64, found bool) {
	groups := map[string][]float64{}
	for role, u := range hostCPU {
		prefix := strings.TrimRight(role, "0123456789")
		groups[prefix] = append(groups[prefix], u)
	}
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		us := groups[name]
		if len(us) < 2 {
			continue
		}
		gLo, gHi := us[0], us[0]
		for _, u := range us[1:] {
			if u < gLo {
				gLo = u
			}
			if u > gHi {
				gHi = u
			}
		}
		// A peer at under half the busiest member's load, with real load
		// present, is asymmetric enough to call an outage.
		if gHi >= 30 && gLo < gHi*0.65 {
			return name, gLo, gHi, true
		}
	}
	return "", 0, 0, false
}

// Knee finds the workload at which a response-time series crosses an SLO,
// scanning completed points in increasing-x order. It returns the first
// violating x, or the first failed trial's x when the series breaks
// before violating, and reports found=false for an always-compliant
// series.
func Knee(points []store.SeriesPoint, sloMS float64) (x float64, found bool) {
	sorted := make([]store.SeriesPoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	for _, p := range sorted {
		if !p.OK {
			return p.X, true
		}
		if p.Y > sloMS {
			return p.X, true
		}
	}
	return 0, false
}

// Improvement reports the percent response-time reduction from base to
// variant, the paper's Table 6 metric ("percentage of response time
// decrease").
func Improvement(baseRTms, variantRTms float64) float64 {
	if baseRTms <= 0 {
		return 0
	}
	return (baseRTms - variantRTms) / baseRTms * 100
}

// SaturationUsers estimates the saturation population of a series as the
// knee against a relative SLO: the point where response time exceeds
// multiple × the series' lowest observed response time. The paper reads
// saturation points off Figures 5–6 this way ("the 1-2-1 configuration
// saturates at about 500 users").
func SaturationUsers(points []store.SeriesPoint, multiple float64) (float64, bool) {
	if multiple <= 1 {
		multiple = 3
	}
	var base float64
	first := true
	for _, p := range points {
		if p.OK && (first || p.Y < base) {
			base, first = p.Y, false
		}
	}
	if first || base <= 0 {
		return 0, false
	}
	return Knee(points, base*multiple)
}
