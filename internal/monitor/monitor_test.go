package monitor

import (
	"math"
	"strings"
	"testing"

	"elba/internal/sim"
)

func busyStation(k *sim.Kernel) *sim.Station {
	s := sim.NewStation(k, sim.StationConfig{Name: "S", Servers: 1, Speed: 1, Deterministic: true})
	// Keep the station 50% busy: 1s job every 2s.
	var feed func()
	feed = func() {
		s.Submit(1.0, func(bool, float64, float64) {})
		k.Schedule(2.0, feed)
	}
	k.Schedule(0, feed)
	return s
}

func TestMonitorCPUSampling(t *testing.T) {
	k := sim.NewKernel(1)
	s := busyStation(k)
	m, err := New(k, Config{IntervalSec: 5, Metrics: []string{"cpu"}},
		[]Probe{{Host: "h1", Role: "APP1", Station: s}})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.Run(100)
	ts, ok := m.Series("h1", "cpu")
	if !ok || ts.Len() < 15 {
		t.Fatalf("cpu series missing or short: %v", ts)
	}
	mean, _ := ts.MeanIn(0, 100)
	if math.Abs(mean-50) > 5 {
		t.Fatalf("mean cpu = %.1f%%, want ≈50%%", mean)
	}
}

func TestMonitorFileFormatRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	s := busyStation(k)
	var net float64
	m, err := New(k, Config{IntervalSec: 5, Metrics: []string{"cpu", "memory", "network", "disk"}},
		[]Probe{{
			Host: "h1", Role: "MYSQL1", Station: s,
			TotalMemMB: 256, BaseMemMB: 80, MemPerJobMB: 2,
			NetBytes: func() float64 { net += 1000; return net },
			DiskOps:  func() float64 { return 42 },
		}})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.Run(30)
	text, ok := m.File("h1")
	if !ok {
		t.Fatalf("file missing")
	}
	if !strings.HasPrefix(text, "# sysstat") {
		t.Fatalf("missing sysstat header: %q", text[:40])
	}
	recs, err := ParseFile(text)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, text)
	}
	families := map[string]int{}
	for _, r := range recs {
		families[r.Family]++
		if r.Host != "h1" {
			t.Fatalf("host = %q", r.Host)
		}
	}
	for _, fam := range []string{"cpu", "mem", "net", "disk"} {
		if families[fam] == 0 {
			t.Errorf("family %s missing from output", fam)
		}
	}
	// CPU util accessor.
	for _, r := range recs {
		if r.Family == "cpu" {
			u, ok := r.CPUUtil()
			if !ok || u < 0 || u > 100 {
				t.Fatalf("cpu util = %g, %v", u, ok)
			}
			break
		}
	}
}

func TestMonitorSelectiveMetrics(t *testing.T) {
	k := sim.NewKernel(1)
	s := busyStation(k)
	m, _ := New(k, Config{IntervalSec: 5, Metrics: []string{"cpu"}},
		[]Probe{{Host: "h1", Station: s, TotalMemMB: 256}})
	m.Start()
	k.Run(20)
	if _, ok := m.Series("h1", "memory"); ok {
		t.Fatalf("memory sampled though not enabled")
	}
	text, _ := m.File("h1")
	if strings.Contains(text, " mem ") {
		t.Fatalf("memory rows in output: %s", text)
	}
}

func TestMonitorStop(t *testing.T) {
	k := sim.NewKernel(1)
	s := busyStation(k)
	m, _ := New(k, Config{IntervalSec: 5, Metrics: []string{"cpu"}},
		[]Probe{{Host: "h1", Station: s}})
	m.Start()
	k.Run(50)
	m.Stop()
	ts, _ := m.Series("h1", "cpu")
	n := ts.Len()
	k.Run(100)
	if ts.Len() > n+1 {
		t.Fatalf("sampling continued after stop: %d -> %d", n, ts.Len())
	}
}

func TestMonitorWindowedUtilization(t *testing.T) {
	// The busy-time window must start at Start, not at kernel time 0:
	// pre-Start load must not leak into the first samples.
	k := sim.NewKernel(1)
	s := sim.NewStation(k, sim.StationConfig{Name: "S", Servers: 1, Speed: 1, Deterministic: true})
	s.Submit(10, func(bool, float64, float64) {}) // busy 0..10
	k.Run(10)                                     // all pre-Start
	m, _ := New(k, Config{IntervalSec: 5, Metrics: []string{"cpu"}},
		[]Probe{{Host: "h1", Station: s}})
	m.Start()
	k.Run(30) // idle afterwards
	ts, _ := m.Series("h1", "cpu")
	mean, _ := ts.MeanIn(0, 1e9)
	if mean > 1 {
		t.Fatalf("pre-start busy time leaked into samples: %.2f%%", mean)
	}
}

func TestMonitorMemoryClamped(t *testing.T) {
	k := sim.NewKernel(1)
	s := sim.NewStation(k, sim.StationConfig{Name: "S", Servers: 1, Speed: 1, Deterministic: true})
	for i := 0; i < 1000; i++ {
		s.Submit(100, func(bool, float64, float64) {})
	}
	m, _ := New(k, Config{IntervalSec: 5, Metrics: []string{"memory"}},
		[]Probe{{Host: "h1", Station: s, TotalMemMB: 256, BaseMemMB: 100, MemPerJobMB: 4}})
	m.Start()
	k.Run(20)
	ts, _ := m.Series("h1", "memory")
	if mx, _ := ts.MaxIn(0, 1e9); mx > 256 {
		t.Fatalf("memory exceeded physical size: %g", mx)
	}
}

func TestMonitorConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := New(k, Config{IntervalSec: 0, Metrics: []string{"cpu"}}, []Probe{{Host: "h"}}); err == nil {
		t.Errorf("zero interval accepted")
	}
	if _, err := New(k, Config{IntervalSec: 5}, nil); err == nil {
		t.Errorf("no probes accepted")
	}
}

func TestMonitorCollectedBytesGrow(t *testing.T) {
	k := sim.NewKernel(1)
	s := busyStation(k)
	m, _ := New(k, Config{IntervalSec: 1, Metrics: []string{"cpu"}},
		[]Probe{{Host: "h1", Station: s}, {Host: "h2", Station: nil}})
	m.Start()
	k.Run(10)
	b1 := m.CollectedBytes()
	k.Run(20)
	if b2 := m.CollectedBytes(); b2 <= b1 {
		t.Fatalf("collected bytes did not grow: %d -> %d", b1, b2)
	}
	if got := m.Hosts(); len(got) != 2 || got[0] != "h1" {
		t.Fatalf("hosts = %v", got)
	}
}

func TestParseFileErrors(t *testing.T) {
	cases := []string{
		"xx:yy:zz h cpu all 1 2 3",
		"00:00 h cpu all 1 2 3",
		"00:00:01 h cpu",
		"00:00:01 h cpu all x y z",
		"00:00:01 h mem",
	}
	for _, c := range cases {
		if _, err := ParseFile(c); err == nil {
			t.Errorf("ParseFile(%q) should fail", c)
		}
	}
	// Comments and blanks are fine.
	recs, err := ParseFile("# header\n\n00:00:05 h cpu all 10 1 89\n")
	if err != nil || len(recs) != 1 {
		t.Fatalf("valid file rejected: %v", err)
	}
	if recs[0].TimeSec != 5 || recs[0].Device != "all" {
		t.Fatalf("record = %+v", recs[0])
	}
}
