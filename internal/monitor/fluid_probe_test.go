package monitor

import (
	"math"
	"strings"
	"testing"

	"elba/internal/sim"
)

// The fluid engine has no sim.Station or sim.Resource objects: its hosts
// expose cumulative busy-time and level functions instead. These tests
// pin the Fn-based probe path — the same sysstat rows must come out, the
// disk/net %util rows must appear exactly when a busy-time source is
// attached, and a zero-population system must sample cleanly to zeros.

// fluidKernel returns a kernel plus a clock-proportional busy counter:
// busy-time accumulating at the given utilization fraction.
func fluidBusy(k *sim.Kernel, util float64) func() float64 {
	return func() float64 { return k.Now() * util }
}

func TestMonitorFluidFnProbes(t *testing.T) {
	k := sim.NewKernel(1)
	m, err := New(k, Config{IntervalSec: 5, Metrics: []string{"cpu", "memory", "network", "disk"}},
		[]Probe{{
			Host: "fluid-app", Role: "APP1",
			TotalMemMB: 512, BaseMemMB: 100, MemPerJobMB: 2,
			CPUBusyFn:  fluidBusy(k, 0.6),
			JobsFn:     func() float64 { return 25 },
			DiskBusyFn: fluidBusy(k, 0.3),
			NetBusyFn:  fluidBusy(k, 0.1),
		}})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.Run(100)

	cpu, ok := m.Series("fluid-app", "cpu")
	if !ok || cpu.Len() < 15 {
		t.Fatalf("cpu series missing or short")
	}
	if mean, _ := cpu.MeanIn(0, 100); math.Abs(mean-60) > 1 {
		t.Fatalf("fn-probe cpu = %.1f%%, want 60%%", mean)
	}
	mem, ok := m.Series("fluid-app", "memory")
	if !ok {
		t.Fatal("memory series missing")
	}
	if mean, _ := mem.MeanIn(0, 100); math.Abs(mean-150) > 1 {
		t.Fatalf("fn-probe memory = %.1f MB, want base 100 + 25 jobs x 2 MB = 150", mean)
	}
	du, ok := m.Series("fluid-app", "disk-util")
	if !ok {
		t.Fatal("disk-util series missing despite DiskBusyFn")
	}
	if mean, _ := du.MeanIn(0, 100); math.Abs(mean-30) > 1 {
		t.Fatalf("fn-probe disk util = %.1f%%, want 30%%", mean)
	}
	nu, ok := m.Series("fluid-app", "net-util")
	if !ok {
		t.Fatal("net-util series missing despite NetBusyFn")
	}
	if mean, _ := nu.MeanIn(0, 100); math.Abs(mean-10) > 1 {
		t.Fatalf("fn-probe net util = %.1f%%, want 10%%", mean)
	}

	// The rows must be the same sysstat dialect the station path emits.
	text, _ := m.File("fluid-app")
	for _, want := range []string{" cpu all ", " mem ", " disk sda %util ", " net eth0 %util "} {
		if !strings.Contains(text, want) {
			t.Errorf("fn-probe output missing %q rows", want)
		}
	}
	recs, err := ParseFile(text)
	if err != nil {
		t.Fatalf("fn-probe output does not parse: %v", err)
	}
	families := map[string]int{}
	for _, r := range recs {
		families[r.Family]++
	}
	for _, fam := range []string{"cpu", "mem", "disk-util", "net-util"} {
		if families[fam] == 0 {
			t.Errorf("family %s missing after round trip: %v", fam, families)
		}
	}
}

// TestMonitorFluidUtilRowsGatedOnAttachment: a fluid host with no
// declared disk or network demand attaches no busy-time source, and the
// monitor must not emit %util rows for resources that do not exist —
// matching the station path, where absent sim.Resources suppress rows.
func TestMonitorFluidUtilRowsGatedOnAttachment(t *testing.T) {
	k := sim.NewKernel(1)
	m, err := New(k, Config{IntervalSec: 5, Metrics: []string{"cpu", "network", "disk"}},
		[]Probe{{
			Host: "fluid-web", Role: "HTTPD1",
			CPUBusyFn: fluidBusy(k, 0.4),
		}})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.Run(50)
	if _, ok := m.Series("fluid-web", "disk-util"); ok {
		t.Error("disk-util series exists without a DiskBusyFn attachment")
	}
	if _, ok := m.Series("fluid-web", "net-util"); ok {
		t.Error("net-util series exists without a NetBusyFn attachment")
	}
	text, _ := m.File("fluid-web")
	if strings.Contains(text, "%util") {
		t.Errorf("unattached resources emitted %%util rows:\n%s", text)
	}
	if !strings.Contains(text, " cpu all ") {
		t.Error("cpu rows missing")
	}
}

// TestMonitorFluidMultiCoreDivisor: CPUServers divides the busy window,
// as Station.Servers does on the DES path. A 2-core host accumulating
// 1.2 busy-seconds per second is 60% utilized, not pegged.
func TestMonitorFluidMultiCoreDivisor(t *testing.T) {
	k := sim.NewKernel(1)
	m, err := New(k, Config{IntervalSec: 5, Metrics: []string{"cpu"}},
		[]Probe{{
			Host: "fluid-warp", Role: "APP1",
			CPUBusyFn:  fluidBusy(k, 1.2),
			CPUServers: 2,
		}})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.Run(100)
	ts, _ := m.Series("fluid-warp", "cpu")
	if mean, _ := ts.MeanIn(0, 100); math.Abs(mean-60) > 1 {
		t.Fatalf("2-core cpu = %.1f%%, want 60%%", mean)
	}
}

// TestMonitorFluidZeroPopulation: an idle fluid system (all counters
// flat at zero jobs) must sample to exact zeros and base memory with no
// NaNs — the zero-population edge of the aggregated dynamics.
func TestMonitorFluidZeroPopulation(t *testing.T) {
	k := sim.NewKernel(1)
	m, err := New(k, Config{IntervalSec: 5, Metrics: []string{"cpu", "memory", "network", "disk"}},
		[]Probe{{
			Host: "fluid-idle", Role: "MYSQL1",
			TotalMemMB: 256, BaseMemMB: 80, MemPerJobMB: 2,
			CPUBusyFn:  func() float64 { return 0 },
			JobsFn:     func() float64 { return 0 },
			DiskBusyFn: func() float64 { return 0 },
			NetBusyFn:  func() float64 { return 0 },
		}})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.Run(60)
	for _, metric := range []string{"cpu", "disk-util", "net-util"} {
		ts, ok := m.Series("fluid-idle", metric)
		if !ok {
			t.Fatalf("%s series missing", metric)
		}
		mean, sampled := ts.MeanIn(0, 60)
		if !sampled {
			t.Fatalf("%s series empty", metric)
		}
		if mean != 0 || math.IsNaN(mean) {
			t.Errorf("idle %s = %v, want exact 0", metric, mean)
		}
	}
	mem, _ := m.Series("fluid-idle", "memory")
	if mean, _ := mem.MeanIn(0, 60); mean != 80 {
		t.Errorf("idle memory = %.1f MB, want base 80", mean)
	}
	text, _ := m.File("fluid-idle")
	if strings.Contains(text, "NaN") {
		t.Errorf("NaN leaked into sysstat output:\n%s", text)
	}
	if _, err := ParseFile(text); err != nil {
		t.Fatalf("idle output does not parse: %v", err)
	}
}
