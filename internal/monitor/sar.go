package monitor

import (
	"fmt"
	"strconv"
	"strings"
)

// Record is one parsed sysstat output line.
type Record struct {
	// TimeSec is the sample time in seconds from midnight.
	TimeSec float64
	// Host is the monitored hostname.
	Host string
	// Family is the metric family: cpu, mem, net, disk.
	Family string
	// Device is the sampled device ("all", "eth0", "sda", or "").
	Device string
	// Values holds the family's numeric columns.
	Values []float64
}

// CPUUtil returns a cpu record's total utilization percentage
// (user + sys).
func (r Record) CPUUtil() (float64, bool) {
	if r.Family != "cpu" || len(r.Values) < 3 {
		return 0, false
	}
	return r.Values[0] + r.Values[1], true
}

// ParseFile parses a host's sysstat output back into records; the
// analysis pipeline uses this to load collected files into the results
// store, the paper's "performance data collected from the participating
// hosts is put into a database for analysis".
func ParseFile(text string) ([]Record, error) {
	var out []Record
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("monitor: line %d: malformed record %q", lineNo+1, line)
		}
		t, err := parseStamp(fields[0])
		if err != nil {
			return nil, fmt.Errorf("monitor: line %d: %w", lineNo+1, err)
		}
		r := Record{TimeSec: t, Host: fields[1], Family: fields[2]}
		rest := fields[3:]
		switch r.Family {
		case "cpu", "net", "disk":
			r.Device = rest[0]
			rest = rest[1:]
			// Utilization rows carry a literal "%util" marker after the
			// device ("disk sda %util 42.00"); fold it into the family so
			// they parse distinctly from the ops/byte-rate rows.
			if len(rest) > 0 && rest[0] == "%util" {
				r.Family += "-util"
				rest = rest[1:]
			}
		}
		for _, f := range rest {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("monitor: line %d: bad value %q", lineNo+1, f)
			}
			r.Values = append(r.Values, v)
		}
		if len(r.Values) == 0 {
			return nil, fmt.Errorf("monitor: line %d: record has no values", lineNo+1)
		}
		out = append(out, r)
	}
	return out, nil
}

func parseStamp(s string) (float64, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("bad timestamp %q", s)
	}
	var hms [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return 0, fmt.Errorf("bad timestamp %q", s)
		}
		hms[i] = v
	}
	return float64(hms[0]*3600 + hms[1]*60 + hms[2]), nil
}
