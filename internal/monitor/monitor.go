// Package monitor implements the system-level monitoring layer that
// Mulini parameterizes per host (paper §II): samplers that read simulated
// host counters on a fixed interval and emit sysstat-style records. The
// collected text files are what the paper stores by the gigabyte
// (Table 3's "collected perf. data size"); the CPU-utilization series
// feed Figures 2 and 8.
package monitor

import (
	"fmt"
	"sort"
	"strings"

	"elba/internal/metrics"
	"elba/internal/sim"
)

// Probe describes one monitored host: where its CPU signal comes from and
// how its memory, network, and disk counters are derived.
type Probe struct {
	// Host is the node hostname the monitor runs on.
	Host string
	// Role is the deployment role (APP1, MYSQL2, ...).
	Role string
	// Station supplies the CPU busy-time integral and queue depth. May be
	// nil for hosts that run no modelled service (the client node).
	Station *sim.Station
	// TotalMemMB is the node's physical memory.
	TotalMemMB float64
	// BaseMemMB is the resident set of the installed software at idle.
	BaseMemMB float64
	// MemPerJobMB approximates per-in-flight-request memory.
	MemPerJobMB float64
	// NetBytes cumulatively counts bytes through the host (nil = none).
	NetBytes func() float64
	// DiskOps cumulatively counts disk operations (nil = none).
	DiskOps func() float64
}

// Config configures a monitoring session.
type Config struct {
	// IntervalSec is the sampling interval from the TBL monitor clause.
	IntervalSec float64
	// Metrics enables metric families: cpu, memory, network, disk.
	Metrics []string
}

// Monitor samples a set of probes on a simulation kernel.
type Monitor struct {
	k       *sim.Kernel
	cfg     Config
	probes  []Probe
	running bool

	lastBusy map[string]float64
	lastNet  map[string]float64
	lastDisk map[string]float64

	files  map[string]*strings.Builder
	series map[string]*metrics.TimeSeries
}

// New creates a monitor for the probes. Sampling begins at Start.
func New(k *sim.Kernel, cfg Config, probes []Probe) (*Monitor, error) {
	if cfg.IntervalSec <= 0 {
		return nil, fmt.Errorf("monitor: sampling interval must be positive")
	}
	if len(probes) == 0 {
		return nil, fmt.Errorf("monitor: no probes configured")
	}
	m := &Monitor{
		k: k, cfg: cfg, probes: probes,
		lastBusy: map[string]float64{},
		lastNet:  map[string]float64{},
		lastDisk: map[string]float64{},
		files:    map[string]*strings.Builder{},
		series:   map[string]*metrics.TimeSeries{},
	}
	for _, p := range probes {
		m.files[p.Host] = &strings.Builder{}
		fmt.Fprintf(m.files[p.Host], "# sysstat 5.0.5 host=%s role=%s interval=%gs\n",
			p.Host, p.Role, cfg.IntervalSec)
	}
	return m, nil
}

func (m *Monitor) has(metric string) bool {
	for _, x := range m.cfg.Metrics {
		if x == metric {
			return true
		}
	}
	return false
}

// Start begins periodic sampling. Sampling continues until Stop.
func (m *Monitor) Start() {
	m.running = true
	// Prime counters so the first window starts at Start, not at t=0.
	for _, p := range m.probes {
		if p.Station != nil {
			m.lastBusy[p.Host] = p.Station.BusyTime()
		}
		if p.NetBytes != nil {
			m.lastNet[p.Host] = p.NetBytes()
		}
		if p.DiskOps != nil {
			m.lastDisk[p.Host] = p.DiskOps()
		}
	}
	m.k.Schedule(m.cfg.IntervalSec, m.tick)
}

// Stop halts sampling after the current interval.
func (m *Monitor) Stop() { m.running = false }

func (m *Monitor) tick() {
	if !m.running {
		return
	}
	now := m.k.Now()
	for i := range m.probes {
		m.sample(&m.probes[i], now)
	}
	m.k.Schedule(m.cfg.IntervalSec, m.tick)
}

func (m *Monitor) sample(p *Probe, now float64) {
	f := m.files[p.Host]
	if m.has("cpu") {
		util := 0.0
		if p.Station != nil {
			busy := p.Station.BusyTime()
			delta := busy - m.lastBusy[p.Host]
			m.lastBusy[p.Host] = busy
			util = delta / (m.cfg.IntervalSec * float64(p.Station.Servers()))
			if util > 1 {
				util = 1
			}
		}
		user := util * 100 * 0.92
		sys := util * 100 * 0.08
		idle := 100 - user - sys
		fmt.Fprintf(f, "%s %s cpu all %6.2f %6.2f %6.2f\n", stamp(now), p.Host, user, sys, idle)
		m.record(p.Host, "cpu", now, util*100)
	}
	if m.has("memory") {
		used := p.BaseMemMB
		if p.Station != nil {
			used += float64(p.Station.InFlight()) * p.MemPerJobMB
		}
		if p.TotalMemMB > 0 && used > p.TotalMemMB {
			used = p.TotalMemMB
		}
		free := p.TotalMemMB - used
		fmt.Fprintf(f, "%s %s mem %8.1f %8.1f\n", stamp(now), p.Host, used, free)
		m.record(p.Host, "memory", now, used)
	}
	if m.has("network") && p.NetBytes != nil {
		cum := p.NetBytes()
		rate := (cum - m.lastNet[p.Host]) / m.cfg.IntervalSec
		m.lastNet[p.Host] = cum
		fmt.Fprintf(f, "%s %s net eth0 %12.1f\n", stamp(now), p.Host, rate)
		m.record(p.Host, "network", now, rate)
	}
	if m.has("disk") && p.DiskOps != nil {
		cum := p.DiskOps()
		rate := (cum - m.lastDisk[p.Host]) / m.cfg.IntervalSec
		m.lastDisk[p.Host] = cum
		fmt.Fprintf(f, "%s %s disk sda %10.1f\n", stamp(now), p.Host, rate)
		m.record(p.Host, "disk", now, rate)
	}
}

func (m *Monitor) record(host, metric string, t, v float64) {
	key := host + "/" + metric
	ts, ok := m.series[key]
	if !ok {
		ts = metrics.NewTimeSeries(key)
		m.series[key] = ts
	}
	ts.Append(t, v)
}

// stamp renders a simulated time as HH:MM:SS, sar style.
func stamp(t float64) string {
	s := int(t)
	return fmt.Sprintf("%02d:%02d:%02d", s/3600%24, s/60%60, s%60)
}

// Series returns the sampled time series for host/metric.
func (m *Monitor) Series(host, metric string) (*metrics.TimeSeries, bool) {
	ts, ok := m.series[host+"/"+metric]
	return ts, ok
}

// File returns the sysstat-format text collected for a host.
func (m *Monitor) File(host string) (string, bool) {
	f, ok := m.files[host]
	if !ok {
		return "", false
	}
	return f.String(), true
}

// Hosts lists monitored hosts, sorted.
func (m *Monitor) Hosts() []string {
	out := make([]string, 0, len(m.files))
	for h := range m.files {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// CollectedBytes reports the total size of collected monitor output, the
// quantity the paper's Table 3 reports per experiment set.
func (m *Monitor) CollectedBytes() int {
	n := 0
	for _, f := range m.files {
		n += f.Len()
	}
	return n
}
