// Package monitor implements the system-level monitoring layer that
// Mulini parameterizes per host (paper §II): samplers that read simulated
// host counters on a fixed interval and emit sysstat-style records. The
// collected text files are what the paper stores by the gigabyte
// (Table 3's "collected perf. data size"); the CPU-utilization series
// feed Figures 2 and 8.
package monitor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"elba/internal/metrics"
	"elba/internal/sim"
)

// Probe describes one monitored host: where its CPU signal comes from and
// how its memory, network, and disk counters are derived.
type Probe struct {
	// Host is the node hostname the monitor runs on.
	Host string
	// Role is the deployment role (APP1, MYSQL2, ...).
	Role string
	// Station supplies the CPU busy-time integral and queue depth. May be
	// nil for hosts that run no modelled service (the client node).
	Station *sim.Station
	// TotalMemMB is the node's physical memory.
	TotalMemMB float64
	// BaseMemMB is the resident set of the installed software at idle.
	BaseMemMB float64
	// MemPerJobMB approximates per-in-flight-request memory.
	MemPerJobMB float64
	// NetBytes cumulatively counts bytes through the host (nil = none).
	NetBytes func() float64
	// DiskOps cumulatively counts disk operations (nil = none).
	DiskOps func() float64
	// Disk is the host's contended disk resource, when the experiment
	// declares disk demands (nil = none). Its busy-time integral yields the
	// %util column of the disk rows.
	Disk *sim.Resource
	// NetRes is the host's contended network link, when the experiment
	// declares payload demands (nil = none).
	NetRes *sim.Resource

	// Function-based counter sources, for engines that model hosts without
	// sim stations (the fluid approximation). Each is the cumulative
	// busy-time or level equivalent of the station/resource reading above
	// and is consulted only when the corresponding object is nil.
	//
	// CPUBusyFn returns cumulative CPU busy-seconds for the host.
	CPUBusyFn func() float64
	// CPUServers is the core count dividing the CPU busy window when
	// CPUBusyFn supplies the signal (minimum 1).
	CPUServers int
	// JobsFn returns the host's current in-flight request level.
	JobsFn func() float64
	// DiskBusyFn returns cumulative disk busy-seconds.
	DiskBusyFn func() float64
	// NetBusyFn returns cumulative network-link busy-seconds.
	NetBusyFn func() float64
}

// Config configures a monitoring session.
type Config struct {
	// IntervalSec is the sampling interval from the TBL monitor clause.
	IntervalSec float64
	// Metrics enables metric families: cpu, memory, network, disk.
	Metrics []string
}

// Monitor samples a set of probes on a simulation kernel.
type Monitor struct {
	k       *sim.Kernel
	cfg     Config
	probes  []Probe
	running bool

	// state caches per-probe output targets and counter windows so a
	// sample tick does no map lookups, key concatenation, or Sprintf work.
	state []probeState
	buf   []byte // scratch line buffer reused across ticks

	files  map[string]*strings.Builder
	series map[string]*metrics.TimeSeries
}

// probeState is the resolved hot-path state for one probe: where its rows
// go, which time series receive its values, and the previous cumulative
// counter readings for windowed rates.
type probeState struct {
	file     *strings.Builder
	cpu      *metrics.TimeSeries
	mem      *metrics.TimeSeries
	net      *metrics.TimeSeries
	disk     *metrics.TimeSeries
	diskUtil *metrics.TimeSeries
	netUtil  *metrics.TimeSeries
	lastBusy float64
	lastNet  float64
	lastDisk float64
	// previous busy-time readings of the contended disk/net resources
	lastDiskBusy float64
	lastNetBusy  float64
}

// New creates a monitor for the probes. Sampling begins at Start.
func New(k *sim.Kernel, cfg Config, probes []Probe) (*Monitor, error) {
	if cfg.IntervalSec <= 0 {
		return nil, fmt.Errorf("monitor: sampling interval must be positive")
	}
	if len(probes) == 0 {
		return nil, fmt.Errorf("monitor: no probes configured")
	}
	m := &Monitor{
		k: k, cfg: cfg, probes: probes,
		files:  map[string]*strings.Builder{},
		series: map[string]*metrics.TimeSeries{},
	}
	for _, p := range probes {
		if m.files[p.Host] == nil {
			m.files[p.Host] = &strings.Builder{}
			fmt.Fprintf(m.files[p.Host], "# sysstat 5.0.5 host=%s role=%s interval=%gs\n",
				p.Host, p.Role, cfg.IntervalSec)
		}
	}
	m.state = make([]probeState, len(probes))
	for i, p := range probes {
		st := &m.state[i]
		st.file = m.files[p.Host]
		if m.has("cpu") {
			st.cpu = m.seriesFor(p.Host, "cpu")
		}
		if m.has("memory") {
			st.mem = m.seriesFor(p.Host, "memory")
		}
		if m.has("network") && p.NetBytes != nil {
			st.net = m.seriesFor(p.Host, "network")
		}
		if m.has("disk") && p.DiskOps != nil {
			st.disk = m.seriesFor(p.Host, "disk")
		}
		if m.has("disk") && (p.Disk != nil || p.DiskBusyFn != nil) {
			st.diskUtil = m.seriesFor(p.Host, "disk-util")
		}
		if m.has("network") && (p.NetRes != nil || p.NetBusyFn != nil) {
			st.netUtil = m.seriesFor(p.Host, "net-util")
		}
	}
	return m, nil
}

// seriesFor returns the time series for host/metric, creating it on first
// use. Probes sharing a host share the series, as record() always did.
func (m *Monitor) seriesFor(host, metric string) *metrics.TimeSeries {
	key := host + "/" + metric
	ts, ok := m.series[key]
	if !ok {
		ts = metrics.NewTimeSeries(key)
		m.series[key] = ts
	}
	return ts
}

func (m *Monitor) has(metric string) bool {
	for _, x := range m.cfg.Metrics {
		if x == metric {
			return true
		}
	}
	return false
}

// Start begins periodic sampling. Sampling continues until Stop.
func (m *Monitor) Start() {
	m.running = true
	// Prime counters so the first window starts at Start, not at t=0.
	for i := range m.probes {
		p, st := &m.probes[i], &m.state[i]
		if p.Station != nil {
			st.lastBusy = p.Station.BusyTime()
		} else if p.CPUBusyFn != nil {
			st.lastBusy = p.CPUBusyFn()
		}
		if p.NetBytes != nil {
			st.lastNet = p.NetBytes()
		}
		if p.DiskOps != nil {
			st.lastDisk = p.DiskOps()
		}
		if p.Disk != nil {
			st.lastDiskBusy = p.Disk.BusyTime()
		} else if p.DiskBusyFn != nil {
			st.lastDiskBusy = p.DiskBusyFn()
		}
		if p.NetRes != nil {
			st.lastNetBusy = p.NetRes.BusyTime()
		} else if p.NetBusyFn != nil {
			st.lastNetBusy = p.NetBusyFn()
		}
	}
	m.k.Schedule(m.cfg.IntervalSec, m.tick)
}

// Stop halts sampling after the current interval.
func (m *Monitor) Stop() { m.running = false }

func (m *Monitor) tick() {
	if !m.running {
		return
	}
	now := m.k.Now()
	for i := range m.probes {
		m.sample(&m.probes[i], &m.state[i], now)
	}
	m.k.Schedule(m.cfg.IntervalSec, m.tick)
}

// sample emits one sysstat row per enabled metric family. Rows are built
// in the monitor's scratch buffer and written once, so steady-state
// sampling allocates nothing beyond amortized buffer growth — collection
// volume is Table 3 scale, so this path runs millions of times per sweep.
func (m *Monitor) sample(p *Probe, st *probeState, now float64) {
	b := m.buf[:0]
	if st.cpu != nil {
		util := 0.0
		if p.Station != nil || p.CPUBusyFn != nil {
			var busy float64
			servers := 1
			if p.Station != nil {
				busy = p.Station.BusyTime()
				servers = p.Station.Servers()
			} else {
				busy = p.CPUBusyFn()
				if p.CPUServers > 1 {
					servers = p.CPUServers
				}
			}
			delta := busy - st.lastBusy
			st.lastBusy = busy
			util = delta / (m.cfg.IntervalSec * float64(servers))
			if util > 1 {
				util = 1
			}
		}
		user := util * 100 * 0.92
		sys := util * 100 * 0.08
		idle := 100 - user - sys
		b = appendStamp(b, now)
		b = append(b, ' ')
		b = append(b, p.Host...)
		b = append(b, " cpu all "...)
		b = appendFixed(b, user, 6, 2)
		b = append(b, ' ')
		b = appendFixed(b, sys, 6, 2)
		b = append(b, ' ')
		b = appendFixed(b, idle, 6, 2)
		b = append(b, '\n')
		st.cpu.Append(now, util*100)
	}
	if st.mem != nil {
		used := p.BaseMemMB
		if p.Station != nil {
			used += float64(p.Station.InFlight()) * p.MemPerJobMB
		} else if p.JobsFn != nil {
			used += p.JobsFn() * p.MemPerJobMB
		}
		if p.TotalMemMB > 0 && used > p.TotalMemMB {
			used = p.TotalMemMB
		}
		free := p.TotalMemMB - used
		b = appendStamp(b, now)
		b = append(b, ' ')
		b = append(b, p.Host...)
		b = append(b, " mem "...)
		b = appendFixed(b, used, 8, 1)
		b = append(b, ' ')
		b = appendFixed(b, free, 8, 1)
		b = append(b, '\n')
		st.mem.Append(now, used)
	}
	if st.net != nil {
		cum := p.NetBytes()
		rate := (cum - st.lastNet) / m.cfg.IntervalSec
		st.lastNet = cum
		b = appendStamp(b, now)
		b = append(b, ' ')
		b = append(b, p.Host...)
		b = append(b, " net eth0 "...)
		b = appendFixed(b, rate, 12, 1)
		b = append(b, '\n')
		st.net.Append(now, rate)
	}
	if st.disk != nil {
		cum := p.DiskOps()
		rate := (cum - st.lastDisk) / m.cfg.IntervalSec
		st.lastDisk = cum
		b = appendStamp(b, now)
		b = append(b, ' ')
		b = append(b, p.Host...)
		b = append(b, " disk sda "...)
		b = appendFixed(b, rate, 10, 1)
		b = append(b, '\n')
		st.disk.Append(now, rate)
	}
	if st.diskUtil != nil {
		busy := 0.0
		if p.Disk != nil {
			busy = p.Disk.BusyTime()
		} else {
			busy = p.DiskBusyFn()
		}
		delta := busy - st.lastDiskBusy
		st.lastDiskBusy = busy
		util := delta / m.cfg.IntervalSec
		if util > 1 {
			util = 1
		}
		b = appendStamp(b, now)
		b = append(b, ' ')
		b = append(b, p.Host...)
		b = append(b, " disk sda %util "...)
		b = appendFixed(b, util*100, 6, 2)
		b = append(b, '\n')
		st.diskUtil.Append(now, util*100)
	}
	if st.netUtil != nil {
		busy := 0.0
		if p.NetRes != nil {
			busy = p.NetRes.BusyTime()
		} else {
			busy = p.NetBusyFn()
		}
		delta := busy - st.lastNetBusy
		st.lastNetBusy = busy
		util := delta / m.cfg.IntervalSec
		if util > 1 {
			util = 1
		}
		b = appendStamp(b, now)
		b = append(b, ' ')
		b = append(b, p.Host...)
		b = append(b, " net eth0 %util "...)
		b = appendFixed(b, util*100, 6, 2)
		b = append(b, '\n')
		st.netUtil.Append(now, util*100)
	}
	if len(b) > 0 {
		st.file.Write(b)
	}
	m.buf = b
}

// appendStamp renders a simulated time as HH:MM:SS, sar style, without the
// Sprintf round trip of the old stamp() helper.
func appendStamp(b []byte, t float64) []byte {
	s := int(t)
	h, mi, se := s/3600%24, s/60%60, s%60
	return append(b,
		byte('0'+h/10), byte('0'+h%10), ':',
		byte('0'+mi/10), byte('0'+mi%10), ':',
		byte('0'+se/10), byte('0'+se%10))
}

// appendFixed renders v like fmt's %{width}.{prec}f: fixed decimals,
// left-padded with spaces to the minimum width.
func appendFixed(b []byte, v float64, width, prec int) []byte {
	const spaces = "                " // longest pad is width 12
	start := len(b)
	b = strconv.AppendFloat(b, v, 'f', prec, 64)
	if pad := width - (len(b) - start); pad > 0 {
		b = append(b, spaces[:pad]...)
		copy(b[start+pad:], b[start:len(b)-pad])
		for i := 0; i < pad; i++ {
			b[start+i] = ' '
		}
	}
	return b
}

// Series returns the sampled time series for host/metric.
func (m *Monitor) Series(host, metric string) (*metrics.TimeSeries, bool) {
	ts, ok := m.series[host+"/"+metric]
	return ts, ok
}

// File returns the sysstat-format text collected for a host.
func (m *Monitor) File(host string) (string, bool) {
	f, ok := m.files[host]
	if !ok {
		return "", false
	}
	return f.String(), true
}

// Hosts lists monitored hosts, sorted.
func (m *Monitor) Hosts() []string {
	out := make([]string, 0, len(m.files))
	for h := range m.files {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// CollectedBytes reports the total size of collected monitor output, the
// quantity the paper's Table 3 reports per experiment set.
func (m *Monitor) CollectedBytes() int {
	n := 0
	for _, f := range m.files {
		n += f.Len()
	}
	return n
}
