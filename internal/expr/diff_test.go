package expr

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// sameBits is the differential equality: bit-identical, except that all
// NaNs compare equal. NaN payloads (including the sign bit) are
// unspecified by IEEE 754 and the Go compiler may commute float
// operands, so payload identity is not a property either evaluator can
// promise; every numeric (non-NaN) result must still match exactly.
func sameBits(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// genPopulation builds the shared expression population: ~1.2k
// well-typed expressions split across the three result types, several
// seeds, and nesting depths from leaves to the parser's comfort zone.
func genPopulation(t *testing.T) []Expr {
	t.Helper()
	var pop []Expr
	for _, seed := range []int64{1, 7, 42, 20260808} {
		g := &gen{r: rand.New(rand.NewSource(seed))}
		for _, kind := range []Kind{Float, Duration, Bool} {
			for i := 0; i < 100; i++ {
				pop = append(pop, g.expr(kind, 1+i%5))
			}
		}
	}
	return pop
}

// TestVMMatchesInterpreter is the differential battery: every generated
// expression round-trips through the canonical printer, compiles, and
// must evaluate bit-identically on the bytecode VM and the reference
// tree-walking interpreter under every environment in the pool.
func TestVMMatchesInterpreter(t *testing.T) {
	envs := genEnvs()
	for _, ast := range genPopulation(t) {
		src := String(ast)
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("generated expression does not re-parse: %q: %v", src, err)
		}
		if got := String(parsed); got != src {
			t.Fatalf("printer is not a fixpoint: %q reprints as %q", src, got)
		}
		prog, err := CompileAST(parsed)
		if err != nil {
			t.Fatalf("generated expression does not compile: %q: %v", src, err)
		}
		for i := range envs {
			vm := prog.Eval(&envs[i])
			ref := evalRef(parsed, &envs[i])
			if !sameBits(vm, ref) {
				t.Fatalf("VM diverges from interpreter on %q (env %d): vm=%v (%#x) ref=%v (%#x)",
					src, i, vm, math.Float64bits(vm), ref, math.Float64bits(ref))
			}
		}
	}
}

// TestFoldPreservesSemantics pins the property fold(e) ≡ e: constant
// folding never changes a result bit, under the reference interpreter,
// for every generated expression and environment.
func TestFoldPreservesSemantics(t *testing.T) {
	envs := genEnvs()
	for _, ast := range genPopulation(t) {
		folded := Fold(ast)
		for i := range envs {
			a := evalRef(ast, &envs[i])
			b := evalRef(folded, &envs[i])
			if !sameBits(a, b) {
				t.Fatalf("fold changed semantics of %q (env %d): before=%v after=%v",
					String(ast), i, a, b)
			}
		}
	}
}

// TestWellTypedKindAgrees checks the generator and checker agree on
// every expression's type — a meta-check that the battery actually
// exercises all three types, not a degenerate subset.
func TestWellTypedKindAgrees(t *testing.T) {
	g := &gen{r: rand.New(rand.NewSource(3))}
	counts := map[Kind]int{}
	for _, kind := range []Kind{Float, Duration, Bool} {
		for i := 0; i < 150; i++ {
			ast := g.expr(kind, 1+i%5)
			got, err := Check(ast)
			if err != nil {
				t.Fatalf("generated %s expression fails check: %q: %v", kind, String(ast), err)
			}
			if got != kind {
				t.Fatalf("generated %s expression checks as %s: %q", kind, got, String(ast))
			}
			counts[got]++
		}
	}
	for _, kind := range []Kind{Float, Duration, Bool} {
		if counts[kind] == 0 {
			t.Fatalf("battery generated no %s expressions", kind)
		}
	}
}

// TestCompileDeterministic pins deterministic compilation: the same
// source always yields the same bytecode and constant pool.
func TestCompileDeterministic(t *testing.T) {
	g := &gen{r: rand.New(rand.NewSource(9))}
	for i := 0; i < 100; i++ {
		src := String(g.expr(Kind(i%3), 1+i%4))
		a, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		b, err := Compile(src)
		if err != nil {
			t.Fatalf("recompile %q: %v", src, err)
		}
		if !reflect.DeepEqual(a.code, b.code) || !reflect.DeepEqual(a.consts, b.consts) || a.kind != b.kind {
			t.Fatalf("compilation of %q is not deterministic", src)
		}
	}
}

// TestStackNeedWithinBounds evaluates deeply nested generated
// expressions to confirm the static stack bound holds at the extremes
// the generator can reach.
func TestStackNeedWithinBounds(t *testing.T) {
	g := &gen{r: rand.New(rand.NewSource(11))}
	env := genEnvs()[0]
	for i := 0; i < 50; i++ {
		ast := g.expr(Float, 8)
		prog, err := CompileAST(ast)
		if err != nil {
			t.Fatalf("compile deep expression: %v", err)
		}
		if need := prog.stackNeed(); need > maxStackSlots {
			t.Fatalf("stack need %d exceeds %d for %q", need, maxStackSlots, String(ast))
		}
		prog.Eval(&env) // must not panic
	}
}
