package expr

import "testing"

// benchSink keeps the compiler from eliding the eval loop.
var benchSink float64

// BenchmarkExprEval measures the steady-state cost of the trial hot
// path: one compiled program evaluated per measurement window. CI gates
// this benchmark at 0 allocs/op — the whole point of pre-bound slots
// and the fixed-array value stack.
func BenchmarkExprEval(b *testing.B) {
	prog, err := Compile("100 + 900*ramp(t/300s) + min(x(), 1000)*clamp(util(db, disk), 0, 1)")
	if err != nil {
		b.Fatal(err)
	}
	env := Env{T: 150, X: 412}
	env.Util[TierDB][ResDisk] = 0.82
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.T = float64(i % 300)
		benchSink = prog.Eval(&env)
	}
}

// BenchmarkExprEvalSLO is the boolean predicate shape: an SLO assert
// with short-circuit evaluation.
func BenchmarkExprEvalSLO(b *testing.B) {
	prog, err := Compile("p99(rt) < 500ms && util(db, disk) < 0.9 && x() > 50")
	if err != nil {
		b.Fatal(err)
	}
	env := Env{T: 150, X: 412, P99: 0.31}
	env.Util[TierDB][ResDisk] = 0.82
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = b2f(prog.EvalBool(&env))
	}
}

// BenchmarkExprCompile measures the compile-once cost paid per trial.
func BenchmarkExprCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := Compile("100 + 900*ramp(t/300s)")
		if err != nil {
			b.Fatal(err)
		}
		benchSink = float64(len(p.code))
	}
}

// TestEvalZeroAllocs pins the allocation-free property as a plain test
// so it fails fast in every `go test` run, not only under the CI
// benchmark gate.
func TestEvalZeroAllocs(t *testing.T) {
	prog, err := Compile("100 + 900*ramp(t/300s) + min(x(), 1000)*clamp(util(db, disk), 0, 1)")
	if err != nil {
		t.Fatal(err)
	}
	env := Env{T: 150, X: 412}
	allocs := testing.AllocsPerRun(1000, func() {
		benchSink = prog.Eval(&env)
	})
	if allocs != 0 {
		t.Fatalf("Eval allocates %v allocs/op, want 0", allocs)
	}
}
