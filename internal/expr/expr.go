// Package expr is TBL's embedded expression language: a small, typed,
// unit-aware functional core that turns static scenario specs into
// dynamic ones. A TBL clause like
//
//	users 100 + 900*ramp(t/300s);
//	slo { assert p99(rt) < 500ms && util(db, disk) < 0.9; }
//
// compiles once per trial (lex → Pratt parse → type check → constant
// fold → bytecode) and then evaluates allocation-free in the hot path:
// a fixed-size value stack, pre-bound environment slots (no map lookups,
// no interface boxing), and dedicated opcodes for every builtin.
//
// Expressions are pure functions of the observation environment (window
// statistics and the clock); they draw no randomness and compile
// deterministically, so adding an expression to a spec never perturbs
// the random streams of the trial engines, and evaluating the same
// expression over the same window state is bit-for-bit reproducible.
//
// The three value types are Float (a bare number), Duration (a number
// with an s or ms unit, carried in seconds), and Bool. Unit awareness is
// enforced by the checker: durations add and subtract with durations,
// scale by floats, and divide by durations to yield floats; comparisons
// require matching types, so `p99(rt) < 0.5` is a compile error while
// `p99(rt) < 500ms` is well-typed.
package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Pos is a 1-based source position inside an expression.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a positioned expression error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("expr: %s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Kind is a value type.
type Kind uint8

const (
	// Float is a bare number.
	Float Kind = iota
	// Duration is a number of seconds, written with an s or ms unit.
	Duration
	// Bool is a truth value, represented at runtime as 0 or 1.
	Bool
)

func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Duration:
		return "duration"
	case Bool:
		return "bool"
	}
	return "invalid"
}

// Op enumerates the unary and binary operators.
type Op uint8

const (
	OpAdd Op = iota // +
	OpSub           // -
	OpMul           // *
	OpDiv           // /
	OpLT            // <
	OpLE            // <=
	OpGT            // >
	OpGE            // >=
	OpEQ            // ==
	OpNE            // !=
	OpAnd           // &&
	OpOr            // ||
	OpNeg           // unary -
	OpNot           // unary !
)

var opText = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=", OpEQ: "==", OpNE: "!=",
	OpAnd: "&&", OpOr: "||", OpNeg: "-", OpNot: "!",
}

func (o Op) String() string { return opText[o] }

// Expr is an expression AST node.
type Expr interface {
	// Pos reports the node's source position.
	Pos() Pos
	// print renders the node into b with minimal parentheses; prec is
	// the binding power of the surrounding context.
	print(b *strings.Builder, prec int)
}

// Lit is a numeric literal, possibly carrying a duration unit. Val holds
// the canonical value (seconds for durations); Text preserves the
// literal exactly as written so rendering round-trips without float
// dust. Folded literals have empty Text and render from Val.
type Lit struct {
	At   Pos
	Val  float64
	Unit string // "", "s", or "ms"
	Text string // source text including the unit; "" for folded nodes
}

// Ident is a bare name: the clock variable `t`, or a symbolic argument
// (`rt`, tier and resource names) inside a builtin call.
type Ident struct {
	At   Pos
	Name string
}

// Unary is -x or !x.
type Unary struct {
	At Pos
	Op Op
	X  Expr
}

// Binary is a binary operation.
type Binary struct {
	At   Pos
	Op   Op
	X, Y Expr
}

// Call is a builtin invocation.
type Call struct {
	At   Pos // position of the function name
	Fn   string
	Args []Expr
}

func (e *Lit) Pos() Pos    { return e.At }
func (e *Ident) Pos() Pos  { return e.At }
func (e *Unary) Pos() Pos  { return e.At }
func (e *Binary) Pos() Pos { return e.At }
func (e *Call) Pos() Pos   { return e.At }

// Operator binding powers, loosest to tightest. The printer and the
// parser share these, which is what makes printing a fixpoint.
const (
	precOr     = 1
	precAnd    = 2
	precCmp    = 3
	precAdd    = 4
	precMul    = 5
	precUnary  = 6
	precIgnore = 0 // top-level context: never parenthesize
)

// binaryPrec reports a binary operator's binding power.
func binaryPrec(op Op) int {
	switch op {
	case OpOr:
		return precOr
	case OpAnd:
		return precAnd
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
		return precCmp
	case OpAdd, OpSub:
		return precAdd
	case OpMul, OpDiv:
		return precMul
	}
	return precUnary
}

// String renders the expression in canonical form. The rendering
// re-parses to a structurally identical AST (a property the test suite
// pins), so specs can store the canonical text and round-trip exactly.
func String(e Expr) string {
	var b strings.Builder
	e.print(&b, precIgnore)
	return b.String()
}

func (e *Lit) print(b *strings.Builder, _ int) {
	if e.Text != "" {
		b.WriteString(e.Text)
		return
	}
	// Folded literal: render the canonical value. Durations render in
	// seconds (unit multiplier 1), so the text re-parses to the same
	// float. Negative folds render through a unary minus.
	v := e.Val
	if v < 0 {
		b.WriteByte('-')
		v = -v
	}
	b.WriteString(strconv.FormatFloat(v, 'f', -1, 64))
	if e.Unit != "" {
		b.WriteByte('s')
	}
}

func (e *Ident) print(b *strings.Builder, _ int) { b.WriteString(e.Name) }

func (e *Unary) print(b *strings.Builder, prec int) {
	parens := precUnary < prec
	if parens {
		b.WriteByte('(')
	}
	b.WriteString(e.Op.String())
	e.X.print(b, precUnary)
	if parens {
		b.WriteByte(')')
	}
}

func (e *Binary) print(b *strings.Builder, prec int) {
	p := binaryPrec(e.Op)
	parens := p < prec
	if parens {
		b.WriteByte('(')
	}
	// Left-associative grammar: the left child tolerates its own
	// precedence, the right child needs strictly tighter binding.
	// Multiplicative operators print tight (900*ramp(t/300s)), looser
	// ones spaced — a style choice; either way print is a parse fixpoint.
	e.X.print(b, p)
	if p == precMul {
		b.WriteString(e.Op.String())
	} else {
		b.WriteByte(' ')
		b.WriteString(e.Op.String())
		b.WriteByte(' ')
	}
	e.Y.print(b, p+1)
	if parens {
		b.WriteByte(')')
	}
}

func (e *Call) print(b *strings.Builder, _ int) {
	b.WriteString(e.Fn)
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.print(b, precIgnore)
	}
	b.WriteByte(')')
}
