package expr

import "strconv"

// token kinds.
type tokKind uint8

const (
	tEOF tokKind = iota
	tNumber
	tIdent
	tOp     // one of the operator strings
	tLParen // (
	tRParen // )
	tComma  // ,
)

type token struct {
	kind tokKind
	text string
	pos  Pos
	off  int     // byte offset of the token's first byte in the source
	op   Op      // valid when kind == tOp
	val  float64 // valid when kind == tNumber: canonical value (seconds for durations)
	unit string  // "", "s", "ms"
}

type lexer struct {
	src       string
	pos       int
	line, col int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) at() Pos { return Pos{Line: l.line, Col: l.col} }

// advance consumes one byte, tracking line/column.
func (l *lexer) bump() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		switch c := l.src[l.pos]; c {
		case ' ', '\t', '\r', '\n':
			l.bump()
		default:
			off := l.pos
			t, err := l.scan()
			t.off = off
			return t, err
		}
	}
	return token{kind: tEOF, pos: l.at(), off: l.pos}, nil
}

func (l *lexer) scan() (token, error) {
	pos := l.at()
	c := l.src[l.pos]
	switch {
	case isDigit(c) || c == '.':
		return l.scanNumber(pos)
	case isLetter(c):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.bump()
		}
		return token{kind: tIdent, text: l.src[start:l.pos], pos: pos}, nil
	}
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "==", "!=", "&&", "||":
		l.bump()
		l.bump()
		return token{kind: tOp, text: two, pos: pos, op: twoCharOp(two)}, nil
	}
	switch c {
	case '+':
		l.bump()
		return token{kind: tOp, text: "+", pos: pos, op: OpAdd}, nil
	case '-':
		l.bump()
		return token{kind: tOp, text: "-", pos: pos, op: OpSub}, nil
	case '*':
		l.bump()
		return token{kind: tOp, text: "*", pos: pos, op: OpMul}, nil
	case '/':
		l.bump()
		return token{kind: tOp, text: "/", pos: pos, op: OpDiv}, nil
	case '<':
		l.bump()
		return token{kind: tOp, text: "<", pos: pos, op: OpLT}, nil
	case '>':
		l.bump()
		return token{kind: tOp, text: ">", pos: pos, op: OpGT}, nil
	case '!':
		l.bump()
		return token{kind: tOp, text: "!", pos: pos, op: OpNot}, nil
	case '(':
		l.bump()
		return token{kind: tLParen, text: "(", pos: pos}, nil
	case ')':
		l.bump()
		return token{kind: tRParen, text: ")", pos: pos}, nil
	case ',':
		l.bump()
		return token{kind: tComma, text: ",", pos: pos}, nil
	}
	return token{}, errAt(pos, "unexpected character %q", string(c))
}

func twoCharOp(s string) Op {
	switch s {
	case "<=":
		return OpLE
	case ">=":
		return OpGE
	case "==":
		return OpEQ
	case "!=":
		return OpNE
	case "&&":
		return OpAnd
	}
	return OpOr
}

// scanNumber lexes digits with an optional fraction and an optional s/ms
// unit suffix. Durations divide by the unit (never multiply by an
// inexact 1e-3) so 9ms is the double nearest 0.009, matching the TBL
// duration parser exactly.
func (l *lexer) scanNumber(pos Pos) (token, error) {
	start := l.pos
	dots := 0
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		if l.src[l.pos] == '.' {
			dots++
		}
		l.bump()
	}
	digits := l.src[start:l.pos]
	if dots > 1 || digits == "." {
		return token{}, errAt(pos, "malformed number %q", digits)
	}
	unitStart := l.pos
	for l.pos < len(l.src) && isLetter(l.src[l.pos]) {
		l.bump()
	}
	unit := l.src[unitStart:l.pos]
	div := 1.0
	switch unit {
	case "":
	case "s":
	case "ms":
		div = 1e3
	default:
		return token{}, errAt(pos, "number %q has unknown unit %q (want s or ms)", digits+unit, unit)
	}
	v, err := strconv.ParseFloat(digits, 64)
	if err != nil {
		return token{}, errAt(pos, "malformed number %q", digits+unit)
	}
	return token{kind: tNumber, text: digits + unit, pos: pos, val: v / div, unit: unit}, nil
}
