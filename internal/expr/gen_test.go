package expr

import (
	"math/rand"
	"strconv"
)

// gen produces random well-typed expression ASTs for the differential
// and property batteries. It is seeded, so every run of the suite tests
// the same expression population.
type gen struct {
	r *rand.Rand
}

var genTiers = []string{"web", "app", "db"}
var genResources = []string{"cpu", "disk", "net"}

// litValues is the leaf value pool. It deliberately includes 0 (divide
// by zero → IEEE Inf/NaN must match bit-for-bit across VM and
// interpreter) and values on both sides of the ramp/clamp knees.
var litValues = []float64{0, 0.25, 0.5, 0.9, 1, 2, 3.25, 10, 100, 900}

func (g *gen) lit(kind Kind) Expr {
	v := litValues[g.r.Intn(len(litValues))]
	if g.r.Intn(4) == 0 {
		v = float64(g.r.Intn(1000)) / 8 // exact in binary, round-trips
	}
	text := strconv.FormatFloat(v, 'f', -1, 64)
	if kind == Float {
		return &Lit{Val: v, Text: text}
	}
	if g.r.Intn(2) == 0 {
		return &Lit{Val: v, Unit: "s", Text: text + "s"}
	}
	// Express the same magnitude in milliseconds: value divides by 1e3
	// exactly as the lexer does.
	return &Lit{Val: v / 1e3, Unit: "ms", Text: text + "ms"}
}

func (g *gen) expr(kind Kind, depth int) Expr {
	if depth <= 0 {
		return g.leaf(kind)
	}
	switch kind {
	case Float:
		switch g.r.Intn(10) {
		case 0:
			return g.leaf(Float)
		case 1:
			return &Unary{Op: OpNeg, X: g.expr(Float, depth-1)}
		case 2, 3:
			return &Binary{Op: g.arith(), X: g.expr(Float, depth-1), Y: g.expr(Float, depth-1)}
		case 4:
			return &Binary{Op: OpDiv, X: g.expr(Duration, depth-1), Y: g.expr(Duration, depth-1)}
		case 5:
			return &Call{Fn: "ramp", Args: []Expr{g.expr(Float, depth-1)}}
		case 6:
			return &Call{Fn: "sin", Args: []Expr{g.expr(Float, depth-1)}}
		case 7:
			return &Call{Fn: g.pick("min", "max"), Args: []Expr{g.expr(Float, depth-1), g.expr(Float, depth-1)}}
		case 8:
			return &Call{Fn: "clamp", Args: []Expr{g.expr(Float, depth-1), g.expr(Float, depth-1), g.expr(Float, depth-1)}}
		default:
			return g.leaf(Float)
		}
	case Duration:
		switch g.r.Intn(8) {
		case 0:
			return g.leaf(Duration)
		case 1:
			return &Unary{Op: OpNeg, X: g.expr(Duration, depth-1)}
		case 2:
			return &Binary{Op: g.pickOp(OpAdd, OpSub), X: g.expr(Duration, depth-1), Y: g.expr(Duration, depth-1)}
		case 3:
			if g.r.Intn(2) == 0 {
				return &Binary{Op: OpMul, X: g.expr(Duration, depth-1), Y: g.expr(Float, depth-1)}
			}
			return &Binary{Op: OpMul, X: g.expr(Float, depth-1), Y: g.expr(Duration, depth-1)}
		case 4:
			return &Binary{Op: OpDiv, X: g.expr(Duration, depth-1), Y: g.expr(Float, depth-1)}
		case 5:
			return &Call{Fn: g.pick("min", "max"), Args: []Expr{g.expr(Duration, depth-1), g.expr(Duration, depth-1)}}
		case 6:
			return &Call{Fn: "clamp", Args: []Expr{g.expr(Duration, depth-1), g.expr(Duration, depth-1), g.expr(Duration, depth-1)}}
		default:
			return g.leaf(Duration)
		}
	default: // Bool
		switch g.r.Intn(6) {
		case 0:
			return &Unary{Op: OpNot, X: g.expr(Bool, depth-1)}
		case 1, 2:
			return &Binary{Op: g.pickOp(OpAnd, OpOr), X: g.expr(Bool, depth-1), Y: g.expr(Bool, depth-1)}
		default:
			k := Float
			if g.r.Intn(2) == 0 {
				k = Duration
			}
			return &Binary{Op: g.cmp(), X: g.expr(k, depth-1), Y: g.expr(k, depth-1)}
		}
	}
}

func (g *gen) leaf(kind Kind) Expr {
	switch kind {
	case Float:
		switch g.r.Intn(5) {
		case 0:
			return &Call{Fn: "x"}
		case 1:
			return &Call{Fn: "util", Args: []Expr{
				&Ident{Name: genTiers[g.r.Intn(len(genTiers))]},
				&Ident{Name: genResources[g.r.Intn(len(genResources))]},
			}}
		case 2:
			return &Call{Fn: "replicas", Args: []Expr{
				&Ident{Name: genTiers[g.r.Intn(len(genTiers))]},
			}}
		default:
			return g.lit(Float)
		}
	case Duration:
		switch g.r.Intn(4) {
		case 0:
			return &Ident{Name: "t"}
		case 1:
			return &Call{Fn: g.pick("p50", "p90", "p99"), Args: []Expr{&Ident{Name: "rt"}}}
		default:
			return g.lit(Duration)
		}
	default: // Bool has no leaves: a minimal comparison stands in
		k := Float
		if g.r.Intn(2) == 0 {
			k = Duration
		}
		return &Binary{Op: g.cmp(), X: g.leaf(k), Y: g.leaf(k)}
	}
}

func (g *gen) arith() Op {
	return []Op{OpAdd, OpSub, OpMul, OpDiv}[g.r.Intn(4)]
}

func (g *gen) cmp() Op {
	return []Op{OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE}[g.r.Intn(6)]
}

func (g *gen) pick(names ...string) string { return names[g.r.Intn(len(names))] }
func (g *gen) pickOp(ops ...Op) Op         { return ops[g.r.Intn(len(ops))] }

// genEnvs is the environment population each generated expression is
// evaluated under: a typical mid-run window, an idle window, a saturated
// window, a zero-state window, and a poisoned window (NaN quantile) to
// pin IEEE comparison semantics across both evaluators.
func genEnvs() []Env {
	sat := Env{T: 600, X: 412.7, P50: 0.31, P90: 1.9, P99: 4.25}
	for i := 0; i < NumTiers; i++ {
		for j := 0; j < NumResources; j++ {
			sat.Util[i][j] = 0.97
		}
	}
	sat.Replicas = [NumTiers]float64{4, 12, 2}
	mid := Env{T: 180.5, X: 151.25, P50: 0.012, P90: 0.09, P99: 0.41}
	mid.Util = [NumTiers][NumResources]float64{
		{0.22, 0.01, 0.08},
		{0.55, 0.12, 0.18},
		{0.38, 0.86, 0.05},
	}
	mid.Replicas = [NumTiers]float64{1, 2, 1}
	return []Env{
		mid,
		{T: 0, X: 0, P50: 0, P90: 0, P99: 0},
		sat,
		{T: 42.125, X: 1e-9, P50: 1e9, P90: 1e9, P99: 1e9},
		{T: 300, X: 77, P50: 0.02, P90: 0.2, P99: nan()},
	}
}

func nan() float64 { return 0 / zero }

var zero float64 // defeats constant folding by the Go compiler
