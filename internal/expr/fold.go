package expr

import "math"

// Fold rewrites constant subtrees of a checked expression into literal
// nodes, evaluating them with exactly the operations the VM would run
// (same helpers, same left-to-right order), so folding never changes a
// result bit. Folded trees are for the compiler only: a folded boolean
// constant is a bare 0/1 literal, so re-running Check on the output can
// reject trees whose source was well-typed.
func Fold(e Expr) Expr {
	switch n := e.(type) {
	case *Lit, *Ident:
		return e
	case *Unary:
		x := Fold(n.X)
		if lx, ok := x.(*Lit); ok {
			if n.Op == OpNeg {
				return &Lit{At: n.At, Val: -lx.Val, Unit: lx.Unit}
			}
			return &Lit{At: n.At, Val: notF(lx.Val)}
		}
		if x == n.X {
			return n
		}
		return &Unary{At: n.At, Op: n.Op, X: x}
	case *Binary:
		return foldBinary(n)
	case *Call:
		return foldCall(n)
	}
	return e
}

func foldBinary(n *Binary) Expr {
	x := Fold(n.X)
	y := Fold(n.Y)
	lx, xConst := x.(*Lit)
	ly, yConst := y.(*Lit)
	if n.Op == OpAnd || n.Op == OpOr {
		// Booleans are exactly 0 or 1 at runtime and the operands are
		// pure, so short-circuit structure folds away whenever either
		// side is constant.
		if xConst {
			if n.Op == OpAnd {
				if lx.Val == 0 {
					return &Lit{At: n.At, Val: 0}
				}
				return y
			}
			if lx.Val != 0 {
				return &Lit{At: n.At, Val: 1}
			}
			return y
		}
		if yConst {
			if n.Op == OpAnd {
				if ly.Val == 0 {
					return &Lit{At: n.At, Val: 0}
				}
				return x
			}
			if ly.Val != 0 {
				return &Lit{At: n.At, Val: 1}
			}
			return x
		}
	} else if xConst && yConst {
		a, b := lx.Val, ly.Val
		var v float64
		switch n.Op {
		case OpAdd:
			v = a + b
		case OpSub:
			v = a - b
		case OpMul:
			v = a * b
		case OpDiv:
			v = a / b
		case OpLT:
			v = b2f(a < b)
		case OpLE:
			v = b2f(a <= b)
		case OpGT:
			v = b2f(a > b)
		case OpGE:
			v = b2f(a >= b)
		case OpEQ:
			v = b2f(a == b)
		case OpNE:
			v = b2f(a != b)
		}
		return &Lit{At: n.At, Val: v, Unit: foldUnit(n.Op, lx, ly)}
	}
	if x == n.X && y == n.Y {
		return n
	}
	return &Binary{At: n.At, Op: n.Op, X: x, Y: y}
}

// foldUnit tracks duration-ness through a folded arithmetic node so the
// literal keeps the unit algebra the checker established.
func foldUnit(op Op, x, y *Lit) string {
	switch op {
	case OpAdd, OpSub:
		if x.Unit != "" {
			return "s"
		}
	case OpMul:
		if x.Unit != "" || y.Unit != "" {
			return "s"
		}
	case OpDiv:
		if x.Unit != "" && y.Unit == "" {
			return "s"
		}
	}
	return ""
}

func foldCall(n *Call) Expr {
	switch n.Fn {
	case "ramp", "sin", "min", "max", "clamp":
	default:
		// Observation builtins (x, p50/p90/p99, util) depend on the
		// window environment; their symbolic arguments must not be
		// folded (rt is not a variable).
		return n
	}
	args := make([]Expr, len(n.Args))
	allConst, changed := true, false
	for i, a := range n.Args {
		args[i] = Fold(a)
		if args[i] != a {
			changed = true
		}
		if _, ok := args[i].(*Lit); !ok {
			allConst = false
		}
	}
	if allConst {
		unit := ""
		for _, a := range args {
			if a.(*Lit).Unit != "" {
				unit = "s"
			}
		}
		switch n.Fn {
		case "ramp":
			return &Lit{At: n.At, Val: rampF(args[0].(*Lit).Val)}
		case "sin":
			return &Lit{At: n.At, Val: math.Sin(args[0].(*Lit).Val)}
		case "min":
			return &Lit{At: n.At, Val: minF(args[0].(*Lit).Val, args[1].(*Lit).Val), Unit: unit}
		case "max":
			return &Lit{At: n.At, Val: maxF(args[0].(*Lit).Val, args[1].(*Lit).Val), Unit: unit}
		case "clamp":
			return &Lit{At: n.At, Val: clampF(args[0].(*Lit).Val, args[1].(*Lit).Val, args[2].(*Lit).Val), Unit: unit}
		}
	}
	if !changed {
		return n
	}
	return &Call{At: n.At, Fn: n.Fn, Args: args}
}
