package expr

// maxDepth bounds expression nesting so adversarial inputs (fuzzed
// megabyte paren towers) fail fast instead of exhausting the goroutine
// stack in the recursive parser, checker, and compiler.
const maxDepth = 64

// Parse reads one expression and requires it to consume the whole
// source. Positions in errors are 1-based line:col within src; callers
// embedding expressions in a larger document translate them with the
// span's own start position.
func Parse(src string) (Expr, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseBinary(precOr, 0)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, errAt(p.tok.pos, "unexpected %q after expression", p.tok.text)
	}
	return e, nil
}

// ParsePrefix reads the longest expression that is a prefix of src and
// returns it together with the byte offset where the expression stopped
// (len(src) when it consumed everything). Host grammars that embed an
// expression followed by their own keywords — a policy's
// `when EXPR cooldown 60s` — parse the expression with ParsePrefix and
// resume their own parser at the returned offset. The Pratt loop stops
// naturally at the first token that cannot continue the expression, such
// as a bare keyword identifier not followed by '('.
func ParsePrefix(src string) (Expr, int, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, 0, err
	}
	e, err := p.parseBinary(precOr, 0)
	if err != nil {
		return nil, 0, err
	}
	return e, p.tok.off, nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// parseBinary is the Pratt loop: parse a unary operand, then fold in
// binary operators of at least minPrec, left-associatively.
func (p *parser) parseBinary(minPrec, depth int) (Expr, error) {
	if depth > maxDepth {
		return nil, errAt(p.tok.pos, "expression nested deeper than %d levels", maxDepth)
	}
	x, err := p.parseUnary(depth + 1)
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tOp {
		op := p.tok.op
		if op == OpNot {
			return nil, errAt(p.tok.pos, "unexpected %q", p.tok.text)
		}
		prec := binaryPrec(op)
		if prec < minPrec {
			break
		}
		opPos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseBinary(prec+1, depth+1)
		if err != nil {
			return nil, err
		}
		x = &Binary{At: opPos, Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseUnary(depth int) (Expr, error) {
	if depth > maxDepth {
		return nil, errAt(p.tok.pos, "expression nested deeper than %d levels", maxDepth)
	}
	if p.tok.kind == tOp {
		switch p.tok.op {
		case OpSub:
			pos := p.tok.pos
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary(depth + 1)
			if err != nil {
				return nil, err
			}
			return &Unary{At: pos, Op: OpNeg, X: x}, nil
		case OpNot:
			pos := p.tok.pos
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary(depth + 1)
			if err != nil {
				return nil, err
			}
			return &Unary{At: pos, Op: OpNot, X: x}, nil
		}
	}
	return p.parsePrimary(depth + 1)
}

func (p *parser) parsePrimary(depth int) (Expr, error) {
	switch p.tok.kind {
	case tNumber:
		e := &Lit{At: p.tok.pos, Val: p.tok.val, Unit: p.tok.unit, Text: p.tok.text}
		return e, p.advance()
	case tIdent:
		name, pos := p.tok.text, p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tLParen {
			return &Ident{At: pos, Name: name}, nil
		}
		if err := p.advance(); err != nil { // consume "("
			return nil, err
		}
		call := &Call{At: pos, Fn: name}
		if p.tok.kind == tRParen {
			return call, p.advance()
		}
		for {
			arg, err := p.parseBinary(precOr, depth+1)
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.tok.kind == tComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if p.tok.kind != tRParen {
			return nil, errAt(p.tok.pos, "expected ')' in call to %s, found %q", name, p.tok.text)
		}
		return call, p.advance()
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseBinary(precOr, depth+1)
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tRParen {
			return nil, errAt(p.tok.pos, "expected ')', found %q", p.tok.text)
		}
		return e, p.advance()
	case tEOF:
		return nil, errAt(p.tok.pos, "unexpected end of expression")
	}
	return nil, errAt(p.tok.pos, "unexpected %q", p.tok.text)
}
