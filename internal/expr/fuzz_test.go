package expr

import "testing"

// FuzzParseExpr throws arbitrary bytes at the full front end and checks
// the invariants that hold for *any* input: the parser never panics,
// anything it accepts re-parses from its canonical printing (print is a
// parse fixpoint), and anything that type-checks compiles and evaluates
// without panicking, bit-identical to the reference interpreter.
func FuzzParseExpr(f *testing.F) {
	seeds := []string{
		"100 + 900*ramp(t/300s)",
		"p99(rt) < 500ms && util(db, disk) < 0.9",
		"when util(app, cpu) > 0.8",
		"min(x(), 1000)*clamp(util(db, disk), 0, 1)",
		"sin(t/60s)*50 + 100",
		"!(p50(rt) > 10ms) || x() == 0",
		"1s / 250ms",
		"((((((1))))))",
		"-1.5ms",
		"1..2",
		"9999999999999999999999999999999999999999",
		"util(web,net)>util(app,net)",
		"t\n+\n1s",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ast, err := Parse(src)
		if err != nil {
			return
		}
		canon := String(ast)
		re, err := Parse(canon)
		if err != nil {
			t.Fatalf("accepted %q but canonical form %q does not re-parse: %v", src, canon, err)
		}
		if got := String(re); got != canon {
			t.Fatalf("print not a fixpoint: %q -> %q -> %q", src, canon, got)
		}
		kind, err := Check(ast)
		if err != nil {
			return
		}
		prog, err := CompileAST(ast)
		if err != nil {
			t.Fatalf("checked %q (kind %s) but compile failed: %v", canon, kind, err)
		}
		if prog.Kind() != kind {
			t.Fatalf("Check says %s, Compile says %s for %q", kind, prog.Kind(), canon)
		}
		for _, env := range genEnvs() {
			env := env
			vm := prog.Eval(&env)
			ref := evalRef(ast, &env)
			if !sameBits(vm, ref) {
				t.Fatalf("VM diverges from interpreter on fuzzed %q: vm=%v ref=%v", canon, vm, ref)
			}
			if kind == Bool && vm != 0 && vm != 1 {
				t.Fatalf("bool expression %q evaluated to %v, want 0 or 1", canon, vm)
			}
		}
	})
}
