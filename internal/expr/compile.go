package expr

import "math"

// Env is the observation environment an expression evaluates against:
// the clock plus the most recent measurement window's statistics. It is
// a flat struct of pre-bound slots — the compiler turns every variable
// and observation builtin into a direct field read, so evaluation does
// no map lookups and boxes no interfaces.
type Env struct {
	// T is the clock: protocol seconds since the run period began
	// (time-scale–invariant, like every other TBL time).
	T float64
	// X is the window's throughput in successful requests per second.
	X float64
	// P50, P90, P99 are the window's response-time quantiles in seconds.
	P50, P90, P99 float64
	// Util is the window's mean busy fraction (0–1) per tier and
	// resource, indexed by the TierWeb/ResCPU constant families.
	Util [NumTiers][NumResources]float64
	// Replicas is the current server count per tier, indexed by the
	// TierWeb constant family. Policy predicates read it to bound
	// scale decisions (replicas(app) < 12).
	Replicas [NumTiers]float64
}

// opcodes. Every builtin gets a dedicated opcode: the eval loop is a
// single switch with no function-value indirection.
type opcode uint8

const (
	opConst    opcode = iota // push consts[a]
	opT                      // push env.T
	opX                      // push env.X
	opP50                    // push env.P50
	opP90                    // push env.P90
	opP99                    // push env.P99
	opUtil                   // push env.Util[a/NumResources][a%NumResources]
	opReplicas               // push env.Replicas[a]
	opAdd
	opSub
	opMul
	opDiv
	opNeg
	opNot
	opLT
	opLE
	opGT
	opGE
	opEQ
	opNE
	opRamp
	opSin
	opMin
	opMax
	opClamp
	// opAndJump implements `a && b` short-circuit: with a on top of the
	// stack, jump to target a (keeping the false) when a is false, else
	// pop and fall through into b's code. opOrJump is the dual.
	opAndJump
	opOrJump
)

type instr struct {
	op opcode
	a  uint16
}

// maxStackSlots is the VM's fixed value-stack size. The compiler
// verifies every program's static stack need fits; maxDepth bounds the
// AST so the check cannot be reached with a deeper tree.
const maxStackSlots = maxDepth + 2

// Program is a compiled expression: bytecode, a constant pool, and the
// static metadata the host needs (result type, canonical source).
type Program struct {
	code   []instr
	consts []float64
	kind   Kind
	src    string
}

// Kind reports the program's result type.
func (p *Program) Kind() Kind { return p.kind }

// Source reports the canonical rendering of the compiled expression.
func (p *Program) Source() string { return p.src }

// Compile runs the full front end on one expression source: parse,
// type-check, constant-fold, and emit bytecode. The result evaluates
// allocation-free. Compilation is deterministic: the same source always
// produces the same program.
func Compile(src string) (*Program, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileAST(ast)
}

// CompileAST checks, folds, and compiles an already-parsed expression.
func CompileAST(ast Expr) (*Program, error) {
	kind, err := Check(ast)
	if err != nil {
		return nil, err
	}
	p := &Program{kind: kind, src: String(ast)}
	folded := Fold(ast)
	if err := p.emit(folded); err != nil {
		return nil, err
	}
	// The checker bounds nesting, so a checked expression always fits
	// the fixed eval stack; verify anyway so a compiler bug panics here,
	// at compile time, never in the trial hot path.
	if need := p.stackNeed(); need > maxStackSlots {
		return nil, errAt(ast.Pos(), "expression needs %d stack slots (max %d)", need, maxStackSlots)
	}
	return p, nil
}

func (p *Program) constIndex(v float64) (uint16, error) {
	for i, c := range p.consts {
		if math.Float64bits(c) == math.Float64bits(v) {
			return uint16(i), nil
		}
	}
	if len(p.consts) >= 1<<16 {
		return 0, errAt(Pos{1, 1}, "constant pool overflow")
	}
	p.consts = append(p.consts, v)
	return uint16(len(p.consts) - 1), nil
}

func (p *Program) emit(e Expr) error {
	switch n := e.(type) {
	case *Lit:
		i, err := p.constIndex(n.Val)
		if err != nil {
			return err
		}
		p.code = append(p.code, instr{op: opConst, a: i})
		return nil
	case *Ident:
		// The checker admits exactly one bare variable.
		p.code = append(p.code, instr{op: opT})
		return nil
	case *Unary:
		if err := p.emit(n.X); err != nil {
			return err
		}
		if n.Op == OpNeg {
			p.code = append(p.code, instr{op: opNeg})
		} else {
			p.code = append(p.code, instr{op: opNot})
		}
		return nil
	case *Binary:
		return p.emitBinary(n)
	case *Call:
		return p.emitCall(n)
	}
	return errAt(e.Pos(), "invalid expression node")
}

func (p *Program) emitBinary(n *Binary) error {
	if n.Op == OpAnd || n.Op == OpOr {
		if err := p.emit(n.X); err != nil {
			return err
		}
		jmp := len(p.code)
		op := opAndJump
		if n.Op == OpOr {
			op = opOrJump
		}
		p.code = append(p.code, instr{op: op})
		if err := p.emit(n.Y); err != nil {
			return err
		}
		if len(p.code) > 1<<16 {
			return errAt(n.At, "expression compiles to too much code")
		}
		p.code[jmp].a = uint16(len(p.code))
		return nil
	}
	if err := p.emit(n.X); err != nil {
		return err
	}
	if err := p.emit(n.Y); err != nil {
		return err
	}
	var op opcode
	switch n.Op {
	case OpAdd:
		op = opAdd
	case OpSub:
		op = opSub
	case OpMul:
		op = opMul
	case OpDiv:
		op = opDiv
	case OpLT:
		op = opLT
	case OpLE:
		op = opLE
	case OpGT:
		op = opGT
	case OpGE:
		op = opGE
	case OpEQ:
		op = opEQ
	case OpNE:
		op = opNE
	default:
		return errAt(n.At, "invalid binary operator %s", n.Op)
	}
	p.code = append(p.code, instr{op: op})
	return nil
}

func (p *Program) emitCall(n *Call) error {
	switch n.Fn {
	case "x":
		p.code = append(p.code, instr{op: opX})
		return nil
	case "p50":
		p.code = append(p.code, instr{op: opP50})
		return nil
	case "p90":
		p.code = append(p.code, instr{op: opP90})
		return nil
	case "p99":
		p.code = append(p.code, instr{op: opP99})
		return nil
	case "util":
		ti, _ := TierIndex(n.Args[0].(*Ident).Name)
		ri, _ := ResourceIndex(n.Args[1].(*Ident).Name)
		p.code = append(p.code, instr{op: opUtil, a: uint16(ti*NumResources + ri)})
		return nil
	case "replicas":
		ti, _ := TierIndex(n.Args[0].(*Ident).Name)
		p.code = append(p.code, instr{op: opReplicas, a: uint16(ti)})
		return nil
	}
	for _, a := range n.Args {
		if err := p.emit(a); err != nil {
			return err
		}
	}
	switch n.Fn {
	case "ramp":
		p.code = append(p.code, instr{op: opRamp})
	case "sin":
		p.code = append(p.code, instr{op: opSin})
	case "min":
		p.code = append(p.code, instr{op: opMin})
	case "max":
		p.code = append(p.code, instr{op: opMax})
	case "clamp":
		p.code = append(p.code, instr{op: opClamp})
	default:
		return errAt(n.At, "unknown function %q", n.Fn)
	}
	return nil
}

// stackNeed simulates the bytecode's stack height and returns the peak.
func (p *Program) stackNeed() int {
	depth, peak := 0, 0
	for _, in := range p.code {
		switch in.op {
		case opConst, opT, opX, opP50, opP90, opP99, opUtil, opReplicas:
			depth++
		case opAdd, opSub, opMul, opDiv, opLT, opLE, opGT, opGE, opEQ, opNE, opMin, opMax:
			depth--
		case opClamp:
			depth -= 2
		case opAndJump, opOrJump:
			// Worst case keeps the operand (jump taken); fall-through
			// pops it before the right side pushes, so the peak is the
			// same either way.
			depth--
		}
		if depth > peak {
			peak = depth
		}
	}
	return peak
}

// Shared evaluation semantics. The bytecode VM and the reference
// tree-walking interpreter (test code) both call these helpers, so a
// differential mismatch can only come from structural compiler bugs —
// exactly what the differential battery is for — never from two
// hand-copied implementations of the same builtin drifting apart.

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// rampF clamps to [0, 1]: 0 before the window, linear inside, 1 after.
func rampF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func minF(a, b float64) float64 { return math.Min(a, b) }
func maxF(a, b float64) float64 { return math.Max(a, b) }

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func notF(x float64) float64 {
	if x == 0 {
		return 1
	}
	return 0
}

// Eval runs the program against env and returns the raw value: seconds
// for durations, 0/1 for booleans. The value stack is a fixed-size
// array on the goroutine stack, so evaluation performs zero heap
// allocations — the property BenchmarkExprEval pins.
func (p *Program) Eval(env *Env) float64 {
	var stack [maxStackSlots]float64
	sp := 0
	code := p.code
	for pc := 0; pc < len(code); pc++ {
		in := code[pc]
		switch in.op {
		case opConst:
			stack[sp] = p.consts[in.a]
			sp++
		case opT:
			stack[sp] = env.T
			sp++
		case opX:
			stack[sp] = env.X
			sp++
		case opP50:
			stack[sp] = env.P50
			sp++
		case opP90:
			stack[sp] = env.P90
			sp++
		case opP99:
			stack[sp] = env.P99
			sp++
		case opUtil:
			stack[sp] = env.Util[in.a/NumResources][in.a%NumResources]
			sp++
		case opReplicas:
			stack[sp] = env.Replicas[in.a]
			sp++
		case opAdd:
			sp--
			stack[sp-1] += stack[sp]
		case opSub:
			sp--
			stack[sp-1] -= stack[sp]
		case opMul:
			sp--
			stack[sp-1] *= stack[sp]
		case opDiv:
			sp--
			stack[sp-1] /= stack[sp]
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opNot:
			stack[sp-1] = notF(stack[sp-1])
		case opLT:
			sp--
			stack[sp-1] = b2f(stack[sp-1] < stack[sp])
		case opLE:
			sp--
			stack[sp-1] = b2f(stack[sp-1] <= stack[sp])
		case opGT:
			sp--
			stack[sp-1] = b2f(stack[sp-1] > stack[sp])
		case opGE:
			sp--
			stack[sp-1] = b2f(stack[sp-1] >= stack[sp])
		case opEQ:
			sp--
			stack[sp-1] = b2f(stack[sp-1] == stack[sp])
		case opNE:
			sp--
			stack[sp-1] = b2f(stack[sp-1] != stack[sp])
		case opRamp:
			stack[sp-1] = rampF(stack[sp-1])
		case opSin:
			stack[sp-1] = math.Sin(stack[sp-1])
		case opMin:
			sp--
			stack[sp-1] = minF(stack[sp-1], stack[sp])
		case opMax:
			sp--
			stack[sp-1] = maxF(stack[sp-1], stack[sp])
		case opClamp:
			sp -= 2
			stack[sp-1] = clampF(stack[sp-1], stack[sp], stack[sp+1])
		case opAndJump:
			if stack[sp-1] == 0 {
				pc = int(in.a) - 1
			} else {
				sp--
			}
		case opOrJump:
			if stack[sp-1] != 0 {
				pc = int(in.a) - 1
			} else {
				sp--
			}
		}
	}
	return stack[0]
}

// EvalBool evaluates a Bool-typed program as a truth value.
func (p *Program) EvalBool(env *Env) bool { return p.Eval(env) != 0 }
