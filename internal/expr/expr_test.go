package expr

import (
	"math"
	"strings"
	"testing"
)

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return p
}

func TestEvalBasics(t *testing.T) {
	env := &Env{T: 150, X: 200, P50: 0.010, P90: 0.080, P99: 0.450}
	env.Util[TierDB][ResDisk] = 0.85
	env.Util[TierApp][ResCPU] = 0.40

	cases := []struct {
		src  string
		want float64
		kind Kind
	}{
		{"1 + 2*3", 7, Float},
		{"(1 + 2) * 3", 9, Float},
		{"100 + 900*ramp(t/300s)", 550, Float},
		{"2s + 500ms", 2.5, Duration},
		{"1s / 250ms", 4, Float},
		{"-3 + 1", -2, Float},
		{"min(3, 7)", 3, Float},
		{"max(3, 7)", 7, Float},
		{"clamp(12, 0, 10)", 10, Float},
		{"clamp(-2, 0, 10)", 0, Float},
		{"sin(0)", 0, Float},
		{"ramp(2)", 1, Float},
		{"ramp(-1)", 0, Float},
		{"x()", 200, Float},
		{"p99(rt)", 0.450, Duration},
		{"p50(rt) * 2", 0.020, Duration},
		{"util(db, disk)", 0.85, Float},
		{"util(web, cpu)", 0, Float},
		{"t", 150, Duration},
		{"p99(rt) < 500ms", 1, Bool},
		{"p99(rt) < 400ms", 0, Bool},
		{"util(db, disk) < 0.9 && util(app, cpu) < 0.5", 1, Bool},
		{"util(db, disk) > 0.9 || util(app, cpu) < 0.5", 1, Bool},
		{"!(x() > 100)", 0, Bool},
		{"t >= 150s && t <= 150s", 1, Bool},
		{"x() != 200", 0, Bool},
		{"p90(rt) == 80ms", 1, Bool},
	}
	for _, c := range cases {
		p := mustCompile(t, c.src)
		if p.Kind() != c.kind {
			t.Errorf("Compile(%q).Kind() = %s, want %s", c.src, p.Kind(), c.kind)
		}
		if got := p.Eval(env); got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// 1/0 inside the unevaluated arm must not poison the result: the
	// VM's jump opcodes skip the right side entirely.
	env := &Env{}
	if got := mustCompile(t, "1 < 2 || 1/0 > 0").Eval(env); got != 1 {
		t.Fatalf("|| did not short-circuit: got %v", got)
	}
	if got := mustCompile(t, "2 < 1 && 1/0 > 0").Eval(env); got != 0 {
		t.Fatalf("&& did not short-circuit: got %v", got)
	}
}

func TestDurationLiteralsMatchTBLRounding(t *testing.T) {
	// 9ms must be the correctly-rounded double nearest 0.009 — computed
	// by division, never by multiplying with an inexact 1e-3.
	p := mustCompile(t, "9ms")
	if got, want := p.Eval(&Env{}), 9.0/1e3; math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("9ms = %#x, want %#x", math.Float64bits(got), math.Float64bits(want))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantPos string // "line:col" prefix the error must carry
		wantSub string
	}{
		{"", "1:1", "unexpected end"},
		{"1 +", "1:4", "unexpected end"},
		{"(1 + 2", "1:7", "expected ')'"},
		{"1 ? 2", "1:3", "unexpected character"},
		{"min(1, 2", "1:9", "expected ')'"},
		{"1 2", "1:3", "after expression"},
		{"1..5", "1:1", "malformed number"},
		{"5kg", "1:1", "unknown unit"},
		{"&& 1", "1:1", "unexpected"},
		{"! < 2", "1:3", "unexpected"},
		{"\n  1 +", "2:6", "unexpected end"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c.src)
			continue
		}
		msg := err.Error()
		if !strings.HasPrefix(msg, "expr: "+c.wantPos+":") {
			t.Errorf("Parse(%q) error %q, want position %s", c.src, msg, c.wantPos)
		}
		if !strings.Contains(msg, c.wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, msg, c.wantSub)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantPos string
		wantSub string
	}{
		{"p99(rt) < 0.5", "1:9", "matching"},
		{"t + 1", "1:3", "matching"},
		{"foo", "1:1", "unknown variable"},
		{"foo()", "1:1", "unknown function"},
		{"ramp(t)", "1:6", "divide durations"},
		{"util(cache, cpu)", "1:6", "unknown tier"},
		{"util(db, ram)", "1:10", "unknown resource"},
		{"p99(latency)", "1:5", "p99(rt)"},
		{"x(1)", "1:1", "no arguments"},
		{"min(1s, 2)", "1:1", "matching"},
		{"!t", "1:1", "needs a bool"},
		{"-(1 < 2)", "1:1", "needs a float or duration"},
		{"(1 < 2) + 1", "1:9", "matching"},
		{"1 && 2", "1:3", "bool operands"},
		{"clamp(1, 2s, 3)", "1:1", "matching"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error", c.src)
			continue
		}
		msg := err.Error()
		if !strings.HasPrefix(msg, "expr: "+c.wantPos+":") {
			t.Errorf("Compile(%q) error %q, want position %s", c.src, msg, c.wantPos)
		}
		if !strings.Contains(msg, c.wantSub) {
			t.Errorf("Compile(%q) error %q, want substring %q", c.src, msg, c.wantSub)
		}
	}
}

func TestDepthLimit(t *testing.T) {
	deep := strings.Repeat("(", 200) + "1" + strings.Repeat(")", 200)
	if _, err := Parse(deep); err == nil || !strings.Contains(err.Error(), "nested deeper") {
		t.Fatalf("deep nesting not rejected: %v", err)
	}
	// Just inside the limit still parses (each paren layer costs a few
	// recursion levels: binary → unary → primary).
	ok := strings.Repeat("(", 15) + "1" + strings.Repeat(")", 15)
	if _, err := Parse(ok); err != nil {
		t.Fatalf("moderate nesting rejected: %v", err)
	}
}

func TestCanonicalPrinting(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1+2*3", "1 + 2*3"},
		{"(1+2)*3", "(1 + 2)*3"},
		{"1 - (2 - 3)", "1 - (2 - 3)"},
		{"1 - 2 - 3", "1 - 2 - 3"},
		{"-(1+2)", "-(1 + 2)"},
		{"--1", "--1"},
		{"!(1 < 2)", "!(1 < 2)"},
		{"(((x())))", "x()"},
		{"min( 1 , 2 )", "min(1, 2)"},
		{"1<2 && 3<4 || 5<6", "1 < 2 && 3 < 4 || 5 < 6"},
		{"1<2 && (3<4 || 5<6)", "1 < 2 && (3 < 4 || 5 < 6)"},
		{"100+900*ramp(t/300s)", "100 + 900*ramp(t/300s)"},
		{"500ms", "500ms"},
		{"0.5s", "0.5s"},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		got := String(e)
		if got != c.want {
			t.Errorf("String(Parse(%q)) = %q, want %q", c.src, got, c.want)
		}
		// The canonical form is a fixpoint.
		e2, err := Parse(got)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", got, err)
		}
		if got2 := String(e2); got2 != got {
			t.Errorf("canonical form not a fixpoint: %q -> %q", got, got2)
		}
	}
}

func TestFoldProducesConstants(t *testing.T) {
	// Fully constant expressions compile to a single constant load.
	for _, src := range []string{"1 + 2*3", "ramp(0.5) * 100", "min(1s, 2s) / 500ms", "1 < 2 && 3 < 4"} {
		p := mustCompile(t, src)
		if len(p.code) != 1 || p.code[0].op != opConst {
			t.Errorf("Compile(%q) emitted %d instrs, want single constant", src, len(p.code))
		}
	}
	// Folding a constant left arm erases the short-circuit entirely.
	p := mustCompile(t, "1 < 2 && x() > 0")
	for _, in := range p.code {
		if in.op == opAndJump {
			t.Errorf("constant && arm not folded away")
		}
	}
}

func TestSourceIsCanonical(t *testing.T) {
	p := mustCompile(t, "  100+900 * ramp( t / 300s )")
	if got, want := p.Source(), "100 + 900*ramp(t/300s)"; got != want {
		t.Fatalf("Source() = %q, want %q", got, want)
	}
}
