package expr

import "math"

// evalRef is the reference tree-walking interpreter the differential
// battery runs against the bytecode VM. It lives in test code only and
// deliberately shares the semantic helpers (b2f, rampF, clampF, minF,
// maxF, notF) with the VM: the two implementations differ in *structure*
// (recursive walk vs. flat bytecode loop), which is exactly the axis the
// differential tests probe, while the leaf arithmetic is common so a
// mismatch always means a compiler or VM bug.
func evalRef(e Expr, env *Env) float64 {
	switch n := e.(type) {
	case *Lit:
		return n.Val
	case *Ident:
		// The checker admits exactly one bare variable: the clock.
		return env.T
	case *Unary:
		x := evalRef(n.X, env)
		if n.Op == OpNeg {
			return -x
		}
		return notF(x)
	case *Binary:
		switch n.Op {
		case OpAnd:
			x := evalRef(n.X, env)
			if x == 0 {
				return x
			}
			return evalRef(n.Y, env)
		case OpOr:
			x := evalRef(n.X, env)
			if x != 0 {
				return x
			}
			return evalRef(n.Y, env)
		}
		x := evalRef(n.X, env)
		y := evalRef(n.Y, env)
		switch n.Op {
		case OpAdd:
			return x + y
		case OpSub:
			return x - y
		case OpMul:
			return x * y
		case OpDiv:
			return x / y
		case OpLT:
			return b2f(x < y)
		case OpLE:
			return b2f(x <= y)
		case OpGT:
			return b2f(x > y)
		case OpGE:
			return b2f(x >= y)
		case OpEQ:
			return b2f(x == y)
		case OpNE:
			return b2f(x != y)
		}
		panic("evalRef: invalid binary op")
	case *Call:
		switch n.Fn {
		case "x":
			return env.X
		case "p50":
			return env.P50
		case "p90":
			return env.P90
		case "p99":
			return env.P99
		case "util":
			ti, _ := TierIndex(n.Args[0].(*Ident).Name)
			ri, _ := ResourceIndex(n.Args[1].(*Ident).Name)
			return env.Util[ti][ri]
		case "replicas":
			ti, _ := TierIndex(n.Args[0].(*Ident).Name)
			return env.Replicas[ti]
		case "ramp":
			return rampF(evalRef(n.Args[0], env))
		case "sin":
			return math.Sin(evalRef(n.Args[0], env))
		case "min":
			return minF(evalRef(n.Args[0], env), evalRef(n.Args[1], env))
		case "max":
			return maxF(evalRef(n.Args[0], env), evalRef(n.Args[1], env))
		case "clamp":
			return clampF(evalRef(n.Args[0], env), evalRef(n.Args[1], env), evalRef(n.Args[2], env))
		}
		panic("evalRef: unknown function " + n.Fn)
	}
	panic("evalRef: invalid node")
}
