package expr

// Check type-checks an expression and returns its result type. The
// checker is what makes the language unit-aware: durations and floats
// are distinct, comparisons need matching operand types, and the
// boolean connectives need booleans. A checked expression is guaranteed
// to compile, and a compiled program is guaranteed not to over- or
// underflow the VM's value stack (the compiler verifies the static
// stack depth a second time).
func Check(e Expr) (Kind, error) {
	return checkExpr(e, 0)
}

func checkExpr(e Expr, depth int) (Kind, error) {
	if depth > maxDepth {
		return 0, errAt(e.Pos(), "expression nested deeper than %d levels", maxDepth)
	}
	switch n := e.(type) {
	case *Lit:
		if n.Unit != "" {
			return Duration, nil
		}
		return Float, nil
	case *Ident:
		if n.Name == "t" {
			return Duration, nil
		}
		return 0, errAt(n.At, "unknown variable %q (the clock is t; observations are builtins like x() and util(db, cpu))", n.Name)
	case *Unary:
		k, err := checkExpr(n.X, depth+1)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case OpNeg:
			if k == Bool {
				return 0, errAt(n.At, "operator - needs a float or duration, got bool")
			}
			return k, nil
		case OpNot:
			if k != Bool {
				return 0, errAt(n.At, "operator ! needs a bool, got %s", k)
			}
			return Bool, nil
		}
		return 0, errAt(n.At, "invalid unary operator %s", n.Op)
	case *Binary:
		return checkBinary(n, depth)
	case *Call:
		return checkCall(n, depth)
	}
	return 0, errAt(e.Pos(), "invalid expression node")
}

func checkBinary(n *Binary, depth int) (Kind, error) {
	xk, err := checkExpr(n.X, depth+1)
	if err != nil {
		return 0, err
	}
	yk, err := checkExpr(n.Y, depth+1)
	if err != nil {
		return 0, err
	}
	switch n.Op {
	case OpAdd, OpSub:
		if xk == Float && yk == Float {
			return Float, nil
		}
		if xk == Duration && yk == Duration {
			return Duration, nil
		}
		return 0, errAt(n.At, "operator %s needs matching float or duration operands, got %s and %s", n.Op, xk, yk)
	case OpMul:
		switch {
		case xk == Float && yk == Float:
			return Float, nil
		case xk == Duration && yk == Float, xk == Float && yk == Duration:
			return Duration, nil
		}
		return 0, errAt(n.At, "operator * cannot combine %s and %s", xk, yk)
	case OpDiv:
		switch {
		case xk == Float && yk == Float:
			return Float, nil
		case xk == Duration && yk == Float:
			return Duration, nil
		case xk == Duration && yk == Duration:
			return Float, nil
		}
		return 0, errAt(n.At, "operator / cannot combine %s and %s", xk, yk)
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
		if xk == yk && xk != Bool {
			return Bool, nil
		}
		return 0, errAt(n.At, "comparison %s needs matching float or duration operands, got %s and %s", n.Op, xk, yk)
	case OpAnd, OpOr:
		if xk == Bool && yk == Bool {
			return Bool, nil
		}
		return 0, errAt(n.At, "operator %s needs bool operands, got %s and %s", n.Op, xk, yk)
	}
	return 0, errAt(n.At, "invalid binary operator %s", n.Op)
}

// Tier and resource indices for the util(tier, resource) observation.
// They mirror the simulator's (tier, resource) contention matrix.
const (
	TierWeb = 0
	TierApp = 1
	TierDB  = 2
	// NumTiers dimensions Env.Util.
	NumTiers = 3

	ResCPU  = 0
	ResDisk = 1
	ResNet  = 2
	// NumResources dimensions Env.Util.
	NumResources = 3
)

// TierIndex resolves a tier name; ok is false for unknown names.
func TierIndex(name string) (int, bool) {
	switch name {
	case "web":
		return TierWeb, true
	case "app":
		return TierApp, true
	case "db":
		return TierDB, true
	}
	return 0, false
}

// ResourceIndex resolves a resource name; ok is false for unknown names.
func ResourceIndex(name string) (int, bool) {
	switch name {
	case "cpu":
		return ResCPU, true
	case "disk":
		return ResDisk, true
	case "net":
		return ResNet, true
	}
	return 0, false
}

// checkCall validates a builtin invocation. Three builtins take symbolic
// arguments — bare identifiers naming an observation slot, not values —
// which the checker resolves here so the compiler can bind them to
// fixed environment slots.
func checkCall(n *Call, depth int) (Kind, error) {
	switch n.Fn {
	case "x":
		if len(n.Args) != 0 {
			return 0, errAt(n.At, "x() takes no arguments")
		}
		return Float, nil
	case "p50", "p90", "p99":
		if len(n.Args) != 1 {
			return 0, errAt(n.At, "%s takes exactly one argument: rt", n.Fn)
		}
		id, ok := n.Args[0].(*Ident)
		if !ok || id.Name != "rt" {
			return 0, errAt(n.Args[0].Pos(), "%s observes the response-time distribution; write %s(rt)", n.Fn, n.Fn)
		}
		return Duration, nil
	case "util":
		if len(n.Args) != 2 {
			return 0, errAt(n.At, "util takes exactly two arguments: util(tier, resource)")
		}
		tid, ok := n.Args[0].(*Ident)
		if !ok {
			return 0, errAt(n.Args[0].Pos(), "util's first argument names a tier: web, app, or db")
		}
		if _, ok := TierIndex(tid.Name); !ok {
			return 0, errAt(tid.At, "unknown tier %q (want web, app, or db)", tid.Name)
		}
		rid, ok := n.Args[1].(*Ident)
		if !ok {
			return 0, errAt(n.Args[1].Pos(), "util's second argument names a resource: cpu, disk, or net")
		}
		if _, ok := ResourceIndex(rid.Name); !ok {
			return 0, errAt(rid.At, "unknown resource %q (want cpu, disk, or net)", rid.Name)
		}
		return Float, nil
	case "replicas":
		if len(n.Args) != 1 {
			return 0, errAt(n.At, "replicas takes exactly one argument: replicas(tier)")
		}
		tid, ok := n.Args[0].(*Ident)
		if !ok {
			return 0, errAt(n.Args[0].Pos(), "replicas' argument names a tier: web, app, or db")
		}
		if _, ok := TierIndex(tid.Name); !ok {
			return 0, errAt(tid.At, "unknown tier %q (want web, app, or db)", tid.Name)
		}
		return Float, nil
	case "ramp", "sin":
		if len(n.Args) != 1 {
			return 0, errAt(n.At, "%s takes exactly one float argument", n.Fn)
		}
		k, err := checkExpr(n.Args[0], depth+1)
		if err != nil {
			return 0, err
		}
		if k != Float {
			return 0, errAt(n.Args[0].Pos(), "%s needs a float argument, got %s (divide durations to make them unitless: t/300s)", n.Fn, k)
		}
		return Float, nil
	case "min", "max":
		if len(n.Args) != 2 {
			return 0, errAt(n.At, "%s takes exactly two arguments", n.Fn)
		}
		xk, err := checkExpr(n.Args[0], depth+1)
		if err != nil {
			return 0, err
		}
		yk, err := checkExpr(n.Args[1], depth+1)
		if err != nil {
			return 0, err
		}
		if xk != yk || xk == Bool {
			return 0, errAt(n.At, "%s needs matching float or duration arguments, got %s and %s", n.Fn, xk, yk)
		}
		return xk, nil
	case "clamp":
		if len(n.Args) != 3 {
			return 0, errAt(n.At, "clamp takes exactly three arguments: clamp(x, lo, hi)")
		}
		var kinds [3]Kind
		for i, a := range n.Args {
			k, err := checkExpr(a, depth+1)
			if err != nil {
				return 0, err
			}
			kinds[i] = k
		}
		if kinds[0] == Bool || kinds[0] != kinds[1] || kinds[1] != kinds[2] {
			return 0, errAt(n.At, "clamp needs three matching float or duration arguments, got %s, %s, %s",
				kinds[0], kinds[1], kinds[2])
		}
		return kinds[0], nil
	}
	return 0, errAt(n.At, "unknown function %q", n.Fn)
}
