package campaign

import (
	"encoding/json"
	"strings"
	"testing"

	"elba/internal/report"
	"elba/internal/store"
)

// streamSpecs is the 3-spec matrix the replay tests run: distinct
// experiments, topologies, and grid shapes.
var streamSpecs = []string{
	`experiment "stream-a" {
		benchmark rubis; platform emulab; appserver jonas;
		topology { web 1; app 2; db 1; }
		workload { users 100 to 500 step 100; writeratio 15; }
	}`,
	`experiment "stream-b" {
		benchmark rubbos; platform emulab; appserver tomcat;
		topology { web 1; app 1; db 1; }
		workload { users 200 to 600 step 200; writeratio 10; }
	}`,
	`experiment "stream-c" {
		benchmark rubis; platform emulab; appserver jonas;
		topology { web 1; app 4; db 2; }
		workload { users 100 to 400 step 100; writeratio 5 to 25 step 20; }
	}`,
}

// TestStreamEventFlow subscribes before a streaming campaign runs and
// checks the full event narrative: one trial event per trial with
// monotonic Seq and running quantiles, then exactly one terminal status
// event, then channel close.
func TestStreamEventFlow(t *testing.T) {
	svc := NewService(Config{Stream: true, Options: fastOptions()})
	defer svc.Close()
	c, err := svc.Submit(sweepA)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Streaming() {
		t.Fatal("campaign not armed for streaming at submit time")
	}
	ch, cancel := c.Subscribe(256)
	defer cancel()

	var trials, statuses int
	lastSeq := 0
	var lastDone int
	for ev := range ch {
		if ev.Seq <= lastSeq {
			t.Fatalf("Seq not strictly ascending: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case "trial":
			trials++
			if ev.Key == nil || ev.Total != 5 {
				t.Fatalf("malformed trial event: %+v", ev)
			}
			if ev.Done <= lastDone {
				t.Fatalf("Done not advancing: %d after %d", ev.Done, lastDone)
			}
			lastDone = ev.Done
			if ev.P50ms <= 0 || ev.P90ms < ev.P50ms || ev.P99ms < ev.P90ms {
				t.Fatalf("running quantiles implausible: %+v", ev)
			}
		case "status":
			statuses++
			if ev.Status != StatusDone {
				t.Fatalf("terminal status %s, want done", ev.Status)
			}
		}
	}
	if trials != 5 || statuses != 1 {
		t.Fatalf("saw %d trial events and %d status events, want 5 and 1", trials, statuses)
	}
	if st := c.Wait(); st != StatusDone {
		t.Fatalf("campaign finished %s", st)
	}
	if tables := c.StreamTables(); !strings.Contains(tables, "stream-") &&
		!strings.Contains(tables, "overlap") {
		t.Fatalf("StreamTables missing the experiment:\n%s", tables)
	}
}

// TestStreamingChangesOnlyTheSketch pins the compatibility contract:
// with streaming on, every stored result gains an RT sketch and changes
// in NO other way — nil out the sketch and the bytes are identical to a
// plain non-streaming run.
func TestStreamingChangesOnlyTheSketch(t *testing.T) {
	want := directStore(t, sweepA)

	svc := NewService(Config{Stream: true, Options: fastOptions()})
	defer svc.Close()
	c, err := svc.Submit(sweepA)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Wait(); st != StatusDone {
		t.Fatalf("campaign finished %s", st)
	}
	results, err := c.Results()
	if err != nil {
		t.Fatal(err)
	}
	stripped := store.New()
	for _, r := range results.All() {
		if r.RTSketch == nil {
			t.Fatalf("streamed result %v has no sketch", r.Key)
		}
		if r.RTSketch.Count() == 0 {
			t.Fatalf("streamed result %v has an empty sketch", r.Key)
		}
		r.RTSketch = nil
		stripped.Put(r)
	}
	got, err := stripped.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("streaming changed stored fields beyond rt_sketch")
	}
}

// TestStreamReplayReproducesLiveFold is the record-of-record property
// on a 3-spec matrix at several worker counts: replaying a campaign's
// result log through a fresh Folder reproduces the live folded tables
// byte-for-byte, because the log's record order IS the fold order.
func TestStreamReplayReproducesLiveFold(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		dir := t.TempDir()
		svc := NewService(Config{
			Workers:      workers,
			ResultLogDir: dir, // implies streaming
			Options:      fastOptions(),
		})
		var cs []*Campaign
		for _, src := range streamSpecs {
			c, err := svc.Submit(src)
			if err != nil {
				t.Fatal(err)
			}
			cs = append(cs, c)
		}
		for _, c := range cs {
			if st := c.Wait(); st != StatusDone {
				t.Fatalf("workers=%d: campaign %s finished %s", workers, c.ID(), st)
			}
			if err := c.LogError(); err != nil {
				t.Fatalf("workers=%d: result log failed: %v", workers, err)
			}
			live := c.StreamTables()
			folder := report.NewFolder()
			n, err := ReplayResultLog(c.ResultLogPath(), func(r store.Result) error {
				folder.Ingest(r)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d: replay %s: %v", workers, c.ID(), err)
			}
			if n != c.Progress().TotalTrials {
				t.Fatalf("workers=%d: log holds %d records, campaign ran %d trials",
					workers, n, c.Progress().TotalTrials)
			}
			if replayed := folder.Tables(); replayed != live {
				t.Fatalf("workers=%d: replayed tables differ from live fold for %s:\n--- live\n%s\n--- replay\n%s",
					workers, c.ID(), live, replayed)
			}
		}
		svc.Close()
	}
}

// TestStreamSlowSubscriberDropsOldest: a subscriber that never reads
// while the campaign runs must not block it; when it finally drains, it
// sees a Seq gap (dropped prefix), still-ascending ordering, and the
// terminal status event last.
func TestStreamSlowSubscriberDropsOldest(t *testing.T) {
	svc := NewService(Config{Stream: true, Options: fastOptions()})
	defer svc.Close()
	c, err := svc.Submit(`experiment "long" {
		benchmark rubis; platform emulab; appserver jonas;
		topology { web 1; app 2; db 1; }
		workload { users 100 to 3000 step 100; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := c.Subscribe(16) // minimum depth; 30 trials overflow it
	defer cancel()
	if st := c.Wait(); st != StatusDone {
		t.Fatalf("campaign finished %s", st)
	}
	var evs []StreamEvent
	for ev := range ch {
		evs = append(evs, ev)
	}
	if len(evs) == 0 || len(evs) > 16 {
		t.Fatalf("drained %d events from a depth-16 queue", len(evs))
	}
	if evs[0].Seq == 1 {
		t.Fatal("no events were dropped despite queue overflow")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("Seq regressed after drops: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if last := evs[len(evs)-1]; last.Kind != "status" || last.Status != StatusDone {
		t.Fatalf("newest event is %+v, want the terminal status", last)
	}
}

// TestStreamSubscribeAfterTerminal: late subscribers get the terminal
// status and an immediately closed channel; cancelled-while-queued
// campaigns close their streams too.
func TestStreamSubscribeAfterTerminal(t *testing.T) {
	svc := NewService(Config{Stream: true, Options: fastOptions()})
	defer svc.Close()
	c, err := svc.Submit(sweepA)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Wait(); st != StatusDone {
		t.Fatalf("campaign finished %s", st)
	}
	ch, cancel := c.Subscribe(0)
	defer cancel()
	ev, ok := <-ch
	if !ok || ev.Kind != "status" || ev.Status != StatusDone {
		t.Fatalf("late subscriber got %+v (ok=%v), want a done status event", ev, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("late subscriber's channel not closed after the status event")
	}
}

func TestStreamClosedOnQueuedCancel(t *testing.T) {
	started := make(chan struct{})
	opts := fastOptions()
	var once bool
	opts.OnTrial = func(store.Result) {
		if !once {
			once = true
			close(started)
		}
	}
	svc := NewService(Config{Workers: 1, Stream: true, Options: opts})
	defer svc.Close()
	if _, err := svc.Submit(sweepA); err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(sweepB)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := queued.Subscribe(0)
	defer cancel()
	<-started
	if ok, err := svc.Cancel(queued.ID()); err != nil || !ok {
		t.Fatalf("cancel queued: ok=%v err=%v", ok, err)
	}
	var last StreamEvent
	for ev := range ch {
		last = ev
	}
	if last.Kind != "status" || last.Status != StatusCancelled {
		t.Fatalf("queued-cancel stream ended with %+v, want cancelled status", last)
	}
}

// TestStreamEventJSONShape: the wire encoding stays lean — trial-only
// fields are omitted from status events and vice versa.
func TestStreamEventJSONShape(t *testing.T) {
	data, err := json.Marshal(StreamEvent{Kind: "status", Campaign: "c0001", Seq: 7, Status: StatusDone})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, forbidden := range []string{"key", "throughput_rps", "p50_ms", "done", "total", "message"} {
		if strings.Contains(s, `"`+forbidden+`":`) {
			t.Errorf("status event leaks %q: %s", forbidden, s)
		}
	}
	if !strings.Contains(s, `"status":"done"`) {
		t.Errorf("status event missing status: %s", s)
	}
}
