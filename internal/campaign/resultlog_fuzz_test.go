package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"elba/internal/store"
)

// FuzzResultLogReplay drives the log reader with arbitrary file bytes:
// it must never panic, and whatever prefix it accepts must be stable —
// replaying the same bytes twice yields the same records, and a log
// reopened over those bytes truncates to exactly the committed prefix
// the replay saw.
func FuzzResultLogReplay(f *testing.F) {
	// Seed with real logs of a few shapes plus their truncations, so the
	// fuzzer starts inside the accepting region.
	build := func(n int) []byte {
		dir := f.TempDir()
		path := filepath.Join(dir, "seed.log")
		l, err := OpenResultLog(path)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := l.Append(logResult(i)); err != nil {
				f.Fatal(err)
			}
		}
		l.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	empty := build(0)
	three := build(3)
	f.Add(empty)
	f.Add(three)
	f.Add(three[:len(three)-5])
	f.Add(three[:len(empty)+1])
	f.Add([]byte(resultLogMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var first []store.Key
		n1, err1 := replayBytes(t, data, func(r store.Result) { first = append(first, r.Key) })
		var second []store.Key
		n2, err2 := replayBytes(t, data, func(r store.Result) { second = append(second, r.Key) })
		if n1 != n2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("replay not deterministic: (%d,%v) vs (%d,%v)", n1, err1, n2, err2)
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("record %d differs between replays", i)
			}
		}
		if err1 != nil {
			return
		}
		// Accepted input: a reopen must keep exactly the committed prefix.
		path := filepath.Join(t.TempDir(), "reopen.log")
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		l, oerr := OpenResultLog(path)
		if oerr != nil {
			t.Fatalf("replay accepted %d records but reopen failed: %v", n1, oerr)
		}
		if l.Len() != n1 {
			t.Fatalf("reopen kept %d records, replay saw %d", l.Len(), n1)
		}
		l.Close()
		if n3, rerr := ReplayResultLog(path, nil); rerr != nil || n3 != n1 {
			t.Fatalf("replay after reopen: n=%d err=%v, want %d", n3, rerr, n1)
		}
	})
}

// replayBytes writes data to a temp file and replays it.
func replayBytes(t *testing.T, data []byte, fn func(store.Result)) (int, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fuzz.log")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return ReplayResultLog(path, func(r store.Result) error {
		fn(r)
		return nil
	})
}
