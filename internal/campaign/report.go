package campaign

import (
	"fmt"
	"sort"
	"strings"

	"elba/internal/report"
	"elba/internal/store"
)

// Report renders the campaign's tables once it is done: the paper's
// throughput grid per (experiment, write ratio), plus the availability,
// engine-provenance, SLO-verdict, and autoscaling tables for every
// experiment whose results carry the corresponding observations — the
// same conditional rendering the elba CLI performs after a run.
func (c *Campaign) Report() (string, error) {
	st, err := c.Results()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, name := range c.names {
		results := st.Filter(func(r store.Result) bool {
			return r.Key.Experiment == name
		})
		if len(results) == 0 {
			continue
		}
		topologies := st.Topologies(name)
		loads := distinctInts(results, func(r store.Result) int { return r.Key.Users })
		for _, wr := range distinctRatios(results) {
			if b.Len() > 0 {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "experiment %q, write ratio %g%%\n", name, wr)
			b.WriteString(report.Table7Throughput(st, name, wr, topologies, loads))
		}
		if anyResult(results, func(r store.Result) bool { return r.FaultProfile != "" }) {
			b.WriteString("\n")
			b.WriteString(report.TableAvailability(st, name))
		}
		if anyResult(results, func(r store.Result) bool { return r.Engine != "" }) {
			b.WriteString("\n")
			b.WriteString(report.TableEngineSummary(st, name))
		}
		if anyResult(results, func(r store.Result) bool { return r.SLOAssert != "" }) {
			b.WriteString("\n")
			b.WriteString(report.TableSLO(st, name))
		}
		if anyResult(results, func(r store.Result) bool { return len(r.ScaleEvents) > 0 }) {
			b.WriteString("\n")
			b.WriteString(report.TableScaling(st, name))
		}
	}
	return b.String(), nil
}

func anyResult(rs []store.Result, pred func(store.Result) bool) bool {
	for _, r := range rs {
		if pred(r) {
			return true
		}
	}
	return false
}

func distinctInts(rs []store.Result, f func(store.Result) int) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range rs {
		if v := f(r); !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func distinctRatios(rs []store.Result) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, r := range rs {
		if v := r.Key.WriteRatioPct; !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}
