package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"elba/internal/core"
	"elba/internal/spec"
	"elba/internal/store"
)

// Status is a campaign's lifecycle state.
type Status string

const (
	// StatusQueued: accepted and waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning: a worker is executing the sweeps.
	StatusRunning Status = "running"
	// StatusDone: every experiment completed; results are available.
	StatusDone Status = "done"
	// StatusFailed: a sweep returned an error; Progress carries it.
	StatusFailed Status = "failed"
	// StatusCancelled: cancelled before or during execution. Trials
	// committed before the cancellation point stay in the campaign's
	// store (and in the shared cache), but results are not published.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Config configures a Service.
type Config struct {
	// Workers is the number of campaigns executed concurrently
	// (default 1). Within a campaign, Options.Parallel and
	// Options.TrialParallel govern sweep-level concurrency as usual.
	Workers int
	// QueueDepth bounds accepted-but-not-yet-running campaigns
	// (default 16); Submit fails fast when the queue is full.
	QueueDepth int
	// Cache is the shared trial cache (nil = fresh memory-only cache).
	Cache *Cache
	// Stream arms the streaming observability path for every campaign:
	// trials run with response-time sketches (Options.SketchRT), each
	// campaign folds its committed results into running tables as they
	// land, and Subscribe delivers live trial/knee/SLO events. Off by
	// default — and with it off, campaign output is byte-identical to a
	// service without the streaming path at all.
	Stream bool
	// ResultLogDir, when set (implies Stream), writes each campaign's
	// committed results to an append-only log at <dir>/<id>.log; replaying
	// the log through a report.Folder reproduces the live tables exactly.
	ResultLogDir string
	// Options is the base characterizer configuration applied to every
	// campaign. The service manages Store and TrialCache itself — each
	// campaign gets a private store and the shared cache — and wraps
	// OnTrial to keep per-campaign progress counts.
	Options core.Options
}

// Service owns the campaign queue, the worker pool, and the shared
// trial cache. Campaigns execute in submission order across Workers
// goroutines; because every trial is memoized content-addressed,
// execution order and worker count affect only wall-clock time, never
// the bytes any campaign stores.
type Service struct {
	cache  *Cache
	opts   core.Options
	stream bool
	logDir string
	queue  chan *Campaign
	wg     sync.WaitGroup

	mu     sync.Mutex
	byID   map[string]*Campaign
	order  []string
	seq    int
	closed bool
}

// NewService starts the worker pool and returns the service.
func NewService(cfg Config) *Service {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	depth := cfg.QueueDepth
	if depth < 1 {
		depth = 16
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewCache()
	}
	s := &Service{
		cache:  cache,
		opts:   cfg.Options,
		stream: cfg.Stream || cfg.ResultLogDir != "",
		logDir: cfg.ResultLogDir,
		queue:  make(chan *Campaign, depth),
		byID:   map[string]*Campaign{},
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Cache exposes the shared trial cache.
func (s *Service) Cache() *Cache { return s.cache }

// Submit parses src as a TBL document and enqueues it as a new
// campaign. Parse and validation errors — with their line:column
// positions — are returned synchronously; nothing is enqueued for an
// invalid document.
func (s *Service) Submit(src string) (*Campaign, error) {
	doc, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(doc.Experiments) == 0 {
		return nil, errors.New("campaign: document declares no experiments")
	}
	names := make([]string, len(doc.Experiments))
	total := 0
	for i, e := range doc.Experiments {
		names[i] = e.Name
		total += e.TrialCount()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("campaign: service is shut down")
	}
	s.seq++
	id := fmt.Sprintf("c%04d", s.seq)
	ctx, cancel := context.WithCancel(context.Background())
	c := &Campaign{
		id:          id,
		src:         src,
		doc:         doc,
		names:       names,
		totalTrials: total,
		ctx:         ctx,
		cancel:      cancel,
		status:      StatusQueued,
		finished:    make(chan struct{}),
	}
	// Streaming campaigns get their stream state (and result log file)
	// at submission, so a subscriber attached before the first trial
	// commits sees the whole event stream.
	if s.stream {
		if err := c.initStream(s.logDir); err != nil {
			s.mu.Unlock()
			cancel()
			return nil, err
		}
	}
	select {
	case s.queue <- c:
	default:
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("campaign: queue full (%d pending)", cap(s.queue))
	}
	s.byID[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()
	return c, nil
}

// Get returns a campaign by ID.
func (s *Service) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byID[id]
	return c, ok
}

// List returns every campaign in submission order.
func (s *Service) List() []*Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Campaign, len(s.order))
	for i, id := range s.order {
		out[i] = s.byID[id]
	}
	return out
}

// Cancel cancels a campaign: a queued one finishes instantly as
// cancelled, a running one stops between trials keeping its completed
// prefix, and a terminal one is left untouched (reported as false).
func (s *Service) Cancel(id string) (bool, error) {
	c, ok := s.Get(id)
	if !ok {
		return false, fmt.Errorf("campaign: no campaign %q", id)
	}
	return c.cancelNow(), nil
}

// Close stops accepting submissions, cancels every non-terminal
// campaign, and waits for the workers to drain.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	campaigns := make([]*Campaign, 0, len(s.order))
	for _, id := range s.order {
		campaigns = append(campaigns, s.byID[id])
	}
	s.mu.Unlock()
	for _, c := range campaigns {
		c.cancelNow()
	}
	close(s.queue)
	s.wg.Wait()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for c := range s.queue {
		s.execute(c)
	}
}

// execute runs one campaign to a terminal status.
func (s *Service) execute(c *Campaign) {
	if !c.begin() {
		return // cancelled while queued
	}
	opts := s.opts
	opts.Store = store.New()
	opts.TrialCache = s.cache
	if s.stream {
		opts.SketchRT = true
	}
	userOnTrial := opts.OnTrial
	opts.OnTrial = func(r store.Result) {
		done := c.noteTrial()
		c.streamTrial(r, done, c.totalTrials)
		if userOnTrial != nil {
			userOnTrial(r)
		}
	}
	char, err := core.New(opts)
	if err != nil {
		c.finish(StatusFailed, err)
		return
	}
	c.attach(char)
	var runErr error
	for _, e := range c.doc.Experiments {
		if runErr = char.RunExperimentContext(c.ctx, e); runErr != nil {
			break
		}
	}
	switch {
	case c.ctx.Err() != nil:
		c.finish(StatusCancelled, context.Cause(c.ctx))
	case runErr != nil:
		c.finish(StatusFailed, runErr)
	default:
		c.finish(StatusDone, nil)
	}
}

// Progress is a JSON-ready snapshot of one campaign.
type Progress struct {
	ID          string   `json:"id"`
	Status      Status   `json:"status"`
	Experiments []string `json:"experiments"`
	TotalTrials int      `json:"total_trials"`
	DoneTrials  int      `json:"done_trials"`
	// CacheHits and CacheMisses are this campaign's own counts against
	// the shared cache; the service-wide totals live in CacheStats.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Error       string `json:"error,omitempty"`
}

// Campaign is one submitted TBL document moving through the queue.
type Campaign struct {
	id          string
	src         string
	doc         *spec.Document
	names       []string
	totalTrials int
	ctx         context.Context
	cancel      context.CancelFunc
	finished    chan struct{}

	mu     sync.Mutex
	status Status
	err    error
	done   int
	char   *core.Characterizer
	stream *streamState
}

// ID returns the service-assigned campaign identifier.
func (c *Campaign) ID() string { return c.id }

// Source returns the submitted TBL text.
func (c *Campaign) Source() string { return c.src }

// Done is closed when the campaign reaches a terminal status.
func (c *Campaign) Done() <-chan struct{} { return c.finished }

// Wait blocks until the campaign is terminal and returns its status.
func (c *Campaign) Wait() Status {
	<-c.finished
	return c.Status()
}

// Status returns the current lifecycle state.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// Progress snapshots the campaign.
func (c *Campaign) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := Progress{
		ID:          c.id,
		Status:      c.status,
		Experiments: append([]string(nil), c.names...),
		TotalTrials: c.totalTrials,
		DoneTrials:  c.done,
	}
	if c.char != nil {
		p.CacheHits = c.char.Runner().CacheHits()
		p.CacheMisses = c.char.Runner().CacheMisses()
	}
	if c.err != nil && c.status != StatusDone {
		p.Error = c.err.Error()
	}
	return p
}

// Results returns the campaign's result store once it is done; until
// then (or on failure/cancellation) it reports an error naming the
// current status, so callers can distinguish "not yet" from "never".
func (c *Campaign) Results() (*store.Store, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status != StatusDone {
		return nil, fmt.Errorf("campaign %s is %s, results unavailable", c.id, c.status)
	}
	return c.char.Results(), nil
}

// begin moves queued → running; false if the campaign was cancelled
// while waiting (its terminal state is already published).
func (c *Campaign) begin() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status != StatusQueued {
		return false
	}
	c.status = StatusRunning
	return true
}

// attach publishes the campaign's characterizer for progress snapshots.
func (c *Campaign) attach(char *core.Characterizer) {
	c.mu.Lock()
	c.char = char
	c.mu.Unlock()
}

// noteTrial counts one committed trial and returns the running count.
func (c *Campaign) noteTrial() int {
	c.mu.Lock()
	c.done++
	done := c.done
	c.mu.Unlock()
	return done
}

// finish publishes a terminal status exactly once.
func (c *Campaign) finish(st Status, err error) {
	c.mu.Lock()
	if c.status.Terminal() {
		c.mu.Unlock()
		return
	}
	c.status = st
	c.err = err
	c.mu.Unlock()
	c.closeStream(st)
	c.cancel()
	close(c.finished)
}

// cancelNow cancels the campaign, immediately finalizing it when it is
// still queued; true if the cancellation took effect (the campaign was
// not already terminal — a running campaign finalizes when its worker
// observes the cancelled context between trials).
func (c *Campaign) cancelNow() bool {
	c.mu.Lock()
	switch {
	case c.status == StatusQueued:
		c.status = StatusCancelled
		c.err = context.Canceled
		c.mu.Unlock()
		c.closeStream(StatusCancelled)
		c.cancel()
		close(c.finished)
		return true
	case c.status == StatusRunning:
		c.mu.Unlock()
		c.cancel()
		return true
	default:
		c.mu.Unlock()
		return false
	}
}
