package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"elba/internal/report"
	"elba/internal/store"
)

// StreamEvent is one message on a campaign's live event stream: a
// committed trial with the campaign's running quantiles, an online
// detection (knee, SLO onset, first failure), or a terminal status.
type StreamEvent struct {
	// Kind is "trial", "knee", "slo-onset", "failure-onset", or "status".
	Kind string `json:"kind"`
	// Campaign is the emitting campaign's ID.
	Campaign string `json:"campaign"`
	// Seq numbers the campaign's events from 1 in emission order, so a
	// consumer can detect drops (bounded subscribers drop oldest first).
	Seq int `json:"seq"`
	// Key identifies the trial behind a trial/detection event.
	Key *store.Key `json:"key,omitempty"`
	// Completed, Throughput: the trial's own outcome (trial events).
	Completed  bool    `json:"completed,omitempty"`
	Throughput float64 `json:"throughput_rps,omitempty"`
	// P50/P90/P99 are the experiment's *running* campaign-level
	// response-time quantiles (ms) from the merged sketch after this
	// trial folded in.
	P50ms float64 `json:"p50_ms,omitempty"`
	P90ms float64 `json:"p90_ms,omitempty"`
	P99ms float64 `json:"p99_ms,omitempty"`
	// Done/Total track campaign progress (trial events).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Status carries the terminal state (status events).
	Status Status `json:"status,omitempty"`
	// Message is the one-line human rendering of detection events.
	Message string `json:"message,omitempty"`
}

// streamState is a campaign's streaming machinery, allocated only when
// the service runs with streaming enabled.
type streamState struct {
	mu     sync.Mutex
	folder *report.Folder
	rlog   *ResultLog
	logErr error
	seq    int
	subs   map[int]chan StreamEvent
	nextID int
	closed bool
}

// initStream arms the campaign's streaming state. logDir "" disables
// the result log.
func (c *Campaign) initStream(logDir string) error {
	st := &streamState{
		folder: report.NewFolder(),
		subs:   map[int]chan StreamEvent{},
	}
	if logDir != "" {
		if err := os.MkdirAll(logDir, 0o755); err != nil {
			return fmt.Errorf("campaign: result log dir: %w", err)
		}
		rlog, err := OpenResultLog(filepath.Join(logDir, c.id+".log"))
		if err != nil {
			return err
		}
		st.rlog = rlog
	}
	c.mu.Lock()
	c.stream = st
	c.mu.Unlock()
	return nil
}

// Streaming reports whether this campaign runs the streaming path.
func (c *Campaign) Streaming() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stream != nil
}

// ResultLogPath reports the campaign's result log file ("" when none).
func (c *Campaign) ResultLogPath() string {
	c.mu.Lock()
	st := c.stream
	c.mu.Unlock()
	if st == nil || st.rlog == nil {
		return ""
	}
	return st.rlog.Path()
}

// LogError reports the first result-log write failure, if any. Logging
// failure never fails the campaign — the log is observability, not the
// result of record — but it is surfaced here rather than swallowed.
func (c *Campaign) LogError() error {
	c.mu.Lock()
	st := c.stream
	c.mu.Unlock()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.logErr
}

// StreamTables renders the streaming folder's running tables at this
// moment; empty when the campaign is not streaming.
func (c *Campaign) StreamTables() string {
	c.mu.Lock()
	st := c.stream
	c.mu.Unlock()
	if st == nil {
		return ""
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.folder.Tables()
}

// Subscribe registers a live event consumer with a bounded queue of the
// given depth (minimum 16). When the consumer falls behind, the oldest
// queued event is dropped to admit the newest — Seq gaps tell the
// consumer it happened. The channel closes when the campaign reaches a
// terminal status (after a final "status" event) or when cancel is
// called. Subscribing to a terminal campaign yields the status event
// and an immediately-closed channel.
func (c *Campaign) Subscribe(depth int) (<-chan StreamEvent, func()) {
	if depth < 16 {
		depth = 16
	}
	c.mu.Lock()
	st := c.stream
	status := c.status
	c.mu.Unlock()
	ch := make(chan StreamEvent, depth)
	if st == nil {
		close(ch)
		return ch, func() {}
	}
	st.mu.Lock()
	if st.closed {
		st.seq++
		ch <- StreamEvent{Kind: "status", Campaign: c.id, Seq: st.seq, Status: status}
		st.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := st.nextID
	st.nextID++
	st.subs[id] = ch
	st.mu.Unlock()
	cancel := func() {
		st.mu.Lock()
		if sub, ok := st.subs[id]; ok {
			delete(st.subs, id)
			close(sub)
		}
		st.mu.Unlock()
	}
	return ch, cancel
}

// publishLocked fans ev out to every subscriber, dropping each queue's
// oldest event when it is full. st.mu must be held.
func (st *streamState) publishLocked(ev StreamEvent) {
	st.seq++
	ev.Seq = st.seq
	for _, ch := range st.subs {
		for {
			select {
			case ch <- ev:
			default:
				select {
				case <-ch: // drop oldest, then retry
				default:
				}
				continue
			}
			break
		}
	}
}

// streamTrial folds one committed result into the campaign's streaming
// state: append to the result log, ingest into the folder, publish the
// trial event and any detections. Called from the runner's OnTrial
// hook; the stream mutex serializes it, so the log's record order, the
// folder's merge order, and the event order all equal commit order.
func (c *Campaign) streamTrial(r store.Result, done, total int) {
	c.mu.Lock()
	st := c.stream
	c.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.rlog != nil && st.logErr == nil {
		if err := st.rlog.Append(r); err != nil {
			st.logErr = err
		}
	}
	events := st.folder.Ingest(r)
	ev := StreamEvent{
		Kind:       "trial",
		Campaign:   c.id,
		Key:        &r.Key,
		Completed:  r.Completed,
		Throughput: r.Throughput,
		Done:       done,
		Total:      total,
	}
	if qs, _, ok := st.folder.Quantiles(r.Key.Experiment, 0.50, 0.90, 0.99); ok {
		ev.P50ms, ev.P90ms, ev.P99ms = qs[0], qs[1], qs[2]
	}
	st.publishLocked(ev)
	for _, fe := range events {
		key := fe.Key
		st.publishLocked(StreamEvent{
			Kind:     fe.Kind,
			Campaign: c.id,
			Key:      &key,
			Message:  fe.Message,
		})
	}
}

// closeStream publishes the terminal status and closes every
// subscriber. Called exactly once, from finish.
func (c *Campaign) closeStream(status Status) {
	c.mu.Lock()
	st := c.stream
	c.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.publishLocked(StreamEvent{Kind: "status", Campaign: c.id, Status: status})
	for id, ch := range st.subs {
		delete(st.subs, id)
		close(ch)
	}
	st.closed = true
	rlog := st.rlog
	st.mu.Unlock()
	if rlog != nil {
		rlog.Close()
	}
}
