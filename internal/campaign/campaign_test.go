package campaign

import (
	"bytes"
	"strings"
	"testing"

	"elba/internal/core"
	"elba/internal/spec"
	"elba/internal/store"
)

// Two overlapping sweeps of the same experiment: the user grids share
// populations 300–500, so 3 of the 10 requested trials are redundant.
const sweepA = `experiment "overlap" {
	benchmark rubis; platform emulab; appserver jonas;
	topology { web 1; app 2; db 1; }
	workload { users 100 to 500 step 100; writeratio 15; }
}`

const sweepB = `experiment "overlap" {
	benchmark rubis; platform emulab; appserver jonas;
	topology { web 1; app 2; db 1; }
	workload { users 300 to 700 step 100; writeratio 15; }
}`

// fastOptions is the shared per-campaign configuration: the reduced
// trial protocol the rest of the test suite uses.
func fastOptions() core.Options {
	return core.Options{TimeScale: 0.1}
}

// directStore runs src through a plain characterizer — no service, no
// cache — and returns its result store's canonical JSON: the reference
// bytes every cached campaign must reproduce exactly.
func directStore(t *testing.T, src string) []byte {
	t.Helper()
	c, err := core.New(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunTBL(src); err != nil {
		t.Fatal(err)
	}
	data, err := c.Results().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func campaignJSON(t *testing.T, c *Campaign) []byte {
	t.Helper()
	if st := c.Wait(); st != StatusDone {
		t.Fatalf("campaign %s finished %s: %+v", c.ID(), st, c.Progress())
	}
	results, err := c.Results()
	if err != nil {
		t.Fatal(err)
	}
	data, err := results.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestOverlappingCampaignsDeterministicAcrossWorkerCounts is the
// subsystem's core determinism property: the same two overlapping
// campaigns, submitted together, store byte-identical results at every
// worker count — identical to uncached direct runs — and the shared
// cache's hit/miss totals are a pure function of the submitted
// workload (hits = requests − unique tuples), not of scheduling.
func TestOverlappingCampaignsDeterministicAcrossWorkerCounts(t *testing.T) {
	wantA := directStore(t, sweepA)
	wantB := directStore(t, sweepB)
	for _, workers := range []int{1, 4, 8} {
		svc := NewService(Config{Workers: workers, Options: fastOptions()})
		ca, err := svc.Submit(sweepA)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := svc.Submit(sweepB)
		if err != nil {
			t.Fatal(err)
		}
		gotA := campaignJSON(t, ca)
		gotB := campaignJSON(t, cb)
		svc.Close()
		if !bytes.Equal(gotA, wantA) {
			t.Fatalf("workers=%d: campaign A store differs from the direct run", workers)
		}
		if !bytes.Equal(gotB, wantB) {
			t.Fatalf("workers=%d: campaign B store differs from the direct run", workers)
		}
		stats := svc.Cache().Stats()
		// 5 + 5 requested tuples, 7 unique: exactly 7 computations and 3
		// hits at any worker count, thanks to single-flight coalescing.
		if stats.Misses != 7 || stats.Hits != 3 || stats.Entries != 7 {
			t.Fatalf("workers=%d: cache stats %+v, want 7 misses / 3 hits / 7 entries",
				workers, stats)
		}
		pa, pb := ca.Progress(), cb.Progress()
		if pa.CacheHits+pb.CacheHits != 3 || pa.CacheMisses+pb.CacheMisses != 7 {
			t.Fatalf("workers=%d: per-campaign counters %+v / %+v do not sum to 3 hits / 7 misses",
				workers, pa, pb)
		}
		if pa.DoneTrials != 5 || pb.DoneTrials != 5 {
			t.Fatalf("workers=%d: done trials %d / %d, want 5 / 5", workers, pa.DoneTrials, pb.DoneTrials)
		}
	}
}

// TestCachePersistsAcrossOpens pins the on-disk index: a second service
// opening the same directory serves a re-submitted campaign entirely
// from disk, byte-identically, without computing a single trial.
func TestCachePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	cache1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := NewService(Config{Cache: cache1, Options: fastOptions()})
	c1, err := svc1.Submit(sweepA)
	if err != nil {
		t.Fatal(err)
	}
	first := campaignJSON(t, c1)
	svc1.Close()
	if s := cache1.Stats(); s.Misses != 5 || s.Hits != 0 {
		t.Fatalf("first run stats %+v, want 5 misses / 0 hits", s)
	}

	cache2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cache2.Stats().Loaded != 5 {
		t.Fatalf("reopened cache loaded %d entries, want 5", cache2.Stats().Loaded)
	}
	svc2 := NewService(Config{Cache: cache2, Options: fastOptions()})
	c2, err := svc2.Submit(sweepA)
	if err != nil {
		t.Fatal(err)
	}
	second := campaignJSON(t, c2)
	svc2.Close()
	if s := cache2.Stats(); s.Misses != 0 || s.Hits != 5 {
		t.Fatalf("replayed run stats %+v, want 0 misses / 5 hits", s)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("disk-replayed store differs from the original run")
	}
}

// TestCancelStopsMidSweep cancels a campaign from its first trial
// callback: the sweep must stop between trials, finish as cancelled,
// keep its completed prefix private, and refuse to publish results.
func TestCancelStopsMidSweep(t *testing.T) {
	opts := fastOptions()
	var svc *Service
	opts.OnTrial = func(store.Result) {
		svc.Cancel("c0001") // ids are deterministic per service
	}
	svc = NewService(Config{Options: opts})
	defer svc.Close()
	c, err := svc.Submit(`experiment "long" {
		benchmark rubis; platform emulab; appserver jonas;
		topology { web 1; app 2; db 1; }
		workload { users 100 to 3000 step 100; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Wait(); st != StatusCancelled {
		t.Fatalf("cancelled campaign finished %s", st)
	}
	p := c.Progress()
	if p.DoneTrials == 0 || p.DoneTrials >= p.TotalTrials {
		t.Fatalf("cancellation should keep a strict prefix: %d of %d trials", p.DoneTrials, p.TotalTrials)
	}
	if p.Error == "" {
		t.Fatalf("cancelled progress should carry the cause")
	}
	if _, err := c.Results(); err == nil {
		t.Fatalf("cancelled campaign must not publish results")
	}
}

// TestCancelQueuedCampaign: a campaign cancelled before any worker
// picks it up terminalizes immediately and never runs a trial.
func TestCancelQueuedCampaign(t *testing.T) {
	// One worker, occupied by a long campaign: the second submission
	// waits in the queue where the cancellation must catch it.
	started := make(chan struct{})
	opts := fastOptions()
	var once bool
	opts.OnTrial = func(store.Result) {
		if !once {
			once = true
			close(started)
		}
	}
	svc := NewService(Config{Workers: 1, Options: opts})
	defer svc.Close()
	if _, err := svc.Submit(sweepA); err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(sweepB)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ok, err := svc.Cancel(queued.ID())
	if err != nil || !ok {
		t.Fatalf("cancel queued: ok=%v err=%v", ok, err)
	}
	if st := queued.Wait(); st != StatusCancelled {
		t.Fatalf("queued campaign finished %s", st)
	}
	if p := queued.Progress(); p.DoneTrials != 0 {
		t.Fatalf("queued campaign ran %d trials after cancellation", p.DoneTrials)
	}
	// Cancelling a terminal campaign is a no-op.
	if ok, err := svc.Cancel(queued.ID()); err != nil || ok {
		t.Fatalf("re-cancel: ok=%v err=%v, want false, nil", ok, err)
	}
}

// TestKneeSearchHitsCampaignCache is the re-anchored knee search
// acceptance path: after a campaign sweeps a user grid, a knee search
// over the same bracket — probing only grid populations — runs against
// the shared cache and spends zero fresh trials.
func TestKneeSearchHitsCampaignCache(t *testing.T) {
	svc := NewService(Config{Options: fastOptions()})
	defer svc.Close()
	c, err := svc.Submit(sweepA)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Wait(); st != StatusDone {
		t.Fatalf("sweep finished %s", st)
	}
	results, err := c.Results()
	if err != nil {
		t.Fatal(err)
	}
	rt := func(users int) float64 {
		r, ok := results.Get(store.Key{Experiment: "overlap", Topology: "1-2-1",
			Users: users, WriteRatioPct: 15})
		if !ok {
			t.Fatalf("sweep missing u=%d", users)
		}
		return r.AvgRTms
	}
	lo, hi := rt(100), rt(500)
	if hi <= lo {
		t.Fatalf("response time not rising across the sweep (%.1f → %.1f ms)", lo, hi)
	}
	// An SLO strictly between the bracket anchors forces a full
	// bisection; every probe lands on the already-swept 100-step grid.
	slo := (lo + hi) / 2

	opts := fastOptions()
	opts.TrialCache = svc.Cache()
	char, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := spec.Parse(sweepA)
	if err != nil {
		t.Fatal(err)
	}
	res, err := char.Runner().KneeSearch(doc.Experiments[0], spec.Topology{Web: 1, App: 2, DB: 1},
		15, slo, 100, 500, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 0 {
		t.Fatalf("re-anchored search spent %d fresh trials over a swept bracket: %+v", res.Trials, res)
	}
	if hits := char.Runner().CacheHits(); hits < 3 {
		t.Fatalf("search served %d probes from the cache, want the full bisection (>= 3)", hits)
	}
	if res.Users < 100 || res.ViolationUsers > 500 || res.Users >= res.ViolationUsers {
		t.Fatalf("implausible knee bracket: %+v", res)
	}
}

// TestSubmitValidation: parse errors surface synchronously with their
// positions, and an empty document is rejected.
func TestSubmitValidation(t *testing.T) {
	svc := NewService(Config{Options: fastOptions()})
	defer svc.Close()
	_, err := svc.Submit("experiment \"bad\" {\n\tbenchmark rubis platform emulab;\n}")
	if err == nil {
		t.Fatal("malformed TBL accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("parse error lost its position: %v", err)
	}
	if _, err := svc.Submit("// nothing declared\n"); err == nil {
		t.Fatal("empty document accepted")
	}
	if len(svc.List()) != 0 {
		t.Fatalf("rejected submissions leaked into the campaign list")
	}
}

// TestReportRendersThroughputGrid smoke-tests the service-side report:
// a finished campaign renders the Table 7 grid for its sweep.
func TestReportRendersThroughputGrid(t *testing.T) {
	svc := NewService(Config{Options: fastOptions()})
	defer svc.Close()
	c, err := svc.Submit(sweepA)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Wait(); st != StatusDone {
		t.Fatalf("campaign finished %s", st)
	}
	out, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`experiment "overlap"`, "1-2-1", "500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// A still-running or failed campaign has no report.
	if _, err := (&Campaign{id: "x", status: StatusRunning}).Report(); err == nil {
		t.Fatal("running campaign should not render a report")
	}
}
