// Package campaign turns the characterizer into a service: a queue of
// TBL submissions fanned across a deterministic worker pool, backed by a
// content-addressed memo cache of trial results. Trials are pure
// functions of (trial-invariant spec hash, grid coordinates, seed), so
// overlapping sweeps — within a campaign, across concurrently running
// campaigns, or across separate submissions — reuse prior results
// byte-for-byte instead of re-simulating, and a knee search re-anchored
// over a previously swept bracket costs nothing.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"elba/internal/experiment"
	"elba/internal/store"
)

// KeyID is the content address of a trial key: the hex SHA-256 of its
// canonical field serialization. It names the cache entry in memory and
// its file on disk, and is stable across processes.
func KeyID(k experiment.TrialKey) string {
	h := sha256.New()
	for _, part := range []string{
		k.SpecHash,
		k.Topology,
		strconv.Itoa(k.Users),
		strconv.FormatFloat(k.WriteRatioPct, 'g', -1, 64),
		k.Engine,
		strconv.FormatFloat(k.TimeScale, 'g', -1, 64),
		strconv.FormatUint(k.Seed, 10),
		strconv.FormatUint(k.RootSeed, 10),
		k.FaultProfile,
		strconv.Itoa(k.TrialRetries),
		strconv.FormatFloat(k.TraceRate, 'g', -1, 64),
		strconv.Itoa(k.TraceExemplars),
	} {
		io.WriteString(h, part)
		h.Write([]byte{0}) // unambiguous field boundaries
	}
	// SketchRT contributes to the address only when set: sketch-free keys
	// hash exactly as they did before the field existed, so on-disk caches
	// written by older builds stay valid.
	if k.SketchRT {
		io.WriteString(h, "rtsketch")
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Entries is the number of memoized trials currently held.
	Entries int `json:"entries"`
	// Hits counts Do calls served without computing, including waiters
	// coalesced onto another caller's in-flight computation.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that computed and cached a fresh result.
	Misses uint64 `json:"misses"`
	// Loaded is the number of entries restored from disk at open time.
	Loaded int `json:"loaded"`
}

// Cache is the content-addressed trial memo shared by every campaign a
// service runs. Entries are stored as the result's canonical JSON bytes,
// which gives two properties at once: a hit can never alias a cached
// result's maps or slices into a caller, and a result replayed from the
// cache serializes byte-identically to the run that produced it.
//
// Do is single-flight: however many campaigns request a key at once,
// exactly one computes it and the rest wait for that computation — which
// is what makes total hit/miss counts a pure function of the submitted
// workload (hits = requests − unique keys), independent of worker count
// and scheduling. Errors are never cached; a failing key stays
// retryable, and each waiter on a failed flight retries the key itself
// rather than inheriting a cancellation or fault from another campaign.
//
// With a directory attached, every fresh entry is also written to
// <id>.json (atomically, via rename), and OpenCache restores the index
// on start, so memoization survives restarts and separate submissions.
type Cache struct {
	dir string // "" = memory only

	mu      sync.Mutex
	entries map[string][]byte // KeyID → canonical result JSON
	flights map[string]chan struct{}

	hits   atomic.Uint64
	misses atomic.Uint64
	loaded int
}

// NewCache creates a memory-only cache.
func NewCache() *Cache {
	return &Cache{
		entries: map[string][]byte{},
		flights: map[string]chan struct{}{},
	}
}

// diskEntry is the on-disk form of one memoized trial: the full key for
// auditability and verification, plus the result's canonical JSON.
type diskEntry struct {
	Key    experiment.TrialKey `json:"key"`
	Result json.RawMessage     `json:"result"`
}

// OpenCache creates the directory if needed and loads every valid
// <id>.json entry into the index. Entries whose filename does not match
// the content address recomputed from their stored key are ignored (and
// left on disk for inspection) rather than trusted.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open cache: %w", err)
	}
	c := NewCache()
	c.dir = dir
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		var ent diskEntry
		if err := json.Unmarshal(data, &ent); err != nil {
			continue // partial write or foreign file: skip, don't fail the open
		}
		id := KeyID(ent.Key)
		if id+".json" != filepath.Base(name) || len(ent.Result) == 0 {
			continue
		}
		c.entries[id] = append([]byte(nil), ent.Result...)
		c.loaded++
	}
	return c, nil
}

// Dir reports the persistence directory ("" for a memory-only cache).
func (c *Cache) Dir() string { return c.dir }

// Len reports the number of memoized trials.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Entries: entries,
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Loaded:  c.loaded,
	}
}

// Do implements experiment.TrialCache with single-flight coalescing and
// optional persistence; see the Cache doc for the full contract.
func (c *Cache) Do(k experiment.TrialKey, compute func() (store.Result, error)) (store.Result, bool, error) {
	id := KeyID(k)
	for {
		c.mu.Lock()
		if data, ok := c.entries[id]; ok {
			c.mu.Unlock()
			var res store.Result
			if err := json.Unmarshal(data, &res); err != nil {
				return store.Result{}, false, fmt.Errorf("campaign: corrupt cache entry %s: %w", id, err)
			}
			c.hits.Add(1)
			return res, true, nil
		}
		if done, ok := c.flights[id]; ok {
			c.mu.Unlock()
			// Another campaign is computing this key. Wait it out, then loop:
			// on success the entry is there (a hit); on failure this caller
			// takes over the flight and retries the computation itself.
			<-done
			continue
		}
		done := make(chan struct{})
		c.flights[id] = done
		c.mu.Unlock()

		res, err := compute()
		var data []byte
		if err == nil {
			data, err = json.Marshal(res)
		}
		c.mu.Lock()
		delete(c.flights, id)
		if err == nil {
			c.entries[id] = data
		}
		c.mu.Unlock()
		close(done)
		if err != nil {
			return store.Result{}, false, err
		}
		c.misses.Add(1)
		if c.dir != "" {
			if werr := c.persist(id, k, data); werr != nil {
				return store.Result{}, false, werr
			}
		}
		return res, false, nil
	}
}

// persist writes one entry file atomically: a same-directory temp file
// renamed into place, so a crashed write can never leave a torn entry
// under a valid content address.
func (c *Cache) persist(id string, k experiment.TrialKey, result []byte) error {
	data, err := json.MarshalIndent(diskEntry{Key: k, Result: result}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "."+id+".tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), filepath.Join(c.dir, id+".json"))
}

// String renders the stats one-line, for log lines and CLI summaries.
func (s CacheStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d entries, %d hits, %d misses", s.Entries, s.Hits, s.Misses)
	if s.Loaded > 0 {
		fmt.Fprintf(&b, " (%d loaded from disk)", s.Loaded)
	}
	return b.String()
}
