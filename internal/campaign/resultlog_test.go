package campaign

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"elba/internal/metrics"
	"elba/internal/store"
)

// logResult builds a distinguishable result for log tests, with a small
// sketch so the full round trip covers the digest codec too.
func logResult(i int) store.Result {
	d := metrics.NewTDigest(metrics.DefaultTDigestCompression)
	for j := 0; j < 50; j++ {
		d.Observe(float64(i*100 + j))
	}
	return store.Result{
		Key: store.Key{
			Experiment:    "log-test",
			Topology:      "1-2-1",
			Users:         100 * (i + 1),
			WriteRatioPct: 10,
		},
		Completed:  true,
		Requests:   int64(1000 + i),
		Throughput: float64(50 * (i + 1)),
		AvgRTms:    float64(i) * 1.5,
		TierCPU:    map[string]float64{"app": float64(10 + i)},
		RTSketch:   d,
	}
}

func TestResultLogAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c0001.log")
	l, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Append(logResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != n {
		t.Fatalf("Len = %d, want %d", l.Len(), n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []store.Result
	replayed, err := ReplayResultLog(path, func(r store.Result) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != n || len(got) != n {
		t.Fatalf("replayed %d records, want %d", replayed, n)
	}
	for i, r := range got {
		want := logResult(i)
		if r.Key != want.Key || r.Requests != want.Requests {
			t.Errorf("record %d: got %+v", i, r.Key)
		}
		if r.RTSketch == nil || r.RTSketch.Count() != want.RTSketch.Count() {
			t.Errorf("record %d: sketch not round-tripped", i)
		} else if a, b := r.RTSketch.Quantile(0.5), want.RTSketch.Quantile(0.5); a != b {
			t.Errorf("record %d: sketch p50 %g != %g", i, a, b)
		}
	}
}

func TestResultLogReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.log")
	l, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(logResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", l2.Len())
	}
	if err := l2.Append(logResult(3)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	n, err := ReplayResultLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d records after reopen, want 4", n)
	}
}

// TestResultLogTornTail: truncating the file mid-record (a simulated
// crash during the final write) must preserve the committed prefix, both
// for replay and for a reopen that appends after it.
func TestResultLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.log")
	l, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(logResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	committed4, _, err := scanResultLogPrefix(full, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point strictly inside record 5 must replay exactly
	// the 4 committed records.
	for _, cut := range []int64{committed4 + 1, committed4 + 2, int64(len(full)) - 1} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n, err := ReplayResultLog(path, nil)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if n != 4 {
			t.Fatalf("cut at %d: replayed %d records, want 4", cut, n)
		}
	}
	// Reopening over the torn tail truncates it and appends cleanly.
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 4 {
		t.Fatalf("reopen over torn tail: Len = %d, want 4", l2.Len())
	}
	if err := l2.Append(logResult(9)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if n, err := ReplayResultLog(path, nil); err != nil || n != 5 {
		t.Fatalf("after repair+append: n=%d err=%v, want 5 records", n, err)
	}
}

// scanResultLogPrefix returns the byte length of the first k committed
// records (plus magic), for building truncation points in tests.
func scanResultLogPrefix(data []byte, k int) (int64, int, error) {
	var ends []int64
	off := len(resultLogMagic)
	for off < len(data) {
		size, vn := binary.Uvarint(data[off:])
		if vn <= 0 {
			break
		}
		end := off + vn + 4 + int(size)
		if end > len(data) {
			break
		}
		ends = append(ends, int64(end))
		off = end
	}
	if len(ends) < k {
		return 0, 0, fmt.Errorf("only %d frames, want %d", len(ends), k)
	}
	return ends[k-1], k, nil
}

// TestResultLogRejectsCorruption: flipping a committed byte is
// corruption, not a tail, and must fail the replay.
func TestResultLogRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.log")
	l, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(logResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(resultLogMagic)+20] ^= 0xff // inside record 0's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayResultLog(path, nil); err == nil {
		t.Fatal("corrupted committed record replayed without error")
	}
	if _, err := OpenResultLog(path); err == nil {
		t.Fatal("corrupted log opened without error")
	}
}

func TestResultLogBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.log")
	if err := os.WriteFile(path, []byte("not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayResultLog(path, nil); err == nil {
		t.Fatal("foreign file replayed without error")
	}
	if _, err := OpenResultLog(path); err == nil {
		t.Fatal("foreign file opened as log without error")
	}
}
