package campaign

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"elba/internal/store"
)

// resultLogMagic opens every result log file. The version digit guards
// the frame format: readers reject files from a different format rather
// than misparse them.
const resultLogMagic = "ELBALOG1\n"

// maxResultRecord bounds one record's payload. Trial results are a few
// kilobytes (tens with traces attached); the bound exists so a corrupt
// length prefix can never drive the reader into a giant allocation.
const maxResultRecord = 16 << 20

// ResultLog is an append-only, crash-safe record of trial results in
// commit order: the campaign's durable observation stream. Each record
// is one store.Result as canonical JSON, framed by a uvarint payload
// length and a CRC32 of the payload, and fsynced before Append returns —
// so the log on disk is always a committed prefix of the stream, and a
// torn tail left by a crash is detected and discarded, never misread.
//
// Because results commit in deterministic grid order and serialize
// canonically, two logs of the same campaign are byte-identical whatever
// the worker count — and replaying a log through a report.Folder
// reproduces the live fold exactly.
type ResultLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
	n    int // committed records
}

// OpenResultLog opens (creating if absent) the log at path for
// appending. An existing file is scanned: its committed prefix is kept,
// a torn tail from an interrupted write is truncated away, and
// subsequent appends continue after the last committed record.
func OpenResultLog(path string) (*ResultLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open result log: %w", err)
	}
	l := &ResultLog{f: f, path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if len(data) == 0 {
		if _, err := f.WriteString(resultLogMagic); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		return l, nil
	}
	committed, n, err := scanResultLog(data, nil)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: result log %s: %w", path, err)
	}
	l.n = n
	if err := f.Truncate(committed); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(committed, 0); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Append writes one result as the log's next record and fsyncs. The
// record is durable (or absent) when Append returns: there is no state
// in between that a replay could half-read.
func (l *ResultLog) Append(r store.Result) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	frame := make([]byte, 0, len(payload)+binary.MaxVarintLen64+4)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("campaign: result log %s is closed", l.path)
	}
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.n++
	return nil
}

// Len reports the number of committed records.
func (l *ResultLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Path reports the log's file path.
func (l *ResultLog) Path() string { return l.path }

// Close closes the underlying file. Further Appends fail.
func (l *ResultLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// ReplayResultLog reads the log at path and calls fn for every committed
// record in append order. A torn tail (an interrupted final write) ends
// the replay cleanly; corruption inside the committed region — a failed
// checksum or invalid JSON followed by further bytes — is an error. It
// returns the number of records replayed.
func ReplayResultLog(path string, fn func(store.Result) error) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	_, n, err := scanResultLog(data, fn)
	if err != nil {
		return n, fmt.Errorf("campaign: result log %s: %w", path, err)
	}
	return n, nil
}

// scanResultLog walks the framed records in data, calling fn (when
// non-nil) per decoded result, and returns the byte length of the
// committed prefix plus the record count. Truncated frames at the end of
// data are a torn tail: the scan stops there without error. A frame that
// is complete but fails its checksum or does not decode is corruption,
// not a tail, and is reported as an error.
func scanResultLog(data []byte, fn func(store.Result) error) (committed int64, n int, err error) {
	if len(data) < len(resultLogMagic) || string(data[:len(resultLogMagic)]) != resultLogMagic {
		return 0, 0, fmt.Errorf("bad magic (not a result log)")
	}
	off := len(resultLogMagic)
	committed = int64(off)
	for off < len(data) {
		size, vn := binary.Uvarint(data[off:])
		if vn <= 0 {
			if uvarintTruncated(data[off:]) {
				return committed, n, nil // torn tail
			}
			return committed, n, fmt.Errorf("record %d: malformed length prefix", n)
		}
		if size > maxResultRecord {
			return committed, n, fmt.Errorf("record %d: length %d exceeds limit", n, size)
		}
		body := off + vn
		if body+4+int(size) > len(data) {
			return committed, n, nil // torn tail
		}
		sum := binary.LittleEndian.Uint32(data[body:])
		payload := data[body+4 : body+4+int(size)]
		if crc32.ChecksumIEEE(payload) != sum {
			return committed, n, fmt.Errorf("record %d: checksum mismatch", n)
		}
		var r store.Result
		if derr := json.Unmarshal(payload, &r); derr != nil {
			return committed, n, fmt.Errorf("record %d: %w", n, derr)
		}
		if fn != nil {
			if ferr := fn(r); ferr != nil {
				return committed, n, ferr
			}
		}
		off = body + 4 + int(size)
		committed = int64(off)
		n++
	}
	return committed, n, nil
}

// uvarintTruncated reports whether b is a proper prefix of a valid
// uvarint — every present byte has its continuation bit set and fewer
// than the maximum number of bytes are present. Such a prefix can only
// arise from an interrupted write.
func uvarintTruncated(b []byte) bool {
	if len(b) >= binary.MaxVarintLen64 {
		return false
	}
	for _, c := range b {
		if c < 0x80 {
			return false
		}
	}
	return true
}
