package report

import (
	"strings"
	"testing"

	"elba/internal/store"
)

func TestTableSLO(t *testing.T) {
	st := store.New()
	st.Put(store.Result{
		Key:       store.Key{Experiment: "flash", Topology: "1-2-1", Users: 200, WriteRatioPct: 15},
		SLOAssert: "p99(rt) < 500ms", SLOWindows: 60, SLOViolations: 0,
	})
	st.Put(store.Result{
		Key:       store.Key{Experiment: "flash", Topology: "1-2-1", Users: 800, WriteRatioPct: 15},
		Engine:    "fluid",
		SLOAssert: "p99(rt) < 500ms", SLOWindows: 60, SLOViolations: 12,
		SLOViolatedAt: []float64{150, 155, 160},
	})
	st.Put(store.Result{ // no assert: excluded from the table
		Key: store.Key{Experiment: "flash", Topology: "1-1-1", Users: 100},
	})

	out := TableSLO(st, "flash")
	for _, want := range []string{
		"assert p99(rt) < 500ms",
		"PASS", "FAIL", "150s", "fluid", "des",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "1-1-1") {
		t.Errorf("assert-free result leaked into the SLO table:\n%s", out)
	}
	// Row order: the passing 200-user row before the failing 800-user row.
	if strings.Index(out, "200") > strings.Index(out, "800") {
		t.Errorf("rows not in user order:\n%s", out)
	}
}
