package report

import (
	"strings"
	"testing"

	"elba/internal/store"
)

func engineResult(users int, engine string, x, p50, p90, appCPU float64) store.Result {
	return store.Result{
		Key:        store.Key{Experiment: "eng", Topology: "1-1-1", Users: users, WriteRatioPct: 15},
		Completed:  true,
		Engine:     engine,
		Throughput: x,
		AvgRTms:    p50 * 1.1,
		P50ms:      p50,
		P90ms:      p90,
		TierCPU:    map[string]float64{"web": 20, "app": appCPU, "db": 30},
	}
}

func TestTableEngineSummary(t *testing.T) {
	st := store.New()
	st.Put(engineResult(100, "", 40, 80, 120, 50))
	st.Put(engineResult(1000, "fluid", 60, 200, 300, 90))
	failed := engineResult(2000, "fluid", 0, 0, 0, 0)
	failed.Completed = false
	st.Put(failed)

	out := TableEngineSummary(st, "eng")
	if !strings.Contains(out, "des") {
		t.Errorf("untagged result not labeled des:\n%s", out)
	}
	if !strings.Contains(out, "fluid") {
		t.Errorf("fluid engine missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 3 data rows.
	if len(lines) < 5 {
		t.Fatalf("summary too short:\n%s", out)
	}
	// Rows are in user order and the failed trial renders dashes.
	if !strings.Contains(lines[len(lines)-1], "2000") ||
		!strings.Contains(lines[len(lines)-1], "-") {
		t.Errorf("failed fluid trial row wrong:\n%s", out)
	}
}

func TestTableEngineDivergence(t *testing.T) {
	exact := store.New()
	fluid := store.New()
	// In band on everything: +2% X, -3% p50, +4% p90.
	exact.Put(engineResult(100, "", 50, 100, 150, 50))
	fluid.Put(engineResult(100, "fluid", 51, 97, 156, 50))
	// Out of band on p90 only, verdicts still agree (both app-cpu).
	exact.Put(engineResult(500, "", 33.5, 3400, 4300, 96))
	fluid.Put(engineResult(500, "fluid", 33.3, 3350, 5100, 100))

	out := TableEngineDivergence(exact, fluid, "eng", 0.05)
	rows := strings.Split(strings.TrimSpace(out), "\n")
	var inBand, overload string
	for _, l := range rows {
		if strings.Contains(l, " 100 ") || strings.HasSuffix(l, "yes") && strings.Contains(l, "100") {
			if strings.Contains(l, "+2.0%") {
				inBand = l
			}
		}
		if strings.Contains(l, "500") {
			overload = l
		}
	}
	if inBand == "" {
		t.Fatalf("in-band row missing:\n%s", out)
	}
	if strings.Contains(inBand, "*") {
		t.Errorf("in-band deltas flagged:\n%s", inBand)
	}
	if overload == "" {
		t.Fatalf("overload row missing:\n%s", out)
	}
	if !strings.Contains(overload, "+18.6%*") {
		t.Errorf("out-of-band p90 not starred: %s", overload)
	}
	if !strings.Contains(overload, "app-cpu") || !strings.Contains(overload, "yes") {
		t.Errorf("verdict agreement lost: %s", overload)
	}
	// ΔX and Δp50 stay unstarred at deep overload — the structural
	// divergence is confined to the tail.
	if c := strings.Count(overload, "*"); c != 1 {
		t.Errorf("overload row has %d stars, want exactly 1: %s", c, overload)
	}
}

func TestTableEngineDivergenceMissingFluidPoint(t *testing.T) {
	exact := store.New()
	fluid := store.New()
	exact.Put(engineResult(100, "", 50, 100, 150, 50))
	out := TableEngineDivergence(exact, fluid, "eng", 0.05)
	if !strings.Contains(out, "-") {
		t.Errorf("missing fluid point should render dashes:\n%s", out)
	}
	if strings.Contains(out, "NO") {
		t.Errorf("missing point must not claim disagreement:\n%s", out)
	}
}
