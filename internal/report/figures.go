package report

import (
	"fmt"
	"sort"
	"strings"

	"elba/internal/bottleneck"
	"elba/internal/cim"
	"elba/internal/mulini"
	"elba/internal/store"
)

// Table1Software renders the paper's Table 1: software configurations per
// benchmark and tier.
func Table1Software(cat *cim.Catalog) string {
	t := NewTable("Table 1. Summary of software configurations",
		"Benchmark", "Tier", "Components")
	for _, benchmark := range []string{"rubis", "rubbos"} {
		for _, tier := range []string{"db", "app", "web"} {
			var names []string
			for _, s := range cat.SoftwareForTier(benchmark, tier) {
				if s.Name == "sysstat" {
					continue
				}
				names = append(names, fmt.Sprintf("%s %s", s.Name, s.Version))
			}
			if len(names) > 0 {
				t.AddRow(benchmark, tier, strings.Join(names, ", "))
			}
		}
	}
	return t.String()
}

// Table2Hardware renders the paper's Table 2: hardware platforms.
func Table2Hardware(cat *cim.Catalog) string {
	t := NewTable("Table 2. Summary of hardware platforms",
		"Platform", "Node type", "Nodes", "Processor", "Memory", "Network", "Disk")
	for _, p := range cat.Platforms {
		for _, pool := range p.Pools {
			t.AddRow(
				p.Name, pool.NodeType,
				fmt.Sprint(pool.NodeCount),
				fmt.Sprintf("%d x %d MHz", pool.CPUCount, pool.CPUMHz),
				fmt.Sprintf("%d MB", pool.MemoryMB),
				fmt.Sprintf("%d Mbps", pool.NetworkMbps),
				fmt.Sprintf("%d RPM", pool.DiskRPM),
			)
		}
	}
	return t.String()
}

// ScaleRow is one experiment set's row in Table 3.
type ScaleRow struct {
	// Set names the experiment set and the paper figure it feeds.
	Set    string
	Figure string
	// Scale is the Mulini generation accounting.
	Scale mulini.ScaleReport
	// CollectedBytes is the monitoring data volume gathered while
	// running the set.
	CollectedBytes int
}

// Table3Scale renders the paper's Table 3: the management scale of the
// experiment sets (config lines, generated-script KLOC, machines,
// configurations, collected data).
func Table3Scale(rows []ScaleRow) string {
	t := NewTable("Table 3. Scale of experiments run",
		"Experiment set", "Figure", "Config lines (files)", "Generated script lines",
		"Machines", "Configurations", "Collected perf. data")
	for _, r := range rows {
		t.AddRow(
			r.Set, r.Figure,
			fmt.Sprintf("%d (%d files)", r.Scale.ConfigLines, r.Scale.ConfigFiles),
			fmt.Sprintf("%.1f KLOC", float64(r.Scale.ScriptLines)/1000),
			fmt.Sprint(r.Scale.MachineCount),
			fmt.Sprint(r.Scale.Configurations),
			formatBytes(r.CollectedBytes),
		)
	}
	return t.String()
}

func formatBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.0f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Table4Scripts renders the paper's Table 4: examples of generated
// scripts with line counts, drawn from a real generated bundle.
func Table4Scripts(b *mulini.Bundle) string {
	t := NewTable("Table 4. Examples of generated scripts",
		"Generated script", "Line count", "Comment")
	for _, a := range b.ByKind(mulini.Script) {
		t.AddRow(a.Path, fmt.Sprint(a.Lines()), a.Comment)
	}
	return t.String()
}

// Table5Configs renders the paper's Table 5: configuration files modified
// by Mulini.
func Table5Configs(b *mulini.Bundle) string {
	t := NewTable("Table 5. Examples of configuration files modified",
		"Configuration file", "Line count", "Comment")
	for _, kind := range []mulini.ArtifactKind{mulini.Config, mulini.Data} {
		for _, a := range b.ByKind(kind) {
			t.AddRow(a.Path, fmt.Sprint(a.Lines()), a.Comment)
		}
	}
	return t.String()
}

// SurfaceGrid renders a users × write-ratio surface (Figures 1–3) as an
// aligned grid; failed cells render as "-".
func SurfaceGrid(title, unit string, sf store.Surface) string {
	headers := []string{"write\\users"}
	for _, u := range sf.Users {
		headers = append(headers, fmt.Sprint(u))
	}
	t := NewTable(fmt.Sprintf("%s (%s)", title, unit), headers...)
	for i, wr := range sf.WriteRatios {
		row := []string{fmt.Sprintf("%g%%", wr)}
		for j := range sf.Users {
			cell := sf.Cells[i][j]
			if !cell.OK {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.0f", cell.Value))
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

// SurfaceCSV renders a surface as CSV with one row per write ratio.
func SurfaceCSV(sf store.Surface) string {
	var b strings.Builder
	b.WriteString("write_ratio_pct")
	for _, u := range sf.Users {
		fmt.Fprintf(&b, ",u%d", u)
	}
	b.WriteString("\n")
	for i, wr := range sf.WriteRatios {
		fmt.Fprintf(&b, "%g", wr)
		for j := range sf.Users {
			cell := sf.Cells[i][j]
			if !cell.OK {
				b.WriteString(",")
			} else {
				fmt.Fprintf(&b, ",%.2f", cell.Value)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Series is one named line in a multi-series figure.
type Series struct {
	Name   string
	Points []store.SeriesPoint
}

// SeriesTable renders multiple series against a shared x axis (Figures
// 4–8): one column per series, gaps for failed or absent points.
func SeriesTable(title, xLabel, unit string, series []Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	var xAxis []float64
	for x := range xs {
		xAxis = append(xAxis, x)
	}
	sort.Float64s(xAxis)

	headers := []string{xLabel}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s (%s)", title, unit), headers...)
	for _, x := range xAxis {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x && p.OK {
					cell = fmt.Sprintf("%.0f", p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.String()
}

// SeriesChart renders series as an aligned table followed by an ASCII
// line plot — the terminal form of the paper's figures.
func SeriesChart(title, xLabel, unit string, series []Series) string {
	var b strings.Builder
	b.WriteString(SeriesTable(title, xLabel, unit, series))
	b.WriteString("\n")
	p := NewPlot("", xLabel, unit, 72, 16)
	for _, s := range series {
		p.Add(s)
	}
	b.WriteString(p.String())
	return b.String()
}

// SeriesCSV renders multiple series as CSV against a shared x axis.
func SeriesCSV(xLabel string, series []Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	var xAxis []float64
	for x := range xs {
		xAxis = append(xAxis, x)
	}
	sort.Float64s(xAxis)
	var b strings.Builder
	b.WriteString(xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Name)
	}
	b.WriteString("\n")
	for _, x := range xAxis {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			val := ""
			for _, p := range s.Points {
				if p.X == x && p.OK {
					val = fmt.Sprintf("%.2f", p.Y)
					break
				}
			}
			fmt.Fprintf(&b, ",%s", val)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Difference computes the pointwise difference a−b between two series,
// skipping x values missing from either — the paper's Figure 7 transform.
func Difference(name string, a, b []store.SeriesPoint) Series {
	bv := map[float64]store.SeriesPoint{}
	for _, p := range b {
		bv[p.X] = p
	}
	var out []store.SeriesPoint
	for _, pa := range a {
		if pb, ok := bv[pa.X]; ok && pa.OK && pb.OK {
			out = append(out, store.SeriesPoint{X: pa.X, Y: pa.Y - pb.Y, OK: true})
		}
	}
	return Series{Name: name, Points: out}
}

// Table6Improvement renders the paper's Table 6: percent response-time
// improvement over a base configuration at a fixed workload, for an
// (app × db) grid of topologies. rts maps "a-d" (app-db counts) to the
// observed mean response time.
func Table6Improvement(baseRT float64, appCounts, dbCounts []int, rts map[string]float64) string {
	headers := []string{"App \\ DB servers"}
	for _, d := range dbCounts {
		headers = append(headers, fmt.Sprintf("%d DB (%%)", d))
	}
	t := NewTable("Table 6. Response-time improvement over 1-1-1 (percent)", headers...)
	for _, a := range appCounts {
		row := []string{fmt.Sprintf("%d app", a)}
		for _, d := range dbCounts {
			key := fmt.Sprintf("%d-%d", a, d)
			rt, ok := rts[key]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", bottleneck.Improvement(baseRT, rt)))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// InteractionBreakdown renders a trial's per-interaction mean response
// times, sorted slowest first — the per-state output the RUBiS and RUBBoS
// client emulators produce for each run.
func InteractionBreakdown(r store.Result) string {
	t := NewTable(fmt.Sprintf("Per-interaction response time, %s", r.Key.String()),
		"Interaction", "Mean RT (ms)")
	type row struct {
		name string
		rt   float64
	}
	rows := make([]row, 0, len(r.PerInteraction))
	for name, rt := range r.PerInteraction {
		rows = append(rows, row{name, rt})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].rt != rows[j].rt {
			return rows[i].rt > rows[j].rt
		}
		return rows[i].name < rows[j].name
	})
	for _, r := range rows {
		t.AddRow(r.name, fmt.Sprintf("%.1f", r.rt))
	}
	return t.String()
}

// TableAvailability renders the failure/availability summary for one
// experiment under fault injection: per configuration, how many workload
// points completed versus failed, the trial attempts consumed by retry
// budgets, deployment-step retries, and the injected fault volume — the
// fault-injection companion to Table 7's missing squares.
func TableAvailability(st *store.Store, experiment string) string {
	t := NewTable(fmt.Sprintf("Availability under fault injection — %s", experiment),
		"Config (w-a-d)", "Points", "Completed", "Failed", "Availability",
		"Attempts", "Deploy retries", "Fault windows", "Injected errs")
	for _, topo := range st.Topologies(experiment) {
		rs := st.Filter(func(r store.Result) bool {
			return r.Key.Experiment == experiment && r.Key.Topology == topo
		})
		if len(rs) == 0 {
			continue
		}
		var completed, attempts, deployRetries, windows int
		var injected int64
		for _, r := range rs {
			if r.Completed {
				completed++
			}
			if r.Attempts > 0 {
				attempts += r.Attempts
			} else {
				attempts++ // no retry budget: one attempt per point
			}
			deployRetries += r.DeployRetries
			windows += len(r.FaultEvents)
			injected += r.InjectedErrors
		}
		failed := len(rs) - completed
		avail := float64(completed) / float64(len(rs)) * 100
		t.AddRow(topo,
			fmt.Sprint(len(rs)), fmt.Sprint(completed), fmt.Sprint(failed),
			fmt.Sprintf("%.1f%%", avail), fmt.Sprint(attempts),
			fmt.Sprint(deployRetries), fmt.Sprint(windows), fmt.Sprint(injected))
	}
	return t.String()
}

// TableResourceUtilization renders mean per-tier utilization of every
// contended resource against the user sweep for one configuration: the
// multi-resource generalization of Figure 8's CPU curves. A column
// appears only when at least one trial observed that (tier, resource)
// pair, so CPU-only experiments show the classic three columns.
func TableResourceUtilization(st *store.Store, experiment, topology string, writeRatioPct float64) string {
	rs := st.Filter(func(r store.Result) bool {
		return r.Key.Experiment == experiment && r.Key.Topology == topology &&
			r.Key.WriteRatioPct == writeRatioPct
	})
	sort.Slice(rs, func(i, j int) bool { return rs[i].Key.Users < rs[j].Key.Users })

	type col struct{ tier, res string }
	var cols []col
	have := map[col]bool{}
	for _, tier := range []string{"web", "app", "db"} {
		for _, res := range []string{"cpu", "disk", "net"} {
			c := col{tier, res}
			for _, r := range rs {
				var m map[string]float64
				switch res {
				case "cpu":
					m = r.TierCPU
				case "disk":
					m = r.TierDisk
				default:
					m = r.TierNet
				}
				if _, ok := m[tier]; ok {
					have[c] = true
					break
				}
			}
			if have[c] {
				cols = append(cols, c)
			}
		}
	}

	headers := []string{"Users"}
	for _, c := range cols {
		headers = append(headers, fmt.Sprintf("%s %s", c.tier, c.res))
	}
	t := NewTable(fmt.Sprintf("Per-tier resource utilization (%%) — %s %s at %g%% writes",
		experiment, topology, writeRatioPct), headers...)
	for _, r := range rs {
		row := []string{fmt.Sprint(r.Key.Users)}
		for _, c := range cols {
			var m map[string]float64
			switch c.res {
			case "cpu":
				m = r.TierCPU
			case "disk":
				m = r.TierDisk
			default:
				m = r.TierNet
			}
			if u, ok := m[c.tier]; ok {
				row = append(row, fmt.Sprintf("%.1f", u))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Table7Throughput renders the paper's Table 7: average throughput per
// configuration and load, with failed trials as blank cells.
func Table7Throughput(st *store.Store, experiment string, writeRatioPct float64, topologies []string, loads []int) string {
	headers := []string{"Config (w-a-d)"}
	for _, l := range loads {
		headers = append(headers, fmt.Sprint(l))
	}
	t := NewTable("Table 7. Measured average throughput (req/s)", headers...)
	for _, topo := range topologies {
		row := []string{topo}
		for _, l := range loads {
			r, ok := st.Get(store.Key{
				Experiment: experiment, Topology: topo,
				Users: l, WriteRatioPct: writeRatioPct,
			})
			switch {
			case !ok:
				row = append(row, "-")
			case !r.Completed:
				row = append(row, "") // the paper's missing squares
			default:
				row = append(row, fmt.Sprintf("%.1f", r.Throughput))
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}
