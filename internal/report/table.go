// Package report renders the paper's tables and figures from the results
// store, the CIM catalog, and generated Mulini bundles. Figures are
// emitted both as aligned ASCII (for terminals and EXPERIMENTS.md) and as
// CSV series (for plotting tools).
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned-text table builder.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are
// dropped to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...interface{}) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored Markdown, for inclusion
// in documents like EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			fmt.Fprintf(&b, " %s |", strings.ReplaceAll(c, "|", "\\|"))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = "---"
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
