package report

import (
	"fmt"
	"sort"
	"strings"

	"elba/internal/metrics"
	"elba/internal/store"
)

// FolderEvent is an online observation derived from the folded stream:
// the knee of a throughput series, the onset of SLO violations, or the
// first failed trial of a series — flagged the moment the triggering
// trial commits, not after the campaign ends.
type FolderEvent struct {
	// Kind is "knee", "slo-onset", or "failure-onset".
	Kind string `json:"kind"`
	// Key is the trial that triggered the event.
	Key store.Key `json:"key"`
	// Message is a one-line human rendering.
	Message string `json:"message"`
}

// expAgg is one experiment's running aggregate.
type expAgg struct {
	trials    int
	completed int
	requests  int64
	errors    int64
	thruSum   float64
	maxRTms   float64

	// sketch merges every trial's response-time digest in commit order;
	// approx marks streams that included sketch-free results folded in
	// through the coarse weighted fallback (stored percentiles as
	// weighted points), so the rendered quantiles are flagged.
	sketch *metrics.TDigest
	approx bool

	tierCPUSum map[string]float64
	tierCPUCnt map[string]int

	sloAsserted   bool
	sloWindows    int
	sloViolations int
	scaleEvents   int
}

// seriesKey identifies one throughput series: a topology swept over the
// population axis at one write ratio.
type seriesKey struct {
	experiment string
	topology   string
	wr         float64
}

// seriesState is the per-series online-detection state.
type seriesState struct {
	knee        KneeDetector
	sloOnsetAt  int
	failOnsetAt int
}

// Folder consumes one store.Result at a time — live from a runner's
// OnTrial hook or replayed from a campaign's result log — and maintains
// the campaign's running tables in O(sketch) memory: counters, running
// means, and one merged t-digest per experiment, never the trials
// themselves. Folding the same result sequence always produces the same
// tables and the same events, which is what makes the append-only log a
// complete record of a streamed campaign.
//
// Folder is not safe for concurrent use; callers folding from multiple
// goroutines (Runner.OnTrial with Parallel > 1) must serialize Ingest.
type Folder struct {
	order  []string
	exps   map[string]*expAgg
	series map[seriesKey]*seriesState
}

// NewFolder creates an empty folder.
func NewFolder() *Folder {
	return &Folder{
		exps:   map[string]*expAgg{},
		series: map[seriesKey]*seriesState{},
	}
}

// Ingest folds one result into the running tables and returns any
// events it triggered (nil for the common quiet trial). Steady-state
// ingestion allocates nothing: aggregates are allocated once per
// experiment and series, and events only materialize when fired.
func (f *Folder) Ingest(r store.Result) []FolderEvent {
	name := r.Key.Experiment
	agg, ok := f.exps[name]
	if !ok {
		agg = &expAgg{
			sketch:     metrics.NewTDigest(metrics.DefaultTDigestCompression),
			tierCPUSum: map[string]float64{},
			tierCPUCnt: map[string]int{},
		}
		f.exps[name] = agg
		f.order = append(f.order, name)
	}
	agg.trials++
	if r.Completed {
		agg.completed++
	}
	agg.requests += r.Requests
	agg.errors += r.Errors
	agg.thruSum += r.Throughput
	if r.MaxRTms > agg.maxRTms {
		agg.maxRTms = r.MaxRTms
	}
	switch {
	case r.RTSketch != nil:
		agg.sketch.Merge(r.RTSketch)
	case r.Requests > 0:
		// Sketch-free result (historical data, or the fluid engine, which
		// has no per-request stream): fold the stored percentiles in as
		// weighted points. Coarse — the quantile columns are flagged "~"
		// once any such result is present.
		foldPercentiles(agg.sketch, r)
		agg.approx = true
	}
	for tier, u := range r.TierCPU {
		agg.tierCPUSum[tier] += u
		agg.tierCPUCnt[tier]++
	}
	if r.SLOAssert != "" {
		agg.sloAsserted = true
		agg.sloWindows += r.SLOWindows
		agg.sloViolations += r.SLOViolations
	}
	agg.scaleEvents += len(r.ScaleEvents)

	sk := seriesKey{experiment: name, topology: r.Key.Topology, wr: r.Key.WriteRatioPct}
	ss, ok := f.series[sk]
	if !ok {
		ss = &seriesState{}
		f.series[sk] = ss
	}
	var events []FolderEvent
	if r.Completed && ss.knee.Observe(r.Key.Users, r.Throughput) {
		events = append(events, FolderEvent{
			Kind: "knee",
			Key:  r.Key,
			Message: fmt.Sprintf("knee: %s/%s w=%g%% throughput flattens at %d users (%.1f req/s)",
				name, r.Key.Topology, r.Key.WriteRatioPct, r.Key.Users, r.Throughput),
		})
	}
	if r.SLOViolations > 0 && ss.sloOnsetAt == 0 {
		ss.sloOnsetAt = r.Key.Users
		events = append(events, FolderEvent{
			Kind: "slo-onset",
			Key:  r.Key,
			Message: fmt.Sprintf("slo-onset: %s/%s w=%g%% first violates its SLO at %d users (%d/%d windows)",
				name, r.Key.Topology, r.Key.WriteRatioPct, r.Key.Users, r.SLOViolations, r.SLOWindows),
		})
	}
	if !r.Completed && ss.failOnsetAt == 0 {
		ss.failOnsetAt = r.Key.Users
		events = append(events, FolderEvent{
			Kind: "failure-onset",
			Key:  r.Key,
			Message: fmt.Sprintf("failure-onset: %s/%s w=%g%% fails to complete at %d users (%s)",
				name, r.Key.Topology, r.Key.WriteRatioPct, r.Key.Users, r.FailReason),
		})
	}
	return events
}

// foldPercentiles adds a sketch-free result's stored percentiles to the
// digest as weighted points approximating the trial's distribution: half
// the requests at the median, most of the rest at p90, the tail at p99
// and the maximum.
func foldPercentiles(d *metrics.TDigest, r store.Result) {
	req := uint64(r.Requests)
	if req < 10 {
		d.Add(r.P50ms, req)
		return
	}
	wMax := req / 100
	if wMax == 0 {
		wMax = 1
	}
	w99 := req * 9 / 100
	if w99 == 0 {
		w99 = 1
	}
	w90 := req * 2 / 5
	w50 := req - w90 - w99 - wMax
	d.Add(r.P50ms, w50)
	d.Add(r.P90ms, w90)
	d.Add(r.P99ms, w99)
	d.Add(r.MaxRTms, wMax)
}

// Experiments lists the folded experiments in first-seen order.
func (f *Folder) Experiments() []string { return f.order }

// Trials reports the total number of results folded so far.
func (f *Folder) Trials() int {
	n := 0
	for _, agg := range f.exps {
		n += agg.trials
	}
	return n
}

// Quantiles reports an experiment's running campaign-level response-time
// quantiles in milliseconds from the merged sketch, plus whether any
// folded result lacked a sketch (making the figures approximate).
func (f *Folder) Quantiles(experiment string, qs ...float64) (vals []float64, approx bool, ok bool) {
	agg, found := f.exps[experiment]
	if !found || agg.sketch.Count() == 0 {
		return nil, false, false
	}
	vals = make([]float64, len(qs))
	for i, q := range qs {
		vals[i] = agg.sketch.Quantile(q)
	}
	return vals, agg.approx, true
}

// Sketch exposes an experiment's merged response-time digest (nil when
// the experiment is unknown). Callers must not mutate it.
func (f *Folder) Sketch(experiment string) *metrics.TDigest {
	if agg, ok := f.exps[experiment]; ok {
		return agg.sketch
	}
	return nil
}

// Knees lists every detected knee and onset so far, in a deterministic
// (experiment, topology, write-ratio) order.
func (f *Folder) Knees() []KneeRow {
	keys := make([]seriesKey, 0, len(f.series))
	for k, ss := range f.series {
		if ss.knee.Knee() == 0 && ss.sloOnsetAt == 0 && ss.failOnsetAt == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].experiment != keys[j].experiment {
			return keys[i].experiment < keys[j].experiment
		}
		if keys[i].topology != keys[j].topology {
			return keys[i].topology < keys[j].topology
		}
		return keys[i].wr < keys[j].wr
	})
	rows := make([]KneeRow, len(keys))
	for i, k := range keys {
		ss := f.series[k]
		rows[i] = KneeRow{
			Experiment:    k.experiment,
			Topology:      k.topology,
			WriteRatioPct: k.wr,
			KneeUsers:     ss.knee.Knee(),
			SLOOnsetUsers: ss.sloOnsetAt,
			FailUsers:     ss.failOnsetAt,
		}
	}
	return rows
}

// KneeRow is one series' detected knee and onsets (0 = not observed).
type KneeRow struct {
	Experiment    string  `json:"experiment"`
	Topology      string  `json:"topology"`
	WriteRatioPct float64 `json:"write_ratio_pct"`
	KneeUsers     int     `json:"knee_users,omitempty"`
	SLOOnsetUsers int     `json:"slo_onset_users,omitempty"`
	FailUsers     int     `json:"fail_users,omitempty"`
}

// Tables renders the running tables: the campaign summary (throughput
// and sketch quantiles per experiment), mean tier utilization, the
// SLO/scaling counters when any experiment observed them, and the
// detected knees. The rendering is a pure function of the folded
// multiset plus the fold order of each experiment's digests, so a log
// replay reproduces it byte-for-byte.
func (f *Folder) Tables() string {
	var b strings.Builder

	sum := NewTable("Streamed campaign summary",
		"experiment", "trials", "done", "requests", "errors",
		"avg thr (req/s)", "p50 (ms)", "p90 (ms)", "p99 (ms)", "max (ms)")
	for _, name := range f.order {
		agg := f.exps[name]
		mark := ""
		if agg.approx {
			mark = "~"
		}
		q := func(p float64) string {
			if agg.sketch.Count() == 0 {
				return "-"
			}
			return fmt.Sprintf("%s%.1f", mark, agg.sketch.Quantile(p))
		}
		avgThr := 0.0
		if agg.trials > 0 {
			avgThr = agg.thruSum / float64(agg.trials)
		}
		sum.AddRow(name,
			fmt.Sprintf("%d", agg.trials),
			fmt.Sprintf("%d", agg.completed),
			fmt.Sprintf("%d", agg.requests),
			fmt.Sprintf("%d", agg.errors),
			fmt.Sprintf("%.1f", avgThr),
			q(0.50), q(0.90), q(0.99),
			fmt.Sprintf("%.1f", agg.maxRTms))
	}
	b.WriteString(sum.String())

	util := NewTable("Streamed resource utilization (mean CPU %)",
		"experiment", "tier", "cpu %")
	for _, name := range f.order {
		agg := f.exps[name]
		tiers := make([]string, 0, len(agg.tierCPUSum))
		for tier := range agg.tierCPUSum {
			tiers = append(tiers, tier)
		}
		sort.Strings(tiers)
		for _, tier := range tiers {
			util.AddRow(name, tier,
				fmt.Sprintf("%.1f", agg.tierCPUSum[tier]/float64(agg.tierCPUCnt[tier])))
		}
	}
	if util.Rows() > 0 {
		b.WriteString("\n")
		b.WriteString(util.String())
	}

	anySLO := false
	for _, agg := range f.exps {
		if agg.sloAsserted || agg.scaleEvents > 0 {
			anySLO = true
		}
	}
	if anySLO {
		slo := NewTable("Streamed SLO & scaling",
			"experiment", "slo windows", "violations", "scale events")
		for _, name := range f.order {
			agg := f.exps[name]
			if !agg.sloAsserted && agg.scaleEvents == 0 {
				continue
			}
			slo.AddRow(name,
				fmt.Sprintf("%d", agg.sloWindows),
				fmt.Sprintf("%d", agg.sloViolations),
				fmt.Sprintf("%d", agg.scaleEvents))
		}
		b.WriteString("\n")
		b.WriteString(slo.String())
	}

	if rows := f.Knees(); len(rows) > 0 {
		knees := NewTable("Detected knees & onsets",
			"experiment", "topology", "write %", "knee users", "slo onset", "first failure")
		cell := func(v int) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%d", v)
		}
		for _, r := range rows {
			knees.AddRow(r.Experiment, r.Topology,
				fmt.Sprintf("%g", r.WriteRatioPct),
				cell(r.KneeUsers), cell(r.SLOOnsetUsers), cell(r.FailUsers))
		}
		b.WriteString("\n")
		b.WriteString(knees.String())
	}
	return b.String()
}
