package report

import (
	"encoding/json"
	"strings"
	"testing"

	"elba/internal/bottleneck"
	"elba/internal/store"
	"elba/internal/trace"
)

// tracedStore builds a store with two traced results (one saturated, one
// not) and one untraced result, enough to exercise every trace table.
func tracedStore() *store.Store {
	st := store.New()
	mkTrace := func(tier string, share, queue float64) *trace.Report {
		return &trace.Report{
			Rate:    1,
			Sampled: 40,
			Verdict: trace.Verdict{Tier: tier, Share: share, QueueShare: queue, Traces: 40},
			Rows: []trace.DecompRow{
				{Interaction: "all", Tier: "web", Count: 40, MeanWaitMs: 0.1, P95WaitMs: 0.3, MeanSvcMs: 1, P95SvcMs: 2},
				{Interaction: "all", Tier: "app", Count: 40, MeanWaitMs: 5, P95WaitMs: 20, MeanSvcMs: 8, P95SvcMs: 12},
				{Interaction: "all", Tier: "db", Count: 40, MeanWaitMs: 1, P95WaitMs: 4, MeanSvcMs: 3, P95SvcMs: 6},
				{Interaction: "browse", Tier: "app", Count: 30, MeanWaitMs: 4, P95WaitMs: 18, MeanSvcMs: 7, P95SvcMs: 11},
			},
			Exemplars: []trace.Exemplar{{
				Interaction: "browse", Session: 3, IssuedSec: 12.5, RTms: 90,
				Outcome: "ok", CriticalTier: "app",
				Spans: []trace.SpanRecord{
					{Tier: "web", Station: "WEB0", StartSec: 12.5, WaitMs: 0, ServiceMs: 2},
					{Tier: "app", Station: "APP1", StartSec: 12.502, WaitMs: 60, ServiceMs: 20},
					{Tier: "db", Station: "DB0", StartSec: 12.582, WaitMs: 2, ServiceMs: 6},
				},
			}},
		}
	}
	st.Put(store.Result{
		Key:       store.Key{Experiment: "exp", Topology: "1-2-1", Users: 500, WriteRatioPct: 15},
		Completed: true,
		TierCPU:   map[string]float64{"web": 9, "app": 88, "db": 25},
		Trace:     mkTrace("app", 0.9, 0.8),
	})
	st.Put(store.Result{
		Key:       store.Key{Experiment: "exp", Topology: "1-2-1", Users: 100, WriteRatioPct: 15},
		Completed: true,
		TierCPU:   map[string]float64{"web": 2, "app": 18, "db": 6},
		Trace:     mkTrace("app", 0.7, 0.1),
	})
	st.Put(store.Result{
		Key:       store.Key{Experiment: "exp", Topology: "1-1-1", Users: 100, WriteRatioPct: 15},
		Completed: true,
	})
	return st
}

func TestTableTraceDecomp(t *testing.T) {
	out := TableTraceDecomp(tracedStore(), "exp")
	for _, want := range []string{"1-2-1", "all", "browse", "web", "app", "db", "Per-tier latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("decomposition table missing %q:\n%s", want, out)
		}
	}
	// Untraced results contribute no rows.
	if strings.Contains(out, "1-1-1") {
		t.Fatalf("untraced result leaked into decomposition table:\n%s", out)
	}
	// Canonical order: u=100 rows before u=500 rows.
	if strings.Index(out, "100") > strings.Index(out, "500") {
		t.Fatalf("rows out of canonical user order:\n%s", out)
	}
}

func TestTableTraceVerdict(t *testing.T) {
	out := TableTraceVerdict(tracedStore(), "exp", bottleneck.DefaultThresholds)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two traced rows
		t.Fatalf("verdict table has %d lines:\n%s", len(lines), out)
	}
	// The saturated point (app CPU 88%) agrees with the trace verdict.
	var saturatedRow string
	for _, l := range lines {
		if strings.Contains(l, "500") {
			saturatedRow = l
		}
	}
	if !strings.Contains(saturatedRow, "yes") {
		t.Fatalf("saturated point should agree:\n%s", out)
	}
	// The unsaturated point has no CPU verdict to compare against.
	for _, l := range lines {
		if strings.Contains(l, "100") && !strings.Contains(l, "-") {
			t.Fatalf("unsaturated point should render '-' for agreement:\n%s", out)
		}
	}
}

func TestTraceEventsJSONExport(t *testing.T) {
	data, err := TraceEventsJSON(tracedStore(), "exp")
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// Two traced results × (process meta + thread meta + root + 2 wait +
	// 3 service) — the web span has zero wait and emits no wait slice.
	if len(f.TraceEvents) == 0 {
		t.Fatalf("no events exported")
	}
	var roots, metas int
	for _, ev := range f.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.Name == "browse" {
				roots++
				if ev.Dur != 90_000 { // 90 ms in microseconds
					t.Fatalf("root duration = %f us, want 90000", ev.Dur)
				}
			}
		case "M":
			metas++
		}
	}
	if roots != 2 {
		t.Fatalf("exported %d root slices, want 2", roots)
	}
	if metas != 4 { // process_name + thread_name per group
		t.Fatalf("exported %d metadata events, want 4", metas)
	}
}
