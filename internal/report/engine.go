package report

import (
	"fmt"
	"sort"

	"elba/internal/bottleneck"
	"elba/internal/store"
)

// engineLabel names the trial engine that produced a result. Results
// predating the scaling clause carry no tag and are exact-DES by
// construction.
func engineLabel(r store.Result) string {
	if r.Engine == "" {
		return "des"
	}
	return r.Engine
}

// experimentResults returns an experiment's results in canonical key
// order (topology scale-out, then users, then write ratio).
func experimentResults(st *store.Store, experiment string) []store.Result {
	rs := st.Filter(func(r store.Result) bool { return r.Key.Experiment == experiment })
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i].Key, rs[j].Key
		if a.Topology != b.Topology {
			return a.Topology < b.Topology
		}
		if a.Users != b.Users {
			return a.Users < b.Users
		}
		return a.WriteRatioPct < b.WriteRatioPct
	})
	return rs
}

// TableEngineSummary lists an experiment's trials with their engine
// provenance: which points came from the exact per-session DES and which
// from the aggregated fluid approximation above the scaling threshold.
func TableEngineSummary(st *store.Store, experiment string) string {
	t := NewTable(fmt.Sprintf("Engine provenance: %s", experiment),
		"Config (w-a-d)", "Users", "Write%", "Engine", "X (req/s)", "p50 (ms)")
	for _, r := range experimentResults(st, experiment) {
		if !r.Completed {
			t.AddRow(r.Key.Topology, fmt.Sprint(r.Key.Users),
				fmt.Sprintf("%g", r.Key.WriteRatioPct), engineLabel(r), "-", "-")
			continue
		}
		t.AddRow(r.Key.Topology, fmt.Sprint(r.Key.Users),
			fmt.Sprintf("%g", r.Key.WriteRatioPct), engineLabel(r),
			fmt.Sprintf("%.1f", r.Throughput), fmt.Sprintf("%.1f", r.P50ms))
	}
	return t.String()
}

// relDelta is the signed relative difference of got versus want in
// percent; 0 when both are 0.
func relDelta(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 100
	}
	return (got - want) / want * 100
}

// divergenceCell renders a fluid-vs-exact delta, flagging values outside
// the tolerance band with a trailing '*'.
func divergenceCell(fluid, exact, relTol float64) string {
	d := relDelta(fluid, exact)
	flag := ""
	if d > relTol*100 || d < -relTol*100 {
		flag = "*"
	}
	return fmt.Sprintf("%+.1f%%%s", d, flag)
}

// TableEngineDivergence cross-tabulates an experiment run under both
// engines: for every population present in the exact store it reports
// the fluid engine's relative error on throughput, p50, and p90, and
// whether the two bottleneck verdicts agree. Deltas outside relTol are
// starred — the rendered form of the cross-validation battery's
// tolerance bands, and the quickest way to see where a spec leaves the
// fluid approximation's validity envelope.
func TableEngineDivergence(exact, fluid *store.Store, experiment string, relTol float64) string {
	t := NewTable(
		fmt.Sprintf("Exact vs fluid divergence: %s (band %.0f%%)", experiment, relTol*100),
		"Config (w-a-d)", "Users", "ΔX", "Δp50", "Δp90", "Verdict (exact)", "Verdict (fluid)", "Agree")
	for _, er := range experimentResults(exact, experiment) {
		fr, ok := fluid.Get(er.Key)
		if !ok {
			t.AddRow(er.Key.Topology, fmt.Sprint(er.Key.Users), "-", "-", "-", "-", "-", "-")
			continue
		}
		ve := bottleneck.Detect(er, bottleneck.DefaultThresholds)
		vf := bottleneck.Detect(fr, bottleneck.DefaultThresholds)
		agree := "yes"
		if ve.Tier != vf.Tier || ve.Resource != vf.Resource {
			agree = "NO"
		}
		t.AddRow(er.Key.Topology, fmt.Sprint(er.Key.Users),
			divergenceCell(fr.Throughput, er.Throughput, relTol),
			divergenceCell(fr.P50ms, er.P50ms, relTol),
			divergenceCell(fr.P90ms, er.P90ms, relTol),
			fmt.Sprintf("%s-%s", ve.Tier, ve.Resource),
			fmt.Sprintf("%s-%s", vf.Tier, vf.Resource),
			agree)
	}
	return t.String()
}
