package report

import (
	"strings"
	"testing"

	"elba/internal/cim"
	"elba/internal/mulini"
	"elba/internal/spec"
	"elba/internal/store"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "BB")
	tb.AddRow("x", "y")
	tb.AddRow("longer") // short row padded
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("missing rule:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRowf("%d|%s", 42, "x")
	if !strings.Contains(tb.String(), "42") {
		t.Fatalf("AddRowf failed:\n%s", tb.String())
	}
}

func catalogAndBundle(t *testing.T) (*cim.Catalog, *mulini.Bundle) {
	t.Helper()
	cat, err := cim.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := spec.Parse(`experiment "rep" {
		benchmark rubis; platform emulab; appserver jonas;
		topology { web 1; app 2; db 2; }
		workload { users 100; writeratio 15; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mulini.NewGenerator(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.Generate(doc.Experiments[0])
	if err != nil {
		t.Fatal(err)
	}
	return cat, ds[0].Bundle
}

func TestTable1And2(t *testing.T) {
	cat, _ := catalogAndBundle(t)
	t1 := Table1Software(cat)
	for _, want := range []string{"rubis", "rubbos", "mysql 4.1 Max", "weblogic 8.1", "apache"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2Hardware(cat)
	for _, want := range []string{"warp", "rohan", "emulab", "2 x 3060 MHz", "600 MHz", "56"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}

func TestTable3(t *testing.T) {
	out := Table3Scale([]ScaleRow{{
		Set: "rubis-baseline", Figure: "Figure 1",
		Scale: mulini.ScaleReport{
			Configurations: 1, MachineCount: 4,
			ScriptLines: 2500, ScriptFiles: 26,
			ConfigLines: 150, ConfigFiles: 9,
		},
		CollectedBytes: 3 << 20,
	}})
	for _, want := range []string{"rubis-baseline", "2.5 KLOC", "3 MB", "150 (9 files)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4And5(t *testing.T) {
	_, b := catalogAndBundle(t)
	t4 := Table4Scripts(b)
	for _, want := range []string{"run.sh", "JONAS1_install.sh", "SYS_MON_JONAS1_ignition.sh"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
	t5 := Table5Configs(b)
	for _, want := range []string{"workers2.properties", "mysqldb-raidb1-elba.xml", "monitorlocal.properties"} {
		if !strings.Contains(t5, want) {
			t.Errorf("Table 5 missing %q", want)
		}
	}
}

func seededStore() *store.Store {
	st := store.New()
	for _, u := range []int{50, 100} {
		for _, w := range []float64{0, 10} {
			st.Put(store.Result{
				Key:        store.Key{Experiment: "e", Topology: "1-1-1", Users: u, WriteRatioPct: w},
				Completed:  true,
				AvgRTms:    float64(u) + w,
				Throughput: float64(u) / 7,
				TierCPU:    map[string]float64{"app": 50},
			})
		}
	}
	// one failed cell
	st.Put(store.Result{
		Key: store.Key{Experiment: "e", Topology: "1-1-1", Users: 150, WriteRatioPct: 0},
	})
	return st
}

func TestSurfaceGridAndCSV(t *testing.T) {
	st := seededStore()
	sf := st.RTSurface("e", "1-1-1")
	grid := SurfaceGrid("Figure 1. RUBiS response time", "ms", sf)
	if !strings.Contains(grid, "0%") || !strings.Contains(grid, "150") {
		t.Fatalf("grid missing axes:\n%s", grid)
	}
	if !strings.Contains(grid, "-") {
		t.Fatalf("failed cell should render as '-':\n%s", grid)
	}
	csv := SurfaceCSV(sf)
	if !strings.HasPrefix(csv, "write_ratio_pct,u50,u100,u150\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "0,50.00,100.00,\n") {
		t.Fatalf("csv rows wrong:\n%s", csv)
	}
}

func TestSeriesTableAndCSV(t *testing.T) {
	st := seededStore()
	s1 := Series{Name: "1-1-1", Points: st.RTvsUsers("e", "1-1-1", 0)}
	out := SeriesTable("Figure 5", "users", "ms", []Series{s1})
	if !strings.Contains(out, "1-1-1") || !strings.Contains(out, "150") {
		t.Fatalf("series table wrong:\n%s", out)
	}
	csv := SeriesCSV("users", []Series{s1})
	if !strings.HasPrefix(csv, "users,1-1-1\n50,50.00\n") {
		t.Fatalf("series csv wrong:\n%s", csv)
	}
	// Failed point renders as empty cell in CSV and "-" in table.
	if !strings.Contains(csv, "150,\n") {
		t.Fatalf("failed point should be empty in csv:\n%s", csv)
	}
}

func TestDifference(t *testing.T) {
	a := []store.SeriesPoint{{X: 1, Y: 10, OK: true}, {X: 2, Y: 20, OK: true}, {X: 3, Y: 5, OK: false}}
	b := []store.SeriesPoint{{X: 1, Y: 4, OK: true}, {X: 2, Y: 25, OK: true}, {X: 3, Y: 1, OK: true}}
	d := Difference("a-b", a, b)
	if len(d.Points) != 2 {
		t.Fatalf("difference points = %v", d.Points)
	}
	if d.Points[0].Y != 6 || d.Points[1].Y != -5 {
		t.Fatalf("difference values wrong: %v", d.Points)
	}
}

func TestTable6(t *testing.T) {
	out := Table6Improvement(1000, []int{1, 2}, []int{1, 2}, map[string]float64{
		"1-1": 1000, "2-1": 157, "1-2": 870,
	})
	if !strings.Contains(out, "84.3") {
		t.Fatalf("Table 6 missing headline improvement:\n%s", out)
	}
	if !strings.Contains(out, "13.0") {
		t.Fatalf("Table 6 missing db improvement:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cell should render as '-':\n%s", out)
	}
}

func TestTable7(t *testing.T) {
	st := store.New()
	st.Put(store.Result{
		Key:       store.Key{Experiment: "e", Topology: "1-2-1", Users: 300, WriteRatioPct: 15},
		Completed: true, Throughput: 41.0,
	})
	st.Put(store.Result{
		Key: store.Key{Experiment: "e", Topology: "1-2-1", Users: 800, WriteRatioPct: 15},
		// failed: blank square
	})
	out := Table7Throughput(st, "e", 15, []string{"1-2-1"}, []int{300, 800, 900})
	if !strings.Contains(out, "41.0") {
		t.Fatalf("Table 7 missing throughput:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	// 800 failed → blank; 900 never run → "-".
	if !strings.Contains(last, "-") {
		t.Fatalf("never-run cell should be '-': %q", last)
	}
	if strings.Count(last, "41.0") != 1 {
		t.Fatalf("row wrong: %q", last)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{512, "512 B"},
		{2048, "2 KB"},
		{3 << 20, "3 MB"},
	}
	for _, c := range cases {
		if got := formatBytes(c.n); got != c.want {
			t.Errorf("formatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestInteractionBreakdown(t *testing.T) {
	r := store.Result{
		Key: store.Key{Experiment: "e", Topology: "1-1-1", Users: 100, WriteRatioPct: 15},
		PerInteraction: map[string]float64{
			"Home": 12.5, "AboutMe": 90.1, "ViewItem": 40.0,
		},
	}
	out := InteractionBreakdown(r)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// lines: title, header, rule, then rows sorted slowest first.
	if !strings.Contains(lines[3], "AboutMe") || !strings.Contains(lines[5], "Home") {
		t.Fatalf("breakdown order wrong:\n%s", out)
	}
}

func TestSeriesChartIncludesPlot(t *testing.T) {
	st := seededStore()
	s1 := Series{Name: "1-1-1", Points: st.RTvsUsers("e", "1-1-1", 0)}
	out := SeriesChart("Figure 5", "users", "ms", []Series{s1})
	if !strings.Contains(out, "users  1-1-1") {
		t.Fatalf("table half missing:\n%s", out)
	}
	if !strings.Contains(out, "* 1-1-1") {
		t.Fatalf("plot half missing:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Title", "A", "B")
	tb.AddRow("x|y", "z")
	md := tb.Markdown()
	if !strings.HasPrefix(md, "**Title**\n\n| A | B |\n| --- | --- |\n") {
		t.Fatalf("markdown header wrong:\n%s", md)
	}
	if !strings.Contains(md, `| x\|y | z |`) {
		t.Fatalf("pipe escaping wrong:\n%s", md)
	}
}
