package report

import (
	"fmt"
	"sort"

	"elba/internal/bottleneck"
	"elba/internal/store"
	"elba/internal/trace"
)

// Trace-report rendering: the observation apparatus extended inside the
// request path. Where the monitor observes tiers from the outside (CPU,
// network, disk), traced requests observe them from the inside — how long
// each hop queued and how long it was served — and these tables put the
// two views side by side.

// tracedResults selects the experiment's traced results in canonical key
// order (topology scale-out order, then write ratio, then users), so the
// rendered tables and exports are byte-identical however trials ran.
func tracedResults(st *store.Store, experiment string) []store.Result {
	var out []store.Result
	for _, topo := range st.Topologies(experiment) {
		rs := st.Filter(func(r store.Result) bool {
			return r.Key.Experiment == experiment && r.Key.Topology == topo && r.Trace != nil
		})
		sort.Slice(rs, func(i, j int) bool {
			a, b := rs[i].Key, rs[j].Key
			if a.WriteRatioPct != b.WriteRatioPct {
				return a.WriteRatioPct < b.WriteRatioPct
			}
			return a.Users < b.Users
		})
		out = append(out, rs...)
	}
	return out
}

// TableTraceDecomp renders the per-tier latency decomposition of every
// traced trial in an experiment: for each workload point and interaction
// class, the mean and 95th-percentile queue-wait and service time each
// tier contributed to the response.
func TableTraceDecomp(st *store.Store, experiment string) string {
	t := NewTable(fmt.Sprintf("Per-tier latency decomposition — %s", experiment),
		"Config (w-a-d)", "Users", "Write %", "Class", "Tier", "Reqs",
		"Wait ms (mean)", "Wait ms (p95)", "Svc ms (mean)", "Svc ms (p95)")
	for _, r := range tracedResults(st, experiment) {
		for _, row := range r.Trace.Rows {
			t.AddRow(r.Key.Topology,
				fmt.Sprint(r.Key.Users), fmt.Sprintf("%g", r.Key.WriteRatioPct),
				row.Interaction, row.Tier, fmt.Sprint(row.Count),
				fmt.Sprintf("%.2f", row.MeanWaitMs), fmt.Sprintf("%.2f", row.P95WaitMs),
				fmt.Sprintf("%.2f", row.MeanSvcMs), fmt.Sprintf("%.2f", row.P95SvcMs))
		}
	}
	return t.String()
}

// TableTraceVerdict renders the critical-path bottleneck attribution of
// every traced trial next to the utilization-based verdict from the same
// trial's monitoring data — the cross-check between the request's view
// and the resource monitor's view of the same saturation.
func TableTraceVerdict(st *store.Store, experiment string, th bottleneck.Thresholds) string {
	t := NewTable(fmt.Sprintf("Critical-path vs utilization bottleneck — %s", experiment),
		"Config (w-a-d)", "Users", "Write %", "Traced", "Critical tier",
		"Share", "Queued", "CPU verdict", "Agree")
	for _, r := range tracedResults(st, experiment) {
		tv := r.Trace.Verdict
		cv := bottleneck.Detect(r, th)
		agree := "-"
		// The verdicts are comparable only when both name a server tier:
		// an unsaturated system legitimately has a critical path (some
		// tier always dominates) but no CPU bottleneck.
		if cv.Saturated && tv.Tier != "none" {
			if cv.Tier == tv.Tier {
				agree = "yes"
			} else {
				agree = "NO"
			}
		}
		t.AddRow(r.Key.Topology,
			fmt.Sprint(r.Key.Users), fmt.Sprintf("%g", r.Key.WriteRatioPct),
			fmt.Sprint(tv.Traces), tv.Tier,
			fmt.Sprintf("%.0f%%", tv.Share*100), fmt.Sprintf("%.0f%%", tv.QueueShare*100),
			cv.Tier, agree)
	}
	return t.String()
}

// TraceEventsJSON exports every traced trial's exemplar traces as one
// Chrome trace-event file (chrome://tracing, Perfetto). Each workload
// point becomes one process row named by its store key; each exemplar
// becomes a thread under it. Experiments are emitted in argument order.
func TraceEventsJSON(st *store.Store, experiments ...string) ([]byte, error) {
	var groups []trace.ExemplarGroup
	for _, experiment := range experiments {
		for _, r := range tracedResults(st, experiment) {
			if len(r.Trace.Exemplars) == 0 {
				continue
			}
			groups = append(groups, trace.ExemplarGroup{
				Name:      r.Key.String(),
				Exemplars: r.Trace.Exemplars,
			})
		}
	}
	return trace.ChromeJSON(groups)
}
