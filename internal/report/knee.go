package report

// KneeDetector finds the knee of an ascending throughput-vs-population
// series online, one point at a time, as the sweep's trials commit. The
// paper locates the knee of the throughput curve after the fact, from
// the full table; the detector reproduces that reading incrementally:
// the first segment's slope is the series' linear regime, and the knee
// is the first point whose segment slope collapses below SlopeFraction
// of it (or goes negative — throughput actually falling). Detection is
// a pure function of the observed prefix, so a replayed result log
// flags exactly the knees the live fold flagged.
type KneeDetector struct {
	// SlopeFraction is the collapse threshold as a fraction of the first
	// segment's slope (0 selects the default 0.25). A lower fraction
	// flags only harder saturation.
	SlopeFraction float64

	points     int
	prevUsers  int
	prevThru   float64
	baseSlope  float64
	foundUsers int
}

// DefaultKneeSlopeFraction is the slope-collapse threshold used when a
// detector's SlopeFraction is unset: a segment gaining throughput at
// less than a quarter of the series' initial rate is past the knee.
const DefaultKneeSlopeFraction = 0.25

// Observe feeds the next (users, throughput) point of the ascending
// series and reports whether this point is the knee. It fires at most
// once per series; later points report false. Points that do not extend
// the population axis (replays, replicas at the same population) are
// ignored.
func (k *KneeDetector) Observe(users int, throughput float64) bool {
	if k.points == 0 {
		k.points = 1
		k.prevUsers, k.prevThru = users, throughput
		return false
	}
	if users <= k.prevUsers {
		return false
	}
	slope := (throughput - k.prevThru) / float64(users-k.prevUsers)
	k.prevUsers, k.prevThru = users, throughput
	k.points++
	if k.points == 2 {
		k.baseSlope = slope
		return false
	}
	if k.foundUsers != 0 {
		return false
	}
	frac := k.SlopeFraction
	if frac <= 0 {
		frac = DefaultKneeSlopeFraction
	}
	if slope < 0 || (k.baseSlope > 0 && slope < frac*k.baseSlope) {
		k.foundUsers = users
		return true
	}
	return false
}

// Knee reports the knee population, or 0 while none is detected.
func (k *KneeDetector) Knee() int { return k.foundUsers }
