package report

import (
	"math/rand/v2"
	"strings"
	"testing"

	"elba/internal/metrics"
	"elba/internal/store"
)

func TestKneeDetectorLinearThenFlat(t *testing.T) {
	// Linear rise to 700 users, then flat: the knee is the first flat
	// segment's endpoint.
	var k KneeDetector
	series := []struct {
		users int
		thru  float64
	}{
		{100, 50}, {200, 100}, {300, 150}, {400, 200}, {500, 250},
		{600, 300}, {700, 340}, {800, 345}, {900, 346}, {1000, 346},
	}
	knee := 0
	for _, p := range series {
		if k.Observe(p.users, p.thru) {
			if knee != 0 {
				t.Fatal("knee fired twice")
			}
			knee = p.users
		}
	}
	if knee != 800 {
		t.Fatalf("knee at %d users, want 800", knee)
	}
	if k.Knee() != 800 {
		t.Fatalf("Knee() = %d, want 800", k.Knee())
	}
}

func TestKneeDetectorThroughputDrop(t *testing.T) {
	// A throughput drop (retrograde region) is a knee even if the series
	// never flattened first.
	var k KneeDetector
	for _, p := range []struct {
		users int
		thru  float64
	}{{100, 50}, {200, 100}, {300, 90}} {
		if k.Observe(p.users, p.thru) && p.users != 300 {
			t.Fatalf("knee fired at %d users", p.users)
		}
	}
	if k.Knee() != 300 {
		t.Fatalf("Knee() = %d, want 300", k.Knee())
	}
}

func TestKneeDetectorNoKneeOnLinear(t *testing.T) {
	var k KneeDetector
	for u := 100; u <= 2000; u += 100 {
		if k.Observe(u, float64(u)/2) {
			t.Fatalf("knee fired at %d users on a purely linear series", u)
		}
	}
}

func TestKneeDetectorIgnoresNonAscending(t *testing.T) {
	var k KneeDetector
	k.Observe(100, 50)
	k.Observe(200, 100)
	k.Observe(200, 100) // replica at the same population
	k.Observe(100, 50)  // out of order
	if k.Observe(300, 150) {
		t.Fatal("knee fired on a linear series with repeated points")
	}
}

// sketchedResult builds a completed result carrying a real sketch.
func sketchedResult(exp, topo string, users int, wr, thru float64) store.Result {
	d := metrics.NewTDigest(metrics.DefaultTDigestCompression)
	rng := rand.New(rand.NewPCG(uint64(users), 7))
	for i := 0; i < 500; i++ {
		d.Observe(50 + 10*rng.NormFloat64() + float64(users)/10)
	}
	return store.Result{
		Key:        store.Key{Experiment: exp, Topology: topo, Users: users, WriteRatioPct: wr},
		Completed:  true,
		Requests:   500,
		Throughput: thru,
		TierCPU:    map[string]float64{"app": 40, "db": 20},
		RTSketch:   d,
	}
}

func TestFolderEventsAndTables(t *testing.T) {
	f := NewFolder()
	var kinds []string
	ingest := func(r store.Result) {
		for _, ev := range f.Ingest(r) {
			kinds = append(kinds, ev.Kind)
		}
	}
	// Rising then saturating series → knee.
	thru := []float64{50, 100, 150, 155, 156}
	for i, x := range thru {
		ingest(sketchedResult("exp-a", "1-2-1", 100*(i+1), 10, x))
	}
	// SLO onset and failure onset on a second series.
	r := sketchedResult("exp-a", "1-4-1", 100, 10, 60)
	r.SLOAssert = "p90 < 500ms"
	r.SLOWindows = 10
	ingest(r)
	r2 := sketchedResult("exp-a", "1-4-1", 200, 10, 110)
	r2.SLOAssert = "p90 < 500ms"
	r2.SLOWindows = 10
	r2.SLOViolations = 4
	ingest(r2)
	r3 := sketchedResult("exp-a", "1-4-1", 300, 10, 0)
	r3.Completed = false
	r3.FailReason = "error rate 12.0% exceeds 5%"
	ingest(r3)

	want := []string{"knee", "slo-onset", "failure-onset"}
	if len(kinds) != len(want) {
		t.Fatalf("events %v, want kinds %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %s, want %s", i, kinds[i], want[i])
		}
	}

	tables := f.Tables()
	for _, needle := range []string{
		"Streamed campaign summary", "exp-a",
		"Streamed resource utilization", "app",
		"Streamed SLO & scaling",
		"Detected knees & onsets", "1-2-1", "1-4-1",
	} {
		if !strings.Contains(tables, needle) {
			t.Errorf("tables missing %q:\n%s", needle, tables)
		}
	}
	rows := f.Knees()
	if len(rows) != 2 {
		t.Fatalf("Knees() = %d rows, want 2", len(rows))
	}
	if rows[0].Topology != "1-2-1" || rows[0].KneeUsers != 400 {
		t.Errorf("row 0 = %+v, want 1-2-1 knee at 400", rows[0])
	}
	if rows[1].SLOOnsetUsers != 200 || rows[1].FailUsers != 300 {
		t.Errorf("row 1 = %+v, want slo-onset 200 / failure 300", rows[1])
	}
}

// TestFolderReplayReproduces: folding the same result sequence twice
// yields byte-identical tables and the same events — the property that
// makes the result log a complete record of a streamed campaign.
func TestFolderReplayReproduces(t *testing.T) {
	build := func() (string, int) {
		f := NewFolder()
		events := 0
		for _, topo := range []string{"1-1-1", "1-2-1", "1-2-2"} {
			thrus := []float64{60, 120, 175, 185, 187, 187}
			for i, x := range thrus {
				r := sketchedResult("rep", topo, 100*(i+1), 25, x*float64(len(topo)))
				events += len(f.Ingest(r))
			}
		}
		return f.Tables(), events
	}
	t1, e1 := build()
	t2, e2 := build()
	if t1 != t2 {
		t.Fatalf("replayed tables differ:\n%s\n---\n%s", t1, t2)
	}
	if e1 != e2 {
		t.Fatalf("replayed event counts differ: %d vs %d", e1, e2)
	}
}

// TestFolderQuantilesMatchMergedSketch: the folder's campaign-level
// quantiles must equal merging the same trial sketches by hand in the
// same order.
func TestFolderQuantilesMatchMergedSketch(t *testing.T) {
	f := NewFolder()
	manual := metrics.NewTDigest(metrics.DefaultTDigestCompression)
	for i := 1; i <= 12; i++ {
		r := sketchedResult("q", "1-2-1", 100*i, 10, float64(40*i))
		manual.Merge(r.RTSketch)
		f.Ingest(r)
	}
	qs, approx, ok := f.Quantiles("q", 0.5, 0.9, 0.99)
	if !ok || approx {
		t.Fatalf("Quantiles: ok=%v approx=%v", ok, approx)
	}
	for i, q := range []float64{0.5, 0.9, 0.99} {
		if want := manual.Quantile(q); qs[i] != want {
			t.Errorf("q=%g: folder %g != manual merge %g", q, qs[i], want)
		}
	}
}

// TestFolderSketchFreeFallback: results without sketches still fold in
// (via the weighted-percentile fallback) and flag the quantiles
// approximate.
func TestFolderSketchFreeFallback(t *testing.T) {
	f := NewFolder()
	r := store.Result{
		Key:        store.Key{Experiment: "fluid", Topology: "1-2-1", Users: 5000, WriteRatioPct: 10},
		Completed:  true,
		Requests:   100000,
		Throughput: 900,
		P50ms:      40, P90ms: 80, P99ms: 200, MaxRTms: 500,
	}
	f.Ingest(r)
	qs, approx, ok := f.Quantiles("fluid", 0.5)
	if !ok || !approx {
		t.Fatalf("fallback fold: ok=%v approx=%v", ok, approx)
	}
	if qs[0] < 30 || qs[0] > 90 {
		t.Errorf("fallback p50 = %g, want near the stored 40ms", qs[0])
	}
	if !strings.Contains(f.Tables(), "~") {
		t.Error("approximate quantiles not flagged in tables")
	}
}

// TestFolderMemoryBounded is the O(sketch) demonstration: folding 10⁵
// trials leaves one capped digest per experiment and one small state
// record per series — never the trials themselves. The merged digest's
// centroid count must respect the documented cap at any volume.
func TestFolderMemoryBounded(t *testing.T) {
	f := NewFolder()
	const trials = 100000
	const seriesPer = 8
	rng := rand.New(rand.NewPCG(11, 13))
	d := metrics.NewTDigest(metrics.DefaultTDigestCompression)
	for i := 0; i < 2000; i++ {
		d.Observe(rng.ExpFloat64() * 100)
	}
	for i := 0; i < trials; i++ {
		topoN := i % seriesPer
		r := store.Result{
			Key: store.Key{
				Experiment:    "big",
				Topology:      string(rune('a' + topoN)),
				Users:         100 * (i/seriesPer + 1),
				WriteRatioPct: 10,
			},
			Completed:  true,
			Requests:   1000,
			Throughput: 100,
			RTSketch:   d,
		}
		f.Ingest(r)
	}
	sk := f.Sketch("big")
	if sk == nil {
		t.Fatal("no merged sketch")
	}
	if sk.Count() != uint64(trials)*2000 {
		t.Fatalf("merged count %d, want %d", sk.Count(), trials*2000)
	}
	if sk.Centroids() > sk.MaxCentroids() {
		t.Fatalf("merged sketch holds %d centroids, cap %d — memory not O(sketch)",
			sk.Centroids(), sk.MaxCentroids())
	}
	if f.Trials() != trials {
		t.Fatalf("Trials() = %d, want %d", f.Trials(), trials)
	}
}

// TestFolderIngestZeroAllocs pins the steady-state allocation contract:
// once an experiment's aggregates exist, a quiet trial folds in without
// allocating.
func TestFolderIngestZeroAllocs(t *testing.T) {
	f := NewFolder()
	rs := make([]store.Result, 4)
	for i := range rs {
		rs[i] = sketchedResult("alloc", "1-2-1", 100*(i+1), 10, float64(50*(i+1)))
		rs[i].TierCPU = nil // map iteration itself is alloc-free; keep the shape minimal
	}
	for _, r := range rs {
		f.Ingest(r)
	}
	i := 0
	allocs := testing.AllocsPerRun(5000, func() {
		f.Ingest(rs[i&3]) // repeated populations: knee detector ignores them
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Ingest allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkFolderIngest(b *testing.B) {
	f := NewFolder()
	rs := make([]store.Result, 8)
	for i := range rs {
		rs[i] = sketchedResult("bench", "1-2-1", 100*(i+1), 10, float64(50*(i+1)))
	}
	for _, r := range rs {
		f.Ingest(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Ingest(rs[i&7])
	}
}
