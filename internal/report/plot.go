package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Plot renders series as an ASCII line chart with axes, for terminal
// inspection of the figures (the CSV outputs feed real plotting tools).
// Each series is drawn with its own glyph; failed points are skipped,
// leaving visible gaps like the paper's incomplete-experiment squares.
type Plot struct {
	title  string
	xLabel string
	yLabel string
	width  int
	height int
	series []Series
}

// NewPlot creates a plot canvas. Width and height are clamped to sane
// terminal sizes.
func NewPlot(title, xLabel, yLabel string, width, height int) *Plot {
	if width < 24 {
		width = 24
	}
	if width > 160 {
		width = 160
	}
	if height < 6 {
		height = 6
	}
	if height > 48 {
		height = 48
	}
	return &Plot{title: title, xLabel: xLabel, yLabel: yLabel, width: width, height: height}
}

// Add appends a series to the plot.
func (p *Plot) Add(s Series) { p.series = append(p.series, s) }

// glyphs assigns one mark per series.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// String renders the chart.
func (p *Plot) String() string {
	// Collect the data range over OK points.
	var xs, ys []float64
	for _, s := range p.series {
		for _, pt := range s.Points {
			if pt.OK {
				xs = append(xs, pt.X)
				ys = append(ys, pt.Y)
			}
		}
	}
	if len(xs) == 0 {
		return p.title + "\n(no data)\n"
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if ymin > 0 {
		ymin = 0 // anchor response-time style plots at zero
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, p.height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", p.width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(p.width-1)))
		if c < 0 {
			c = 0
		}
		if c >= p.width {
			c = p.width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((y - ymin) / (ymax - ymin) * float64(p.height-1)))
		if r < 0 {
			r = 0
		}
		if r >= p.height {
			r = p.height - 1
		}
		return p.height - 1 - r // invert: row 0 is the top
	}
	for si, s := range p.series {
		g := glyphs[si%len(glyphs)]
		pts := make([]SeriesPointAlias, 0, len(s.Points))
		for _, pt := range s.Points {
			if pt.OK {
				pts = append(pts, SeriesPointAlias{pt.X, pt.Y})
			}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		// Mark the points and a coarse line between neighbours.
		for i, pt := range pts {
			grid[row(pt.Y)][col(pt.X)] = g
			if i > 0 {
				interpolate(grid, col(pts[i-1].X), row(pts[i-1].Y), col(pt.X), row(pt.Y))
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.title)
	yTop := fmt.Sprintf("%.0f", ymax)
	yBot := fmt.Sprintf("%.0f", ymin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for i, line := range grid {
		label := strings.Repeat(" ", margin)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", margin, yTop)
		case p.height - 1:
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", p.width))
	xTop := fmt.Sprintf("%.0f", xmin)
	xEnd := fmt.Sprintf("%.0f", xmax)
	pad := p.width - len(xTop) - len(xEnd)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s  (%s)\n", strings.Repeat(" ", margin),
		xTop, strings.Repeat(" ", pad), xEnd, p.xLabel)
	// Legend.
	for si, s := range p.series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	if p.yLabel != "" {
		fmt.Fprintf(&b, "  y: %s\n", p.yLabel)
	}
	return b.String()
}

// SeriesPointAlias is a plain (x, y) pair used internally by the plotter.
type SeriesPointAlias struct{ X, Y float64 }

// interpolate draws a coarse segment between two grid cells with '.' so
// line trends are visible without overwriting data marks.
func interpolate(grid [][]byte, c0, r0, c1, r1 int) {
	steps := abs(c1-c0) + abs(r1-r0)
	if steps == 0 {
		return
	}
	for s := 1; s < steps; s++ {
		c := c0 + (c1-c0)*s/steps
		r := r0 + (r1-r0)*s/steps
		if grid[r][c] == ' ' {
			grid[r][c] = '.'
		}
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
