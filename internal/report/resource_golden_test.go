package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elba/internal/store"
)

// resourceStore extends the synthetic golden set with per-tier disk and
// network utilization — the shape a demands-declaring experiment stores.
func resourceStore() *store.Store {
	st := store.New()
	for _, users := range []int{100, 200, 300, 400} {
		load := float64(users)
		st.Put(store.Result{
			Key: store.Key{
				Experiment: "disk-set", Topology: "1-1-1",
				Users: users, WriteRatioPct: 15,
			},
			Completed:  true,
			AvgRTms:    12 + load/3,
			Throughput: load / (1 + load/500),
			Requests:   int64(users * 60),
			TierCPU: map[string]float64{
				"web": 2 + load/100, "app": 5 + load/40, "db": 4 + load/50,
			},
			TierDisk:   map[string]float64{"db": 20 + load/5},
			TierNet:    map[string]float64{"web": 3 + load/80},
			RunSeconds: 600,
		})
	}
	return st
}

// TestGoldenResourceTable locks the per-tier resource-utilization table:
// the multi-resource rendering over a fixed store must reproduce the
// committed file byte-for-byte, and a CPU-only store must keep the
// classic three-column shape.
func TestGoldenResourceTable(t *testing.T) {
	var b strings.Builder
	b.WriteString(TableResourceUtilization(resourceStore(), "disk-set", "1-1-1", 15))
	b.WriteString("\n")
	// CPU-only store: no disk/net columns appear.
	b.WriteString(TableResourceUtilization(goldenStore(), "golden-set", "1-2-1", 25))

	got := b.String()
	golden := filepath.Join("testdata", "resource_table.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("resource table drifted from golden.\nIf intentional, regenerate with:\n  go test ./internal/report -run TestGoldenResourceTable -update\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}
