package report

import (
	"fmt"
	"sort"

	"elba/internal/store"
)

// TableSLO renders the per-trial verdicts of the spec's SLO assert
// expression: how many observation windows were checked, how many
// violated, and when the first violation opened — the windowed view the
// paper's availability analysis reads, generalized from fixed thresholds
// to arbitrary predicates.
func TableSLO(st *store.Store, experiment string) string {
	rs := st.Filter(func(r store.Result) bool {
		return r.Key.Experiment == experiment && r.SLOAssert != ""
	})
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Key.Topology != rs[j].Key.Topology {
			return rs[i].Key.Topology < rs[j].Key.Topology
		}
		if rs[i].Key.WriteRatioPct != rs[j].Key.WriteRatioPct {
			return rs[i].Key.WriteRatioPct < rs[j].Key.WriteRatioPct
		}
		return rs[i].Key.Users < rs[j].Key.Users
	})

	assert := ""
	if len(rs) > 0 {
		assert = rs[0].SLOAssert
	}
	t := NewTable(fmt.Sprintf("SLO verdicts — %s: assert %s", experiment, assert),
		"Config (w-a-d)", "Users", "Writes", "Engine", "Windows", "Violations",
		"First violation", "Verdict")
	for _, r := range rs {
		engine := r.Engine
		if engine == "" {
			engine = "des"
		}
		first, verdict := "-", "PASS"
		if r.SLOViolations > 0 {
			first = fmt.Sprintf("%.0fs", r.SLOViolatedAt[0])
			verdict = "FAIL"
		}
		t.AddRow(r.Key.Topology, fmt.Sprint(r.Key.Users),
			fmt.Sprintf("%g%%", r.Key.WriteRatioPct), engine,
			fmt.Sprint(r.SLOWindows), fmt.Sprint(r.SLOViolations),
			first, verdict)
	}
	return t.String()
}
