package report

import (
	"strings"
	"testing"

	"elba/internal/store"
)

func plotSeries() Series {
	return Series{Name: "1-1-1", Points: []store.SeriesPoint{
		{X: 100, Y: 50, OK: true},
		{X: 200, Y: 100, OK: true},
		{X: 300, Y: 400, OK: true},
		{X: 400, Y: 0, OK: false}, // failed trial: gap
	}}
}

func TestPlotRendersMarksAndLegend(t *testing.T) {
	p := NewPlot("Figure 5", "users", "ms", 40, 10)
	p.Add(plotSeries())
	out := p.String()
	if !strings.HasPrefix(out, "Figure 5\n") {
		t.Fatalf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("data marks missing:\n%s", out)
	}
	if !strings.Contains(out, "* 1-1-1") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "(users)") || !strings.Contains(out, "y: ms") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	// Axis bounds: y max 400, x from 100 to 300 (the failed point is
	// excluded from the range).
	if !strings.Contains(out, "400 |") {
		t.Fatalf("y max label missing:\n%s", out)
	}
	if !strings.Contains(out, "100") || !strings.Contains(out, "300") {
		t.Fatalf("x labels missing:\n%s", out)
	}
	if strings.Contains(out, "400  (users)") {
		t.Fatalf("failed point should not extend the x axis:\n%s", out)
	}
}

func TestPlotMultipleSeriesDistinctGlyphs(t *testing.T) {
	p := NewPlot("F", "x", "y", 40, 8)
	p.Add(plotSeries())
	s2 := plotSeries()
	s2.Name = "1-2-1"
	for i := range s2.Points {
		s2.Points[i].Y /= 2
	}
	p.Add(s2)
	out := p.String()
	if !strings.Contains(out, "* 1-1-1") || !strings.Contains(out, "o 1-2-1") {
		t.Fatalf("glyph assignment wrong:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("Empty", "x", "y", 40, 8)
	out := p.String()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot should say so:\n%s", out)
	}
	// Series with only failed points is also empty.
	p.Add(Series{Name: "s", Points: []store.SeriesPoint{{X: 1, Y: 1, OK: false}}})
	if !strings.Contains(p.String(), "(no data)") {
		t.Fatalf("failed-only series should be empty")
	}
}

func TestPlotClampsDimensions(t *testing.T) {
	p := NewPlot("T", "x", "y", 1, 1)
	p.Add(plotSeries())
	out := p.String()
	lines := strings.Split(out, "\n")
	if len(lines) < 8 {
		t.Fatalf("clamped plot too small:\n%s", out)
	}
	big := NewPlot("T", "x", "y", 10000, 10000)
	big.Add(plotSeries())
	if w := len(strings.Split(big.String(), "\n")[1]); w > 200 {
		t.Fatalf("width not clamped: %d", w)
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	p := NewPlot("T", "x", "y", 30, 6)
	p.Add(Series{Name: "point", Points: []store.SeriesPoint{{X: 5, Y: 5, OK: true}}})
	out := p.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point should render:\n%s", out)
	}
}
