package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elba/internal/store"
)

// update regenerates the golden file instead of comparing against it:
//
//	go test ./internal/report -run TestGoldenReport -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenStore builds a small synthetic result set with hand-picked values
// so the rendered document is a pure function of this file.
func goldenStore() *store.Store {
	st := store.New()
	for _, topo := range []string{"1-1-1", "1-2-1", "1-2-2"} {
		appScale := float64(len(topo)) // deterministic per-topology spread
		for ui, users := range []int{100, 200, 300} {
			for wi, wr := range []float64{5, 25} {
				load := float64(users) * (1 + float64(wi)) / appScale
				r := store.Result{
					Key: store.Key{
						Experiment: "golden-set", Topology: topo,
						Users: users, WriteRatioPct: wr,
					},
					Completed:  true,
					AvgRTms:    10 + load/4,
					P50ms:      8 + load/5,
					P90ms:      20 + load/3,
					P99ms:      45 + load/2,
					MaxRTms:    90 + load,
					Throughput: float64(users) / (1 + load/1000),
					Requests:   int64(users * 60),
					Errors:     int64(ui * wi),
					TierCPU: map[string]float64{
						"web": 5 + load/50, "app": 20 + load/8, "db": 10 + load/20,
					},
					RunSeconds: 600,
				}
				// One missing square, as the paper's Table 7 has.
				if topo == "1-1-1" && users == 300 {
					r.Completed = false
					r.FailReason = "error rate 12.0% exceeds 5%"
				}
				st.Put(r)
			}
		}
	}
	return st
}

// TestGoldenReport locks the report package's rendering: tables, surface
// grids, series charts, and CSV output over a fixed store must reproduce
// the committed document byte-for-byte.
func TestGoldenReport(t *testing.T) {
	st := goldenStore()
	var b strings.Builder

	sf := st.RTSurface("golden-set", "1-2-1")
	b.WriteString(SurfaceGrid("Avg response time, 1-2-1", "ms", sf))
	b.WriteString("\n")
	b.WriteString(SurfaceCSV(sf))
	b.WriteString("\n")

	var series []Series
	for _, topo := range []string{"1-1-1", "1-2-1", "1-2-2"} {
		series = append(series, Series{Name: topo, Points: st.RTvsUsers("golden-set", topo, 25)})
	}
	b.WriteString(SeriesTable("RT vs users (w=25%)", "users", "ms", series))
	b.WriteString("\n")
	b.WriteString(SeriesChart("RT vs users (w=25%)", "users", "ms", series))
	b.WriteString("\n")
	b.WriteString(SeriesCSV("users", series))
	b.WriteString("\n")

	b.WriteString(Table7Throughput(st, "golden-set", 25,
		[]string{"1-1-1", "1-2-1", "1-2-2"}, []int{100, 200, 300}))
	b.WriteString("\n")

	diff := Difference("1-2-1 minus 1-1-1",
		st.RTvsUsers("golden-set", "1-2-1", 25),
		st.RTvsUsers("golden-set", "1-1-1", 25))
	b.WriteString(SeriesTable("Topology difference", "users", "ms", []Series{diff}))
	b.WriteString("\n")

	r, _ := st.Get(store.Key{Experiment: "golden-set", Topology: "1-2-1", Users: 200, WriteRatioPct: 25})
	r.PerInteraction = map[string]float64{"Home": 4.2, "SearchItems": 61.5, "AboutMe": 118.9}
	b.WriteString(InteractionBreakdown(r))
	b.WriteString("\n")
	b.WriteString(st.CSV())

	got := b.String()
	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("report rendering drifted from golden.\nIf intentional, regenerate with:\n  go test ./internal/report -run TestGoldenReport -update\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}
