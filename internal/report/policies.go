package report

import (
	"fmt"
	"sort"

	"elba/internal/store"
)

// TableScaling renders the autoscaling timeline: every policy firing
// recorded during the experiment's trials, one row per scale event in
// firing order — the paper's §V.A add-a-server decision log, taken
// mid-run by the spec's policies clause instead of between sweeps by the
// operator.
func TableScaling(st *store.Store, experiment string) string {
	rs := st.Filter(func(r store.Result) bool {
		return r.Key.Experiment == experiment && len(r.ScaleEvents) > 0
	})
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Key.Topology != rs[j].Key.Topology {
			return rs[i].Key.Topology < rs[j].Key.Topology
		}
		if rs[i].Key.WriteRatioPct != rs[j].Key.WriteRatioPct {
			return rs[i].Key.WriteRatioPct < rs[j].Key.WriteRatioPct
		}
		return rs[i].Key.Users < rs[j].Key.Users
	})

	t := NewTable(fmt.Sprintf("Scaling timeline — %s", experiment),
		"Config (w-a-d)", "Users", "Writes", "Engine", "At", "Tier", "Replicas")
	for _, r := range rs {
		engine := r.Engine
		if engine == "" {
			engine = "des"
		}
		for _, ev := range r.ScaleEvents {
			t.AddRow(r.Key.Topology, fmt.Sprint(r.Key.Users),
				fmt.Sprintf("%g%%", r.Key.WriteRatioPct), engine,
				fmt.Sprintf("%.0fs", ev.TSec), ev.Tier,
				fmt.Sprintf("%d→%d", ev.From, ev.To))
		}
	}
	return t.String()
}
