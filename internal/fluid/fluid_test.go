package fluid

import (
	"math"
	"testing"
)

// testConfig is a small three-tier system resembling the rubbos
// submission mix on the reference platform: ~7 s think time, CPU demands
// of a few milliseconds, one node per tier.
func testConfig(sessions int) Config {
	node := NodeSpec{Cores: 1, Speed: 1}
	return Config{
		Sessions: sessions,
		ThinkSec: 7,
		Web:      TierSpec{Name: "web", Nodes: []NodeSpec{node}},
		App:      TierSpec{Name: "app", Nodes: []NodeSpec{node}},
		DB:       TierSpec{Name: "db", Nodes: []NodeSpec{node}},
		Classes: []Class{
			{Name: "browse", Weight: 0.7, Web: 0.002, App: 0.005, DB: 0.008},
			{Name: "submit", Weight: 0.3, Web: 0.002, App: 0.006, DB: 0.012, Write: true},
		},
	}
}

func runWindow(t *testing.T, cfg Config, warm, run float64) Stats {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Advance(warm)
	a := s.Snapshot()
	s.Advance(warm + run)
	return s.StatsBetween(a, s.Snapshot())
}

// TestDeterminism: identical configs advanced through identical time
// boundaries produce bit-identical statistics — the solver draws no
// randomness and iterates no maps.
func TestDeterminism(t *testing.T) {
	boundaries := []float64{3.2, 17.0, 59.99, 123.456, 300}
	mk := func() []Stats {
		s, err := New(testConfig(400))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		prev := s.Snapshot()
		var out []Stats
		for _, b := range boundaries {
			s.Advance(b)
			snap := s.Snapshot()
			out = append(out, s.StatsBetween(prev, snap))
			prev = snap
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Requests != b[i].Requests || a[i].ThroughputRPS != b[i].ThroughputRPS ||
			a[i].P50ms != b[i].P50ms || a[i].P99ms != b[i].P99ms ||
			a[i].MeanRTms != b[i].MeanRTms || a[i].Errors != b[i].Errors {
			t.Fatalf("window %d: runs diverge: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestThroughputMonotone: steady-state throughput X(N) is non-decreasing
// in the population — the core property a knee search relies on.
func TestThroughputMonotone(t *testing.T) {
	prev := -1.0
	for _, n := range []int{1, 5, 25, 100, 250, 500, 1000, 2500, 5000, 20000} {
		st := runWindow(t, testConfig(n), 120, 300)
		if st.ThroughputRPS < prev-1e-9 {
			t.Fatalf("X(%d) = %.4f < previous %.4f: throughput not monotone", n, st.ThroughputRPS, prev)
		}
		prev = st.ThroughputRPS
	}
}

// TestSubSaturationFixedPoint: far below the knee the solver converges to
// the open-network fixed point X = N/(Z + R(X)), with R the analytic
// residence time including queueing waits.
func TestSubSaturationFixedPoint(t *testing.T) {
	cfg := testConfig(100)
	st := runWindow(t, cfg, 120, 600)
	s, _ := New(cfg)
	x := 100 / cfg.ThinkSec
	for i := 0; i < 100; i++ {
		r := 0.0
		for j := range s.tiers {
			r += s.tiers[j].residence(x)
		}
		x = 100 / (cfg.ThinkSec + r)
	}
	if rel := math.Abs(st.ThroughputRPS-x) / x; rel > 0.005 {
		t.Fatalf("X(100) = %.4f, fixed point predicts %.4f (rel %.4f)", st.ThroughputRPS, x, rel)
	}
}

// TestSaturationCapacity: far above the knee throughput pins at the
// bottleneck capacity and response time follows Little's law
// R = N/C − Z.
func TestSaturationCapacity(t *testing.T) {
	cfg := testConfig(20000)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capacity := math.Inf(1)
	for i := 0; i < numTiers; i++ {
		if c := s.Capacity(i); c < capacity {
			capacity = c
		}
	}
	// Long horizon so the backlog reaches equilibrium.
	s.Advance(2000)
	a := s.Snapshot()
	s.Advance(2600)
	st := s.StatsBetween(a, s.Snapshot())
	x := (st.Requests + st.Errors) / st.DurationSec // raw completion rate
	if rel := math.Abs(x-capacity) / capacity; rel > 0.02 {
		t.Fatalf("saturated X = %.2f, capacity %.2f (rel %.3f)", x, capacity, rel)
	}
	wantRT := 20000/capacity - cfg.ThinkSec
	gotRT := st.MeanRTms / 1000
	if rel := math.Abs(gotRT-wantRT) / wantRT; rel > 0.05 {
		t.Fatalf("saturated mean RT = %.2fs, Little predicts %.2fs (rel %.3f)", gotRT, wantRT, rel)
	}
}

// TestZeroPopulation: no sessions means no requests and no errors in any
// window, with zeroed response statistics.
func TestZeroPopulation(t *testing.T) {
	st := runWindow(t, testConfig(0), 60, 300)
	if st.Requests != 0 || st.Errors != 0 || st.ThroughputRPS != 0 {
		t.Fatalf("zero population produced activity: %+v", st)
	}
	if st.P50ms != 0 || st.MeanRTms != 0 {
		t.Fatalf("zero population produced response times: %+v", st)
	}
}

// TestRefusedSessions: refused sessions reject at rate 1/Z each and
// contribute only errors.
func TestRefusedSessions(t *testing.T) {
	cfg := testConfig(0)
	cfg.Refused = 70
	st := runWindow(t, cfg, 60, 300)
	if st.Requests != 0 {
		t.Fatalf("refused sessions completed requests: %+v", st)
	}
	want := 70.0 / cfg.ThinkSec * 300
	if rel := math.Abs(st.Errors-want) / want; rel > 0.01 {
		t.Fatalf("rejections = %.1f, want ≈ %.1f", st.Errors, want)
	}
}

// TestRampUp: with a ramp window, early activity is lower than
// steady-state but the full population eventually enters.
func TestRampUp(t *testing.T) {
	cfg := testConfig(500)
	cfg.RampUpSec = 10
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.qThink != 0 {
		t.Fatalf("ramped solver started with population present")
	}
	s.Advance(5)
	if s.entered <= 0 || s.entered >= 500 {
		t.Fatalf("mid-ramp entered = %.1f, want strictly inside (0, 500)", s.entered)
	}
	s.Advance(60)
	if math.Abs(s.entered-500) > 1e-6 {
		t.Fatalf("post-ramp entered = %.1f, want 500", s.entered)
	}
}

// TestTimeoutFraction: with a timeout far above any plausible response
// time, no requests time out below saturation; deep overload with a tight
// timeout converts completions into errors.
func TestTimeoutFraction(t *testing.T) {
	cfg := testConfig(100)
	cfg.TimeoutSec = 30
	st := runWindow(t, cfg, 120, 300)
	if st.TimeoutFraction != 0 {
		t.Fatalf("sub-knee timeout fraction = %g, want exactly 0", st.TimeoutFraction)
	}
	over := testConfig(50000)
	over.TimeoutSec = 5
	s, _ := New(over)
	s.Advance(2000)
	a := s.Snapshot()
	s.Advance(2300)
	ost := s.StatsBetween(a, s.Snapshot())
	if ost.TimeoutFraction < 0.98 {
		t.Fatalf("deep overload with 5s timeout: fraction = %g, want ≈ 1", ost.TimeoutFraction)
	}
	if ost.Requests > ost.Errors {
		t.Fatalf("deep overload should be error-dominated: %+v", ost)
	}
}

// TestWriteBroadcastRaisesDBWork: replicating the database spreads reads
// but broadcasts writes, so per-node CPU work per request must account
// for the full write demand on every replica.
func TestWriteBroadcastRaisesDBWork(t *testing.T) {
	node := NodeSpec{Cores: 1, Speed: 1}
	cfg := testConfig(100)
	cfg.DB.Nodes = []NodeSpec{node, node}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// d=2: per-node work = (1-ww)·read/2 + ww·write.
	ww := 0.3
	want := (1-ww)*0.008/2 + ww*0.012
	if got := s.tiers[TierDB].cpuWorkPerReq; math.Abs(got-want) > 1e-12 {
		t.Fatalf("db per-node work = %g, want %g", got, want)
	}
	// Write latency includes the max-of-replicas factor H_2 = 1.5.
	wantLat := (1-ww)*0.008 + ww*0.012*1.5
	if got := s.tiers[TierDB].svcLatency; math.Abs(got-wantLat) > 1e-12 {
		t.Fatalf("db service latency = %g, want %g", got, wantLat)
	}
}

// TestBusyIntegralsConsistent: cumulative busy time equals completions ×
// per-request work for every leg, and utilization never exceeds the
// window duration per core.
func TestBusyIntegralsConsistent(t *testing.T) {
	cfg := testConfig(300)
	cfg.DB.DiskSec = 0.004
	cfg.DB.NetBytes = 600
	for i := range cfg.DB.Nodes {
		cfg.DB.Nodes[i].DiskRate = 1
		cfg.DB.Nodes[i].NetRate = 1e9
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Advance(300)
	done := s.TierCompletions(TierDB)
	if done <= 0 {
		t.Fatal("no completions")
	}
	if got, want := s.NodeCPUBusy(TierDB), done*s.tiers[TierDB].cpuWorkPerReq; math.Abs(got-want) > 1e-9 {
		t.Fatalf("cpu busy %g, want %g", got, want)
	}
	if got := s.NodeDiskBusy(TierDB); got <= 0 {
		t.Fatal("disk busy not accumulated")
	}
	if got := s.NodeNetBusy(TierDB); got <= 0 {
		t.Fatal("net busy not accumulated")
	}
	if got := s.NodeDiskBusy(TierWeb); got != 0 {
		t.Fatalf("web tier has no disk but busy = %g", got)
	}
	if util := s.NodeCPUBusy(TierDB) / 300; util > 1 {
		t.Fatalf("cpu utilization %g exceeds 1 core-second/second", util)
	}
}

// TestPercentileOrdering: quantiles are ordered and bracket the mean
// sensibly for the mixture distribution.
func TestPercentileOrdering(t *testing.T) {
	st := runWindow(t, testConfig(200), 120, 300)
	if !(st.P50ms > 0 && st.P50ms <= st.P90ms && st.P90ms <= st.P99ms && st.P99ms <= st.MaxRTms) {
		t.Fatalf("quantiles out of order: p50=%g p90=%g p99=%g max=%g",
			st.P50ms, st.P90ms, st.P99ms, st.MaxRTms)
	}
	if st.MeanRTms <= 0 {
		t.Fatalf("mean RT = %g", st.MeanRTms)
	}
}

// TestConfigValidation: constructor rejects nonsense configurations.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Sessions = -1 },
		func(c *Config) { c.ThinkSec = 0 },
		func(c *Config) { c.Classes = nil },
		func(c *Config) { c.Web.Nodes = nil },
		func(c *Config) { c.App.Nodes = []NodeSpec{{Cores: 0, Speed: 1}} },
		func(c *Config) { c.Classes = []Class{{Name: "x", Weight: 0}} },
	}
	for i, mutate := range bad {
		cfg := testConfig(10)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestStepCostPopulationIndependent: a million-user advance costs the
// same number of steps as a hundred-user advance — the property that
// makes huge knee searches fast. Guarded by wall-clock, not steps, to
// stay robust.
func TestStepCostPopulationIndependent(t *testing.T) {
	cfg := testConfig(1000000)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Advance(1200) // a full rubbos-length trial horizon
	if s.TierCompletions(TierDB) <= 0 {
		t.Fatal("million-user run produced no completions")
	}
}
