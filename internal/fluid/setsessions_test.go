package fluid

import (
	"math"
	"testing"
)

// setSessionsConfig is a think-dominated single-core baseline where the
// closed fixed point X = N/(Z + R) is essentially N/Z, so throughput
// should track population changes almost proportionally.
func setSessionsConfig(sessions int) Config {
	node := NodeSpec{Cores: 1, Speed: 1}
	return Config{
		Sessions: sessions,
		ThinkSec: 7,
		Web:      TierSpec{Name: "web", Nodes: []NodeSpec{node}},
		App:      TierSpec{Name: "app", Nodes: []NodeSpec{node}},
		DB:       TierSpec{Name: "db", Nodes: []NodeSpec{node}},
		Classes: []Class{
			{Name: "mix", Weight: 1, Web: 0.002, App: 0.010, DB: 0.004},
		},
	}
}

// windowX integrates [from, to] and returns the window's throughput.
func windowX(s *Solver, from, to float64) float64 {
	s.Advance(from)
	a := s.Snapshot()
	s.Advance(to)
	b := s.Snapshot()
	return (b.Done - a.Done) / (b.Time - a.Time)
}

func TestSetSessionsGrows(t *testing.T) {
	s, err := New(setSessionsConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	x1 := windowX(s, 100, 200)
	s.SetSessions(200)
	x2 := windowX(s, 300, 400)
	if ratio := x2 / x1; math.Abs(ratio-2) > 0.1 {
		t.Fatalf("throughput ratio after doubling population = %.3f, want ~2 (x1=%.2f x2=%.2f)",
			ratio, x1, x2)
	}
}

func TestSetSessionsShrinksAndConserves(t *testing.T) {
	s, err := New(setSessionsConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	s.Advance(100)
	s.SetSessions(50)
	// Population is conserved through the drain: fluid still in the system
	// (think pool + tier queues) is the 50 remaining sessions plus the
	// leavers still finishing their in-flight requests.
	for _, to := range []float64{101, 110, 150, 300} {
		s.Advance(to)
		inSystem := s.qThink
		for i := range s.tiers {
			inSystem += s.tiers[i].q
		}
		if math.Abs(inSystem-50-s.leaveDebt) > 1e-6 {
			t.Fatalf("t=%g: sessions in system %.9f, want 50 + debt %.9f", to, inSystem, s.leaveDebt)
		}
	}
	x := windowX(s, 300, 400)
	want := windowXFresh(t, 50)
	if math.Abs(x-want)/want > 0.05 {
		t.Fatalf("post-shrink throughput %.3f, want ~%.3f (fresh 50-user solver)", x, want)
	}
	if s.leaveDebt > 1e-6 {
		t.Fatalf("leave debt not drained: %g", s.leaveDebt)
	}
}

// windowXFresh measures steady throughput of a fresh solver at n users.
func windowXFresh(t *testing.T, n int) float64 {
	t.Helper()
	s, err := New(setSessionsConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return windowX(s, 300, 400)
}

func TestSetSessionsDeterministic(t *testing.T) {
	run := func() float64 {
		s, err := New(setSessionsConfig(100))
		if err != nil {
			t.Fatal(err)
		}
		s.Advance(50)
		s.SetSessions(400)
		s.Advance(120)
		s.SetSessions(80)
		s.Advance(250)
		return s.Snapshot().Done
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("SetSessions sequence not deterministic: %g vs %g", a, b)
	}
}
