// Package fluid approximates the closed n-tier queueing network with
// aggregated user-class dynamics: instead of one Markov emulator per user
// session (the exact DES in internal/sim), the population is a fluid that
// flows think → web → app → db → think. Per-tier queue levels follow the
// relaxation ODE dq/dt = a − q/R(λ), where R(λ) is the tier's analytic
// residence time — Erlang-C M/M/c waits for the CPU legs, M/D/1 waits for
// the deterministic disk and network legs of the multi-resource contention
// model — and outflow is clamped to the tier's service capacity, so a
// backlogged tier drains work-conservingly and the closed loop converges
// to X = N/(Z + R(X)) below saturation and to the capacity ceiling above
// it.
//
// The solver is a fixed-step deterministic integrator: it draws no random
// numbers and iterates no maps, so its output is a pure function of the
// configuration and the sequence of Advance targets. Cost per step is
// independent of the population, which is what makes million-user trials
// take milliseconds instead of hours.
//
// Validity envelope: the flow approximation reproduces the DES closely
// below the saturation knee (think-time-dominated operation) and at deep
// overload (capacity-pegged throughput, Little-law response times). Near
// the knee it solves the open-network fixed point, which under-predicts
// the closed network's throughput by a few percent — the cross-validation
// suite in internal/core pins both the agreement bands and this expected
// divergence.
package fluid

import (
	"fmt"
	"math"
)

// NodeSpec describes one allocated node of a tier.
type NodeSpec struct {
	// Cores is the node's CPU count (the station's server count).
	Cores int
	// Speed is the CPU speed factor relative to the reference frequency.
	Speed float64
	// DiskRate is the disk speed factor relative to the reference spindle
	// (0 = no disk attached).
	DiskRate float64
	// NetRate is the network link rate in bytes per second (0 = no link
	// attached).
	NetRate float64
}

// TierSpec describes one tier: its allocated nodes plus the TBL-declared
// per-request resource demands (the same knobs sim.TierDemand carries).
type TierSpec struct {
	Name  string
	Nodes []NodeSpec
	// CPUScale multiplies the benchmark's CPU demand (0 = unchanged).
	CPUScale float64
	// DiskSec is seconds of disk service per request at the reference
	// spindle (0 = no disk leg).
	DiskSec float64
	// NetBytes is the payload carried into the tier per request (0 = no
	// network leg).
	NetBytes float64
}

// Class is one user-class of the workload: an interaction type with its
// stationary weight and per-tier CPU demands at the reference frequency.
type Class struct {
	Name   string
	Weight float64
	// Web, App, DB are the interaction's per-tier CPU demands in seconds
	// at the reference frequency.
	Web, App, DB float64
	// Write marks database writes, which RAIDb-1 broadcasts to every
	// replica (completion at the slowest).
	Write bool
}

// Config parameterizes a fluid trial. It mirrors what the DES driver and
// buildNTier consume: admitted population, refused sessions beyond the
// connection-pool capacity, think time, ramp-up, and the three tiers.
type Config struct {
	// Sessions is the admitted concurrent-user population.
	Sessions int
	// Refused is the number of sessions beyond the connection-pool
	// capacity; each loops think → instant rejection, exactly like the
	// DES's refused users.
	Refused int
	// ThinkSec is the mean exponential think time.
	ThinkSec float64
	// TimeoutSec is the client response timeout (0 disables).
	TimeoutSec float64
	// RampUpSec spreads session entry uniformly over this window.
	RampUpSec float64
	// Web, App, DB describe the tiers in request-path order.
	Web, App, DB TierSpec
	// Classes is the workload's interaction mix (weights sum to 1).
	Classes []Class
	// StepSec is the integration step (0 = ThinkSec/20).
	StepSec float64
}

// tierIndex labels the request path.
const (
	TierWeb = iota
	TierApp
	TierDB
	numTiers
)

// tierState is one tier's derived constants and fluid state. All nodes of
// a tier are interchangeable under round-robin balancing, so per-node
// quantities are tier totals divided by the node count.
type tierState struct {
	name  string
	nodes int
	cores int     // servers per node, for the M/M/c wait
	cap   float64 // service capacity in completions/s (min over legs)

	// Per-visit service times after hardware scaling.
	cpuSvcMean float64 // mean CPU service per node visit
	diskSvc    float64 // deterministic disk service per visit (0 = none)
	netSvc     float64 // deterministic net service per visit (0 = none)

	// Per-completed-request factors.
	visitsPerNode float64 // node visits per tier completion, per node
	cpuWorkPerReq float64 // CPU busy-seconds per node per completion
	svcLatency    float64 // mean no-wait latency through the tier
	waitScale     float64 // arrival-thinning wait correction, (1+1/n)/2

	// Fluid state and cumulative accounting.
	q    float64 // jobs in the tier (queued + in service)
	qInt float64 // ∫ q dt
	done float64 // completions out of the tier

	// Epoch baselines folded in by SetTierNodes. The per-node busy
	// counters are derived from done via per-request factors; when a
	// node-count change re-derives those factors, the totals accrued so
	// far are frozen here so the counters stay continuous and monotone.
	// All-zero baselines reproduce the historical derivation exactly.
	cpuBusy0, diskBusy0, netBusy0, ops0 float64
	done0                               float64
}

// classDist is one class's response-time distribution: a sum of
// independent exponential stages (web CPU, app CPU, db CPU — a
// max-of-replicas hypoexponential for writes) shifted by the deterministic
// legs and the window's measured queueing delay.
type classDist struct {
	name    string
	weight  float64
	rates   []float64 // distinct exponential stage rates
	alphas  []float64 // hypoexponential CDF coefficients
	expMean float64   // Σ 1/rate
}

// Solver integrates the fluid model. Create with New, drive with Advance,
// and read windows with Snapshot/StatsBetween.
type Solver struct {
	cfg     Config
	think   float64
	dt      float64
	now     float64
	ww      float64 // write fraction of the mix
	wsum    float64 // class weight normalizer, kept for re-derivation
	tiers   [numTiers]tierState
	classes []classDist
	detSvc  float64 // deterministic leg latency shared by every class

	entered       float64 // admitted sessions ramped in so far
	refusedActive float64 // refused sessions ramped in so far
	qThink        float64
	rejected      float64 // cumulative rejections
	leaveDebt     float64 // sessions leaving once their in-flight request completes
}

// New builds a solver. It validates the configuration and precomputes
// every per-tier and per-class constant, so stepping is allocation-free.
func New(cfg Config) (*Solver, error) {
	if cfg.Sessions < 0 || cfg.Refused < 0 {
		return nil, fmt.Errorf("fluid: negative population")
	}
	if cfg.ThinkSec <= 0 {
		return nil, fmt.Errorf("fluid: think time must be positive")
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("fluid: workload needs at least one class")
	}
	for _, t := range [...]TierSpec{cfg.Web, cfg.App, cfg.DB} {
		if len(t.Nodes) == 0 {
			return nil, fmt.Errorf("fluid: tier %q has no nodes", t.Name)
		}
		for _, n := range t.Nodes {
			if n.Cores < 1 || n.Speed <= 0 {
				return nil, fmt.Errorf("fluid: tier %q node needs cores and speed", t.Name)
			}
		}
	}
	s := &Solver{cfg: cfg, think: cfg.ThinkSec}
	s.dt = cfg.StepSec
	if s.dt <= 0 {
		s.dt = cfg.ThinkSec / 20
	}

	var wsum float64
	for _, c := range cfg.Classes {
		if c.Weight < 0 {
			return nil, fmt.Errorf("fluid: class %q has negative weight", c.Name)
		}
		wsum += c.Weight
		if c.Write {
			s.ww += c.Weight
		}
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("fluid: class weights sum to zero")
	}
	s.ww /= wsum
	s.wsum = wsum

	d := len(cfg.DB.Nodes)
	for i, spec := range [...]TierSpec{cfg.Web, cfg.App, cfg.DB} {
		if err := s.deriveTier(i, spec, cfg.Classes, wsum, d); err != nil {
			return nil, err
		}
	}
	s.deriveClasses(cfg.Classes, wsum, d)

	if cfg.RampUpSec <= 0 {
		s.entered = float64(cfg.Sessions)
		s.refusedActive = float64(cfg.Refused)
		s.qThink = s.entered
	}
	return s, nil
}

// svcFor returns a class's CPU service time at tier i after demand
// scaling and hardware speed.
func svcFor(c Class, i int, scale, speed float64) float64 {
	demand := [numTiers]float64{c.Web, c.App, c.DB}[i]
	if scale > 0 {
		demand *= scale
	}
	return demand / speed
}

// deriveTier fills one tierState from its spec and the class mix. The
// database tier models RAIDb-1: reads visit one of d replicas, writes
// visit all of them and complete at the slowest.
func (s *Solver) deriveTier(i int, spec TierSpec, classes []Class, wsum float64, d int) error {
	t := &s.tiers[i]
	t.name = spec.Name
	t.nodes = len(spec.Nodes)

	// Tier-aggregate hardware: per-node cores and core-weighted mean
	// speed. Tiers are allocated from one node pool, so heterogeneity
	// within a tier is the exception; averaging keeps the math exact for
	// the homogeneous case and sane otherwise.
	var cores, totalCores int
	var speedSum, coreSum float64
	diskRate, netRate := math.MaxFloat64, math.MaxFloat64
	for _, n := range spec.Nodes {
		totalCores += n.Cores
		speedSum += float64(n.Cores) * n.Speed
		coreSum += float64(n.Cores)
		if n.DiskRate < diskRate {
			diskRate = n.DiskRate
		}
		if n.NetRate < netRate {
			netRate = n.NetRate
		}
	}
	cores = totalCores / t.nodes
	if cores < 1 {
		cores = 1
	}
	t.cores = cores
	speed := speedSum / coreSum

	if spec.DiskSec > 0 && diskRate > 0 {
		t.diskSvc = spec.DiskSec / diskRate
	}
	if spec.NetBytes > 0 && netRate > 0 {
		t.netSvc = spec.NetBytes / netRate
	}

	// Class-conditional CPU services at this tier.
	var readSvc, writeSvc, readMass, writeMass float64
	for _, c := range classes {
		svc := svcFor(c, i, spec.CPUScale, speed)
		if c.Write {
			writeSvc += c.Weight * svc
			writeMass += c.Weight
		} else {
			readSvc += c.Weight * svc
			readMass += c.Weight
		}
	}
	readSvc /= wsum
	writeSvc /= wsum // stationary means over the whole mix

	switch i {
	case TierDB:
		// Reads land on one of d replicas; writes are broadcast, so every
		// replica serves the full write demand and the write's CPU latency
		// is the max of d iid exponentials (mean × H_d).
		ww := s.ww
		condRead, condWrite := 0.0, 0.0
		if readMass > 0 {
			condRead = readSvc * wsum / readMass
		}
		if writeMass > 0 {
			condWrite = writeSvc * wsum / writeMass
		}
		t.visitsPerNode = (1-ww)/float64(d) + ww
		t.cpuWorkPerReq = (1-ww)*condRead/float64(d) + ww*condWrite
		if t.visitsPerNode > 0 {
			t.cpuSvcMean = t.cpuWorkPerReq / t.visitsPerNode
		}
		t.svcLatency = t.netSvc + t.diskSvc + (1-ww)*condRead + ww*condWrite*harmonic(d)
	default:
		mean := readSvc + writeSvc
		t.visitsPerNode = 1 / float64(t.nodes)
		t.cpuWorkPerReq = mean / float64(t.nodes)
		t.cpuSvcMean = mean
		t.svcLatency = t.netSvc + t.diskSvc + mean
	}
	// Round-robin over n nodes thins each node's arrival stream to
	// Erlang-n interarrivals (SCV 1/n), so the per-node wait is below
	// the Poisson-arrival Erlang-C value; Allen–Cunneen scales it by
	// (Ca²+Cs²)/2. The DB balancer interleaves reads with broadcast
	// writes, which restores burstiness — leave it at 1.
	t.waitScale = 1
	if i != TierDB && t.nodes > 1 {
		t.waitScale = (1 + 1/float64(t.nodes)) / 2
	}

	// Capacity: the binding leg across CPU, disk, and net.
	t.cap = math.Inf(1)
	if t.cpuWorkPerReq > 0 {
		t.cap = float64(t.cores) / t.cpuWorkPerReq
	}
	if t.diskSvc > 0 {
		if c := 1 / (t.visitsPerNode * t.diskSvc); c < t.cap {
			t.cap = c
		}
	}
	if t.netSvc > 0 {
		if c := 1 / (t.visitsPerNode * t.netSvc); c < t.cap {
			t.cap = c
		}
	}
	if t.cap <= 0 {
		return fmt.Errorf("fluid: tier %q has zero capacity", spec.Name)
	}
	return nil
}

// deriveClasses builds each class's exponential-stage response
// distribution and the shared deterministic leg latency.
func (s *Solver) deriveClasses(classes []Class, wsum float64, d int) {
	s.detSvc = 0
	for i := range s.tiers {
		s.detSvc += s.tiers[i].netSvc + s.tiers[i].diskSvc
	}
	webSpeed := tierSpeed(s.cfg.Web)
	appSpeed := tierSpeed(s.cfg.App)
	dbSpeed := tierSpeed(s.cfg.DB)
	for _, c := range classes {
		if c.Weight <= 0 {
			continue
		}
		cd := classDist{name: c.Name, weight: c.Weight / wsum}
		var rates []float64
		addStage := func(svc float64) {
			if svc > 0 {
				rates = append(rates, 1/svc)
			}
		}
		addStage(svcFor(c, TierWeb, s.cfg.Web.CPUScale, webSpeed))
		addStage(svcFor(c, TierApp, s.cfg.App.CPUScale, appSpeed))
		dbSvc := svcFor(c, TierDB, s.cfg.DB.CPUScale, dbSpeed)
		if dbSvc > 0 {
			if c.Write {
				// max of d iid Exp(μ) = hypoexponential with rates dμ … μ.
				mu := 1 / dbSvc
				for k := d; k >= 1; k-- {
					rates = append(rates, float64(k)*mu)
				}
			} else {
				rates = append(rates, 1/dbSvc)
			}
		}
		cd.rates = distinctRates(rates)
		cd.alphas = hypoAlphas(cd.rates)
		for _, r := range cd.rates {
			cd.expMean += 1 / r
		}
		s.classes = append(s.classes, cd)
	}
}

func tierSpeed(spec TierSpec) float64 {
	var speedSum, coreSum float64
	for _, n := range spec.Nodes {
		speedSum += float64(n.Cores) * n.Speed
		coreSum += float64(n.Cores)
	}
	return speedSum / coreSum
}

// harmonic returns H_d = Σ 1/i, the mean of the maximum of d iid
// exponentials in units of their mean.
func harmonic(d int) float64 {
	h := 0.0
	for i := 1; i <= d; i++ {
		h += 1 / float64(i)
	}
	return h
}

// distinctRates deterministically perturbs duplicate stage rates apart so
// the closed-form hypoexponential CDF (which requires distinct rates)
// stays well conditioned. The perturbation is a pure function of the
// input order.
func distinctRates(rates []float64) []float64 {
	out := append([]float64(nil), rates...)
	for i := 1; i < len(out); i++ {
		for j := 0; j < i; j++ {
			if rel := math.Abs(out[i]-out[j]) / math.Max(out[i], out[j]); rel < 1e-9 {
				out[i] *= 1 + 1e-6*float64(i+1)
				j = -1 // restart against earlier entries
			}
		}
	}
	return out
}

// hypoAlphas returns the coefficients of the hypoexponential CDF
// F(t) = 1 − Σ αᵢ e^(−λᵢ t) for distinct rates λ.
func hypoAlphas(rates []float64) []float64 {
	alphas := make([]float64, len(rates))
	for i, li := range rates {
		a := 1.0
		for j, lj := range rates {
			if j != i {
				a *= lj / (lj - li)
			}
		}
		alphas[i] = a
	}
	return alphas
}

// hypoCDF evaluates the hypoexponential CDF at x ≥ 0. An empty stage list
// is a point mass at zero.
func hypoCDF(rates, alphas []float64, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if len(rates) == 0 {
		return 1
	}
	f := 1.0
	for i, r := range rates {
		f -= alphas[i] * math.Exp(-r*x)
	}
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// erlangCWait is the M/M/c mean queueing delay at per-node arrival rate
// lambda and mean service svc. Utilization is clamped just below 1 so the
// formula stays finite; the dynamics, not the formula, handle overload.
func erlangCWait(lambda, svc float64, c int) float64 {
	pWait := erlangCP(lambda, svc, c)
	if pWait <= 0 {
		return 0
	}
	if c < 1 {
		c = 1
	}
	rho := lambda * svc / float64(c)
	const maxRho = 0.999
	if rho > maxRho {
		rho = maxRho
	}
	return pWait * svc / (float64(c) * (1 - rho))
}

// erlangCP is the Erlang-C probability that an M/M/c arrival has to
// queue. For c = 1 it reduces to the utilization ρ.
func erlangCP(lambda, svc float64, c int) float64 {
	if lambda <= 0 || svc <= 0 {
		return 0
	}
	if c < 1 {
		c = 1
	}
	a := lambda * svc
	rho := a / float64(c)
	const maxRho = 0.999
	if rho > maxRho {
		rho = maxRho
		a = rho * float64(c)
	}
	sum, term := 1.0, 1.0
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	term *= a / float64(c) // a^c / c!
	return term / ((1-rho)*sum + term)
}

// md1Wait is the M/D/1 mean queueing delay: ρS / 2(1−ρ).
func md1Wait(lambda, svc float64) float64 {
	if lambda <= 0 || svc <= 0 {
		return 0
	}
	rho := lambda * svc
	const maxRho = 0.999
	if rho > maxRho {
		rho = maxRho
	}
	return rho * svc / (2 * (1 - rho))
}

// residence is the tier's analytic mean residence time at tier arrival
// rate lambda: deterministic and CPU services plus one M/D/1 wait per
// attached device and the Erlang-C CPU wait.
func (t *tierState) residence(lambda float64) float64 {
	ln := lambda * t.visitsPerNode
	r := t.svcLatency
	r += erlangCWait(ln, t.cpuSvcMean, t.cores) * t.waitScale
	r += md1Wait(ln, t.diskSvc)
	r += md1Wait(ln, t.netSvc)
	if r < 1e-9 {
		r = 1e-9
	}
	return r
}

// step advances one tier by dt given inAmt arriving fluid, returning the
// completed amount. Sub-saturation follows the exact relaxation solution
// of dq/dt = a − q/R; a backlogged tier (q above its equilibrium level)
// drains work-conservingly at capacity.
func (t *tierState) step(inAmt, dt float64) float64 {
	a := inAmt / dt
	lam := a
	if m := 0.95 * t.cap; lam > m {
		lam = m
	}
	r := t.residence(lam)
	qEq := lam * r
	q1 := qEq + (t.q-qEq)*math.Exp(-dt/r)
	out := t.q + inAmt - q1
	capAmt := t.cap * dt
	if out > capAmt {
		out = capAmt
	}
	if excess := t.q - qEq; excess > 0 {
		floor := excess
		if floor > capAmt {
			floor = capAmt
		}
		if out < floor {
			out = floor
		}
	}
	if out < 0 {
		out = 0
	}
	if avail := t.q + inAmt; out > avail {
		out = avail
	}
	newQ := t.q + inAmt - out
	t.qInt += (t.q + newQ) / 2 * dt
	t.q = newQ
	t.done += out
	return out
}

// Now reports the solver's current time.
func (s *Solver) Now() float64 { return s.now }

// SetSessions retargets the admitted population mid-run, the fluid
// equivalent of the DES driver's AddUsers/RemoveUsers. Growth enters the
// think pool immediately (like AddUsers with no ramp); shrinkage drains
// from the think pool first, and sessions caught mid-request leave as
// their requests complete (a leave debt settled against returning fluid).
// Deterministic: the new population is a pure function of the call
// sequence, like every other solver input.
func (s *Solver) SetSessions(n int) {
	if n < 0 {
		n = 0
	}
	delta := float64(n) - float64(s.cfg.Sessions)
	s.cfg.Sessions = n
	if delta >= 0 {
		s.entered += delta
		s.qThink += delta
		return
	}
	leave := -delta
	if leave > s.entered {
		leave = s.entered
	}
	s.entered -= leave
	fromThink := leave
	if fromThink > s.qThink {
		fromThink = s.qThink
	}
	s.qThink -= fromThink
	s.leaveDebt += leave - fromThink
}

// SetTierNodes retargets a tier's node count mid-run — the actuation
// half of an autoscaling policy, the tier-capacity analogue of
// SetSessions. New nodes clone the tier's first node spec (scale-out
// allocates from a homogeneous spare pool). Derived cumulative busy
// counters are folded into epoch baselines before the tier's constants
// are re-derived, so NodeCPUBusy and friends stay continuous and
// monotone across the change; queue mass and completion counters carry
// over untouched. Scaling the database also rebuilds the class
// distributions: the RAIDb-1 write-broadcast latency is the max over d
// replicas, so its hypoexponential shape depends on the replica count.
// Deterministic, like every other solver input.
func (s *Solver) SetTierNodes(tier, n int) {
	if n < 1 {
		n = 1
	}
	spec := s.tierSpec(tier)
	if n == len(spec.Nodes) {
		return
	}
	t := &s.tiers[tier]
	t.cpuBusy0 = s.NodeCPUBusy(tier)
	t.diskBusy0 = s.NodeDiskBusy(tier)
	t.netBusy0 = s.NodeNetBusy(tier)
	t.ops0 = s.NodeOps(tier)
	t.done0 = t.done
	proto := spec.Nodes[0]
	for len(spec.Nodes) < n {
		spec.Nodes = append(spec.Nodes, proto)
	}
	spec.Nodes = spec.Nodes[:n]
	d := len(s.cfg.DB.Nodes)
	// Cannot fail: the new nodes clone a node of the already-validated
	// configuration.
	_ = s.deriveTier(tier, *spec, s.cfg.Classes, s.wsum, d)
	if tier == TierDB {
		s.classes = s.classes[:0]
		s.deriveClasses(s.cfg.Classes, s.wsum, d)
	}
}

// TierNodes reports a tier's current node count.
func (s *Solver) TierNodes(tier int) int { return s.tiers[tier].nodes }

func (s *Solver) tierSpec(tier int) *TierSpec {
	switch tier {
	case TierWeb:
		return &s.cfg.Web
	case TierApp:
		return &s.cfg.App
	default:
		return &s.cfg.DB
	}
}

// Advance integrates to time t: full fixed steps plus one final partial
// step to land exactly on t. Advancing to the past is a no-op.
func (s *Solver) Advance(t float64) {
	for s.now+s.dt <= t+1e-12 {
		s.stepOnce(s.dt)
	}
	if rem := t - s.now; rem > 1e-9 {
		s.stepOnce(rem)
	}
}

func (s *Solver) stepOnce(dt float64) {
	// Ramp-in: sessions enter the think pool uniformly over the window,
	// exactly like the DES driver's uniform start delays.
	if ramp := s.cfg.RampUpSec; ramp > 0 {
		if total := float64(s.cfg.Sessions); s.entered < total {
			in := total / ramp * dt
			if s.entered+in > total {
				in = total - s.entered
			}
			s.entered += in
			s.qThink += in
		}
		if total := float64(s.cfg.Refused); s.refusedActive < total {
			in := total / ramp * dt
			if s.refusedActive+in > total {
				in = total - s.refusedActive
			}
			s.refusedActive += in
		}
	}
	// Think stage: M/∞ with exponential holding. Forward Euler, not the
	// zero-inflow exponential solution: Euler keeps the discrete balance
	// X = qThink/Z exact at steady state (the exponential form would
	// under-drain by (1 − e^(−dt/Z))·Z/dt because returning fluid arrives
	// at the end of the step), so the solver converges to the true closed
	// fixed point independent of step size.
	out := s.qThink * dt / s.think
	if out > s.qThink {
		out = s.qThink
	}
	s.qThink -= out
	x := out
	for i := range s.tiers {
		x = s.tiers[i].step(x, dt)
	}
	// Sessions removed by SetSessions while in service leave at their
	// request's completion: returning fluid pays the leave debt before
	// rejoining the think pool.
	if s.leaveDebt > 0 {
		d := s.leaveDebt
		if d > x {
			d = x
		}
		s.leaveDebt -= d
		x -= d
	}
	s.qThink += x
	// Refused sessions loop think → instant rejection at rate 1/Z each.
	s.rejected += s.refusedActive * dt / s.think
	s.now += dt
}

// Snapshot captures the cumulative counters at the current time;
// StatsBetween turns two snapshots into a measurement window.
type Snapshot struct {
	Time     float64
	Done     float64
	Rejected float64
	QInt     [numTiers]float64
}

// Snapshot returns the current cumulative counters.
func (s *Solver) Snapshot() Snapshot {
	snap := Snapshot{Time: s.now, Done: s.tiers[TierDB].done, Rejected: s.rejected}
	for i := range s.tiers {
		snap.QInt[i] = s.tiers[i].qInt
	}
	return snap
}

// ClassMean is one class's mean response time over a window.
type ClassMean struct {
	Name   string
	MeanMS float64
}

// Stats is one measurement window's aggregate observation, mirroring what
// the DES driver reports for the same window.
type Stats struct {
	DurationSec     float64
	Requests        float64 // successful, in-deadline completions
	Errors          float64 // rejections plus timeouts
	TimeoutFraction float64
	ThroughputRPS   float64
	MeanRTms        float64
	P50ms, P90ms    float64
	P99ms, MaxRTms  float64
	// TierWaitSec is the window's mean queueing delay per tier (Little's
	// law residence minus the no-wait service latency).
	TierWaitSec [numTiers]float64
	PerClass    []ClassMean
}

// StatsBetween computes the window [a, b]. Response times combine the
// analytic per-class service distribution with the window's measured
// queueing delay: mean residence per tier comes from Little's law on the
// integrated queue levels, so overload windows report the physically
// growing backlog delay rather than an equilibrium formula. Each tier's
// wait enters the distribution as an extra exponential stage, not a
// deterministic shift: the M/M/1 sojourn is memoryless, and shifting by
// the mean of a bursty wait would systematically inflate the median.
func (s *Solver) StatsBetween(a, b Snapshot) Stats {
	st := Stats{DurationSec: b.Time - a.Time}
	comps := b.Done - a.Done
	rejected := b.Rejected - a.Rejected
	if comps <= 1e-12 || st.DurationSec <= 0 {
		st.Errors = rejected
		return st
	}
	var pWait [numTiers]float64
	lam := comps / st.DurationSec
	for i := range s.tiers {
		res := (b.QInt[i] - a.QInt[i]) / comps
		w := res - s.tiers[i].svcLatency
		if w < 0 {
			w = 0
		}
		st.TierWaitSec[i] = w
		// Probability an arrival has to wait at all: one minus the chance
		// every leg is clear — Erlang-C for the M/M/c CPU leg, utilization
		// for the single-server deterministic disk and net legs.
		tr := &s.tiers[i]
		lamNode := lam * tr.visitsPerNode
		noWait := 1 - erlangCP(lamNode, tr.cpuSvcMean, tr.cores)
		for _, svc := range [...]float64{tr.diskSvc, tr.netSvc} {
			if svc > 0 {
				rho := lamNode * svc
				if rho > 0.999 {
					rho = 0.999
				}
				noWait *= 1 - rho
			}
		}
		p := 1 - noWait
		if p > 1 {
			p = 1
		}
		if p < 1e-3 {
			p = 1e-3
		}
		pWait[i] = p
	}
	shift := s.detSvc
	classes := s.windowClasses(st.TierWaitSec, pWait, lam)

	timeoutFrac := 0.0
	if to := s.cfg.TimeoutSec; to > 0 {
		timeoutFrac = 1 - mixtureCDF(classes, to-shift)
		// Branch weights sum to 1 only within float rounding; scrub the
		// resulting dust so sub-knee windows report exactly zero.
		if timeoutFrac < 1e-12 {
			timeoutFrac = 0
		}
	}
	st.TimeoutFraction = timeoutFrac
	st.Requests = comps * (1 - timeoutFrac)
	st.Errors = rejected + comps*timeoutFrac
	st.ThroughputRPS = st.Requests / st.DurationSec

	sumW := 0.0
	for _, w := range st.TierWaitSec {
		sumW += w
	}
	mean := shift + sumW
	for _, c := range s.classes {
		mean += c.weight * c.expMean
		st.PerClass = append(st.PerClass, ClassMean{
			Name: c.name, MeanMS: (shift + sumW + c.expMean) * 1000,
		})
	}
	st.MeanRTms = mean * 1000
	st.P50ms = (shift + mixtureQuantile(classes, 0.50)) * 1000
	st.P90ms = (shift + mixtureQuantile(classes, 0.90)) * 1000
	st.P99ms = (shift + mixtureQuantile(classes, 0.99)) * 1000
	n := math.Round(comps)
	if n < 1 {
		n = 1
	}
	pMax := (n - 0.5) / n
	if pMax > 1-1e-12 {
		pMax = 1 - 1e-12
	}
	st.MaxRTms = (shift + mixtureQuantile(classes, pMax)) * 1000
	return st
}

// windowClasses folds the window's per-tier mean waits into each class
// distribution. A tier's wait is an atom-at-zero mixture — with
// probability pWait the arrival queues for an exponential conditional
// wait of mean W/pWait, otherwise it starts service immediately — so the
// per-class distribution expands into one hypoexponential branch per
// subset of tiers that imposed a wait. Zero-wait windows reuse the
// precomputed service-only distributions unchanged.
func (s *Solver) windowClasses(waits, pWait [numTiers]float64, lam float64) []classDist {
	var waitStages [][]float64 // conditional-wait stage rates per waiting tier
	var waitProb []float64
	for i, w := range waits {
		if w > 1e-12 {
			// Conditional-wait shape: an arrival that waits drains the
			// jobs ahead of it (≈ λW/p), pushing the wait from memoryless
			// (open M/M/1, geometrically distributed queue) toward Erlang
			// (deterministic queue). The closed network sits between the
			// two; half-strength matches the DES across the sweep range.
			waitStages = append(waitStages, waitDist(w/pWait[i], 1+lam*w/pWait[i]/4))
			waitProb = append(waitProb, pWait[i])
		}
	}
	if len(waitStages) == 0 {
		return s.classes
	}
	out := make([]classDist, 0, len(s.classes)*(1<<len(waitStages)))
	for _, c := range s.classes {
		for sub := 0; sub < 1<<len(waitStages); sub++ {
			weight := c.weight
			rates := append([]float64(nil), c.rates...)
			for j := range waitStages {
				if sub&(1<<j) != 0 {
					weight *= waitProb[j]
					rates = append(rates, waitStages[j]...)
				} else {
					weight *= 1 - waitProb[j]
				}
			}
			if weight <= 0 {
				continue
			}
			rates = distinctRates(rates)
			cd := classDist{name: c.name, weight: weight, rates: rates, alphas: hypoAlphas(rates)}
			for _, r := range rates {
				cd.expMean += 1 / r
			}
			out = append(out, cd)
		}
	}
	return out
}

// waitDist shapes one tier's conditional wait: mean m with squared
// coefficient of variation 1/shape, where shape grows with the number of
// jobs an arrival finds ahead of it (a deep queue drains as a sum of
// services — Erlang — while a mostly-empty one is memoryless). Returned
// as exponential stage rates for the hypoexponential machinery.
func waitDist(m, shape float64) []float64 {
	switch {
	case shape <= 1+1e-9:
		return []float64{1 / m}
	case shape < 2:
		// Two stages matching mean m and CV² = 1/shape exactly.
		d := math.Sqrt(2/shape - 1)
		return []float64{2 / (m * (1 + d)), 2 / (m * (1 - d))}
	default:
		// Erlang-like: k stages with means spread linearly ±20% around
		// m/k. Equal rates would make the hypoexponential alphas blow up
		// (the closed form needs distinct rates); the spread keeps them
		// well conditioned while matching the mean exactly and the CV²
		// closely.
		k := int(math.Round(shape))
		if k > 8 {
			k = 8
		}
		rates := make([]float64, k)
		var sum float64
		for i := range rates {
			f := 0.8 + 0.4*float64(i)/float64(k-1)
			rates[i] = f
			sum += f
		}
		for i := range rates {
			rates[i] = sum / (rates[i] * m)
		}
		return rates
	}
}

// mixtureCDF evaluates the class-weighted response-distribution CDF at x
// (x relative to the shared deterministic shift).
func mixtureCDF(classes []classDist, x float64) float64 {
	if x <= 0 {
		return 0
	}
	f := 0.0
	for _, c := range classes {
		f += c.weight * hypoCDF(c.rates, c.alphas, x)
	}
	return f
}

// mixtureQuantile inverts the mixture CDF by bisection. Deterministic:
// fixed doubling and iteration counts.
func mixtureQuantile(classes []classDist, p float64) float64 {
	if p <= 0 {
		return 0
	}
	hi := 1e-6
	for _, c := range classes {
		if m := c.expMean * 4; m > hi {
			hi = m
		}
	}
	for i := 0; i < 200 && mixtureCDF(classes, hi) < p; i++ {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if mixtureCDF(classes, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// --- probe views for the monitor -------------------------------------

// TierQueue reports the tier's current fluid level (jobs queued or in
// service across all nodes).
func (s *Solver) TierQueue(tier int) float64 { return s.tiers[tier].q }

// TierCompletions reports cumulative completions out of a tier.
func (s *Solver) TierCompletions(tier int) float64 { return s.tiers[tier].done }

// NodeCPUBusy reports one node's cumulative CPU busy-seconds. Nodes of a
// tier are interchangeable, so every node reports the tier mean. The
// epoch baseline is nonzero only after SetTierNodes re-derived the
// per-request factor mid-run.
func (s *Solver) NodeCPUBusy(tier int) float64 {
	t := &s.tiers[tier]
	return t.cpuBusy0 + (t.done-t.done0)*t.cpuWorkPerReq
}

// NodeDiskBusy reports one node's cumulative disk busy-seconds (0 when
// the tier declares no disk demand).
func (s *Solver) NodeDiskBusy(tier int) float64 {
	t := &s.tiers[tier]
	return t.diskBusy0 + (t.done-t.done0)*t.visitsPerNode*t.diskSvc
}

// NodeNetBusy reports one node's cumulative network busy-seconds.
func (s *Solver) NodeNetBusy(tier int) float64 {
	t := &s.tiers[tier]
	return t.netBusy0 + (t.done-t.done0)*t.visitsPerNode*t.netSvc
}

// NodeOps reports one node's cumulative served operations (the fluid
// equivalent of a station's completion counter).
func (s *Solver) NodeOps(tier int) float64 {
	t := &s.tiers[tier]
	return t.ops0 + (t.done-t.done0)*t.visitsPerNode
}

// NodeJobs reports one node's current in-flight job level.
func (s *Solver) NodeJobs(tier int) float64 {
	t := &s.tiers[tier]
	return t.q / float64(t.nodes)
}

// Capacity reports a tier's service capacity in completions per second.
func (s *Solver) Capacity(tier int) float64 { return s.tiers[tier].cap }

// NodeCores reports a tier's per-node CPU count (the Erlang-C server
// count), the denominator for windowed CPU-utilization sampling:
// util = ΔNodeCPUBusy / (Δt × NodeCores).
func (s *Solver) NodeCores(tier int) int { return s.tiers[tier].cores }
