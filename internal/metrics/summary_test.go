package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatalf("empty summary should be all zeros: %v", s.String())
	}
}

func TestSummaryBasicMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d, want 8", s.Count())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %g, want 5", s.Mean())
	}
	// Population variance of this classic data set is 4; sample variance
	// is 32/7.
	if !almostEqual(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %g, want %g", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", s.Min(), s.Max())
	}
	if !almostEqual(s.Sum(), 40, 1e-12) {
		t.Errorf("sum = %g, want 40", s.Sum())
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Observe(3.5)
	if s.Mean() != 3.5 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatalf("single observation summary wrong: %s", s.String())
	}
	if s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatalf("variance of one observation must be 0")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var whole, a, b Summary
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		whole.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), whole.Count())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean %g != %g", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance %g != %g", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Observe(1)
	a.Observe(2)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Fatalf("merge with empty changed summary")
	}
	b.Merge(a) // merging into empty copies
	if b.Count() != 2 || b.Mean() != 1.5 {
		t.Fatalf("merge into empty failed: %s", b.String())
	}
}

// Property: merging any split of a sequence equals observing the whole
// sequence, for mean and count.
func TestSummaryMergeProperty(t *testing.T) {
	f := func(xs []float64, splitSeed uint64) bool {
		// Keep values finite and moderate.
		clean := xs[:0:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, math.Mod(x, 1e6))
		}
		var whole, a, b Summary
		rng := rand.New(rand.NewPCG(splitSeed, 99))
		for _, x := range clean {
			whole.Observe(x)
			if rng.IntN(2) == 0 {
				a.Observe(x)
			} else {
				b.Observe(x)
			}
		}
		a.Merge(b)
		if a.Count() != whole.Count() {
			return false
		}
		if whole.Count() == 0 {
			return true
		}
		return almostEqual(a.Mean(), whole.Mean(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.9, 90.1}, {0.99, 99.01},
	}
	for _, c := range cases {
		got := s.Quantile(c.q)
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := s.Percentile(50); !almostEqual(got, 50.5, 1e-9) {
		t.Errorf("Percentile(50) = %g", got)
	}
}

func TestSampleEmptyAndReset(t *testing.T) {
	s := NewSample(4)
	if s.Quantile(0.5) != 0 || s.Count() != 0 {
		t.Fatalf("empty sample should report zeros")
	}
	s.Observe(5)
	s.Observe(1)
	if s.Min() != 1 || s.Max() != 5 || s.Count() != 2 {
		t.Fatalf("sample bookkeeping wrong")
	}
	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 {
		t.Fatalf("reset did not clear sample")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestSampleQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		s := NewSample(len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Observe(math.Mod(x, 1e9))
		}
		if s.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			if v < s.Min()-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleValuesSortedCopy(t *testing.T) {
	s := NewSample(0)
	for _, x := range []float64{3, 1, 2} {
		s.Observe(x)
	}
	v := s.Values()
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Values not sorted: %v", v)
	}
	v[0] = 99 // must be a copy
	if s.Min() != 1 {
		t.Fatalf("Values returned internal storage")
	}
}

func TestPearson(t *testing.T) {
	// Perfect positive correlation.
	if r := Pearson([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %g", r)
	}
	// Perfect negative.
	if r := Pearson([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %g", r)
	}
	// Known value: x=(1,2,3), y=(1,3,2) → r = 0.5.
	if r := Pearson([]float64{1, 2, 3}, []float64{1, 3, 2}); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("correlation = %g, want 0.5", r)
	}
	// Degenerate cases.
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Errorf("single pair should be 0")
	}
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Errorf("zero variance should be 0")
	}
	// Unequal lengths use the shorter prefix.
	if r := Pearson([]float64{1, 2, 3, 99}, []float64{10, 20, 30}); math.Abs(r-1) > 1e-12 {
		t.Errorf("prefix correlation = %g", r)
	}
}
