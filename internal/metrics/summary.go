// Package metrics provides the statistical primitives used throughout the
// Elba experiment infrastructure: streaming summaries, percentile
// estimation over recorded samples, time series, and simple confidence
// intervals. All types are deterministic and allocation-conscious so they
// can be updated from the hot path of the discrete-event simulator.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming moments of a sequence of observations
// using Welford's online algorithm. The zero value is an empty summary
// ready for use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Observe adds one observation to the summary.
func (s *Summary) Observe(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another summary into s. Merging an empty summary is a no-op.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.mean, s.m2, s.n = mean, m2, n
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Reset returns the summary to its empty state so the hot path can reuse
// pre-registered summaries across measurement windows without reallocating.
func (s *Summary) Reset() { *s = Summary{} }

// Count reports the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Mean reports the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Sum reports the running sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Min reports the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Variance reports the unbiased sample variance, or 0 when fewer than two
// observations have been made.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev reports the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CI95 reports the half-width of the 95% confidence interval of the mean
// using the normal approximation (adequate at the sample sizes our trials
// produce).
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// String renders the summary for logs and reports.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f",
		s.n, s.mean, s.min, s.max, s.StdDev())
}

// Sample records raw observations so that exact order statistics
// (percentiles, median) can be computed after the fact. It keeps every
// value; trials are bounded so this stays modest.
type Sample struct {
	xs     []float64
	sorted bool
	sum    Summary
}

// NewSample returns a sample with capacity pre-allocated for n values.
func NewSample(n int) *Sample {
	return &Sample{xs: make([]float64, 0, n)}
}

// Observe appends a value to the sample.
func (p *Sample) Observe(x float64) {
	p.xs = append(p.xs, x)
	p.sorted = false
	p.sum.Observe(x)
}

// Count reports the number of recorded values.
func (p *Sample) Count() int { return len(p.xs) }

// Mean reports the arithmetic mean of the recorded values.
func (p *Sample) Mean() float64 { return p.sum.Mean() }

// Min reports the smallest recorded value.
func (p *Sample) Min() float64 { return p.sum.Min() }

// Max reports the largest recorded value.
func (p *Sample) Max() float64 { return p.sum.Max() }

// StdDev reports the sample standard deviation of the recorded values.
func (p *Sample) StdDev() float64 { return p.sum.StdDev() }

// Summary returns the streaming summary of the recorded values.
func (p *Sample) Summary() Summary { return p.sum }

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (p *Sample) Quantile(q float64) float64 {
	if len(p.xs) == 0 {
		return 0
	}
	if !p.sorted {
		sort.Float64s(p.xs)
		p.sorted = true
	}
	if q <= 0 {
		return p.xs[0]
	}
	if q >= 1 {
		return p.xs[len(p.xs)-1]
	}
	pos := q * float64(len(p.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return p.xs[lo]
	}
	frac := pos - float64(lo)
	return p.xs[lo]*(1-frac) + p.xs[hi]*frac
}

// Percentile is shorthand for Quantile(pct/100).
func (p *Sample) Percentile(pct float64) float64 { return p.Quantile(pct / 100) }

// Values returns a copy of the recorded values in insertion-independent
// (sorted) order.
func (p *Sample) Values() []float64 {
	if !p.sorted {
		sort.Float64s(p.xs)
		p.sorted = true
	}
	out := make([]float64, len(p.xs))
	copy(out, p.xs)
	return out
}

// Reset discards all recorded values but keeps the allocation.
func (p *Sample) Reset() {
	p.xs = p.xs[:0]
	p.sorted = false
	p.sum = Summary{}
}

// Pearson computes the Pearson correlation coefficient of two paired
// samples. It returns 0 when fewer than two pairs exist or either side
// has zero variance.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	var sx, sy Summary
	for i := 0; i < n; i++ {
		sx.Observe(xs[i])
		sy.Observe(ys[i])
	}
	var cov float64
	for i := 0; i < n; i++ {
		cov += (xs[i] - sx.Mean()) * (ys[i] - sy.Mean())
	}
	cov /= float64(n - 1)
	den := sx.StdDev() * sy.StdDev()
	if den == 0 {
		return 0
	}
	return cov / den
}
