package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// The sketch-vs-exact differential battery: every property the streaming
// path depends on, pinned against exact order statistics on seeded
// random and adversarial streams. This is the contract that lets the
// campaign folder replace full histograms with sketches without
// weakening any golden — a digest that drifts outside its documented
// rank-error bound fails here first.

// streamGen produces a deterministic observation stream for a seed.
type streamGen struct {
	name string
	gen  func(rng *rand.Rand, n int) []float64
}

var adversarialStreams = []streamGen{
	{"uniform", func(rng *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		return xs
	}},
	{"sorted-ascending", func(rng *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()
		}
		return xs
	}},
	{"sorted-descending", func(rng *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(n-i) + rng.Float64()
		}
		return xs
	}},
	{"constant", func(rng *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 123.456
		}
		return xs
	}},
	{"bimodal", func(rng *rand.Rand, n int) []float64 {
		// Two well-separated modes — the adversarial shape for
		// interpolation across a density gap.
		xs := make([]float64, n)
		for i := range xs {
			if rng.Float64() < 0.7 {
				xs[i] = 10 + rng.NormFloat64()
			} else {
				xs[i] = 10000 + 100*rng.NormFloat64()
			}
		}
		return xs
	}},
	{"heavy-tailed", func(rng *rand.Rand, n int) []float64 {
		// Pareto(α=1.2): the response-time shape overloaded tiers emit.
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Pow(1-rng.Float64(), -1/1.2)
		}
		return xs
	}},
	{"few-distinct", func(rng *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.IntN(5)) * 100
		}
		return xs
	}},
}

// assertWithinRankBound asserts that estimate lies between the exact
// order statistics at ranks (q−ε)·n and (q+ε)·n of the sorted stream.
func assertWithinRankBound(t *testing.T, sorted []float64, d *TDigest, q float64, label string) {
	t.Helper()
	n := len(sorted)
	eps := d.RankError(q)
	loRank := int(math.Floor((q - eps) * float64(n)))
	hiRank := int(math.Ceil((q+eps)*float64(n))) - 1
	if loRank < 0 {
		loRank = 0
	}
	if hiRank > n-1 {
		hiRank = n - 1
	}
	if hiRank < loRank {
		hiRank = loRank
	}
	got := d.Quantile(q)
	if got < sorted[loRank] || got > sorted[hiRank] {
		t.Errorf("%s: Quantile(%g) = %g outside rank window [%g, %g] (ranks %d..%d of %d, ε=%g)",
			label, q, got, sorted[loRank], sorted[hiRank], loRank, hiRank, n, eps)
	}
}

var batteryQuantiles = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}

// TestTDigestRankErrorBound: the headline accuracy property. Every
// stream shape, several sizes and seeds, every report quantile: the
// sketch estimate stays inside the documented rank window of the exact
// sorted sample.
func TestTDigestRankErrorBound(t *testing.T) {
	for _, sg := range adversarialStreams {
		for _, n := range []int{100, 1000, 50000} {
			for seed := uint64(1); seed <= 3; seed++ {
				label := fmt.Sprintf("%s/n=%d/seed=%d", sg.name, n, seed)
				rng := rand.New(rand.NewPCG(seed, 0xe1ba))
				xs := sg.gen(rng, n)
				d := NewTDigest(DefaultTDigestCompression)
				for _, x := range xs {
					d.Observe(x)
				}
				sorted := append([]float64(nil), xs...)
				sort.Float64s(sorted)
				for _, q := range batteryQuantiles {
					assertWithinRankBound(t, sorted, d, q, label)
				}
			}
		}
	}
}

// TestTDigestQuantileMonotone: Quantile must be non-decreasing in q on
// every stream shape — the property the report tables rely on when they
// print p50 ≤ p90 ≤ p99.
func TestTDigestQuantileMonotone(t *testing.T) {
	for _, sg := range adversarialStreams {
		rng := rand.New(rand.NewPCG(42, 0xd1e5))
		xs := sg.gen(rng, 20000)
		d := NewTDigest(DefaultTDigestCompression)
		for _, x := range xs {
			d.Observe(x)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.001 {
			got := d.Quantile(q)
			if got < prev {
				t.Fatalf("%s: Quantile(%g) = %g < Quantile(%g) = %g — not monotone",
					sg.name, q, got, q-0.001, prev)
			}
			prev = got
		}
	}
}

// TestTDigestMergeOrderInsensitive: folding the same chunks in any order
// — sequential, reversed, or as a balanced tree — must agree with the
// exact union within the documented bound. This is what makes campaign
// folds safe: the folder merges per-trial sketches in commit order, and
// a re-fold from the result log (same chunks, same or different
// grouping) lands inside the same window.
func TestTDigestMergeOrderInsensitive(t *testing.T) {
	for _, sg := range adversarialStreams {
		rng := rand.New(rand.NewPCG(77, 0xace))
		xs := sg.gen(rng, 30000)
		const chunks = 16
		parts := make([]*TDigest, chunks)
		for i := range parts {
			parts[i] = NewTDigest(DefaultTDigestCompression)
		}
		for i, x := range xs {
			parts[i%chunks].Observe(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)

		folds := map[string]*TDigest{
			"forward": NewTDigest(DefaultTDigestCompression),
			"reverse": NewTDigest(DefaultTDigestCompression),
		}
		for i := 0; i < chunks; i++ {
			folds["forward"].Merge(parts[i])
			folds["reverse"].Merge(parts[chunks-1-i])
		}
		// Balanced tree: pairwise until one digest remains (associativity).
		tree := make([]*TDigest, chunks)
		for i := range tree {
			tree[i] = NewTDigest(DefaultTDigestCompression)
			tree[i].Merge(parts[i])
		}
		for len(tree) > 1 {
			var next []*TDigest
			for i := 0; i+1 < len(tree); i += 2 {
				tree[i].Merge(tree[i+1])
				next = append(next, tree[i])
			}
			if len(tree)%2 == 1 {
				next = append(next, tree[len(tree)-1])
			}
			tree = next
		}
		folds["tree"] = tree[0]

		for name, d := range folds {
			if d.Count() != uint64(len(xs)) {
				t.Fatalf("%s/%s: merged count %d, want %d", sg.name, name, d.Count(), len(xs))
			}
			for _, q := range batteryQuantiles {
				assertWithinRankBound(t, sorted, d, q, sg.name+"/"+name)
			}
		}
	}
}

// TestTDigestMergeDeterministic: merging the same sequence of digests in
// the same order is bit-reproducible — the byte-identity half of the
// campaign folding contract.
func TestTDigestMergeDeterministic(t *testing.T) {
	build := func() []byte {
		rng := rand.New(rand.NewPCG(3, 1415))
		acc := NewTDigest(DefaultTDigestCompression)
		for c := 0; c < 8; c++ {
			part := NewTDigest(DefaultTDigestCompression)
			for i := 0; i < 5000; i++ {
				part.Observe(rng.ExpFloat64() * 100)
			}
			acc.Merge(part)
		}
		data, err := acc.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Fatal("identical merge sequences produced different serialized digests")
	}
}

// TestTDigestWeightedAddEquivalence: Add(x, w) must agree with observing
// x w times within the bound (the folder's fallback path uses weighted
// adds for sketch-free results).
func TestTDigestWeightedAddEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 42))
	type wx struct {
		x float64
		w uint64
	}
	var items []wx
	var flat []float64
	for i := 0; i < 500; i++ {
		it := wx{x: rng.Float64() * 100, w: uint64(1 + rng.IntN(50))}
		items = append(items, it)
		for j := uint64(0); j < it.w; j++ {
			flat = append(flat, it.x)
		}
	}
	d := NewTDigest(DefaultTDigestCompression)
	for _, it := range items {
		d.Add(it.x, it.w)
	}
	if d.Count() != uint64(len(flat)) {
		t.Fatalf("weighted count %d, want %d", d.Count(), len(flat))
	}
	sort.Float64s(flat)
	for _, q := range batteryQuantiles {
		assertWithinRankBound(t, flat, d, q, "weighted")
	}
}

// TestTDigestVsHistogramDifferential: the two quantile estimators the
// repo now carries must agree on the same stream: each within its own
// documented error of the exact sample, hence within the sum of the two
// windows of each other. Run across stream shapes at the report
// quantiles.
func TestTDigestVsHistogramDifferential(t *testing.T) {
	for _, sg := range adversarialStreams {
		rng := rand.New(rand.NewPCG(99, 0xbeef))
		xs := sg.gen(rng, 20000)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if hi <= lo {
			hi = lo + 1
		}
		const buckets = 400
		h := NewHistogram(lo, hi+1e-9, buckets)
		d := NewTDigest(DefaultTDigestCompression)
		for _, x := range xs {
			h.Observe(x)
			d.Observe(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		width := (hi + 1e-9 - lo) / buckets
		for _, q := range []float64{0.5, 0.9, 0.99} {
			// The histogram's error is one bucket width in value space;
			// the digest's is ε(q) in rank space. Convert the digest's
			// window to values and require the estimates within the sum.
			n := len(sorted)
			eps := d.RankError(q)
			loRank := clampRank(int(math.Floor((q-eps)*float64(n))), n)
			hiRank := clampRank(int(math.Ceil((q+eps)*float64(n)))-1, n)
			window := sorted[hiRank] - sorted[loRank]
			tol := window + width
			dv, hv := d.Quantile(q), h.Quantile(q)
			if diff := math.Abs(dv - hv); diff > tol {
				t.Errorf("%s: q=%g sketch=%g histogram=%g differ by %g > tolerance %g",
					sg.name, q, dv, hv, diff, tol)
			}
		}
	}
}

func clampRank(r, n int) int {
	if r < 0 {
		return 0
	}
	if r > n-1 {
		return n - 1
	}
	return r
}
