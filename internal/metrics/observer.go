package metrics

// Observer receives a stream of observations. Histogram, Summary, Sample,
// and TDigest all implement it, so measurement producers (the simulated
// client driver, the result-log folder) can be pointed at any statistic
// without knowing which one is attached.
type Observer interface {
	Observe(x float64)
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(float64)

// Observe calls f(x).
func (f ObserverFunc) Observe(x float64) { f(x) }

// MultiObserver fans each observation out to every attached observer, in
// order. Nil entries are skipped so call sites can compose optional hooks
// without filtering first.
type MultiObserver []Observer

// Observe forwards x to every non-nil observer.
func (m MultiObserver) Observe(x float64) {
	for _, o := range m {
		if o != nil {
			o.Observe(x)
		}
	}
}
