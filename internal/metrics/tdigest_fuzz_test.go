package metrics

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
)

// FuzzTDigestCodec drives the binary decoder with arbitrary bytes: it
// must never panic, and any input it accepts must re-encode
// byte-identically and behave like a valid digest (monotone quantiles
// inside [min, max]). Valid encodings are seeded so the fuzzer starts
// from the accepting region rather than having to find the magic first.
func FuzzTDigestCodec(f *testing.F) {
	seed := func(fill func(d *TDigest)) {
		d := NewTDigest(100)
		fill(d)
		data, err := d.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed(func(*TDigest) {})
	seed(func(d *TDigest) { d.Observe(1.5) })
	seed(func(d *TDigest) {
		rng := rand.New(rand.NewPCG(1, 2))
		for i := 0; i < 5000; i++ {
			d.Observe(rng.ExpFloat64() * 250)
		}
	})
	seed(func(d *TDigest) {
		d.Add(-math.MaxFloat64, 3)
		d.Add(0, 1<<40)
		d.Add(math.MaxFloat64, 7)
	})
	f.Add([]byte("TDG1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var d TDigest
		if err := d.UnmarshalBinary(data); err != nil {
			return // rejected: fine, as long as we didn't panic
		}
		out, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted digest failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode→encode not byte-identical:\n in: %x\nout: %x", data, out)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := d.Quantile(q)
			if d.Count() == 0 {
				if v != 0 {
					t.Fatalf("empty digest Quantile(%g) = %g", q, v)
				}
				continue
			}
			if math.IsNaN(v) || v < d.Min() || v > d.Max() {
				t.Fatalf("Quantile(%g) = %g outside [%g, %g]", q, v, d.Min(), d.Max())
			}
			if v < prev {
				t.Fatalf("quantiles not monotone at q=%g: %g < %g", q, v, prev)
			}
			prev = v
		}
	})
}
