package metrics

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
)

func TestTDigestEmpty(t *testing.T) {
	d := NewTDigest(100)
	if d.Count() != 0 {
		t.Fatalf("Count = %d, want 0", d.Count())
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := d.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	if got := d.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("empty Quantile(NaN) = %g, want NaN", got)
	}
	if d.Min() != 0 || d.Max() != 0 {
		t.Errorf("empty Min/Max = %g/%g, want 0/0", d.Min(), d.Max())
	}
}

func TestTDigestQuantileContract(t *testing.T) {
	// The argument contract mirrors Histogram.Quantile: clamp out-of-range
	// q, NaN in → NaN out.
	d := NewTDigest(100)
	h := NewHistogram(0, 100, 50)
	rng := rand.New(rand.NewPCG(7, 11))
	for i := 0; i < 1000; i++ {
		x := rng.Float64() * 100
		d.Observe(x)
		h.Observe(x)
	}
	if got, want := d.Quantile(-0.5), d.Quantile(0); got != want {
		t.Errorf("Quantile(-0.5) = %g, want clamp to Quantile(0) = %g", got, want)
	}
	if got, want := d.Quantile(1.5), d.Quantile(1); got != want {
		t.Errorf("Quantile(1.5) = %g, want clamp to Quantile(1) = %g", got, want)
	}
	if got := d.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %g, want NaN", got)
	}
	// Histogram side of the same contract.
	if got, want := h.Quantile(-0.5), h.Quantile(0); got != want {
		t.Errorf("Histogram.Quantile(-0.5) = %g, want %g", got, want)
	}
	if got, want := h.Quantile(1.5), h.Quantile(1); got != want {
		t.Errorf("Histogram.Quantile(1.5) = %g, want %g", got, want)
	}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Histogram.Quantile(NaN) = %g, want NaN", got)
	}
	empty := NewHistogram(0, 1, 4)
	if got := empty.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("empty Histogram.Quantile(NaN) = %g, want NaN", got)
	}
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Histogram.Quantile(0.5) = %g, want 0", got)
	}
}

func TestTDigestExactExtremes(t *testing.T) {
	d := NewTDigest(50)
	rng := rand.New(rand.NewPCG(1, 2))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 50000; i++ {
		x := rng.NormFloat64()*10 + 100
		d.Observe(x)
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if d.Quantile(0) != lo || d.Min() != lo {
		t.Errorf("Quantile(0) = %g, Min = %g, want %g", d.Quantile(0), d.Min(), lo)
	}
	if d.Quantile(1) != hi || d.Max() != hi {
		t.Errorf("Quantile(1) = %g, Max = %g, want %g", d.Quantile(1), d.Max(), hi)
	}
}

func TestTDigestConstantStream(t *testing.T) {
	d := NewTDigest(100)
	for i := 0; i < 10000; i++ {
		d.Observe(42.5)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got := d.Quantile(q); got != 42.5 {
			t.Errorf("constant stream Quantile(%g) = %g, want 42.5", q, got)
		}
	}
	if d.Centroids() > d.MaxCentroids() {
		t.Errorf("centroids %d exceed cap %d", d.Centroids(), d.MaxCentroids())
	}
}

func TestTDigestCentroidCapHeld(t *testing.T) {
	// O(sketch) memory is the whole point: the sealed centroid count must
	// stay bounded at any stream length.
	for _, comp := range []float64{20, 100, 500} {
		d := NewTDigest(comp)
		rng := rand.New(rand.NewPCG(3, uint64(comp)))
		for i := 0; i < 200000; i++ {
			d.Observe(rng.ExpFloat64())
			if i%5000 == 0 {
				if c := d.Centroids(); c > d.MaxCentroids() {
					t.Fatalf("δ=%g: %d centroids at i=%d exceed cap %d", comp, c, i, d.MaxCentroids())
				}
			}
		}
		if c := d.Centroids(); c > d.MaxCentroids() {
			t.Errorf("δ=%g: final %d centroids exceed cap %d", comp, c, d.MaxCentroids())
		}
	}
}

func TestTDigestIgnoresNaNClampsInf(t *testing.T) {
	d := NewTDigest(100)
	d.Observe(math.NaN())
	if d.Count() != 0 {
		t.Fatalf("NaN observation counted: %d", d.Count())
	}
	d.Observe(1)
	d.Observe(math.Inf(1))
	d.Observe(math.Inf(-1))
	if d.Count() != 3 {
		t.Fatalf("Count = %d, want 3", d.Count())
	}
	if !(d.Max() == math.MaxFloat64 && d.Min() == -math.MaxFloat64) {
		t.Errorf("Inf not clamped: min=%g max=%g", d.Min(), d.Max())
	}
}

func TestTDigestResetReuse(t *testing.T) {
	d := NewTDigest(50)
	for i := 0; i < 1000; i++ {
		d.Observe(float64(i))
	}
	d.Reset()
	if d.Count() != 0 || d.Centroids() != 0 {
		t.Fatalf("after Reset: count=%d centroids=%d", d.Count(), d.Centroids())
	}
	d.Observe(7)
	if d.Quantile(0.5) != 7 || d.Min() != 7 || d.Max() != 7 {
		t.Errorf("reused digest broken: q50=%g min=%g max=%g", d.Quantile(0.5), d.Min(), d.Max())
	}
}

func TestTDigestMergeTrivial(t *testing.T) {
	d := NewTDigest(100)
	d.Observe(1)
	d.Observe(2)
	before := d.Quantile(0.5)
	d.Merge(nil)
	d.Merge(NewTDigest(100))
	d.Merge(d)
	if d.Count() != 2 || d.Quantile(0.5) != before {
		t.Errorf("trivial merges changed state: count=%d q50=%g", d.Count(), d.Quantile(0.5))
	}
}

// encodeBoth seals and serializes a digest under both codecs.
func encodeBoth(t *testing.T, d *TDigest) (bin, js []byte) {
	t.Helper()
	bin, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	js, err = d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return bin, js
}

func TestTDigestCodecRoundTrip(t *testing.T) {
	streams := map[string]func(*TDigest){
		"empty": func(*TDigest) {},
		"one":   func(d *TDigest) { d.Observe(3.25) },
		"random": func(d *TDigest) {
			rng := rand.New(rand.NewPCG(9, 9))
			for i := 0; i < 20000; i++ {
				d.Observe(rng.NormFloat64())
			}
		},
		"weighted": func(d *TDigest) {
			d.Add(1, 1000)
			d.Add(2, 1)
			d.Add(3, 123456789)
		},
	}
	for name, fill := range streams {
		t.Run(name, func(t *testing.T) {
			d := NewTDigest(100)
			fill(d)
			bin, js := encodeBoth(t, d)

			var db TDigest
			if err := db.UnmarshalBinary(bin); err != nil {
				t.Fatalf("UnmarshalBinary: %v", err)
			}
			bin2, js2 := encodeBoth(t, &db)
			if !bytes.Equal(bin, bin2) {
				t.Errorf("binary decode→encode not byte-identical")
			}

			var dj TDigest
			if err := dj.UnmarshalJSON(js); err != nil {
				t.Fatalf("UnmarshalJSON: %v", err)
			}
			_, js3 := encodeBoth(t, &dj)
			if !bytes.Equal(js, js2) || !bytes.Equal(js, js3) {
				t.Errorf("JSON decode→encode not byte-identical:\n%s\n%s\n%s", js, js2, js3)
			}

			for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
				if a, b := d.Quantile(q), db.Quantile(q); a != b {
					t.Errorf("binary round-trip Quantile(%g): %g != %g", q, a, b)
				}
				if a, b := d.Quantile(q), dj.Quantile(q); a != b {
					t.Errorf("JSON round-trip Quantile(%g): %g != %g", q, a, b)
				}
			}
		})
	}
}

func TestTDigestCodecRejectsCorrupt(t *testing.T) {
	d := NewTDigest(100)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 5000; i++ {
		d.Observe(rng.Float64())
	}
	bin, _ := encodeBoth(t, d)

	cases := map[string][]byte{
		"empty":       {},
		"magic":       append([]byte("XXXX"), bin[4:]...),
		"truncated":   bin[:len(bin)/2],
		"trailing":    append(append([]byte(nil), bin...), 0xff),
		"flipped-len": func() []byte { b := append([]byte(nil), bin...); b[12] ^= 0x80; return b }(),
	}
	for name, data := range cases {
		var v TDigest
		if err := v.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
	var v TDigest
	if err := v.UnmarshalJSON([]byte(`{"compression":100,"count":5,"min":0,"max":1,"means":[0.5],"weights":[4]}`)); err == nil {
		t.Error("JSON weight-sum mismatch accepted")
	}
	if err := v.UnmarshalJSON([]byte(`{"compression":100,"count":2,"min":0,"max":1,"means":[0.9,0.1],"weights":[1,1]}`)); err == nil {
		t.Error("JSON unsorted means accepted")
	}
}

func TestTDigestObserveZeroAllocs(t *testing.T) {
	d := NewTDigest(100)
	rng := rand.New(rand.NewPCG(13, 17))
	// Prime past the first growth phase.
	for i := 0; i < 100000; i++ {
		d.Observe(rng.Float64())
	}
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		d.Observe(xs[i&4095])
		i++
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f/op in steady state, want 0", allocs)
	}
}

func BenchmarkTDigestObserve(b *testing.B) {
	d := NewTDigest(DefaultTDigestCompression)
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	for i := 0; i < 100000; i++ {
		d.Observe(xs[i&8191])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(xs[i&8191])
	}
}
