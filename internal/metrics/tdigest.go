package metrics

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultTDigestCompression is the compression (δ) used throughout the
// streaming path: ≤ ~2δ centroids, which at δ=100 keeps a sketch near
// 5 KB while holding the documented rank-error bound well under 1% at
// the tail quantiles the reports read.
const DefaultTDigestCompression = 100

// TDigest is a mergeable quantile sketch (Dunning's merging t-digest with
// the k₁ scale function). It summarizes any number of observations in a
// bounded set of weighted centroids — denser near the distribution's
// tails — so campaign-scale result streams can carry response-time
// quantiles in O(δ) memory instead of O(observations).
//
// # Accuracy contract
//
// Quantile(q) is an estimate with a bounded rank error: the returned
// value always lies between the exact order statistics at ranks
// (q−ε(q))·n and (q+ε(q))·n of the observed multiset, where
//
//	ε(q) = max(4·sqrt(q·(1−q)), 1/2) / δ
//
// (δ = the compression chosen at construction). At δ=100 that is at
// most 2% rank error at the median and ≤0.7% at p99, shrinking toward
// the extremes; the property battery in tdigest_property_test.go pins
// this bound on random and adversarial streams, and Merge preserves it.
// Quantile is also monotone in q, and exact for q≤0 (min), q≥1 (max),
// and constant streams.
//
// # Determinism
//
// A digest's state is a pure function of its observation sequence:
// Observe, Merge, and Compress use no randomness and iterate centroids
// in ascending-mean order, so two digests fed the same sequence are
// byte-identical under both codecs. Folding per-trial digests in the
// store's canonical grid order therefore yields campaign sketches that
// are byte-identical at any worker count. Methods are not safe for
// concurrent use.
//
// The quantile argument contract mirrors Histogram.Quantile exactly:
// out-of-range q is clamped into [0, 1], NaN q returns NaN, and an empty
// digest returns 0 — the differential tests assert both types agree.
type TDigest struct {
	compression float64
	min, max    float64
	total       uint64

	// Sealed centroids, sorted by ascending mean.
	means   []float64
	weights []uint64

	// Unsorted observation buffer, folded in by compress().
	bufM []float64
	bufW []uint64

	// Scratch arrays compress() merges into (swapped with means/weights).
	scratchM []float64
	scratchW []uint64

	sorter tdigestSorter
}

// maxTDigestCentroids bounds the sealed centroid count for a compression:
// the merging digest with k₁ lands in [δ/2, 2δ]; the slack absorbs the
// boundary cases around tiny totals.
func maxTDigestCentroids(compression float64) int {
	return 2*int(math.Ceil(compression)) + 8
}

// NewTDigest creates an empty digest with the given compression δ
// (clamped to [20, 1000]). All internal storage is allocated up front,
// so Observe and Merge are allocation-free in steady state.
func NewTDigest(compression float64) *TDigest {
	if compression < 20 || math.IsNaN(compression) {
		compression = 20
	}
	if compression > 1000 {
		compression = 1000
	}
	capC := maxTDigestCentroids(compression)
	bufCap := 8 * int(math.Ceil(compression))
	d := &TDigest{
		compression: compression,
		means:       make([]float64, 0, capC),
		weights:     make([]uint64, 0, capC),
		bufM:        make([]float64, 0, bufCap),
		bufW:        make([]uint64, 0, bufCap),
		scratchM:    make([]float64, 0, capC),
		scratchW:    make([]uint64, 0, capC),
	}
	return d
}

// Compression reports the δ the digest was built with.
func (d *TDigest) Compression() float64 { return d.compression }

// Count reports the total observation weight.
func (d *TDigest) Count() uint64 { return d.total }

// Min reports the smallest observation, or 0 when empty.
func (d *TDigest) Min() float64 {
	if d.total == 0 {
		return 0
	}
	return d.min
}

// Max reports the largest observation, or 0 when empty.
func (d *TDigest) Max() float64 {
	if d.total == 0 {
		return 0
	}
	return d.max
}

// Centroids reports the sealed centroid count (after compaction). The
// streaming ingest test pins it under MaxCentroids at any stream length.
func (d *TDigest) Centroids() int {
	d.Compress()
	return len(d.means)
}

// MaxCentroids reports the hard cap on the sealed centroid count.
func (d *TDigest) MaxCentroids() int { return maxTDigestCentroids(d.compression) }

// Observe adds one observation. NaN observations are ignored (a quantile
// over a partially-NaN stream has no defined rank); ±Inf are clamped to
// the largest finite magnitudes so the sketch stays finite.
func (d *TDigest) Observe(x float64) { d.Add(x, 1) }

// Add folds weight w of value x into the digest. w = 0 is a no-op.
func (d *TDigest) Add(x float64, w uint64) {
	if w == 0 || math.IsNaN(x) {
		return
	}
	if math.IsInf(x, 1) {
		x = math.MaxFloat64
	}
	if math.IsInf(x, -1) {
		x = -math.MaxFloat64
	}
	if d.total == 0 {
		d.min, d.max = x, x
	} else {
		if x < d.min {
			d.min = x
		}
		if x > d.max {
			d.max = x
		}
	}
	if len(d.bufM) == cap(d.bufM) {
		d.compress()
	}
	d.bufM = append(d.bufM, x)
	d.bufW = append(d.bufW, w)
	d.total += w
}

// Merge folds o's centroids into d in ascending-mean order and compacts.
// Merging preserves the rank-error contract: the merged digest's
// quantiles agree with the exact union of both observation multisets
// within the same ε(q). Merging an empty or nil digest is a no-op; o is
// not modified (its buffer is sealed first).
func (d *TDigest) Merge(o *TDigest) {
	if o == nil || d == o || o.total == 0 {
		return
	}
	o.Compress()
	for i := range o.means {
		d.Add(o.means[i], o.weights[i])
	}
	// Centroid means are interior points; the true extremes survive only
	// in o's min/max.
	if o.min < d.min {
		d.min = o.min
	}
	if o.max > d.max {
		d.max = o.max
	}
	d.compress()
}

// Reset returns the digest to empty while keeping its allocations, so a
// pre-sized digest can be reused across trials without allocating.
func (d *TDigest) Reset() {
	d.means = d.means[:0]
	d.weights = d.weights[:0]
	d.bufM = d.bufM[:0]
	d.bufW = d.bufW[:0]
	d.total = 0
	d.min, d.max = 0, 0
}

// Compress seals the observation buffer into the centroid set. Callers
// never need it for correctness — Quantile and the codecs seal on demand
// — but sealing before serialization makes the canonical form explicit.
func (d *TDigest) Compress() {
	if len(d.bufM) > 0 {
		d.compress()
	}
}

// k₁ scale function and its inverse: k(q) = δ/(2π)·asin(2q−1).
func (d *TDigest) scaleK(q float64) float64 {
	if q <= 0 {
		return -d.compression / 4
	}
	if q >= 1 {
		return d.compression / 4
	}
	return d.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

func (d *TDigest) scaleQ(k float64) float64 {
	lim := d.compression / 4
	if k >= lim {
		return 1
	}
	if k <= -lim {
		return 0
	}
	return (math.Sin(k*2*math.Pi/d.compression) + 1) / 2
}

// compress merges the sorted buffer with the sealed centroids into the
// scratch arrays under the k₁ size criterion, then swaps scratch in.
func (d *TDigest) compress() {
	if len(d.bufM) == 0 {
		return
	}
	d.sorter.m, d.sorter.w = d.bufM, d.bufW
	sort.Sort(&d.sorter)

	totalW := float64(d.total)
	d.scratchM = d.scratchM[:0]
	d.scratchW = d.scratchW[:0]

	// Two-way merge of (means, weights) and (bufM, bufW), both sorted.
	i, j := 0, 0
	nextItem := func() (float64, uint64) {
		if i < len(d.means) && (j >= len(d.bufM) || d.means[i] <= d.bufM[j]) {
			m, w := d.means[i], d.weights[i]
			i++
			return m, w
		}
		m, w := d.bufM[j], d.bufW[j]
		j++
		return m, w
	}
	n := len(d.means) + len(d.bufM)

	curM, curW := nextItem()
	var wSoFar float64
	wLimit := totalW * d.scaleQ(d.scaleK(0)+1)
	for k := 1; k < n; k++ {
		m, w := nextItem()
		if wSoFar+float64(curW)+float64(w) <= wLimit {
			// Same centroid: weighted-mean update in deterministic order.
			curM += (m - curM) * float64(w) / float64(curW+w)
			curW += w
			continue
		}
		d.scratchM = append(d.scratchM, curM)
		d.scratchW = append(d.scratchW, curW)
		wSoFar += float64(curW)
		wLimit = totalW * d.scaleQ(d.scaleK(wSoFar/totalW)+1)
		curM, curW = m, w
	}
	d.scratchM = append(d.scratchM, curM)
	d.scratchW = append(d.scratchW, curW)

	d.means, d.scratchM = d.scratchM, d.means
	d.weights, d.scratchW = d.scratchW, d.weights
	d.bufM = d.bufM[:0]
	d.bufW = d.bufW[:0]
}

// Quantile estimates the q-th quantile under the documented rank-error
// bound. The argument contract mirrors Histogram.Quantile: q < 0 is
// clamped to 0, q > 1 to 1, NaN returns NaN, and an empty digest
// returns 0. q=0 and q=1 return the exact min and max.
func (d *TDigest) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if d.total == 0 {
		return 0
	}
	d.Compress()
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	target := q * float64(d.total)

	// Piecewise-linear interpolation through the centroid midpoints,
	// anchored at (rank 0, min) and (rank total, max).
	prevMean := d.min
	prevRank := 0.0
	var cum float64
	for i := range d.means {
		mid := cum + float64(d.weights[i])/2
		if target < mid {
			if mid == prevRank {
				return d.means[i]
			}
			frac := (target - prevRank) / (mid - prevRank)
			return prevMean + frac*(d.means[i]-prevMean)
		}
		prevMean, prevRank = d.means[i], mid
		cum += float64(d.weights[i])
	}
	total := float64(d.total)
	if total == prevRank {
		return d.max
	}
	frac := (target - prevRank) / (total - prevRank)
	return prevMean + frac*(d.max-prevMean)
}

// RankError reports the documented rank-error bound ε(q) for this
// digest's compression: max(4·sqrt(q·(1−q)), 1/2)/δ. The differential
// battery asserts every quantile estimate within this bound.
func (d *TDigest) RankError(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	e := 4 * math.Sqrt(q*(1-q))
	if e < 0.5 {
		e = 0.5
	}
	return e / d.compression
}

// tdigestSorter sorts the observation buffer's parallel arrays by mean.
// It lives inside the digest so sort.Sort sees a stable pointer and the
// flush path stays allocation-free.
type tdigestSorter struct {
	m []float64
	w []uint64
}

func (s *tdigestSorter) Len() int           { return len(s.m) }
func (s *tdigestSorter) Less(i, j int) bool { return s.m[i] < s.m[j] }
func (s *tdigestSorter) Swap(i, j int) {
	s.m[i], s.m[j] = s.m[j], s.m[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// Binary codec. Layout (little-endian):
//
//	magic "TDG1"
//	float64 compression
//	uvarint total weight
//	float64 min, float64 max        (present only when total > 0)
//	uvarint centroid count
//	count × (float64 mean, uvarint weight)
//
// Weights are integral by construction, so uvarint keeps the common case
// (per-trial sketches, weight 1..k) compact. Decoding validates every
// structural invariant and returns an error — never panics — on corrupt
// input; FuzzTDigestCodec pins that.
const tdigestMagic = "TDG1"

// MarshalBinary seals the digest and encodes it compactly.
func (d *TDigest) MarshalBinary() ([]byte, error) {
	d.Compress()
	var varbuf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, 4+8+2*8+binary.MaxVarintLen64*(2+len(d.means))+8*len(d.means))
	out = append(out, tdigestMagic...)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(d.compression))
	out = append(out, varbuf[:binary.PutUvarint(varbuf[:], d.total)]...)
	if d.total > 0 {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(d.min))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(d.max))
	}
	out = append(out, varbuf[:binary.PutUvarint(varbuf[:], uint64(len(d.means)))]...)
	for i := range d.means {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(d.means[i]))
		out = append(out, varbuf[:binary.PutUvarint(varbuf[:], d.weights[i])]...)
	}
	return out, nil
}

// UnmarshalBinary decodes a digest produced by MarshalBinary, validating
// the structural invariants (magic, compression range, centroid cap and
// ordering, weight sum) so corrupt bytes are rejected rather than
// trusted.
func (d *TDigest) UnmarshalBinary(data []byte) error {
	r := binReader{data: data}
	if string(r.take(4)) != tdigestMagic {
		return fmt.Errorf("tdigest: bad magic")
	}
	compression := math.Float64frombits(r.u64())
	if !(compression >= 20 && compression <= 1000) { // also rejects NaN
		return fmt.Errorf("tdigest: compression %g out of range", compression)
	}
	total := r.uvarint()
	var lo, hi float64
	if total > 0 {
		lo = math.Float64frombits(r.u64())
		hi = math.Float64frombits(r.u64())
		if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
			return fmt.Errorf("tdigest: invalid min/max")
		}
	}
	n := r.uvarint()
	if n > uint64(maxTDigestCentroids(compression)) {
		return fmt.Errorf("tdigest: centroid count %d exceeds cap", n)
	}
	if (total == 0) != (n == 0) {
		return fmt.Errorf("tdigest: weight/centroid mismatch")
	}
	means := make([]float64, 0, maxTDigestCentroids(compression))
	weights := make([]uint64, 0, maxTDigestCentroids(compression))
	var sum uint64
	prev := math.Inf(-1)
	for i := uint64(0); i < n; i++ {
		m := math.Float64frombits(r.u64())
		w := r.uvarint()
		if r.err {
			return fmt.Errorf("tdigest: truncated input")
		}
		if math.IsNaN(m) || m < prev || w == 0 {
			return fmt.Errorf("tdigest: invalid centroid %d", i)
		}
		if m < lo || m > hi {
			return fmt.Errorf("tdigest: centroid %d outside [min,max]", i)
		}
		prev = m
		means = append(means, m)
		weights = append(weights, w)
		sum += w
	}
	if r.err {
		return fmt.Errorf("tdigest: truncated input")
	}
	if r.off != len(r.data) {
		return fmt.Errorf("tdigest: %d trailing bytes", len(r.data)-r.off)
	}
	if sum != total {
		return fmt.Errorf("tdigest: weight sum %d != total %d", sum, total)
	}
	fresh := NewTDigest(compression)
	fresh.means = append(fresh.means[:0], means...)
	fresh.weights = append(fresh.weights[:0], weights...)
	fresh.total = total
	fresh.min, fresh.max = lo, hi
	*d = *fresh
	return nil
}

// binReader is a bounds-checked little-endian reader for the codec.
type binReader struct {
	data []byte
	off  int
	err  bool
}

func (r *binReader) take(n int) []byte {
	if r.off+n > len(r.data) {
		r.err = true
		return make([]byte, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u64() uint64 {
	return binary.LittleEndian.Uint64(r.take(8))
}

func (r *binReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = true
		return 0
	}
	r.off += n
	return v
}

// tdigestJSON is the sketch's JSON wire form, used inside store.Result
// (field rt_sketch). Field order is fixed and float encoding is Go's
// shortest round-trip form, so serialization is deterministic and a
// decode→encode cycle is byte-identical — the property the campaign
// cache's replay guarantee rests on.
type tdigestJSON struct {
	Compression float64   `json:"compression"`
	Count       uint64    `json:"count"`
	Min         float64   `json:"min"`
	Max         float64   `json:"max"`
	Means       []float64 `json:"means"`
	Weights     []uint64  `json:"weights"`
}

// MarshalJSON seals the digest and encodes its canonical JSON form.
func (d *TDigest) MarshalJSON() ([]byte, error) {
	d.Compress()
	return json.Marshal(tdigestJSON{
		Compression: d.compression,
		Count:       d.total,
		Min:         d.Min(),
		Max:         d.Max(),
		Means:       d.means,
		Weights:     d.weights,
	})
}

// UnmarshalJSON decodes the JSON form under the same validation as the
// binary codec.
func (d *TDigest) UnmarshalJSON(data []byte) error {
	var j tdigestJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("tdigest: %w", err)
	}
	if !(j.Compression >= 20 && j.Compression <= 1000) {
		return fmt.Errorf("tdigest: compression %g out of range", j.Compression)
	}
	if len(j.Means) != len(j.Weights) {
		return fmt.Errorf("tdigest: %d means vs %d weights", len(j.Means), len(j.Weights))
	}
	if len(j.Means) > maxTDigestCentroids(j.Compression) {
		return fmt.Errorf("tdigest: centroid count %d exceeds cap", len(j.Means))
	}
	if (j.Count == 0) != (len(j.Means) == 0) {
		return fmt.Errorf("tdigest: weight/centroid mismatch")
	}
	if j.Count > 0 && (math.IsNaN(j.Min) || math.IsNaN(j.Max) || j.Min > j.Max) {
		return fmt.Errorf("tdigest: invalid min/max")
	}
	var sum uint64
	prev := math.Inf(-1)
	for i, m := range j.Means {
		if math.IsNaN(m) || m < prev || j.Weights[i] == 0 || m < j.Min || m > j.Max {
			return fmt.Errorf("tdigest: invalid centroid %d", i)
		}
		prev = m
		sum += j.Weights[i]
	}
	if sum != j.Count {
		return fmt.Errorf("tdigest: weight sum %d != total %d", sum, j.Count)
	}
	fresh := NewTDigest(j.Compression)
	fresh.means = append(fresh.means[:0], j.Means...)
	fresh.weights = append(fresh.weights[:0], j.Weights...)
	fresh.total = j.Count
	if j.Count > 0 {
		fresh.min, fresh.max = j.Min, j.Max
	}
	*d = *fresh
	return nil
}
