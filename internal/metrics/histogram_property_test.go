package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// Property: Quantile is monotone non-decreasing in q for any observation
// set, including ones full of clamped under/overflow values.
func TestHistogramQuantileMonotoneInQ(t *testing.T) {
	f := func(raw []float64, seed uint64) bool {
		h := NewHistogram(-50, 50, 40)
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			h.Observe(math.Mod(x, 200)) // spread across in-range and clamped
		}
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		prevQ, prevV := 0.0, h.Quantile(0)
		for i := 0; i < 20; i++ {
			q := prevQ + rng.Float64()*(1-prevQ)
			v := h.Quantile(q)
			if v < prevV {
				t.Logf("quantile not monotone: Q(%g)=%g < Q(%g)=%g", q, v, prevQ, prevV)
				return false
			}
			prevQ, prevV = q, v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: on uniform in-range data the bucketed estimate agrees with the
// exact order statistics from Sample to within one bucket width.
func TestHistogramQuantileAgreesWithSampleWithinBucket(t *testing.T) {
	const lo, hi, buckets = 0.0, 100.0, 50
	width := (hi - lo) / buckets
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xdeadbeef))
		h := NewHistogram(lo, hi, buckets)
		s := NewSample(0)
		n := 100 + int(seed%400)
		for i := 0; i < n; i++ {
			x := lo + rng.Float64()*(hi-lo)
			h.Observe(x)
			s.Observe(x)
		}
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
			// The two estimators define quantiles differently — bucketed
			// CDF vs interpolation between order statistics — so their
			// effective ranks can disagree by one sample. Where the data
			// is locally sparse (the tails), one rank can span several
			// buckets; allow that rank slack on top of the bucket width.
			slack := 1 / float64(n)
			floor := s.Quantile(math.Max(0, q-slack)) - width
			ceil := s.Quantile(math.Min(1, q+slack)) + width
			if v := h.Quantile(q); v < floor || v > ceil {
				t.Logf("q=%g: histogram %.3f outside sample band [%.3f, %.3f]",
					q, v, floor, ceil)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Degenerate inputs: empty histograms answer 0 for every q; histograms
// holding only clamped values answer within the clamping bucket's bounds.
func TestHistogramQuantileDegenerateInputs(t *testing.T) {
	empty := NewHistogram(0, 10, 10)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := empty.Quantile(q); v != 0 {
			t.Fatalf("empty histogram Quantile(%g) = %g, want 0", q, v)
		}
	}

	under := NewHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		under.Observe(-100)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if v := under.Quantile(q); v < 0 || v > 1 {
			t.Fatalf("underflow-only Quantile(%g) = %g, want within first bucket [0,1)", q, v)
		}
	}

	over := NewHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		over.Observe(1e9)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if v := over.Quantile(q); v < 9 || v > 10 {
			t.Fatalf("overflow-only Quantile(%g) = %g, want within last bucket [9,10)", q, v)
		}
	}
}
