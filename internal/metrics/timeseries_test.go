package metrics

import (
	"strings"
	"testing"
)

func TestTimeSeriesWindowAndMean(t *testing.T) {
	ts := NewTimeSeries("cpu")
	for i := 0; i < 10; i++ {
		ts.Append(float64(i), float64(i)*10)
	}
	if ts.Len() != 10 || ts.Name() != "cpu" {
		t.Fatalf("basic bookkeeping wrong")
	}
	w := ts.Window(2, 5)
	if len(w) != 3 || w[0].T != 2 || w[2].T != 4 {
		t.Fatalf("window = %v", w)
	}
	m, ok := ts.MeanIn(2, 5)
	if !ok || m != 30 {
		t.Fatalf("MeanIn = %g, %v", m, ok)
	}
	mx, ok := ts.MaxIn(0, 10)
	if !ok || mx != 90 {
		t.Fatalf("MaxIn = %g", mx)
	}
}

func TestTimeSeriesEmptyWindow(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Append(1, 5)
	if _, ok := ts.MeanIn(10, 20); ok {
		t.Fatalf("MeanIn of empty window should report !ok")
	}
	if _, ok := ts.MaxIn(10, 20); ok {
		t.Fatalf("MaxIn of empty window should report !ok")
	}
}

func TestTimeSeriesOutOfOrderSorted(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Append(3, 30)
	ts.Append(1, 10)
	ts.Append(2, 20)
	p := ts.Points()
	if p[0].T != 1 || p[1].T != 2 || p[2].T != 3 {
		t.Fatalf("Points not sorted: %v", p)
	}
	// original storage must be untouched
	if ts.At(0).T != 3 {
		t.Fatalf("Points mutated internal order")
	}
}

func TestTimeSeriesSummarizeAndCSV(t *testing.T) {
	ts := NewTimeSeries("util")
	ts.Append(0, 1)
	ts.Append(1, 3)
	s := ts.Summarize()
	if s.Count() != 2 || s.Mean() != 2 {
		t.Fatalf("summarize wrong: %s", s.String())
	}
	csv := ts.CSV()
	if !strings.HasPrefix(csv, "t,util\n") {
		t.Fatalf("csv header missing: %q", csv)
	}
	if !strings.Contains(csv, "1.000,3.000000") {
		t.Fatalf("csv row missing: %q", csv)
	}
}
