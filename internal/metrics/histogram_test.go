package metrics

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Errorf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d", h.Count())
	}
	lo, hi := h.BucketBounds(3)
	if lo != 3 || hi != 4 {
		t.Errorf("bounds(3) = [%g,%g)", lo, hi)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Observe(-1)
	h.Observe(100)
	h.Observe(10) // exactly hi goes to overflow
	if h.Bucket(0) != 1 {
		t.Errorf("underflow not clamped to first bucket")
	}
	if h.Bucket(4) != 2 {
		t.Errorf("overflow not clamped to last bucket: %d", h.Bucket(4))
	}
	if h.underflow != 1 || h.overflow != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.underflow, h.overflow)
	}
}

func TestHistogramQuantileAgainstSample(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	h := NewHistogram(0, 1000, 2000)
	s := NewSample(0)
	for i := 0; i < 20000; i++ {
		x := rng.ExpFloat64() * 100
		if x >= 1000 {
			x = 999.9
		}
		h.Observe(x)
		s.Observe(x)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		hq, sq := h.Quantile(q), s.Quantile(q)
		if math.Abs(hq-sq) > 2.0 { // within a couple of bucket widths
			t.Errorf("q=%g: histogram %.2f vs sample %.2f", q, hq, sq)
		}
	}
}

func TestHistogramQuantileEdge(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile should be 0")
	}
	h.Observe(5.5)
	if q := h.Quantile(1.1); q < 5 || q > 6 {
		t.Fatalf("clamped quantile out of bucket: %g", q)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for invalid bounds")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(1.6)
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatalf("render produced no bars:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("expected 4 lines:\n%s", out)
	}
}

// Property: total count equals observations; quantile(1) <= hi.
func TestHistogramCountProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-100, 100, 50)
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Observe(math.Mod(x, 500))
			n++
		}
		return h.Count() == int64(n) && h.Quantile(1) <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
