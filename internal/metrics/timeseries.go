package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (time, value) observation in a time series. Time is in
// seconds from an arbitrary epoch (the simulator uses simulated seconds).
type Point struct {
	T float64
	V float64
}

// TimeSeries is an append-only sequence of timestamped values, such as the
// CPU utilization samples a monitor produces for one host.
type TimeSeries struct {
	name   string
	points []Point
}

// NewTimeSeries creates a named, empty series.
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{name: name}
}

// Name reports the series name.
func (ts *TimeSeries) Name() string { return ts.name }

// Append adds a point. Points are expected in non-decreasing time order;
// out-of-order appends are tolerated and sorted lazily by consumers.
func (ts *TimeSeries) Append(t, v float64) {
	ts.points = append(ts.points, Point{T: t, V: v})
}

// Len reports the number of points.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// At returns the i-th point in insertion order.
func (ts *TimeSeries) At(i int) Point { return ts.points[i] }

// Points returns a copy of all points sorted by time.
func (ts *TimeSeries) Points() []Point {
	out := make([]Point, len(ts.points))
	copy(out, ts.points)
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Window returns the points with lo <= T < hi, sorted by time.
func (ts *TimeSeries) Window(lo, hi float64) []Point {
	var out []Point
	for _, p := range ts.points {
		if p.T >= lo && p.T < hi {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// MeanIn reports the mean value of points with lo <= T < hi, and whether
// any points fell in the window.
func (ts *TimeSeries) MeanIn(lo, hi float64) (float64, bool) {
	var s Summary
	for _, p := range ts.points {
		if p.T >= lo && p.T < hi {
			s.Observe(p.V)
		}
	}
	if s.Count() == 0 {
		return 0, false
	}
	return s.Mean(), true
}

// MaxIn reports the maximum value of points with lo <= T < hi, and whether
// any points fell in the window.
func (ts *TimeSeries) MaxIn(lo, hi float64) (float64, bool) {
	found := false
	m := math.Inf(-1)
	for _, p := range ts.points {
		if p.T >= lo && p.T < hi {
			found = true
			if p.V > m {
				m = p.V
			}
		}
	}
	if !found {
		return 0, false
	}
	return m, true
}

// Summarize returns a streaming summary over every point value.
func (ts *TimeSeries) Summarize() Summary {
	var s Summary
	for _, p := range ts.points {
		s.Observe(p.V)
	}
	return s
}

// CSV renders the series as "t,v" lines with a header, suitable for
// plotting tools.
func (ts *TimeSeries) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t,%s\n", ts.name)
	for _, p := range ts.Points() {
		fmt.Fprintf(&b, "%.3f,%.6f\n", p.T, p.V)
	}
	return b.String()
}
