package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into fixed-width buckets over [Lo, Hi).
// Values outside the range are clamped into the first or last bucket, and
// tracked separately as underflow/overflow counts.
type Histogram struct {
	lo, hi    float64
	width     float64
	buckets   []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram creates a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo, which indicates a programming
// error rather than a runtime condition.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: invalid histogram bounds [%g,%g) n=%d", lo, hi, n))
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int64, n)}
}

// Observe adds one observation.
func (h *Histogram) Observe(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
		h.buckets[0]++
	case x >= h.hi:
		h.overflow++
		h.buckets[len(h.buckets)-1]++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard float rounding at the upper edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Reset clears all counts while keeping the bucket allocation, so a
// pre-sized histogram can be reused across measurement windows without
// allocating.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.underflow, h.overflow, h.total = 0, 0, 0
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Bucket reports the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Buckets reports the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// BucketBounds reports the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	lo = h.lo + float64(i)*h.width
	return lo, lo + h.width
}

// Quantile estimates the q-th quantile by linear interpolation within the
// bucket that contains the target rank.
//
// The argument contract is explicit, and TDigest.Quantile mirrors it so
// the sketch-vs-exact differential tests can assert both types agree:
// q < 0 is clamped to 0, q > 1 is clamped to 1, NaN q returns NaN, and
// an empty histogram returns 0 for every q.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo, _ := h.BucketBounds(i)
			frac := (target - cum) / float64(c)
			return lo + frac*h.width
		}
		cum = next
	}
	return h.hi
}

// Render draws a simple ASCII bar chart of the histogram, at most width
// characters wide, for inclusion in experiment reports.
func (h *Histogram) Render(width int) string {
	if width < 8 {
		width = 8
	}
	var peak int64
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.buckets {
		lo, hi := h.BucketBounds(i)
		bar := 0
		if peak > 0 {
			bar = int(math.Round(float64(c) / float64(peak) * float64(width)))
		}
		fmt.Fprintf(&b, "%10.1f-%-10.1f |%s %d\n", lo, hi, strings.Repeat("#", bar), c)
	}
	return b.String()
}
