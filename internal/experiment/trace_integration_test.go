package experiment

import (
	"math"
	"strings"
	"testing"

	"elba/internal/bottleneck"
	"elba/internal/report"
	"elba/internal/spec"
	"elba/internal/store"
	"elba/internal/trace"
)

// TestTracedSweepDeterministicAcrossWorkers extends the tentpole
// determinism property to tracing: with every request traced, the stored
// results — trace reports, exemplar span trees and all — and the Chrome
// trace export are byte-identical for every worker count.
func TestTracedSweepDeterministicAcrossWorkers(t *testing.T) {
	traced := func(r *Runner) {
		r.TraceRate = 1
		r.TraceExemplars = 2
	}
	export := func(st *store.Store) string {
		data, err := report.TraceEventsJSON(st, "rubis-it")
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	_, baseJSON, baseStore := runGrid(t, 1, traced)
	if !strings.Contains(baseJSON, `"trace"`) {
		t.Fatalf("traced sweep stored no trace reports")
	}
	baseExport := export(baseStore)
	for _, workers := range []int{4, 8} {
		_, jsonText, st := runGrid(t, workers, traced)
		if jsonText != baseJSON {
			t.Fatalf("workers=%d: traced store JSON diverged from sequential run", workers)
		}
		if export(st) != baseExport {
			t.Fatalf("workers=%d: Chrome trace export diverged from sequential run", workers)
		}
	}
}

// TestTracingLeavesMeasurementsUntouched: a traced sweep must measure
// exactly what an untraced sweep measures — tracing is pure observation.
// Only the trace field may differ between the two serializations.
func TestTracingLeavesMeasurementsUntouched(t *testing.T) {
	plainCSV, _, _ := runGrid(t, 2, nil)
	tracedCSV, _, _ := runGrid(t, 2, func(r *Runner) { r.TraceRate = 0.25; r.TraceExemplars = 1 })
	if tracedCSV != plainCSV {
		t.Fatalf("tracing changed measured results:\n--- plain ---\n%s\n--- traced ---\n%s",
			plainCSV, tracedCSV)
	}
}

// TestTraceReportExplainsResponseTime checks the stored trace report of a
// single traced trial: decomposition rows cover every tier, exemplars are
// ordered slowest-first, and each exemplar's spans account for its
// end-to-end response time.
func TestTraceReportExplainsResponseTime(t *testing.T) {
	r := testRunner(t)
	r.TraceRate = 1
	r.TraceExemplars = 4
	e := rubisExperiment(t, `workload { users 100; writeratio 15; }`)
	out, err := r.RunTrialAt(e, spec.Topology{Web: 1, App: 2, DB: 1}, 100, 15)
	if err != nil {
		t.Fatal(err)
	}
	tr := out.Result.Trace
	if tr == nil || tr.Sampled == 0 {
		t.Fatalf("traced trial stored no trace report: %+v", tr)
	}
	tiers := map[string]bool{}
	for _, row := range tr.Rows {
		if row.Interaction == "all" {
			tiers[row.Tier] = true
			if row.Count != tr.Sampled {
				t.Fatalf("aggregate row %s counts %d of %d traces", row.Tier, row.Count, tr.Sampled)
			}
		}
	}
	for _, tier := range []string{"web", "app", "db"} {
		if !tiers[tier] {
			t.Fatalf("decomposition missing tier %s (have %v)", tier, tiers)
		}
	}
	if len(tr.Exemplars) != 4 {
		t.Fatalf("kept %d exemplars, want 4", len(tr.Exemplars))
	}
	for i, ex := range tr.Exemplars {
		if i > 0 && ex.RTms > tr.Exemplars[i-1].RTms {
			t.Fatalf("exemplars not slowest-first: %f after %f", ex.RTms, tr.Exemplars[i-1].RTms)
		}
		var sum float64
		for _, s := range ex.Spans {
			sum += s.WaitMs + s.ServiceMs
		}
		if ex.Outcome == "ok" {
			// Broadcast-write replica legs overlap, so the flat span sum can
			// exceed RT; the per-tier contributions must still match it.
			web, app, db := exemplarContributions(ex.Spans)
			if total := web + app + db; math.Abs(total-ex.RTms) > 1e-6 {
				t.Fatalf("exemplar %d: tier contributions sum to %f ms, RT %f ms", i, total, ex.RTms)
			}
			if sum < ex.RTms-1e-6 {
				t.Fatalf("exemplar %d: spans cover %f ms < RT %f ms", i, sum, ex.RTms)
			}
		}
	}
}

// exemplarContributions mirrors Trace.TierContributions on serialized
// spans: web and app sum, the db tier counts its slowest replica leg.
func exemplarContributions(spans []trace.SpanRecord) (web, app, db float64) {
	for _, s := range spans {
		tot := s.WaitMs + s.ServiceMs
		switch s.Tier {
		case "web":
			web += tot
		case "app":
			app += tot
		case "db":
			if tot > db {
				db = tot
			}
		}
	}
	return
}

// TestTraceVerdictAgreesWithUtilization is the cross-check the tentpole
// promises: on a saturation sweep, the tier the critical paths of traced
// requests point at is the tier the utilization-based detector names.
func TestTraceVerdictAgreesWithUtilization(t *testing.T) {
	r := testRunner(t)
	r.TraceRate = 1
	r.TraceExemplars = 0
	e := rubisExperiment(t, `
		topologies 1-2-1;
		workload { users 100 to 700 step 100; writeratio 15; }`)
	if err := r.RunExperiment(e); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, res := range r.Store().All() {
		if res.Trace == nil || !res.Completed {
			continue
		}
		// Detect names a server tier once it passes the near-saturation
		// threshold; below that it answers "none" and there is no CPU-side
		// verdict to compare against.
		cv := bottleneck.Detect(res, bottleneck.DefaultThresholds)
		if cv.Tier != "web" && cv.Tier != "app" && cv.Tier != "db" {
			continue
		}
		checked++
		tv := res.Trace.Verdict
		if tv.Tier != cv.Tier {
			t.Fatalf("%s: critical-path verdict %q (share %.0f%%) disagrees with CPU verdict %q (%s)",
				res.Key, tv.Tier, tv.Share*100, cv.Tier, cv.Reason)
		}
		// At saturation the dominant tier's latency is queueing, not work:
		// the trace-level signature of the paper's CPU-level observation.
		if tv.QueueShare < 0.5 {
			t.Fatalf("%s: saturated %s tier spends only %.0f%% of its latency queued",
				res.Key, tv.Tier, tv.QueueShare*100)
		}
	}
	if checked == 0 {
		t.Fatalf("sweep produced no saturated completed trials to cross-check")
	}
}
