package experiment

import (
	"context"
	"errors"
	"fmt"

	"elba/internal/spec"
)

// KneeSearchResult reports an adaptive saturation-point search.
type KneeSearchResult struct {
	// Users is the estimated largest population meeting the SLO.
	Users int
	// ViolationUsers is the smallest tested population violating it.
	ViolationUsers int
	// Trials counts the experiments the search actually spent: probes
	// served from the trial cache (repeated populations within a sweep,
	// or points computed by an earlier sweep sharing the runner's cache)
	// cost nothing and are not counted.
	Trials int
	// Probes records every executed (users, avgRTms, completed)
	// measurement; cache-served probes do not appear.
	Probes []KneeProbe
}

// KneeProbe is one measurement taken by the search.
type KneeProbe struct {
	Users     int
	AvgRTms   float64
	Completed bool
}

// KneeSearch locates a configuration's SLO knee by bisection instead of a
// uniform sweep. The paper runs full grids and notes that "the best
// heuristics for experimental design is a topic of ongoing research and
// beyond the scope of this paper" (§II); bisection finds the same knee in
// O(log n) trials, which matters when each trial costs minutes of
// testbed time.
//
// The search brackets [lo, hi]: lo must meet the SLO (it is probed
// first), and if hi also meets it the search reports hi with no
// violation. Resolution is the search's stopping granularity in users.
//
// Probes run through the runner's trial cache when one is attached, so
// a re-anchored search (new bracket, same spec) reuses every previously
// measured population; without a shared cache an ephemeral per-sweep
// cache still dedupes repeated populations — bisection over a shrinking
// bracket never revisits a population on its own, but the anchor points
// sit outside the loop, and a collapsed interval (hi - lo <= resolution)
// ends the search right back on them. Either way the trial budget per
// sweep is independent of how the probing strategy lands. Errors are
// never cached: a failed testbed run may be retried.
func (r *Runner) KneeSearch(e *spec.Experiment, topo spec.Topology,
	writeRatioPct, sloMS float64, lo, hi, resolution int) (KneeSearchResult, error) {

	if sloMS <= 0 {
		return KneeSearchResult{}, fmt.Errorf("experiment: knee search needs a positive SLO")
	}
	cache := r.TrialCache
	if cache == nil {
		cache = newEphemeralTrialCache()
	}
	res := KneeSearchResult{}
	probe := func(users int) (bool, error) {
		out, err := r.runTrialAt(context.Background(), cache, e, topo, users, writeRatioPct)
		if err != nil {
			return false, err
		}
		if !out.FromCache {
			res.Trials++
			res.Probes = append(res.Probes, KneeProbe{
				Users: users, AvgRTms: out.Result.AvgRTms, Completed: out.Result.Completed,
			})
		}
		return out.Result.Completed && out.Result.AvgRTms <= sloMS, nil
	}

	users, violation, err := kneeBisect(probe, lo, hi, resolution)
	if err != nil {
		if errors.Is(err, errKneeLowerBound) {
			return res, fmt.Errorf("experiment: lower bound %d users already violates the %g ms SLO", lo, sloMS)
		}
		return res, err
	}
	res.Users = users
	res.ViolationUsers = violation
	return res, nil
}

// errKneeLowerBound marks a search whose lower bound already fails the
// acceptance predicate, so no bracket exists.
var errKneeLowerBound = errors.New("experiment: knee-search lower bound fails the predicate")

// kneeBisect is the trial-free bisection core of KneeSearch: it locates
// the boundary of an acceptance predicate over the user axis. probe
// reports whether a population meets the objective; the search assumes the
// predicate is (approximately) monotone — true at lo, false at hi —
// bisects the bracket to the requested resolution, and returns the last
// accepted population plus the smallest probed violation (0 when hi
// passes). On a non-monotone predicate it still terminates in O(log n)
// probes with probe(users) = true and probe(violation) = false; which
// boundary it converges to depends on which probes land in the dips.
func kneeBisect(probe func(users int) (bool, error), lo, hi, resolution int) (users, violation int, err error) {
	if lo < 1 || hi <= lo {
		return 0, 0, fmt.Errorf("experiment: knee search needs 1 <= lo < hi")
	}
	if resolution < 1 {
		resolution = 1
	}
	okLo, err := probe(lo)
	if err != nil {
		return 0, 0, err
	}
	if !okLo {
		return 0, lo, errKneeLowerBound
	}
	okHi, err := probe(hi)
	if err != nil {
		return 0, 0, err
	}
	if okHi {
		return hi, 0, nil
	}
	good, bad := lo, hi
	for bad-good > resolution {
		mid := (good + bad) / 2
		ok, err := probe(mid)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			good = mid
		} else {
			bad = mid
		}
	}
	return good, bad, nil
}
