package experiment

import (
	"fmt"

	"elba/internal/spec"
)

// KneeSearchResult reports an adaptive saturation-point search.
type KneeSearchResult struct {
	// Users is the estimated largest population meeting the SLO.
	Users int
	// ViolationUsers is the smallest tested population violating it.
	ViolationUsers int
	// Trials counts the experiments the search spent.
	Trials int
	// Probes records every (users, avgRTms, completed) measurement.
	Probes []KneeProbe
}

// KneeProbe is one measurement taken by the search.
type KneeProbe struct {
	Users     int
	AvgRTms   float64
	Completed bool
}

// KneeSearch locates a configuration's SLO knee by bisection instead of a
// uniform sweep. The paper runs full grids and notes that "the best
// heuristics for experimental design is a topic of ongoing research and
// beyond the scope of this paper" (§II); bisection finds the same knee in
// O(log n) trials, which matters when each trial costs minutes of
// testbed time.
//
// The search brackets [lo, hi]: lo must meet the SLO (it is probed
// first), and if hi also meets it the search reports hi with no
// violation. Resolution is the search's stopping granularity in users.
func (r *Runner) KneeSearch(e *spec.Experiment, topo spec.Topology,
	writeRatioPct, sloMS float64, lo, hi, resolution int) (KneeSearchResult, error) {

	if lo < 1 || hi <= lo {
		return KneeSearchResult{}, fmt.Errorf("experiment: knee search needs 1 <= lo < hi")
	}
	if resolution < 1 {
		resolution = 1
	}
	if sloMS <= 0 {
		return KneeSearchResult{}, fmt.Errorf("experiment: knee search needs a positive SLO")
	}
	res := KneeSearchResult{}
	probe := func(users int) (bool, error) {
		out, err := r.RunTrialAt(e, topo, users, writeRatioPct)
		if err != nil {
			return false, err
		}
		res.Trials++
		ok := out.Result.Completed && out.Result.AvgRTms <= sloMS
		res.Probes = append(res.Probes, KneeProbe{
			Users: users, AvgRTms: out.Result.AvgRTms, Completed: out.Result.Completed,
		})
		return ok, nil
	}

	okLo, err := probe(lo)
	if err != nil {
		return res, err
	}
	if !okLo {
		return res, fmt.Errorf("experiment: lower bound %d users already violates the %g ms SLO", lo, sloMS)
	}
	okHi, err := probe(hi)
	if err != nil {
		return res, err
	}
	if okHi {
		res.Users = hi
		return res, nil
	}
	good, bad := lo, hi
	for bad-good > resolution {
		mid := (good + bad) / 2
		ok, err := probe(mid)
		if err != nil {
			return res, err
		}
		if ok {
			good = mid
		} else {
			bad = mid
		}
	}
	res.Users = good
	res.ViolationUsers = bad
	return res, nil
}
