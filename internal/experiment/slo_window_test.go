package experiment

import (
	"testing"

	"elba/internal/store"
)

// stallClauses is the shared scenario for the empty-window regressions: a
// steady population whose only database crashes from 100 s to 150 s into
// the run, so ten 5-second observation windows complete nothing — every
// request fails fast and the OK record stream goes silent.
const stallClauses = `
	topology { web 1; app 1; db 1; }
	workload { users 100; writeratio 15; }
	faults   { MYSQL1 at 100s for 50s; }`

func oneResult(t *testing.T, st *store.Store) store.Result {
	t.Helper()
	rs := st.Filter(func(store.Result) bool { return true })
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1", len(rs))
	}
	return rs[0]
}

// TestEmptyWindowCarriesQuantiles is the stall regression: an observation
// window with no completions must carry the last non-empty window's
// response-time quantiles forward instead of reporting zeros. A latency
// floor assert (p90 over a served window is always positive) would
// trivially pass on zeros, so with the carry in place the ten crashed
// windows judge the last observed behaviour and the whole run stays
// violation-free.
func TestEmptyWindowCarriesQuantiles(t *testing.T) {
	st := exprExperiment(t, "stall-carry", stallClauses+`
		slo { assert p90(rt) > 0s; }`)
	r := oneResult(t, st)
	if r.SLOWindows != 60 {
		t.Fatalf("SLOWindows = %d, want 60", r.SLOWindows)
	}
	if r.SLOViolations != 0 {
		t.Fatalf("carried quantiles must keep p90(rt) > 0 through the stall; violated %d windows at %v",
			r.SLOViolations, r.SLOViolatedAt)
	}
}

// TestEmptyWindowGoodputDrops is the companion proving the stall is real:
// x() is goodput — OK, in-deadline completions per second — so the same
// crashed windows that carry their quantiles still report (near-)zero
// throughput, and a goodput floor flags exactly the crash span.
func TestEmptyWindowGoodputDrops(t *testing.T) {
	st := exprExperiment(t, "stall-goodput", stallClauses+`
		slo { assert x() > 2; }`)
	r := oneResult(t, st)
	if r.SLOViolations == 0 {
		t.Fatal("crashed windows reported healthy goodput")
	}
	if r.SLOViolations > 12 {
		t.Fatalf("goodput floor violated %d windows, want ≈10 (the crash span)", r.SLOViolations)
	}
	first := r.SLOViolatedAt[0]
	last := r.SLOViolatedAt[len(r.SLOViolatedAt)-1]
	if first < 95 || first > 110 {
		t.Errorf("first goodput violation at %gs, want at the 100s crash", first)
	}
	if last < 140 || last > 155 {
		t.Errorf("last goodput violation at %gs, want at the 150s recovery", last)
	}
}

// TestErrorBurstGoodput pins the error-side of the goodput definition: a
// client error burst fails 95% of requests without stopping any station,
// so utilization-style signals barely move while x() collapses — an SLO
// on x() sees the burst as the throughput loss it is, for exactly the
// burst windows.
func TestErrorBurstGoodput(t *testing.T) {
	st := exprExperiment(t, "burst-goodput", `
		topology { web 1; app 1; db 1; }
		workload { users 100; writeratio 15; }
		faults   { client errorburst 0.95 at 100s for 50s; }
		slo      { assert x() > 2; }`)
	r := oneResult(t, st)
	if r.InjectedErrors == 0 {
		t.Fatal("error burst injected nothing")
	}
	if r.SLOViolations == 0 {
		t.Fatal("burst windows reported healthy goodput")
	}
	if r.SLOViolations > 12 {
		t.Fatalf("goodput floor violated %d windows, want ≈10 (the burst span)", r.SLOViolations)
	}
	first := r.SLOViolatedAt[0]
	if first < 95 || first > 110 {
		t.Errorf("first goodput violation at %gs, want at the 100s burst onset", first)
	}
}
