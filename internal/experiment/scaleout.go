package experiment

import (
	"fmt"

	"elba/internal/bottleneck"
	"elba/internal/spec"
)

// ScaleOutOptions parameterize the paper's §V.A iterative strategy.
type ScaleOutOptions struct {
	// StartTopology is the initial configuration (default 1-1-1).
	StartTopology spec.Topology
	// LoadStep is the user increment per iteration (paper: 250-user
	// increments per added app server).
	LoadStep int
	// MaxUsers bounds the explored workload.
	MaxUsers int
	// MaxApp and MaxDB bound the topology (paper: 12 app, 3 db).
	MaxApp, MaxDB int
	// SLOms is the mean response-time objective that triggers scaling.
	SLOms float64
	// WriteRatioPct fixes the write ratio (paper: 15%).
	WriteRatioPct float64
	// MinImprovementPct is the response-time improvement below which
	// adding a server is judged useless and the other tier is tried
	// (paper: adding DB servers "makes very little difference" until the
	// DB becomes the bottleneck).
	MinImprovementPct float64
}

// DefaultScaleOutOptions mirror the paper's experiment envelope.
var DefaultScaleOutOptions = ScaleOutOptions{
	StartTopology:     spec.Topology{Web: 1, App: 1, DB: 1},
	LoadStep:          250,
	MaxUsers:          2900,
	MaxApp:            12,
	MaxDB:             3,
	SLOms:             1000,
	WriteRatioPct:     15,
	MinImprovementPct: 5,
}

// StepAction describes what the controller did after observing a trial.
type StepAction string

// Controller actions.
const (
	ActionIncreaseLoad StepAction = "increase-load"
	ActionAddAppServer StepAction = "add-app-server"
	ActionAddDBServer  StepAction = "add-db-server"
	ActionStop         StepAction = "stop"
)

// Step records one iteration of the scale-out loop.
type Step struct {
	// Topology and Users locate the trial.
	Topology spec.Topology
	Users    int
	// AvgRTms is the observed mean response time.
	AvgRTms float64
	// Completed is false for failed trials.
	Completed bool
	// Verdict is the bottleneck diagnosis.
	Verdict bottleneck.Verdict
	// Action is what the controller decided next.
	Action StepAction
	// Note explains the decision.
	Note string
}

// ScaleOut runs the paper's observation-driven scale-out loop: increase
// the workload until the SLO is violated, diagnose the bottleneck tier
// from the observed utilization, add one server to that tier, and repeat.
// When adding a server fails to improve response time, the other tier is
// grown instead ("this is an indication of a different bottleneck in the
// system", §V.B). The loop stops at the workload or topology bounds.
func (r *Runner) ScaleOut(e *spec.Experiment, opts ScaleOutOptions) ([]Step, error) {
	if opts.StartTopology == (spec.Topology{}) {
		opts.StartTopology = DefaultScaleOutOptions.StartTopology
	}
	if opts.LoadStep <= 0 {
		opts.LoadStep = DefaultScaleOutOptions.LoadStep
	}
	if opts.MaxUsers <= 0 {
		opts.MaxUsers = DefaultScaleOutOptions.MaxUsers
	}
	if opts.MaxApp <= 0 {
		opts.MaxApp = DefaultScaleOutOptions.MaxApp
	}
	if opts.MaxDB <= 0 {
		opts.MaxDB = DefaultScaleOutOptions.MaxDB
	}
	if opts.SLOms <= 0 {
		opts.SLOms = DefaultScaleOutOptions.SLOms
	}
	if opts.MinImprovementPct <= 0 {
		opts.MinImprovementPct = DefaultScaleOutOptions.MinImprovementPct
	}

	topo := opts.StartTopology
	users := opts.LoadStep
	var steps []Step
	var lastRT float64
	var lastAction StepAction
	var lastTier string

	// The loop is bounded by the topology and workload envelope; each
	// iteration either raises load or grows a tier, so it terminates.
	for iter := 0; iter < 200; iter++ {
		out, err := r.RunTrialAt(e, topo, users, opts.WriteRatioPct)
		if err != nil {
			return steps, err
		}
		res := out.Result
		verdict := bottleneck.Detect(res, bottleneck.DefaultThresholds)
		step := Step{
			Topology:  topo,
			Users:     users,
			AvgRTms:   res.AvgRTms,
			Completed: res.Completed,
			Verdict:   verdict,
		}

		// Did the last server addition actually help? If not, the
		// bottleneck is elsewhere: grow the other tier.
		if lastAction == ActionAddAppServer || lastAction == ActionAddDBServer {
			impr := bottleneck.Improvement(lastRT, res.AvgRTms)
			if res.Completed && impr < opts.MinImprovementPct {
				switch {
				case lastTier == "app" && topo.DB < opts.MaxDB:
					step.Action = ActionAddDBServer
					step.Note = fmt.Sprintf("adding an app server improved RT only %.1f%%; trying the db tier", impr)
					steps = append(steps, step)
					lastRT, lastAction, lastTier = res.AvgRTms, step.Action, "db"
					topo.DB++
					continue
				case lastTier == "db" && topo.App < opts.MaxApp:
					step.Action = ActionAddAppServer
					step.Note = fmt.Sprintf("adding a db server improved RT only %.1f%%; trying the app tier", impr)
					steps = append(steps, step)
					lastRT, lastAction, lastTier = res.AvgRTms, step.Action, "app"
					topo.App++
					continue
				default:
					step.Action = ActionStop
					step.Note = "server additions no longer improve response time"
					steps = append(steps, step)
					return steps, nil
				}
			}
		}

		sloOK := res.Completed && res.AvgRTms <= opts.SLOms
		switch {
		case sloOK && users+opts.LoadStep <= opts.MaxUsers:
			step.Action = ActionIncreaseLoad
			step.Note = fmt.Sprintf("RT %.0f ms within SLO %.0f ms", res.AvgRTms, opts.SLOms)
			users += opts.LoadStep
		case sloOK:
			step.Action = ActionStop
			step.Note = fmt.Sprintf("workload bound %d users reached within SLO", opts.MaxUsers)
			steps = append(steps, step)
			return steps, nil
		default:
			// SLO violated (or trial failed): grow the diagnosed tier.
			tier := verdict.Tier
			if tier == "sessions" {
				tier = "app" // more app servers add session capacity
			}
			switch {
			case tier == "db" && topo.DB < opts.MaxDB:
				step.Action = ActionAddDBServer
				step.Note = verdict.Reason
				topo.DB++
			case (tier == "app" || tier == "none" || tier == "web") && topo.App < opts.MaxApp:
				// "none" can happen right at the knee; the app tier is
				// the first suspect in an n-tier web application.
				step.Action = ActionAddAppServer
				step.Note = verdict.Reason
				topo.App++
			case tier == "db" || topo.App >= opts.MaxApp:
				step.Action = ActionStop
				step.Note = fmt.Sprintf("topology bound reached at %s with %s", topo, verdict.Reason)
				steps = append(steps, step)
				return steps, nil
			default:
				step.Action = ActionStop
				step.Note = "no tier left to grow"
				steps = append(steps, step)
				return steps, nil
			}
			lastTier = "app"
			if step.Action == ActionAddDBServer {
				lastTier = "db"
			}
		}
		steps = append(steps, step)
		lastRT = res.AvgRTms
		lastAction = step.Action
	}
	return steps, fmt.Errorf("experiment: scale-out loop did not converge")
}
