package experiment

import (
	"runtime"
	"strings"
	"testing"

	"elba/internal/spec"
	"elba/internal/store"
)

// deterministicGrid is a small multi-topology, multi-point sweep used by
// the reproducibility properties below. Small populations keep each trial
// cheap; four topologies × four grid points give the worker pool real
// scheduling freedom.
const deterministicGrid = `
	topologies 1-1-1, 1-2-1, 1-2-2, 1-3-1;
	workload { users 50 to 100 step 50; writeratio 5 to 15 step 10; }`

// runGrid executes the grid with the given trial parallelism and returns
// the store's canonical serializations.
func runGrid(t *testing.T, trialParallel int, mutate func(*Runner)) (csv string, jsonText string, st *store.Store) {
	t.Helper()
	r := testRunner(t)
	r.TrialParallel = trialParallel
	if mutate != nil {
		mutate(r)
	}
	if err := r.RunExperiment(rubisExperiment(t, deterministicGrid)); err != nil {
		t.Fatal(err)
	}
	data, err := r.Store().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return r.Store().CSV(), string(data), r.Store()
}

// TestTrialParallelDeterministicAcrossWorkers is the tentpole determinism
// property: the same experiment produces byte-identical stored results for
// every worker count, because each trial's random stream is derived purely
// from its coordinates and results commit in grid order.
func TestTrialParallelDeterministicAcrossWorkers(t *testing.T) {
	baseCSV, baseJSON, _ := runGrid(t, 1, nil)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if workers < 2 {
			workers = 2
		}
		csv, jsonText, _ := runGrid(t, workers, nil)
		if csv != baseCSV {
			t.Fatalf("workers=%d: CSV diverged from sequential run:\n--- seq ---\n%s\n--- par ---\n%s",
				workers, baseCSV, csv)
		}
		if jsonText != baseJSON {
			t.Fatalf("workers=%d: JSON diverged from sequential run", workers)
		}
	}
}

// TestTrialParallelWithDeploymentParallel layers both parallelism axes and
// still demands byte-identical serialized results.
func TestTrialParallelWithDeploymentParallel(t *testing.T) {
	baseCSV, baseJSON, _ := runGrid(t, 1, nil)
	csv, jsonText, _ := runGrid(t, 3, func(r *Runner) { r.Parallel = 2 })
	if csv != baseCSV || jsonText != baseJSON {
		t.Fatalf("deployment+trial parallel run diverged from sequential serialization")
	}
}

// TestDeploymentOrderPermutationMetamorphic is the metamorphic property:
// permuting the declared topology order must not change any per-trial
// result nor the canonical serialization, sequentially or in parallel.
func TestDeploymentOrderPermutationMetamorphic(t *testing.T) {
	permuted := `
		topologies 1-3-1, 1-2-2, 1-1-1, 1-2-1;
		workload { users 50 to 100 step 50; writeratio 5 to 15 step 10; }`
	base := testRunner(t)
	if err := base.RunExperiment(rubisExperiment(t, deterministicGrid)); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		perm := testRunner(t)
		perm.TrialParallel = workers
		if err := perm.RunExperiment(rubisExperiment(t, permuted)); err != nil {
			t.Fatal(err)
		}
		if perm.Store().Len() != base.Store().Len() {
			t.Fatalf("workers=%d: result counts differ: %d vs %d",
				workers, perm.Store().Len(), base.Store().Len())
		}
		for _, want := range base.Store().All() {
			got, ok := perm.Store().Get(want.Key)
			if !ok {
				t.Fatalf("workers=%d: permuted run missing %s", workers, want.Key)
			}
			if got.AvgRTms != want.AvgRTms || got.Requests != want.Requests ||
				got.Throughput != want.Throughput || got.P99ms != want.P99ms {
				t.Fatalf("workers=%d: permuted topology order changed %s: %+v vs %+v",
					workers, want.Key, got, want)
			}
		}
		if perm.Store().CSV() != base.Store().CSV() {
			t.Fatalf("workers=%d: canonical CSV differs under topology permutation", workers)
		}
	}
}

// TestReplicatedTrialParallelDeterministic checks the replicate.go half of
// the tentpole: replicated trials aggregate bit-identically for any worker
// count because replica seeds derive from the replica index alone.
func TestReplicatedTrialParallelDeterministic(t *testing.T) {
	run := func(workers int) store.Result {
		r := testRunner(t)
		r.TrialParallel = workers
		e := rubisExperiment(t, `
			workload { users 150; writeratio 15; }
			repeat 4;`)
		out, err := r.RunTrialAt(e, spec.Topology{Web: 1, App: 2, DB: 1}, 150, 15)
		if err != nil {
			t.Fatal(err)
		}
		return out.Result
	}
	base := run(1)
	if base.Replicas != 4 {
		t.Fatalf("replicas = %d", base.Replicas)
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if !resultEqual(got, base) {
			t.Fatalf("workers=%d: replicated aggregate diverged:\n%+v\nvs\n%+v", workers, got, base)
		}
	}
}

// resultEqual compares two results field-by-field including maps (Result
// contains maps, so == is not available).
func resultEqual(a, b store.Result) bool {
	if a.Key != b.Key || a.Completed != b.Completed || a.FailReason != b.FailReason ||
		a.AvgRTms != b.AvgRTms || a.P50ms != b.P50ms || a.P90ms != b.P90ms ||
		a.P99ms != b.P99ms || a.MaxRTms != b.MaxRTms || a.Throughput != b.Throughput ||
		a.Requests != b.Requests || a.Errors != b.Errors ||
		a.CollectedBytes != b.CollectedBytes || a.RunSeconds != b.RunSeconds ||
		a.Replicas != b.Replicas || a.AvgRTCI95ms != b.AvgRTCI95ms ||
		a.ThroughputCI95 != b.ThroughputCI95 {
		return false
	}
	eqMap := func(x, y map[string]float64) bool {
		if len(x) != len(y) {
			return false
		}
		for k, v := range x {
			if yv, ok := y[k]; !ok || yv != v {
				return false
			}
		}
		return true
	}
	return eqMap(a.TierCPU, b.TierCPU) && eqMap(a.HostCPU, b.HostCPU) &&
		eqMap(a.PerInteraction, b.PerInteraction)
}

// TestRootSeedReproducibleAndIndependent checks Runner.Seed: the same
// root seed reproduces results exactly; a different root seed re-runs the
// experiment under an independent random universe; zero preserves the
// historical derivation.
func TestRootSeedReproducibleAndIndependent(t *testing.T) {
	run := func(seed uint64) string {
		csv, _, _ := runGrid(t, 2, func(r *Runner) { r.Seed = seed })
		return csv
	}
	legacy := run(0)
	a1, a2 := run(12345), run(12345)
	if a1 != a2 {
		t.Fatalf("same root seed diverged")
	}
	if b := run(99999); b == a1 {
		t.Fatalf("different root seeds produced identical sweeps")
	}
	baseCSV, _, _ := runGrid(t, 1, nil)
	if legacy != baseCSV {
		t.Fatalf("zero root seed changed the historical derivation")
	}
}

// TestParallelWorkerErrorsAllCollected is the error-collection regression
// test: when several concurrent deployments fail, every failure must
// survive into the joined error instead of all but one being dropped (the
// old single-slot channel bug).
func TestParallelWorkerErrorsAllCollected(t *testing.T) {
	r := testRunner(t)
	r.Parallel = 2
	// A fault on a role that exists in neither topology makes every
	// deployment's first trial return an error.
	e := rubisExperiment(t, `
		topologies 1-1-1, 1-2-1;
		workload { users 50; writeratio 15; }
		faults { JONAS9 at 10s for 10s; }`)
	err := r.RunExperiment(e)
	if err == nil {
		t.Fatal("faulty experiment reported success")
	}
	for _, topo := range []string{"1-1-1", "1-2-1"} {
		if !strings.Contains(err.Error(), topo) {
			t.Fatalf("joined error lost the failure from topology %s: %v", topo, err)
		}
	}
}

// TestTrialParallelErrorsAllCollected exercises the same property inside
// one deployment's grid: multiple failing workload points all appear in
// the joined error.
func TestTrialParallelErrorsAllCollected(t *testing.T) {
	r := testRunner(t)
	r.TrialParallel = 4
	e := rubisExperiment(t, `
		workload { users 50 to 200 step 50; writeratio 15; }
		faults { JONAS9 at 10s for 10s; }`)
	err := r.RunExperiment(e)
	if err == nil {
		t.Fatal("faulty experiment reported success")
	}
	// All four points start before any error propagates (4 workers), so
	// at least two must be present in the joined error.
	found := 0
	for _, point := range []string{"u=50", "u=100", "u=150", "u=200"} {
		if strings.Contains(err.Error(), point) {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("joined error retained %d failing grid points, want >= 2: %v", found, err)
	}
}

// TestGridAbortStoresPrefixOnly pins the abort semantics with
// KeepGoingOnFailure off: whatever the worker count, the store holds
// exactly the grid-order prefix a sequential sweep would have stored.
func TestGridAbortStoresPrefixOnly(t *testing.T) {
	run := func(workers int) *store.Store {
		r := testRunner(t)
		r.TrialParallel = workers
		r.KeepGoingOnFailure = false
		e := rubisExperiment(t, `
			workload { users 600 to 900 step 100; writeratio 15; }`)
		if err := r.RunExperiment(e); err == nil {
			t.Fatal("overloaded sweep with KeepGoingOnFailure=false reported success")
		}
		return r.Store()
	}
	seq := run(1)
	par := run(4)
	if seq.CSV() != par.CSV() {
		t.Fatalf("abort prefix differs between worker counts:\n--- seq ---\n%s\n--- par ---\n%s",
			seq.CSV(), par.CSV())
	}
}
