package experiment

import (
	"strings"
	"testing"

	"elba/internal/expr"
	"elba/internal/spec"
	"elba/internal/store"
)

// fakeActuator is a scaleActuator over plain counters, with an optional
// hard ceiling that models spare-pool exhaustion: Scale stops at the
// ceiling no matter what target the policy asked for.
type fakeActuator struct {
	replicas [expr.NumTiers]int
	ceiling  int // 0 = unlimited
}

func (f *fakeActuator) Replicas(tier int) int { return f.replicas[tier] }

func (f *fakeActuator) Scale(tier, target int) int {
	if f.ceiling > 0 && target > f.ceiling {
		target = f.ceiling
	}
	if target > f.replicas[tier] || target < f.replicas[tier] {
		f.replicas[tier] = target
	}
	return f.replicas[tier]
}

// policyHooks compiles a policies-only experiment into exprHooks wired to
// the given actuator, mirroring what a trial does before its first window.
func policyHooks(t *testing.T, act scaleActuator, pols ...spec.Policy) *exprHooks {
	t.Helper()
	h, err := newExprHooks(&spec.Experiment{Policies: pols}, 0, 600, 1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h == nil {
		t.Fatal("policies compiled to nil hooks")
	}
	h.actuator = act
	return h
}

// hotEnv is a window environment whose app-tier CPU utilization satisfies
// "> 0.8" predicates.
func hotEnv(tSec float64) expr.Env {
	env := expr.Env{T: tSec}
	env.Util[expr.TierApp][expr.ResCPU] = 0.95
	return env
}

// TestPolicyCooldownPacing fires a scale-out policy against a predicate
// that holds in every window and checks the cooldown turns the response
// into a staircase: one firing per cooldown period, at the first window
// boundary at or past expiry, never in between.
func TestPolicyCooldownPacing(t *testing.T) {
	act := &fakeActuator{}
	act.replicas[expr.TierApp] = 2
	h := policyHooks(t, act, spec.Policy{
		Tier: "app", Delta: 1, WhenExpr: "util(app, cpu) > 0.8",
		CooldownSec: 30, Max: 12,
	})
	for tSec := 0.0; tSec <= 100; tSec += 5 {
		env := hotEnv(tSec)
		h.applyPolicies(&env)
	}
	// Firings at t=0, 30, 60, 90: four steps, 2→3→4→5→6.
	want := []store.ScaleEvent{
		{TSec: 0, Tier: "app", From: 2, To: 3},
		{TSec: 30, Tier: "app", From: 3, To: 4},
		{TSec: 60, Tier: "app", From: 4, To: 5},
		{TSec: 90, Tier: "app", From: 5, To: 6},
	}
	if len(h.scaleEvents) != len(want) {
		t.Fatalf("events = %v, want %v", h.scaleEvents, want)
	}
	for i := range want {
		if h.scaleEvents[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, h.scaleEvents[i], want[i])
		}
	}
	if act.replicas[expr.TierApp] != 6 {
		t.Errorf("replicas = %d, want 6", act.replicas[expr.TierApp])
	}
}

// TestPolicyBoundIsNotAFiring parks a scale-out policy at its max while
// the predicate keeps holding: no events, and — the latch rule — no
// cooldown consumption, so the moment headroom appears (a scale-in frees
// a slot) the policy fires at the very next window instead of waiting
// out a cooldown it never used.
func TestPolicyBoundIsNotAFiring(t *testing.T) {
	act := &fakeActuator{}
	act.replicas[expr.TierApp] = 4
	h := policyHooks(t, act, spec.Policy{
		Tier: "app", Delta: 1, WhenExpr: "util(app, cpu) > 0.8",
		CooldownSec: 60, Max: 4,
	})
	for tSec := 0.0; tSec <= 20; tSec += 5 {
		env := hotEnv(tSec)
		h.applyPolicies(&env)
	}
	if len(h.scaleEvents) != 0 {
		t.Fatalf("at-max windows fired: %v", h.scaleEvents)
	}
	// Free a slot out of band; the next window must fire immediately.
	act.replicas[expr.TierApp] = 3
	env := hotEnv(25)
	h.applyPolicies(&env)
	if len(h.scaleEvents) != 1 || h.scaleEvents[0].TSec != 25 {
		t.Fatalf("after headroom appeared, events = %v, want one firing at t=25", h.scaleEvents)
	}
}

// TestPolicyShortfallIsNotAFiring exhausts the actuator's pool so Scale
// cannot move at all: no event is recorded and the cooldown stays
// unlatched, so the policy retries every window until capacity appears.
func TestPolicyShortfallIsNotAFiring(t *testing.T) {
	act := &fakeActuator{ceiling: 2}
	act.replicas[expr.TierApp] = 2
	h := policyHooks(t, act, spec.Policy{
		Tier: "app", Delta: 1, WhenExpr: "util(app, cpu) > 0.8",
		CooldownSec: 60, Max: 8,
	})
	env := hotEnv(0)
	h.applyPolicies(&env)
	if len(h.scaleEvents) != 0 {
		t.Fatalf("pool-exhausted window fired: %v", h.scaleEvents)
	}
	act.ceiling = 0
	env = hotEnv(5)
	h.applyPolicies(&env)
	if len(h.scaleEvents) != 1 || h.scaleEvents[0].TSec != 5 {
		t.Fatalf("after pool refill, events = %v, want one firing at t=5", h.scaleEvents)
	}
}

// TestPolicyScaleInFloor drives a scale-in policy into its min floor: the
// drain stops at min, a firing that would cross the floor clamps to it,
// and at-floor windows are no-ops.
func TestPolicyScaleInFloor(t *testing.T) {
	act := &fakeActuator{}
	act.replicas[expr.TierApp] = 5
	h := policyHooks(t, act, spec.Policy{
		Tier: "app", In: true, Delta: 2, WhenExpr: "util(app, cpu) < 0.3",
		CooldownSec: 0, Min: 2,
	})
	for tSec := 0.0; tSec <= 20; tSec += 5 {
		env := expr.Env{T: tSec} // idle: util 0 < 0.3
		h.applyPolicies(&env)
	}
	want := []store.ScaleEvent{
		{TSec: 0, Tier: "app", From: 5, To: 3},
		{TSec: 5, Tier: "app", From: 3, To: 2}, // clamped to the floor
	}
	if len(h.scaleEvents) != len(want) {
		t.Fatalf("events = %v, want %v", h.scaleEvents, want)
	}
	for i := range want {
		if h.scaleEvents[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, h.scaleEvents[i], want[i])
		}
	}
}

// TestPolicyDeclarationOrder runs two policies at one boundary and checks
// the second sees the first's actuation through env.Replicas: a guard
// expressed as replicas(app) < 4 stops being true within the same window
// once the first policy has pushed the count to 4.
func TestPolicyDeclarationOrder(t *testing.T) {
	act := &fakeActuator{}
	act.replicas[expr.TierApp] = 2
	h := policyHooks(t, act,
		spec.Policy{Tier: "app", Delta: 2, WhenExpr: "util(app, cpu) > 0.8",
			CooldownSec: 0, Max: 8},
		spec.Policy{Tier: "app", Delta: 1, WhenExpr: "util(app, cpu) > 0.8 && replicas(app) < 4",
			CooldownSec: 0, Max: 8},
	)
	env := hotEnv(0)
	env.Replicas[expr.TierApp] = 2
	h.applyPolicies(&env)
	// First policy 2→4; second's replicas(app) guard now reads 4 and holds fire.
	if len(h.scaleEvents) != 1 || h.scaleEvents[0].To != 4 {
		t.Fatalf("events = %v, want exactly [t=0s app 2→4]", h.scaleEvents)
	}
	if env.Replicas[expr.TierApp] != 4 {
		t.Errorf("env.Replicas not updated by firing: %v", env.Replicas[expr.TierApp])
	}
}

// TestPolicyEventsRecorded checks record() copies the timeline into the
// stored result and that an event renders the way the report prints it.
func TestPolicyEventsRecorded(t *testing.T) {
	act := &fakeActuator{}
	act.replicas[expr.TierApp] = 2
	h := policyHooks(t, act, spec.Policy{
		Tier: "app", Delta: 1, WhenExpr: "util(app, cpu) > 0.8", Max: 4,
	})
	env := hotEnv(15)
	h.applyPolicies(&env)
	var res store.Result
	h.record(&res)
	if len(res.ScaleEvents) != 1 {
		t.Fatalf("recorded events = %v", res.ScaleEvents)
	}
	if got := res.ScaleEvents[0].String(); got != "t=15s app 2→3" {
		t.Errorf("event renders %q", got)
	}
	if res.SLOAssert != "" || res.SLOWindows != 0 {
		t.Errorf("policies-only hooks wrote SLO fields: %+v", res)
	}
}

// TestInitialUsersClampsToCapacity pins the start-population clamp: a
// users expression that opens above the deployment's session capacity is
// cut to the cap — the same clamp every mid-run retarget applies — so a
// dynamic trial cannot begin with more sessions than AddUsers allows.
func TestInitialUsersClampsToCapacity(t *testing.T) {
	e := &spec.Experiment{}
	e.Workload.UsersExpr = "5000"
	cases := []struct {
		capUsers, want int
	}{
		{0, 5000},    // no known capacity: expression value stands
		{700, 700},   // clamped to the tomcat session cap
		{9000, 5000}, // roomy capacity: expression value stands
	}
	for _, c := range cases {
		got, err := initialUsers(e, c.capUsers)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("initialUsers(cap=%d) = %d, want %d", c.capUsers, got, c.want)
		}
	}
	e.Workload.UsersExpr = "-3"
	if got, _ := initialUsers(e, 700); got != 1 {
		t.Errorf("negative population clamps to 1, got %d", got)
	}
}

// TestPolicyFreeOutputByteIdentical is the byte-identity golden: the same
// sweep run with no policies clause and with an armed-but-never-firing
// policy must serialize identically, because ScaleEvents is omitempty and
// an inert policy leaves the trial's event stream untouched — the policy
// machinery costs policy-free (and firing-free) specs nothing observable.
func TestPolicyFreeOutputByteIdentical(t *testing.T) {
	base := `
		topology { web 1; app 2; db 1; }
		workload { users 50 to 100 step 50; writeratio 15; }`
	quiet := base + `
		policies { scale app by 1 when util(app, cpu) > 9.0 cooldown 0s max 4; }`

	run := func(extra string) string {
		r := testRunner(t)
		if err := r.RunExperiment(rubisExperiment(t, extra)); err != nil {
			t.Fatal(err)
		}
		data, err := r.Store().MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	plain, armed := run(base), run(quiet)
	if strings.Contains(plain, "scale_events") {
		t.Fatalf("policy-free output mentions scale_events:\n%s", plain)
	}
	if plain != armed {
		t.Fatalf("armed-but-inert policy changed the serialized store:\n--- plain ---\n%s\n--- armed ---\n%s",
			plain, armed)
	}
}
